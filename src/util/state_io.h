// POD state (de)serialization helpers for checkpointing. Every integer is
// written in explicit little-endian byte order and every float through its
// IEEE-754 bit pattern, so state blobs are bit-exact across compilers and
// byte-order-portable across hosts. Readers throw std::runtime_error on
// truncation — a checkpoint is either restored completely or not at all.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/rng.h"

namespace a3cs::util::sio {

void put_u8(std::ostream& out, std::uint8_t v);
void put_u32(std::ostream& out, std::uint32_t v);
void put_u64(std::ostream& out, std::uint64_t v);
void put_i32(std::ostream& out, std::int32_t v);
void put_i64(std::ostream& out, std::int64_t v);
void put_f32(std::ostream& out, float v);
void put_f64(std::ostream& out, double v);
void put_bool(std::ostream& out, bool v);
void put_string(std::ostream& out, const std::string& s);
void put_rng(std::ostream& out, const Rng& rng);

std::uint8_t get_u8(std::istream& in);
std::uint32_t get_u32(std::istream& in);
std::uint64_t get_u64(std::istream& in);
std::int32_t get_i32(std::istream& in);
std::int64_t get_i64(std::istream& in);
float get_f32(std::istream& in);
double get_f64(std::istream& in);
bool get_bool(std::istream& in);
std::string get_string(std::istream& in);
void get_rng(std::istream& in, Rng& rng);

// Homogeneous containers: u32 count followed by the elements.
void put_i32_vec(std::ostream& out, const std::vector<int>& v);
std::vector<int> get_i32_vec(std::istream& in);
void put_f64_vec(std::ostream& out, const std::vector<double>& v);
std::vector<double> get_f64_vec(std::istream& in);
void put_bool_vec(std::ostream& out, const std::vector<bool>& v);
std::vector<bool> get_bool_vec(std::istream& in);

}  // namespace a3cs::util::sio
