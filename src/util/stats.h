// Streaming summary statistics (Welford) and small helpers used by
// evaluation code and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace a3cs::util {

// Numerically stable running mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);

// Exponential moving average helper for score curves.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}
  double update(double x);
  double value() const { return value_; }
  bool initialized() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace a3cs::util
