#include "util/csv.h"

#include <sstream>
#include <stdexcept>

#include "util/logging.h"

namespace a3cs::util {
namespace {

void write_row(std::ostream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out << ",";
    out << CsvWriter::escape(cells[i]);
  }
  out << "\n";
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(&out), columns_(header.size()) {
  write_row(*out_, header);
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : file_(path), out_(&file_), columns_(header.size()), path_(path) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(*out_, header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  A3CS_CHECK(cells.size() == columns_, "CSV row width mismatch");
  write_row(*out_, cells);
  out_->flush();
}

void CsvWriter::row_values(std::initializer_list<double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream oss;
    oss << v;
    cells.push_back(oss.str());
  }
  row(cells);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace a3cs::util
