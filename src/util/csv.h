// Tiny CSV emitter used by the benchmark harnesses so every table/figure can
// be regenerated and post-processed (plotted) from machine-readable output.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace a3cs::util {

class CsvWriter {
 public:
  // Writes to the given stream (not owned). Header row is emitted once.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  // Opens (truncates) a file; throws on failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void row(const std::vector<std::string>& cells);

  // Convenience overload for mixed numeric rows.
  void row_values(std::initializer_list<double> values);

  static std::string escape(const std::string& cell);

  const std::string& path() const { return path_; }

 private:
  std::ofstream file_;
  std::ostream* out_;
  std::size_t columns_;
  std::string path_;
};

}  // namespace a3cs::util
