// Deterministic thread-pool execution layer.
//
// One persistent pool (usually the process-global one) executes
// `parallel_for(begin, end, grain, fn)` regions across every hot path of the
// repro: GEMM row panels, im2col rows, VecEnv shards, the top-K NAS backward
// and the DAS predictor sweeps.
//
// Determinism contract
// --------------------
// The range is cut into FIXED contiguous shards of `grain` indices (the last
// shard may be short). Shard boundaries depend only on (begin, end, grain) —
// never on the thread count — and each shard is executed by exactly one
// thread with its internal iteration order unchanged. Callers must write
// disjoint outputs per index and keep any floating-point reduction either
// inside one shard or in serial code after the region; under that contract
// results are bit-exact for every A3CS_THREADS value, including 1.
//
// Serial mode is free: a pool of size 1 spawns no threads and parallel_for
// degenerates to one inline `fn(begin, end)` call (legal because the shard
// decomposition of a disjoint-write region composes back to the full range).
// Nested regions (a task calling parallel_for) also run inline, so kernels
// can stay instrumented without deadlock or oversubscription.
//
// Thread count resolution: ExecConfig{}.with_env_overrides() reads
// A3CS_THREADS (1 = serial default; 0 or "auto" = hardware concurrency).
#pragma once

#include <atomic>
#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace a3cs::util {

// ObsConfig-style execution configuration: programmatic defaults plus
// environment overrides, threaded through CoSearchConfig and the benches.
struct ExecConfig {
  // Total executor threads (the caller participates, so N means N-1 pool
  // workers). 1 = serial, 0 = one per hardware thread.
  int threads = 1;

  // Returns a copy with A3CS_THREADS applied on top (env wins).
  ExecConfig with_env_overrides() const;

  // Maps the `0 = auto` convention to a concrete positive thread count.
  int resolved_threads() const;
};

class ThreadPool {
 public:
  // Spawns `threads - 1` workers; the calling thread is the remaining
  // executor. threads <= 1 spawns nothing at all.
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }
  int worker_count() const { return static_cast<int>(workers_.size()); }

  // Lifetime occupancy stats (relaxed atomics; for obs/ publishing).
  std::int64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  std::int64_t regions_parallel() const {
    return regions_parallel_.load(std::memory_order_relaxed);
  }
  std::int64_t regions_inline() const {
    return regions_inline_.load(std::memory_order_relaxed);
  }

  // Per-phase task accounting, keyed by string literal. Slots are claimed on
  // first use; at most kMaxLabels distinct labels are tracked. The returned
  // stats are sorted by label so downstream metric/trace emission is
  // byte-stable regardless of which subsystem touched the pool first.
  static constexpr int kMaxLabels = 16;
  struct LabelStat {
    const char* label = nullptr;
    std::int64_t regions = 0;
    std::int64_t tasks = 0;
  };
  std::vector<LabelStat> label_stats() const;

  // Runs fn(shard_begin, shard_end) over [begin, end) cut into grain-sized
  // contiguous shards (see file header for the determinism contract).
  // `label` (a string literal or nullptr) attributes the region's task count
  // in label_stats(). Exceptions from any shard are rethrown to the caller
  // (first one wins).
  //
  // `min_parallel_range`: ranges shorter than this run inline as one shard
  // even on a multi-thread pool. Callers whose per-index work is tiny (e.g.
  // VecEnv stepping toy envs) use it to keep small batches serial — the
  // wake/handoff cost of fanning out dwarfs the work itself and used to make
  // 8 threads SLOWER than 1 on a 32-env step. Inlining is always legal under
  // the determinism contract (the shard decomposition of a disjoint-write
  // region composes back to the full range), so this threshold — like the
  // grain — only changes scheduling, never results.
  template <typename Fn>
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    Fn&& fn, const char* label = nullptr,
                    std::int64_t min_parallel_range = 0) {
    const std::int64_t range = end - begin;
    if (range <= 0) return;
    if (grain < 1) grain = 1;
    const std::int64_t shards = (range + grain - 1) / grain;
    if (threads_ <= 1 || shards <= 1 || range < min_parallel_range ||
        in_worker()) {
      regions_inline_.fetch_add(1, std::memory_order_relaxed);
      fn(begin, end);
      return;
    }
    regions_parallel_.fetch_add(1, std::memory_order_relaxed);
    record_label(label, shards);

    // Static round-robin shard assignment: executor e runs shards
    // e, e + E, e + 2E, ... where E = number of participating executors.
    // (Assignment affects scheduling only; results are shard-local.)
    const int executors =
        static_cast<int>(std::min<std::int64_t>(threads_, shards));
    std::atomic<int> done{0};
    std::exception_ptr error;
    std::mutex error_mu;
    auto run_executor = [&, begin, end, grain, shards](int e) {
      InWorkerScope scope;
      try {
        for (std::int64_t s = e; s < shards; s += executors) {
          const std::int64_t b = begin + s * grain;
          const std::int64_t lim = std::min(end, b + grain);
          fn(b, lim);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    };
    tasks_executed_.fetch_add(shards, std::memory_order_relaxed);
    for (int e = 1; e < executors; ++e) {
      enqueue([&run_executor, e] { run_executor(e); });
    }
    run_executor(0);
    wait_for(done, executors);
    if (error) std::rethrow_exception(error);
  }

  // The process-global pool, lazily sized from ExecConfig env overrides
  // (A3CS_THREADS) on first use.
  static ThreadPool& global();
  // Replaces the global pool (drains the old one first). Not safe while
  // regions are in flight on other threads — configure at phase boundaries,
  // as CoSearchEngine::run and the benches do.
  static void set_global_threads(int threads);

 private:
  // Marks the current thread as executing pool work, so nested regions run
  // inline (worker threads set it for their whole lifetime; the caller sets
  // it only while it participates in a region).
  static bool& in_worker_flag();
  static bool in_worker() { return in_worker_flag(); }
  struct InWorkerScope {
    bool prev;
    InWorkerScope() : prev(in_worker_flag()) { in_worker_flag() = true; }
    ~InWorkerScope() { in_worker_flag() = prev; }
  };

  void enqueue(std::function<void()> task);
  void worker_loop();
  void notify_done();
  void wait_for(std::atomic<int>& done, int target);
  void record_label(const char* label, std::int64_t tasks);

  int threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::deque<std::function<void()>> queue_ A3CS_GUARDED_BY(mu_);
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  bool stop_ A3CS_GUARDED_BY(mu_) = false;

  std::atomic<std::int64_t> tasks_executed_{0};
  std::atomic<std::int64_t> regions_parallel_{0};
  std::atomic<std::int64_t> regions_inline_{0};

  struct LabelSlot {
    std::atomic<const char*> label{nullptr};
    std::atomic<std::int64_t> regions{0};
    std::atomic<std::int64_t> tasks{0};
  };
  std::array<LabelSlot, kMaxLabels> labels_;
};

// Convenience wrapper over the global pool.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Fn&& fn, const char* label = nullptr,
                  std::int64_t min_parallel_range = 0) {
  ThreadPool::global().parallel_for(begin, end, grain, std::forward<Fn>(fn),
                                    label, min_parallel_range);
}

}  // namespace a3cs::util
