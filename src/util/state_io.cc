#include "util/state_io.h"

#include <cstring>
#include <stdexcept>

namespace a3cs::util::sio {
namespace {

void put_le(std::ostream& out, std::uint64_t v, int bytes) {
  char buf[8];
  for (int i = 0; i < bytes; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  }
  out.write(buf, bytes);
}

std::uint64_t get_le(std::istream& in, int bytes) {
  char buf[8];
  in.read(buf, bytes);
  if (!in) throw std::runtime_error("state_io: truncated stream");
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void put_u8(std::ostream& out, std::uint8_t v) { put_le(out, v, 1); }
void put_u32(std::ostream& out, std::uint32_t v) { put_le(out, v, 4); }
void put_u64(std::ostream& out, std::uint64_t v) { put_le(out, v, 8); }
void put_i32(std::ostream& out, std::int32_t v) {
  put_le(out, static_cast<std::uint32_t>(v), 4);
}
void put_i64(std::ostream& out, std::int64_t v) {
  put_le(out, static_cast<std::uint64_t>(v), 8);
}

void put_f32(std::ostream& out, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

void put_f64(std::ostream& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_bool(std::ostream& out, bool v) { put_u8(out, v ? 1 : 0); }

void put_string(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void put_rng(std::ostream& out, const Rng& rng) {
  const RngState s = rng.state();
  for (const std::uint64_t w : s.s) put_u64(out, w);
  put_bool(out, s.has_cached_normal);
  put_f64(out, s.cached_normal);
}

std::uint8_t get_u8(std::istream& in) {
  return static_cast<std::uint8_t>(get_le(in, 1));
}
std::uint32_t get_u32(std::istream& in) {
  return static_cast<std::uint32_t>(get_le(in, 4));
}
std::uint64_t get_u64(std::istream& in) { return get_le(in, 8); }
std::int32_t get_i32(std::istream& in) {
  return static_cast<std::int32_t>(get_u32(in));
}
std::int64_t get_i64(std::istream& in) {
  return static_cast<std::int64_t>(get_u64(in));
}

float get_f32(std::istream& in) {
  const std::uint32_t bits = get_u32(in);
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double get_f64(std::istream& in) {
  const std::uint64_t bits = get_u64(in);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool get_bool(std::istream& in) {
  const std::uint8_t v = get_u8(in);
  if (v > 1) throw std::runtime_error("state_io: corrupt bool");
  return v != 0;
}

std::string get_string(std::istream& in) {
  const std::uint32_t n = get_u32(in);
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("state_io: truncated string");
  return s;
}

void get_rng(std::istream& in, Rng& rng) {
  RngState s;
  for (std::uint64_t& w : s.s) w = get_u64(in);
  s.has_cached_normal = get_bool(in);
  s.cached_normal = get_f64(in);
  rng.set_state(s);
}

void put_i32_vec(std::ostream& out, const std::vector<int>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const int x : v) put_i32(out, x);
}

std::vector<int> get_i32_vec(std::istream& in) {
  const std::uint32_t n = get_u32(in);
  std::vector<int> v(n);
  for (auto& x : v) x = get_i32(in);
  return v;
}

void put_f64_vec(std::ostream& out, const std::vector<double>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const double x : v) put_f64(out, x);
}

std::vector<double> get_f64_vec(std::istream& in) {
  const std::uint32_t n = get_u32(in);
  std::vector<double> v(n);
  for (auto& x : v) x = get_f64(in);
  return v;
}

void put_bool_vec(std::ostream& out, const std::vector<bool>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const bool x : v) put_bool(out, x);
}

std::vector<bool> get_bool_vec(std::istream& in) {
  const std::uint32_t n = get_u32(in);
  std::vector<bool> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = get_bool(in);
  return v;
}

}  // namespace a3cs::util::sio
