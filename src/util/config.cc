#include "util/config.h"

#include <algorithm>
#include <cstdlib>

namespace a3cs::util {

double bench_scale() {
  static const double scale = [] {
    const double v = env_double("A3CS_SCALE", 1.0);
    return std::clamp(v, 1e-3, 1e3);
  }();
  return scale;
}

std::int64_t scaled_steps(std::int64_t steps, std::int64_t min_steps) {
  const double scaled = static_cast<double>(steps) * bench_scale();
  return std::max<std::int64_t>(min_steps, static_cast<std::int64_t>(scaled));
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<std::int64_t>(v);
}

double env_double(const std::string& name, double fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env) return fallback;
  return v;
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* env = std::getenv(name.c_str());
  return env == nullptr ? fallback : std::string(env);
}

}  // namespace a3cs::util
