#include "util/logging.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace a3cs::util {
namespace {

LogLevel g_threshold = [] {
  const char* env = std::getenv("A3CS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "WARN") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}();

std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return g_threshold; }
void set_log_threshold(LogLevel level) { g_threshold = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << level_name(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_threshold) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << stream_.str() << "\n";
}

namespace detail {
void check_failed(const char* cond, const std::string& msg, const char* file,
                  int line) {
  std::ostringstream oss;
  oss << "A3CS_CHECK failed: (" << cond << ") " << msg << " at " << file << ":"
      << line;
  throw std::runtime_error(oss.str());
}
}  // namespace detail

}  // namespace a3cs::util
