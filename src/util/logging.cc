#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace a3cs::util {
namespace {

std::atomic<LogLevel> g_threshold = [] {
  const char* env = std::getenv("A3CS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "WARN") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}();

const bool g_log_tid = [] {
  const char* env = std::getenv("A3CS_LOG_TID");
  return env != nullptr && std::strcmp(env, "0") != 0;
}();

std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() {
  return g_threshold.load(std::memory_order_relaxed);
}
void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

std::string iso8601_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  if (level_ < g_threshold.load(std::memory_order_relaxed)) return;
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << level_name(level) << " " << iso8601_now() << " ";
  if (g_log_tid) stream_ << "t" << std::this_thread::get_id() << " ";
  stream_ << (base ? base + 1 : file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_threshold.load(std::memory_order_relaxed)) return;
  // Single write per message (newline included) so concurrent log lines
  // never interleave mid-line; the mutex orders whole lines.
  const std::string line = stream_.str() + "\n";
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}

namespace detail {
void check_failed(const char* cond, const std::string& msg, const char* file,
                  int line) {
  std::ostringstream oss;
  oss << "A3CS_CHECK failed: (" << cond << ") " << msg << " at " << file << ":"
      << line;
  throw std::runtime_error(oss.str());
}
}  // namespace detail

}  // namespace a3cs::util
