// Minimal leveled logger.
//
// Usage:
//   A3CS_LOG(INFO) << "trained " << steps << " steps";
//
// Lines carry an ISO-8601 wall-clock timestamp and (with A3CS_LOG_TID=1) the
// originating thread id:
//
//   [I 2026-08-06T12:34:56.789 cosearch.cc:42] trained 640 steps
//
// The level threshold is taken from the A3CS_LOG_LEVEL environment variable
// (DEBUG/INFO/WARN/ERROR, default INFO) so benches can be made quiet or
// chatty without recompiling. The sink is thread-safe: each message is
// formatted off-lock and emitted as a single write, so concurrent threads
// never interleave within a line.
#pragma once

#include <sstream>
#include <string>

namespace a3cs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel log_threshold();
void set_log_threshold(LogLevel level);

// Current wall-clock time as "YYYY-MM-DDTHH:MM:SS.mmm" (local time).
std::string iso8601_now();

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Severity aliases consumed by the A3CS_LOG macro.
inline constexpr LogLevel kDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARN = LogLevel::kWarn;
inline constexpr LogLevel kERROR = LogLevel::kError;

}  // namespace a3cs::util

#define A3CS_LOG(severity)                                              \
  ::a3cs::util::LogMessage(::a3cs::util::k##severity, __FILE__, __LINE__) \
      .stream()

// Always-on invariant check with a message; throws std::runtime_error so
// failures are testable and never silently corrupt an experiment.
#define A3CS_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::a3cs::util::detail::check_failed(#cond, msg, __FILE__, __LINE__); \
    }                                                                     \
  } while (0)

namespace a3cs::util::detail {
[[noreturn]] void check_failed(const char* cond, const std::string& msg,
                               const char* file, int line);
}  // namespace a3cs::util::detail
