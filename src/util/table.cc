#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace a3cs::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  A3CS_CHECK(cells.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream oss;
  const double a = v < 0 ? -v : v;
  if (a != 0.0 && (a >= 1e7 || a < 1e-3)) {
    oss << std::scientific << std::setprecision(2) << v;
  } else if (a >= 1000.0) {
    oss << std::fixed << std::setprecision(0) << v;
  } else {
    oss << std::fixed << std::setprecision(precision) << v;
  }
  return oss.str();
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    }
    out << "\n";
  };
  print_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
  out.flush();
}

}  // namespace a3cs::util
