#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace a3cs::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int n) {
  assert(n > 0);
  // Rejection-free for our purposes; bias is < 2^-32 for n < 2^31.
  return static_cast<int>(next_u64() % static_cast<std::uint64_t>(n));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::gumbel() {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(-std::log(u));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

int Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: all weights are zero");
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::split() { return Rng(next_u64()); }

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::set_state(const RngState& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  has_cached_normal_ = st.has_cached_normal;
  cached_normal_ = st.cached_normal;
}

}  // namespace a3cs::util
