// Environment-variable driven experiment scaling.
//
// Every benchmark honors A3CS_SCALE (a positive float, default 1.0) that
// multiplies all training-step budgets, so the same binaries can run a quick
// CI pass (A3CS_SCALE=0.1) or a long faithful run (A3CS_SCALE=10).
#pragma once

#include <cstdint>
#include <string>

namespace a3cs::util {

// Value of A3CS_SCALE, clamped to [1e-3, 1e3]; 1.0 when unset/invalid.
double bench_scale();

// steps * bench_scale(), at least `min_steps`.
std::int64_t scaled_steps(std::int64_t steps, std::int64_t min_steps = 64);

// Reads an integer environment variable, or `fallback` when unset/invalid.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

// Reads a float environment variable, or `fallback` when unset/invalid.
double env_double(const std::string& name, double fallback);

// Reads a string environment variable, or `fallback` when unset.
std::string env_string(const std::string& name, const std::string& fallback);

}  // namespace a3cs::util
