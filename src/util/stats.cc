#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace a3cs::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<long>(mid), xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(), xs.begin() + static_cast<long>(mid) - 1,
                   xs.end());
  return 0.5 * (hi + xs[mid - 1]);
}

double Ema::update(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
  return value_;
}

}  // namespace a3cs::util
