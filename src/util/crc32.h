// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum guarding
// every checkpoint section against torn writes and bit rot. Table-driven,
// incremental: crc32_update lets callers fold large payloads in chunks.
#pragma once

#include <cstddef>
#include <cstdint>

namespace a3cs::util {

// Continues a CRC computation. Seed with crc = 0 via crc32() or pass the
// running value returned by a previous call.
std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t len);

// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_update(0, data, len);
}

}  // namespace a3cs::util
