// Crash-safe file replacement: write to a sibling temporary, fsync it, then
// rename() over the destination and fsync the directory. On POSIX rename is
// atomic, so a reader (or a process restarted after a crash at ANY point in
// the sequence) sees either the complete old file or the complete new file,
// never a torn mix — the property the checkpoint ring relies on.
#pragma once

#include <string>

namespace a3cs::util {

// Atomically replaces `path` with `bytes`. Throws std::runtime_error on any
// I/O failure; on failure the destination is untouched and the temporary is
// unlinked best-effort.
void atomic_write_file(const std::string& path, const std::string& bytes);

// Reads a whole file into a string. Throws std::runtime_error when the file
// cannot be opened.
std::string read_file_bytes(const std::string& path);

}  // namespace a3cs::util
