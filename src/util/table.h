// Plain-text table printer: the bench binaries print paper-style tables with
// aligned columns, e.g. the Table I / II / III reproductions.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace a3cs::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Formats a double with sensible precision for score/FPS cells.
  static std::string num(double v, int precision = 1);

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace a3cs::util
