// Deterministic, seedable random number generation for the whole project.
//
// All stochastic components (environments, weight init, Gumbel sampling,
// rollout action sampling) draw from a `Rng` instance that is passed in
// explicitly, never from global state, so every experiment is reproducible
// from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace a3cs::util {

// Complete serializable engine state: the xoshiro words plus the Box-Muller
// cache, so a restored stream continues bit-exactly mid-sequence (including
// between the two halves of a normal() pair).
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
// Seeded through SplitMix64 so that nearby integer seeds give independent
// streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Uniform 64-bit integer.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  int uniform_int(int n);

  // Standard normal via Box-Muller (cached second draw).
  double normal();

  // Normal with given mean / stddev.
  double normal(double mean, double stddev);

  // Gumbel(0, 1) sample: -log(-log(U)).
  double gumbel();

  // True with probability p.
  bool bernoulli(double p);

  // Sample an index from an (unnormalized, non-negative) weight vector.
  // Requires at least one strictly positive weight.
  int categorical(const std::vector<double>& weights);

  // Derive an independent child stream (e.g. one per environment instance).
  Rng split();

  // Checkpointing: capture / restore the full engine state.
  RngState state() const;
  void set_state(const RngState& s);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace a3cs::util
