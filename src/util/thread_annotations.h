// Clang thread-safety annotation macros, compiled away everywhere except a
// clang build with -DA3CS_THREAD_SAFETY=ON (which adds -Wthread-safety).
//
// The annotations document — and, under clang, statically verify — which
// mutex guards which member: `std::deque<Task> queue_ A3CS_GUARDED_BY(mu_);`
// makes any unlocked access a compile error instead of a TSan-only find.
// Only the concurrency-bearing classes are annotated (util::ThreadPool,
// serve::ShardedCache); the conc-lock-order lint family covers ordering
// across the rest of the tree.
#pragma once

#if defined(A3CS_THREAD_SAFETY) && defined(__clang__)
#define A3CS_TS_ATTR(x) __attribute__((x))
#else
#define A3CS_TS_ATTR(x)
#endif

#define A3CS_CAPABILITY(x) A3CS_TS_ATTR(capability(x))
#define A3CS_GUARDED_BY(x) A3CS_TS_ATTR(guarded_by(x))
#define A3CS_PT_GUARDED_BY(x) A3CS_TS_ATTR(pt_guarded_by(x))
#define A3CS_ACQUIRE(...) A3CS_TS_ATTR(acquire_capability(__VA_ARGS__))
#define A3CS_RELEASE(...) A3CS_TS_ATTR(release_capability(__VA_ARGS__))
#define A3CS_REQUIRES(...) A3CS_TS_ATTR(requires_capability(__VA_ARGS__))
#define A3CS_EXCLUDES(...) A3CS_TS_ATTR(locks_excluded(__VA_ARGS__))
#define A3CS_NO_THREAD_SAFETY_ANALYSIS A3CS_TS_ATTR(no_thread_safety_analysis)
