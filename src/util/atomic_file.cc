#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace a3cs::util {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + " for " + path +
                           ": " + std::strerror(errno));
}

}  // namespace

#ifndef _WIN32

void atomic_write_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open tmp", tmp);

  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  // The data must be durable BEFORE the rename publishes it, otherwise a
  // power cut could leave a fully-renamed file with missing pages.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename", path);
  }
  // Persist the directory entry too; without this the rename itself can be
  // lost on crash even though both files were synced.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best-effort: some filesystems reject directory fsync
    ::close(dfd);
  }
}

#else  // _WIN32 fallback: plain truncate-write (no fsync/rename guarantees).

void atomic_write_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail("open tmp", tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) fail("write", tmp);
  }
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) fail("rename", path);
}

#endif

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_file_bytes: cannot open " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace a3cs::util
