#include "util/thread_pool.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "util/config.h"

namespace a3cs::util {

ExecConfig ExecConfig::with_env_overrides() const {
  ExecConfig out = *this;
  const std::string raw = env_string("A3CS_THREADS", "");
  if (!raw.empty()) {
    if (raw == "auto") {
      out.threads = 0;
    } else {
      out.threads = static_cast<int>(env_int("A3CS_THREADS", out.threads));
    }
  }
  return out;
}

int ExecConfig::resolved_threads() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool& ThreadPool::in_worker_flag() {
  thread_local bool flag = false;
  return flag;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  in_worker_flag() = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    notify_done();
  }
}

void ThreadPool::notify_done() {
  // Taking the lock (even empty) serializes with a waiter that has evaluated
  // its predicate but not yet blocked, so the wakeup cannot be lost.
  { std::lock_guard<std::mutex> lock(mu_); }
  done_cv_.notify_all();
}

void ThreadPool::wait_for(std::atomic<int>& done, int target) {
  // The caller helps drain the queue while it waits: another region's tasks
  // may be ahead of ours, and executing them is both deadlock-free (tasks
  // never block on other tasks) and faster than sleeping.
  for (;;) {
    if (done.load(std::memory_order_acquire) >= target) return;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty()) {
        if (done.load(std::memory_order_acquire) >= target) return;
        done_cv_.wait(lock, [&] {
          return !queue_.empty() ||
                 done.load(std::memory_order_acquire) >= target;
        });
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      InWorkerScope scope;
      task();
    }
    notify_done();
  }
}

void ThreadPool::record_label(const char* label, std::int64_t tasks) {
  if (label == nullptr) return;
  for (LabelSlot& slot : labels_) {
    const char* cur = slot.label.load(std::memory_order_acquire);
    if (cur == nullptr) {
      const char* expected = nullptr;
      if (!slot.label.compare_exchange_strong(expected, label,
                                              std::memory_order_acq_rel)) {
        cur = expected;
      } else {
        cur = label;
      }
    }
    if (cur == label) {
      slot.regions.fetch_add(1, std::memory_order_relaxed);
      slot.tasks.fetch_add(tasks, std::memory_order_relaxed);
      return;
    }
  }
  // Label table full: the region still runs, it just isn't attributed.
}

std::vector<ThreadPool::LabelStat> ThreadPool::label_stats() const {
  std::vector<LabelStat> out;
  for (const LabelSlot& slot : labels_) {
    const char* label = slot.label.load(std::memory_order_acquire);
    if (label == nullptr) continue;
    out.push_back({label, slot.regions.load(std::memory_order_relaxed),
                   slot.tasks.load(std::memory_order_relaxed)});
  }
  // Slots are claimed in first-use order, which depends on which subsystem
  // hits the pool first; sort so metric/trace emission downstream is
  // byte-stable across runs (docs/STATIC_ANALYSIS.md, det-unordered-iter).
  std::sort(out.begin(), out.end(),
            [](const LabelStat& a, const LabelStat& b) {
              return std::strcmp(a.label, b.label) < 0;
            });
  return out;
}

namespace {
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::mutex& global_pool_mu() {
  static std::mutex mu;
  return mu;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_pool_mu());
  auto& slot = global_pool_slot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(
        ExecConfig{}.with_env_overrides().resolved_threads());
  }
  return *slot;
}

void ThreadPool::set_global_threads(int threads) {
  const int resolved = ExecConfig{threads}.resolved_threads();
  std::lock_guard<std::mutex> lock(global_pool_mu());
  auto& slot = global_pool_slot();
  if (slot && slot->threads() == resolved) return;
  slot = std::make_unique<ThreadPool>(resolved);
}

}  // namespace a3cs::util
