#include "accel/predictor.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/logging.h"

namespace a3cs::accel {

const char* to_string(Noc n) {
  switch (n) {
    case Noc::kSystolic: return "systolic";
    case Noc::kBroadcast: return "broadcast";
    case Noc::kMulticast: return "multicast";
  }
  return "?";
}

const char* to_string(Dataflow d) {
  switch (d) {
    case Dataflow::kWeightStationary: return "WS";
    case Dataflow::kOutputStationary: return "OS";
    case Dataflow::kRowStationary: return "RS";
  }
  return "?";
}

std::string AcceleratorConfig::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const ChunkConfig& c = chunks[i];
    oss << "chunk" << i << "{" << c.pe_rows << "x" << c.pe_cols << ","
        << accel::to_string(c.noc) << "," << accel::to_string(c.dataflow)
        << ",toc=" << c.tile_oc << ",tic=" << c.tile_ic << ",buf="
        << c.split.input << "/" << c.split.weight << "/" << c.split.output
        << "} ";
  }
  oss << "alloc=[";
  for (std::size_t i = 0; i < group_to_chunk.size(); ++i) {
    if (i > 0) oss << ",";
    oss << group_to_chunk[i];
  }
  oss << "]";
  return oss.str();
}

double HwEval::group_cycles(const std::vector<nn::LayerSpec>& specs,
                            int group) const {
  A3CS_CHECK(specs.size() == layers.size(), "group_cycles: size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].group == group) total += layers[i].cycles;
  }
  return total;
}

std::string HwEval::report() const {
  std::ostringstream oss;
  oss << (feasible ? "FEASIBLE" : "INFEASIBLE") << " | FPS " << fps
      << " | II " << ii_cycles << " cyc | latency " << latency_cycles
      << " cyc | energy " << energy_nj / 1e3 << " uJ | DSP " << dsp_used
      << " | BRAM18K " << bram_used << "\n";
  for (std::size_t c = 0; c < chunk_cycles.size(); ++c) {
    oss << "  chunk" << c << ": " << chunk_cycles[c] << " cyc\n";
  }
  return oss.str();
}

Predictor::Predictor(FpgaBudget budget, EnergyModel energy,
                     CostWeights weights)
    : budget_(budget), energy_(energy), weights_(weights) {}

namespace {

// The one spec -> workload decomposition, shared by prepare_network and the
// stack-buffered one-shot path in evaluate(specs, ...) so the two entry
// points stay bit-exact by construction.
inline LayerWorkload layer_workload(const nn::LayerSpec& spec) {
  using Kind = nn::LayerSpec::Kind;
  LayerWorkload wl;
  wl.macs = static_cast<double>(spec.macs());
  // Depthwise layers have no input-channel reduction to parallelize, which
  // is exactly why dataflow choice matters per layer.
  wl.ic = spec.kind == Kind::kDepthwiseConv ? 1 : spec.in_c;
  wl.oc = spec.out_c;
  wl.out_h = spec.out_h;
  wl.out_w = spec.out_w;
  wl.kernel = spec.kernel;
  wl.group = spec.group;
  wl.in_bytes = static_cast<double>(spec.input_elems()) * 2.0;
  wl.w_bytes = static_cast<double>(spec.weight_elems()) * 2.0;
  wl.out_bytes = static_cast<double>(spec.output_elems()) * 2.0;
  wl.psum_bytes = static_cast<double>(spec.output_elems()) * 4.0;
  return wl;
}

}  // namespace

PreparedNetwork prepare_network(const std::vector<nn::LayerSpec>& specs) {
  PreparedNetwork net;
  net.num_groups = nn::num_groups(specs);
  net.layers.reserve(specs.size());
  for (const nn::LayerSpec& spec : specs) {
    net.layers.push_back(layer_workload(spec));
  }
  return net;
}

LayerCost Predictor::layer_cost(const LayerWorkload& wl,
                                const ChunkConfig& chunk,
                                double chunk_sram_bytes,
                                double bytes_per_cycle) const {
  LayerCost out;

  const double macs = wl.macs;

  // --- effective parallelism under the chosen dataflow ------------------
  const int ic = wl.ic;
  const int oc = wl.oc;
  double par = 1.0;
  switch (chunk.dataflow) {
    case Dataflow::kWeightStationary: {
      const int p_ic = std::min({chunk.pe_rows, ic, chunk.tile_ic});
      const int p_oc = std::min({chunk.pe_cols, oc, chunk.tile_oc});
      par = static_cast<double>(p_ic) * p_oc;
      break;
    }
    case Dataflow::kOutputStationary: {
      const int p_h = std::min(chunk.pe_rows, wl.out_h);
      const int p_w = std::min(chunk.pe_cols, wl.out_w);
      par = static_cast<double>(p_h) * p_w;
      break;
    }
    case Dataflow::kRowStationary: {
      const int p_k = std::min(chunk.pe_rows, wl.kernel * wl.kernel);
      const int p_r = std::min(chunk.pe_cols, wl.out_h * std::min(oc, 4));
      par = static_cast<double>(p_k) * p_r;
      break;
    }
  }
  par = std::max(1.0, par);

  // --- NoC efficiency ----------------------------------------------------
  double noc_eff = 1.0;
  double fill_drain = 0.0;
  const int tiles = std::max(1, (oc + chunk.tile_oc - 1) / chunk.tile_oc) *
                    std::max(1, (ic + chunk.tile_ic - 1) / chunk.tile_ic);
  switch (chunk.noc) {
    case Noc::kSystolic:
      // Perfect streaming efficiency but a (rows + cols)-cycle pipeline
      // fill/drain per tile pass.
      fill_drain = static_cast<double>(tiles) *
                   (chunk.pe_rows + chunk.pe_cols);
      break;
    case Noc::kBroadcast:
      // Fanout wiring limits achievable clock utilization on big arrays.
      noc_eff = chunk.num_pes() > 256 ? 0.80 : 0.92;
      break;
    case Noc::kMulticast:
      noc_eff = 0.97;
      break;
  }

  out.compute_cycles = macs / (par * noc_eff) + fill_drain;

  // --- memory traffic ------------------------------------------------------
  const double in_bytes = wl.in_bytes;
  const double w_bytes = wl.w_bytes;
  const double out_bytes = wl.out_bytes;
  const double psum_bytes = wl.psum_bytes;

  const double cap_in = chunk.split.input * chunk_sram_bytes;
  const double cap_w = chunk.split.weight * chunk_sram_bytes;
  const double cap_out = chunk.split.output * chunk_sram_bytes;

  const int oc_tiles = std::max(1, (oc + chunk.tile_oc - 1) / chunk.tile_oc);
  const int ic_tiles = std::max(1, (ic + chunk.tile_ic - 1) / chunk.tile_ic);

  // Inputs are re-read once per output-channel tile unless the whole input
  // (double-buffered) fits on chip.
  const double in_refetch = (2.0 * in_bytes <= cap_in)
                                ? 1.0
                                : static_cast<double>(oc_tiles);
  // Weights stream once; a weight-stationary chunk keeps the working set
  // resident, other dataflows re-read per output-row pass when too large.
  double w_refetch = 1.0;
  if (2.0 * w_bytes > cap_w &&
      chunk.dataflow != Dataflow::kWeightStationary) {
    w_refetch = std::min<double>(4.0, std::max(1, wl.out_h / 4));
  }
  // Partial sums spill per input-channel tile when the accumulators don't
  // fit on chip.
  const double out_spill =
      (psum_bytes <= cap_out) ? 1.0 : static_cast<double>(ic_tiles);

  const double moved = in_bytes * in_refetch + w_bytes * w_refetch +
                       out_bytes * out_spill +
                       (out_spill > 1.0 ? out_bytes * (out_spill - 1.0) : 0.0);
  out.memory_cycles = moved / std::max(1e-9, bytes_per_cycle);

  // On-chip working set actually held (capped by the slice capacities).
  out.sram_bytes = std::min(2.0 * in_bytes, cap_in) +
                   std::min(2.0 * w_bytes, cap_w) +
                   std::min(psum_bytes, cap_out);
  out.dram_bytes = moved;

  // Energy: every MAC, every off-chip byte, and an SRAM access per operand
  // per MAC (dataflow reuse folded into a flat 3-access-per-MAC estimate,
  // the granularity the search actually needs).
  out.energy_nj = macs * energy_.mac_nj +
                  moved * energy_.dram_per_byte_nj +
                  3.0 * macs * 2.0 * energy_.sram_per_byte_nj / 8.0;

  // Tiny layers are latency- rather than throughput-bound: charge a fixed
  // per-layer launch overhead.
  constexpr double kLaunchOverheadCycles = 64.0;
  out.compute_cycles += kLaunchOverheadCycles;

  out.cycles = std::max(out.compute_cycles, out.memory_cycles);
  return out;
}

HwEval Predictor::evaluate(const std::vector<nn::LayerSpec>& specs,
                           const AcceleratorConfig& config) const {
  return evaluate_loop(
      specs.size(), nn::num_groups(specs), config,
      [&specs](std::size_t i) { return layer_workload(specs[i]); });
}

HwEval Predictor::evaluate(const PreparedNetwork& net,
                           const AcceleratorConfig& config) const {
  return evaluate_loop(
      net.layers.size(), net.num_groups, config,
      [&net](std::size_t i) -> const LayerWorkload& { return net.layers[i]; });
}

template <typename LayerAt>
HwEval Predictor::evaluate_loop(std::size_t num_layers, int num_groups,
                                const AcceleratorConfig& config,
                                LayerAt&& layer_at) const {
  A3CS_PROF_SCOPE("predictor-eval");
  static obs::Counter& evals =
      obs::MetricsRegistry::global().counter("predictor.evals");
  evals.inc();
  A3CS_CHECK(!config.chunks.empty(), "accelerator needs at least one chunk");
  A3CS_CHECK(static_cast<int>(config.group_to_chunk.size()) >= num_groups,
             "group_to_chunk smaller than the network's group count");

  HwEval eval;
  eval.layers.reserve(num_layers);
  eval.chunk_cycles.assign(static_cast<std::size_t>(config.num_chunks()), 0.0);

  // Resources: 1 DSP per PE; SRAM and DRAM bandwidth shared in proportion to
  // each chunk's PE allocation (bigger stages get bigger buffers).
  int total_pes = 0;
  for (const ChunkConfig& c : config.chunks) total_pes += c.num_pes();
  eval.dsp_used = total_pes;

  const double bytes_per_cycle_total = budget_.dram_bytes_per_cycle;
  const double sram_total = budget_.bram_bytes();

  std::vector<double> chunk_sram(static_cast<std::size_t>(config.num_chunks()));
  std::vector<double> chunk_bw(static_cast<std::size_t>(config.num_chunks()));
  for (int c = 0; c < config.num_chunks(); ++c) {
    const double share =
        static_cast<double>(config.chunks[static_cast<std::size_t>(c)]
                                .num_pes()) /
        std::max(1, total_pes);
    chunk_sram[static_cast<std::size_t>(c)] = sram_total * share;
    chunk_bw[static_cast<std::size_t>(c)] = bytes_per_cycle_total * share;
  }

  std::vector<double> chunk_sram_needed(
      static_cast<std::size_t>(config.num_chunks()), 0.0);
  for (std::size_t li = 0; li < num_layers; ++li) {
    const LayerWorkload& wl = layer_at(li);
    const int chunk_idx =
        config.group_to_chunk[static_cast<std::size_t>(wl.group)];
    A3CS_CHECK(chunk_idx >= 0 && chunk_idx < config.num_chunks(),
               "layer allocated to a nonexistent chunk");
    LayerCost lc = layer_cost(
        wl, config.chunks[static_cast<std::size_t>(chunk_idx)],
        chunk_sram[static_cast<std::size_t>(chunk_idx)],
        chunk_bw[static_cast<std::size_t>(chunk_idx)]);
    lc.chunk = chunk_idx;
    eval.energy_nj += lc.energy_nj;
    eval.chunk_cycles[static_cast<std::size_t>(chunk_idx)] += lc.cycles;
    chunk_sram_needed[static_cast<std::size_t>(chunk_idx)] =
        std::max(chunk_sram_needed[static_cast<std::size_t>(chunk_idx)],
                 lc.sram_bytes);
    eval.layers.push_back(lc);
  }

  eval.latency_cycles = 0.0;
  eval.ii_cycles = 0.0;
  for (double c : eval.chunk_cycles) {
    eval.latency_cycles += c;
    eval.ii_cycles = std::max(eval.ii_cycles, c);
  }

  // BRAM usage: the largest working set each chunk actually holds (its
  // buffers are sized to its heaviest assigned layer).
  eval.bram_used = 0.0;
  for (int c = 0; c < config.num_chunks(); ++c) {
    eval.bram_used +=
        std::ceil(chunk_sram_needed[static_cast<std::size_t>(c)] / 2304.0);
  }

  // Feasibility.
  double overflow = 0.0;
  if (eval.dsp_used > budget_.dsp) {
    overflow += static_cast<double>(eval.dsp_used - budget_.dsp) / budget_.dsp;
  }
  if (eval.bram_used > budget_.bram18k) {
    overflow += (eval.bram_used - budget_.bram18k) / budget_.bram18k;
  }
  eval.resource_overflow = overflow;
  eval.feasible = overflow == 0.0;
  eval.fps = eval.feasible
                 ? budget_.clock_mhz * 1e6 / std::max(1.0, eval.ii_cycles)
                 : 0.0;
  return eval;
}

double Predictor::scalar_cost(const HwEval& eval) const {
  // Weighted II (milli-seconds at the target clock) and energy (uJ), plus a
  // strong but smooth resource barrier.
  const double ii_ms = eval.ii_cycles / (budget_.clock_mhz * 1e3);
  const double energy_uj = eval.energy_nj * 1e-3;
  return weights_.latency * ii_ms + weights_.energy * energy_uj +
         weights_.barrier * eval.resource_overflow;
}

}  // namespace a3cs::accel
