// Hardware types for the A3C-S accelerator template (paper Sec. IV-A):
// a chunk-based pipelined micro-architecture in the style of Shen et al.'s
// resource-partitioned CNN accelerators. The template comprises `num_chunks`
// sub-accelerators (pipeline stages); each chunk owns a PE array with a
// configurable interconnect (NoC), a private slice of on-chip SRAM split
// between input / weight / output buffers, and a dataflow (loop order +
// tiling) for the MAC schedule. Layers are allocated to chunks by structural
// group, not necessarily consecutively — exactly the four searchable aspects
// the paper lists (PE settings, buffer management, tiling/scheduling, layer
// allocation).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace a3cs::accel {

// PE interconnect styles. Systolic arrays pay a fill/drain latency per tile;
// broadcast/multicast trees lose a little clock efficiency on large arrays.
enum class Noc { kSystolic = 0, kBroadcast = 1, kMulticast = 2 };

// MAC scheduling (which loops are pinned to the PE array / kept stationary).
enum class Dataflow {
  kWeightStationary = 0,  // PEs parallel over (in_c, out_c); weights resident
  kOutputStationary = 1,  // PEs parallel over output pixels; psums resident
  kRowStationary = 2      // Eyeriss-style: kernel rows x output rows
};

const char* to_string(Noc n);
const char* to_string(Dataflow d);

// Fractions of the chunk's SRAM slice given to input / weight / output
// buffers. The searchable presets live in accel::space.
struct BufferSplit {
  double input = 1.0 / 3;
  double weight = 1.0 / 3;
  double output = 1.0 / 3;
};

struct ChunkConfig {
  int pe_rows = 8;
  int pe_cols = 8;
  Noc noc = Noc::kSystolic;
  Dataflow dataflow = Dataflow::kWeightStationary;
  int tile_oc = 8;   // output-channel tile
  int tile_ic = 8;   // input-channel tile
  BufferSplit split;

  int num_pes() const { return pe_rows * pe_cols; }
};

struct AcceleratorConfig {
  std::vector<ChunkConfig> chunks;
  // Structural-group -> chunk assignment (see nn::LayerSpec::group).
  std::vector<int> group_to_chunk;

  int num_chunks() const { return static_cast<int>(chunks.size()); }
  std::string to_string() const;
};

// Target-device envelope. Defaults model the Xilinx ZC706 the paper uses:
// 900 DSP slices (the binding resource, as in Sec. V-E) and 1090 BRAM18K.
struct FpgaBudget {
  int dsp = 900;
  int bram18k = 1090;
  double clock_mhz = 200.0;
  // Off-chip bandwidth shared by all chunks, in bytes per cycle.
  double dram_bytes_per_cycle = 64.0;

  double bram_bytes() const { return bram18k * 2304.0; }  // 18Kb blocks
};

}  // namespace a3cs::accel
