// DNNBuilder-style baseline accelerator generator (Zhang et al., ICCAD'18),
// the SOTA comparison point of the paper's Fig. 3.
//
// DNNBuilder builds a fine-grained per-layer pipeline: every layer gets its
// own stage, with compute parallelism allocated proportionally to the layer's
// MAC count (so all stages run at a matched rate) under the global DSP
// budget, weight-stationary scheduling and column-based line buffers. We
// realize that heuristic on our accelerator template (one chunk per layer
// group, PE arrays sized by the proportional-allocation rule) and evaluate
// it with the same predictor used for DAS-generated designs, which keeps the
// comparison apples-to-apples.
#pragma once

#include <vector>

#include "accel/predictor.h"
#include "nn/layer_spec.h"

namespace a3cs::accel {

struct DnnBuilderOptions {
  // Stage cap: very deep nets fold multiple groups per stage round-robin
  // (DNNBuilder itself fuses shallow layers).
  int max_stages = 16;
};

// Builds the DNNBuilder-style configuration for `specs` under `budget`.
AcceleratorConfig dnnbuilder_config(const std::vector<nn::LayerSpec>& specs,
                                    const FpgaBudget& budget,
                                    const DnnBuilderOptions& opts = {});

// Convenience: build + evaluate in one call.
HwEval dnnbuilder_eval(const std::vector<nn::LayerSpec>& specs,
                       const Predictor& predictor,
                       const DnnBuilderOptions& opts = {});

}  // namespace a3cs::accel
