// Machine-readable (de)serialization of AcceleratorConfig, so searched
// designs can be stored, diffed and re-evaluated without re-running DAS.
//
// Format (one key=value token per field, ';' between chunks):
//   chunks=2;alloc=0,1,1,0;
//   chunk=8x16,noc=1,df=0,toc=16,tic=8,split=0.50:0.30:0.20;
//   chunk=...
// `AcceleratorConfig::to_string()` stays the human-oriented pretty-printer;
// this is the stable round-trip format.
#pragma once

#include <string>

#include "accel/hw_types.h"

namespace a3cs::accel {

std::string encode_config(const AcceleratorConfig& config);

// Throws std::runtime_error on malformed input.
AcceleratorConfig decode_config(const std::string& encoded);

// Convenience file helpers.
void save_config(const std::string& path, const AcceleratorConfig& config);
AcceleratorConfig load_config(const std::string& path);

}  // namespace a3cs::accel
