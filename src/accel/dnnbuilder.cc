#include "accel/dnnbuilder.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace a3cs::accel {
namespace {

// Picks the PE-array dimension pair whose product is closest to (but not
// above) `target_pes`, preferring squarish arrays.
void size_pe_array(int target_pes, int* rows, int* cols) {
  static const int kDims[] = {1, 2, 4, 6, 8, 12, 16, 24, 32};
  int best_r = 1, best_c = 1, best_pes = 1;
  double best_aspect = 1e9;
  for (int r : kDims) {
    for (int c : kDims) {
      const int pes = r * c;
      if (pes > target_pes) continue;
      const double aspect =
          std::abs(std::log(static_cast<double>(r) / c));
      if (pes > best_pes || (pes == best_pes && aspect < best_aspect)) {
        best_pes = pes;
        best_r = r;
        best_c = c;
        best_aspect = aspect;
      }
    }
  }
  *rows = best_r;
  *cols = best_c;
}

}  // namespace

AcceleratorConfig dnnbuilder_config(const std::vector<nn::LayerSpec>& specs,
                                    const FpgaBudget& budget,
                                    const DnnBuilderOptions& opts) {
  A3CS_CHECK(!specs.empty(), "dnnbuilder_config: empty network");
  const int groups = nn::num_groups(specs);
  const int stages = std::min(groups, opts.max_stages);

  // MACs per stage (groups folded round-robin when capped).
  std::vector<double> stage_macs(static_cast<std::size_t>(stages), 0.0);
  std::vector<int> group_to_stage(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    group_to_stage[static_cast<std::size_t>(g)] = g % stages;
  }
  for (const auto& s : specs) {
    stage_macs[static_cast<std::size_t>(
        group_to_stage[static_cast<std::size_t>(s.group)])] +=
        static_cast<double>(s.macs());
  }

  double total_macs = 0.0;
  for (double m : stage_macs) total_macs += m;
  A3CS_CHECK(total_macs > 0.0, "dnnbuilder_config: zero-MAC network");

  AcceleratorConfig cfg;
  for (int st = 0; st < stages; ++st) {
    // Compute-proportional DSP allocation (DNNBuilder's rate matching),
    // at least a 1x2 array per stage.
    const double share = stage_macs[static_cast<std::size_t>(st)] / total_macs;
    const int target =
        std::max(2, static_cast<int>(std::floor(share * budget.dsp)));
    ChunkConfig chunk;
    size_pe_array(target, &chunk.pe_rows, &chunk.pe_cols);
    chunk.noc = Noc::kSystolic;  // DNNBuilder's pipelined column compute
    chunk.dataflow = Dataflow::kWeightStationary;
    chunk.tile_oc = 16;
    chunk.tile_ic = 16;
    chunk.split = BufferSplit{0.45, 0.35, 0.20};  // column/line buffers
    cfg.chunks.push_back(chunk);
  }
  cfg.group_to_chunk = std::move(group_to_stage);
  return cfg;
}

HwEval dnnbuilder_eval(const std::vector<nn::LayerSpec>& specs,
                       const Predictor& predictor,
                       const DnnBuilderOptions& opts) {
  const AcceleratorConfig cfg =
      dnnbuilder_config(specs, predictor.budget(), opts);
  return predictor.evaluate(specs, cfg);
}

}  // namespace a3cs::accel
