#include "accel/fa3c.h"

namespace a3cs::accel {

AcceleratorConfig fa3c_config(const std::vector<nn::LayerSpec>& specs) {
  AcceleratorConfig cfg;
  ChunkConfig chunk;
  chunk.pe_rows = 16;
  chunk.pe_cols = 16;
  chunk.noc = Noc::kSystolic;
  chunk.dataflow = Dataflow::kWeightStationary;
  chunk.tile_oc = 16;
  chunk.tile_ic = 16;
  chunk.split = BufferSplit{1.0 / 3, 1.0 / 3, 1.0 / 3};
  cfg.chunks.push_back(chunk);
  cfg.group_to_chunk.assign(
      static_cast<std::size_t>(nn::num_groups(specs)), 0);
  return cfg;
}

HwEval fa3c_eval(const std::vector<nn::LayerSpec>& specs,
                 const Predictor& predictor) {
  return predictor.evaluate(specs, fa3c_config(specs));
}

}  // namespace a3cs::accel
