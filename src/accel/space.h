// The searchable accelerator design space (paper: "a parameterized
// micro-architecture with over 10^27 searchable choices of accelerators and
// dataflows"). Each knob is one categorical dimension; the DAS engine owns
// one GumbelCategorical per knob. decode() turns a per-knob choice vector
// into a concrete AcceleratorConfig for the predictor.
#pragma once

#include <string>
#include <vector>

#include "accel/hw_types.h"
#include "util/rng.h"

namespace a3cs::accel {

struct KnobSpec {
  std::string name;
  int num_choices = 0;
};

class AcceleratorSpace {
 public:
  // `num_groups` is the network's structural group count (layer-allocation
  // knobs are per group).
  AcceleratorSpace(int num_chunks, int num_groups);

  int num_chunks() const { return num_chunks_; }
  int num_groups() const { return num_groups_; }

  // Flat knob list: for each chunk {pe_rows, pe_cols, noc, dataflow,
  // tile_oc, tile_ic, buffer_split}, then one allocation knob per group.
  const std::vector<KnobSpec>& knobs() const { return knobs_; }
  int num_knobs() const { return static_cast<int>(knobs_.size()); }

  AcceleratorConfig decode(const std::vector<int>& choices) const;
  std::vector<int> random_choices(util::Rng& rng) const;

  // Total number of distinct configurations (as a double; overflows int64).
  double size() const;
  double log10_size() const;

  // The discrete value sets (exposed for tests and exhaustive baselines).
  static const std::vector<int>& pe_dim_choices();
  static const std::vector<int>& tile_choices();
  static const std::vector<BufferSplit>& split_choices();

 private:
  int num_chunks_;
  int num_groups_;
  std::vector<KnobSpec> knobs_;
};

}  // namespace a3cs::accel
