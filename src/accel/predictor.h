// Analytical performance/resource predictor in the style of DNN-Chip
// Predictor / AutoDNNchip — the same class of predictor the paper itself
// uses to drive its accelerator search (Sec. V-A, "A3C-S makes use of a SOTA
// accelerator performance predictor to obtain fast and reliable estimation
// during search").
//
// Model summary (per layer, on its assigned chunk):
//   compute_cycles = MACs / effective_parallelism * noc_efficiency
//                    + systolic fill/drain per tile
//   memory_cycles  = moved_bytes / per-chunk DRAM bytes-per-cycle, where
//                    moved_bytes accounts for tiling-induced refetch whenever
//                    a tensor exceeds its buffer slice
//   layer_cycles   = max(compute, memory)          (double buffering)
// Chunk latency is the sum over its layers; the pipeline initiation interval
// (II) is the max chunk latency; FPS = clock / II. Resources: 1 DSP per PE;
// BRAM slices proportional to each chunk's DSP share.
#pragma once

#include <cstddef>
#include <vector>

#include "accel/hw_types.h"
#include "nn/layer_spec.h"

namespace a3cs::accel {

// Config-independent per-layer workload quantities — everything evaluate()
// needs from a LayerSpec, decomposed once per network instead of once per
// candidate config. The serving layer (src/serve) hoists this out of the
// per-config loop: a batched request touching thousands of configs pays the
// decomposition exactly once. Values are the *same doubles* the spec-based
// path computes, so prepared evaluation is bit-exact with evaluate(specs,...).
struct LayerWorkload {
  double macs = 0.0;
  int ic = 1;  // reduction channels (1 for depthwise — nothing to reduce)
  int oc = 1;
  int out_h = 1, out_w = 1;
  int kernel = 1;
  int group = 0;
  double in_bytes = 0.0;
  double w_bytes = 0.0;
  double out_bytes = 0.0;
  double psum_bytes = 0.0;
};

struct PreparedNetwork {
  std::vector<LayerWorkload> layers;
  int num_groups = 0;
};

// Decomposes a network once; reusable across any number of evaluate() calls.
PreparedNetwork prepare_network(const std::vector<nn::LayerSpec>& specs);

struct LayerCost {
  double compute_cycles = 0.0;
  double memory_cycles = 0.0;
  double cycles = 0.0;       // max of the two
  double sram_bytes = 0.0;   // on-chip working set this layer occupies
  double dram_bytes = 0.0;   // off-chip traffic per inference
  double energy_nj = 0.0;    // MAC + SRAM + DRAM energy per inference
  int chunk = 0;
};

// Per-operation energy coefficients (nJ), 16-bit datapath, 45nm-class
// numbers in the spirit of the Eyeriss/DNN-Chip-Predictor energy tables:
// a DRAM access costs ~2 orders of magnitude more than a MAC.
struct EnergyModel {
  double mac_nj = 0.003;
  double sram_per_byte_nj = 0.006;
  double dram_per_byte_nj = 0.16;
};

struct HwEval {
  bool feasible = true;           // within DSP/BRAM budget
  double ii_cycles = 0.0;         // pipeline initiation interval
  double latency_cycles = 0.0;    // end-to-end single-frame latency
  double fps = 0.0;               // clock / II (0 when infeasible)
  double energy_nj = 0.0;         // energy per inference
  int dsp_used = 0;
  double bram_used = 0.0;         // BRAM18K blocks
  double resource_overflow = 0.0; // normalized overshoot (0 when feasible)
  std::vector<LayerCost> layers;
  std::vector<double> chunk_cycles;

  // Cycles attributed to one structural group (for Eq. 8's layer-wise cost).
  double group_cycles(const std::vector<nn::LayerSpec>& specs,
                      int group) const;

  // Multi-line human-readable summary (FPS, resources, per-chunk cycles).
  std::string report() const;
};

// Relative weights of the cost terms inside L_cost. The paper optimizes
// latency/FPS; the energy term enables energy(-delay) objectives on the same
// engine (ablatable via bench_ablation_lambda / DAS cost weights).
struct CostWeights {
  double latency = 1.0;     // per ms of initiation interval
  double energy = 0.0;      // per uJ of inference energy
  double barrier = 10.0;    // per unit of normalized resource overflow
};

class Predictor {
 public:
  explicit Predictor(FpgaBudget budget = FpgaBudget{},
                     EnergyModel energy = EnergyModel{},
                     CostWeights weights = CostWeights{});

  HwEval evaluate(const std::vector<nn::LayerSpec>& specs,
                  const AcceleratorConfig& config) const;

  // Same evaluation from a hoisted decomposition (bit-exact with the
  // spec-based overload; see LayerWorkload). The fast path for batched
  // serving, where one network meets thousands of candidate configs.
  HwEval evaluate(const PreparedNetwork& net,
                  const AcceleratorConfig& config) const;

  // Scalar hardware cost L_cost for the search: weighted II (+ energy) plus
  // a smooth barrier on resource overflow (infeasible points stay
  // differentiable targets rather than NaNs).
  double scalar_cost(const HwEval& eval) const;

  const FpgaBudget& budget() const { return budget_; }
  const EnergyModel& energy_model() const { return energy_; }
  const CostWeights& cost_weights() const { return weights_; }

 private:
  // Shared body of both evaluate() overloads, abstracted over how the i-th
  // LayerWorkload is obtained: the spec-based path decomposes each layer
  // on the fly (no per-call allocation or materialized array — this overload
  // sits inside the DAS/NAS inner loops and a per-call heap pass measurably
  // regresses bench predictor_eval), the prepared path reads its hoisted
  // vector. Identical arithmetic in identical order keeps the two entry
  // points bit-exact. Defined in predictor.cc; instantiated only there.
  template <typename LayerAt>
  HwEval evaluate_loop(std::size_t num_layers, int num_groups,
                       const AcceleratorConfig& config,
                       LayerAt&& layer_at) const;

  LayerCost layer_cost(const LayerWorkload& wl, const ChunkConfig& chunk,
                       double chunk_sram_bytes, double bytes_per_cycle) const;

  FpgaBudget budget_;
  EnergyModel energy_;
  CostWeights weights_;
};

}  // namespace a3cs::accel
