// FA3C reference point (Cho et al., ASPLOS'19) used by the paper's Table III.
//
// FA3C is an FPGA inference engine for A3C agents with the DQN "Vanilla"
// backbone; the paper compares against FA3C's *reported* operating point —
// a flat ~260 FPS across all six games — rather than re-implementing it.
// We mirror that protocol: the baseline is pinned at the reported FPS and
// its test scores come from an undistilled Vanilla agent (FA3C accelerates
// the stock A3C agent without changing its learning algorithm).
#pragma once

#include "accel/predictor.h"
#include "nn/layer_spec.h"

namespace a3cs::accel {

// FPS reported by the FA3C paper across the Table-III games (kept for
// documentation; our Table-III bench evaluates the FA3C-style design below
// on the same predictor as everything else so the comparison stays within
// one cost model).
inline constexpr double kFa3cReportedFps = 260.0;

// FA3C-style fixed design: a single monolithic compute engine (no chunk
// pipelining), 16x16 systolic array, weight-stationary schedule, balanced
// buffers — i.e. a non-co-designed one-size-fits-all accelerator for the
// stock A3C agent.
AcceleratorConfig fa3c_config(const std::vector<nn::LayerSpec>& specs);

HwEval fa3c_eval(const std::vector<nn::LayerSpec>& specs,
                 const Predictor& predictor);

}  // namespace a3cs::accel
