#include "accel/space.h"

#include <cmath>

#include "util/logging.h"

namespace a3cs::accel {

const std::vector<int>& AcceleratorSpace::pe_dim_choices() {
  static const std::vector<int> v = {2, 4, 6, 8, 12, 16, 24, 32};
  return v;
}

const std::vector<int>& AcceleratorSpace::tile_choices() {
  static const std::vector<int> v = {4, 8, 16, 32};
  return v;
}

const std::vector<BufferSplit>& AcceleratorSpace::split_choices() {
  static const std::vector<BufferSplit> v = {
      {0.50, 0.30, 0.20}, {0.30, 0.50, 0.20}, {0.20, 0.30, 0.50},
      {0.40, 0.40, 0.20}, {0.34, 0.33, 0.33}, {0.60, 0.20, 0.20},
  };
  return v;
}

AcceleratorSpace::AcceleratorSpace(int num_chunks, int num_groups)
    : num_chunks_(num_chunks), num_groups_(num_groups) {
  A3CS_CHECK(num_chunks >= 1, "need at least one chunk");
  A3CS_CHECK(num_groups >= 1, "need at least one layer group");
  for (int c = 0; c < num_chunks; ++c) {
    const std::string p = "chunk" + std::to_string(c) + ".";
    knobs_.push_back({p + "pe_rows", static_cast<int>(pe_dim_choices().size())});
    knobs_.push_back({p + "pe_cols", static_cast<int>(pe_dim_choices().size())});
    knobs_.push_back({p + "noc", 3});
    knobs_.push_back({p + "dataflow", 3});
    knobs_.push_back({p + "tile_oc", static_cast<int>(tile_choices().size())});
    knobs_.push_back({p + "tile_ic", static_cast<int>(tile_choices().size())});
    knobs_.push_back({p + "split", static_cast<int>(split_choices().size())});
  }
  for (int g = 0; g < num_groups; ++g) {
    knobs_.push_back({"group" + std::to_string(g) + ".chunk", num_chunks});
  }
}

AcceleratorConfig AcceleratorSpace::decode(
    const std::vector<int>& choices) const {
  A3CS_CHECK(static_cast<int>(choices.size()) == num_knobs(),
             "decode: choice count mismatch");
  AcceleratorConfig cfg;
  int k = 0;
  for (int c = 0; c < num_chunks_; ++c) {
    ChunkConfig chunk;
    chunk.pe_rows = pe_dim_choices()[static_cast<std::size_t>(choices[k++])];
    chunk.pe_cols = pe_dim_choices()[static_cast<std::size_t>(choices[k++])];
    chunk.noc = static_cast<Noc>(choices[k++]);
    chunk.dataflow = static_cast<Dataflow>(choices[k++]);
    chunk.tile_oc = tile_choices()[static_cast<std::size_t>(choices[k++])];
    chunk.tile_ic = tile_choices()[static_cast<std::size_t>(choices[k++])];
    chunk.split = split_choices()[static_cast<std::size_t>(choices[k++])];
    cfg.chunks.push_back(chunk);
  }
  cfg.group_to_chunk.resize(static_cast<std::size_t>(num_groups_));
  for (int g = 0; g < num_groups_; ++g) {
    cfg.group_to_chunk[static_cast<std::size_t>(g)] = choices[k++];
  }
  return cfg;
}

std::vector<int> AcceleratorSpace::random_choices(util::Rng& rng) const {
  std::vector<int> out;
  out.reserve(knobs_.size());
  for (const KnobSpec& k : knobs_) out.push_back(rng.uniform_int(k.num_choices));
  return out;
}

double AcceleratorSpace::size() const {
  double s = 1.0;
  for (const KnobSpec& k : knobs_) s *= static_cast<double>(k.num_choices);
  return s;
}

double AcceleratorSpace::log10_size() const {
  double s = 0.0;
  for (const KnobSpec& k : knobs_) s += std::log10(k.num_choices);
  return s;
}

}  // namespace a3cs::accel
