#include "accel/config_io.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace a3cs::accel {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    out.push_back(s.substr(pos, next == std::string::npos ? std::string::npos
                                                          : next - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

int to_int(const std::string& s) {
  std::size_t used = 0;
  const int v = std::stoi(s, &used);
  A3CS_CHECK(used == s.size(), "decode_config: bad integer '" + s + "'");
  return v;
}

double to_double(const std::string& s) {
  std::size_t used = 0;
  const double v = std::stod(s, &used);
  A3CS_CHECK(used == s.size(), "decode_config: bad number '" + s + "'");
  return v;
}

}  // namespace

std::string encode_config(const AcceleratorConfig& config) {
  std::ostringstream oss;
  // max_digits10 so the buffer-split doubles survive decode(encode(cfg))
  // byte-identically — the encoded text is the canonical form behind the
  // serving layer's cache keys, where a ULP of drift would make the same
  // config hash differently after a wire round trip (docs/SERVING.md).
  oss.precision(17);
  oss << "chunks=" << config.num_chunks() << ";alloc=";
  for (std::size_t i = 0; i < config.group_to_chunk.size(); ++i) {
    if (i > 0) oss << ",";
    oss << config.group_to_chunk[i];
  }
  for (const ChunkConfig& c : config.chunks) {
    oss << ";chunk=" << c.pe_rows << "x" << c.pe_cols
        << ",noc=" << static_cast<int>(c.noc)
        << ",df=" << static_cast<int>(c.dataflow) << ",toc=" << c.tile_oc
        << ",tic=" << c.tile_ic << ",split=" << c.split.input << ":"
        << c.split.weight << ":" << c.split.output;
  }
  return oss.str();
}

AcceleratorConfig decode_config(const std::string& encoded) {
  AcceleratorConfig config;
  int declared_chunks = -1;
  for (const std::string& token : split(encoded, ';')) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    A3CS_CHECK(eq != std::string::npos,
               "decode_config: missing '=' in '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "chunks") {
      declared_chunks = to_int(value);
    } else if (key == "alloc") {
      for (const std::string& g : split(value, ',')) {
        if (!g.empty()) config.group_to_chunk.push_back(to_int(g));
      }
    } else if (key == "chunk") {
      ChunkConfig chunk;
      for (const std::string& field : split(value, ',')) {
        const std::size_t feq = field.find('=');
        if (feq == std::string::npos) {
          // The leading "RxC" geometry token.
          const auto dims = split(field, 'x');
          A3CS_CHECK(dims.size() == 2, "decode_config: bad PE dims '" +
                                           field + "'");
          chunk.pe_rows = to_int(dims[0]);
          chunk.pe_cols = to_int(dims[1]);
          continue;
        }
        const std::string fkey = field.substr(0, feq);
        const std::string fval = field.substr(feq + 1);
        if (fkey == "noc") {
          const int v = to_int(fval);
          A3CS_CHECK(v >= 0 && v <= 2, "decode_config: bad noc");
          chunk.noc = static_cast<Noc>(v);
        } else if (fkey == "df") {
          const int v = to_int(fval);
          A3CS_CHECK(v >= 0 && v <= 2, "decode_config: bad dataflow");
          chunk.dataflow = static_cast<Dataflow>(v);
        } else if (fkey == "toc") {
          chunk.tile_oc = to_int(fval);
        } else if (fkey == "tic") {
          chunk.tile_ic = to_int(fval);
        } else if (fkey == "split") {
          const auto parts = split(fval, ':');
          A3CS_CHECK(parts.size() == 3, "decode_config: bad split");
          chunk.split.input = to_double(parts[0]);
          chunk.split.weight = to_double(parts[1]);
          chunk.split.output = to_double(parts[2]);
        } else {
          throw std::runtime_error("decode_config: unknown field '" + fkey +
                                   "'");
        }
      }
      A3CS_CHECK(chunk.pe_rows > 0 && chunk.pe_cols > 0,
                 "decode_config: chunk missing PE dims");
      config.chunks.push_back(chunk);
    } else {
      throw std::runtime_error("decode_config: unknown key '" + key + "'");
    }
  }
  A3CS_CHECK(!config.chunks.empty(), "decode_config: no chunks");
  A3CS_CHECK(declared_chunks == config.num_chunks(),
             "decode_config: chunk count mismatch");
  for (int g : config.group_to_chunk) {
    A3CS_CHECK(g >= 0 && g < config.num_chunks(),
               "decode_config: allocation to nonexistent chunk");
  }
  return config;
}

void save_config(const std::string& path, const AcceleratorConfig& config) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_config: cannot open " + path);
  out << encode_config(config) << "\n";
}

AcceleratorConfig load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_config: cannot open " + path);
  std::string line;
  std::getline(in, line);
  return decode_config(line);
}

}  // namespace a3cs::accel
