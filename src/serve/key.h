// Canonical cache keys for predictor-as-a-service (docs/SERVING.md).
//
// The analytical predictor is a pure function of (network, accelerator
// config, predictor parameters), so its results are content-addressable. A
// key digests the byte-stable canonical field sequence of all three — the
// exact fields accel/config_io serializes, in the same order, with doubles
// taken by bit pattern — through two independent splitmix64-style block
// mixers, giving a 128-bit digest. We store digests, not the serialized
// text, and we mix whole 64-bit fields, not bytes: a warm cache hit must
// cost nanoseconds, and both a string build (~μs) and a byte-wise FNV loop
// over ~400 canonical bytes (~several hundred ns) would rival the ~μs
// analytic evaluation itself on the single-core hosts the bench gate runs
// on.
//
// Collisions: for a 128-bit digest over n distinct keys the collision
// probability is ~n^2 / 2^129 — at a billion cached configs that is ~1e-21,
// far below any hardware error rate. cache_key_text() renders the matching
// human-readable canonical form (via accel::encode_config) for logs and for
// tests asserting digest/text coherence.
//
// Round-trip canonicalization is load-bearing: a config decoded from its
// encoded text must reproduce identical field bytes, or the "same" config
// would key differently after a wire round trip. encode_config therefore
// serializes doubles at max_digits10 precision, and serve_test asserts
// decode(encode(cfg)) byte-identity across a search-space sample.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "accel/hw_types.h"
#include "nn/layer_spec.h"

namespace a3cs::serve {

struct Digest128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Digest128& a, const Digest128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Digest128& a, const Digest128& b) {
    return !(a == b);
  }
};

// Two independent chained-mix streams over 64-bit blocks. Each field passes
// through the splitmix64 finalizer (a bijection with full avalanche) and is
// chained into two accumulators seeded differently; the second stream also
// folds the field index, so reordered or shifted field sequences decorrelate
// even when the multiset of field values is identical. ~10 ALU ops per field
// per stream — keying a 4-chunk config (≈50 fields) costs ~100 ns.
class Hash128 {
 public:
  Hash128& u64(std::uint64_t v) {
    const std::uint64_t m = mix(v);
    lo_ = mix(lo_ ^ m);
    hi_ = mix(hi_ + m + count_);
    ++count_;
    return *this;
  }
  Hash128& i32(std::int32_t v) {
    return u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  Hash128& f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }

  Digest128 digest() const { return {lo_, hi_}; }

 private:
  // splitmix64 finalizer (Steele et al.); bijective, full avalanche.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint64_t lo_ = 0x243f6a8885a308d3ull;  // pi fraction bits
  std::uint64_t hi_ = 0x13198a2e03707344ull;
  std::uint64_t count_ = 0;
};

// Digest of a network's hardware-facing geometry: per layer the same fields
// the predictor consumes (kind, channels, spatial dims, kernel, stride,
// group). Layer *names* are excluded on purpose — the cost model is
// name-independent, so differently-named copies of one geometry share cache
// entries.
struct NetworkSignature {
  Digest128 digest;
  int num_layers = 0;
  int num_groups = 0;
};

NetworkSignature network_signature(const std::vector<nn::LayerSpec>& specs);

// One cache key = (network signature, accelerator config, salt). The salt
// scopes keys to a predictor's parameters (budget/energy/cost weights) so
// services over different predictors never alias.
struct CacheKey {
  Digest128 digest;
};

// Folds the config's canonical field sequence (accel/config_io field set and
// order) into the signature digest.
CacheKey cache_key(const NetworkSignature& net,
                   const accel::AcceleratorConfig& config,
                   std::uint64_t salt = 0);

// Human-readable canonical form of the same key material:
//   "net=<lo hex>:<hi hex>|salt=<hex>|<accel::encode_config(config)>"
// for logs/tests; the digest of cache_key() is the authoritative key.
std::string cache_key_text(const NetworkSignature& net,
                           const accel::AcceleratorConfig& config,
                           std::uint64_t salt = 0);

}  // namespace a3cs::serve
