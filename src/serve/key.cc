#include "serve/key.h"

#include <cstdio>

#include "accel/config_io.h"

namespace a3cs::serve {

NetworkSignature network_signature(const std::vector<nn::LayerSpec>& specs) {
  Hash128 h;
  h.u64(specs.size());
  for (const nn::LayerSpec& spec : specs) {
    h.i32(static_cast<int>(spec.kind));
    h.i32(spec.in_c);
    h.i32(spec.out_c);
    h.i32(spec.kernel);
    h.i32(spec.stride);
    h.i32(spec.in_h);
    h.i32(spec.in_w);
    h.i32(spec.out_h);
    h.i32(spec.out_w);
    h.i32(spec.group);
  }
  NetworkSignature sig;
  sig.digest = h.digest();
  sig.num_layers = static_cast<int>(specs.size());
  sig.num_groups = nn::num_groups(specs);
  return sig;
}

CacheKey cache_key(const NetworkSignature& net,
                   const accel::AcceleratorConfig& config,
                   std::uint64_t salt) {
  // Field order mirrors accel::encode_config: chunk count, the allocation
  // vector, then every chunk's fields — the digest is a hash of that
  // canonical serialization without materializing the text.
  Hash128 h;
  h.u64(net.digest.lo).u64(net.digest.hi).u64(salt);
  h.i32(config.num_chunks());
  h.u64(config.group_to_chunk.size());
  for (int g : config.group_to_chunk) h.i32(g);
  for (const accel::ChunkConfig& c : config.chunks) {
    h.i32(c.pe_rows);
    h.i32(c.pe_cols);
    h.i32(static_cast<int>(c.noc));
    h.i32(static_cast<int>(c.dataflow));
    h.i32(c.tile_oc);
    h.i32(c.tile_ic);
    h.f64(c.split.input);
    h.f64(c.split.weight);
    h.f64(c.split.output);
  }
  return CacheKey{h.digest()};
}

std::string cache_key_text(const NetworkSignature& net,
                           const accel::AcceleratorConfig& config,
                           std::uint64_t salt) {
  char head[80];
  std::snprintf(head, sizeof(head), "net=%016llx:%016llx|salt=%llx|",
                static_cast<unsigned long long>(net.digest.lo),
                static_cast<unsigned long long>(net.digest.hi),
                static_cast<unsigned long long>(salt));
  return std::string(head) + accel::encode_config(config);
}

}  // namespace a3cs::serve
