#include "serve/cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/config.h"
#include "util/logging.h"

namespace a3cs::serve {

namespace {

obs::Counter& global_counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}

}  // namespace

CacheConfig CacheConfig::with_env_overrides() const {
  CacheConfig out = *this;
  out.enabled = util::env_int("A3CS_CACHE", out.enabled ? 1 : 0) != 0;
  out.shards = static_cast<int>(std::max<std::int64_t>(
      1, util::env_int("A3CS_CACHE_SHARDS", out.shards)));
  out.capacity =
      std::max<std::int64_t>(1, util::env_int("A3CS_CACHE_CAPACITY",
                                              out.capacity));
  return out;
}

ShardedCache::ShardedCache(CacheConfig cfg) : cfg_(cfg) {
  const int n = std::max(1, cfg_.shards);
  capacity_per_shard_ =
      std::max<std::int64_t>(1, (std::max<std::int64_t>(1, cfg_.capacity) +
                                 n - 1) / n);
  capacity_total_ = capacity_per_shard_ * n;
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

CachedEvalPtr ShardedCache::peek(const CacheKey& key) {
  if (!cfg_.enabled) return nullptr;
  static obs::Counter& hits = global_counter("serve.cache.hits");
  static obs::Counter& misses = global_counter("serve.cache.misses");
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key.digest);
  if (it == shard.map.end()) {
    misses.inc();
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits.inc();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

CachedEvalPtr ShardedCache::lookup(const CacheKey& key) {
  if (!cfg_.enabled) return nullptr;
  static obs::Counter& hits = global_counter("serve.cache.hits");
  static obs::Counter& misses = global_counter("serve.cache.misses");
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key.digest);
  if (it == shard.map.end()) {
    misses.inc();
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits.inc();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void ShardedCache::touch(const CacheKey& key) {
  if (!cfg_.enabled) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key.digest);
  if (it != shard.map.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  }
}

void ShardedCache::insert(const CacheKey& key, CachedEvalPtr value) {
  if (!cfg_.enabled || value == nullptr) return;
  static obs::Counter& inserts = global_counter("serve.cache.inserts");
  static obs::Counter& evictions = global_counter("serve.cache.evictions");
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key.digest);
  if (it != shard.map.end()) {
    // Refresh: same digest means same canonical content; keep the newer
    // value pointer and promote.
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key.digest, std::move(value)});
  shard.map.emplace(key.digest, shard.lru.begin());
  inserts.inc();
  inserts_.fetch_add(1, std::memory_order_relaxed);
  size_.fetch_add(1, std::memory_order_relaxed);
  while (static_cast<std::int64_t>(shard.lru.size()) > capacity_per_shard_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions.inc();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ShardedCache::replay(const std::vector<ReplayOp>& ops) {
  if (!cfg_.enabled || ops.empty()) return;
  static obs::Counter& inserts = global_counter("serve.cache.inserts");
  static obs::Counter& evictions = global_counter("serve.cache.evictions");
  // Counting-sort op indices by shard so each shard's ops replay in their
  // original relative order under a single lock acquisition.
  const std::size_t n_shards = shards_.size();
  std::vector<std::uint32_t> bucket_end(n_shards + 1, 0);
  std::vector<std::uint32_t> shard_of(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    shard_of[i] =
        static_cast<std::uint32_t>(ops[i].key.digest.hi % n_shards);
    ++bucket_end[shard_of[i] + 1];
  }
  for (std::size_t s = 1; s <= n_shards; ++s) {
    bucket_end[s] += bucket_end[s - 1];
  }
  std::vector<std::uint32_t> order(ops.size());
  {
    std::vector<std::uint32_t> cursor(bucket_end.begin(),
                                      bucket_end.end() - 1);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      order[cursor[shard_of[i]]++] = static_cast<std::uint32_t>(i);
    }
  }
  std::int64_t inserted = 0;
  std::int64_t evicted = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    if (bucket_end[s] == bucket_end[s + 1]) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (std::uint32_t oi = bucket_end[s]; oi < bucket_end[s + 1]; ++oi) {
      const ReplayOp& op = ops[order[oi]];
      const auto it = shard.map.find(op.key.digest);
      if (op.insert_value == nullptr || *op.insert_value == nullptr) {
        if (it != shard.map.end()) {
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        }
        continue;
      }
      if (it != shard.map.end()) {
        it->second->value = *op.insert_value;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        continue;
      }
      shard.lru.push_front(Entry{op.key.digest, *op.insert_value});
      shard.map.emplace(op.key.digest, shard.lru.begin());
      ++inserted;
      while (static_cast<std::int64_t>(shard.lru.size()) >
             capacity_per_shard_) {
        shard.map.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (inserted > 0) {
    inserts.inc(inserted);
    inserts_.fetch_add(inserted, std::memory_order_relaxed);
  }
  if (evicted > 0) {
    evictions.inc(evicted);
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
  }
  size_.fetch_add(inserted - evicted, std::memory_order_relaxed);
}

void ShardedCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    size_.fetch_sub(static_cast<std::int64_t>(shard->lru.size()),
                    std::memory_order_relaxed);
    shard->lru.clear();
    shard->map.clear();
  }
}

std::int64_t ShardedCache::size() const {
  return size_.load(std::memory_order_relaxed);
}

ShardedCache::Stats ShardedCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.size = size();
  s.capacity = capacity_total_;
  s.shards = shards();
  return s;
}

void ShardedCache::publish_metrics() const {
  const Stats s = stats();
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("serve.cache.occupancy").set(static_cast<double>(s.size));
  reg.gauge("serve.cache.capacity").set(static_cast<double>(s.capacity));
  reg.gauge("serve.cache.shards").set(static_cast<double>(s.shards));
  reg.gauge("serve.cache.hit_rate").set(s.hit_rate());
}

}  // namespace a3cs::serve
