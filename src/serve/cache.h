// Sharded memo-cache for predictor evaluations (docs/SERVING.md).
//
// N mutex-striped shards, each an LRU list + hash index keyed by the 128-bit
// canonical digest (serve/key.h). Values are shared_ptr<const CachedEval>,
// so a hit costs one shard lock, one hash probe and a refcount bump — no
// HwEval deep copy — and an entry evicted mid-flight stays alive for the
// clients already holding it.
//
// Concurrency: every shard operation is safe from any thread. peek() reads
// without promoting, so batched callers can fan lookups across the pool and
// replay recency updates serially (PredictorService does exactly this; the
// cache's content after a batch is then a pure function of the batch
// sequence, independent of thread count). Correctness never depends on cache
// state: the predictor is pure, so a lost entry only costs a recompute of a
// bit-identical value.
//
// Env overrides (CacheConfig::with_env_overrides):
//   A3CS_CACHE=0|1            disable/enable caching (default on)
//   A3CS_CACHE_SHARDS=N       mutex stripes (default 8)
//   A3CS_CACHE_CAPACITY=N     total entries across shards (default 8192)
//
// Metrics: hits/misses/inserts/evictions tick the process-global
// serve.cache.* counters as they happen; publish_metrics() refreshes the
// serve.cache.{occupancy,capacity,shards,hit_rate} gauges from this
// instance (docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "accel/predictor.h"
#include "serve/key.h"
#include "util/thread_annotations.h"

namespace a3cs::serve {

struct CacheConfig {
  int shards = 8;
  std::int64_t capacity = 8192;  // total entries, split evenly across shards
  bool enabled = true;

  // Returns a copy with A3CS_CACHE / A3CS_CACHE_SHARDS / A3CS_CACHE_CAPACITY
  // applied on top (env wins). Out-of-range values are clamped to >= 1.
  CacheConfig with_env_overrides() const;
};

// One memoized evaluation: the full HwEval plus the predictor's scalar cost.
struct CachedEval {
  accel::HwEval eval;
  double cost = 0.0;
};
using CachedEvalPtr = std::shared_ptr<const CachedEval>;

class ShardedCache {
 public:
  explicit ShardedCache(CacheConfig cfg = CacheConfig{});

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  // Hit: promotes the entry to most-recently-used and returns it.
  // Miss (or cache disabled): returns nullptr. Counts a hit or miss.
  CachedEvalPtr lookup(const CacheKey& key);

  // Like lookup() but never touches recency (for parallel lookup phases
  // whose recency updates are replayed serially via touch()).
  CachedEvalPtr peek(const CacheKey& key);

  // Promotes `key` to most-recently-used if present; no-op otherwise.
  void touch(const CacheKey& key);

  // Inserts (or refreshes) an entry as most-recently-used, evicting from the
  // shard's LRU tail while over per-shard capacity. No-op when disabled.
  void insert(const CacheKey& key, CachedEvalPtr value);

  // One step of a batched recency replay: insert `*insert_value` when
  // non-null, touch otherwise (see replay()).
  struct ReplayOp {
    CacheKey key;
    const CachedEvalPtr* insert_value = nullptr;  // null => touch
  };

  // Applies ops in index order *within each shard*, taking every shard lock
  // once instead of once per op. Shards are mutually independent LRU
  // domains, so the resulting cache state is byte-identical to issuing the
  // ops one at a time in sequence. This is the serial-replay fast path of
  // PredictorService::evaluate_batch — per-op lock round trips dominated the
  // warm-batch profile before batching.
  void replay(const std::vector<ReplayOp>& ops);

  void clear();

  bool enabled() const { return cfg_.enabled; }
  int shards() const { return static_cast<int>(shards_.size()); }
  std::int64_t capacity() const { return capacity_total_; }
  std::int64_t size() const;

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t inserts = 0;
    std::int64_t evictions = 0;
    std::int64_t size = 0;
    std::int64_t capacity = 0;
    int shards = 0;
    double hit_rate() const {
      const double total = static_cast<double>(hits + misses);
      return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
    }
  };
  Stats stats() const;

  // Refreshes the serve.cache.* gauges from this instance's stats.
  void publish_metrics() const;

 private:
  struct Entry {
    Digest128 key;
    CachedEvalPtr value;
  };
  struct DigestHash {
    std::size_t operator()(const Digest128& d) const noexcept {
      return static_cast<std::size_t>(d.lo);
    }
  };
  struct Shard {
    std::mutex mu;
    // front = most recently used
    std::list<Entry> lru A3CS_GUARDED_BY(mu);
    std::unordered_map<Digest128, std::list<Entry>::iterator, DigestHash> map
        A3CS_GUARDED_BY(mu);
  };

  Shard& shard_for(const CacheKey& key) {
    // hi selects the stripe, lo feeds the in-shard hash — decorrelated, so
    // one hot bucket never serializes every stripe.
    return *shards_[static_cast<std::size_t>(key.digest.hi %
                                             shards_.size())];
  }

  CacheConfig cfg_;
  std::int64_t capacity_total_ = 0;
  std::int64_t capacity_per_shard_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> inserts_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> size_{0};
};

}  // namespace a3cs::serve
