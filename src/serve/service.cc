#include "serve/service.h"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "obs/metrics.h"
#include "obs/perf/work_counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace a3cs::serve {

namespace {

// Keying and peeking cost ~100ns per config; the pool's wake/handoff cost is
// tens of microseconds on busy or few-core hosts. Fan those phases out only
// when a batch is large enough to amortize it (the evaluation phase always
// fans out — each miss costs microseconds).
constexpr std::int64_t kCheapPhaseMinParallel = 2048;

// Documented estimate, not a measured count (same model the DAS sweep used):
// the analytic predictor does a few dozen scalar ops per layer, so one
// evaluation is roughly layers * 64 flops.
void count_eval_work(std::int64_t evals, std::int64_t layers) {
  static obs::perf::WorkCounters& wc =
      obs::perf::WorkCounters::named("serve-eval");
  wc.add(64 * evals * layers, 0, 0);
}

}  // namespace

PredictorService::PredictorService(const accel::Predictor& predictor,
                                   CacheConfig cache_cfg)
    : predictor_(predictor), cache_(cache_cfg) {
  // Digest the predictor's parameters once: two services whose predictors
  // differ in budget, energy model or cost weights must never share entries,
  // even though they hash the same (network, config) pairs.
  Hash128 h;
  const accel::FpgaBudget& b = predictor.budget();
  h.i32(b.dsp).i32(b.bram18k).f64(b.clock_mhz).f64(b.dram_bytes_per_cycle);
  const accel::EnergyModel& e = predictor.energy_model();
  h.f64(e.mac_nj).f64(e.sram_per_byte_nj).f64(e.dram_per_byte_nj);
  const accel::CostWeights& w = predictor.cost_weights();
  h.f64(w.latency).f64(w.energy).f64(w.barrier);
  salt_ = h.digest().lo ^ h.digest().hi;
}

PreparedNet PredictorService::prepare(
    const std::vector<nn::LayerSpec>& specs) const {
  PreparedNet out;
  out.net = accel::prepare_network(specs);
  out.signature = network_signature(specs);
  return out;
}

CachedEvalPtr PredictorService::compute(
    const PreparedNet& net, const accel::AcceleratorConfig& config) const {
  auto value = std::make_shared<CachedEval>();
  value->eval = predictor_.evaluate(net.net, config);
  value->cost = predictor_.scalar_cost(value->eval);
  return value;
}

ServeResult PredictorService::evaluate_one(
    const PreparedNet& net, const accel::AcceleratorConfig& config) {
  static obs::Counter& requests =
      obs::MetricsRegistry::global().counter("serve.requests");
  requests.inc();
  const CacheKey key = cache_key(net.signature, config, salt_);
  if (CachedEvalPtr hit = cache_.lookup(key)) {
    return ServeResult{std::move(hit), true};
  }
  CachedEvalPtr value = compute(net, config);
  count_eval_work(1, net.signature.num_layers);
  cache_.insert(key, value);
  return ServeResult{std::move(value), false};
}

std::vector<ServeResult> PredictorService::evaluate_batch(
    const PreparedNet& net,
    const std::vector<accel::AcceleratorConfig>& configs) {
  A3CS_PROF_SCOPE("serve-batch");
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t n = static_cast<std::int64_t>(configs.size());
  std::vector<ServeResult> results(configs.size());
  if (n == 0) return results;

  static obs::Counter& requests =
      obs::MetricsRegistry::global().counter("serve.requests");
  static obs::Counter& batches =
      obs::MetricsRegistry::global().counter("serve.batches");
  requests.inc(n);
  batches.inc();

  // Phase 1 (parallel, disjoint writes): one canonical digest per config.
  std::vector<CacheKey> keys(configs.size());
  util::parallel_for(
      0, n, 64,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          keys[static_cast<std::size_t>(i)] = cache_key(
              net.signature, configs[static_cast<std::size_t>(i)], salt_);
        }
      },
      "serve-key", kCheapPhaseMinParallel);

  // Phase 2 (serial): dedup in-flight keys. Batch items with equal digests
  // collapse onto one slot, first occurrence wins, so a batch of duplicates
  // costs one evaluation no matter the cache state. Open-addressed probe on
  // a half-loaded power-of-two table — a node-based map's per-key allocation
  // and pointer chase cost more than a warm hit does.
  std::size_t table_size = 16;
  while (table_size < configs.size() * 2) table_size *= 2;
  const std::size_t mask = table_size - 1;
  std::vector<std::uint32_t> table(table_size, 0);  // unique index + 1; 0=free
  std::vector<std::size_t> unique_of(configs.size());  // batch slot -> unique
  std::vector<std::size_t> rep;                        // unique -> first slot
  rep.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Digest128 d = keys[i].digest;
    std::size_t slot = static_cast<std::size_t>(d.lo) & mask;
    for (;;) {
      const std::uint32_t tag = table[slot];
      if (tag == 0) {
        table[slot] = static_cast<std::uint32_t>(rep.size() + 1);
        unique_of[i] = rep.size();
        rep.push_back(i);
        break;
      }
      const std::size_t uidx = tag - 1;
      if (keys[rep[uidx]].digest == d) {
        unique_of[i] = uidx;
        break;
      }
      slot = (slot + 1) & mask;
    }
  }
  const std::int64_t u = static_cast<std::int64_t>(rep.size());

  // Phase 3 (parallel): peek every unique key. peek() never touches
  // recency, so this phase is order-independent; the recency replay in
  // phase 5 is what the cache content depends on.
  std::vector<CachedEvalPtr> values(rep.size());
  util::parallel_for(
      0, u, 64,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          const std::size_t slot = rep[static_cast<std::size_t>(i)];
          values[static_cast<std::size_t>(i)] = cache_.peek(keys[slot]);
        }
      },
      "serve-peek", kCheapPhaseMinParallel);

  // Phase 4 (parallel, disjoint writes): evaluate the misses. The predictor
  // is a pure function, so each value is bit-exact with a serial loop.
  std::vector<std::size_t> miss;  // unique indices, first-occurrence order
  miss.reserve(rep.size());
  for (std::size_t i = 0; i < rep.size(); ++i) {
    if (values[i] == nullptr) miss.push_back(i);
  }
  const std::int64_t m = static_cast<std::int64_t>(miss.size());
  if (m > 0) {
    count_eval_work(m, net.signature.num_layers);
    util::parallel_for(
        0, m, 1,
        [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i) {
            const std::size_t uidx = miss[static_cast<std::size_t>(i)];
            values[uidx] = compute(net, configs[rep[uidx]]);
          }
        },
        "serve-eval");
  }

  // Phase 5 (serial, first-occurrence order): replay recency updates and
  // inserts, then fan every unique value out to its batch slots. Because
  // this replay is serial and ordered, the cache's content after the batch
  // is a pure function of the batch sequence — identical at any thread
  // count.
  std::vector<char> computed(rep.size(), 0);
  for (std::size_t uidx : miss) computed[uidx] = 1;
  std::vector<ShardedCache::ReplayOp> ops(rep.size());
  for (std::size_t i = 0; i < rep.size(); ++i) {
    ops[i].key = keys[rep[i]];
    ops[i].insert_value = computed[i] != 0 ? &values[i] : nullptr;
  }
  cache_.replay(ops);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const std::size_t uidx = unique_of[i];
    results[i].value = values[uidx];
    // A slot is "cached" unless it is the representative of a fresh miss:
    // duplicates of a miss were deduped in-flight, which is a cache in
    // spirit — the caller did not pay for their evaluation.
    results[i].cached = !(computed[uidx] != 0 && rep[uidx] == i);
  }

  const double dur_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  obs::trace_event("serve_batch")
      .kv("batch", n)
      .kv("unique", u)
      .kv("hits", u - m)
      .kv("computed", m)
      .kv("dur_ms", dur_ms);
  cache_.publish_metrics();
  return results;
}

}  // namespace a3cs::serve
