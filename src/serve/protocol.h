// Newline-delimited JSON request protocol for predictor_server
// (docs/SERVING.md has the full request/response reference).
//
// One request per line, one reply line per request. Supported ops:
//
//   {"op":"ping"}
//   {"op":"info","network":"ResNet-14"}
//   {"op":"stats"}
//   {"op":"eval","network":"ResNet-14","configs":["<encode_config text>",...]}
//
// "network" names a zoo model; optional "obs":[c,h,w] and "actions":k
// override the default ObsSpec{3,12,12}/4 frontend. An optional "id" (number
// or string) is echoed back verbatim so pipelined clients can match replies.
//
// Every reply carries "ok":true|false. Malformed input — bad JSON, unknown
// op, unknown network, undecodable config text — yields an "ok":false reply
// with an "error" message; handle_request_line never throws and never
// crashes the server. Reply numbers are serialized at max_digits10
// (obs::append_json_number_exact), so a client parsing a reply sees the
// predictor's exact doubles.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "nn/layer_spec.h"
#include "nn/obs_spec.h"
#include "serve/service.h"

namespace a3cs::serve {

// Zoo-backed registry of prepared networks. prepare() (layer decomposition +
// signature digest) runs once per distinct (name, obs, actions) triple; every
// later request reuses the cached PreparedNet. Thread-safe.
class NetworkRegistry {
 public:
  explicit NetworkRegistry(const PredictorService& service)
      : service_(service) {}

  struct Entry {
    std::vector<nn::LayerSpec> specs;
    PreparedNet prepared;
  };

  // Builds (or returns the cached) entry; throws std::runtime_error for an
  // unknown zoo name or invalid frontend shape.
  const Entry& get(const std::string& name, const nn::ObsSpec& obs,
                   int num_actions);

 private:
  const PredictorService& service_;
  std::mutex mu_;
  std::map<std::string, Entry> entries_;  // keyed by "name|c|h|w|actions"
};

// Handles one request line, returning one reply line (no trailing newline).
// Never throws: every failure becomes an {"ok":false,"error":...} reply.
std::string handle_request_line(PredictorService& service,
                                NetworkRegistry& registry,
                                const std::string& line);

// Bounded line assembler for NDJSON transports: buffers raw bytes from a
// socket/pipe and hands out complete '\n'-terminated lines. A client that
// sends an oversized or never-terminated line cannot grow the buffer past
// `max_line_bytes` — the offending line is discarded (through its eventual
// newline), the serve.line_overflows metric is bumped, and take_overflow()
// reports the event once so the server can send one {"ok":false,...} reply
// instead of buffering unbounded garbage.
class LineBuffer {
 public:
  static constexpr std::size_t kDefaultMaxLineBytes = 1 << 20;  // 1 MiB

  explicit LineBuffer(std::size_t max_line_bytes = kDefaultMaxLineBytes);

  // Appends raw transport bytes. Bytes belonging to an oversized line are
  // discarded as they arrive; buffered_bytes() stays <= max_line_bytes
  // regardless of what the peer sends.
  void append(const char* data, std::size_t n);

  // Extracts the next complete line (without the '\n') into *out. Returns
  // false when no complete line is buffered. A complete line longer than
  // the cap is dropped (overflow event) and the scan continues.
  bool next_line(std::string* out);

  // True once per batch of overflow events since the last call; the caller
  // turns it into a single error reply.
  bool take_overflow();

  std::size_t buffered_bytes() const { return buf_.size(); }
  std::size_t max_line_bytes() const { return max_; }

 private:
  std::size_t max_;
  std::string buf_;
  bool discarding_ = false;  // inside an oversized line, eat until '\n'
  bool overflow_pending_ = false;
};

}  // namespace a3cs::serve
