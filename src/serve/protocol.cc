#include "serve/protocol.h"

#include <chrono>
#include <exception>
#include <utility>

#include "accel/config_io.h"
#include "nn/zoo.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace a3cs::serve {

namespace {

void append_key(std::string& out, std::string_view key) {
  obs::TraceWriter::append_json_string(out, key);
  out += ':';
}

void append_kv_num(std::string& out, std::string_view key, double v) {
  append_key(out, key);
  obs::append_json_number_exact(out, v);
  out += ',';
}

void append_kv_str(std::string& out, std::string_view key,
                   std::string_view v) {
  append_key(out, key);
  obs::TraceWriter::append_json_string(out, v);
  out += ',';
}

void append_kv_bool(std::string& out, std::string_view key, bool v) {
  append_key(out, key);
  out += v ? "true" : "false";
  out += ',';
}

// Echoes the request's "id" (number or string) into the reply so pipelined
// clients can match replies to requests.
void append_id(std::string& out, const obs::JsonValue* id) {
  if (id == nullptr) return;
  if (id->is_number()) {
    append_kv_num(out, "id", id->as_number());
  } else if (id->is_string()) {
    append_kv_str(out, "id", id->as_string());
  }
}

std::string error_reply(const obs::JsonValue* id, const std::string& message) {
  std::string out = "{\"ok\":false,";
  append_id(out, id);
  append_key(out, "error");
  obs::TraceWriter::append_json_string(out, message);
  out += '}';
  return out;
}

// Resolves the request's network selector into a registry entry.
const NetworkRegistry::Entry& resolve_network(NetworkRegistry& registry,
                                              const obs::JsonValue& req) {
  const obs::JsonValue* name = req.find("network");
  if (name == nullptr || !name->is_string()) {
    throw std::runtime_error("missing string field \"network\"");
  }
  nn::ObsSpec obs{3, 12, 12};
  if (const obs::JsonValue* o = req.find("obs")) {
    const auto& arr = o->as_array();
    if (arr.size() != 3) {
      throw std::runtime_error("\"obs\" must be [channels,height,width]");
    }
    obs.channels = static_cast<int>(arr[0].as_number());
    obs.height = static_cast<int>(arr[1].as_number());
    obs.width = static_cast<int>(arr[2].as_number());
  }
  int actions = 4;
  if (const obs::JsonValue* a = req.find("actions")) {
    actions = static_cast<int>(a->as_number());
  }
  return registry.get(name->as_string(), obs, actions);
}

std::string handle_ping(const obs::JsonValue* id) {
  std::string out = "{\"ok\":true,";
  append_id(out, id);
  out += "\"op\":\"ping\"}";
  return out;
}

std::string handle_info(NetworkRegistry& registry, const obs::JsonValue& req,
                        const obs::JsonValue* id) {
  const NetworkRegistry::Entry& entry = resolve_network(registry, req);
  double macs = 0.0, weight_bytes = 0.0;
  for (const accel::LayerWorkload& wl : entry.prepared.net.layers) {
    macs += wl.macs;
    weight_bytes += wl.w_bytes;
  }
  std::string out = "{\"ok\":true,";
  append_id(out, id);
  append_kv_str(out, "op", "info");
  append_kv_num(out, "num_layers", entry.prepared.signature.num_layers);
  append_kv_num(out, "num_groups", entry.prepared.signature.num_groups);
  append_kv_num(out, "macs", macs);
  // 16-bit datapath: the workload's weight bytes are 2 per parameter.
  append_kv_num(out, "params", weight_bytes / 2.0);
  out.back() = '}';
  return out;
}

std::string handle_stats(const PredictorService& service,
                         const obs::JsonValue* id) {
  const ShardedCache::Stats s = service.cache().stats();
  std::string out = "{\"ok\":true,";
  append_id(out, id);
  append_kv_str(out, "op", "stats");
  append_kv_bool(out, "cache_enabled", service.cache().enabled());
  append_kv_num(out, "hits", static_cast<double>(s.hits));
  append_kv_num(out, "misses", static_cast<double>(s.misses));
  append_kv_num(out, "inserts", static_cast<double>(s.inserts));
  append_kv_num(out, "evictions", static_cast<double>(s.evictions));
  append_kv_num(out, "size", static_cast<double>(s.size));
  append_kv_num(out, "capacity", static_cast<double>(s.capacity));
  append_kv_num(out, "shards", s.shards);
  append_kv_num(out, "hit_rate", s.hit_rate());
  out.back() = '}';
  return out;
}

std::string handle_eval(PredictorService& service, NetworkRegistry& registry,
                        const obs::JsonValue& req, const obs::JsonValue* id) {
  const auto t0 = std::chrono::steady_clock::now();
  const NetworkRegistry::Entry& entry = resolve_network(registry, req);
  const obs::JsonValue* cfgs = req.find("configs");
  if (cfgs == nullptr) {
    throw std::runtime_error("missing field \"configs\"");
  }
  std::vector<accel::AcceleratorConfig> configs;
  configs.reserve(cfgs->as_array().size());
  for (const obs::JsonValue& c : cfgs->as_array()) {
    configs.push_back(accel::decode_config(c.as_string()));
  }
  const std::vector<ServeResult> results =
      service.evaluate_batch(entry.prepared, configs);

  std::string out = "{\"ok\":true,";
  append_id(out, id);
  append_kv_str(out, "op", "eval");
  append_kv_num(out, "count", static_cast<double>(results.size()));
  append_key(out, "results");
  out += '[';
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ServeResult& r = results[i];
    if (i > 0) out += ',';
    out += '{';
    append_kv_bool(out, "feasible", r.eval().feasible);
    append_kv_num(out, "fps", r.eval().fps);
    append_kv_num(out, "ii_cycles", r.eval().ii_cycles);
    append_kv_num(out, "latency_cycles", r.eval().latency_cycles);
    append_kv_num(out, "energy_nj", r.eval().energy_nj);
    append_kv_num(out, "dsp", r.eval().dsp_used);
    append_kv_num(out, "bram", r.eval().bram_used);
    append_kv_num(out, "cost", r.cost());
    append_kv_bool(out, "cached", r.cached);
    out.back() = '}';
  }
  out += "],";
  const double dur_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  append_kv_num(out, "dur_ms", dur_ms);
  out.back() = '}';
  return out;
}

}  // namespace

const NetworkRegistry::Entry& NetworkRegistry::get(const std::string& name,
                                                   const nn::ObsSpec& obs,
                                                   int num_actions) {
  std::string key = name + '|' + std::to_string(obs.channels) + '|' +
                    std::to_string(obs.height) + '|' +
                    std::to_string(obs.width) + '|' +
                    std::to_string(num_actions);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.specs = nn::zoo_model_specs(name, obs, num_actions);
    entry.prepared = service_.prepare(entry.specs);
    it = entries_.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second;
}

std::string handle_request_line(PredictorService& service,
                                NetworkRegistry& registry,
                                const std::string& line) {
  obs::JsonValue req;
  try {
    req = obs::JsonValue::parse(line);
  } catch (const std::exception& e) {
    return error_reply(nullptr, e.what());
  }
  if (!req.is_object()) {
    return error_reply(nullptr, "request must be a JSON object");
  }
  const obs::JsonValue* id = req.find("id");
  try {
    const obs::JsonValue* op = req.find("op");
    if (op == nullptr || !op->is_string()) {
      return error_reply(id, "missing string field \"op\"");
    }
    const std::string& opname = op->as_string();
    if (opname == "ping") return handle_ping(id);
    if (opname == "info") return handle_info(registry, req, id);
    if (opname == "stats") return handle_stats(service, id);
    if (opname == "eval") return handle_eval(service, registry, req, id);
    return error_reply(id, "unknown op \"" + opname + "\"");
  } catch (const std::exception& e) {
    return error_reply(id, e.what());
  }
}

// ------------------------------------------------------------ LineBuffer ----

namespace {

void note_line_overflow() {
  static obs::Counter& overflows =
      obs::MetricsRegistry::global().counter("serve.line_overflows");
  overflows.inc();
}

}  // namespace

LineBuffer::LineBuffer(std::size_t max_line_bytes)
    : max_(max_line_bytes == 0 ? 1 : max_line_bytes) {}

void LineBuffer::append(const char* data, std::size_t n) {
  std::size_t pos = 0;
  if (discarding_) {
    // Still inside an oversized line: eat bytes through its newline.
    while (pos < n && data[pos] != '\n') ++pos;
    if (pos == n) return;  // the whole chunk belongs to the doomed line
    ++pos;                 // consume the terminating '\n'
    discarding_ = false;
  }
  buf_.append(data + pos, n - pos);

  // Cap the unterminated tail: everything after the last '\n' is one
  // in-flight line; past the cap it can only ever be dropped, so drop now.
  const std::size_t last_nl = buf_.rfind('\n');
  const std::size_t tail_start = last_nl == std::string::npos ? 0 : last_nl + 1;
  if (buf_.size() - tail_start > max_) {
    buf_.resize(tail_start);
    discarding_ = true;
    overflow_pending_ = true;
    note_line_overflow();
  }
}

bool LineBuffer::next_line(std::string* out) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos) return false;
    if (nl > max_) {
      // A complete line over the cap (terminator arrived in the same chunk
      // as its overflowing body): drop it and keep scanning.
      buf_.erase(0, nl + 1);
      overflow_pending_ = true;
      note_line_overflow();
      continue;
    }
    out->assign(buf_, 0, nl);
    buf_.erase(0, nl + 1);
    return true;
  }
}

bool LineBuffer::take_overflow() {
  const bool pending = overflow_pending_;
  overflow_pending_ = false;
  return pending;
}

}  // namespace a3cs::serve
