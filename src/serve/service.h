// PredictorService: batched, cached, thread-fanned accelerator evaluation —
// the serving-scale front end to accel::Predictor (docs/SERVING.md).
//
// One service wraps one predictor plus a ShardedCache. Clients prepare() a
// network once (hoisting the per-layer decomposition and the signature
// digest out of every subsequent call), then evaluate_batch() candidate
// configs by the thousands:
//
//   serve::PredictorService service(predictor);
//   const auto net = service.prepare(specs);
//   auto results = service.evaluate_batch(net, configs);
//
// evaluate_batch pipeline (see the determinism note):
//   1. parallel  key digests per config           (disjoint writes)
//   2. serial    in-flight dedup: batch items with equal keys collapse onto
//                one evaluation slot, first occurrence wins
//   3. parallel  cache peek per unique key        (no recency update)
//   4. parallel  predictor evaluation of the misses over util::ThreadPool
//                with fixed sharding
//   5. serial    recency replay + inserts in first-occurrence order,
//                then fan-out to every batch slot
//
// Determinism: evaluation is a pure function, so results are bit-exact with
// a serial predictor.evaluate() loop at any thread count and any cache
// state. Recency/insert replay in step 5 additionally makes the cache's
// *content* after each batch a pure function of the batch sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/predictor.h"
#include "serve/cache.h"
#include "serve/key.h"

namespace a3cs::serve {

// One network, prepared once per (network, service) pair.
struct PreparedNet {
  accel::PreparedNetwork net;
  NetworkSignature signature;
};

// One evaluation outcome. `value` is shared with the cache (never null);
// `cached` is true when the result was served from the memo-cache or deduped
// onto another in-flight item of the same batch.
struct ServeResult {
  CachedEvalPtr value;
  bool cached = false;

  const accel::HwEval& eval() const { return value->eval; }
  double cost() const { return value->cost; }
};

class PredictorService {
 public:
  explicit PredictorService(
      const accel::Predictor& predictor,
      CacheConfig cache_cfg = CacheConfig{}.with_env_overrides());

  PredictorService(const PredictorService&) = delete;
  PredictorService& operator=(const PredictorService&) = delete;

  // Hoists the per-layer decomposition + signature digest; the predictor
  // parameter salt is folded in so keys never alias across services whose
  // predictors differ in budget/energy/cost weights.
  PreparedNet prepare(const std::vector<nn::LayerSpec>& specs) const;

  ServeResult evaluate_one(const PreparedNet& net,
                           const accel::AcceleratorConfig& config);

  std::vector<ServeResult> evaluate_batch(
      const PreparedNet& net,
      const std::vector<accel::AcceleratorConfig>& configs);

  const accel::Predictor& predictor() const { return predictor_; }
  ShardedCache& cache() { return cache_; }
  const ShardedCache& cache() const { return cache_; }
  std::uint64_t predictor_salt() const { return salt_; }

 private:
  CachedEvalPtr compute(const PreparedNet& net,
                        const accel::AcceleratorConfig& config) const;

  const accel::Predictor& predictor_;
  std::uint64_t salt_ = 0;
  ShardedCache cache_;
};

}  // namespace a3cs::serve
