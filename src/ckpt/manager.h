// Checkpoint lifecycle management: cadence policy, the on-disk ring of the
// last N checkpoints, and corruption-tolerant recovery.
//
// Files are named ckpt-<iteration, zero-padded>.a3ck inside a dedicated
// directory. Writes are atomic (see section_file.h), pruning keeps the
// newest `keep` files, and load_newest_valid() walks the ring newest-first,
// skipping (and counting) any checkpoint that fails validation — so a tip
// torn by a crash or truncated by a full disk falls back to the previous
// intact one instead of killing the resume.
//
// Environment knobs (override the programmatic config, mirroring
// A3CS_TRACE_* semantics):
//   A3CS_CKPT_DIR=path        enable checkpointing into this directory
//   A3CS_CKPT_EVERY_ITERS=N   checkpoint every N co-search iterations
//   A3CS_CKPT_EVERY_SECONDS=T additionally checkpoint every T wall seconds
//   A3CS_CKPT_KEEP=N          ring size (how many checkpoints to retain)
//   A3CS_CKPT_RESUME=0|1      resume from the newest valid checkpoint
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/section_file.h"

namespace a3cs::ckpt {

struct CkptConfig {
  // Empty = checkpointing disabled.
  std::string dir;
  // Write every N iterations (0 disables the iteration cadence).
  int every_iters = 50;
  // Additionally write when T wall-clock seconds elapsed since the last
  // write (0 disables the time cadence).
  double every_seconds = 0.0;
  // Ring size; older checkpoints beyond this are pruned after each write.
  int keep = 3;
  // Restore from the newest valid checkpoint in `dir` before running.
  bool resume = false;

  bool enabled() const { return !dir.empty(); }

  // Returns a copy with A3CS_CKPT_* environment overrides applied (env wins).
  CkptConfig with_env_overrides() const;
};

class CheckpointManager {
 public:
  // Creates the directory if needed and sweeps orphaned "*.a3ck.tmp"
  // staging files left by a writer killed mid-atomic-commit (counted by the
  // ckpt.tmp_swept metric; see docs/CHECKPOINTING.md).
  explicit CheckpointManager(CkptConfig cfg);

  const CkptConfig& config() const { return cfg_; }

  // Serializes `writer` to <dir>/ckpt-<iter>.a3ck atomically, then prunes
  // the ring. Returns the number of bytes written.
  std::size_t commit(std::int64_t iter, const SectionWriter& writer);

  // Iterations that currently have a checkpoint on disk, ascending.
  std::vector<std::int64_t> list() const;

  // Loads the newest checkpoint that validates end-to-end. Corrupt or
  // truncated files are skipped (each skip counted in `fallbacks` and in the
  // ckpt.fallbacks metric); with `require_healthy` set, checkpoints whose
  // trailer health tag is cleared (written while the HealthMonitor reported
  // an error) are skipped the same way — the guard's rollback path uses this
  // so a run never restores INTO a diverged state. Returns the checkpoint's
  // iteration and fills *out, or -1 when no acceptable checkpoint exists.
  std::int64_t load_newest_valid(SectionReader* out, int* fallbacks = nullptr,
                                 bool require_healthy = false) const;

  // Deletes every ring checkpoint strictly newer than `iter` (used after a
  // guard rollback so stale unhealthy tips cannot shadow the healthy state
  // the run restarted from). Returns the number of files removed.
  int remove_newer_than(std::int64_t iter) const;

  std::string path_for(std::int64_t iter) const;

 private:
  CkptConfig cfg_;
};

}  // namespace a3cs::ckpt
