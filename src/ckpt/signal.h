// Async-signal-safe stop flag for graceful checkpoint-on-signal.
//
// install_stop_handlers() registers SIGINT/SIGTERM handlers that only set a
// sig_atomic_t flag; the co-search loop polls stop_requested() at iteration
// boundaries, writes a final checkpoint and returns cleanly. The previous
// handlers are restored by the guard's destructor, so nesting (e.g. a
// pipeline running several searches) behaves.
#pragma once

namespace a3cs::ckpt {

// RAII: installs handlers on construction, restores the previous ones on
// destruction. The flag is NOT cleared on destruction — callers that want a
// fresh flag call clear_stop() explicitly.
class StopSignalGuard {
 public:
  StopSignalGuard();
  ~StopSignalGuard();

  StopSignalGuard(const StopSignalGuard&) = delete;
  StopSignalGuard& operator=(const StopSignalGuard&) = delete;
};

// True once SIGINT or SIGTERM was delivered while a guard was active.
bool stop_requested();

// Resets the flag (call before starting a run that should observe only its
// own signals).
void clear_stop();

// Testing hook: behaves as if a signal had been delivered.
void request_stop();

}  // namespace a3cs::ckpt
