#include "ckpt/section_file.h"

#include "util/atomic_file.h"
#include "util/crc32.h"

namespace a3cs::ckpt {
namespace {

constexpr char kMagic[4] = {'A', '3', 'C', 'K'};

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

// Cursor over the raw bytes; every read is bounds-checked so a truncated
// file surfaces as CkptError, never as an out-of-range access.
class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : bytes_(bytes) {}

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  const char* take(std::size_t n, const char* what) {
    if (remaining() < n) {
      throw CkptError(std::string("checkpoint truncated reading ") + what);
    }
    const char* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::uint32_t u32(const char* what) {
    const char* p = take(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t u64(const char* what) {
    const char* p = take(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    return v;
  }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::ostream& SectionWriter::begin_section(const std::string& name) {
  if (section_open_) {
    throw CkptError("SectionWriter: section '" + open_name_ +
                    "' still open when beginning '" + name + "'");
  }
  open_name_ = name;
  open_stream_.str(std::string());
  open_stream_.clear();
  section_open_ = true;
  return open_stream_;
}

void SectionWriter::end_section() {
  if (!section_open_) throw CkptError("SectionWriter: no open section");
  section_open_ = false;
  add_section(open_name_, open_stream_.str());
}

void SectionWriter::add_section(const std::string& name, std::string payload) {
  for (const Section& s : sections_) {
    if (s.name == name) {
      throw CkptError("SectionWriter: duplicate section '" + name + "'");
    }
  }
  sections_.push_back(Section{name, std::move(payload)});
}

std::string SectionWriter::encode() const {
  if (section_open_) {
    throw CkptError("SectionWriter: encode with section '" + open_name_ +
                    "' still open");
  }
  std::string out;
  out.append(kMagic, 4);
  out.push_back(static_cast<char>(kCkptFormatVersion));
  append_u32(out, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    append_u32(out, static_cast<std::uint32_t>(s.name.size()));
    out += s.name;
    append_u64(out, static_cast<std::uint64_t>(s.payload.size()));
    append_u32(out, util::crc32(s.payload.data(), s.payload.size()));
    out += s.payload;
  }
  out.push_back(static_cast<char>(healthy_ ? kCkptFlagHealthy : 0));
  append_u32(out, util::crc32(out.data(), out.size()));
  return out;
}

void SectionWriter::write(const std::string& path) const {
  util::atomic_write_file(path, encode());
}

SectionReader::SectionReader(std::string bytes) : total_bytes_(bytes.size()) {
  Cursor cur(bytes);
  const char* magic = cur.take(4, "magic");
  if (std::string(magic, 4) != std::string(kMagic, 4)) {
    throw CkptError("checkpoint: bad magic");
  }
  const unsigned char version =
      static_cast<unsigned char>(*cur.take(1, "version"));
  if (version < kCkptMinFormatVersion || version > kCkptFormatVersion) {
    throw CkptError("checkpoint: unsupported format version " +
                    std::to_string(version) + " (expected " +
                    std::to_string(kCkptMinFormatVersion) + ".." +
                    std::to_string(kCkptFormatVersion) + ")");
  }
  version_ = version;
  const std::uint32_t count = cur.u32("section count");
  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = cur.u32("section name length");
    const char* name_p = cur.take(name_len, "section name");
    std::string name(name_p, name_len);
    const std::uint64_t payload_len = cur.u64("section payload length");
    const std::uint32_t crc = cur.u32("section crc");
    const char* payload_p =
        cur.take(static_cast<std::size_t>(payload_len), "section payload");
    const std::uint32_t actual =
        util::crc32(payload_p, static_cast<std::size_t>(payload_len));
    if (actual != crc) {
      throw CkptError("checkpoint: CRC mismatch in section '" + name + "'");
    }
    sections_.push_back(
        Section{std::move(name),
                std::string(payload_p, static_cast<std::size_t>(payload_len))});
  }
  if (version >= 2) {
    // v2 trailer: a flags byte (health tag) precedes the whole-file CRC.
    const unsigned char flags =
        static_cast<unsigned char>(*cur.take(1, "trailer flags"));
    healthy_ = (flags & kCkptFlagHealthy) != 0;
  } else {
    healthy_ = true;  // v1 predates the tag; treat as healthy
  }
  const std::size_t body_end = cur.pos();
  const std::uint32_t trailer = cur.u32("trailer crc");
  if (cur.remaining() != 0) {
    throw CkptError("checkpoint: trailing garbage after trailer");
  }
  const std::uint32_t actual = util::crc32(bytes.data(), body_end);
  if (actual != trailer) {
    throw CkptError("checkpoint: whole-file CRC mismatch");
  }
}

SectionReader SectionReader::from_file(const std::string& path) {
  return SectionReader(util::read_file_bytes(path));
}

bool SectionReader::has(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

const std::string& SectionReader::payload(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return s.payload;
  }
  throw CkptError("checkpoint: missing section '" + name + "'");
}

std::istringstream SectionReader::stream(const std::string& name) const {
  return std::istringstream(payload(name),
                            std::ios::binary | std::ios::in);
}

std::vector<std::string> SectionReader::section_names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const Section& s : sections_) out.push_back(s.name);
  return out;
}

}  // namespace a3cs::ckpt
