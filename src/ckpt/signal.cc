#include "ckpt/signal.h"

#include <atomic>
#include <csignal>

namespace a3cs::ckpt {
namespace {

volatile std::sig_atomic_t g_stop = 0;
std::atomic<int> g_guard_depth{0};

#ifndef _WIN32
struct sigaction g_prev_int;
struct sigaction g_prev_term;
#else
void (*g_prev_int)(int) = nullptr;
void (*g_prev_term)(int) = nullptr;
#endif

extern "C" void a3cs_ckpt_stop_handler(int) { g_stop = 1; }

}  // namespace

StopSignalGuard::StopSignalGuard() {
  // outermost guard owns the handlers
  if (g_guard_depth.fetch_add(1, std::memory_order_acq_rel) > 0) return;
#ifndef _WIN32
  struct sigaction sa = {};
  sa.sa_handler = a3cs_ckpt_stop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;  // don't turn slow writes into EINTR failures
  sigaction(SIGINT, &sa, &g_prev_int);
  sigaction(SIGTERM, &sa, &g_prev_term);
#else
  g_prev_int = std::signal(SIGINT, a3cs_ckpt_stop_handler);
  g_prev_term = std::signal(SIGTERM, a3cs_ckpt_stop_handler);
#endif
}

StopSignalGuard::~StopSignalGuard() {
  if (g_guard_depth.fetch_sub(1, std::memory_order_acq_rel) > 1) return;
#ifndef _WIN32
  sigaction(SIGINT, &g_prev_int, nullptr);
  sigaction(SIGTERM, &g_prev_term, nullptr);
#else
  std::signal(SIGINT, g_prev_int);
  std::signal(SIGTERM, g_prev_term);
#endif
}

bool stop_requested() { return g_stop != 0; }

void clear_stop() { g_stop = 0; }

void request_stop() { g_stop = 1; }

}  // namespace a3cs::ckpt
