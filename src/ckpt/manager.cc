#include "ckpt/manager.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/config.h"
#include "util/logging.h"

namespace a3cs::ckpt {
namespace {

namespace fs = std::filesystem;

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".a3ck";
constexpr int kIterDigits = 9;

// Parses "<prefix><digits><suffix>" -> iteration, or -1 when the name does
// not belong to the ring (stray files are never touched by pruning).
std::int64_t parse_iter(const std::string& filename) {
  const std::size_t plen = std::string(kPrefix).size();
  const std::size_t slen = std::string(kSuffix).size();
  if (filename.size() <= plen + slen) return -1;
  if (filename.compare(0, plen, kPrefix) != 0) return -1;
  if (filename.compare(filename.size() - slen, slen, kSuffix) != 0) return -1;
  const std::string digits =
      filename.substr(plen, filename.size() - plen - slen);
  if (digits.empty()) return -1;
  std::int64_t v = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return -1;
    v = v * 10 + (c - '0');
  }
  return v;
}

}  // namespace

CkptConfig CkptConfig::with_env_overrides() const {
  CkptConfig out = *this;
  out.dir = util::env_string("A3CS_CKPT_DIR", out.dir);
  out.every_iters = static_cast<int>(
      util::env_int("A3CS_CKPT_EVERY_ITERS", out.every_iters));
  out.every_seconds =
      util::env_double("A3CS_CKPT_EVERY_SECONDS", out.every_seconds);
  out.keep = static_cast<int>(util::env_int("A3CS_CKPT_KEEP", out.keep));
  out.resume = util::env_int("A3CS_CKPT_RESUME", out.resume ? 1 : 0) != 0;
  return out;
}

CheckpointManager::CheckpointManager(CkptConfig cfg) : cfg_(std::move(cfg)) {
  A3CS_CHECK(cfg_.enabled(), "CheckpointManager: empty checkpoint directory");
  A3CS_CHECK(cfg_.keep >= 1, "CheckpointManager: keep must be >= 1");
  fs::create_directories(cfg_.dir);

  // Sweep orphaned atomic-write staging files: a worker killed between
  // util::atomic_write_file's write and its rename leaves "<name>.a3ck.tmp"
  // behind. They are never valid checkpoints (rename is what publishes one),
  // so deleting them on startup is always safe; without the sweep, a
  // frequently restarted fleet shard accumulates one torn file per kill.
  // Only ".a3ck.tmp" names are touched — stray user files stay untouched,
  // mirroring the pruning policy of list().
  static obs::Counter& tmp_swept =
      obs::MetricsRegistry::global().counter("ckpt.tmp_swept");
  const std::string kTmpTail = std::string(kSuffix) + ".tmp";
  std::error_code dir_ec;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, dir_ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= kTmpTail.size() ||
        name.compare(name.size() - kTmpTail.size(), kTmpTail.size(),
                     kTmpTail) != 0) {
      continue;
    }
    std::error_code ec;
    if (fs::remove(entry.path(), ec)) {
      tmp_swept.inc();
      A3CS_LOG(WARN) << "checkpoint dir " << cfg_.dir
                     << ": swept orphaned staging file " << name
                     << " (previous writer died mid-commit)";
    }
  }
}

std::string CheckpointManager::path_for(std::int64_t iter) const {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%0*lld", kIterDigits,
                static_cast<long long>(iter));
  return cfg_.dir + "/" + kPrefix + digits + kSuffix;
}

std::size_t CheckpointManager::commit(std::int64_t iter,
                                      const SectionWriter& writer) {
  const std::string bytes = writer.encode();
  util::atomic_write_file(path_for(iter), bytes);

  // Prune the ring: keep the newest cfg_.keep checkpoints.
  std::vector<std::int64_t> iters = list();
  if (static_cast<int>(iters.size()) > cfg_.keep) {
    const std::size_t drop = iters.size() - static_cast<std::size_t>(cfg_.keep);
    for (std::size_t i = 0; i < drop; ++i) {
      std::error_code ec;
      fs::remove(path_for(iters[i]), ec);  // best-effort
    }
  }
  return bytes.size();
}

std::vector<std::int64_t> CheckpointManager::list() const {
  std::vector<std::int64_t> iters;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    const std::int64_t it = parse_iter(entry.path().filename().string());
    if (it >= 0) iters.push_back(it);
  }
  std::sort(iters.begin(), iters.end());
  return iters;
}

std::int64_t CheckpointManager::load_newest_valid(SectionReader* out,
                                                  int* fallbacks,
                                                  bool require_healthy) const {
  static obs::Counter& fallback_counter =
      obs::MetricsRegistry::global().counter("ckpt.fallbacks");
  static obs::Counter& unhealthy_counter =
      obs::MetricsRegistry::global().counter("ckpt.unhealthy_skips");
  const std::vector<std::int64_t> iters = list();
  int skipped = 0;
  for (auto it = iters.rbegin(); it != iters.rend(); ++it) {
    const std::string path = path_for(*it);
    try {
      SectionReader reader = SectionReader::from_file(path);
      if (require_healthy && !reader.healthy()) {
        A3CS_LOG(WARN) << "checkpoint " << path
                       << " is tagged unhealthy, falling back";
        unhealthy_counter.inc();
        ++skipped;
        continue;
      }
      if (fallbacks != nullptr) *fallbacks = skipped;
      if (out != nullptr) *out = std::move(reader);
      return *it;
    } catch (const std::exception& e) {
      A3CS_LOG(WARN) << "checkpoint " << path
                     << " failed validation, falling back: " << e.what();
      fallback_counter.inc();
      ++skipped;
    }
  }
  if (fallbacks != nullptr) *fallbacks = skipped;
  return -1;
}

int CheckpointManager::remove_newer_than(std::int64_t iter) const {
  int removed = 0;
  for (const std::int64_t it : list()) {
    if (it <= iter) continue;
    std::error_code ec;
    if (fs::remove(path_for(it), ec)) ++removed;
  }
  return removed;
}

}  // namespace a3cs::ckpt
