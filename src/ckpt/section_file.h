// Sectioned checkpoint container ("A3CK", format version 2).
//
// Layout (all integers little-endian):
//   magic "A3CK" | u8 version | u32 section_count
//   per section: u32 name_len | name bytes | u64 payload_len | u32 crc32
//                | payload bytes
//   trailer: u8 flags | u32 crc32 of everything before the trailer CRC
//
// The trailer flags byte (added in v2; v1 files without it still load and
// report healthy) carries the training-health tag: bit 0 set means the run's
// HealthMonitor considered the state healthy when it was written. The guard's
// rollback path restores only health-tagged checkpoints so a run never heals
// itself INTO a diverged state (see docs/ROBUSTNESS.md).
//
// Each section is an opaque byte blob (subsystems encode their state with
// util::sio / tensor::serialize); the per-section CRC pinpoints which
// subsystem's state rotted, the trailer CRC cheaply rejects truncated tips.
// Writing goes through util::atomic_write_file (tmp + fsync + rename), so a
// checkpoint file on disk is always either complete and self-consistent or
// absent — torn intermediate states cannot be observed.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace a3cs::ckpt {

inline constexpr std::uint8_t kCkptFormatVersion = 2;
// Oldest format version the reader still accepts (v1 = no trailer flags).
inline constexpr std::uint8_t kCkptMinFormatVersion = 1;

// Trailer flag bits (v2+).
inline constexpr std::uint8_t kCkptFlagHealthy = 0x01;

// Raised for any structural problem with a checkpoint file: bad magic,
// unknown version, truncation, CRC mismatch, missing section.
class CkptError : public std::runtime_error {
 public:
  explicit CkptError(const std::string& msg) : std::runtime_error(msg) {}
};

// Accumulates named sections in memory, then serializes + atomically writes
// the container. Section names must be unique.
class SectionWriter {
 public:
  // Opens a fresh payload stream for `name`; finish with end_section().
  // Only one section may be open at a time.
  std::ostream& begin_section(const std::string& name);
  void end_section();

  // Convenience for pre-built payloads.
  void add_section(const std::string& name, std::string payload);

  // Training-health tag stamped into the trailer flags byte. Defaults to
  // healthy; the co-search engine clears it when the HealthMonitor reported
  // an error at write time.
  void set_healthy(bool healthy) { healthy_ = healthy; }
  bool healthy() const { return healthy_; }

  // Serializes the container to bytes (magic, sections, trailer CRC).
  std::string encode() const;

  // encode() + util::atomic_write_file(path).
  void write(const std::string& path) const;

  std::size_t num_sections() const { return sections_.size(); }

 private:
  struct Section {
    std::string name;
    std::string payload;
  };
  std::vector<Section> sections_;
  std::string open_name_;
  std::ostringstream open_stream_;
  bool section_open_ = false;
  bool healthy_ = true;
};

// Parses and validates a container; throws CkptError on any corruption.
// Payload access returns an istream positioned at the section start.
class SectionReader {
 public:
  // An empty reader (no sections) — the target for load_newest_valid().
  SectionReader() = default;

  // Validates magic, version, section table, every CRC and the trailer.
  explicit SectionReader(std::string bytes);

  static SectionReader from_file(const std::string& path);

  bool has(const std::string& name) const;
  // Throws CkptError when the section is absent.
  const std::string& payload(const std::string& name) const;
  // Stream over a section's payload (throws CkptError when absent).
  std::istringstream stream(const std::string& name) const;

  std::vector<std::string> section_names() const;
  std::size_t total_bytes() const { return total_bytes_; }

  // The trailer health tag. v1 files (which predate the flag) report healthy.
  bool healthy() const { return healthy_; }
  std::uint8_t format_version() const { return version_; }

 private:
  struct Section {
    std::string name;
    std::string payload;
  };
  std::vector<Section> sections_;
  std::size_t total_bytes_ = 0;
  bool healthy_ = true;
  std::uint8_t version_ = kCkptFormatVersion;
};

}  // namespace a3cs::ckpt
