#include "nas/ops.h"

#include "nn/blocks.h"
#include "nn/layers.h"
#include "util/logging.h"

namespace a3cs::nas {

const std::vector<CandidateOp>& candidate_ops() {
  static const std::vector<CandidateOp> ops = {
      {"conv3", 3, 0, false},   {"conv5", 5, 0, false},
      {"ir3x1", 3, 1, false},   {"ir3x3", 3, 3, false},
      {"ir3x5", 3, 5, false},   {"ir5x1", 5, 1, false},
      {"ir5x3", 5, 3, false},   {"ir5x5", 5, 5, false},
      {"skip", 1, 0, true},
  };
  return ops;
}

std::unique_ptr<nn::Module> make_candidate(int op_index,
                                           const std::string& name, int in_c,
                                           int out_c, int stride,
                                           util::Rng& rng) {
  const auto& ops = candidate_ops();
  A3CS_CHECK(op_index >= 0 && op_index < static_cast<int>(ops.size()),
             "make_candidate: bad op index");
  const CandidateOp& op = ops[static_cast<std::size_t>(op_index)];
  if (op.is_skip) {
    return std::make_unique<nn::SkipOp>(name + ".skip", in_c, out_c, stride);
  }
  if (op.expansion == 0) {
    // conv -> ReLU
    auto seq = std::make_unique<nn::Sequential>(name);
    seq->add(std::make_unique<nn::Conv2d>(name + "." + op.id, in_c, out_c,
                                          op.kernel, stride, op.kernel / 2,
                                          rng));
    seq->add(std::make_unique<nn::ReLU>(name + ".relu"));
    return seq;
  }
  return std::make_unique<nn::InvertedResidual>(name + "." + op.id, in_c,
                                                out_c, op.kernel, op.expansion,
                                                stride, rng);
}

std::vector<nn::LayerSpec> candidate_specs(int op_index,
                                           const std::string& name, int in_c,
                                           int out_c, int stride, int in_h,
                                           int in_w) {
  using nn::LayerSpec;
  const auto& ops = candidate_ops();
  A3CS_CHECK(op_index >= 0 && op_index < static_cast<int>(ops.size()),
             "candidate_specs: bad op index");
  const CandidateOp& op = ops[static_cast<std::size_t>(op_index)];
  std::vector<LayerSpec> out;
  if (op.is_skip) return out;  // parameter- and MAC-free
  if (op.expansion == 0) {
    out.push_back(LayerSpec::conv(name + "." + op.id, in_c, out_c, op.kernel,
                                  stride, in_h, in_w));
    return out;
  }
  const int mid = in_c * op.expansion;
  out.push_back(
      LayerSpec::conv(name + ".expand", in_c, mid, 1, 1, in_h, in_w));
  out.push_back(
      LayerSpec::depthwise(name + ".dw", mid, op.kernel, stride, in_h, in_w));
  const int oh = out.back().out_h, ow = out.back().out_w;
  out.push_back(LayerSpec::conv(name + ".project", mid, out_c, 1, 1, oh, ow));
  return out;
}

}  // namespace a3cs::nas
