// The A3C-S supernet: stem + `num_cells` MixedOps + FC-256, usable directly
// as the backbone of an nn::ActorCriticNet so the whole DRL stack (rollouts,
// losses, distillation) runs unchanged on the supernet during search.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "nas/arch.h"
#include "nas/mixed_op.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace a3cs::nas {

struct SupernetConfig {
  SearchSpaceConfig space;
  int backward_paths = 2;    // K of Eq. 7 (multi-path backward)
  double tau_init = 5.0;     // paper: initial Gumbel temperature 5
  double tau_decay = 0.98;   // paper: x0.98 on a fixed step schedule
  std::uint64_t sample_seed = 99;
};

class Supernet : public nn::Module {
 public:
  Supernet(const nn::ObsSpec& obs, SupernetConfig cfg, util::Rng& rng);

  nn::Tensor forward(const nn::Tensor& x) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  // Weights only (stem, all candidate ops, fc); alphas via alpha_params().
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  std::string name() const override { return "supernet"; }

  std::vector<nn::Parameter*> alpha_params();
  void zero_alpha_grads();

  double temperature() const { return tau_; }
  void set_temperature(double t) { tau_ = t; }
  void decay_temperature() { tau_ *= cfg_.tau_decay; }

  // Per-cell op indices sampled by the most recent forward / by argmax.
  std::vector<int> last_choices() const;
  DerivedArch derive() const;

  // Shannon entropy (nats) of each cell's alpha distribution at tau=1 — the
  // standard DNAS convergence diagnostic (entropy -> 0 as alpha commits).
  std::vector<double> alpha_entropies() const;

  // Evaluate-derived mode: forwards use argmax(alpha) and alpha gradients
  // are disabled.
  void set_argmax_mode(bool on);

  // Replaces the Gumbel sampler's RNG stream. Used by the guard's rollback
  // path: the healed replay must explore different single-path samples
  // instead of deterministically re-diverging into the same failure.
  void reseed_sampler(std::uint64_t seed_value) { sampler_.reseed(seed_value); }

  int feature_dim() const { return geometry_.feature_dim; }
  int num_cells() const { return static_cast<int>(cells_.size()); }
  const SpaceGeometry& geometry() const { return geometry_; }
  const SupernetConfig& config() const { return cfg_; }

  // Checkpointing: the sampling-side search state — Gumbel temperature and
  // the shared sampler RNG. Alpha logits and supernet weights are ordinary
  // parameters and are serialized separately by the caller. load throws on
  // truncation or cell-count mismatch.
  void save_search_state(std::ostream& out) const;
  void load_search_state(std::istream& in);

  // LayerSpecs of the network given per-cell choices (stem + cells + fc).
  std::vector<nn::LayerSpec> specs_for(const std::vector<int>& choices) const;
  // LayerSpecs contributed by a single cell under a given choice (for the
  // layer-wise hardware-cost penalty of Eq. 8).
  std::vector<nn::LayerSpec> cell_specs(int cell, int op_index) const;

  MixedOp& cell(int i) { return *cells_[static_cast<std::size_t>(i)]; }

 private:
  SupernetConfig cfg_;
  SpaceGeometry geometry_;
  double tau_;
  util::Rng sampler_;

  nn::Conv2d stem_;
  nn::ReLU stem_relu_;
  std::vector<std::unique_ptr<MixedOp>> cells_;
  nn::Flatten flatten_;
  nn::Linear fc_;
  nn::ReLU fc_relu_;
};

}  // namespace a3cs::nas
