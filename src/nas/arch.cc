#include "nas/arch.h"

#include <cmath>

#include "nn/layers.h"
#include "util/logging.h"

namespace a3cs::nas {

SpaceGeometry space_geometry(const nn::ObsSpec& obs,
                             const SearchSpaceConfig& cfg) {
  A3CS_CHECK(cfg.num_cells >= 3, "need at least one cell per stage");
  SpaceGeometry g;
  const int w0 = cfg.base_width;
  g.stem = nn::LayerSpec::conv("stem", obs.channels, w0, 3, 2, obs.height,
                               obs.width);
  int c = w0;
  int h = g.stem.out_h, w = g.stem.out_w;

  // Distribute cells over 3 stages as evenly as possible (4/4/4 at 12).
  const int per_stage = cfg.num_cells / 3;
  const int remainder = cfg.num_cells % 3;
  int cell_idx = 0;
  for (int stage = 0; stage < 3; ++stage) {
    const int count = per_stage + (stage < remainder ? 1 : 0);
    const int stage_width = w0 << stage;  // w, 2w, 4w
    for (int i = 0; i < count; ++i) {
      CellGeometry cg;
      cg.in_c = c;
      cg.out_c = stage_width;
      cg.stride = (stage > 0 && i == 0) ? 2 : 1;
      cg.in_h = h;
      cg.in_w = w;
      cg.out_h = (h + cg.stride - 1) / cg.stride;
      cg.out_w = (w + cg.stride - 1) / cg.stride;
      g.cells.push_back(cg);
      c = cg.out_c;
      h = cg.out_h;
      w = cg.out_w;
      ++cell_idx;
    }
  }
  (void)cell_idx;

  g.feature_dim = 256;
  g.fc = nn::LayerSpec::linear("fc", c * h * w, g.feature_dim);
  return g;
}

double search_space_size(const SearchSpaceConfig& cfg) {
  return std::pow(static_cast<double>(candidate_ops().size()),
                  static_cast<double>(cfg.num_cells));
}

std::string DerivedArch::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) out += "-";
    out += candidate_ops()[static_cast<std::size_t>(choices[i])].id;
  }
  return out;
}

DerivedArch DerivedArch::from_string(const std::string& s) {
  DerivedArch arch;
  const auto& ops = candidate_ops();
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t dash = s.find('-', pos);
    const std::string tok =
        s.substr(pos, dash == std::string::npos ? std::string::npos
                                                : dash - pos);
    int idx = -1;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].id == tok) {
        idx = static_cast<int>(i);
        break;
      }
    }
    A3CS_CHECK(idx >= 0, "from_string: unknown operator id '" + tok + "'");
    arch.choices.push_back(idx);
    if (dash == std::string::npos) break;
    pos = dash + 1;
  }
  return arch;
}

DerivedArch DerivedArch::random(const SearchSpaceConfig& cfg,
                                util::Rng& rng) {
  DerivedArch arch;
  arch.choices.resize(static_cast<std::size_t>(cfg.num_cells));
  for (int& c : arch.choices) {
    c = rng.uniform_int(static_cast<int>(candidate_ops().size()));
  }
  return arch;
}

nn::BackboneBuild build_derived_backbone(const DerivedArch& arch,
                                         const nn::ObsSpec& obs,
                                         const SearchSpaceConfig& cfg,
                                         util::Rng& rng) {
  const SpaceGeometry g = space_geometry(obs, cfg);
  A3CS_CHECK(arch.choices.size() == g.cells.size(),
             "arch choice count does not match search space");
  auto seq = std::make_unique<nn::Sequential>("derived");
  std::vector<nn::LayerSpec> specs;

  seq->add(std::make_unique<nn::Conv2d>("stem", obs.channels, g.stem.out_c, 3,
                                        2, 1, rng));
  seq->add(std::make_unique<nn::ReLU>("stem.relu"));
  specs.push_back(g.stem);
  specs.back().group = 0;

  for (std::size_t i = 0; i < g.cells.size(); ++i) {
    const CellGeometry& cg = g.cells[i];
    const std::string name = "cell" + std::to_string(i);
    seq->add(make_candidate(arch.choices[i], name, cg.in_c, cg.out_c,
                            cg.stride, rng));
    auto cell_layer_specs = candidate_specs(arch.choices[i], name, cg.in_c,
                                            cg.out_c, cg.stride, cg.in_h,
                                            cg.in_w);
    for (auto& ls : cell_layer_specs) ls.group = static_cast<int>(i) + 1;
    specs.insert(specs.end(), cell_layer_specs.begin(),
                 cell_layer_specs.end());
  }

  seq->add(std::make_unique<nn::Flatten>());
  seq->add(std::make_unique<nn::Linear>("fc", g.fc.in_c, g.feature_dim, rng));
  seq->add(std::make_unique<nn::ReLU>("fc.relu"));
  specs.push_back(g.fc);
  specs.back().group = static_cast<int>(g.cells.size()) + 1;

  nn::BackboneBuild out;
  out.module = std::move(seq);
  out.specs = std::move(specs);
  out.feature_dim = g.feature_dim;
  return out;
}

std::vector<nn::LayerSpec> derived_specs(const DerivedArch& arch,
                                         const nn::ObsSpec& obs,
                                         const SearchSpaceConfig& cfg) {
  const SpaceGeometry g = space_geometry(obs, cfg);
  A3CS_CHECK(arch.choices.size() == g.cells.size(),
             "arch choice count does not match search space");
  std::vector<nn::LayerSpec> specs;
  specs.push_back(g.stem);
  specs.back().group = 0;
  for (std::size_t i = 0; i < g.cells.size(); ++i) {
    const CellGeometry& cg = g.cells[i];
    auto cell_layer_specs =
        candidate_specs(arch.choices[i], "cell" + std::to_string(i), cg.in_c,
                        cg.out_c, cg.stride, cg.in_h, cg.in_w);
    for (auto& ls : cell_layer_specs) ls.group = static_cast<int>(i) + 1;
    specs.insert(specs.end(), cell_layer_specs.begin(),
                 cell_layer_specs.end());
  }
  specs.push_back(g.fc);
  specs.back().group = static_cast<int>(g.cells.size()) + 1;
  return specs;
}

}  // namespace a3cs::nas
