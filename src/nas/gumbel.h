// Gumbel-Softmax machinery (Jang et al., paper Eq. 6-9).
//
// `GumbelCategorical` is a learnable categorical distribution over N discrete
// choices, sampled with the hard (one-hot / argmax) Gumbel trick on the
// forward pass and differentiated through the relaxed softmax on the backward
// pass:
//
//   y_k = softmax((logits + g) / tau)_k,     g ~ Gumbel(0,1)
//   d y_k / d logits_i = (1/tau) * y_k * (delta_ki - y_i)
//
// It backs both the architecture parameters alpha (one instance per supernet
// cell) and the accelerator parameters phi (one instance per design knob in
// the DAS engine).
#pragma once

#include <vector>

#include "nn/module.h"
#include "util/rng.h"

namespace a3cs::nas {

using nn::Parameter;

struct GumbelSample {
  int index = 0;              // argmax of the perturbed logits (hard choice)
  std::vector<float> relaxed; // relaxed probabilities y (softmax at tau)
};

class GumbelCategorical {
 public:
  GumbelCategorical(std::string name, int num_choices);

  int num_choices() const { return static_cast<int>(logits_.numel()); }

  // Draws Gumbel noise and returns the hard choice plus relaxed probs.
  GumbelSample sample(util::Rng& rng, double tau) const;

  // Relaxed probabilities without noise (softmax(logits / tau)).
  std::vector<float> probabilities(double tau = 1.0) const;

  // argmax of the raw logits (the derived / final choice).
  int argmax() const;

  // Accumulates dL/dlogits given per-choice scalar sensitivities s_k
  // (s_k = <dL/dOut, O_k(x)> for NAS ops; s_k = L_cost * 1[k = sampled] for
  // DAS): dL/dlogit_i += (1/tau) * sum_k s_k * y_k * (delta_ki - y_i).
  void accumulate_grad(const GumbelSample& s,
                       const std::vector<float>& sensitivities, double tau);

  // Directly nudges one logit's gradient (used for the layer-wise hardware
  // cost penalty of Eq. 8, which only touches the activated choice).
  void add_grad(int index, float g);

  Parameter& param() { return logits_; }
  const Parameter& param() const { return logits_; }

 private:
  Parameter logits_;
};

}  // namespace a3cs::nas
