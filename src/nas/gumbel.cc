#include "nas/gumbel.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace a3cs::nas {

GumbelCategorical::GumbelCategorical(std::string name, int num_choices)
    : logits_(std::move(name), tensor::Shape::vec(num_choices)) {
  A3CS_CHECK(num_choices >= 1, "GumbelCategorical needs >= 1 choice");
}

GumbelSample GumbelCategorical::sample(util::Rng& rng, double tau) const {
  const int n = num_choices();
  GumbelSample out;
  out.relaxed.resize(static_cast<std::size_t>(n));
  std::vector<double> perturbed(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    perturbed[static_cast<std::size_t>(i)] =
        static_cast<double>(logits_.value[i]) + rng.gumbel();
  }
  out.index = static_cast<int>(
      std::max_element(perturbed.begin(), perturbed.end()) -
      perturbed.begin());
  // Relaxed softmax at temperature tau over the same perturbed logits.
  double mx = perturbed[0];
  for (double v : perturbed) mx = std::max(mx, v);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = std::exp((perturbed[static_cast<std::size_t>(i)] - mx) /
                              tau);
    out.relaxed[static_cast<std::size_t>(i)] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& y : out.relaxed) y *= inv;
  return out;
}

std::vector<float> GumbelCategorical::probabilities(double tau) const {
  const int n = num_choices();
  std::vector<float> out(static_cast<std::size_t>(n));
  double mx = logits_.value[0];
  for (int i = 1; i < n; ++i) {
    mx = std::max(mx, static_cast<double>(logits_.value[i]));
  }
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e =
        std::exp((static_cast<double>(logits_.value[i]) - mx) / tau);
    out[static_cast<std::size_t>(i)] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& y : out) y *= inv;
  return out;
}

int GumbelCategorical::argmax() const {
  int best = 0;
  for (int i = 1; i < num_choices(); ++i) {
    if (logits_.value[i] > logits_.value[best]) best = i;
  }
  return best;
}

void GumbelCategorical::accumulate_grad(const GumbelSample& s,
                                        const std::vector<float>& sens,
                                        double tau) {
  const int n = num_choices();
  A3CS_CHECK(static_cast<int>(sens.size()) == n,
             "accumulate_grad: sensitivity size mismatch");
  A3CS_CHECK(static_cast<int>(s.relaxed.size()) == n,
             "accumulate_grad: sample size mismatch");
  // dL/dl_i = (1/tau) * [ s_i y_i - y_i * sum_k s_k y_k ]
  double weighted = 0.0;
  for (int k = 0; k < n; ++k) {
    weighted += static_cast<double>(sens[static_cast<std::size_t>(k)]) *
                s.relaxed[static_cast<std::size_t>(k)];
  }
  for (int i = 0; i < n; ++i) {
    const double yi = s.relaxed[static_cast<std::size_t>(i)];
    const double g =
        (static_cast<double>(sens[static_cast<std::size_t>(i)]) * yi -
         yi * weighted) /
        tau;
    logits_.grad[i] += static_cast<float>(g);
  }
}

void GumbelCategorical::add_grad(int index, float g) {
  A3CS_CHECK(index >= 0 && index < num_choices(), "add_grad: bad index");
  logits_.grad[index] += g;
}

}  // namespace a3cs::nas
