#include "nas/supernet.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "obs/profile.h"
#include "util/logging.h"
#include "util/state_io.h"

namespace a3cs::nas {

Supernet::Supernet(const nn::ObsSpec& obs, SupernetConfig cfg, util::Rng& rng)
    : cfg_(cfg),
      geometry_(space_geometry(obs, cfg.space)),
      tau_(cfg.tau_init),
      sampler_(cfg.sample_seed),
      stem_("stem", obs.channels, geometry_.stem.out_c, 3, 2, 1, rng),
      stem_relu_("stem.relu"),
      flatten_("flatten"),
      fc_("fc", geometry_.fc.in_c, geometry_.feature_dim, rng),
      fc_relu_("fc.relu") {
  for (std::size_t i = 0; i < geometry_.cells.size(); ++i) {
    const CellGeometry& cg = geometry_.cells[i];
    cells_.push_back(std::make_unique<MixedOp>(
        "cell" + std::to_string(i), cg.in_c, cg.out_c, cg.stride, rng,
        &sampler_, &tau_, cfg.backward_paths));
  }
}

nn::Tensor Supernet::forward(const nn::Tensor& x) {
  A3CS_PROF_SCOPE("supernet-forward");
  nn::Tensor cur = stem_relu_.forward(stem_.forward(x));
  for (auto& cell : cells_) cur = cell->forward(cur);
  return fc_relu_.forward(fc_.forward(flatten_.forward(cur)));
}

nn::Tensor Supernet::backward(const nn::Tensor& grad_out) {
  A3CS_PROF_SCOPE("supernet-backward");
  nn::Tensor cur =
      flatten_.backward(fc_.backward(fc_relu_.backward(grad_out)));
  for (auto it = cells_.rbegin(); it != cells_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return stem_.backward(stem_relu_.backward(cur));
}

void Supernet::collect_parameters(std::vector<nn::Parameter*>& out) {
  stem_.collect_parameters(out);
  for (auto& cell : cells_) cell->collect_parameters(out);
  fc_.collect_parameters(out);
}

std::vector<nn::Parameter*> Supernet::alpha_params() {
  std::vector<nn::Parameter*> out;
  for (auto& cell : cells_) out.push_back(&cell->alpha().param());
  return out;
}

void Supernet::zero_alpha_grads() {
  for (nn::Parameter* p : alpha_params()) p->grad.zero();
}

std::vector<int> Supernet::last_choices() const {
  std::vector<int> out;
  out.reserve(cells_.size());
  for (const auto& cell : cells_) out.push_back(cell->last_choice());
  return out;
}

DerivedArch Supernet::derive() const {
  DerivedArch arch;
  arch.choices.reserve(cells_.size());
  for (const auto& cell : cells_) arch.choices.push_back(cell->best_choice());
  return arch;
}

std::vector<double> Supernet::alpha_entropies() const {
  std::vector<double> out;
  out.reserve(cells_.size());
  for (const auto& cell : cells_) {
    const std::vector<float> probs = cell->alpha().probabilities(1.0);
    double h = 0.0;
    for (const float p : probs) {
      if (p > 0.0f) h -= static_cast<double>(p) * std::log(p);
    }
    out.push_back(h);
  }
  return out;
}

void Supernet::set_argmax_mode(bool on) {
  for (auto& cell : cells_) cell->set_argmax_mode(on);
}

void Supernet::save_search_state(std::ostream& out) const {
  namespace sio = util::sio;
  sio::put_u32(out, static_cast<std::uint32_t>(cells_.size()));
  sio::put_f64(out, tau_);
  sio::put_rng(out, sampler_);
}

void Supernet::load_search_state(std::istream& in) {
  namespace sio = util::sio;
  const std::uint32_t n = sio::get_u32(in);
  A3CS_CHECK(n == cells_.size(),
             "Supernet::load_search_state: cell count mismatch");
  tau_ = sio::get_f64(in);
  sio::get_rng(in, sampler_);
}

std::vector<nn::LayerSpec> Supernet::specs_for(
    const std::vector<int>& choices) const {
  A3CS_CHECK(choices.size() == cells_.size(),
             "specs_for: choice count mismatch");
  std::vector<nn::LayerSpec> specs;
  specs.push_back(geometry_.stem);
  specs.back().group = 0;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    auto cs = cell_specs(static_cast<int>(i), choices[i]);
    specs.insert(specs.end(), cs.begin(), cs.end());
  }
  specs.push_back(geometry_.fc);
  specs.back().group = num_cells() + 1;
  return specs;
}

std::vector<nn::LayerSpec> Supernet::cell_specs(int cell,
                                                int op_index) const {
  A3CS_CHECK(cell >= 0 && cell < num_cells(), "cell_specs: bad cell index");
  const CellGeometry& cg = geometry_.cells[static_cast<std::size_t>(cell)];
  auto specs = candidate_specs(op_index, "cell" + std::to_string(cell),
                               cg.in_c, cg.out_c, cg.stride, cg.in_h, cg.in_w);
  for (auto& ls : specs) ls.group = cell + 1;
  return specs;
}

}  // namespace a3cs::nas
