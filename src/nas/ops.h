// The supernet's candidate operator space (paper Sec. V-A): standard
// convolutions with kernel 3/5, inverted-residual blocks with kernel 3/5 and
// channel expansion 1/3/5, and a skip connection — 9 operators per cell,
// giving the paper's 9^12 network space at 12 cells.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer_spec.h"
#include "nn/module.h"
#include "util/rng.h"

namespace a3cs::nas {

struct CandidateOp {
  std::string id;   // e.g. "conv3", "ir5x3", "skip"
  int kernel = 3;
  int expansion = 0;  // 0 = standard conv, >0 = inverted residual
  bool is_skip = false;
};

// The 9 candidates, in a fixed order (index = op choice everywhere).
const std::vector<CandidateOp>& candidate_ops();

// Builds the runnable module for candidate `op_index` mapping
// (in_c, H, W) -> (out_c, H/stride, W/stride).
std::unique_ptr<nn::Module> make_candidate(int op_index,
                                           const std::string& name, int in_c,
                                           int out_c, int stride,
                                           util::Rng& rng);

// The accelerator-facing LayerSpecs of candidate `op_index` at the given
// geometry (empty for skip: it contributes no MACs).
std::vector<nn::LayerSpec> candidate_specs(int op_index,
                                           const std::string& name, int in_c,
                                           int out_c, int stride, int in_h,
                                           int in_w);

}  // namespace a3cs::nas
