#include "nas/mixed_op.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace a3cs::nas {

MixedOp::MixedOp(std::string name, int in_c, int out_c, int stride,
                 util::Rng& rng, util::Rng* sampler, const double* tau,
                 int backward_paths)
    : name_(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      stride_(stride),
      alpha_(name_ + ".alpha", static_cast<int>(candidate_ops().size())),
      sampler_(sampler),
      tau_(tau),
      backward_paths_(backward_paths) {
  A3CS_CHECK(sampler_ != nullptr && tau_ != nullptr,
             "MixedOp needs a shared sampler and temperature");
  const int n = static_cast<int>(candidate_ops().size());
  A3CS_CHECK(backward_paths_ >= 1 && backward_paths_ <= n,
             "MixedOp: K must be in [1, N]");
  for (int i = 0; i < n; ++i) {
    ops_.push_back(make_candidate(
        i, name_ + ".op" + std::to_string(i), in_c, out_c, stride, rng));
  }
  order_.resize(static_cast<std::size_t>(n));
  sens_.resize(static_cast<std::size_t>(n));
}

nn::Tensor MixedOp::forward(const nn::Tensor& x) {
  if (argmax_mode_) {
    last_sample_.index = alpha_.argmax();
    last_sample_.relaxed.assign(static_cast<std::size_t>(num_candidates()),
                                0.0f);
    last_sample_.relaxed[static_cast<std::size_t>(last_sample_.index)] = 1.0f;
  } else {
    last_sample_ = alpha_.sample(*sampler_, *tau_);
  }
  cached_input_ = x;
  cached_output_ =
      ops_[static_cast<std::size_t>(last_sample_.index)]->forward(x);
  has_cache_ = true;
  return cached_output_;
}

nn::Tensor MixedOp::backward(const nn::Tensor& grad_out) {
  A3CS_CHECK(has_cache_, name_ + ": backward before forward");

  // --- alpha gradient via the relaxed top-K paths (Eq. 7) ---------------
  if (!argmax_mode_) {
    const int n = num_candidates();
    std::iota(order_.begin(), order_.end(), 0);
    const int paths = std::min(backward_paths_, n);
    std::partial_sort(order_.begin(), order_.begin() + paths, order_.end(),
                      [&](int a, int b) {
                        return last_sample_.relaxed[static_cast<std::size_t>(
                                   a)] >
                               last_sample_.relaxed[static_cast<std::size_t>(
                                   b)];
                      });
    std::fill(sens_.begin(), sens_.end(), 0.0f);
    static obs::Counter& extra_fwd = obs::MetricsRegistry::global().counter(
        "nas.backward_extra_forwards");
    extra_fwd.inc(paths - 1);
    // The K sensitivity paths are independent: each candidate is a distinct
    // module evaluated read-only against the cached input, and each writes
    // only its own sens_ slot, so the fan-out is race-free and the serial
    // accumulate_grad below sees thread-count-independent values.
    util::parallel_for(
        0, paths, 1,
        [&](std::int64_t r0, std::int64_t r1) {
          for (int r = static_cast<int>(r0); r < static_cast<int>(r1); ++r) {
            const int k = order_[static_cast<std::size_t>(r)];
            // <dL/dOut, O_k(x)>: reuse the cached output for the activated
            // path; evaluate a fresh forward (no backward) for the others.
            const nn::Tensor& out_k =
                (k == last_sample_.index)
                    ? cached_output_
                    : ops_[static_cast<std::size_t>(k)]->forward(
                          cached_input_);
            sens_[static_cast<std::size_t>(k)] = grad_out.dot(out_k);
          }
        },
        "nas-topk");
    alpha_.accumulate_grad(last_sample_, sens_, *tau_);
  }

  // --- weight/input gradient through the single activated path ----------
  nn::Tensor grad_in =
      ops_[static_cast<std::size_t>(last_sample_.index)]->backward(grad_out);
  has_cache_ = false;
  return grad_in;
}

void MixedOp::collect_parameters(std::vector<nn::Parameter*>& out) {
  for (auto& op : ops_) op->collect_parameters(out);
}

}  // namespace a3cs::nas
