// MixedOp: one searchable supernet cell (paper Eq. 6-7).
//
// Forward activates exactly ONE candidate operator, chosen by hard
// Gumbel-Softmax over the cell's architecture logits alpha (single-path
// forward, Eq. 6). Backward propagates the task gradient through that
// operator only, but estimates dL/dalpha through the RELAXED Gumbel-Softmax
// over the top-K candidates (multi-path backward, Eq. 7): the forward outputs
// of the K-1 other highest-probability candidates are evaluated solely to
// form the inner products <dL/dOut, O_k(x)>.
#pragma once

#include <memory>
#include <vector>

#include "nas/gumbel.h"
#include "nas/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace a3cs::nas {

class MixedOp : public nn::Module {
 public:
  // Builds all 9 candidate operators for this cell geometry.
  MixedOp(std::string name, int in_c, int out_c, int stride, util::Rng& rng,
          util::Rng* sampler, const double* tau, int backward_paths);

  nn::Tensor forward(const nn::Tensor& x) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  // Supernet WEIGHTS only; alpha is exposed separately via alpha_param().
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  std::string name() const override { return name_; }

  GumbelCategorical& alpha() { return alpha_; }
  const GumbelCategorical& alpha() const { return alpha_; }

  // Index sampled by the most recent forward.
  int last_choice() const { return last_sample_.index; }
  // argmax-alpha choice (the derived op).
  int best_choice() const { return alpha_.argmax(); }

  int num_candidates() const { return static_cast<int>(ops_.size()); }
  int in_channels() const { return in_c_; }
  int out_channels() const { return out_c_; }
  int stride() const { return stride_; }

  // When true, forward uses argmax(alpha) instead of sampling — used when
  // evaluating the derived architecture through the supernet weights.
  void set_argmax_mode(bool on) { argmax_mode_ = on; }

 private:
  std::string name_;
  int in_c_, out_c_, stride_;
  std::vector<std::unique_ptr<nn::Module>> ops_;
  GumbelCategorical alpha_;
  util::Rng* sampler_;   // shared across the supernet (not owned)
  const double* tau_;    // shared temperature (not owned)
  int backward_paths_;   // K of Eq. 7
  bool argmax_mode_ = false;

  GumbelSample last_sample_;
  nn::Tensor cached_input_;
  nn::Tensor cached_output_;
  bool has_cache_ = false;

  // Backward scratch, sized once at construction instead of per step: the
  // top-K candidate ranking and the per-candidate sensitivity inner products
  // <dL/dOut, O_k(x)> (Eq. 7), each slot written by exactly one pool task.
  std::vector<int> order_;
  std::vector<float> sens_;
};

}  // namespace a3cs::nas
