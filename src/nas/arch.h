// Search-space geometry and derived-architecture construction.
//
// The supernet follows the paper's setup (Sec. V-A): a fixed stem conv
// (stride 2, like the ResNets' first conv), `num_cells` sequential searchable
// cells laid out in 3 stages with widths (w, 2w, 4w) — strides 2 at stage
// boundaries, mirroring the ResNet group structure — and a fixed FC-256
// feature layer. An architecture is simply the vector of per-cell candidate
// indices.
#pragma once

#include <string>
#include <vector>

#include "nas/ops.h"
#include "nn/obs_spec.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace a3cs::nas {

struct SearchSpaceConfig {
  int num_cells = 12;   // paper: 12 searchable cells -> 9^12 networks
  int base_width = 8;   // stage widths: w, 2w, 4w
};

struct CellGeometry {
  int in_c = 0, out_c = 0;
  int stride = 1;
  int in_h = 0, in_w = 0;
  int out_h = 0, out_w = 0;
};

struct SpaceGeometry {
  nn::LayerSpec stem;                // fixed stride-2 stem conv
  std::vector<CellGeometry> cells;   // searchable cells
  nn::LayerSpec fc;                  // fixed FC-256 feature layer
  int feature_dim = 0;
};

// Computes the full geometry of the search space for an observation spec.
SpaceGeometry space_geometry(const nn::ObsSpec& obs,
                             const SearchSpaceConfig& cfg);

// Number of distinct architectures (ops^cells) as a double (it overflows
// int64 at paper scale).
double search_space_size(const SearchSpaceConfig& cfg);

struct DerivedArch {
  std::vector<int> choices;  // one candidate index per cell

  std::string to_string() const;            // e.g. "conv3-ir5x3-skip-..."
  // Inverse of to_string(); throws on unknown operator ids.
  static DerivedArch from_string(const std::string& s);
  static DerivedArch random(const SearchSpaceConfig& cfg, util::Rng& rng);
};

// Builds a plain (non-searchable) backbone realizing `arch`, plus its
// accelerator-facing LayerSpecs.
nn::BackboneBuild build_derived_backbone(const DerivedArch& arch,
                                         const nn::ObsSpec& obs,
                                         const SearchSpaceConfig& cfg,
                                         util::Rng& rng);

// LayerSpecs of `arch` without constructing modules.
std::vector<nn::LayerSpec> derived_specs(const DerivedArch& arch,
                                         const nn::ObsSpec& obs,
                                         const SearchSpaceConfig& cfg);

}  // namespace a3cs::nas
