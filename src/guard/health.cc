#include "guard/health.h"

#include <cmath>
#include <sstream>

namespace a3cs::guard {

const char* check_name(Check c) {
  switch (c) {
    case Check::kLossFinite: return "loss_finite";
    case Check::kGradFinite: return "grad_finite";
    case Check::kGradExplosion: return "grad_explosion";
    case Check::kParamFinite: return "param_finite";
    case Check::kParamExplosion: return "param_explosion";
    case Check::kValueExplosion: return "value_explosion";
    case Check::kEntropyFloor: return "entropy_floor";
    case Check::kAlphaCollapse: return "alpha_collapse";
    case Check::kRewardStagnation: return "reward_stagnation";
    case Check::kEnvStall: return "env_stall";
  }
  return "?";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kOk: return "ok";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "?";
}

bool HealthReport::has_error() const {
  for (const HealthVerdict& v : verdicts) {
    if (v.severity == Severity::kError) return true;
  }
  return false;
}

bool HealthReport::has_warning() const {
  for (const HealthVerdict& v : verdicts) {
    if (v.severity == Severity::kWarn) return true;
  }
  return false;
}

const HealthVerdict* HealthReport::worst() const {
  const HealthVerdict* out = nullptr;
  for (const HealthVerdict& v : verdicts) {
    if (out == nullptr || static_cast<int>(v.severity) >
                              static_cast<int>(out->severity)) {
      out = &v;
    }
  }
  return out;
}

std::string HealthReport::summary() const {
  if (verdicts.empty()) return "healthy";
  std::ostringstream oss;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << check_name(verdicts[i].check) << "("
        << severity_name(verdicts[i].severity) << ")";
  }
  return oss.str();
}

HealthVerdict check_finite(Check check, double value, const char* what) {
  HealthVerdict v;
  v.check = check;
  v.value = value;
  if (!std::isfinite(value)) {
    v.severity = Severity::kError;
    v.detail = std::string(what) + " is non-finite";
  }
  return v;
}

HealthMonitor::HealthMonitor(HealthConfig cfg)
    : cfg_(cfg), reward_ewma_(cfg.reward_ewma_alpha) {}

void HealthMonitor::reset() {
  reward_ewma_ = util::Ema(cfg_.reward_ewma_alpha);
  best_valid_ = false;
  best_ewma_ = 0.0;
  best_iter_ = 0;
}

HealthReport HealthMonitor::evaluate(const HealthSignals& s) {
  HealthReport report;
  const auto add = [&report](Check check, Severity sev, double value,
                             double threshold, std::string detail) {
    HealthVerdict v;
    v.check = check;
    v.severity = sev;
    v.value = value;
    v.threshold = threshold;
    v.detail = std::move(detail);
    report.verdicts.push_back(std::move(v));
  };

  // --- finiteness (errors): a single NaN/Inf here poisons everything.
  if (!std::isfinite(s.loss_total) || !std::isfinite(s.loss_policy) ||
      !std::isfinite(s.loss_value) || !std::isfinite(s.entropy)) {
    add(Check::kLossFinite, Severity::kError, s.loss_total, 0.0,
        "loss term non-finite");
  }
  if (!s.grad_finite) {
    add(Check::kGradFinite, Severity::kError, s.grad_norm, 0.0,
        "gradient global norm non-finite");
  }
  if (!s.param_finite) {
    add(Check::kParamFinite, Severity::kError, s.param_norm, 0.0,
        "parameter global norm non-finite");
  }

  // --- explosions (errors): finite but hopeless.
  if (cfg_.grad_norm_max > 0.0 && s.grad_finite &&
      s.grad_norm > cfg_.grad_norm_max) {
    add(Check::kGradExplosion, Severity::kError, s.grad_norm,
        cfg_.grad_norm_max, "pre-clip gradient norm exploded");
  }
  if (cfg_.param_norm_max > 0.0 && s.param_finite &&
      s.param_norm > cfg_.param_norm_max) {
    add(Check::kParamExplosion, Severity::kError, s.param_norm,
        cfg_.param_norm_max, "parameter norm exploded");
  }
  if (cfg_.value_abs_max > 0.0 && std::isfinite(s.value_abs_max) &&
      s.value_abs_max > cfg_.value_abs_max) {
    add(Check::kValueExplosion, Severity::kError, s.value_abs_max,
        cfg_.value_abs_max, "value estimate exploded");
  }

  // --- collapse / stagnation (warnings): degradation, not corruption.
  if (cfg_.entropy_floor > 0.0 && std::isfinite(s.entropy) &&
      s.entropy < cfg_.entropy_floor) {
    add(Check::kEntropyFloor, Severity::kWarn, s.entropy, cfg_.entropy_floor,
        "policy entropy under floor");
  }
  if (cfg_.alpha_entropy_floor > 0.0 && s.alpha_entropy_mean >= 0.0 &&
      s.alpha_entropy_mean < cfg_.alpha_entropy_floor) {
    add(Check::kAlphaCollapse, Severity::kWarn, s.alpha_entropy_mean,
        cfg_.alpha_entropy_floor, "alpha entropy under floor");
  }
  if (cfg_.rollout_stall_ms > 0.0 && s.rollout_ms > cfg_.rollout_stall_ms) {
    add(Check::kEnvStall, Severity::kWarn, s.rollout_ms,
        cfg_.rollout_stall_ms, "rollout wall time above stall threshold");
  }

  if (cfg_.reward_stagnation_iters > 0 && std::isfinite(s.mean_reward)) {
    const double ewma = reward_ewma_.update(s.mean_reward);
    if (!best_valid_ || ewma > best_ewma_ + cfg_.reward_min_delta) {
      best_valid_ = true;
      best_ewma_ = ewma;
      best_iter_ = s.iter;
    } else if (s.iter - best_iter_ >=
               static_cast<std::int64_t>(cfg_.reward_stagnation_iters)) {
      add(Check::kRewardStagnation, Severity::kWarn, ewma, best_ewma_,
          "reward EWMA flat for " + std::to_string(s.iter - best_iter_) +
              " iterations");
    }
  }

  return report;
}

}  // namespace a3cs::guard
