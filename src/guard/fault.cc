#include "guard/fault.h"

#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "util/config.h"
#include "util/logging.h"

namespace a3cs::guard {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNanGrad: return "nan_grad";
    case FaultKind::kInfLoss: return "inf_loss";
    case FaultKind::kNanParam: return "nan_param";
    case FaultKind::kStallEnv: return "stall_env";
    case FaultKind::kTruncCkpt: return "trunc_ckpt";
  }
  return "?";
}

FaultInjector& FaultInjector::global() {
  // Leaked singleton: magic-static init is thread-safe, the pointer is never
  // reassigned, and all mutation goes through mu_. A3CS_LINT(conc-static-local)
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::arm(FaultKind kind, std::int64_t at_iter, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.push_back(Armed{kind, at_iter, count, 0});
}

namespace {

// "I" or "I:N" -> (iter, count); count defaults to 1. Returns false when the
// variable is unset or unparsable.
bool parse_fault_spec(const char* env_name, std::int64_t* iter, int* count) {
  const std::string spec = util::env_string(env_name, "");
  if (spec.empty()) return false;
  char* end = nullptr;
  const long long at = std::strtoll(spec.c_str(), &end, 10);
  if (end == spec.c_str() || at < 0) return false;
  long long n = 1;
  if (*end == ':') {
    const char* count_begin = end + 1;
    n = std::strtoll(count_begin, &end, 10);
    if (end == count_begin || n < 1) return false;
  }
  if (*end != '\0') return false;
  *iter = at;
  *count = static_cast<int>(n);
  return true;
}

}  // namespace

void FaultInjector::arm_from_env() {
  static constexpr struct {
    const char* env;
    FaultKind kind;
  } kSpecs[] = {
      {"A3CS_FAULT_NAN_GRAD", FaultKind::kNanGrad},
      {"A3CS_FAULT_INF_LOSS", FaultKind::kInfLoss},
      {"A3CS_FAULT_NAN_PARAM", FaultKind::kNanParam},
      {"A3CS_FAULT_STALL_ENV", FaultKind::kStallEnv},
      {"A3CS_FAULT_TRUNC_CKPT", FaultKind::kTruncCkpt},
  };
  for (const auto& spec : kSpecs) {
    std::int64_t at = 0;
    int count = 1;
    if (parse_fault_spec(spec.env, &at, &count)) {
      A3CS_LOG(WARN) << "fault injection armed from " << spec.env << ": "
                     << fault_kind_name(spec.kind) << " at iteration " << at
                     << " x" << count;
      arm(spec.kind, at, count);
    }
  }
  set_stall_ms(util::env_double("A3CS_FAULT_STALL_MS", stall_ms()));
}

bool FaultInjector::should_fire(FaultKind kind, std::int64_t iter) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Armed& a : armed_) {
    if (a.kind != kind || iter < a.at_iter || a.fired >= a.count) continue;
    ++a.fired;
    ++total_fired_;
    static obs::Counter& injected =
        obs::MetricsRegistry::global().counter("guard.faults_injected");
    injected.inc();
    A3CS_LOG(WARN) << "injecting fault " << fault_kind_name(kind)
                   << " at iteration " << iter << " (" << a.fired << "/"
                   << a.count << ")";
    return true;
  }
  return false;
}

double FaultInjector::stall_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_ms_;
}

void FaultInjector::set_stall_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_ms_ = ms;
}

std::int64_t FaultInjector::total_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_fired_;
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  total_fired_ = 0;
  stall_ms_ = 50.0;
}

}  // namespace a3cs::guard
