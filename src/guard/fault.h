// Deterministic fault injection for the training-health guard.
//
// Every rung of the guard's escalation ladder must be exercised by a REAL
// injected fault (the same standard ckpt_resume_test set for kill-and-resume:
// no mocks, corrupt the actual data path). The injector arms faults either
// programmatically (tests) or from the environment (CI smoke runs):
//
//   A3CS_FAULT_NAN_GRAD=I[:N]   poison a gradient element with NaN at
//                               iteration I (for N consecutive iterations)
//   A3CS_FAULT_INF_LOSS=I[:N]   poison the loss terms / head gradients
//                               with Inf
//   A3CS_FAULT_NAN_PARAM=I[:N]  poison a PARAMETER value with NaN —
//                               persistent corruption a skipped update
//                               cannot heal; forces the rollback rung
//   A3CS_FAULT_STALL_ENV=I[:N]  stall the rollout (A3CS_FAULT_STALL_MS,
//                               default 50)
//   A3CS_FAULT_TRUNC_CKPT=I[:N] truncate the checkpoint written at/after
//                               iteration I in half (torn tip)
//
// A fault fires at the first iteration >= its arm point and consumes one
// count per firing. Counts (not iteration equality) gate re-firing so a
// guard ROLLBACK that rewinds the iteration counter below the arm point
// does not re-inject the same fault during the healed replay.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace a3cs::guard {

enum class FaultKind { kNanGrad, kInfLoss, kNanParam, kStallEnv, kTruncCkpt };

const char* fault_kind_name(FaultKind k);

class FaultInjector {
 public:
  // The process-global injector the engine consults. Tests arm it directly;
  // cross-process runs arm it through the environment (arm_from_env is
  // called once per CoSearchEngine::run).
  static FaultInjector& global();

  // Arms `kind` to fire `count` times starting at the first iteration
  // >= `at_iter`.
  void arm(FaultKind kind, std::int64_t at_iter, int count = 1);

  // Parses the A3CS_FAULT_* variables ("iter" or "iter:count") and arms the
  // corresponding faults. Unset variables arm nothing.
  void arm_from_env();

  // True (and consumes one count) when `kind` should corrupt iteration
  // `iter`. Increments the guard.faults_injected metric on firing.
  bool should_fire(FaultKind kind, std::int64_t iter);

  // Duration of an injected env stall (A3CS_FAULT_STALL_MS overrides).
  double stall_ms() const;
  void set_stall_ms(double ms);

  // Total faults fired since the last reset (all kinds).
  std::int64_t total_fired() const;

  // Disarms everything (tests isolate themselves with this).
  void reset();

 private:
  struct Armed {
    FaultKind kind;
    std::int64_t at_iter;
    int count;
    int fired = 0;
  };

  mutable std::mutex mu_;
  std::vector<Armed> armed_;
  double stall_ms_ = 50.0;
  std::int64_t total_fired_ = 0;
};

}  // namespace a3cs::guard
