// The guard's escalation ladder.
//
// The HealthMonitor says WHETHER an iteration is unhealthy; the GuardPolicy
// decides WHAT to do about it, escalating through increasingly invasive
// remedies as consecutive unhealthy iterations pile up:
//
//   1. skip     — drop the offending batch: zero the gradients, no optimizer
//                 step. Heals one-off corruption (a single NaN batch).
//   2. soften   — halve the learning rates and bump the Gumbel temperature
//                 for a cooldown window. Heals marginal instability the skip
//                 could not (looping value explosion, oscillating alpha).
//   3. rollback — restore the newest checkpoint TAGGED HEALTHY (see
//                 ckpt::SectionWriter::set_healthy) and reseed the sampling
//                 RNG streams so the replay explores a different trajectory
//                 instead of deterministically re-diverging.
//   4. abort    — rollback budget exhausted: dump diagnostics and stop.
//
// Modes: kOff disables monitoring entirely (the negative-control mode the
// fault-injection tests use to prove the faults really corrupt an unguarded
// run), kWarn observes/reports but never acts, kHeal runs the full ladder.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "guard/health.h"

namespace a3cs::guard {

enum class GuardMode { kOff, kWarn, kHeal };

const char* guard_mode_name(GuardMode m);
// Parses "off" | "warn" | "heal" (case-sensitive); throws on anything else.
GuardMode parse_guard_mode(const std::string& s);

enum class GuardAction { kNone, kSkip, kSoften, kRollback, kAbort };

const char* guard_action_name(GuardAction a);

struct GuardConfig {
  GuardMode mode = GuardMode::kWarn;
  HealthConfig health;

  // Ladder shape: the first `skip_budget` consecutive error iterations are
  // answered with skips, the next `soften_budget` with softens, then each
  // further one triggers a rollback until `max_rollbacks` is spent.
  int skip_budget = 2;
  int soften_budget = 2;
  double soften_lr_scale = 0.5;    // applied per soften, multiplicative
  double soften_tau_boost = 1.25;  // Gumbel temperature bump per soften
  int soften_cooldown_iters = 20;  // window the reduced LR stays in force
  int max_rollbacks = 3;

  // Returns a copy with A3CS_GUARD_* environment overrides applied (env
  // wins, mirroring A3CS_TRACE_* / A3CS_CKPT_* semantics):
  //   A3CS_GUARD=off|warn|heal     the mode
  //   A3CS_GUARD_SKIPS / _SOFTENS / _ROLLBACKS      ladder budgets
  //   A3CS_GUARD_COOLDOWN                           soften window (iters)
  //   A3CS_GUARD_GRAD_MAX / _PARAM_MAX / _VALUE_MAX explosion thresholds
  //   A3CS_GUARD_ENTROPY_FLOOR / _ALPHA_FLOOR       collapse floors (nats)
  //   A3CS_GUARD_STAGNATION_ITERS                   reward EWMA window
  //   A3CS_GUARD_STALL_MS                           rollout stall threshold
  GuardConfig with_env_overrides() const;
};

// Thrown by the engine when the ladder reaches kAbort: the run is
// unsalvageable within the configured budgets. Carries the final report
// summary; a diagnostic state dump has been written before the throw.
class GuardAbort : public std::runtime_error {
 public:
  explicit GuardAbort(const std::string& msg, std::int64_t iter = -1)
      : std::runtime_error(msg), iter_(iter) {}

  // Iteration the ladder gave up at (-1 when unknown). Process supervisors
  // (src/fleet) forward it in their `diverged` report so the fleet log pins
  // exactly where a shard was written off.
  std::int64_t iter() const { return iter_; }

 private:
  std::int64_t iter_ = -1;
};

// Per-run ladder state machine. decide() consumes one HealthReport per
// iteration and returns the action for it; the caller performs the action
// (the policy itself never touches training state) and reports rollback
// completion back via on_rollback().
class GuardPolicy {
 public:
  explicit GuardPolicy(GuardConfig cfg = GuardConfig{});

  GuardAction decide(const HealthReport& report);

  // Called after the engine finished restoring a checkpoint: spends one
  // rollback budget unit and clears the error streak.
  void on_rollback();

  int error_streak() const { return streak_; }
  int rollbacks() const { return rollbacks_; }
  const GuardConfig& config() const { return cfg_; }

 private:
  GuardConfig cfg_;
  int streak_ = 0;
  int rollbacks_ = 0;
};

}  // namespace a3cs::guard
