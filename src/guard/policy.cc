#include "guard/policy.h"

#include "util/config.h"
#include "util/logging.h"

namespace a3cs::guard {

const char* guard_mode_name(GuardMode m) {
  switch (m) {
    case GuardMode::kOff: return "off";
    case GuardMode::kWarn: return "warn";
    case GuardMode::kHeal: return "heal";
  }
  return "?";
}

GuardMode parse_guard_mode(const std::string& s) {
  if (s == "off") return GuardMode::kOff;
  if (s == "warn") return GuardMode::kWarn;
  if (s == "heal") return GuardMode::kHeal;
  throw std::runtime_error("unknown guard mode '" + s +
                           "' (expected off|warn|heal)");
}

const char* guard_action_name(GuardAction a) {
  switch (a) {
    case GuardAction::kNone: return "none";
    case GuardAction::kSkip: return "skip";
    case GuardAction::kSoften: return "soften";
    case GuardAction::kRollback: return "rollback";
    case GuardAction::kAbort: return "abort";
  }
  return "?";
}

GuardConfig GuardConfig::with_env_overrides() const {
  GuardConfig out = *this;
  const std::string mode =
      util::env_string("A3CS_GUARD", guard_mode_name(out.mode));
  try {
    out.mode = parse_guard_mode(mode);
  } catch (const std::exception&) {
    A3CS_LOG(WARN) << "ignoring invalid A3CS_GUARD=" << mode;
  }
  out.skip_budget =
      static_cast<int>(util::env_int("A3CS_GUARD_SKIPS", out.skip_budget));
  out.soften_budget =
      static_cast<int>(util::env_int("A3CS_GUARD_SOFTENS", out.soften_budget));
  out.max_rollbacks = static_cast<int>(
      util::env_int("A3CS_GUARD_ROLLBACKS", out.max_rollbacks));
  out.soften_cooldown_iters = static_cast<int>(
      util::env_int("A3CS_GUARD_COOLDOWN", out.soften_cooldown_iters));
  out.health.grad_norm_max =
      util::env_double("A3CS_GUARD_GRAD_MAX", out.health.grad_norm_max);
  out.health.param_norm_max =
      util::env_double("A3CS_GUARD_PARAM_MAX", out.health.param_norm_max);
  out.health.value_abs_max =
      util::env_double("A3CS_GUARD_VALUE_MAX", out.health.value_abs_max);
  out.health.entropy_floor =
      util::env_double("A3CS_GUARD_ENTROPY_FLOOR", out.health.entropy_floor);
  out.health.alpha_entropy_floor = util::env_double(
      "A3CS_GUARD_ALPHA_FLOOR", out.health.alpha_entropy_floor);
  out.health.reward_stagnation_iters = static_cast<int>(util::env_int(
      "A3CS_GUARD_STAGNATION_ITERS", out.health.reward_stagnation_iters));
  out.health.rollout_stall_ms =
      util::env_double("A3CS_GUARD_STALL_MS", out.health.rollout_stall_ms);
  return out;
}

GuardPolicy::GuardPolicy(GuardConfig cfg) : cfg_(cfg) {}

GuardAction GuardPolicy::decide(const HealthReport& report) {
  if (cfg_.mode == GuardMode::kOff) return GuardAction::kNone;
  if (!report.has_error()) {
    streak_ = 0;
    return GuardAction::kNone;
  }
  ++streak_;
  if (cfg_.mode == GuardMode::kWarn) return GuardAction::kNone;
  if (streak_ <= cfg_.skip_budget) return GuardAction::kSkip;
  if (streak_ <= cfg_.skip_budget + cfg_.soften_budget) {
    return GuardAction::kSoften;
  }
  if (rollbacks_ >= cfg_.max_rollbacks) return GuardAction::kAbort;
  return GuardAction::kRollback;
}

void GuardPolicy::on_rollback() {
  ++rollbacks_;
  streak_ = 0;
}

}  // namespace a3cs::guard
