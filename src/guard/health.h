// Training-health monitoring for the co-search loop.
//
// DNAS-for-DRL is unstable by construction (the paper's Sec. IV-B introduces
// AC-distillation precisely because naive co-search collapses): value
// estimates explode, the policy or the architecture distribution collapses,
// and a single NaN gradient silently poisons every weight. The HealthMonitor
// turns the cheap per-iteration signals the engine already has (loss terms,
// fused gradient/parameter norms, value magnitude, entropies, rewards) into
// typed HealthVerdicts that the GuardPolicy escalation ladder acts on
// (skip -> soften -> rollback -> abort; see policy.h and docs/ROBUSTNESS.md).
//
// Severity semantics:
//   kError — the update is unsafe to commit (non-finite state, explosion);
//            drives the escalation ladder.
//   kWarn  — a degradation signal (entropy/alpha collapse, reward
//            stagnation, env stall); reported and traced, never escalated.
#pragma once

#include <string>
#include <vector>

#include "util/stats.h"

namespace a3cs::guard {

enum class Check {
  kLossFinite,        // every loss term finite
  kGradFinite,        // fused gradient global norm finite
  kGradExplosion,     // pre-clip gradient norm above threshold
  kParamFinite,       // fused parameter global norm finite
  kParamExplosion,    // parameter norm above threshold
  kValueExplosion,    // max |V(s)| above threshold
  kEntropyFloor,      // policy entropy under the floor (policy collapse)
  kAlphaCollapse,     // mean alpha entropy under the floor (premature commit)
  kRewardStagnation,  // reward EWMA flat for too many iterations
  kEnvStall,          // rollout wall time above threshold
};

const char* check_name(Check c);

enum class Severity { kOk, kWarn, kError };

const char* severity_name(Severity s);

// One check's outcome for one iteration.
struct HealthVerdict {
  Check check = Check::kLossFinite;
  Severity severity = Severity::kOk;
  double value = 0.0;      // the observed signal
  double threshold = 0.0;  // the limit it was compared against
  std::string detail;      // human-readable one-liner for logs/traces
};

struct HealthReport {
  std::vector<HealthVerdict> verdicts;  // only non-OK verdicts are recorded

  bool ok() const { return verdicts.empty(); }
  bool has_error() const;
  bool has_warning() const;
  // The most severe verdict, errors first; nullptr when ok().
  const HealthVerdict* worst() const;
  std::string summary() const;
};

// Thresholds; 0 (or a negative value) disables the individual check.
struct HealthConfig {
  double grad_norm_max = 1e6;     // pre-clip explosion bound
  double param_norm_max = 1e7;    // parameter explosion bound
  double value_abs_max = 1e4;     // critic explosion bound (paper: value
                                  // explosion is the canonical failure)
  double entropy_floor = 1e-3;    // nats; 0 disables
  double alpha_entropy_floor = 0.0;  // nats; disabled by default (alpha is
                                     // SUPPOSED to commit late in search)
  // Reward-stagnation EWMA: warn when the smoothed reward has not improved
  // by `reward_min_delta` for `reward_stagnation_iters` iterations. 0
  // disables (default: short reproduction runs stagnate legitimately).
  int reward_stagnation_iters = 0;
  double reward_ewma_alpha = 0.05;
  double reward_min_delta = 1e-6;
  // Env-stall watchdog on the rollout wall time; 0 disables.
  double rollout_stall_ms = 0.0;
};

// Everything one iteration hands the monitor. Losses/norms are doubles so a
// float NaN/Inf survives the trip intact.
struct HealthSignals {
  std::int64_t iter = 0;
  double loss_total = 0.0;
  double loss_policy = 0.0;
  double loss_value = 0.0;
  double entropy = 0.0;          // true policy entropy (nats)
  double grad_norm = 0.0;        // fused pre-clip global norm
  bool grad_finite = true;
  double param_norm = 0.0;       // fused post-update global norm
  bool param_finite = true;
  double value_abs_max = 0.0;    // max |V(s)| over the batch
  double alpha_entropy_mean = -1.0;  // < 0 when not applicable
  double mean_reward = 0.0;
  double rollout_ms = 0.0;
};

// Stateful per-run monitor: most checks are pure threshold comparisons, the
// reward-stagnation check keeps an EWMA across iterations. evaluate() is
// read-only with respect to the training state and costs O(#checks).
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig cfg = HealthConfig{});

  HealthReport evaluate(const HealthSignals& s);

  // Clears the cross-iteration state (reward EWMA); called after a rollback
  // so pre-divergence history does not judge the restored run.
  void reset();

  const HealthConfig& config() const { return cfg_; }

 private:
  HealthConfig cfg_;
  util::Ema reward_ewma_;
  double best_ewma_ = 0.0;
  bool best_valid_ = false;
  std::int64_t best_iter_ = 0;
};

// Stateless helper for call sites outside the engine loop (e.g. the guarded
// rl::a2c_update): an error verdict when `value` is non-finite, OK otherwise.
HealthVerdict check_finite(Check check, double value, const char* what);

}  // namespace a3cs::guard
