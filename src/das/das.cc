#include "das/das.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "accel/config_io.h"
#include "obs/metrics.h"
#include "obs/profile.h"
// Deliberate upward edge — see the das.h include note. A3CS_LINT(arch-layering)
#include "serve/service.h"
#include "tensor/serialize.h"
#include "util/logging.h"
#include "util/state_io.h"

namespace a3cs::das {

namespace {

// One drawn-but-not-yet-evaluated accelerator sample. Sampling consumes the
// engine RNG and must stay serial (and in the exact order the serial code
// used); the predictor evaluations are pure functions of the choices and fan
// out over the pool; the gradient/incumbent bookkeeping is replayed serially
// in draw order so baselines and incumbents are bit-exact at any thread
// count.
struct DrawnSample {
  bool explore = false;
  std::vector<nas::GumbelSample> gumbel;  // empty for explore draws
  std::vector<int> choices;
};

struct EvaluatedSample {
  accel::AcceleratorConfig config;
  serve::CachedEvalPtr value;  // shared with the service's memo-cache

  const accel::HwEval& eval() const { return value->eval; }
  double cost() const { return value->cost; }
};

// All predictor sweeps go through the serving layer: the per-layer
// decomposition is hoisted into `net`, repeated configs hit the memo-cache,
// and PredictorService::evaluate_batch fans the misses over the pool with
// fixed sharding — bit-exact with a serial loop at any thread count.
void evaluate_batch(const AcceleratorSpace& space,
                    serve::PredictorService& service,
                    const serve::PreparedNet& net,
                    const std::vector<DrawnSample>& drawn,
                    std::vector<EvaluatedSample>& out) {
  A3CS_PROF_SCOPE("das-eval");
  std::vector<accel::AcceleratorConfig> configs(drawn.size());
  for (std::size_t i = 0; i < drawn.size(); ++i) {
    configs[i] = space.decode(drawn[i].choices);
  }
  std::vector<serve::ServeResult> results =
      service.evaluate_batch(net, configs);
  out.resize(drawn.size());
  for (std::size_t i = 0; i < drawn.size(); ++i) {
    out[i].config = std::move(configs[i]);
    out[i].value = std::move(results[i].value);
  }
}

}  // namespace

DasEngine::DasEngine(const AcceleratorSpace& space, const Predictor& predictor,
                     DasConfig cfg)
    : space_(space),
      predictor_(predictor),
      service_(predictor),
      cfg_(cfg),
      opt_(cfg.lr),
      rng_(cfg.seed),
      tau_(cfg.tau_init) {
  for (const auto& knob : space.knobs()) {
    phis_.emplace_back(knob.name, knob.num_choices);
  }
}

double DasEngine::step(const std::vector<nn::LayerSpec>& specs, int n) {
  A3CS_PROF_SCOPE("das-step");
  static obs::Counter& steps =
      obs::MetricsRegistry::global().counter("das.steps");
  static obs::Counter& samples =
      obs::MetricsRegistry::global().counter("das.samples");
  steps.inc(n);
  samples.inc(static_cast<std::int64_t>(n) *
              std::max(1, cfg_.samples_per_iter));
  double last_cost = 0.0;
  std::vector<nn::Parameter*> params;
  params.reserve(phis_.size());
  for (auto& phi : phis_) params.push_back(&phi.param());

  // Hoist the per-layer decomposition + signature once per step() call; the
  // co-search loop mutates the network between calls, never within one.
  const serve::PreparedNet net = service_.prepare(specs);
  std::vector<DrawnSample> drawn;
  std::vector<EvaluatedSample> evaluated;
  for (int it = 0; it < n; ++it) {
    const int samples_per_iter = std::max(1, cfg_.samples_per_iter);
    // Phase 1 (serial): draw every sample of this iteration, consuming the
    // RNG in exactly the order the all-serial loop did.
    drawn.clear();
    for (int s = 0; s < samples_per_iter; ++s) {
      DrawnSample d;
      // Exploration sample: uniform over the space, incumbent-only (it is
      // off-policy, so it must not feed the relaxed-gradient estimator).
      if (rng_.uniform() < cfg_.explore_eps) {
        d.explore = true;
        d.choices = space_.random_choices(rng_);
      } else {
        // Hard-sample every knob to build one concrete accelerator.
        d.gumbel.reserve(phis_.size());
        d.choices.reserve(phis_.size());
        for (auto& phi : phis_) {
          d.gumbel.push_back(phi.sample(rng_, tau_));
          d.choices.push_back(d.gumbel.back().index);
        }
      }
      drawn.push_back(std::move(d));
    }

    // Phase 2 (parallel): evaluate the predictor on every drawn config.
    evaluate_batch(space_, service_, net, drawn, evaluated);

    // Phase 3 (serial, in draw order): incumbent, baseline and gradients.
    for (int s = 0; s < samples_per_iter; ++s) {
      const DrawnSample& d = drawn[static_cast<std::size_t>(s)];
      const EvaluatedSample& ev = evaluated[static_cast<std::size_t>(s)];
      if (!has_best_seen_ ||
          (ev.eval().feasible && !best_seen_eval_.feasible) ||
          (ev.eval().feasible == best_seen_eval_.feasible &&
           ev.cost() < best_seen_cost_)) {
        has_best_seen_ = true;
        best_seen_config_ = ev.config;
        best_seen_eval_ = ev.eval();
        best_seen_cost_ = ev.cost();
      }
      if (d.explore) continue;
      last_cost = ev.cost();

      double signal = cfg_.log_cost ? std::log(ev.cost() + 1e-9) : ev.cost();
      if (cfg_.use_baseline) {
        if (!baseline_init_) {
          baseline_ = signal;
          baseline_init_ = true;
        } else {
          baseline_ = 0.95 * baseline_ + 0.05 * signal;
        }
        signal -= baseline_;
      }
      signal /= samples_per_iter;

      // The hard one-hot made only the sampled choice contribute, so each
      // knob's sensitivity vector is zero except at the sampled index (the
      // relaxed softmax then spreads the gradient over all logits).
      for (std::size_t m = 0; m < phis_.size(); ++m) {
        std::vector<float> sens(
            static_cast<std::size_t>(phis_[m].num_choices()), 0.0f);
        sens[static_cast<std::size_t>(d.gumbel[m].index)] =
            static_cast<float>(signal);
        phis_[m].accumulate_grad(d.gumbel[m], sens, tau_);
      }
    }
    opt_.step(params);
    for (nn::Parameter* p : params) p->grad.zero();

    tau_ = std::max(cfg_.tau_min, tau_ * cfg_.tau_decay);
  }
  return last_cost;
}

namespace {

void put_hw_eval(std::ostream& out, const accel::HwEval& e) {
  namespace sio = util::sio;
  sio::put_bool(out, e.feasible);
  sio::put_f64(out, e.ii_cycles);
  sio::put_f64(out, e.latency_cycles);
  sio::put_f64(out, e.fps);
  sio::put_f64(out, e.energy_nj);
  sio::put_i32(out, e.dsp_used);
  sio::put_f64(out, e.bram_used);
  sio::put_f64(out, e.resource_overflow);
  sio::put_u32(out, static_cast<std::uint32_t>(e.layers.size()));
  for (const accel::LayerCost& lc : e.layers) {
    sio::put_f64(out, lc.compute_cycles);
    sio::put_f64(out, lc.memory_cycles);
    sio::put_f64(out, lc.cycles);
    sio::put_f64(out, lc.sram_bytes);
    sio::put_f64(out, lc.dram_bytes);
    sio::put_f64(out, lc.energy_nj);
    sio::put_i32(out, lc.chunk);
  }
  sio::put_f64_vec(out, e.chunk_cycles);
}

accel::HwEval get_hw_eval(std::istream& in) {
  namespace sio = util::sio;
  accel::HwEval e;
  e.feasible = sio::get_bool(in);
  e.ii_cycles = sio::get_f64(in);
  e.latency_cycles = sio::get_f64(in);
  e.fps = sio::get_f64(in);
  e.energy_nj = sio::get_f64(in);
  e.dsp_used = sio::get_i32(in);
  e.bram_used = sio::get_f64(in);
  e.resource_overflow = sio::get_f64(in);
  e.layers.resize(sio::get_u32(in));
  for (accel::LayerCost& lc : e.layers) {
    lc.compute_cycles = sio::get_f64(in);
    lc.memory_cycles = sio::get_f64(in);
    lc.cycles = sio::get_f64(in);
    lc.sram_bytes = sio::get_f64(in);
    lc.dram_bytes = sio::get_f64(in);
    lc.energy_nj = sio::get_f64(in);
    lc.chunk = sio::get_i32(in);
  }
  e.chunk_cycles = sio::get_f64_vec(in);
  return e;
}

}  // namespace

void DasEngine::save_state(std::ostream& out) const {
  namespace sio = util::sio;
  sio::put_u32(out, static_cast<std::uint32_t>(phis_.size()));
  std::vector<nn::Parameter*> params;
  for (const auto& phi : phis_) {
    params.push_back(const_cast<nn::Parameter*>(&phi.param()));
  }
  for (const nn::Parameter* p : params) {
    tensor::write_tensor(out, p->value);
  }
  opt_.save_state(out, params);
  sio::put_rng(out, rng_);
  sio::put_f64(out, tau_);
  sio::put_f64(out, baseline_);
  sio::put_bool(out, baseline_init_);
  sio::put_bool(out, has_best_seen_);
  if (has_best_seen_) {
    sio::put_string(out, accel::encode_config(best_seen_config_));
    put_hw_eval(out, best_seen_eval_);
    sio::put_f64(out, best_seen_cost_);
  }
}

void DasEngine::load_state(std::istream& in) {
  namespace sio = util::sio;
  const std::uint32_t n = sio::get_u32(in);
  A3CS_CHECK(n == phis_.size(), "DasEngine::load_state: knob count mismatch");
  std::vector<nn::Parameter*> params;
  for (auto& phi : phis_) params.push_back(&phi.param());
  for (nn::Parameter* p : params) {
    tensor::Tensor t = tensor::read_tensor(in);
    A3CS_CHECK(t.numel() == p->value.numel(),
               "DasEngine::load_state: phi logit shape mismatch");
    p->value = t;
  }
  opt_.load_state(in, params);
  sio::get_rng(in, rng_);
  tau_ = sio::get_f64(in);
  baseline_ = sio::get_f64(in);
  baseline_init_ = sio::get_bool(in);
  has_best_seen_ = sio::get_bool(in);
  if (has_best_seen_) {
    best_seen_config_ = accel::decode_config(sio::get_string(in));
    best_seen_eval_ = get_hw_eval(in);
    best_seen_cost_ = sio::get_f64(in);
  } else {
    best_seen_config_ = AcceleratorConfig{};
    best_seen_eval_ = HwEval{};
    best_seen_cost_ = 0.0;
  }
}

AcceleratorConfig DasEngine::derive() const {
  std::vector<int> choices;
  choices.reserve(phis_.size());
  for (const auto& phi : phis_) choices.push_back(phi.argmax());
  return space_.decode(choices);
}

HwEval DasEngine::derive_eval(const std::vector<nn::LayerSpec>& specs) const {
  return predictor_.evaluate(specs, derive());
}

DasResult DasEngine::search(const std::vector<nn::LayerSpec>& specs) {
  DasResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  bool have_best = false;
  result.cost_curve.reserve(static_cast<std::size_t>(cfg_.iterations));
  const serve::PreparedNet net = service_.prepare(specs);
  for (int it = 0; it < cfg_.iterations; ++it) {
    const double cost = step(specs, 1);
    result.cost_curve.push_back(cost);
    // Track the best *derived* config periodically (and at the end). The
    // derived argmax often repeats across checks once phi converges, so this
    // goes through the memo-cache too.
    if ((it + 1) % 25 == 0 || it + 1 == cfg_.iterations) {
      const AcceleratorConfig cand = derive();
      const serve::ServeResult r = service_.evaluate_one(net, cand);
      const HwEval& eval = r.eval();
      const double cand_cost = r.cost();
      if (!have_best || (eval.feasible && !result.eval.feasible) ||
          (eval.feasible == result.eval.feasible &&
           cand_cost < result.best_cost)) {
        have_best = true;
        result.config = cand;
        result.eval = eval;
        result.best_cost = cand_cost;
      }
    }
  }
  // The incumbent (best sampled candidate) may beat the derived argmax; the
  // search's answer is whichever is better under the same cost model.
  if (has_best_seen_ &&
      ((best_seen_eval_.feasible && !result.eval.feasible) ||
       (best_seen_eval_.feasible == result.eval.feasible &&
        best_seen_cost_ < result.best_cost))) {
    result.config = best_seen_config_;
    result.eval = best_seen_eval_;
    result.best_cost = best_seen_cost_;
  }
  return result;
}

DasResult random_search(const AcceleratorSpace& space,
                        const Predictor& predictor,
                        const std::vector<nn::LayerSpec>& specs, int samples,
                        std::uint64_t seed_value) {
  util::Rng rng(seed_value);
  DasResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  bool have_best = false;
  // Draw serially (fixed RNG order), evaluate in parallel blocks, reduce
  // serially in draw order — identical results at any thread count.
  serve::PredictorService service(predictor);
  const serve::PreparedNet net = service.prepare(specs);
  constexpr int kBlock = 256;
  std::vector<DrawnSample> drawn;
  std::vector<EvaluatedSample> evaluated;
  for (int i0 = 0; i0 < samples; i0 += kBlock) {
    const int count = std::min(kBlock, samples - i0);
    drawn.assign(static_cast<std::size_t>(count), DrawnSample{});
    for (int i = 0; i < count; ++i) {
      drawn[static_cast<std::size_t>(i)].choices = space.random_choices(rng);
    }
    evaluate_batch(space, service, net, drawn, evaluated);
    for (int i = 0; i < count; ++i) {
      const EvaluatedSample& ev = evaluated[static_cast<std::size_t>(i)];
      result.cost_curve.push_back(ev.cost());
      if (!have_best || (ev.eval().feasible && !result.eval.feasible) ||
          (ev.eval().feasible == result.eval.feasible &&
           ev.cost() < result.best_cost)) {
        have_best = true;
        result.config = ev.config;
        result.eval = ev.eval();
        result.best_cost = ev.cost();
      }
    }
  }
  return result;
}

DasResult exhaustive_search(const AcceleratorSpace& space,
                            const Predictor& predictor,
                            const std::vector<nn::LayerSpec>& specs,
                            double max_configs) {
  A3CS_CHECK(space.size() <= max_configs,
             "exhaustive_search: space too large to enumerate");
  DasResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  bool have_best = false;
  std::vector<int> choices(static_cast<std::size_t>(space.num_knobs()), 0);
  // Enumerate the odometer serially into fixed-size blocks, evaluate each
  // block in parallel, reduce serially in enumeration order.
  serve::PredictorService service(predictor);
  const serve::PreparedNet net = service.prepare(specs);
  constexpr int kBlock = 512;
  std::vector<DrawnSample> drawn;
  std::vector<EvaluatedSample> evaluated;
  bool exhausted = false;
  while (!exhausted) {
    drawn.clear();
    while (static_cast<int>(drawn.size()) < kBlock && !exhausted) {
      DrawnSample d;
      d.choices = choices;
      drawn.push_back(std::move(d));
      // Odometer increment.
      int k = 0;
      for (; k < space.num_knobs(); ++k) {
        if (++choices[static_cast<std::size_t>(k)] <
            space.knobs()[static_cast<std::size_t>(k)].num_choices) {
          break;
        }
        choices[static_cast<std::size_t>(k)] = 0;
      }
      if (k == space.num_knobs()) exhausted = true;
    }
    evaluate_batch(space, service, net, drawn, evaluated);
    for (const EvaluatedSample& ev : evaluated) {
      if (!have_best || (ev.eval().feasible && !result.eval.feasible) ||
          (ev.eval().feasible == result.eval.feasible &&
           ev.cost() < result.best_cost)) {
        have_best = true;
        result.config = ev.config;
        result.eval = ev.eval();
        result.best_cost = ev.cost();
      }
    }
  }
  return result;
}

}  // namespace a3cs::das
