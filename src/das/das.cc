#include "das/das.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/logging.h"

namespace a3cs::das {

DasEngine::DasEngine(const AcceleratorSpace& space, const Predictor& predictor,
                     DasConfig cfg)
    : space_(space),
      predictor_(predictor),
      cfg_(cfg),
      opt_(cfg.lr),
      rng_(cfg.seed),
      tau_(cfg.tau_init) {
  for (const auto& knob : space.knobs()) {
    phis_.emplace_back(knob.name, knob.num_choices);
  }
}

double DasEngine::step(const std::vector<nn::LayerSpec>& specs, int n) {
  A3CS_PROF_SCOPE("das-step");
  static obs::Counter& steps =
      obs::MetricsRegistry::global().counter("das.steps");
  static obs::Counter& samples =
      obs::MetricsRegistry::global().counter("das.samples");
  steps.inc(n);
  samples.inc(static_cast<std::int64_t>(n) *
              std::max(1, cfg_.samples_per_iter));
  double last_cost = 0.0;
  std::vector<nn::Parameter*> params;
  params.reserve(phis_.size());
  for (auto& phi : phis_) params.push_back(&phi.param());

  for (int it = 0; it < n; ++it) {
    const int samples_per_iter = std::max(1, cfg_.samples_per_iter);
    for (int s = 0; s < samples_per_iter; ++s) {
      // Exploration sample: uniform over the space, incumbent-only (it is
      // off-policy, so it must not feed the relaxed-gradient estimator).
      if (rng_.uniform() < cfg_.explore_eps) {
        const auto uniform_choices = space_.random_choices(rng_);
        const AcceleratorConfig config = space_.decode(uniform_choices);
        const HwEval eval = predictor_.evaluate(specs, config);
        const double cost = predictor_.scalar_cost(eval);
        if (!has_best_seen_ || (eval.feasible && !best_seen_eval_.feasible) ||
            (eval.feasible == best_seen_eval_.feasible &&
             cost < best_seen_cost_)) {
          has_best_seen_ = true;
          best_seen_config_ = config;
          best_seen_eval_ = eval;
          best_seen_cost_ = cost;
        }
        continue;
      }
      // Hard-sample every knob to build one concrete accelerator.
      std::vector<nas::GumbelSample> samples;
      std::vector<int> choices;
      samples.reserve(phis_.size());
      choices.reserve(phis_.size());
      for (auto& phi : phis_) {
        samples.push_back(phi.sample(rng_, tau_));
        choices.push_back(samples.back().index);
      }
      const AcceleratorConfig config = space_.decode(choices);
      const HwEval eval = predictor_.evaluate(specs, config);
      const double cost = predictor_.scalar_cost(eval);
      last_cost = cost;
      if (!has_best_seen_ || (eval.feasible && !best_seen_eval_.feasible) ||
          (eval.feasible == best_seen_eval_.feasible &&
           cost < best_seen_cost_)) {
        has_best_seen_ = true;
        best_seen_config_ = config;
        best_seen_eval_ = eval;
        best_seen_cost_ = cost;
      }

      double signal = cfg_.log_cost ? std::log(cost + 1e-9) : cost;
      if (cfg_.use_baseline) {
        if (!baseline_init_) {
          baseline_ = signal;
          baseline_init_ = true;
        } else {
          baseline_ = 0.95 * baseline_ + 0.05 * signal;
        }
        signal -= baseline_;
      }
      signal /= samples_per_iter;

      // The hard one-hot made only the sampled choice contribute, so each
      // knob's sensitivity vector is zero except at the sampled index (the
      // relaxed softmax then spreads the gradient over all logits).
      for (std::size_t m = 0; m < phis_.size(); ++m) {
        std::vector<float> sens(
            static_cast<std::size_t>(phis_[m].num_choices()), 0.0f);
        sens[static_cast<std::size_t>(samples[m].index)] =
            static_cast<float>(signal);
        phis_[m].accumulate_grad(samples[m], sens, tau_);
      }
    }
    opt_.step(params);
    for (nn::Parameter* p : params) p->grad.zero();

    tau_ = std::max(cfg_.tau_min, tau_ * cfg_.tau_decay);
  }
  return last_cost;
}

AcceleratorConfig DasEngine::derive() const {
  std::vector<int> choices;
  choices.reserve(phis_.size());
  for (const auto& phi : phis_) choices.push_back(phi.argmax());
  return space_.decode(choices);
}

HwEval DasEngine::derive_eval(const std::vector<nn::LayerSpec>& specs) const {
  return predictor_.evaluate(specs, derive());
}

DasResult DasEngine::search(const std::vector<nn::LayerSpec>& specs) {
  DasResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  bool have_best = false;
  result.cost_curve.reserve(static_cast<std::size_t>(cfg_.iterations));
  for (int it = 0; it < cfg_.iterations; ++it) {
    const double cost = step(specs, 1);
    result.cost_curve.push_back(cost);
    // Track the best *derived* config periodically (and at the end).
    if ((it + 1) % 25 == 0 || it + 1 == cfg_.iterations) {
      const AcceleratorConfig cand = derive();
      const HwEval eval = predictor_.evaluate(specs, cand);
      const double cand_cost = predictor_.scalar_cost(eval);
      if (!have_best || (eval.feasible && !result.eval.feasible) ||
          (eval.feasible == result.eval.feasible &&
           cand_cost < result.best_cost)) {
        have_best = true;
        result.config = cand;
        result.eval = eval;
        result.best_cost = cand_cost;
      }
    }
  }
  // The incumbent (best sampled candidate) may beat the derived argmax; the
  // search's answer is whichever is better under the same cost model.
  if (has_best_seen_ &&
      ((best_seen_eval_.feasible && !result.eval.feasible) ||
       (best_seen_eval_.feasible == result.eval.feasible &&
        best_seen_cost_ < result.best_cost))) {
    result.config = best_seen_config_;
    result.eval = best_seen_eval_;
    result.best_cost = best_seen_cost_;
  }
  return result;
}

DasResult random_search(const AcceleratorSpace& space,
                        const Predictor& predictor,
                        const std::vector<nn::LayerSpec>& specs, int samples,
                        std::uint64_t seed_value) {
  util::Rng rng(seed_value);
  DasResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  bool have_best = false;
  for (int i = 0; i < samples; ++i) {
    const auto choices = space.random_choices(rng);
    const AcceleratorConfig config = space.decode(choices);
    const HwEval eval = predictor.evaluate(specs, config);
    const double cost = predictor.scalar_cost(eval);
    result.cost_curve.push_back(cost);
    if (!have_best || (eval.feasible && !result.eval.feasible) ||
        (eval.feasible == result.eval.feasible && cost < result.best_cost)) {
      have_best = true;
      result.config = config;
      result.eval = eval;
      result.best_cost = cost;
    }
  }
  return result;
}

DasResult exhaustive_search(const AcceleratorSpace& space,
                            const Predictor& predictor,
                            const std::vector<nn::LayerSpec>& specs,
                            double max_configs) {
  A3CS_CHECK(space.size() <= max_configs,
             "exhaustive_search: space too large to enumerate");
  DasResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  bool have_best = false;
  std::vector<int> choices(static_cast<std::size_t>(space.num_knobs()), 0);
  while (true) {
    const AcceleratorConfig config = space.decode(choices);
    const HwEval eval = predictor.evaluate(specs, config);
    const double cost = predictor.scalar_cost(eval);
    if (!have_best || (eval.feasible && !result.eval.feasible) ||
        (eval.feasible == result.eval.feasible && cost < result.best_cost)) {
      have_best = true;
      result.config = config;
      result.eval = eval;
      result.best_cost = cost;
    }
    // Odometer increment.
    int k = 0;
    for (; k < space.num_knobs(); ++k) {
      if (++choices[static_cast<std::size_t>(k)] <
          space.knobs()[static_cast<std::size_t>(k)].num_choices) {
        break;
      }
      choices[static_cast<std::size_t>(k)] = 0;
    }
    if (k == space.num_knobs()) break;
  }
  return result;
}

}  // namespace a3cs::das
