// DAS: the Differentiable Accelerator Search engine (paper Eq. 9).
//
// One GumbelCategorical per design knob (phi^m). Every iteration hard-samples
// all knobs to instantiate a concrete accelerator, evaluates the overall
// hardware cost L_cost with the analytical predictor, and pushes the cost
// back into every sampled logit through the relaxed Gumbel-Softmax — i.e.
//
//   phi* = argmin_phi sum_m GS_hard(phi^m) * L_cost(hw({GS_hard(phi^m)}), net)
//
// with an EMA baseline subtracted from the cost signal for variance
// reduction (standard for single-sample estimators; ablatable via config).
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "accel/predictor.h"
#include "accel/space.h"
#include "nas/gumbel.h"
#include "nn/optim.h"
// Deliberate upward edge in the layer DAG: the DAS sweep routes candidate
// evaluations through the serve-layer predictor service (PR 8) so sweeps
// share the memo-cache with external clients. A3CS_LINT(arch-layering)
#include "serve/service.h"
#include "util/rng.h"

namespace a3cs::das {

using accel::AcceleratorConfig;
using accel::AcceleratorSpace;
using accel::HwEval;
using accel::Predictor;

struct DasConfig {
  int iterations = 1500;
  int samples_per_iter = 4;  // averaged relaxed-gradient samples per step
  double lr = 0.1;           // Adam on the phi logits
  double tau_init = 5.0;
  double tau_decay = 0.997;
  double tau_min = 0.3;
  bool use_baseline = true;  // subtract an EMA of the cost from the signal
  // Fraction of evaluation samples drawn uniformly at random (exploration);
  // they update the incumbent only, never the gradient estimator.
  double explore_eps = 0.15;
  // Feed log(cost) into the estimator so the signal is scale-free across
  // networks whose cycle counts differ by orders of magnitude.
  bool log_cost = true;
  std::uint64_t seed = 3;
};

struct DasResult {
  AcceleratorConfig config;      // best feasible configuration found
  HwEval eval;                   // its evaluation
  double best_cost = 0.0;
  std::vector<double> cost_curve;  // sampled cost per iteration
};

class DasEngine {
 public:
  DasEngine(const AcceleratorSpace& space, const Predictor& predictor,
            DasConfig cfg = DasConfig{});

  // Runs the full search for a fixed network.
  DasResult search(const std::vector<nn::LayerSpec>& specs);

  // Runs `n` incremental gradient steps (used inside the A3C-S co-search
  // loop, where phi persists while the network keeps changing). Returns the
  // sampled cost of the last step.
  double step(const std::vector<nn::LayerSpec>& specs, int n = 1);

  // Current argmax-phi configuration / its evaluation.
  AcceleratorConfig derive() const;
  HwEval derive_eval(const std::vector<nn::LayerSpec>& specs) const;

  double temperature() const { return tau_; }
  const AcceleratorSpace& space() const { return space_; }

  // Replaces the sampling RNG stream (guard rollback reseed; see
  // docs/ROBUSTNESS.md).
  void reseed(std::uint64_t seed_value) { rng_.reseed(seed_value); }

  // Best configuration sampled so far (the search evaluates thousands of
  // candidates; keeping the incumbent makes DAS strictly budget-comparable
  // to best-of-N sampling).
  bool has_incumbent() const { return has_best_seen_; }
  const AcceleratorConfig& incumbent() const { return best_seen_config_; }
  const HwEval& incumbent_eval() const { return best_seen_eval_; }
  double incumbent_cost() const { return best_seen_cost_; }

  // Checkpointing: the COMPLETE search state — phi logits, their Adam
  // moments, the sample RNG, temperature, EMA baseline and the incumbent —
  // so a restored engine continues the search bit-exactly. load throws on
  // knob-count mismatch or truncation. The memo-cache is deliberately NOT
  // serialized: the predictor is pure, so a cold cache only re-derives
  // bit-identical values.
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

  // The serving front end every predictor sweep goes through (memo-cache +
  // batched evaluation; src/serve). Exposed for cache stats/clearing.
  serve::PredictorService& service() { return service_; }
  const serve::PredictorService& service() const { return service_; }

 private:
  const AcceleratorSpace& space_;
  const Predictor& predictor_;
  // The service wraps the cache, which is deliberately NOT serialized
  // (warm-up repopulates it deterministically); cfg_ is construction
  // config, re-supplied on resume.
  serve::PredictorService service_;  // A3CS_LINT(ser-field-coverage)
  DasConfig cfg_;                    // A3CS_LINT(ser-field-coverage)
  std::vector<nas::GumbelCategorical> phis_;
  nn::Adam opt_;
  util::Rng rng_;
  double tau_;
  double baseline_ = 0.0;
  bool baseline_init_ = false;
  bool has_best_seen_ = false;
  AcceleratorConfig best_seen_config_;
  HwEval best_seen_eval_;
  double best_seen_cost_ = 0.0;
};

// Baselines used to validate DAS (bench_das_quality):
// best-of-N random sampling ...
DasResult random_search(const AcceleratorSpace& space,
                        const Predictor& predictor,
                        const std::vector<nn::LayerSpec>& specs, int samples,
                        std::uint64_t seed_value);
// ... and exhaustive enumeration (tiny spaces only; checked).
DasResult exhaustive_search(const AcceleratorSpace& space,
                            const Predictor& predictor,
                            const std::vector<nn::LayerSpec>& specs,
                            double max_configs = 2e6);

}  // namespace a3cs::das
