// The MiniArcade game registry: one named configuration per Atari title the
// paper reports, mapped onto the four game engines (see DESIGN.md for the
// substitution rationale). Reward scales are tuned so score magnitudes
// roughly echo the paper's tables; all comparisons are relative.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arcade/env.h"

namespace a3cs::arcade {

// Creates a game by its (paper) title; throws on unknown titles.
std::unique_ptr<Env> make_game(const std::string& title,
                               std::uint64_t seed_value);

// All registered titles.
const std::vector<std::string>& all_game_titles();

// True if `title` is registered.
bool is_known_game(const std::string& title);

// The game subsets used by each paper table / figure.
const std::vector<std::string>& table1_games();   // 16 titles
const std::vector<std::string>& table2_games();   // 12 titles
const std::vector<std::string>& table3_games();   // 6 titles (FA3C set)
const std::vector<std::string>& figure_games();   // 4 titles (Figs. 1-3)

}  // namespace a3cs::arcade
