// DuelGame engine: Boxing / BattleZone / TimePilot variants.
//
// The player and a scripted opponent share an arena. In melee mode (Boxing)
// attacking an adjacent opponent lands a punch; in ranged mode (BattleZone,
// TimePilot) the attack fires a projectile along the row or column toward
// the opponent. The opponent closes distance and retaliates with a
// configurable skill level.
#pragma once

#include <string>
#include <vector>

#include "arcade/grid_game.h"

namespace a3cs::arcade {

struct DuelConfig {
  std::string name = "Boxing";
  bool ranged = false;
  double reward_hit = 1.0;
  double penalty_hit = -1.0;
  // First to `target_score` player-hits ends the episode (0 = no target).
  int target_score = 0;
  // Probability the opponent takes its preferred (closing/attacking) move.
  double opp_skill = 0.6;
  int max_steps = 400;
};

class DuelGame : public GridGame {
 public:
  explicit DuelGame(DuelConfig cfg, std::uint64_t seed_value = 1);

  // noop / up / down / left / right / attack
  int num_actions() const override { return 6; }
  std::string name() const override { return cfg_.name; }

 protected:
  void on_reset() override;
  double on_step(int action) override;
  void draw(Tensor& frame) const override;
  void save_game(std::ostream& out) const override;
  void load_game(std::istream& in) override;

 private:
  struct Shot { int y, x, dy, dx; bool mine; };

  bool adjacent() const;
  void respawn_opponent();

  DuelConfig cfg_;
  int px_ = 0, py_ = 0;
  int ox_ = 0, oy_ = 0;
  int player_hits_ = 0;
  int opp_cooldown_ = 0;
  std::vector<Shot> shots_;
};

}  // namespace a3cs::arcade
