#include "arcade/render.h"

#include "util/logging.h"

namespace a3cs::arcade {

std::string render_ascii(const Tensor& obs) {
  A3CS_CHECK(obs.shape().rank() == 4 && obs.shape()[0] == 1 &&
                 obs.shape()[1] >= 3,
             "render_ascii expects a (1, >=3, H, W) observation");
  const int h = obs.shape()[2], w = obs.shape()[3];
  std::string out;
  out.reserve(static_cast<std::size_t>((w + 3) * (h + 2)));
  const std::string border(static_cast<std::size_t>(w) + 2, '-');
  out += border + "\n";
  for (int y = 0; y < h; ++y) {
    out += "|";
    for (int x = 0; x < w; ++x) {
      char c = ' ';
      const float p2 = obs.at4(0, 2, y, x);
      if (p2 > 0.75f) c = '#';
      else if (p2 > 0.0f) c = '+';
      const float p1 = obs.at4(0, 1, y, x);
      if (p1 > 0.75f) c = 'o';
      else if (p1 > 0.0f) c = '.';
      if (obs.at4(0, 0, y, x) > 0.0f) c = 'A';
      out += c;
    }
    out += "|\n";
  }
  out += border + "\n";
  return out;
}

}  // namespace a3cs::arcade
