#include "arcade/wrappers.h"

#include <cstring>

#include "arcade/games.h"
#include "tensor/serialize.h"
#include "util/logging.h"
#include "util/state_io.h"

namespace a3cs::arcade {

FrameStackEnv::FrameStackEnv(std::unique_ptr<Env> inner, int num_frames)
    : inner_(std::move(inner)), num_frames_(num_frames) {
  A3CS_CHECK(inner_ != nullptr, "FrameStackEnv: null inner env");
  A3CS_CHECK(num_frames >= 2, "FrameStackEnv: need at least 2 frames");
}

ObsSpec FrameStackEnv::obs_spec() const {
  ObsSpec spec = inner_->obs_spec();
  spec.channels *= num_frames_;
  return spec;
}

Tensor FrameStackEnv::stacked() const {
  const ObsSpec inner_spec = inner_->obs_spec();
  Tensor out(tensor::Shape::nchw(1, inner_spec.channels * num_frames_,
                                 inner_spec.height, inner_spec.width));
  const std::int64_t frame = history_.front().numel();
  std::int64_t offset = 0;
  for (const Tensor& t : history_) {
    std::memcpy(out.data() + offset, t.data(),
                static_cast<std::size_t>(frame) * sizeof(float));
    offset += frame;
  }
  return out;
}

Tensor FrameStackEnv::reset() {
  const Tensor first = inner_->reset();
  history_.clear();
  // The pre-episode history is the initial frame repeated, the standard
  // convention.
  for (int i = 0; i < num_frames_; ++i) history_.push_back(first);
  return stacked();
}

StepResult FrameStackEnv::step(int action) {
  StepResult r = inner_->step(action);
  history_.pop_front();
  history_.push_back(r.obs);
  r.obs = stacked();
  return r;
}

void FrameStackEnv::save_state(std::ostream& out) const {
  inner_->save_state(out);
  // Write the declared frame count, not the incidental container size:
  // history_ is either empty (pre-reset) or exactly num_frames_ deep, and
  // load_state validates against num_frames_, so the two must agree.
  const std::uint32_t n =
      history_.empty() ? 0u : static_cast<std::uint32_t>(num_frames_);
  A3CS_CHECK(history_.empty() ||
                 history_.size() == static_cast<std::size_t>(num_frames_),
             "FrameStackEnv::save_state: history depth != num_frames");
  util::sio::put_u32(out, n);
  for (const Tensor& t : history_) tensor::write_tensor(out, t);
}

void FrameStackEnv::load_state(std::istream& in) {
  inner_->load_state(in);
  const std::uint32_t n = util::sio::get_u32(in);
  A3CS_CHECK(n == static_cast<std::uint32_t>(num_frames_) || n == 0,
             "FrameStackEnv::load_state: frame-count mismatch");
  history_.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    history_.push_back(tensor::read_tensor(in));
  }
}

std::unique_ptr<Env> make_stacked_game(const std::string& title,
                                       std::uint64_t seed_value,
                                       int num_frames) {
  return std::make_unique<FrameStackEnv>(make_game(title, seed_value),
                                         num_frames);
}

}  // namespace a3cs::arcade
