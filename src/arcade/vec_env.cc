#include "arcade/vec_env.h"

#include <cstring>

#include "arcade/games.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/state_io.h"
#include "util/thread_pool.h"

namespace a3cs::arcade {

namespace {

// Below this many envs a step/reset runs inline: a toy-game step is a few
// hundred nanoseconds, so the pool's wake/handoff cost inverted the scaling
// (the committed 32-env baseline ran 1t 0.55 ms -> 8t 1.44 ms). Fixed
// constant, so the inline/fan-out decision depends only on the batch size —
// never on the thread count — and results are unchanged either way.
constexpr std::int64_t kMinParallelEnvs = 64;

}  // namespace

VecEnv::VecEnv(const std::string& title, int num_envs,
               std::uint64_t seed_value)
    : title_(title) {
  A3CS_CHECK(num_envs >= 1, "VecEnv needs at least one env");
  for (int i = 0; i < num_envs; ++i) {
    envs_.push_back(make_game(title, seed_value + static_cast<std::uint64_t>(i)));
  }
  running_returns_.assign(envs_.size(), 0.0);
}

VecEnv::VecEnv(std::vector<std::unique_ptr<Env>> envs)
    : envs_(std::move(envs)) {
  A3CS_CHECK(!envs_.empty(), "VecEnv needs at least one env");
  title_ = envs_.front()->name();
  running_returns_.assign(envs_.size(), 0.0);
}

void VecEnv::copy_into_batch(Tensor& batch, int slot, const Tensor& obs) {
  const std::int64_t frame = obs.numel();
  std::memcpy(batch.data() + static_cast<std::size_t>(slot) * frame,
              obs.data(), static_cast<std::size_t>(frame) * sizeof(float));
}

void VecEnv::ensure_buffers() {
  if (buffers_ready_) return;
  const ObsSpec spec = obs_spec();
  step_.obs = Tensor(tensor::Shape::nchw(num_envs(), spec.channels,
                                         spec.height, spec.width));
  step_.rewards.assign(envs_.size(), 0.0);
  step_.dones.assign(envs_.size(), 0);
  finished_scores_.assign(envs_.size(), 0.0);
  buffers_ready_ = true;
}

const Tensor& VecEnv::reset() {
  ensure_buffers();
  util::parallel_for(
      0, num_envs(), 1,
      [&](std::int64_t b, std::int64_t e) {
        for (int i = static_cast<int>(b); i < static_cast<int>(e); ++i) {
          copy_into_batch(step_.obs, i,
                          envs_[static_cast<std::size_t>(i)]->reset());
        }
      },
      "env-step", kMinParallelEnvs);
  std::fill(running_returns_.begin(), running_returns_.end(), 0.0);
  return step_.obs;
}

const VecStep& VecEnv::step(const std::vector<int>& actions) {
  A3CS_CHECK(static_cast<int>(actions.size()) == num_envs(),
             "VecEnv::step action count mismatch");
  ensure_buffers();
  static obs::Counter& steps =
      obs::MetricsRegistry::global().counter("env.vec_steps");
  steps.inc();
  // Each env owns its slot of every per-env array, so shards are disjoint;
  // the cross-env episode bookkeeping happens serially below, in env order,
  // exactly as the serial loop produced it.
  util::parallel_for(
      0, num_envs(), 1,
      [&](std::int64_t b, std::int64_t e) {
        for (int i = static_cast<int>(b); i < static_cast<int>(e); ++i) {
          const auto idx = static_cast<std::size_t>(i);
          auto& env = envs_[idx];
          StepResult r = env->step(actions[idx]);
          running_returns_[idx] += r.reward;
          step_.rewards[idx] = r.reward;
          step_.dones[idx] = r.done ? 1 : 0;
          if (r.done) {
            finished_scores_[idx] = running_returns_[idx];
            running_returns_[idx] = 0.0;
            copy_into_batch(step_.obs, i, env->reset());
          } else {
            copy_into_batch(step_.obs, i, r.obs);
          }
        }
      },
      "env-step", kMinParallelEnvs);
  for (int i = 0; i < num_envs(); ++i) {
    if (step_.dones[static_cast<std::size_t>(i)] != 0) {
      episode_scores_.push_back(finished_scores_[static_cast<std::size_t>(i)]);
      ++episodes_completed_;
    }
  }
  return step_;
}

void VecEnv::save_state(std::ostream& out) const {
  namespace sio = util::sio;
  sio::put_u32(out, static_cast<std::uint32_t>(envs_.size()));
  for (const auto& env : envs_) env->save_state(out);
  sio::put_f64_vec(out, episode_scores_);
  sio::put_f64_vec(out, running_returns_);
  sio::put_i64(out, episodes_completed_);
}

void VecEnv::load_state(std::istream& in) {
  namespace sio = util::sio;
  const std::uint32_t n = sio::get_u32(in);
  A3CS_CHECK(n == envs_.size(), "VecEnv::load_state: env count mismatch");
  for (auto& env : envs_) env->load_state(in);
  episode_scores_ = sio::get_f64_vec(in);
  running_returns_ = sio::get_f64_vec(in);
  A3CS_CHECK(running_returns_.size() == envs_.size(),
             "VecEnv::load_state: running_returns size mismatch");
  episodes_completed_ = sio::get_i64(in);
}

std::vector<double> VecEnv::drain_episode_scores() {
  std::vector<double> out = std::move(episode_scores_);
  episode_scores_.clear();
  return out;
}

}  // namespace a3cs::arcade
