#include "arcade/vec_env.h"

#include <cstring>

#include "arcade/games.h"
#include "util/logging.h"

namespace a3cs::arcade {

VecEnv::VecEnv(const std::string& title, int num_envs,
               std::uint64_t seed_value)
    : title_(title) {
  A3CS_CHECK(num_envs >= 1, "VecEnv needs at least one env");
  for (int i = 0; i < num_envs; ++i) {
    envs_.push_back(make_game(title, seed_value + static_cast<std::uint64_t>(i)));
  }
  running_returns_.assign(envs_.size(), 0.0);
}

VecEnv::VecEnv(std::vector<std::unique_ptr<Env>> envs)
    : envs_(std::move(envs)) {
  A3CS_CHECK(!envs_.empty(), "VecEnv needs at least one env");
  title_ = envs_.front()->name();
  running_returns_.assign(envs_.size(), 0.0);
}

void VecEnv::copy_into_batch(Tensor& batch, int slot, const Tensor& obs) {
  const std::int64_t frame = obs.numel();
  std::memcpy(batch.data() + static_cast<std::size_t>(slot) * frame,
              obs.data(), static_cast<std::size_t>(frame) * sizeof(float));
}

Tensor VecEnv::reset() {
  const ObsSpec spec = obs_spec();
  Tensor batch(tensor::Shape::nchw(num_envs(), spec.channels, spec.height,
                                   spec.width));
  for (int i = 0; i < num_envs(); ++i) {
    copy_into_batch(batch, i, envs_[static_cast<std::size_t>(i)]->reset());
  }
  std::fill(running_returns_.begin(), running_returns_.end(), 0.0);
  return batch;
}

VecStep VecEnv::step(const std::vector<int>& actions) {
  A3CS_CHECK(static_cast<int>(actions.size()) == num_envs(),
             "VecEnv::step action count mismatch");
  const ObsSpec spec = obs_spec();
  VecStep out;
  out.obs = Tensor(tensor::Shape::nchw(num_envs(), spec.channels, spec.height,
                                       spec.width));
  out.rewards.resize(envs_.size());
  out.dones.resize(envs_.size());
  for (int i = 0; i < num_envs(); ++i) {
    auto& env = envs_[static_cast<std::size_t>(i)];
    StepResult r = env->step(actions[static_cast<std::size_t>(i)]);
    running_returns_[static_cast<std::size_t>(i)] += r.reward;
    out.rewards[static_cast<std::size_t>(i)] = r.reward;
    out.dones[static_cast<std::size_t>(i)] = r.done;
    if (r.done) {
      episode_scores_.push_back(running_returns_[static_cast<std::size_t>(i)]);
      running_returns_[static_cast<std::size_t>(i)] = 0.0;
      ++episodes_completed_;
      copy_into_batch(out.obs, i, env->reset());
    } else {
      copy_into_batch(out.obs, i, r.obs);
    }
  }
  return out;
}

std::vector<double> VecEnv::drain_episode_scores() {
  std::vector<double> out = std::move(episode_scores_);
  episode_scores_.clear();
  return out;
}

}  // namespace a3cs::arcade
