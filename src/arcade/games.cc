#include "arcade/games.h"

#include <functional>
#include <map>
#include <stdexcept>

#include "arcade/collect.h"
#include "arcade/duel.h"
#include "arcade/paddle.h"
#include "arcade/shooter.h"

namespace a3cs::arcade {
namespace {

using Factory = std::function<std::unique_ptr<Env>(std::uint64_t)>;

std::unique_ptr<Env> paddle(PaddleConfig cfg, std::uint64_t s) {
  return std::make_unique<PaddleGame>(std::move(cfg), s);
}
std::unique_ptr<Env> shooter(ShooterConfig cfg, std::uint64_t s) {
  return std::make_unique<ShooterGame>(std::move(cfg), s);
}
std::unique_ptr<Env> collect(CollectConfig cfg, std::uint64_t s) {
  return std::make_unique<CollectGame>(std::move(cfg), s);
}
std::unique_ptr<Env> duel(DuelConfig cfg, std::uint64_t s) {
  return std::make_unique<DuelGame>(std::move(cfg), s);
}

const std::map<std::string, Factory>& registry() {
  static const std::map<std::string, Factory> reg = [] {
    std::map<std::string, Factory> r;

    // ------------------------------------------------------ paddle games --
    r["Catch"] = [](std::uint64_t s) {
      PaddleConfig c;
      c.name = "Catch";
      c.mode = PaddleConfig::Mode::kCatch;
      c.reward_catch = 1.0;
      c.paddle_width = 2;  // narrow paddle: random play scores poorly
      return paddle(c, s);
    };
    r["Breakout"] = [](std::uint64_t s) {
      PaddleConfig c;
      c.name = "Breakout";
      c.mode = PaddleConfig::Mode::kBreakout;
      c.reward_brick = 7.0;  // Atari bricks score 1-7 by row
      c.lives = 3;
      return paddle(c, s);
    };
    r["Pong"] = [](std::uint64_t s) {
      PaddleConfig c;
      c.name = "Pong";
      c.mode = PaddleConfig::Mode::kVersus;
      c.opponent_skill = 0.7;
      c.target_points = 21;
      return paddle(c, s);
    };
    r["Tennis"] = [](std::uint64_t s) {
      PaddleConfig c;
      c.name = "Tennis";
      c.mode = PaddleConfig::Mode::kVersus;
      c.opponent_skill = 0.85;  // stronger opponent: scores go negative early
      c.target_points = 24;
      return paddle(c, s);
    };
    r["Bowling"] = [](std::uint64_t s) {
      PaddleConfig c;
      c.name = "Bowling";
      c.mode = PaddleConfig::Mode::kCatch;
      c.spawn_prob = 0.12;   // sparse pins: caps the achievable score low
      c.reward_catch = 3.0;
      c.max_steps = 250;
      return paddle(c, s);
    };

    // ----------------------------------------------------- shooter games --
    r["SpaceInvaders"] = [](std::uint64_t s) {
      ShooterConfig c;
      c.name = "SpaceInvaders";
      c.pattern = ShooterConfig::Pattern::kFormation;
      c.reward_kill = 30.0;
      c.bomb_prob = 0.02;
      c.enemy_speed = 0.35;
      return shooter(c, s);
    };
    r["Assault"] = [](std::uint64_t s) {
      ShooterConfig c;
      c.name = "Assault";
      c.pattern = ShooterConfig::Pattern::kFormation;
      c.reward_kill = 50.0;
      c.bomb_prob = 0.06;
      c.enemy_speed = 0.5;
      c.penalty_hit = -50.0;
      return shooter(c, s);
    };
    r["DemonAttack"] = [](std::uint64_t s) {
      ShooterConfig c;
      c.name = "DemonAttack";
      c.pattern = ShooterConfig::Pattern::kRandom;
      c.reward_kill = 100.0;
      c.enemy_speed = 0.5;
      c.max_enemies = 6;
      c.landing_costs_life = false;
      return shooter(c, s);
    };
    r["Centipede"] = [](std::uint64_t s) {
      ShooterConfig c;
      c.name = "Centipede";
      c.pattern = ShooterConfig::Pattern::kZigzag;
      c.reward_kill = 75.0;
      c.enemy_speed = 0.8;
      c.max_enemies = 6;
      return shooter(c, s);
    };
    r["BeamRider"] = [](std::uint64_t s) {
      ShooterConfig c;
      c.name = "BeamRider";
      c.pattern = ShooterConfig::Pattern::kLanes;
      c.reward_kill = 44.0;
      c.enemy_speed = 0.45;
      c.max_enemies = 5;
      return shooter(c, s);
    };
    r["ChopperCommand"] = [](std::uint64_t s) {
      ShooterConfig c;
      c.name = "ChopperCommand";
      c.pattern = ShooterConfig::Pattern::kFlyby;
      c.reward_kill = 100.0;
      c.enemy_speed = 0.7;
      c.max_enemies = 5;
      c.landing_costs_life = false;
      return shooter(c, s);
    };
    r["Atlantis"] = [](std::uint64_t s) {
      ShooterConfig c;
      c.name = "Atlantis";
      c.pattern = ShooterConfig::Pattern::kFlyby;
      c.reward_kill = 1000.0;  // Atlantis scores run into the millions
      c.enemy_speed = 0.9;
      c.max_enemies = 8;
      c.landing_costs_life = false;
      return shooter(c, s);
    };
    r["Asteroids"] = [](std::uint64_t s) {
      ShooterConfig c;
      c.name = "Asteroids";
      c.pattern = ShooterConfig::Pattern::kDrift;
      c.reward_kill = 50.0;
      c.enemy_speed = 0.6;
      c.max_enemies = 6;
      c.penalty_hit = -25.0;
      c.landing_costs_life = false;
      return shooter(c, s);
    };

    // ----------------------------------------------------- collect games --
    r["Alien"] = [](std::uint64_t s) {
      CollectConfig c;
      c.name = "Alien";
      c.mode = CollectConfig::Mode::kMaze;
      c.reward_item = 10.0;
      c.num_items = 8;
      c.num_enemies = 2;
      c.chase_prob = 0.55;
      return collect(c, s);
    };
    r["Asterix"] = [](std::uint64_t s) {
      CollectConfig c;
      c.name = "Asterix";
      c.mode = CollectConfig::Mode::kLanes;
      c.reward_item = 50.0;
      c.num_items = 6;
      c.num_enemies = 2;
      c.chase_prob = 0.4;
      return collect(c, s);
    };
    r["WizardOfWor"] = [](std::uint64_t s) {
      CollectConfig c;
      c.name = "WizardOfWor";
      c.mode = CollectConfig::Mode::kMaze;
      c.reward_item = 20.0;
      c.num_items = 4;
      c.num_enemies = 3;
      c.chase_prob = 0.7;
      c.penalty_caught = -20.0;
      return collect(c, s);
    };
    r["Seaquest"] = [](std::uint64_t s) {
      CollectConfig c;
      c.name = "Seaquest";
      c.mode = CollectConfig::Mode::kOxygen;
      c.reward_item = 20.0;
      c.num_items = 6;
      c.num_enemies = 2;
      c.chase_prob = 0.5;
      c.oxygen_limit = 40;
      return collect(c, s);
    };
    r["Qbert"] = [](std::uint64_t s) {
      CollectConfig c;
      c.name = "Qbert";
      c.mode = CollectConfig::Mode::kPaint;
      c.reward_item = 25.0;
      c.num_enemies = 2;
      c.chase_prob = 0.5;
      return collect(c, s);
    };
    r["CrazyClimber"] = [](std::uint64_t s) {
      CollectConfig c;
      c.name = "CrazyClimber";
      c.mode = CollectConfig::Mode::kClimb;
      c.reward_item = 100.0;  // per row climbed
      c.num_enemies = 3;
      c.enemy_speed = 0.8;
      return collect(c, s);
    };

    // -------------------------------------------------------- duel games --
    r["Boxing"] = [](std::uint64_t s) {
      DuelConfig c;
      c.name = "Boxing";
      c.ranged = false;
      c.reward_hit = 1.0;
      c.penalty_hit = -1.0;
      c.target_score = 100;  // KO at 100, as on Atari
      c.opp_skill = 0.5;
      return duel(c, s);
    };
    r["BattleZone"] = [](std::uint64_t s) {
      DuelConfig c;
      c.name = "BattleZone";
      c.ranged = true;
      c.reward_hit = 1000.0;
      c.penalty_hit = -1000.0;
      c.opp_skill = 0.6;
      return duel(c, s);
    };
    r["TimePilot"] = [](std::uint64_t s) {
      DuelConfig c;
      c.name = "TimePilot";
      c.ranged = true;
      c.reward_hit = 100.0;
      c.penalty_hit = -100.0;
      c.opp_skill = 0.5;
      return duel(c, s);
    };

    return r;
  }();
  return reg;
}

}  // namespace

std::unique_ptr<Env> make_game(const std::string& title,
                               std::uint64_t seed_value) {
  const auto& reg = registry();
  const auto it = reg.find(title);
  if (it == reg.end()) {
    throw std::invalid_argument("unknown MiniArcade game: " + title);
  }
  return it->second(seed_value);
}

const std::vector<std::string>& all_game_titles() {
  static const std::vector<std::string> titles = [] {
    std::vector<std::string> t;
    for (const auto& [name, _] : registry()) t.push_back(name);
    return t;
  }();
  return titles;
}

bool is_known_game(const std::string& title) {
  return registry().count(title) > 0;
}

const std::vector<std::string>& table1_games() {
  static const std::vector<std::string> games = {
      "Breakout",   "Alien",     "Asterix",   "Atlantis",
      "TimePilot",  "SpaceInvaders", "WizardOfWor", "Tennis",
      "Asteroids",  "Assault",   "BattleZone", "BeamRider",
      "Bowling",    "Boxing",    "Centipede", "ChopperCommand"};
  return games;
}

const std::vector<std::string>& table2_games() {
  static const std::vector<std::string> games = {
      "Alien",     "SpaceInvaders", "Asterix",     "Asteroids",
      "Assault",   "BattleZone",    "BeamRider",   "Boxing",
      "Centipede", "ChopperCommand", "CrazyClimber", "DemonAttack"};
  return games;
}

const std::vector<std::string>& table3_games() {
  static const std::vector<std::string> games = {
      "BeamRider", "Breakout", "Pong", "Qbert", "Seaquest", "SpaceInvaders"};
  return games;
}

const std::vector<std::string>& figure_games() {
  static const std::vector<std::string> games = {"Breakout", "SpaceInvaders",
                                                 "Alien", "Boxing"};
  return games;
}

}  // namespace a3cs::arcade
