// CollectGame engine: Alien / Asterix / Seaquest / Qbert / CrazyClimber /
// WizardOfWor variants.
//
// The player walks the grid in four directions collecting items while
// enemies give chase. Variants add a maze (Alien, WizardOfWor), item lanes
// (Asterix), an oxygen timer forcing returns to the surface (Seaquest),
// paint-the-floor scoring (Qbert) or upward-progress scoring with falling
// debris (CrazyClimber).
#pragma once

#include <string>
#include <vector>

#include "arcade/grid_game.h"

namespace a3cs::arcade {

struct CollectConfig {
  std::string name = "Alien";

  enum class Mode {
    kOpen,    // free field with items and chasers
    kMaze,    // static walls
    kLanes,   // items stream across fixed rows
    kOxygen,  // must resurface to the top row before air runs out
    kPaint,   // reward for every first-visit cell
    kClimb    // reward per new highest row reached; debris falls
  } mode = Mode::kOpen;

  int num_items = 6;
  int num_enemies = 2;
  // Probability an enemy takes a greedy step toward the player (else random).
  double chase_prob = 0.5;
  // Probability an enemy moves at all on a given tick.
  double enemy_speed = 0.7;
  double reward_item = 10.0;
  double penalty_caught = 0.0;
  int lives = 3;
  int max_steps = 400;
  int oxygen_limit = 40;  // kOxygen: ticks before drowning
};

class CollectGame : public GridGame {
 public:
  explicit CollectGame(CollectConfig cfg, std::uint64_t seed_value = 1);

  int num_actions() const override { return 5; }  // noop/up/down/left/right
  std::string name() const override { return cfg_.name; }

 protected:
  void on_reset() override;
  double on_step(int action) override;
  void draw(Tensor& frame) const override;
  void save_game(std::ostream& out) const override;
  void load_game(std::istream& in) override;

 private:
  struct Point { int y, x; };

  bool wall_at(int y, int x) const;
  void spawn_item();
  void spawn_enemy();
  double handle_caught();

  CollectConfig cfg_;
  int px_ = 0, py_ = 0;
  int lives_left_ = 0;
  int oxygen_ = 0;
  int best_row_ = 0;  // kClimb: highest row reached (smaller y = higher)
  std::vector<Point> items_;
  std::vector<Point> enemies_;
  std::vector<bool> walls_;    // kMaze
  std::vector<bool> painted_;  // kPaint
};

}  // namespace a3cs::arcade
