// MiniArcade: the Arcade-Learning-Environment substitute (see DESIGN.md).
//
// Every game is a deterministic, seedable MDP over a small grid, rendered to
// a channels-first float image with the same plane convention across all
// games:
//   plane 0: the player avatar (paddle / ship / walker / fighter)
//   plane 1: hostile or dynamic entities (balls, enemies, bombs, opponents)
//   plane 2: collectibles / bricks / player bullets / static structure
// so a single network architecture can play any game, exactly as one DRL
// backbone plays all Atari titles in the paper.
#pragma once

#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "nn/obs_spec.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace a3cs::arcade {

using nn::ObsSpec;
using tensor::Tensor;

struct StepResult {
  Tensor obs;
  double reward = 0.0;
  bool done = false;
};

class Env {
 public:
  virtual ~Env() = default;

  Env() = default;
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  // Starts a new episode and returns the initial observation.
  virtual Tensor reset() = 0;

  // Advances one step. Calling step() after `done` without reset() is an
  // error (A3CS_CHECK).
  virtual StepResult step(int action) = 0;

  virtual int num_actions() const = 0;
  virtual ObsSpec obs_spec() const = 0;
  virtual std::string name() const = 0;

  // Reseeds the env's private RNG stream (affects subsequent resets).
  virtual void seed(std::uint64_t s) = 0;

  // Checkpointing: serializes the COMPLETE episode state — entity positions,
  // lives/score bookkeeping and the private RNG stream — so a restored env
  // continues its trajectory bit-exactly mid-episode. load_state throws on
  // truncated or mismatched data (util::sio semantics).
  virtual void save_state(std::ostream& out) const = 0;
  virtual void load_state(std::istream& in) = 0;
};

// The standard MiniArcade frame: 3 planes on a 12x12 grid.
inline constexpr int kGridH = 12;
inline constexpr int kGridW = 12;
inline constexpr int kPlanes = 3;

inline ObsSpec standard_obs_spec() { return ObsSpec{kPlanes, kGridH, kGridW}; }

}  // namespace a3cs::arcade
