#include "arcade/duel.h"

#include <algorithm>
#include <cstdlib>

namespace a3cs::arcade {

DuelGame::DuelGame(DuelConfig cfg, std::uint64_t seed_value)
    : GridGame(cfg.max_steps, seed_value), cfg_(std::move(cfg)) {}

void DuelGame::on_reset() {
  px_ = kGridW / 4;
  py_ = kGridH / 2;
  player_hits_ = 0;
  opp_cooldown_ = 0;
  shots_.clear();
  respawn_opponent();
}

void DuelGame::respawn_opponent() {
  ox_ = 3 * kGridW / 4;
  oy_ = rng_.uniform_int(kGridH);
  if (ox_ == px_ && oy_ == py_) oy_ = (oy_ + 3) % kGridH;
}

bool DuelGame::adjacent() const {
  return std::abs(px_ - ox_) + std::abs(py_ - oy_) <= 1;
}

double DuelGame::on_step(int action) {
  double reward = 0.0;
  static constexpr int kDy[5] = {0, -1, 1, 0, 0};
  static constexpr int kDx[5] = {0, 0, 0, -1, 1};

  // Player action.
  if (action >= 1 && action <= 4) {
    py_ = clampy(py_ + kDy[action]);
    px_ = clampx(px_ + kDx[action]);
  } else if (action == 5) {
    if (!cfg_.ranged) {
      if (adjacent()) {
        reward += cfg_.reward_hit;
        ++player_hits_;
        respawn_opponent();
        if (cfg_.target_score > 0 && player_hits_ >= cfg_.target_score) {
          end_episode();
          return reward;
        }
      }
    } else {
      // Fire along the axis with the larger separation toward the opponent.
      int dy = 0, dx = 0;
      if (std::abs(oy_ - py_) >= std::abs(ox_ - px_)) {
        dy = oy_ > py_ ? 1 : -1;
      } else {
        dx = ox_ > px_ ? 1 : -1;
      }
      shots_.push_back({py_ + dy, px_ + dx, dy, dx, true});
    }
  }

  // Opponent policy: close distance (or line up a shot) with prob opp_skill,
  // attack when in position.
  if (opp_cooldown_ > 0) --opp_cooldown_;
  const bool smart = rng_.bernoulli(cfg_.opp_skill);
  if (!cfg_.ranged) {
    if (adjacent() && smart && opp_cooldown_ == 0) {
      reward += cfg_.penalty_hit;
      opp_cooldown_ = 2;
    } else {
      int dy = 0, dx = 0;
      if (smart) {
        if (std::abs(py_ - oy_) >= std::abs(px_ - ox_)) {
          dy = py_ > oy_ ? 1 : (py_ < oy_ ? -1 : 0);
        } else {
          dx = px_ > ox_ ? 1 : (px_ < ox_ ? -1 : 0);
        }
      } else {
        const int r = rng_.uniform_int(4);
        dy = kDy[r + 1];
        dx = kDx[r + 1];
      }
      oy_ = clampy(oy_ + dy);
      ox_ = clampx(ox_ + dx);
    }
  } else {
    const bool aligned = (oy_ == py_) || (ox_ == px_);
    if (aligned && smart && opp_cooldown_ == 0) {
      int dy = 0, dx = 0;
      if (oy_ == py_) dx = px_ > ox_ ? 1 : -1;
      else dy = py_ > oy_ ? 1 : -1;
      shots_.push_back({oy_ + dy, ox_ + dx, dy, dx, false});
      opp_cooldown_ = 3;
    } else if (smart) {
      // Move to align on a row or column.
      if (std::abs(py_ - oy_) <= std::abs(px_ - ox_)) {
        oy_ = clampy(oy_ + (py_ > oy_ ? 1 : (py_ < oy_ ? -1 : 0)));
      } else {
        ox_ = clampx(ox_ + (px_ > ox_ ? 1 : (px_ < ox_ ? -1 : 0)));
      }
    } else {
      const int r = rng_.uniform_int(4);
      oy_ = clampy(oy_ + kDy[r + 1]);
      ox_ = clampx(ox_ + kDx[r + 1]);
    }
  }

  // Advance projectiles.
  std::vector<Shot> kept;
  kept.reserve(shots_.size());
  for (Shot s : shots_) {
    bool consumed = false;
    for (int hop = 0; hop < 2 && !consumed; ++hop) {
      if (!in_grid(s.y, s.x)) {
        consumed = true;
        break;
      }
      if (s.mine && s.y == oy_ && s.x == ox_) {
        reward += cfg_.reward_hit;
        ++player_hits_;
        respawn_opponent();
        consumed = true;
        if (cfg_.target_score > 0 && player_hits_ >= cfg_.target_score) {
          end_episode();
        }
        break;
      }
      if (!s.mine && s.y == py_ && s.x == px_) {
        reward += cfg_.penalty_hit;
        consumed = true;
        break;
      }
      s.y += s.dy;
      s.x += s.dx;
    }
    if (!consumed && in_grid(s.y, s.x)) kept.push_back(s);
  }
  shots_ = std::move(kept);

  return reward;
}

void DuelGame::draw(Tensor& frame) const {
  put(frame, 0, py_, px_);
  put(frame, 1, oy_, ox_);
  for (const Shot& s : shots_) put(frame, 2, s.y, s.x, s.mine ? 1.0f : 0.5f);
}

void DuelGame::save_game(std::ostream& out) const {
  namespace sio = util::sio;
  sio::put_i32(out, px_);
  sio::put_i32(out, py_);
  sio::put_i32(out, ox_);
  sio::put_i32(out, oy_);
  sio::put_i32(out, player_hits_);
  sio::put_i32(out, opp_cooldown_);
  sio::put_u32(out, static_cast<std::uint32_t>(shots_.size()));
  for (const Shot& s : shots_) {
    sio::put_i32(out, s.y);
    sio::put_i32(out, s.x);
    sio::put_i32(out, s.dy);
    sio::put_i32(out, s.dx);
    sio::put_bool(out, s.mine);
  }
}

void DuelGame::load_game(std::istream& in) {
  namespace sio = util::sio;
  px_ = sio::get_i32(in);
  py_ = sio::get_i32(in);
  ox_ = sio::get_i32(in);
  oy_ = sio::get_i32(in);
  player_hits_ = sio::get_i32(in);
  opp_cooldown_ = sio::get_i32(in);
  shots_.resize(sio::get_u32(in));
  for (Shot& s : shots_) {
    s.y = sio::get_i32(in);
    s.x = sio::get_i32(in);
    s.dy = sio::get_i32(in);
    s.dx = sio::get_i32(in);
    s.mine = sio::get_bool(in);
  }
}

}  // namespace a3cs::arcade
