// PaddleGame engine: Breakout / Pong / Tennis / Bowling / Catch variants.
//
// A paddle on the bottom row moves left/right; depending on the mode the
// player bounces a ball into bricks (Breakout), rallies against a scripted
// opponent paddle on the top row (Pong, Tennis), or catches falling objects
// (Catch, Bowling).
#pragma once

#include <string>
#include <vector>

#include "arcade/grid_game.h"

namespace a3cs::arcade {

struct PaddleConfig {
  std::string name = "Catch";
  enum class Mode { kBreakout, kVersus, kCatch } mode = Mode::kCatch;

  int paddle_width = 3;
  int lives = 3;
  int max_steps = 400;

  // kBreakout
  int brick_rows = 3;
  double reward_brick = 1.0;

  // kVersus: probability the opponent tracks the ball correctly each step,
  // rewards for winning/losing a point, optional score target ending the
  // episode early.
  double opponent_skill = 0.75;
  double reward_point = 1.0;
  double penalty_point = -1.0;
  int target_points = 0;

  // kCatch
  double spawn_prob = 0.25;
  double reward_catch = 1.0;
  double penalty_miss = 0.0;
};

class PaddleGame : public GridGame {
 public:
  explicit PaddleGame(PaddleConfig cfg, std::uint64_t seed_value = 1);

  int num_actions() const override { return 3; }  // noop / left / right
  std::string name() const override { return cfg_.name; }

 protected:
  void on_reset() override;
  double on_step(int action) override;
  void draw(Tensor& frame) const override;
  void save_game(std::ostream& out) const override;
  void load_game(std::istream& in) override;

 private:
  void respawn_ball(bool towards_player);
  void refill_bricks();
  double move_ball();  // returns reward accrued this tick

  PaddleConfig cfg_;
  int paddle_x_ = 0;      // left edge of the player paddle
  int opp_x_ = 0;         // left edge of the opponent paddle (kVersus)
  int ball_x_ = 0, ball_y_ = 0;
  int vel_x_ = 0, vel_y_ = 0;
  int lives_left_ = 0;
  int points_ = 0;
  std::vector<bool> bricks_;  // brick_rows x kGridW occupancy
  struct Pellet { int y, x; };
  std::vector<Pellet> pellets_;
};

}  // namespace a3cs::arcade
