#include "arcade/collect.h"

#include <algorithm>

namespace a3cs::arcade {

CollectGame::CollectGame(CollectConfig cfg, std::uint64_t seed_value)
    : GridGame(cfg.max_steps, seed_value), cfg_(std::move(cfg)) {}

bool CollectGame::wall_at(int y, int x) const {
  if (cfg_.mode != CollectConfig::Mode::kMaze) return false;
  return walls_[static_cast<std::size_t>(y) * kGridW + x];
}

void CollectGame::on_reset() {
  lives_left_ = cfg_.lives;
  oxygen_ = cfg_.oxygen_limit;
  items_.clear();
  enemies_.clear();

  if (cfg_.mode == CollectConfig::Mode::kMaze) {
    // Fixed pillar maze: walls on every other cell of every other row,
    // leaving all corridors connected.
    walls_.assign(static_cast<std::size_t>(kGridH) * kGridW, false);
    for (int y = 2; y < kGridH - 1; y += 3) {
      for (int x = 1; x < kGridW - 1; x += 2) {
        walls_[static_cast<std::size_t>(y) * kGridW + x] = true;
      }
    }
  }

  if (cfg_.mode == CollectConfig::Mode::kPaint) {
    painted_.assign(static_cast<std::size_t>(kGridH) * kGridW, false);
  }

  if (cfg_.mode == CollectConfig::Mode::kClimb) {
    py_ = kGridH - 1;
    px_ = kGridW / 2;
    best_row_ = py_;
  } else {
    py_ = kGridH - 1;
    px_ = kGridW / 2;
    while (wall_at(py_, px_)) px_ = (px_ + 1) % kGridW;
  }

  for (int i = 0; i < cfg_.num_items; ++i) spawn_item();
  for (int i = 0; i < cfg_.num_enemies; ++i) spawn_enemy();
}

void CollectGame::spawn_item() {
  if (cfg_.mode == CollectConfig::Mode::kPaint ||
      cfg_.mode == CollectConfig::Mode::kClimb) {
    return;  // these modes do not use discrete items
  }
  for (int tries = 0; tries < 64; ++tries) {
    Point p;
    if (cfg_.mode == CollectConfig::Mode::kLanes) {
      static constexpr int kLaneYs[4] = {2, 5, 8, 10};
      p = {kLaneYs[rng_.uniform_int(4)], rng_.uniform_int(kGridW)};
    } else {
      p = {rng_.uniform_int(kGridH - 1), rng_.uniform_int(kGridW)};
    }
    if (wall_at(p.y, p.x)) continue;
    if (p.y == py_ && p.x == px_) continue;
    items_.push_back(p);
    return;
  }
}

void CollectGame::spawn_enemy() {
  for (int tries = 0; tries < 64; ++tries) {
    Point p{rng_.uniform_int(kGridH / 2), rng_.uniform_int(kGridW)};
    if (wall_at(p.y, p.x)) continue;
    enemies_.push_back(p);
    return;
  }
}

double CollectGame::handle_caught() {
  if (--lives_left_ <= 0) {
    end_episode();
  } else {
    // Respawn at the bottom, away from the catch.
    py_ = kGridH - 1;
    px_ = rng_.uniform_int(kGridW);
    while (wall_at(py_, px_)) px_ = (px_ + 1) % kGridW;
  }
  return cfg_.penalty_caught;
}

double CollectGame::on_step(int action) {
  double reward = 0.0;

  // Player move: 0 noop, 1 up, 2 down, 3 left, 4 right.
  static constexpr int kDy[5] = {0, -1, 1, 0, 0};
  static constexpr int kDx[5] = {0, 0, 0, -1, 1};
  {
    const int ny = py_ + kDy[action];
    const int nx = px_ + kDx[action];
    if (in_grid(ny, nx) && !wall_at(ny, nx)) {
      py_ = ny;
      px_ = nx;
    }
  }

  switch (cfg_.mode) {
    case CollectConfig::Mode::kPaint:
      if (!painted_[static_cast<std::size_t>(py_) * kGridW + px_]) {
        painted_[static_cast<std::size_t>(py_) * kGridW + px_] = true;
        reward += cfg_.reward_item;
        if (std::all_of(painted_.begin(), painted_.end(),
                        [](bool b) { return b; })) {
          painted_.assign(painted_.size(), false);  // next board
        }
      }
      break;
    case CollectConfig::Mode::kClimb:
      if (py_ < best_row_) {
        reward += cfg_.reward_item * (best_row_ - py_);
        best_row_ = py_;
        if (best_row_ == 0) {
          // Summit: jump back to the bottom for another ascent.
          py_ = kGridH - 1;
          best_row_ = py_;
        }
      }
      break;
    case CollectConfig::Mode::kOxygen:
      if (py_ == 0) {
        oxygen_ = cfg_.oxygen_limit;  // surfaced: refill air
      } else if (--oxygen_ <= 0) {
        reward += handle_caught();
        oxygen_ = cfg_.oxygen_limit;
      }
      break;
    default:
      break;
  }

  // Item pickup.
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].y == py_ && items_[i].x == px_) {
      items_.erase(items_.begin() + static_cast<long>(i));
      reward += cfg_.reward_item;
      spawn_item();
      break;
    }
  }

  // Enemy movement (chasers for most modes, falling debris for kClimb).
  for (Point& e : enemies_) {
    if (!rng_.bernoulli(cfg_.enemy_speed)) continue;
    if (cfg_.mode == CollectConfig::Mode::kClimb) {
      ++e.y;
      if (e.y >= kGridH) {
        e.y = 0;
        e.x = rng_.uniform_int(kGridW);
      }
    } else {
      int dy = 0, dx = 0;
      if (rng_.bernoulli(cfg_.chase_prob)) {
        if (std::abs(py_ - e.y) >= std::abs(px_ - e.x)) {
          dy = py_ > e.y ? 1 : (py_ < e.y ? -1 : 0);
        } else {
          dx = px_ > e.x ? 1 : (px_ < e.x ? -1 : 0);
        }
      } else {
        const int r = rng_.uniform_int(4);
        dy = kDy[r + 1];
        dx = kDx[r + 1];
      }
      const int ny = e.y + dy, nx = e.x + dx;
      if (in_grid(ny, nx) && !wall_at(ny, nx)) {
        e.y = ny;
        e.x = nx;
      }
    }
    if (e.y == py_ && e.x == px_) {
      reward += handle_caught();
    }
  }

  return reward;
}

void CollectGame::draw(Tensor& frame) const {
  put(frame, 0, py_, px_);
  for (const Point& e : enemies_) put(frame, 1, e.y, e.x);
  for (const Point& it : items_) put(frame, 2, it.y, it.x);
  if (cfg_.mode == CollectConfig::Mode::kMaze) {
    for (int y = 0; y < kGridH; ++y) {
      for (int x = 0; x < kGridW; ++x) {
        if (walls_[static_cast<std::size_t>(y) * kGridW + x]) {
          put(frame, 2, y, x, 0.5f);
        }
      }
    }
  } else if (cfg_.mode == CollectConfig::Mode::kPaint) {
    for (int y = 0; y < kGridH; ++y) {
      for (int x = 0; x < kGridW; ++x) {
        if (painted_[static_cast<std::size_t>(y) * kGridW + x]) {
          put(frame, 2, y, x, 0.5f);
        }
      }
    }
  }
}

void CollectGame::save_game(std::ostream& out) const {
  namespace sio = util::sio;
  sio::put_i32(out, px_);
  sio::put_i32(out, py_);
  sio::put_i32(out, lives_left_);
  sio::put_i32(out, oxygen_);
  sio::put_i32(out, best_row_);
  sio::put_u32(out, static_cast<std::uint32_t>(items_.size()));
  for (const Point& p : items_) {
    sio::put_i32(out, p.y);
    sio::put_i32(out, p.x);
  }
  sio::put_u32(out, static_cast<std::uint32_t>(enemies_.size()));
  for (const Point& p : enemies_) {
    sio::put_i32(out, p.y);
    sio::put_i32(out, p.x);
  }
  sio::put_bool_vec(out, walls_);
  sio::put_bool_vec(out, painted_);
}

void CollectGame::load_game(std::istream& in) {
  namespace sio = util::sio;
  px_ = sio::get_i32(in);
  py_ = sio::get_i32(in);
  lives_left_ = sio::get_i32(in);
  oxygen_ = sio::get_i32(in);
  best_row_ = sio::get_i32(in);
  items_.resize(sio::get_u32(in));
  for (Point& p : items_) {
    p.y = sio::get_i32(in);
    p.x = sio::get_i32(in);
  }
  enemies_.resize(sio::get_u32(in));
  for (Point& p : enemies_) {
    p.y = sio::get_i32(in);
    p.x = sio::get_i32(in);
  }
  walls_ = sio::get_bool_vec(in);
  painted_ = sio::get_bool_vec(in);
}

}  // namespace a3cs::arcade
