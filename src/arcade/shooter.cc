#include "arcade/shooter.h"

#include <algorithm>

namespace a3cs::arcade {

namespace {
constexpr int kPlayerRow = kGridH - 1;
}  // namespace

ShooterGame::ShooterGame(ShooterConfig cfg, std::uint64_t seed_value)
    : GridGame(cfg.max_steps, seed_value), cfg_(std::move(cfg)) {}

void ShooterGame::on_reset() {
  player_x_ = kGridW / 2;
  lives_left_ = cfg_.lives;
  cooldown_ = 0;
  formation_dir_ = 1;
  enemies_.clear();
  bullets_.clear();
  bombs_.clear();
  if (cfg_.pattern == ShooterConfig::Pattern::kFormation) {
    // Two ranks of invaders centred at the top.
    const int cols = std::min(cfg_.max_enemies / 2, kGridW - 4);
    const int x0 = (kGridW - cols) / 2;
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < cols; ++c) {
        enemies_.push_back({1 + r, x0 + c, 1, 0});
      }
    }
  } else {
    const int initial = std::max(1, cfg_.max_enemies / 2);
    for (int i = 0; i < initial; ++i) spawn_enemy();
  }
}

void ShooterGame::spawn_enemy() {
  using P = ShooterConfig::Pattern;
  Enemy e{0, 0, rng_.bernoulli(0.5) ? 1 : -1, 1};
  switch (cfg_.pattern) {
    case P::kFormation:
      e = {0, rng_.uniform_int(kGridW), formation_dir_, 0};
      break;
    case P::kRandom:
      e = {0, rng_.uniform_int(kGridW), 0, 1};
      break;
    case P::kLanes: {
      static constexpr int kLaneXs[4] = {1, 4, 7, 10};
      e = {0, kLaneXs[rng_.uniform_int(4)], 0, 1};
      break;
    }
    case P::kZigzag:
      e = {0, rng_.bernoulli(0.5) ? 0 : kGridW - 1, 0, 1};
      e.dir = (e.x == 0) ? 1 : -1;
      break;
    case P::kFlyby: {
      const int row = 1 + rng_.uniform_int(kGridH / 2);
      const bool from_left = rng_.bernoulli(0.5);
      e = {row, from_left ? 0 : kGridW - 1, from_left ? 1 : -1, 0};
      break;
    }
    case P::kDrift:
      e = {rng_.uniform_int(kGridH / 2), rng_.uniform_int(kGridW),
           rng_.bernoulli(0.5) ? 1 : -1, rng_.bernoulli(0.5) ? 1 : -1};
      break;
  }
  enemies_.push_back(e);
}

double ShooterGame::lose_life() {
  if (--lives_left_ <= 0) end_episode();
  return cfg_.penalty_hit;
}

void ShooterGame::advance_enemies(double& reward) {
  using P = ShooterConfig::Pattern;

  if (cfg_.pattern == P::kFormation) {
    // The whole block marches together; descend and flip at the walls.
    if (rng_.bernoulli(cfg_.enemy_speed) && !enemies_.empty()) {
      bool at_edge = false;
      for (const Enemy& e : enemies_) {
        const int nx = e.x + formation_dir_;
        if (nx < 0 || nx >= kGridW) at_edge = true;
      }
      for (Enemy& e : enemies_) {
        if (at_edge) ++e.y;
        else e.x += formation_dir_;
      }
      if (at_edge) formation_dir_ = -formation_dir_;
    }
  } else {
    for (Enemy& e : enemies_) {
      if (!rng_.bernoulli(cfg_.enemy_speed)) continue;
      switch (cfg_.pattern) {
        case P::kRandom:
          ++e.y;
          e.x = clampx(e.x + rng_.uniform_int(3) - 1);
          break;
        case P::kLanes:
          ++e.y;
          break;
        case P::kZigzag: {
          const int nx = e.x + e.dir;
          if (nx < 0 || nx >= kGridW) {
            e.dir = -e.dir;
            ++e.y;
          } else {
            e.x = nx;
          }
          break;
        }
        case P::kFlyby: {
          e.x += e.dir;
          break;
        }
        case P::kDrift: {
          e.x = (e.x + e.dir + kGridW) % kGridW;
          e.y = (e.y + e.dy + kGridH) % kGridH;
          break;
        }
        case P::kFormation:
          break;  // handled above
      }
    }
  }

  // Resolve enemies leaving the arena or reaching the player.
  std::vector<Enemy> kept;
  kept.reserve(enemies_.size());
  for (const Enemy& e : enemies_) {
    if (cfg_.pattern == ShooterConfig::Pattern::kFlyby &&
        (e.x < 0 || e.x >= kGridW)) {
      continue;  // flew across; respawned below
    }
    if (e.y >= kPlayerRow) {
      if (e.y == kPlayerRow && e.x == player_x_) {
        reward += lose_life();
        continue;
      }
      if (cfg_.landing_costs_life &&
          cfg_.pattern != ShooterConfig::Pattern::kDrift) {
        reward += lose_life();
      }
      continue;
    }
    if (cfg_.pattern == ShooterConfig::Pattern::kDrift && e.y == kPlayerRow &&
        e.x == player_x_) {
      reward += lose_life();
      continue;
    }
    kept.push_back(e);
  }
  enemies_ = std::move(kept);

  // Keep pressure on: replenish up to the configured population.
  while (static_cast<int>(enemies_.size()) < cfg_.max_enemies &&
         cfg_.pattern != ShooterConfig::Pattern::kFormation) {
    if (!rng_.bernoulli(0.5)) break;
    spawn_enemy();
  }
  if (cfg_.pattern == ShooterConfig::Pattern::kFormation && enemies_.empty()) {
    on_reset_formation_wave();
  }
}

double ShooterGame::on_step(int action) {
  double reward = 0.0;

  // Player control.
  if (action == 1) player_x_ = std::max(0, player_x_ - 1);
  if (action == 2) player_x_ = std::min(kGridW - 1, player_x_ + 1);
  if (cooldown_ > 0) --cooldown_;
  if (action == 3 && cooldown_ == 0) {
    bullets_.push_back({kPlayerRow - 1, player_x_});
    cooldown_ = cfg_.fire_cooldown;
  }

  // Player bullets travel 2 cells/tick with a hit test at each cell.
  std::vector<Bullet> kept_bullets;
  kept_bullets.reserve(bullets_.size());
  for (Bullet b : bullets_) {
    bool alive = true;
    for (int hop = 0; hop < 2 && alive; ++hop) {
      --b.y;
      if (b.y < 0) {
        alive = false;
        break;
      }
      for (std::size_t i = 0; i < enemies_.size(); ++i) {
        if (enemies_[i].y == b.y && enemies_[i].x == b.x) {
          enemies_.erase(enemies_.begin() + static_cast<long>(i));
          reward += cfg_.reward_kill;
          alive = false;
          break;
        }
      }
    }
    if (alive) kept_bullets.push_back(b);
  }
  bullets_ = std::move(kept_bullets);

  advance_enemies(reward);

  // Enemy bombs.
  if (cfg_.bomb_prob > 0.0) {
    for (const Enemy& e : enemies_) {
      if (e.y < kPlayerRow - 1 && rng_.bernoulli(cfg_.bomb_prob)) {
        bombs_.push_back({e.y + 1, e.x});
      }
    }
  }
  std::vector<Bullet> kept_bombs;
  kept_bombs.reserve(bombs_.size());
  for (Bullet b : bombs_) {
    ++b.y;
    if (b.y == kPlayerRow && b.x == player_x_) {
      reward += lose_life();
      continue;
    }
    if (b.y < kGridH) kept_bombs.push_back(b);
  }
  bombs_ = std::move(kept_bombs);

  return reward;
}

void ShooterGame::draw(Tensor& frame) const {
  put(frame, 0, kPlayerRow, player_x_);
  for (const Enemy& e : enemies_) put(frame, 1, e.y, e.x);
  for (const Bullet& b : bombs_) put(frame, 1, b.y, b.x, 0.5f);
  for (const Bullet& b : bullets_) put(frame, 2, b.y, b.x);
}

void ShooterGame::on_reset_formation_wave() {
  const int cols = std::min(cfg_.max_enemies / 2, kGridW - 4);
  const int x0 = (kGridW - cols) / 2;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < cols; ++c) {
      enemies_.push_back({1 + r, x0 + c, 1, 0});
    }
  }
}

void ShooterGame::save_game(std::ostream& out) const {
  namespace sio = util::sio;
  sio::put_i32(out, player_x_);
  sio::put_i32(out, lives_left_);
  sio::put_i32(out, cooldown_);
  sio::put_i32(out, formation_dir_);
  sio::put_u32(out, static_cast<std::uint32_t>(enemies_.size()));
  for (const Enemy& e : enemies_) {
    sio::put_i32(out, e.y);
    sio::put_i32(out, e.x);
    sio::put_i32(out, e.dir);
    sio::put_i32(out, e.dy);
  }
  sio::put_u32(out, static_cast<std::uint32_t>(bullets_.size()));
  for (const Bullet& b : bullets_) {
    sio::put_i32(out, b.y);
    sio::put_i32(out, b.x);
  }
  sio::put_u32(out, static_cast<std::uint32_t>(bombs_.size()));
  for (const Bullet& b : bombs_) {
    sio::put_i32(out, b.y);
    sio::put_i32(out, b.x);
  }
}

void ShooterGame::load_game(std::istream& in) {
  namespace sio = util::sio;
  player_x_ = sio::get_i32(in);
  lives_left_ = sio::get_i32(in);
  cooldown_ = sio::get_i32(in);
  formation_dir_ = sio::get_i32(in);
  enemies_.resize(sio::get_u32(in));
  for (Enemy& e : enemies_) {
    e.y = sio::get_i32(in);
    e.x = sio::get_i32(in);
    e.dir = sio::get_i32(in);
    e.dy = sio::get_i32(in);
  }
  bullets_.resize(sio::get_u32(in));
  for (Bullet& b : bullets_) {
    b.y = sio::get_i32(in);
    b.x = sio::get_i32(in);
  }
  bombs_.resize(sio::get_u32(in));
  for (Bullet& b : bombs_) {
    b.y = sio::get_i32(in);
    b.x = sio::get_i32(in);
  }
}

}  // namespace a3cs::arcade
