// ASCII rendering of MiniArcade observations for debugging and demos.
#pragma once

#include <string>

#include "arcade/env.h"

namespace a3cs::arcade {

// Renders a (1, 3, H, W) observation:
//   'A' player (plane 0)   'o'/'.' hostiles (plane 1, strong/weak)
//   '#'/'+' plane 2 (strong/weak)   ' ' empty
std::string render_ascii(const Tensor& obs);

}  // namespace a3cs::arcade
