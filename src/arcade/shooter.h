// ShooterGame engine: SpaceInvaders / Assault / DemonAttack / Centipede /
// BeamRider / Atlantis / ChopperCommand / Asteroids variants.
//
// The player ship sits on the bottom row, moves left/right and fires bullets
// upward. Enemies enter from the top (or sides) following a per-variant
// movement pattern; some drop bombs. Kills score, being hit (or letting the
// invasion land) costs lives.
#pragma once

#include <string>
#include <vector>

#include "arcade/grid_game.h"

namespace a3cs::arcade {

struct ShooterConfig {
  std::string name = "SpaceInvaders";

  enum class Pattern {
    kFormation,  // marching block that descends at the edges (SpaceInvaders)
    kRandom,     // independent divers from random columns (DemonAttack)
    kLanes,      // fixed-lane runners (BeamRider)
    kZigzag,     // serpentine descent (Centipede)
    kFlyby,      // horizontal passes across fixed rows (Atlantis, Chopper)
    kDrift       // wrapping diagonal drifters (Asteroids)
  } pattern = Pattern::kFormation;

  int max_enemies = 8;
  // Probability an enemy advances on a given tick (speed knob).
  double enemy_speed = 0.4;
  // Per-enemy per-tick probability of dropping a bomb.
  double bomb_prob = 0.0;
  double reward_kill = 10.0;
  double penalty_hit = 0.0;
  int lives = 3;
  int max_steps = 400;
  // Minimum ticks between player shots.
  int fire_cooldown = 2;
  // Whether an enemy reaching the bottom row costs a life.
  bool landing_costs_life = true;
};

class ShooterGame : public GridGame {
 public:
  explicit ShooterGame(ShooterConfig cfg, std::uint64_t seed_value = 1);

  int num_actions() const override { return 4; }  // noop/left/right/fire
  std::string name() const override { return cfg_.name; }

 protected:
  void on_reset() override;
  double on_step(int action) override;
  void draw(Tensor& frame) const override;
  void save_game(std::ostream& out) const override;
  void load_game(std::istream& in) override;

 private:
  struct Enemy {
    int y, x;
    int dir;   // horizontal direction for formation/flyby/drift/zigzag
    int dy;    // vertical direction for drift
  };
  struct Bullet { int y, x; };

  void spawn_enemy();
  void advance_enemies(double& reward);
  void on_reset_formation_wave();
  double lose_life();

  ShooterConfig cfg_;
  int player_x_ = 0;
  int lives_left_ = 0;
  int cooldown_ = 0;
  int formation_dir_ = 1;
  std::vector<Enemy> enemies_;
  std::vector<Bullet> bullets_;  // player shots, move up 2/tick
  std::vector<Bullet> bombs_;    // enemy shots, move down 1/tick
};

}  // namespace a3cs::arcade
