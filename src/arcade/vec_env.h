// Vectorized environment runner: steps N independent instances of the same
// game in lockstep and batches their observations into one NCHW tensor, as
// A2C-style training requires. Episodes auto-reset; finished-episode scores
// are collected for the caller.
//
// step() and reset() dispatch contiguous shards of envs onto the global
// util::ThreadPool. Each Env is an independent MDP with its own RNG stream
// and each shard writes disjoint slots of the batch, so the parallel step is
// race-free by construction and bit-exact at any A3CS_THREADS value; the
// episode bookkeeping (scores, completion counts) is replayed serially in
// env order afterwards. Observations land in a persistent internal batch —
// step()/reset() return references into it, valid until the next call.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arcade/env.h"

namespace a3cs::arcade {

struct VecStep {
  Tensor obs;                          // (N, C, H, W) next observations
  std::vector<double> rewards;         // per-env reward this step
  std::vector<std::uint8_t> dones;     // episode ended (obs is post-reset)
};

class VecEnv {
 public:
  // Builds `num_envs` instances of `title`, seeded seed, seed+1, ...
  VecEnv(const std::string& title, int num_envs, std::uint64_t seed_value);

  // Takes ownership of pre-built envs (must be non-empty, same spec).
  explicit VecEnv(std::vector<std::unique_ptr<Env>> envs);

  // Both return persistent internal buffers, overwritten by the next
  // step()/reset() call on this VecEnv. Copy to retain.
  const Tensor& reset();
  const VecStep& step(const std::vector<int>& actions);

  int num_envs() const { return static_cast<int>(envs_.size()); }
  int num_actions() const { return envs_.front()->num_actions(); }
  ObsSpec obs_spec() const { return envs_.front()->obs_spec(); }
  const std::string& title() const { return title_; }

  // Scores of episodes completed since the last call (drained).
  std::vector<double> drain_episode_scores();

  // Running count of completed episodes.
  std::int64_t episodes_completed() const { return episodes_completed_; }

  // Checkpointing: serializes every env's full episode state plus the
  // cross-env bookkeeping (pending episode scores, running returns,
  // completion count). load_state throws on env-count mismatch or
  // truncation. The observation batch is NOT saved — the caller
  // (rl::RolloutCollector) keeps its own copy of the current batch.
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

 private:
  static void copy_into_batch(Tensor& batch, int slot, const Tensor& obs);
  void ensure_buffers();

  // Construction config: resume re-creates the same titled envs before
  // load_state validates the count. A3CS_LINT(ser-field-coverage)
  std::string title_;
  std::vector<std::unique_ptr<Env>> envs_;
  std::vector<double> episode_scores_;
  std::vector<double> running_returns_;
  std::int64_t episodes_completed_ = 0;

  // Reused across calls: the step result (obs batch + rewards + dones) and
  // the per-env scores captured inside the parallel region, committed to
  // episode_scores_ serially in env order. Scratch only — fully rewritten
  // by the next step(), so checkpoints skip all three (the header contract
  // says the caller re-collects the batch after resume).
  VecStep step_;              // A3CS_LINT(ser-field-coverage)
  std::vector<double> finished_scores_;  // A3CS_LINT(ser-field-coverage)
  bool buffers_ready_ = false;           // A3CS_LINT(ser-field-coverage)
};

}  // namespace a3cs::arcade
