// Environment wrappers.
//
// FrameStack: concatenates the last N observations along the channel axis,
// exposing temporal information (e.g. ball velocity in Breakout/Pong) that a
// single MiniArcade frame does not contain — the same role the 4-frame stack
// plays in the paper's Atari setup. Opt-in: the benches use single frames to
// match the bench-calibrated model zoo, but any agent can be built against a
// stacked spec since all model builders take the ObsSpec from the env.
#pragma once

#include <deque>
#include <memory>

#include "arcade/env.h"

namespace a3cs::arcade {

class FrameStackEnv : public Env {
 public:
  FrameStackEnv(std::unique_ptr<Env> inner, int num_frames);

  Tensor reset() override;
  StepResult step(int action) override;
  int num_actions() const override { return inner_->num_actions(); }
  ObsSpec obs_spec() const override;
  std::string name() const override { return inner_->name(); }
  void seed(std::uint64_t s) override { inner_->seed(s); }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 private:
  Tensor stacked() const;

  std::unique_ptr<Env> inner_;
  int num_frames_;
  std::deque<Tensor> history_;  // most recent frame at the back
};

// Convenience: make_game + FrameStack in one call.
std::unique_ptr<Env> make_stacked_game(const std::string& title,
                                       std::uint64_t seed_value,
                                       int num_frames);

}  // namespace a3cs::arcade
