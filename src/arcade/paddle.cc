#include "arcade/paddle.h"

#include <algorithm>

namespace a3cs::arcade {

namespace {
constexpr int kPaddleRow = kGridH - 1;
constexpr int kOppRow = 0;
}  // namespace

PaddleGame::PaddleGame(PaddleConfig cfg, std::uint64_t seed_value)
    : GridGame(cfg.max_steps, seed_value), cfg_(std::move(cfg)) {
  A3CS_CHECK(cfg_.paddle_width >= 1 && cfg_.paddle_width < kGridW,
             "bad paddle width");
}

void PaddleGame::on_reset() {
  paddle_x_ = (kGridW - cfg_.paddle_width) / 2;
  opp_x_ = paddle_x_;
  lives_left_ = cfg_.lives;
  points_ = 0;
  pellets_.clear();
  if (cfg_.mode == PaddleConfig::Mode::kBreakout) {
    refill_bricks();
    respawn_ball(/*towards_player=*/false);
  } else if (cfg_.mode == PaddleConfig::Mode::kVersus) {
    respawn_ball(rng_.bernoulli(0.5));
  }
}

void PaddleGame::refill_bricks() {
  bricks_.assign(static_cast<std::size_t>(cfg_.brick_rows) * kGridW, true);
}

void PaddleGame::respawn_ball(bool towards_player) {
  ball_x_ = 2 + rng_.uniform_int(kGridW - 4);
  ball_y_ = kGridH / 2;
  vel_x_ = rng_.bernoulli(0.5) ? 1 : -1;
  vel_y_ = towards_player ? 1 : -1;
}

double PaddleGame::move_ball() {
  double reward = 0.0;
  int nx = ball_x_ + vel_x_;
  int ny = ball_y_ + vel_y_;

  // Side walls.
  if (nx < 0 || nx >= kGridW) {
    vel_x_ = -vel_x_;
    nx = ball_x_ + vel_x_;
  }

  if (cfg_.mode == PaddleConfig::Mode::kBreakout) {
    // Ceiling bounce.
    if (ny < cfg_.brick_rows) {
      if (ny >= 0) {
        const std::size_t idx = static_cast<std::size_t>(ny) * kGridW + nx;
        if (bricks_[idx]) {
          bricks_[idx] = false;
          reward += cfg_.reward_brick;
          vel_y_ = -vel_y_;
          ny = ball_y_ + vel_y_;
          if (std::none_of(bricks_.begin(), bricks_.end(),
                           [](bool b) { return b; })) {
            refill_bricks();  // endless play within the step cap
          }
        }
      } else {
        vel_y_ = -vel_y_;
        ny = ball_y_ + vel_y_;
      }
    }
    if (ny < 0) {
      vel_y_ = 1;
      ny = ball_y_ + vel_y_;
    }
  } else if (cfg_.mode == PaddleConfig::Mode::kVersus) {
    // Opponent paddle on the top row.
    if (ny <= kOppRow) {
      const bool covered = nx >= opp_x_ && nx < opp_x_ + cfg_.paddle_width;
      if (covered) {
        vel_y_ = 1;
        ny = kOppRow + 1;
      } else {
        // Player wins the point.
        reward += cfg_.reward_point;
        ++points_;
        if (cfg_.target_points > 0 && points_ >= cfg_.target_points) {
          end_episode();
        } else {
          respawn_ball(rng_.bernoulli(0.5));
        }
        return reward;
      }
    }
  }

  // Player paddle / bottom row.
  if (ny >= kPaddleRow) {
    const bool covered =
        nx >= paddle_x_ && nx < paddle_x_ + cfg_.paddle_width;
    if (covered) {
      vel_y_ = -1;
      // English: hitting with the paddle edge slants the return.
      const int rel = nx - paddle_x_;
      if (rel == 0) vel_x_ = -1;
      else if (rel == cfg_.paddle_width - 1) vel_x_ = 1;
      ny = kPaddleRow - 1;
    } else {
      // Player misses.
      if (cfg_.mode == PaddleConfig::Mode::kVersus) {
        reward += cfg_.penalty_point;
        respawn_ball(rng_.bernoulli(0.5));
        return reward;
      }
      if (--lives_left_ <= 0) {
        end_episode();
        return reward;
      }
      respawn_ball(false);
      return reward;
    }
  }

  ball_x_ = nx;
  ball_y_ = ny;
  return reward;
}

double PaddleGame::on_step(int action) {
  // Move the paddle: 0 noop, 1 left, 2 right.
  if (action == 1) paddle_x_ = std::max(0, paddle_x_ - 1);
  if (action == 2) {
    paddle_x_ = std::min(kGridW - cfg_.paddle_width, paddle_x_ + 1);
  }

  double reward = 0.0;

  if (cfg_.mode == PaddleConfig::Mode::kCatch) {
    // Advance pellets; catch on the paddle row.
    std::vector<Pellet> kept;
    kept.reserve(pellets_.size());
    for (Pellet p : pellets_) {
      ++p.y;
      if (p.y >= kPaddleRow) {
        const bool covered =
            p.x >= paddle_x_ && p.x < paddle_x_ + cfg_.paddle_width;
        if (covered) {
          reward += cfg_.reward_catch;
        } else {
          reward += cfg_.penalty_miss;
          if (cfg_.penalty_miss < 0.0 && --lives_left_ <= 0) end_episode();
        }
      } else {
        kept.push_back(p);
      }
    }
    pellets_ = std::move(kept);
    if (pellets_.size() < 3 && rng_.bernoulli(cfg_.spawn_prob)) {
      pellets_.push_back({0, rng_.uniform_int(kGridW)});
    }
    return reward;
  }

  // Ball games: move the opponent (versus mode) then the ball.
  if (cfg_.mode == PaddleConfig::Mode::kVersus && vel_y_ < 0) {
    const int center = opp_x_ + cfg_.paddle_width / 2;
    int dir = 0;
    if (ball_x_ > center) dir = 1;
    else if (ball_x_ < center) dir = -1;
    if (!rng_.bernoulli(cfg_.opponent_skill)) {
      dir = rng_.uniform_int(3) - 1;  // fumble
    }
    opp_x_ = std::clamp(opp_x_ + dir, 0, kGridW - cfg_.paddle_width);
  }
  reward += move_ball();
  return reward;
}

void PaddleGame::draw(Tensor& frame) const {
  for (int i = 0; i < cfg_.paddle_width; ++i) {
    put(frame, 0, kPaddleRow, paddle_x_ + i);
  }
  if (cfg_.mode == PaddleConfig::Mode::kCatch) {
    for (const Pellet& p : pellets_) put(frame, 1, p.y, p.x);
    return;
  }
  put(frame, 1, ball_y_, ball_x_);
  if (cfg_.mode == PaddleConfig::Mode::kBreakout) {
    for (int r = 0; r < cfg_.brick_rows; ++r) {
      for (int x = 0; x < kGridW; ++x) {
        if (bricks_[static_cast<std::size_t>(r) * kGridW + x]) {
          put(frame, 2, r, x);
        }
      }
    }
  } else if (cfg_.mode == PaddleConfig::Mode::kVersus) {
    for (int i = 0; i < cfg_.paddle_width; ++i) {
      put(frame, 2, kOppRow, opp_x_ + i);
    }
  }
}

void PaddleGame::save_game(std::ostream& out) const {
  namespace sio = util::sio;
  sio::put_i32(out, paddle_x_);
  sio::put_i32(out, opp_x_);
  sio::put_i32(out, ball_x_);
  sio::put_i32(out, ball_y_);
  sio::put_i32(out, vel_x_);
  sio::put_i32(out, vel_y_);
  sio::put_i32(out, lives_left_);
  sio::put_i32(out, points_);
  sio::put_bool_vec(out, bricks_);
  sio::put_u32(out, static_cast<std::uint32_t>(pellets_.size()));
  for (const Pellet& p : pellets_) {
    sio::put_i32(out, p.y);
    sio::put_i32(out, p.x);
  }
}

void PaddleGame::load_game(std::istream& in) {
  namespace sio = util::sio;
  paddle_x_ = sio::get_i32(in);
  opp_x_ = sio::get_i32(in);
  ball_x_ = sio::get_i32(in);
  ball_y_ = sio::get_i32(in);
  vel_x_ = sio::get_i32(in);
  vel_y_ = sio::get_i32(in);
  lives_left_ = sio::get_i32(in);
  points_ = sio::get_i32(in);
  bricks_ = sio::get_bool_vec(in);
  pellets_.resize(sio::get_u32(in));
  for (Pellet& p : pellets_) {
    p.y = sio::get_i32(in);
    p.x = sio::get_i32(in);
  }
}

}  // namespace a3cs::arcade
