// Shared machinery for all MiniArcade games: a fixed-size grid frame with the
// standard 3-plane rendering convention, per-env RNG stream, step caps and
// episode bookkeeping.
#pragma once

#include <string>

#include "arcade/env.h"
#include "util/logging.h"
#include "util/state_io.h"

namespace a3cs::arcade {

class GridGame : public Env {
 public:
  int num_actions() const override = 0;
  ObsSpec obs_spec() const override { return standard_obs_spec(); }
  void seed(std::uint64_t s) override { rng_.reseed(s); }

  Tensor reset() override {
    done_ = false;
    steps_ = 0;
    episode_score_ = 0.0;
    on_reset();
    return render();
  }

  StepResult step(int action) override {
    A3CS_CHECK(!done_, name() + ": step() after episode end");
    A3CS_CHECK(action >= 0 && action < num_actions(),
               name() + ": action out of range");
    ++steps_;
    const double reward = on_step(action);
    episode_score_ += reward;
    if (steps_ >= max_steps_) done_ = true;
    StepResult r;
    r.obs = render();
    r.reward = reward;
    r.done = done_;
    return r;
  }

  double episode_score() const { return episode_score_; }
  int steps() const { return steps_; }

  // Template method: the base serializes the shared episode bookkeeping and
  // the RNG stream, then delegates the variant-specific fields to
  // save_game()/load_game().
  void save_state(std::ostream& out) const final {
    util::sio::put_rng(out, rng_);
    util::sio::put_bool(out, done_);
    util::sio::put_i32(out, steps_);
    util::sio::put_f64(out, episode_score_);
    save_game(out);
  }

  void load_state(std::istream& in) final {
    util::sio::get_rng(in, rng_);
    done_ = util::sio::get_bool(in);
    steps_ = util::sio::get_i32(in);
    episode_score_ = util::sio::get_f64(in);
    load_game(in);
  }

 protected:
  explicit GridGame(int max_steps, std::uint64_t seed_value = 1)
      : rng_(seed_value), max_steps_(max_steps) {}

  // Subclass hooks: set up the episode state / advance one tick (returning
  // the reward) / draw the current state into a cleared frame.
  virtual void on_reset() = 0;
  virtual double on_step(int action) = 0;
  virtual void draw(Tensor& frame) const = 0;

  // Checkpointing hooks: every variant serializes ALL of its mutable episode
  // fields (config fields are reconstructed from the factory, not saved).
  virtual void save_game(std::ostream& out) const = 0;
  virtual void load_game(std::istream& in) = 0;

  void end_episode() { done_ = true; }

  // Plane values: 1.0 for primary entities, 0.5 for secondary (e.g. walls
  // vs items sharing plane 2). Out-of-grid writes are silently clipped,
  // which keeps entity-drawing code free of edge special-cases.
  static void put(Tensor& frame, int plane, int y, int x, float v = 1.0f) {
    if (y < 0 || y >= kGridH || x < 0 || x >= kGridW) return;
    frame.at4(0, plane, y, x) = v;
  }

  static bool in_grid(int y, int x) {
    return y >= 0 && y < kGridH && x >= 0 && x < kGridW;
  }

  static int clampx(int x) { return x < 0 ? 0 : (x >= kGridW ? kGridW - 1 : x); }
  static int clampy(int y) { return y < 0 ? 0 : (y >= kGridH ? kGridH - 1 : y); }

  util::Rng rng_;
  // Fixed per-title at construction; resume rebuilds the same game from the
  // run config before load_state. A3CS_LINT(ser-field-coverage)
  int max_steps_;

 private:
  Tensor render() const {
    Tensor frame(tensor::Shape::nchw(1, kPlanes, kGridH, kGridW));
    draw(frame);
    return frame;
  }

  bool done_ = true;
  int steps_ = 0;
  double episode_score_ = 0.0;
};

}  // namespace a3cs::arcade
