// Free-function kernels on Tensors: GEMM, im2col/col2im, row softmax.
// These are the computational primitives the nn modules are built from.
//
// GEMM, im2col and col2im execute on the global util::ThreadPool with fixed
// contiguous sharding (row panels / column rows / channels respectively), so
// their results are bit-exact for every A3CS_THREADS value: each output
// element is produced by exactly one shard and its reduction order (kk
// ascending in GEMM, column-row ascending in col2im) never depends on the
// thread count. See docs/PERFORMANCE.md.
//
// The shard bodies dispatch through the pluggable kernel-backend table
// (tensor/backend/backend.h, selected via A3CS_BACKEND): "scalar" is the
// bit-exact blocked reference, "avx2" the FMA-fused SIMD backend —
// per-backend determinism holds at every thread count either way.
#pragma once

#include "tensor/tensor.h"

namespace a3cs::tensor {

// C = alpha * op(A) @ op(B) + beta * C, row-major, where op transposes when
// the corresponding flag is set. A is (m x k) after op, B is (k x n) after
// op, C is (m x n). C must be preallocated with the right shape.
void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha = 1.0f, float beta = 0.0f);

// Raw-pointer GEMM over row-major buffers: C(m x n) = alpha*op(A)@op(B) +
// beta*C where op(A) is (m x k) and stored (m x k), or (k x m) when trans_a.
// Used by conv layers to operate on per-sample slices without copies.
void gemm_raw(const float* a, bool trans_a, const float* b, bool trans_b,
              float* c, int m, int k, int n, float alpha = 1.0f,
              float beta = 0.0f);

// Convolution lowering. Input is NCHW; the column matrix has shape
// (C*KH*KW) x (N*OH*OW), so a convolution is one GEMM with the (OC)x(C*KH*KW)
// weight matrix.
struct ConvGeometry {
  int n, c, h, w;          // input
  int kh, kw;              // kernel
  int stride;
  int pad;
  int oh, ow;              // output spatial dims

  static ConvGeometry make(const Shape& input, int kh, int kw, int stride,
                           int pad);
};

// cols must be (c*kh*kw) x (n*oh*ow).
void im2col(const Tensor& input, const ConvGeometry& g, Tensor& cols);

// Scatter-add the column matrix back into an NCHW gradient image.
// `grad_input` is zeroed first.
void col2im(const Tensor& cols, const ConvGeometry& g, Tensor& grad_input);

// Row-wise softmax of a (rows x cols) matrix; output preallocated same shape.
void softmax_rows(const Tensor& logits, Tensor& probs);

// Row-wise log-softmax (numerically stable).
void log_softmax_rows(const Tensor& logits, Tensor& log_probs);

// argmax of a flat tensor.
std::int64_t argmax(const Tensor& t);

}  // namespace a3cs::tensor
