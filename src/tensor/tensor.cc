#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace a3cs::tensor {

Tensor::Tensor(Shape shape, float fill)
    : shape_(shape),
      data_(static_cast<std::size_t>(shape.numel()), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data)) {
  A3CS_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
             "data size does not match shape " + shape_.to_string());
}

float& Tensor::at2(int i, int j) {
  A3CS_CHECK(shape_.rank() == 2, "at2 on non-matrix");
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}

float Tensor::at2(int i, int j) const {
  A3CS_CHECK(shape_.rank() == 2, "at2 on non-matrix");
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}

float& Tensor::at4(int n, int c, int h, int w) {
  A3CS_CHECK(shape_.rank() == 4, "at4 on non-NCHW tensor");
  const std::size_t idx =
      ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
          shape_[3] +
      w;
  return data_[idx];
}

float Tensor::at4(int n, int c, int h, int w) const {
  A3CS_CHECK(shape_.rank() == 4, "at4 on non-NCHW tensor");
  const std::size_t idx =
      ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
          shape_[3] +
      w;
  return data_[idx];
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::reshaped(Shape new_shape) const {
  A3CS_CHECK(new_shape.numel() == shape_.numel(),
             "reshape numel mismatch: " + shape_.to_string() + " -> " +
                 new_shape.to_string());
  return Tensor(new_shape, data_);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  A3CS_CHECK(same_shape(other), "operator+= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  A3CS_CHECK(same_shape(other), "operator-= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (float& x : data_) x *= s;
  return *this;
}

void Tensor::axpy(float s, const Tensor& other) {
  A3CS_CHECK(same_shape(other), "axpy shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float x : data_) acc += x;
  return static_cast<float>(acc);
}

float Tensor::max() const {
  A3CS_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min() const {
  A3CS_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::abs(x));
  return m;
}

float Tensor::norm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::dot(const Tensor& other) const {
  A3CS_CHECK(same_shape(other), "dot shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    acc += static_cast<double>(data_[i]) * other.data_[i];
  }
  return static_cast<float>(acc);
}

Tensor operator+(Tensor a, const Tensor& b) {
  a += b;
  return a;
}

Tensor operator-(Tensor a, const Tensor& b) {
  a -= b;
  return a;
}

Tensor operator*(Tensor a, float s) {
  a *= s;
  return a;
}

}  // namespace a3cs::tensor
