// Dense float tensor with value semantics. The single data container used by
// the NN library, the RL stack and the NAS/DAS engines.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.h"

namespace a3cs::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);
  Tensor(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  // Flat element access (bounds-checked in debug via vector::at in at()).
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }
  float& at(std::int64_t i) { return data_.at(static_cast<std::size_t>(i)); }
  float at(std::int64_t i) const { return data_.at(static_cast<std::size_t>(i)); }

  // Multi-dimensional accessors; rank must match.
  float& at2(int i, int j);
  float at2(int i, int j) const;
  float& at4(int n, int c, int h, int w);
  float at4(int n, int c, int h, int w) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  // Reinterpret the buffer under a new shape with identical numel.
  Tensor reshaped(Shape new_shape) const;

  // In-place arithmetic (shapes must match exactly).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);

  // this += s * other (axpy), the workhorse of optimizers.
  void axpy(float s, const Tensor& other);

  float sum() const;
  float max() const;
  float min() const;
  float abs_max() const;
  // L2 norm of the flattened tensor.
  float norm() const;
  float dot(const Tensor& other) const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

Tensor operator+(Tensor a, const Tensor& b);
Tensor operator-(Tensor a, const Tensor& b);
Tensor operator*(Tensor a, float s);

}  // namespace a3cs::tensor
