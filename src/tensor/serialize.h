// Binary tensor (de)serialization: used to cache pretrained teacher agents
// between bench runs, to round-trip trained networks in tests, and as the
// payload encoding of checkpoint sections (src/ckpt).
//
// Tensor record ("A3CT" container, format version 1):
//   magic "A3CT", u8 version, u32 rank, u32 dims[rank], f32 data[numel]
// Named-list file ("A3CF" container, format version 1):
//   magic "A3CF", u8 version, u32 count, count x (string name, tensor)
//
// All multi-byte fields are little-endian BY DEFINITION — writers emit
// explicit LE bytes and readers reassemble them, so files are portable
// across hosts of either byte order. Unknown format versions are rejected
// with a clear error instead of being misread.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace a3cs::tensor {

// Current format version of both the A3CT and A3CF containers.
inline constexpr std::uint8_t kSerializeVersion = 1;

void write_tensor(std::ostream& out, const Tensor& t);
Tensor read_tensor(std::istream& in);

// Whole-model checkpoints: an ordered list of named tensors.
void write_tensors(std::ostream& out,
                   const std::vector<std::pair<std::string, Tensor>>& tensors);
std::vector<std::pair<std::string, Tensor>> read_tensors(std::istream& in);

void write_tensors(const std::string& path,
                   const std::vector<std::pair<std::string, Tensor>>& tensors);
std::vector<std::pair<std::string, Tensor>> read_tensors(
    const std::string& path);

}  // namespace a3cs::tensor
