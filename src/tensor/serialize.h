// Binary tensor (de)serialization: used to cache pretrained teacher agents
// between bench runs and to round-trip trained networks in tests.
//
// Format: magic "A3CT", u32 rank, u32 dims[rank], f32 data[numel].
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace a3cs::tensor {

void write_tensor(std::ostream& out, const Tensor& t);
Tensor read_tensor(std::istream& in);

// Whole-model checkpoints: an ordered list of named tensors.
void write_tensors(const std::string& path,
                   const std::vector<std::pair<std::string, Tensor>>& tensors);
std::vector<std::pair<std::string, Tensor>> read_tensors(
    const std::string& path);

}  // namespace a3cs::tensor
