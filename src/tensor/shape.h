// Small-rank tensor shape with value semantics.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace a3cs::tensor {

// Up to 4 dimensions (we only ever need scalars, vectors, matrices and
// NCHW image batches).
class Shape {
 public:
  static constexpr int kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<int> dims);

  int rank() const { return rank_; }
  int dim(int i) const;
  int operator[](int i) const { return dim(i); }

  // Total number of elements (1 for a rank-0 scalar shape).
  std::int64_t numel() const;

  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const;

  // Factory helpers for the common cases.
  static Shape scalar() { return Shape({}); }
  static Shape vec(int n) { return Shape({n}); }
  static Shape mat(int rows, int cols) { return Shape({rows, cols}); }
  static Shape nchw(int n, int c, int h, int w) { return Shape({n, c, h, w}); }

 private:
  int rank_ = 0;
  std::array<int, kMaxRank> dims_{};
};

}  // namespace a3cs::tensor
