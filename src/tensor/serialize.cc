#include "tensor/serialize.h"

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/logging.h"

namespace a3cs::tensor {
namespace {

constexpr char kTensorMagic[4] = {'A', '3', 'C', 'T'};
constexpr char kFileMagic[4] = {'A', '3', 'C', 'F'};

// Explicit little-endian integer encoding: byte i carries bits [8i, 8i+8).
// Writers/readers never memcpy whole integers, so the on-disk format is
// identical on big- and little-endian hosts.
void write_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  out.write(buf, 4);
}

std::uint32_t read_u32(std::istream& in) {
  char buf[4];
  in.read(buf, 4);
  if (!in) throw std::runtime_error("tensor deserialize: truncated stream");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

void write_version(std::ostream& out) {
  const char v = static_cast<char>(kSerializeVersion);
  out.write(&v, 1);
}

void read_and_check_version(std::istream& in, const char* container) {
  char v = 0;
  in.read(&v, 1);
  if (!in) throw std::runtime_error("tensor deserialize: truncated stream");
  if (static_cast<std::uint8_t>(v) != kSerializeVersion) {
    throw std::runtime_error(
        std::string("tensor deserialize: unsupported ") + container +
        " format version " + std::to_string(static_cast<unsigned char>(v)) +
        " (expected " + std::to_string(kSerializeVersion) + ")");
  }
}

void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const std::uint32_t n = read_u32(in);
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("tensor deserialize: truncated string");
  return s;
}

// Float payloads are little-endian IEEE-754 bit patterns. On LE hosts (the
// common case) that is the in-memory layout and the buffer is written/read
// in bulk; on BE hosts each element is byte-swapped through its bit pattern.
void write_f32_data(std::ostream& out, const float* data, std::int64_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(n) *
                  static_cast<std::streamsize>(sizeof(float)));
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      std::uint32_t bits = 0;
      std::memcpy(&bits, &data[i], sizeof(bits));
      write_u32(out, bits);
    }
  }
}

void read_f32_data(std::istream& in, float* data, std::int64_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    in.read(reinterpret_cast<char*>(data),
            static_cast<std::streamsize>(n) *
                static_cast<std::streamsize>(sizeof(float)));
    if (!in) throw std::runtime_error("tensor deserialize: truncated data");
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint32_t bits = read_u32(in);
      std::memcpy(&data[i], &bits, sizeof(bits));
    }
  }
}

}  // namespace

void write_tensor(std::ostream& out, const Tensor& t) {
  out.write(kTensorMagic, 4);
  write_version(out);
  write_u32(out, static_cast<std::uint32_t>(t.shape().rank()));
  for (int i = 0; i < t.shape().rank(); ++i) {
    write_u32(out, static_cast<std::uint32_t>(t.shape()[i]));
  }
  write_f32_data(out, t.data(), t.numel());
}

Tensor read_tensor(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kTensorMagic, 4)) {
    throw std::runtime_error("tensor deserialize: bad magic");
  }
  read_and_check_version(in, "A3CT");
  const std::uint32_t rank = read_u32(in);
  if (rank > static_cast<std::uint32_t>(Shape::kMaxRank)) {
    throw std::runtime_error("tensor deserialize: rank too large");
  }
  int dims[Shape::kMaxRank] = {0, 0, 0, 0};
  for (std::uint32_t i = 0; i < rank; ++i) {
    dims[i] = static_cast<int>(read_u32(in));
  }
  Shape shape;
  switch (rank) {
    case 0: shape = Shape::scalar(); break;
    case 1: shape = Shape({dims[0]}); break;
    case 2: shape = Shape({dims[0], dims[1]}); break;
    case 3: shape = Shape({dims[0], dims[1], dims[2]}); break;
    case 4: shape = Shape({dims[0], dims[1], dims[2], dims[3]}); break;
    default: throw std::runtime_error("tensor deserialize: bad rank");
  }
  Tensor t(shape);
  read_f32_data(in, t.data(), t.numel());
  return t;
}

void write_tensors(
    std::ostream& out,
    const std::vector<std::pair<std::string, Tensor>>& tensors) {
  out.write(kFileMagic, 4);
  write_version(out);
  write_u32(out, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    write_string(out, name);
    write_tensor(out, t);
  }
}

std::vector<std::pair<std::string, Tensor>> read_tensors(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kFileMagic, 4)) {
    throw std::runtime_error("read_tensors: bad file magic");
  }
  read_and_check_version(in, "A3CF");
  const std::uint32_t count = read_u32(in);
  std::vector<std::pair<std::string, Tensor>> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    out.emplace_back(std::move(name), read_tensor(in));
  }
  return out;
}

void write_tensors(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& tensors) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_tensors: cannot open " + path);
  write_tensors(out, tensors);
  if (!out) throw std::runtime_error("write_tensors: write failed " + path);
}

std::vector<std::pair<std::string, Tensor>> read_tensors(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_tensors: cannot open " + path);
  try {
    return read_tensors(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " in " + path);
  }
}

}  // namespace a3cs::tensor
