#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "util/logging.h"

namespace a3cs::tensor {
namespace {

constexpr char kTensorMagic[4] = {'A', '3', 'C', 'T'};
constexpr char kFileMagic[4] = {'A', '3', 'C', 'F'};

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("tensor deserialize: truncated stream");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const std::uint32_t n = read_u32(in);
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("tensor deserialize: truncated string");
  return s;
}

}  // namespace

void write_tensor(std::ostream& out, const Tensor& t) {
  out.write(kTensorMagic, 4);
  write_u32(out, static_cast<std::uint32_t>(t.shape().rank()));
  for (int i = 0; i < t.shape().rank(); ++i) {
    write_u32(out, static_cast<std::uint32_t>(t.shape()[i]));
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kTensorMagic, 4)) {
    throw std::runtime_error("tensor deserialize: bad magic");
  }
  const std::uint32_t rank = read_u32(in);
  if (rank > static_cast<std::uint32_t>(Shape::kMaxRank)) {
    throw std::runtime_error("tensor deserialize: rank too large");
  }
  int dims[Shape::kMaxRank] = {0, 0, 0, 0};
  for (std::uint32_t i = 0; i < rank; ++i) {
    dims[i] = static_cast<int>(read_u32(in));
  }
  Shape shape;
  switch (rank) {
    case 0: shape = Shape::scalar(); break;
    case 1: shape = Shape({dims[0]}); break;
    case 2: shape = Shape({dims[0], dims[1]}); break;
    case 3: shape = Shape({dims[0], dims[1], dims[2]}); break;
    case 4: shape = Shape({dims[0], dims[1], dims[2], dims[3]}); break;
    default: throw std::runtime_error("tensor deserialize: bad rank");
  }
  Tensor t(shape);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!in) throw std::runtime_error("tensor deserialize: truncated data");
  return t;
}

void write_tensors(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& tensors) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_tensors: cannot open " + path);
  out.write(kFileMagic, 4);
  write_u32(out, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    write_string(out, name);
    write_tensor(out, t);
  }
  if (!out) throw std::runtime_error("write_tensors: write failed " + path);
}

std::vector<std::pair<std::string, Tensor>> read_tensors(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_tensors: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kFileMagic, 4)) {
    throw std::runtime_error("read_tensors: bad file magic in " + path);
  }
  const std::uint32_t count = read_u32(in);
  std::vector<std::pair<std::string, Tensor>> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    out.emplace_back(std::move(name), read_tensor(in));
  }
  return out;
}

}  // namespace a3cs::tensor
