#include "tensor/backend/check.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

namespace a3cs::tensor::backend {

namespace {

// Maps a finite float onto the integer line so that adjacent representable
// values differ by exactly 1 and the ordering crosses zero monotonically.
std::int64_t float_key(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return (u & 0x80000000u) ? -static_cast<std::int64_t>(u & 0x7fffffffu)
                           : static_cast<std::int64_t>(u);
}

// Deterministic float rendering for failure messages: round-trip precision,
// classic formatting (no locale).
std::string fmt(float v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<float>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace

std::int64_t ulp_distance(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  if (a == b) return 0;  // covers equal infinities and +0 vs -0
  if (std::isinf(a) || std::isinf(b)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  const std::int64_t d = float_key(a) - float_key(b);
  return d < 0 ? -d : d;
}

CheckOptions tolerance_for_reduction(int k) {
  CheckOptions opt;
  int log2k = 0;
  for (int v = k > 1 ? k - 1 : 1; v > 0; v >>= 1) ++log2k;
  // Each fused/reordered reduction step can move the result by ~1 ULP and
  // the error compounds ~sqrt(k); 16 ULP per log2(k) doubling is loose
  // enough for every shape in the checker grid and still ~100x tighter than
  // a genuinely wrong kernel. The absolute floor scales with sqrt(k) to
  // absorb cancellation near zero, where ULP distance explodes.
  opt.max_ulps = 16 * (log2k > 1 ? log2k : 1);
  opt.abs_tol = 1e-6f * std::sqrt(static_cast<float>(k > 1 ? k : 1));
  return opt;
}

CheckResult compare_elementwise(const float* expected, const float* actual,
                                std::int64_t count, const CheckOptions& opt,
                                const std::string& label) {
  CheckResult res;
  std::int64_t first_index = -1;
  for (std::int64_t i = 0; i < count; ++i) {
    const float e = expected[i];
    const float a = actual[i];
    if (std::isnan(e) && std::isnan(a)) continue;  // NaN propagation is legal
    const std::int64_t ulp = ulp_distance(e, a);
    if (ulp <= opt.max_ulps) continue;
    const float diff = std::fabs(e - a);
    if (diff <= opt.abs_tol) continue;  // NaN-vs-number: diff is NaN, fails
    ++res.mismatches;
    if (first_index < 0) first_index = i;
    if (ulp > res.worst_ulp || res.worst_index < 0) {
      res.worst_ulp = ulp;
      res.worst_index = i;
    }
  }
  if (res.mismatches > 0) {
    res.ok = false;
    const float e = expected[first_index];
    const float a = actual[first_index];
    const std::int64_t ulp = ulp_distance(e, a);
    std::ostringstream os;
    os << label << ": " << res.mismatches << "/" << count
       << " elements out of tolerance; first at [" << first_index
       << "] expected=" << fmt(e) << " actual=" << fmt(a) << " ulp=";
    if (ulp == std::numeric_limits<std::int64_t>::max()) {
      os << "nan/inf-mismatch";
    } else {
      os << ulp;
    }
    os << " (max_ulps=" << opt.max_ulps << " abs_tol=" << fmt(opt.abs_tol)
       << ")";
    res.message = os.str();
  }
  return res;
}

CheckResult compare_tensors(const Tensor& expected, const Tensor& actual,
                            const CheckOptions& opt,
                            const std::string& label) {
  if (!(expected.shape() == actual.shape())) {
    CheckResult res;
    res.ok = false;
    res.mismatches = expected.numel();
    res.message = label + ": shape mismatch " + expected.shape().to_string() +
                  " vs " + actual.shape().to_string();
    return res;
  }
  return compare_elementwise(expected.data(), actual.data(), expected.numel(),
                             opt, label + " " + expected.shape().to_string());
}

}  // namespace a3cs::tensor::backend
