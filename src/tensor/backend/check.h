// Cross-backend numerical comparison for kernel validation.
//
// The scalar backend is the bit-exact reference; fast backends (avx2) fuse
// multiply-adds and reorder float reductions, so their outputs differ from
// scalar by a few ULP per reduction step. This header defines the tolerance
// policy and a comparator with deterministic, debuggable failure reports:
// the first offending index (row-major flat order), both values, their ULP
// distance and the tolerance in force — so a failing grid case in
// tests/backend_check_test.cc always prints the same actionable message.
//
// Tolerance policy (documented in docs/PERFORMANCE.md):
//  - Two values match when their ULP distance is <= max_ulps OR their
//    absolute difference is <= abs_tol. The absolute escape hatch exists for
//    results near zero, where cancellation makes ULP distance meaningless
//    (ULP distance between 1e-30 and -1e-30 is huge; the error is tiny).
//  - Both-NaN counts as a match (a backend must not *introduce* NaN, which
//    NaN-vs-number catches; NaN propagation itself is legal). NaN vs a
//    number, or infinities of opposite sign, never match.
//  - The budget scales with the reduction length k: each fused/reordered
//    reduction step moves the result by at most ~1 ULP, and errors grow
//    ~sqrt(k) for random-ish summands. tolerance_for_reduction() returns a
//    conservative linear-in-log2(k) bound that holds with slack across the
//    test grid while staying tight enough to catch a wrong kernel (an
//    off-by-one-element dot is thousands of ULP out).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace a3cs::tensor::backend {

// ULP distance between two finite floats: how many representable float
// values lie between them (0 = bit-identical, 1 = adjacent). Crossing zero
// counts the values on both sides. Returns INT64_MAX when either value is
// NaN or the values are infinities that do not compare equal.
std::int64_t ulp_distance(float a, float b);

struct CheckOptions {
  // Values match when ulp <= max_ulps OR |a - b| <= abs_tol.
  std::int64_t max_ulps = 4;
  float abs_tol = 1e-6f;
};

// Tolerance for comparing a reduction of length k against a reordered /
// FMA-fused evaluation of the same reduction.
CheckOptions tolerance_for_reduction(int k);

struct CheckResult {
  bool ok = true;
  std::int64_t mismatches = 0;    // elements out of tolerance
  std::int64_t worst_index = -1;  // flat index of the worst element
  std::int64_t worst_ulp = 0;     // ULP distance there (INT64_MAX for NaN)
  std::string message;            // empty when ok; deterministic otherwise
};

// Compares expected[0:count] (the reference backend) against actual[0:count]
// elementwise. `label` names the comparison in the failure message — by
// convention "<kernel> <shape>", e.g. "gemm 7x33x129 tA=1 tB=0".
CheckResult compare_elementwise(const float* expected, const float* actual,
                                std::int64_t count, const CheckOptions& opt,
                                const std::string& label);

// Shape-checked convenience over two Tensors.
CheckResult compare_tensors(const Tensor& expected, const Tensor& actual,
                            const CheckOptions& opt, const std::string& label);

}  // namespace a3cs::tensor::backend
