// The blocked-scalar reference backend: the portable kernels moved verbatim
// from tensor/ops.cc and nn/layers.cc. Compiled with the baseline flags only
// (no -mavx2/-mfma), so on every host this backend executes the exact
// instruction sequences of the pre-backend tree — A3CS_BACKEND=scalar is
// bit-identical to the historical results at every thread count.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "tensor/backend/backend.h"

namespace a3cs::tensor::backend {

namespace {

// Register-tile sizes of the blocked GEMM micro-kernel. Per C element the
// reduction always runs kk ascending, so results do not depend on the tile
// sizes or on which shard computed the element. 4x8 = 32 accumulator floats
// fits the baseline-SSE2 register file (16 xmm) without spilling.
constexpr int kMR = 4;  // A rows per micro-tile
constexpr int kNR = 8;  // C columns accumulated in registers

inline float a_at(const float* a, bool trans_a, int a_cols, int i, int kk) {
  return trans_a ? a[static_cast<std::size_t>(kk) * a_cols + i]
                 : a[static_cast<std::size_t>(i) * a_cols + kk];
}

// Writes an accumulator tile back to C with the alpha/beta scaling applied
// exactly once per output element.
inline void store_tile(const float (*acc)[kNR], float* c, int i0, int j0,
                       int mr, int nr, int n, float alpha, float beta) {
  for (int r = 0; r < mr; ++r) {
    float* crow = c + static_cast<std::size_t>(i0 + r) * n + j0;
    if (beta == 0.0f) {
      for (int j = 0; j < nr; ++j) crow[j] = alpha * acc[r][j];
    } else {
      for (int j = 0; j < nr; ++j) {
        crow[j] = beta * crow[j] + alpha * acc[r][j];
      }
    }
  }
}

// Full kMR x kNR tile of the !trans_b path with COMPILE-TIME loop bounds:
// at -O2 the constant-bound loops fully unroll and the accumulator tile
// lives in registers for the whole kk reduction, so each A value and B row
// segment is reused kMR times and C is touched once instead of k times.
// (Variable-bound edge tiles spill the accumulator and run ~3x slower.)
template <bool TransA>
inline void micro_tile_full(const float* a, const float* b, float* c, int i0,
                            int j0, int k, int n, float alpha, float beta,
                            int a_cols, int b_cols) {
  float acc[kMR][kNR] = {};
  for (int kk = 0; kk < k; ++kk) {
    const float* brow = b + static_cast<std::size_t>(kk) * b_cols + j0;
    for (int r = 0; r < kMR; ++r) {
      const float av = a_at(a, TransA, a_cols, i0 + r, kk);
      for (int j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  store_tile(acc, c, i0, j0, kMR, kNR, n, alpha, beta);
}

// C[r0:r1, :] = alpha * A[r0:r1, :] @ B + beta * C[r0:r1, :].
// Every C element reduces kk ascending on every path (full tiles, edge
// tiles, trans_b dot products), so the result is independent of the tiling
// and of which shard computed it.
void gemm_rows(const float* a, bool trans_a, const float* b, bool trans_b,
               float* c, int r0, int r1, int k, int n, float alpha, float beta,
               int a_cols, int b_cols) {
  for (int i0 = r0; i0 < r1; i0 += kMR) {
    const int mr = std::min(kMR, r1 - i0);
    int j_start = 0;
    if (!trans_b && mr == kMR) {
      // Fast path over the full tiles of this row panel.
      for (; j_start + kNR <= n; j_start += kNR) {
        if (trans_a) {
          micro_tile_full<true>(a, b, c, i0, j_start, k, n, alpha, beta,
                                a_cols, b_cols);
        } else {
          micro_tile_full<false>(a, b, c, i0, j_start, k, n, alpha, beta,
                                 a_cols, b_cols);
        }
      }
      if (j_start == n) continue;
    }
    for (int j0 = j_start; j0 < n; j0 += kNR) {
      const int nr = std::min(kNR, n - j0);
      float acc[kMR][kNR] = {};
      if (!trans_b) {
        for (int kk = 0; kk < k; ++kk) {
          const float* brow = b + static_cast<std::size_t>(kk) * b_cols + j0;
          for (int r = 0; r < mr; ++r) {
            const float av = a_at(a, trans_a, a_cols, i0 + r, kk);
            for (int j = 0; j < nr; ++j) acc[r][j] += av * brow[j];
          }
        }
      } else {
        // B^T case: both reductions run over contiguous rows of A and B.
        for (int j = 0; j < nr; ++j) {
          const float* bcol = b + static_cast<std::size_t>(j0 + j) * b_cols;
          for (int r = 0; r < mr; ++r) {
            float sum = 0.0f;
            if (!trans_a) {
              const float* arow = a + static_cast<std::size_t>(i0 + r) * a_cols;
              for (int kk = 0; kk < k; ++kk) sum += arow[kk] * bcol[kk];
            } else {
              for (int kk = 0; kk < k; ++kk) {
                sum += a_at(a, trans_a, a_cols, i0 + r, kk) * bcol[kk];
              }
            }
            acc[r][j] = sum;
          }
        }
      }
      store_tile(acc, c, i0, j0, mr, nr, n, alpha, beta);
    }
  }
}

// Fills column-matrix rows [cr0, cr1); each row is one (channel, ky, kx)
// triple, filled column-major over (n, oy, ox) with zero padding.
void im2col_rows(const float* in, const ConvGeometry& g, float* out, int cr0,
                 int cr1) {
  const int hw = g.h * g.w;
  const int ohw = g.oh * g.ow;
  const int col_cols = g.n * ohw;
  for (int cr = cr0; cr < cr1; ++cr) {
    const int kw_off = cr % g.kw;
    const int kh_off = (cr / g.kw) % g.kh;
    const int ch = cr / (g.kw * g.kh);
    float* orow = out + static_cast<std::size_t>(cr) * col_cols;
    for (int n = 0; n < g.n; ++n) {
      const float* img = in + (static_cast<std::size_t>(n) * g.c + ch) * hw;
      float* ocell = orow + static_cast<std::size_t>(n) * ohw;
      for (int oy = 0; oy < g.oh; ++oy) {
        const int iy = oy * g.stride - g.pad + kh_off;
        if (iy < 0 || iy >= g.h) {
          std::fill(ocell, ocell + g.ow, 0.0f);
          ocell += g.ow;
          continue;
        }
        const float* irow = img + static_cast<std::size_t>(iy) * g.w;
        for (int ox = 0; ox < g.ow; ++ox) {
          const int ix = ox * g.stride - g.pad + kw_off;
          *ocell++ = (ix < 0 || ix >= g.w) ? 0.0f : irow[ix];
        }
      }
    }
  }
}

// Scatter-adds the column rows of channels [c0, c1) into the pre-zeroed
// gradient image, walking column-rows in the same ascending order as the
// serial loop so the accumulation order stays bit-exact.
void col2im_channels(const float* in, const ConvGeometry& g, float* out,
                     int c0, int c1) {
  const int hw = g.h * g.w;
  const int ohw = g.oh * g.ow;
  const int col_cols = g.n * ohw;
  const int khw = g.kh * g.kw;
  for (int cr = c0 * khw; cr < c1 * khw; ++cr) {
    const int kw_off = cr % g.kw;
    const int kh_off = (cr / g.kw) % g.kh;
    const int ch = cr / (g.kw * g.kh);
    const float* irow = in + static_cast<std::size_t>(cr) * col_cols;
    for (int n = 0; n < g.n; ++n) {
      float* img = out + (static_cast<std::size_t>(n) * g.c + ch) * hw;
      const float* icell = irow + static_cast<std::size_t>(n) * ohw;
      for (int oy = 0; oy < g.oh; ++oy) {
        const int iy = oy * g.stride - g.pad + kh_off;
        if (iy < 0 || iy >= g.h) {
          icell += g.ow;
          continue;
        }
        float* orow = img + static_cast<std::size_t>(iy) * g.w;
        for (int ox = 0; ox < g.ow; ++ox) {
          const int ix = ox * g.stride - g.pad + kw_off;
          const float v = *icell++;
          if (ix >= 0 && ix < g.w) orow[ix] += v;
        }
      }
    }
  }
}

// One (sample, out-channel) output row per task: bias broadcast, then a
// saxpy per nonzero weight. The zero-weight skip only changes measured
// time, never results.
void conv_forward_tasks(const float* weight, const float* bias,
                        const float* cols, float* out, int out_c, int ckk,
                        int cols_per_sample, int batch_cols, std::int64_t t0,
                        std::int64_t t1) {
  for (std::int64_t t = t0; t < t1; ++t) {
    const int n = static_cast<int>(t / out_c);
    const int oc = static_cast<int>(t % out_c);
    float* orow =
        out + (static_cast<std::size_t>(n) * out_c + oc) * cols_per_sample;
    std::fill(orow, orow + cols_per_sample, bias[oc]);
    const float* wrow = weight + static_cast<std::size_t>(oc) * ckk;
    for (int kk = 0; kk < ckk; ++kk) {
      const float wv = wrow[kk];
      if (wv == 0.0f) continue;
      const float* crow = cols + static_cast<std::size_t>(kk) * batch_cols +
                          static_cast<std::size_t>(n) * cols_per_sample;
      for (int j = 0; j < cols_per_sample; ++j) orow[j] += wv * crow[j];
    }
  }
}

// Weight/bias gradient accumulation for out-channels [oc0, oc1): the batch
// loop stays innermost and ascending with double accumulators, matching the
// serial accumulation order bit for bit.
void conv_backward_wgrad(const float* grad_out, const float* cols,
                         float* weight_grad, float* bias_grad, int n,
                         int out_c, int ckk, int ohw, int batch_cols, int oc0,
                         int oc1) {
  for (int oc = oc0; oc < oc1; ++oc) {
    float* wrow = weight_grad + static_cast<std::size_t>(oc) * ckk;
    for (int s = 0; s < n; ++s) {
      const float* grow =
          grad_out + (static_cast<std::size_t>(s) * out_c + oc) * ohw;
      double acc = 0.0;
      for (int j = 0; j < ohw; ++j) acc += grow[j];
      bias_grad[oc] += static_cast<float>(acc);
      // grad_W(OC x ckk) += g(OC x ohw) @ cols_slice^T(ohw x ckk)
      for (int kk = 0; kk < ckk; ++kk) {
        const float* crow = cols + static_cast<std::size_t>(kk) * batch_cols +
                            static_cast<std::size_t>(s) * ohw;
        double wacc = 0.0;
        for (int j = 0; j < ohw; ++j) wacc += grow[j] * crow[j];
        wrow[kk] += static_cast<float>(wacc);
      }
    }
  }
}

// Column-gradient slices for samples [n0, n1):
// grad_cols_slice(ckk x ohw) = W^T(ckk x OC) @ g(OC x ohw).
void conv_backward_colgrad(const float* grad_out, const float* weight,
                           float* grad_cols, int out_c, int ckk, int ohw,
                           int batch_cols, int n0, int n1) {
  for (int n = n0; n < n1; ++n) {
    const float* g_slice =
        grad_out + static_cast<std::size_t>(n) * out_c * ohw;
    for (int kk = 0; kk < ckk; ++kk) {
      float* gc = grad_cols + static_cast<std::size_t>(kk) * batch_cols +
                  static_cast<std::size_t>(n) * ohw;
      std::fill(gc, gc + ohw, 0.0f);
      for (int oc = 0; oc < out_c; ++oc) {
        const float wv = weight[static_cast<std::size_t>(oc) * ckk + kk];
        if (wv == 0.0f) continue;
        const float* grow = g_slice + static_cast<std::size_t>(oc) * ohw;
        for (int j = 0; j < ohw; ++j) gc[j] += wv * grow[j];
      }
    }
  }
}

}  // namespace

const Backend& scalar_backend() {
  static const Backend kScalar{
      "scalar",          gemm_rows,           im2col_rows,
      col2im_channels,   conv_forward_tasks,  conv_backward_wgrad,
      conv_backward_colgrad,
  };
  return kScalar;
}

}  // namespace a3cs::tensor::backend
