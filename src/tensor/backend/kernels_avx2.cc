// AVX2/FMA kernel backend. This TU is the ONLY one compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt, enforced by the
// arch-intrinsics-scoped lint rule); when the toolchain lacks the flags the
// A3CS_BACKEND_AVX2_TU define is absent and the stub at the bottom reports
// the backend unavailable. Registration is additionally gated at runtime on
// __builtin_cpu_supports("avx2"/"fma"), so a binary built here still runs
// (on the scalar backend) on older x86 hosts.
//
// Numerics: deterministic at every thread count — shard boundaries come from
// the caller and every per-element reduction runs in a fixed order (kk
// ascending in GEMM, lane-then-horizontal in fixed order for the conv
// gradient dots) — but NOT bit-identical to the scalar backend: FMA fuses
// the multiply-add rounding step and 8-lane sums reorder float addition.
// im2col (pure data movement) and col2im (same per-element add order) ARE
// bit-exact with scalar. Cross-backend agreement is enforced under the ULP
// tolerance of tensor/backend/check.h by tests/backend_check_test.cc.
#include "tensor/backend/backend.h"

#if defined(A3CS_BACKEND_AVX2_TU)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace a3cs::tensor::backend {

namespace {

// 6x16 register tile: 12 ymm accumulators + 2 B lanes + 1 broadcast A value
// = 15 of the 16 ymm registers live across the kk loop, no spills.
constexpr int kMR = 6;   // A rows per micro-tile
constexpr int kNR = 16;  // C columns per micro-tile (two 8-lane vectors)

// Packs op(A)[i0:i0+kMR, :] into kk-major order (kMR consecutive values per
// kk), zero-padding rows past r1 so the micro-kernel never branches on mr.
void pack_a_strip(const float* a, bool trans_a, int a_cols, int i0, int r1,
                  int k, float* dst) {
  for (int kk = 0; kk < k; ++kk) {
    float* drow = dst + static_cast<std::size_t>(kk) * kMR;
    for (int r = 0; r < kMR; ++r) {
      const int i = i0 + r;
      drow[r] = (i < r1)
                    ? (trans_a ? a[static_cast<std::size_t>(kk) * a_cols + i]
                               : a[static_cast<std::size_t>(i) * a_cols + kk])
                    : 0.0f;
    }
  }
}

// Packs op(B)[:, j0:j0+kNR] into kk-major order (kNR consecutive values per
// kk), zero-padding columns past n. Unifies the trans_b cases: the micro-
// kernel always streams two contiguous 8-lane loads per kk.
void pack_b_panel(const float* b, bool trans_b, int b_cols, int j0, int n,
                  int k, float* dst) {
  const int nr = std::min(kNR, n - j0);
  if (!trans_b) {
    for (int kk = 0; kk < k; ++kk) {
      const float* brow = b + static_cast<std::size_t>(kk) * b_cols + j0;
      float* drow = dst + static_cast<std::size_t>(kk) * kNR;
      for (int j = 0; j < nr; ++j) drow[j] = brow[j];
      for (int j = nr; j < kNR; ++j) drow[j] = 0.0f;
    }
  } else {
    for (int kk = 0; kk < k; ++kk) {
      float* drow = dst + static_cast<std::size_t>(kk) * kNR;
      for (int j = 0; j < nr; ++j) {
        drow[j] = b[static_cast<std::size_t>(j0 + j) * b_cols + kk];
      }
      for (int j = nr; j < kNR; ++j) drow[j] = 0.0f;
    }
  }
}

// The 6x16 FMA micro-kernel over one packed A strip and one packed B panel.
// 12 explicitly named ymm accumulators (the compiler will not reliably keep
// a __m256[6][2] array in registers) + 2 B lanes + 1 A broadcast = 15 live
// ymm registers across the kk loop. `cr` points at C[i0, j0]; `ldc` is the
// storage row width of C. When beta == 0 the tile never reads C.
inline void micro_6x16(const float* ap, const float* bp, int k, float* cr,
                       int ldc, int mr, int nr, __m256 alpha_v, __m256 beta_v,
                       float alpha, float beta) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (int kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    __m256 av = _mm256_broadcast_ss(ap + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(ap + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(ap + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(ap + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(ap + 4);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(ap + 5);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
    ap += kMR;
    bp += kNR;
  }
  if (mr == kMR && nr == kNR) {
    if (beta == 0.0f) {
      _mm256_storeu_ps(cr, _mm256_mul_ps(alpha_v, c00));
      _mm256_storeu_ps(cr + 8, _mm256_mul_ps(alpha_v, c01));
      cr += ldc;
      _mm256_storeu_ps(cr, _mm256_mul_ps(alpha_v, c10));
      _mm256_storeu_ps(cr + 8, _mm256_mul_ps(alpha_v, c11));
      cr += ldc;
      _mm256_storeu_ps(cr, _mm256_mul_ps(alpha_v, c20));
      _mm256_storeu_ps(cr + 8, _mm256_mul_ps(alpha_v, c21));
      cr += ldc;
      _mm256_storeu_ps(cr, _mm256_mul_ps(alpha_v, c30));
      _mm256_storeu_ps(cr + 8, _mm256_mul_ps(alpha_v, c31));
      cr += ldc;
      _mm256_storeu_ps(cr, _mm256_mul_ps(alpha_v, c40));
      _mm256_storeu_ps(cr + 8, _mm256_mul_ps(alpha_v, c41));
      cr += ldc;
      _mm256_storeu_ps(cr, _mm256_mul_ps(alpha_v, c50));
      _mm256_storeu_ps(cr + 8, _mm256_mul_ps(alpha_v, c51));
    } else {
      const auto blend = [&](float* p, __m256 acc0, __m256 acc1) {
        _mm256_storeu_ps(p, _mm256_fmadd_ps(beta_v, _mm256_loadu_ps(p),
                                            _mm256_mul_ps(alpha_v, acc0)));
        _mm256_storeu_ps(
            p + 8, _mm256_fmadd_ps(beta_v, _mm256_loadu_ps(p + 8),
                                   _mm256_mul_ps(alpha_v, acc1)));
      };
      blend(cr, c00, c01);
      blend(cr + ldc, c10, c11);
      blend(cr + 2 * static_cast<std::size_t>(ldc), c20, c21);
      blend(cr + 3 * static_cast<std::size_t>(ldc), c30, c31);
      blend(cr + 4 * static_cast<std::size_t>(ldc), c40, c41);
      blend(cr + 5 * static_cast<std::size_t>(ldc), c50, c51);
    }
    return;
  }
  // Edge tile: spill the accumulators and apply alpha/beta only to the
  // in-range cells (padded lanes must not touch C).
  alignas(32) float tmp[kMR][kNR];
  _mm256_store_ps(tmp[0], c00);
  _mm256_store_ps(tmp[0] + 8, c01);
  _mm256_store_ps(tmp[1], c10);
  _mm256_store_ps(tmp[1] + 8, c11);
  _mm256_store_ps(tmp[2], c20);
  _mm256_store_ps(tmp[2] + 8, c21);
  _mm256_store_ps(tmp[3], c30);
  _mm256_store_ps(tmp[3] + 8, c31);
  _mm256_store_ps(tmp[4], c40);
  _mm256_store_ps(tmp[4] + 8, c41);
  _mm256_store_ps(tmp[5], c50);
  _mm256_store_ps(tmp[5] + 8, c51);
  for (int r = 0; r < mr; ++r) {
    float* crow = cr + static_cast<std::size_t>(r) * ldc;
    if (beta == 0.0f) {
      for (int j = 0; j < nr; ++j) crow[j] = alpha * tmp[r][j];
    } else {
      for (int j = 0; j < nr; ++j) crow[j] = beta * crow[j] + alpha * tmp[r][j];
    }
  }
}

// C[r0:r1, :] = alpha * op(A)[r0:r1, :] @ op(B) + beta * C[r0:r1, :].
// Per element the reduction is one FMA chain over kk ascending, independent
// of the strip/panel an element lands in, so results do not depend on the
// shard boundaries (= thread count).
void gemm_rows(const float* a, bool trans_a, const float* b, bool trans_b,
               float* c, int r0, int r1, int k, int n, float alpha, float beta,
               int a_cols, int b_cols) {
  if (r1 <= r0 || n <= 0) return;
  if (k <= 0) {
    // Degenerate reduction: C = beta * C (never read C when beta == 0).
    for (int i = r0; i < r1; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * n;
      if (beta == 0.0f) {
        std::fill(crow, crow + n, 0.0f);
      } else {
        for (int j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    return;
  }

  const int rows = r1 - r0;
  const int strips = (rows + kMR - 1) / kMR;
  std::vector<float> packed_a(static_cast<std::size_t>(strips) * k * kMR);
  for (int s = 0; s < strips; ++s) {
    pack_a_strip(a, trans_a, a_cols, r0 + s * kMR, r1, k,
                 packed_a.data() + static_cast<std::size_t>(s) * k * kMR);
  }
  std::vector<float> packed_b(static_cast<std::size_t>(k) * kNR);

  const __m256 alpha_v = _mm256_set1_ps(alpha);
  const __m256 beta_v = _mm256_set1_ps(beta);
  for (int j0 = 0; j0 < n; j0 += kNR) {
    const int nr = std::min(kNR, n - j0);
    pack_b_panel(b, trans_b, b_cols, j0, n, k, packed_b.data());
    for (int s = 0; s < strips; ++s) {
      const int i0 = r0 + s * kMR;
      const int mr = std::min(kMR, r1 - i0);
      micro_6x16(packed_a.data() + static_cast<std::size_t>(s) * k * kMR,
                 packed_b.data(), k, c + static_cast<std::size_t>(i0) * n + j0,
                 n, mr, nr, alpha_v, beta_v, alpha, beta);
    }
  }
}

// im2col rows. Pure data movement, bit-exact with scalar. The stride==1 fast
// path turns the gather of each output row segment into prefix-zeros, one
// contiguous copy and suffix-zeros.
void im2col_rows(const float* in, const ConvGeometry& g, float* out, int cr0,
                 int cr1) {
  const int hw = g.h * g.w;
  const int ohw = g.oh * g.ow;
  const int col_cols = g.n * ohw;
  for (int cr = cr0; cr < cr1; ++cr) {
    const int kw_off = cr % g.kw;
    const int kh_off = (cr / g.kw) % g.kh;
    const int ch = cr / (g.kw * g.kh);
    float* orow = out + static_cast<std::size_t>(cr) * col_cols;
    // Valid ox range for stride==1: 0 <= ox - pad + kw_off < w.
    const int x_lo = std::max(0, g.pad - kw_off);
    const int x_hi = std::min(g.ow, g.w + g.pad - kw_off);
    for (int n = 0; n < g.n; ++n) {
      const float* img = in + (static_cast<std::size_t>(n) * g.c + ch) * hw;
      float* ocell = orow + static_cast<std::size_t>(n) * ohw;
      for (int oy = 0; oy < g.oh; ++oy) {
        const int iy = oy * g.stride - g.pad + kh_off;
        if (iy < 0 || iy >= g.h) {
          std::fill(ocell, ocell + g.ow, 0.0f);
          ocell += g.ow;
          continue;
        }
        const float* irow = img + static_cast<std::size_t>(iy) * g.w;
        if (g.stride == 1) {
          if (x_lo > 0) std::fill(ocell, ocell + std::min(x_lo, g.ow), 0.0f);
          if (x_hi > x_lo) {
            std::memcpy(ocell + x_lo, irow + (x_lo - g.pad + kw_off),
                        static_cast<std::size_t>(x_hi - x_lo) * sizeof(float));
          }
          if (x_hi < g.ow) {
            std::fill(ocell + std::max(x_hi, 0), ocell + g.ow, 0.0f);
          }
          ocell += g.ow;
        } else {
          for (int ox = 0; ox < g.ow; ++ox) {
            const int ix = ox * g.stride - g.pad + kw_off;
            *ocell++ = (ix < 0 || ix >= g.w) ? 0.0f : irow[ix];
          }
        }
      }
    }
  }
}

// col2im channels. Bit-exact with scalar: every image cell receives its adds
// in the same ascending column-row order; the stride==1 middle segment is an
// elementwise 8-lane vector add, which does not reorder any per-cell sum.
void col2im_channels(const float* in, const ConvGeometry& g, float* out,
                     int c0, int c1) {
  const int hw = g.h * g.w;
  const int ohw = g.oh * g.ow;
  const int col_cols = g.n * ohw;
  const int khw = g.kh * g.kw;
  for (int cr = c0 * khw; cr < c1 * khw; ++cr) {
    const int kw_off = cr % g.kw;
    const int kh_off = (cr / g.kw) % g.kh;
    const int ch = cr / (g.kw * g.kh);
    const float* irow = in + static_cast<std::size_t>(cr) * col_cols;
    const int x_lo = std::max(0, g.pad - kw_off);
    const int x_hi = std::min(g.ow, g.w + g.pad - kw_off);
    for (int n = 0; n < g.n; ++n) {
      float* img = out + (static_cast<std::size_t>(n) * g.c + ch) * hw;
      const float* icell = irow + static_cast<std::size_t>(n) * ohw;
      for (int oy = 0; oy < g.oh; ++oy) {
        const int iy = oy * g.stride - g.pad + kh_off;
        if (iy < 0 || iy >= g.h) {
          icell += g.ow;
          continue;
        }
        float* orow = img + static_cast<std::size_t>(iy) * g.w;
        if (g.stride == 1 && x_hi > x_lo) {
          float* dst = orow + (x_lo - g.pad + kw_off);
          const float* src = icell + x_lo;
          const int len = x_hi - x_lo;
          int j = 0;
          for (; j + 8 <= len; j += 8) {
            _mm256_storeu_ps(dst + j, _mm256_add_ps(_mm256_loadu_ps(dst + j),
                                                    _mm256_loadu_ps(src + j)));
          }
          for (; j < len; ++j) dst[j] += src[j];
          icell += g.ow;
        } else {
          for (int ox = 0; ox < g.ow; ++ox) {
            const int ix = ox * g.stride - g.pad + kw_off;
            const float v = *icell++;
            if (ix >= 0 && ix < g.w) orow[ix] += v;
          }
        }
      }
    }
  }
}

// FMA saxpy: y[0:len] += a * x[0:len].
inline void saxpy_fma(float a, const float* x, float* y, int len) {
  const __m256 av = _mm256_set1_ps(a);
  int j = 0;
  for (; j + 8 <= len; j += 8) {
    _mm256_storeu_ps(
        y + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + j),
                               _mm256_loadu_ps(y + j)));
  }
  for (; j < len; ++j) y[j] += a * x[j];
}

// sum_j x[j] in double precision: float values widened lane-wise into four
// double accumulators, combined in a fixed order (so the result is
// shard-independent), scalar tail last.
inline double sum_pd(const float* x, int len) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int j = 0;
  for (; j + 8 <= len; j += 8) {
    const __m256 v = _mm256_loadu_ps(x + j);
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, _mm256_add_pd(acc0, acc1));
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; j < len; ++j) sum += static_cast<double>(x[j]);
  return sum;
}

// sum_j x[j]*y[j] with float products widened into double accumulators,
// matching the scalar backend's float-multiply-then-widen per element.
inline double dot_pd(const float* x, const float* y, int len) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int j = 0;
  for (; j + 8 <= len; j += 8) {
    const __m256 p =
        _mm256_mul_ps(_mm256_loadu_ps(x + j), _mm256_loadu_ps(y + j));
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(p)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(p, 1)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, _mm256_add_pd(acc0, acc1));
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; j < len; ++j) sum += static_cast<double>(x[j] * y[j]);
  return sum;
}

// Conv forward: bias broadcast then one fused saxpy per nonzero weight.
void conv_forward_tasks(const float* weight, const float* bias,
                        const float* cols, float* out, int out_c, int ckk,
                        int cols_per_sample, int batch_cols, std::int64_t t0,
                        std::int64_t t1) {
  for (std::int64_t t = t0; t < t1; ++t) {
    const int n = static_cast<int>(t / out_c);
    const int oc = static_cast<int>(t % out_c);
    float* orow =
        out + (static_cast<std::size_t>(n) * out_c + oc) * cols_per_sample;
    std::fill(orow, orow + cols_per_sample, bias[oc]);
    const float* wrow = weight + static_cast<std::size_t>(oc) * ckk;
    for (int kk = 0; kk < ckk; ++kk) {
      const float wv = wrow[kk];
      if (wv == 0.0f) continue;
      const float* crow = cols + static_cast<std::size_t>(kk) * batch_cols +
                          static_cast<std::size_t>(n) * cols_per_sample;
      saxpy_fma(wv, crow, orow, cols_per_sample);
    }
  }
}

// Conv weight/bias gradients: vectorized double-accumulator dots, batch
// ascending innermost like the scalar backend.
void conv_backward_wgrad(const float* grad_out, const float* cols,
                         float* weight_grad, float* bias_grad, int n,
                         int out_c, int ckk, int ohw, int batch_cols, int oc0,
                         int oc1) {
  for (int oc = oc0; oc < oc1; ++oc) {
    float* wrow = weight_grad + static_cast<std::size_t>(oc) * ckk;
    for (int s = 0; s < n; ++s) {
      const float* grow =
          grad_out + (static_cast<std::size_t>(s) * out_c + oc) * ohw;
      bias_grad[oc] += static_cast<float>(sum_pd(grow, ohw));
      for (int kk = 0; kk < ckk; ++kk) {
        const float* crow = cols + static_cast<std::size_t>(kk) * batch_cols +
                            static_cast<std::size_t>(s) * ohw;
        wrow[kk] += static_cast<float>(dot_pd(grow, crow, ohw));
      }
    }
  }
}

// Conv column gradient: zero-fill then one fused saxpy per nonzero weight.
void conv_backward_colgrad(const float* grad_out, const float* weight,
                           float* grad_cols, int out_c, int ckk, int ohw,
                           int batch_cols, int n0, int n1) {
  for (int n = n0; n < n1; ++n) {
    const float* g_slice =
        grad_out + static_cast<std::size_t>(n) * out_c * ohw;
    for (int kk = 0; kk < ckk; ++kk) {
      float* gc = grad_cols + static_cast<std::size_t>(kk) * batch_cols +
                  static_cast<std::size_t>(n) * ohw;
      std::fill(gc, gc + ohw, 0.0f);
      for (int oc = 0; oc < out_c; ++oc) {
        const float wv = weight[static_cast<std::size_t>(oc) * ckk + kk];
        if (wv == 0.0f) continue;
        saxpy_fma(wv, g_slice + static_cast<std::size_t>(oc) * ohw, gc, ohw);
      }
    }
  }
}

}  // namespace

const Backend* avx2_backend() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  static const bool supported = false;
#endif
  if (!supported) return nullptr;
  static const Backend kAvx2{
      "avx2",            gemm_rows,           im2col_rows,
      col2im_channels,   conv_forward_tasks,  conv_backward_wgrad,
      conv_backward_colgrad,
  };
  return &kAvx2;
}

}  // namespace a3cs::tensor::backend

#else  // !A3CS_BACKEND_AVX2_TU

namespace a3cs::tensor::backend {

// Toolchain without AVX2/FMA support: the backend is never available.
const Backend* avx2_backend() { return nullptr; }

}  // namespace a3cs::tensor::backend

#endif
