#include "tensor/backend/backend.h"

#include <atomic>

#include "util/config.h"
#include "util/logging.h"

namespace a3cs::tensor::backend {

namespace {

// The active-backend slot. Function-local so first use from any TU is safe;
// atomic so a bench thread swapping backends at a phase boundary is a data
// race-free publish (kernel shards only ever load it).
std::atomic<const Backend*>& active_slot() {
  static std::atomic<const Backend*> slot{nullptr};
  return slot;
}

const Backend* resolve(const std::string& name) {
  if (name == "scalar") return &scalar_backend();
  if (name == "avx2") return avx2_backend();
  if (name == "auto") {
    if (const Backend* b = avx2_backend()) return b;
    return &scalar_backend();
  }
  return nullptr;
}

}  // namespace

bool cpu_supports_avx2() { return avx2_backend() != nullptr; }

const Backend& active() {
  const Backend* b = active_slot().load(std::memory_order_acquire);
  if (b == nullptr) {
    select_from_env();
    b = active_slot().load(std::memory_order_acquire);
  }
  return *b;
}

bool select(const std::string& name) {
  const Backend* b = resolve(name);
  if (b == nullptr) return false;
  active_slot().store(b, std::memory_order_release);
  return true;
}

void select_from_env() {
  const std::string raw = util::env_string("A3CS_BACKEND", "scalar");
  const Backend* b = resolve(raw);
  if (b == nullptr) {
    A3CS_LOG(WARN) << "A3CS_BACKEND=" << raw
                   << (raw == "avx2" ? " unsupported on this host"
                                     : " unknown (want scalar|avx2|auto)")
                   << "; falling back to scalar";
    b = &scalar_backend();
  }
  active_slot().store(b, std::memory_order_release);
}

std::vector<std::string> available_names() {
  std::vector<std::string> names{"scalar"};
  if (avx2_backend() != nullptr) names.emplace_back("avx2");
  return names;
}

ScopedBackend::ScopedBackend(const Backend& b)
    : prev_(active_slot().load(std::memory_order_acquire)) {
  if (prev_ == nullptr) prev_ = &scalar_backend();
  active_slot().store(&b, std::memory_order_release);
}

ScopedBackend::~ScopedBackend() {
  active_slot().store(prev_, std::memory_order_release);
}

}  // namespace a3cs::tensor::backend
