// Pluggable kernel backends for the tensor/nn hot paths.
//
// A Backend is a table of SHARD-LEVEL kernel functions: each entry computes
// one contiguous shard of a parallel region (a GEMM row panel, a span of
// im2col column-rows, a channel range of col2im, a task range of the conv
// forward/backward fan-outs). The parallel orchestration — shard boundaries,
// grains, work counters, profiling scopes — stays in tensor/ops.cc and
// nn/layers.cc and is IDENTICAL for every backend, so the determinism
// contract of docs/PERFORMANCE.md (fixed contiguous shards, disjoint writes,
// fixed reduction order) holds per backend at every thread count.
//
// Two backends exist:
//  - "scalar": the blocked 4x8 register-tile kernels, compiled with the
//    portable baseline flags. This is the DEFAULT and is bit-exact with the
//    pre-backend code: same instructions, same reduction order, same results.
//  - "avx2":   256-bit AVX2/FMA kernels (packed 6x16 GEMM micro-kernel,
//    vectorized im2col/col2im, fused conv inner loops), compiled per-TU with
//    -mavx2 -mfma and registered only when the host CPU supports both.
//    Deterministic across thread counts, but NOT bit-identical to scalar:
//    FMA contracts the multiply-add rounding step and the vectorized
//    reductions reorder float sums. Cross-backend agreement is enforced
//    under a documented ULP tolerance by tests/backend_check_test.cc via
//    tensor/backend/check.h.
//
// Selection: A3CS_BACKEND={scalar,avx2,auto} (default scalar). "auto" picks
// the fastest backend the CPU supports; asking for avx2 on a host without
// AVX2+FMA warns and falls back to scalar. Programmatic override via
// select() / ScopedBackend (benches sweep the backend dimension with it).
#pragma once

#include <string>
#include <vector>

#include "tensor/ops.h"

namespace a3cs::tensor::backend {

// Shard-level kernel table. All pointers are non-null in a registered
// backend. Contracts (shared by every implementation):
//
//  gemm_rows: C[r0:r1, :] = alpha * op(A)[r0:r1, :] @ op(B) + beta * C[...],
//    row-major, a_cols/b_cols are the storage row widths of A and B. Must
//    not read C when beta == 0 (C may be uninitialized). k == 0 degenerates
//    to C = beta * C.
//  im2col_rows: fill column-matrix rows [cr0, cr1) (each row is one
//    (channel, ky, kx) triple) from the NCHW input. Pure data movement —
//    bit-exact across backends.
//  col2im_channels: scatter-add column rows of channels [c0, c1) into the
//    pre-zeroed NCHW gradient image, ascending column-row order per channel.
//  conv_forward_tasks: compute conv output tasks [t0, t1) where task
//    t = n * out_c + oc is one (sample, out-channel) output row:
//    out_row = bias[oc] + W[oc, :] @ cols[:, n-slice].
//  conv_backward_wgrad: accumulate (+=) weight rows and bias entries for
//    out-channels [oc0, oc1) from grad_out and the cached columns, batch
//    ascending innermost.
//  conv_backward_colgrad: write grad_cols column slices for samples
//    [n0, n1): gc_slice = W^T @ grad_out_slice (overwrites, no +=).
struct Backend {
  const char* name;

  void (*gemm_rows)(const float* a, bool trans_a, const float* b, bool trans_b,
                    float* c, int r0, int r1, int k, int n, float alpha,
                    float beta, int a_cols, int b_cols);

  void (*im2col_rows)(const float* in, const ConvGeometry& g, float* out,
                      int cr0, int cr1);

  void (*col2im_channels)(const float* cols, const ConvGeometry& g, float* out,
                          int c0, int c1);

  void (*conv_forward_tasks)(const float* weight, const float* bias,
                             const float* cols, float* out, int out_c, int ckk,
                             int cols_per_sample, int batch_cols,
                             std::int64_t t0, std::int64_t t1);

  void (*conv_backward_wgrad)(const float* grad_out, const float* cols,
                              float* weight_grad, float* bias_grad, int n,
                              int out_c, int ckk, int ohw, int batch_cols,
                              int oc0, int oc1);

  void (*conv_backward_colgrad)(const float* grad_out, const float* weight,
                                float* grad_cols, int out_c, int ckk, int ohw,
                                int batch_cols, int n0, int n1);
};

// The portable blocked-scalar reference backend (always available).
const Backend& scalar_backend();

// The AVX2/FMA backend, or nullptr when the TU was compiled without AVX2
// support or the running CPU lacks avx2/fma.
const Backend* avx2_backend();

// True when the running CPU (and the build) can execute the avx2 backend.
bool cpu_supports_avx2();

// The active backend. First call resolves A3CS_BACKEND; later calls are a
// single relaxed atomic load.
const Backend& active();

// Selects a backend by name ("scalar", "avx2", "auto"). Returns false (and
// leaves the active backend unchanged) for unknown or unsupported names.
bool select(const std::string& name);

// Re-reads A3CS_BACKEND and applies it (unknown/unsupported values warn and
// fall back to scalar, mirroring the env handling of obs::ObsConfig).
void select_from_env();

// Names of the backends usable on this host, scalar first.
std::vector<std::string> available_names();

// RAII backend override for benches and the cross-backend checker.
class ScopedBackend {
 public:
  explicit ScopedBackend(const Backend& b);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  const Backend* prev_;
};

}  // namespace a3cs::tensor::backend
