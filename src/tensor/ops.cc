#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace a3cs::tensor {

void gemm_raw(const float* a, bool trans_a, const float* b, bool trans_b,
              float* c, int m, int k, int n, float alpha, float beta) {
  // Storage row widths of A and B as laid out in memory.
  const int a_cols = trans_a ? m : k;
  const int b_cols = trans_b ? k : n;

  if (beta == 0.0f) {
    std::fill(c, c + static_cast<std::size_t>(m) * n, 0.0f);
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(m) * n; ++i) {
      c[i] *= beta;
    }
  }

  // i-k-j loop order: the inner loop is a saxpy over contiguous B rows /
  // C rows, which vectorizes well for the row-major no-transpose case.
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float aval =
          alpha * (trans_a ? a[static_cast<std::size_t>(kk) * a_cols + i]
                           : a[static_cast<std::size_t>(i) * a_cols + kk]);
      if (aval == 0.0f) continue;
      if (!trans_b) {
        const float* brow = b + static_cast<std::size_t>(kk) * b_cols;
        for (int j = 0; j < n; ++j) crow[j] += aval * brow[j];
      } else {
        for (int j = 0; j < n; ++j) {
          crow[j] += aval * b[static_cast<std::size_t>(j) * b_cols + kk];
        }
      }
    }
  }
}

void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha, float beta) {
  A3CS_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2 &&
                 c.shape().rank() == 2,
             "gemm requires matrices");
  const int a_rows = a.shape()[0], a_cols = a.shape()[1];
  const int b_rows = b.shape()[0], b_cols = b.shape()[1];
  const int m = trans_a ? a_cols : a_rows;
  const int k = trans_a ? a_rows : a_cols;
  const int kb = trans_b ? b_cols : b_rows;
  const int n = trans_b ? b_rows : b_cols;
  A3CS_CHECK(k == kb, "gemm inner dimension mismatch");
  A3CS_CHECK(c.shape()[0] == m && c.shape()[1] == n,
             "gemm output shape mismatch");
  gemm_raw(a.data(), trans_a, b.data(), trans_b, c.data(), m, k, n, alpha,
           beta);
}

ConvGeometry ConvGeometry::make(const Shape& input, int kh, int kw, int stride,
                                int pad) {
  A3CS_CHECK(input.rank() == 4, "conv input must be NCHW");
  A3CS_CHECK(stride >= 1, "conv stride must be >= 1");
  ConvGeometry g;
  g.n = input[0];
  g.c = input[1];
  g.h = input[2];
  g.w = input[3];
  g.kh = kh;
  g.kw = kw;
  g.stride = stride;
  g.pad = pad;
  g.oh = (g.h + 2 * pad - kh) / stride + 1;
  g.ow = (g.w + 2 * pad - kw) / stride + 1;
  A3CS_CHECK(g.oh > 0 && g.ow > 0, "conv output is empty");
  return g;
}

void im2col(const Tensor& input, const ConvGeometry& g, Tensor& cols) {
  const int col_rows = g.c * g.kh * g.kw;
  const int col_cols = g.n * g.oh * g.ow;
  A3CS_CHECK(cols.shape() == Shape::mat(col_rows, col_cols),
             "im2col output shape mismatch");
  const float* in = input.data();
  float* out = cols.data();
  const int hw = g.h * g.w;
  const int ohw = g.oh * g.ow;
  for (int cr = 0; cr < col_rows; ++cr) {
    const int kw_off = cr % g.kw;
    const int kh_off = (cr / g.kw) % g.kh;
    const int ch = cr / (g.kw * g.kh);
    float* orow = out + static_cast<std::size_t>(cr) * col_cols;
    for (int n = 0; n < g.n; ++n) {
      const float* img = in + (static_cast<std::size_t>(n) * g.c + ch) * hw;
      float* ocell = orow + static_cast<std::size_t>(n) * ohw;
      for (int oy = 0; oy < g.oh; ++oy) {
        const int iy = oy * g.stride - g.pad + kh_off;
        if (iy < 0 || iy >= g.h) {
          std::fill(ocell, ocell + g.ow, 0.0f);
          ocell += g.ow;
          continue;
        }
        const float* irow = img + static_cast<std::size_t>(iy) * g.w;
        for (int ox = 0; ox < g.ow; ++ox) {
          const int ix = ox * g.stride - g.pad + kw_off;
          *ocell++ = (ix < 0 || ix >= g.w) ? 0.0f : irow[ix];
        }
      }
    }
  }
}

void col2im(const Tensor& cols, const ConvGeometry& g, Tensor& grad_input) {
  const int col_rows = g.c * g.kh * g.kw;
  const int col_cols = g.n * g.oh * g.ow;
  A3CS_CHECK(cols.shape() == Shape::mat(col_rows, col_cols),
             "col2im input shape mismatch");
  A3CS_CHECK(grad_input.shape() == Shape::nchw(g.n, g.c, g.h, g.w),
             "col2im output shape mismatch");
  grad_input.zero();
  const float* in = cols.data();
  float* out = grad_input.data();
  const int hw = g.h * g.w;
  const int ohw = g.oh * g.ow;
  for (int cr = 0; cr < col_rows; ++cr) {
    const int kw_off = cr % g.kw;
    const int kh_off = (cr / g.kw) % g.kh;
    const int ch = cr / (g.kw * g.kh);
    const float* irow = in + static_cast<std::size_t>(cr) * col_cols;
    for (int n = 0; n < g.n; ++n) {
      float* img = out + (static_cast<std::size_t>(n) * g.c + ch) * hw;
      const float* icell = irow + static_cast<std::size_t>(n) * ohw;
      for (int oy = 0; oy < g.oh; ++oy) {
        const int iy = oy * g.stride - g.pad + kh_off;
        if (iy < 0 || iy >= g.h) {
          icell += g.ow;
          continue;
        }
        float* orow = img + static_cast<std::size_t>(iy) * g.w;
        for (int ox = 0; ox < g.ow; ++ox) {
          const int ix = ox * g.stride - g.pad + kw_off;
          const float v = *icell++;
          if (ix >= 0 && ix < g.w) orow[ix] += v;
        }
      }
    }
  }
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  A3CS_CHECK(logits.shape().rank() == 2, "softmax_rows requires a matrix");
  A3CS_CHECK(probs.shape() == logits.shape(), "softmax output shape mismatch");
  const int rows = logits.shape()[0], cols = logits.shape()[1];
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::size_t>(r) * cols;
    float* out = probs.data() + static_cast<std::size_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - mx);
      sum += out[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < cols; ++c) out[c] *= inv;
  }
}

void log_softmax_rows(const Tensor& logits, Tensor& log_probs) {
  A3CS_CHECK(logits.shape().rank() == 2, "log_softmax_rows requires a matrix");
  A3CS_CHECK(log_probs.shape() == logits.shape(),
             "log_softmax output shape mismatch");
  const int rows = logits.shape()[0], cols = logits.shape()[1];
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::size_t>(r) * cols;
    float* out = log_probs.data() + static_cast<std::size_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) sum += std::exp(in[c] - mx);
    const float lse = mx + static_cast<float>(std::log(sum));
    for (int c = 0; c < cols; ++c) out[c] = in[c] - lse;
  }
}

std::int64_t argmax(const Tensor& t) {
  A3CS_CHECK(t.numel() > 0, "argmax of empty tensor");
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < t.numel(); ++i) {
    if (t[i] > t[best]) best = i;
  }
  return best;
}

}  // namespace a3cs::tensor
