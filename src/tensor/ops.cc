#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "obs/perf/work_counters.h"
#include "obs/profile.h"
#include "tensor/backend/backend.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace a3cs::tensor {

namespace {

// Row-panel grain for the parallel GEMM decomposition and the minimum
// m*k*n below which a GEMM is not worth scheduling. Both are fixed
// constants: shard boundaries must depend only on the problem shape, and
// they are shared by every kernel backend (the backend computes shards, the
// orchestration here cuts them — see tensor/backend/backend.h).
constexpr int kGemmRowGrain = 16;
constexpr std::int64_t kGemmMinParallelWork = 1 << 16;

}  // namespace

void gemm_raw(const float* a, bool trans_a, const float* b, bool trans_b,
              float* c, int m, int k, int n, float alpha, float beta) {
  // Storage row widths of A and B as laid out in memory.
  const int a_cols = trans_a ? m : k;
  const int b_cols = trans_b ? k : n;
  if (m <= 0 || n <= 0) return;
  A3CS_PROF_SCOPE("gemm");
  {
    // Analytic work model: one FMA (2 flops) per (m,k,n) element; A and B
    // each read once, C written once (float32).
    static obs::perf::WorkCounters& wc = obs::perf::WorkCounters::named("gemm");
    const std::int64_t mk = static_cast<std::int64_t>(m) * std::max(0, k);
    const std::int64_t kn = static_cast<std::int64_t>(std::max(0, k)) * n;
    const std::int64_t mn = static_cast<std::int64_t>(m) * n;
    wc.add(2 * mk * n, 4 * (mk + kn), 4 * mn);
  }
  // Resolve the kernel backend once per call so every shard of this region
  // runs the same kernels even if another thread re-selects concurrently.
  const backend::Backend& be = backend::active();
  if (k <= 0) {
    // Degenerate reduction: C = beta * C.
    be.gemm_rows(a, trans_a, b, trans_b, c, 0, m, 0, n, alpha, beta, a_cols,
                 b_cols);
    return;
  }

  const std::int64_t work =
      static_cast<std::int64_t>(m) * k * n;
  if (work < kGemmMinParallelWork) {
    be.gemm_rows(a, trans_a, b, trans_b, c, 0, m, k, n, alpha, beta, a_cols,
                 b_cols);
    return;
  }
  util::parallel_for(
      0, m, kGemmRowGrain,
      [&](std::int64_t row0, std::int64_t row1) {
        be.gemm_rows(a, trans_a, b, trans_b, c, static_cast<int>(row0),
                     static_cast<int>(row1), k, n, alpha, beta, a_cols,
                     b_cols);
      },
      "gemm");
}

void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha, float beta) {
  A3CS_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2 &&
                 c.shape().rank() == 2,
             "gemm requires matrices");
  const int a_rows = a.shape()[0], a_cols = a.shape()[1];
  const int b_rows = b.shape()[0], b_cols = b.shape()[1];
  const int m = trans_a ? a_cols : a_rows;
  const int k = trans_a ? a_rows : a_cols;
  const int kb = trans_b ? b_cols : b_rows;
  const int n = trans_b ? b_rows : b_cols;
  A3CS_CHECK(k == kb, "gemm inner dimension mismatch");
  A3CS_CHECK(c.shape()[0] == m && c.shape()[1] == n,
             "gemm output shape mismatch");
  gemm_raw(a.data(), trans_a, b.data(), trans_b, c.data(), m, k, n, alpha,
           beta);
}

ConvGeometry ConvGeometry::make(const Shape& input, int kh, int kw, int stride,
                                int pad) {
  A3CS_CHECK(input.rank() == 4, "conv input must be NCHW");
  A3CS_CHECK(stride >= 1, "conv stride must be >= 1");
  ConvGeometry g;
  g.n = input[0];
  g.c = input[1];
  g.h = input[2];
  g.w = input[3];
  g.kh = kh;
  g.kw = kw;
  g.stride = stride;
  g.pad = pad;
  g.oh = (g.h + 2 * pad - kh) / stride + 1;
  g.ow = (g.w + 2 * pad - kw) / stride + 1;
  A3CS_CHECK(g.oh > 0 && g.ow > 0, "conv output is empty");
  return g;
}

void im2col(const Tensor& input, const ConvGeometry& g, Tensor& cols) {
  const int col_rows = g.c * g.kh * g.kw;
  const int col_cols = g.n * g.oh * g.ow;
  A3CS_CHECK(cols.shape() == Shape::mat(col_rows, col_cols),
             "im2col output shape mismatch");
  A3CS_PROF_SCOPE("im2col");
  {
    // Pure data movement: every output cell is one gather (or zero fill);
    // the input is touched ~kh*kw times through the sliding windows.
    static obs::perf::WorkCounters& wc =
        obs::perf::WorkCounters::named("im2col");
    const std::int64_t cells =
        static_cast<std::int64_t>(col_rows) * col_cols;
    wc.add(0, 4 * cells, 4 * cells);
  }
  const float* in = input.data();
  float* out = cols.data();
  // Each output row belongs to exactly one (channel, ky, kx) triple, so the
  // rows can be filled independently. Grain is derived from the row width
  // only, keeping shard boundaries thread-count independent.
  const backend::Backend& be = backend::active();
  const std::int64_t grain =
      std::max<std::int64_t>(1, 32768 / std::max(1, col_cols));
  util::parallel_for(
      0, col_rows, grain,
      [&](std::int64_t cr0, std::int64_t cr1) {
        be.im2col_rows(in, g, out, static_cast<int>(cr0),
                       static_cast<int>(cr1));
      },
      "im2col");
}

void col2im(const Tensor& cols, const ConvGeometry& g, Tensor& grad_input) {
  const int col_rows = g.c * g.kh * g.kw;
  const int col_cols = g.n * g.oh * g.ow;
  A3CS_CHECK(cols.shape() == Shape::mat(col_rows, col_cols),
             "col2im input shape mismatch");
  A3CS_PROF_SCOPE("col2im");
  {
    // Scatter-accumulate: one add per column cell back into the image.
    static obs::perf::WorkCounters& wc =
        obs::perf::WorkCounters::named("col2im");
    const std::int64_t cells =
        static_cast<std::int64_t>(col_rows) * col_cols;
    wc.add(cells, 4 * cells, 4 * cells);
  }
  A3CS_CHECK(grad_input.shape() == Shape::nchw(g.n, g.c, g.h, g.w),
             "col2im output shape mismatch");
  grad_input.zero();
  const float* in = cols.data();
  float* out = grad_input.data();
  // The scatter-add overlaps between kernel offsets of the SAME channel but
  // never across channels, so channels are the race-free unit of work. Each
  // shard walks its channels' column rows in the same ascending order as the
  // serial loop, keeping the accumulation order bit-exact.
  const backend::Backend& be = backend::active();
  util::parallel_for(
      0, g.c, 1,
      [&](std::int64_t ch0, std::int64_t ch1) {
        be.col2im_channels(in, g, out, static_cast<int>(ch0),
                           static_cast<int>(ch1));
      },
      "col2im");
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  A3CS_CHECK(logits.shape().rank() == 2, "softmax_rows requires a matrix");
  A3CS_CHECK(probs.shape() == logits.shape(), "softmax output shape mismatch");
  const int rows = logits.shape()[0], cols = logits.shape()[1];
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::size_t>(r) * cols;
    float* out = probs.data() + static_cast<std::size_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - mx);
      sum += out[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < cols; ++c) out[c] *= inv;
  }
}

void log_softmax_rows(const Tensor& logits, Tensor& log_probs) {
  A3CS_CHECK(logits.shape().rank() == 2, "log_softmax_rows requires a matrix");
  A3CS_CHECK(log_probs.shape() == logits.shape(),
             "log_softmax output shape mismatch");
  const int rows = logits.shape()[0], cols = logits.shape()[1];
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::size_t>(r) * cols;
    float* out = log_probs.data() + static_cast<std::size_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) sum += std::exp(in[c] - mx);
    const float lse = mx + static_cast<float>(std::log(sum));
    for (int c = 0; c < cols; ++c) out[c] = in[c] - lse;
  }
}

std::int64_t argmax(const Tensor& t) {
  A3CS_CHECK(t.numel() > 0, "argmax of empty tensor");
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < t.numel(); ++i) {
    if (t[i] > t[best]) best = i;
  }
  return best;
}

}  // namespace a3cs::tensor
