#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "obs/perf/work_counters.h"
#include "obs/profile.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace a3cs::tensor {

namespace {

// Register-tile sizes of the blocked GEMM micro-kernel. Per C element the
// reduction always runs kk ascending, so results do not depend on the tile
// sizes or on which shard computed the element. 4x8 = 32 accumulator floats
// fits the baseline-SSE2 register file (16 xmm) without spilling.
constexpr int kMR = 4;  // A rows per micro-tile
constexpr int kNR = 8;  // C columns accumulated in registers

// Row-panel grain for the parallel decomposition (a multiple of kMR) and the
// minimum m*k*n below which a GEMM is not worth scheduling. Both are fixed
// constants: shard boundaries must depend only on the problem shape.
constexpr int kGemmRowGrain = 16;
constexpr std::int64_t kGemmMinParallelWork = 1 << 16;

inline float a_at(const float* a, bool trans_a, int a_cols, int i, int kk) {
  return trans_a ? a[static_cast<std::size_t>(kk) * a_cols + i]
                 : a[static_cast<std::size_t>(i) * a_cols + kk];
}

// Writes an accumulator tile back to C with the alpha/beta scaling applied
// exactly once per output element.
inline void store_tile(const float (*acc)[kNR], float* c, int i0, int j0,
                       int mr, int nr, int n, float alpha, float beta) {
  for (int r = 0; r < mr; ++r) {
    float* crow = c + static_cast<std::size_t>(i0 + r) * n + j0;
    if (beta == 0.0f) {
      for (int j = 0; j < nr; ++j) crow[j] = alpha * acc[r][j];
    } else {
      for (int j = 0; j < nr; ++j) {
        crow[j] = beta * crow[j] + alpha * acc[r][j];
      }
    }
  }
}

// Full kMR x kNR tile of the !trans_b path with COMPILE-TIME loop bounds:
// at -O2 the constant-bound loops fully unroll and the accumulator tile
// lives in registers for the whole kk reduction, so each A value and B row
// segment is reused kMR times and C is touched once instead of k times.
// (Variable-bound edge tiles spill the accumulator and run ~3x slower.)
template <bool TransA>
inline void micro_tile_full(const float* a, const float* b, float* c, int i0,
                            int j0, int k, int n, float alpha, float beta,
                            int a_cols, int b_cols) {
  float acc[kMR][kNR] = {};
  for (int kk = 0; kk < k; ++kk) {
    const float* brow = b + static_cast<std::size_t>(kk) * b_cols + j0;
    for (int r = 0; r < kMR; ++r) {
      const float av = a_at(a, TransA, a_cols, i0 + r, kk);
      for (int j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  store_tile(acc, c, i0, j0, kMR, kNR, n, alpha, beta);
}

// C[r0:r1, :] = alpha * A[r0:r1, :] @ B + beta * C[r0:r1, :].
// Every C element reduces kk ascending on every path (full tiles, edge
// tiles, trans_b dot products), so the result is independent of the tiling
// and of which shard computed it.
void gemm_rows(const float* a, bool trans_a, const float* b, bool trans_b,
               float* c, int r0, int r1, int k, int n, float alpha, float beta,
               int a_cols, int b_cols) {
  for (int i0 = r0; i0 < r1; i0 += kMR) {
    const int mr = std::min(kMR, r1 - i0);
    int j_start = 0;
    if (!trans_b && mr == kMR) {
      // Fast path over the full tiles of this row panel.
      for (; j_start + kNR <= n; j_start += kNR) {
        if (trans_a) {
          micro_tile_full<true>(a, b, c, i0, j_start, k, n, alpha, beta,
                                a_cols, b_cols);
        } else {
          micro_tile_full<false>(a, b, c, i0, j_start, k, n, alpha, beta,
                                 a_cols, b_cols);
        }
      }
      if (j_start == n) continue;
    }
    for (int j0 = j_start; j0 < n; j0 += kNR) {
      const int nr = std::min(kNR, n - j0);
      float acc[kMR][kNR] = {};
      if (!trans_b) {
        for (int kk = 0; kk < k; ++kk) {
          const float* brow = b + static_cast<std::size_t>(kk) * b_cols + j0;
          for (int r = 0; r < mr; ++r) {
            const float av = a_at(a, trans_a, a_cols, i0 + r, kk);
            for (int j = 0; j < nr; ++j) acc[r][j] += av * brow[j];
          }
        }
      } else {
        // B^T case: both reductions run over contiguous rows of A and B.
        for (int j = 0; j < nr; ++j) {
          const float* bcol = b + static_cast<std::size_t>(j0 + j) * b_cols;
          for (int r = 0; r < mr; ++r) {
            float sum = 0.0f;
            if (!trans_a) {
              const float* arow = a + static_cast<std::size_t>(i0 + r) * a_cols;
              for (int kk = 0; kk < k; ++kk) sum += arow[kk] * bcol[kk];
            } else {
              for (int kk = 0; kk < k; ++kk) {
                sum += a_at(a, trans_a, a_cols, i0 + r, kk) * bcol[kk];
              }
            }
            acc[r][j] = sum;
          }
        }
      }
      store_tile(acc, c, i0, j0, mr, nr, n, alpha, beta);
    }
  }
}

}  // namespace

void gemm_raw(const float* a, bool trans_a, const float* b, bool trans_b,
              float* c, int m, int k, int n, float alpha, float beta) {
  // Storage row widths of A and B as laid out in memory.
  const int a_cols = trans_a ? m : k;
  const int b_cols = trans_b ? k : n;
  if (m <= 0 || n <= 0) return;
  A3CS_PROF_SCOPE("gemm");
  {
    // Analytic work model: one FMA (2 flops) per (m,k,n) element; A and B
    // each read once, C written once (float32).
    static obs::perf::WorkCounters& wc = obs::perf::WorkCounters::named("gemm");
    const std::int64_t mk = static_cast<std::int64_t>(m) * std::max(0, k);
    const std::int64_t kn = static_cast<std::int64_t>(std::max(0, k)) * n;
    const std::int64_t mn = static_cast<std::int64_t>(m) * n;
    wc.add(2 * mk * n, 4 * (mk + kn), 4 * mn);
  }
  if (k <= 0) {
    // Degenerate reduction: C = beta * C.
    gemm_rows(a, trans_a, b, trans_b, c, 0, m, 0, n, alpha, beta, a_cols,
              b_cols);
    return;
  }

  const std::int64_t work =
      static_cast<std::int64_t>(m) * k * n;
  if (work < kGemmMinParallelWork) {
    gemm_rows(a, trans_a, b, trans_b, c, 0, m, k, n, alpha, beta, a_cols,
              b_cols);
    return;
  }
  util::parallel_for(
      0, m, kGemmRowGrain,
      [&](std::int64_t row0, std::int64_t row1) {
        gemm_rows(a, trans_a, b, trans_b, c, static_cast<int>(row0),
                  static_cast<int>(row1), k, n, alpha, beta, a_cols, b_cols);
      },
      "gemm");
}

void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha, float beta) {
  A3CS_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2 &&
                 c.shape().rank() == 2,
             "gemm requires matrices");
  const int a_rows = a.shape()[0], a_cols = a.shape()[1];
  const int b_rows = b.shape()[0], b_cols = b.shape()[1];
  const int m = trans_a ? a_cols : a_rows;
  const int k = trans_a ? a_rows : a_cols;
  const int kb = trans_b ? b_cols : b_rows;
  const int n = trans_b ? b_rows : b_cols;
  A3CS_CHECK(k == kb, "gemm inner dimension mismatch");
  A3CS_CHECK(c.shape()[0] == m && c.shape()[1] == n,
             "gemm output shape mismatch");
  gemm_raw(a.data(), trans_a, b.data(), trans_b, c.data(), m, k, n, alpha,
           beta);
}

ConvGeometry ConvGeometry::make(const Shape& input, int kh, int kw, int stride,
                                int pad) {
  A3CS_CHECK(input.rank() == 4, "conv input must be NCHW");
  A3CS_CHECK(stride >= 1, "conv stride must be >= 1");
  ConvGeometry g;
  g.n = input[0];
  g.c = input[1];
  g.h = input[2];
  g.w = input[3];
  g.kh = kh;
  g.kw = kw;
  g.stride = stride;
  g.pad = pad;
  g.oh = (g.h + 2 * pad - kh) / stride + 1;
  g.ow = (g.w + 2 * pad - kw) / stride + 1;
  A3CS_CHECK(g.oh > 0 && g.ow > 0, "conv output is empty");
  return g;
}

void im2col(const Tensor& input, const ConvGeometry& g, Tensor& cols) {
  const int col_rows = g.c * g.kh * g.kw;
  const int col_cols = g.n * g.oh * g.ow;
  A3CS_CHECK(cols.shape() == Shape::mat(col_rows, col_cols),
             "im2col output shape mismatch");
  A3CS_PROF_SCOPE("im2col");
  {
    // Pure data movement: every output cell is one gather (or zero fill);
    // the input is touched ~kh*kw times through the sliding windows.
    static obs::perf::WorkCounters& wc =
        obs::perf::WorkCounters::named("im2col");
    const std::int64_t cells =
        static_cast<std::int64_t>(col_rows) * col_cols;
    wc.add(0, 4 * cells, 4 * cells);
  }
  const float* in = input.data();
  float* out = cols.data();
  const int hw = g.h * g.w;
  const int ohw = g.oh * g.ow;
  // Each output row belongs to exactly one (channel, ky, kx) triple, so the
  // rows can be filled independently. Grain is derived from the row width
  // only, keeping shard boundaries thread-count independent.
  const std::int64_t grain =
      std::max<std::int64_t>(1, 32768 / std::max(1, col_cols));
  util::parallel_for(0, col_rows, grain, [&](std::int64_t cr0,
                                             std::int64_t cr1) {
  for (int cr = static_cast<int>(cr0); cr < static_cast<int>(cr1); ++cr) {
    const int kw_off = cr % g.kw;
    const int kh_off = (cr / g.kw) % g.kh;
    const int ch = cr / (g.kw * g.kh);
    float* orow = out + static_cast<std::size_t>(cr) * col_cols;
    for (int n = 0; n < g.n; ++n) {
      const float* img = in + (static_cast<std::size_t>(n) * g.c + ch) * hw;
      float* ocell = orow + static_cast<std::size_t>(n) * ohw;
      for (int oy = 0; oy < g.oh; ++oy) {
        const int iy = oy * g.stride - g.pad + kh_off;
        if (iy < 0 || iy >= g.h) {
          std::fill(ocell, ocell + g.ow, 0.0f);
          ocell += g.ow;
          continue;
        }
        const float* irow = img + static_cast<std::size_t>(iy) * g.w;
        for (int ox = 0; ox < g.ow; ++ox) {
          const int ix = ox * g.stride - g.pad + kw_off;
          *ocell++ = (ix < 0 || ix >= g.w) ? 0.0f : irow[ix];
        }
      }
    }
  }
  }, "im2col");
}

void col2im(const Tensor& cols, const ConvGeometry& g, Tensor& grad_input) {
  const int col_rows = g.c * g.kh * g.kw;
  const int col_cols = g.n * g.oh * g.ow;
  A3CS_CHECK(cols.shape() == Shape::mat(col_rows, col_cols),
             "col2im input shape mismatch");
  A3CS_PROF_SCOPE("col2im");
  {
    // Scatter-accumulate: one add per column cell back into the image.
    static obs::perf::WorkCounters& wc =
        obs::perf::WorkCounters::named("col2im");
    const std::int64_t cells =
        static_cast<std::int64_t>(col_rows) * col_cols;
    wc.add(cells, 4 * cells, 4 * cells);
  }
  A3CS_CHECK(grad_input.shape() == Shape::nchw(g.n, g.c, g.h, g.w),
             "col2im output shape mismatch");
  grad_input.zero();
  const float* in = cols.data();
  float* out = grad_input.data();
  const int hw = g.h * g.w;
  const int ohw = g.oh * g.ow;
  // The scatter-add overlaps between kernel offsets of the SAME channel but
  // never across channels, so channels are the race-free unit of work. Each
  // shard walks its channels' column rows in the same ascending order as the
  // serial loop, keeping the accumulation order bit-exact.
  const int khw = g.kh * g.kw;
  util::parallel_for(0, g.c, 1, [&](std::int64_t ch0, std::int64_t ch1) {
  for (int cr = static_cast<int>(ch0) * khw; cr < static_cast<int>(ch1) * khw;
       ++cr) {
    const int kw_off = cr % g.kw;
    const int kh_off = (cr / g.kw) % g.kh;
    const int ch = cr / (g.kw * g.kh);
    const float* irow = in + static_cast<std::size_t>(cr) * col_cols;
    for (int n = 0; n < g.n; ++n) {
      float* img = out + (static_cast<std::size_t>(n) * g.c + ch) * hw;
      const float* icell = irow + static_cast<std::size_t>(n) * ohw;
      for (int oy = 0; oy < g.oh; ++oy) {
        const int iy = oy * g.stride - g.pad + kh_off;
        if (iy < 0 || iy >= g.h) {
          icell += g.ow;
          continue;
        }
        float* orow = img + static_cast<std::size_t>(iy) * g.w;
        for (int ox = 0; ox < g.ow; ++ox) {
          const int ix = ox * g.stride - g.pad + kw_off;
          const float v = *icell++;
          if (ix >= 0 && ix < g.w) orow[ix] += v;
        }
      }
    }
  }
  }, "col2im");
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  A3CS_CHECK(logits.shape().rank() == 2, "softmax_rows requires a matrix");
  A3CS_CHECK(probs.shape() == logits.shape(), "softmax output shape mismatch");
  const int rows = logits.shape()[0], cols = logits.shape()[1];
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::size_t>(r) * cols;
    float* out = probs.data() + static_cast<std::size_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - mx);
      sum += out[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < cols; ++c) out[c] *= inv;
  }
}

void log_softmax_rows(const Tensor& logits, Tensor& log_probs) {
  A3CS_CHECK(logits.shape().rank() == 2, "log_softmax_rows requires a matrix");
  A3CS_CHECK(log_probs.shape() == logits.shape(),
             "log_softmax output shape mismatch");
  const int rows = logits.shape()[0], cols = logits.shape()[1];
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::size_t>(r) * cols;
    float* out = log_probs.data() + static_cast<std::size_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) sum += std::exp(in[c] - mx);
    const float lse = mx + static_cast<float>(std::log(sum));
    for (int c = 0; c < cols; ++c) out[c] = in[c] - lse;
  }
}

std::int64_t argmax(const Tensor& t) {
  A3CS_CHECK(t.numel() > 0, "argmax of empty tensor");
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < t.numel(); ++i) {
    if (t[i] > t[best]) best = i;
  }
  return best;
}

}  // namespace a3cs::tensor
