#include "tensor/shape.h"

#include <sstream>
#include <stdexcept>

#include "util/logging.h"

namespace a3cs::tensor {

Shape::Shape(std::initializer_list<int> dims) {
  A3CS_CHECK(dims.size() <= kMaxRank, "shape rank exceeds kMaxRank");
  for (int d : dims) {
    A3CS_CHECK(d >= 0, "negative dimension");
    dims_[static_cast<std::size_t>(rank_++)] = d;
  }
}

int Shape::dim(int i) const {
  A3CS_CHECK(i >= 0 && i < rank_, "shape dim index out of range");
  return dims_[static_cast<std::size_t>(i)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (int i = 0; i < rank_; ++i) n *= dims_[static_cast<std::size_t>(i)];
  return n;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (int i = 0; i < rank_; ++i) {
    if (dims_[static_cast<std::size_t>(i)] !=
        other.dims_[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream oss;
  oss << "(";
  for (int i = 0; i < rank_; ++i) {
    if (i > 0) oss << ", ";
    oss << dims_[static_cast<std::size_t>(i)];
  }
  oss << ")";
  return oss.str();
}

}  // namespace a3cs::tensor
