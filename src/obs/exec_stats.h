// Publishes thread-pool occupancy into the metrics registry, bridging the
// util-layer ThreadPool (which cannot depend on obs/) to the observability
// stack. Call at phase boundaries / end of run; gauges are overwritten with
// the pool's lifetime totals:
//
//   exec.threads            configured executor count
//   pool.tasks_executed     tasks run by parallel regions
//   pool.regions_parallel   parallel_for calls that fanned out
//   pool.regions_inline     parallel_for calls that ran serially inline
//   pool.tasks.<label>      per-phase task counts (gemm, im2col, env-step,
//                           nas-topk, das-eval, conv-fwd, conv-bwd, ...)
//   pool.regions.<label>    per-phase region counts
#pragma once

namespace a3cs::util {
class ThreadPool;
}

namespace a3cs::obs {

// Snapshot `pool` (default: the global pool) into the registry and, when a
// trace session is active, emit one "exec" event with the same numbers.
void record_exec_stats(const util::ThreadPool* pool = nullptr);

}  // namespace a3cs::obs
