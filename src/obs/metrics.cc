#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"
#include "util/table.h"

namespace a3cs::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  A3CS_CHECK(!bounds_.empty(), "Histogram: needs at least one bucket bound");
  A3CS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
             "Histogram: bucket bounds must be sorted ascending");
  counts_ = std::vector<std::atomic<std::int64_t>>(bounds_.size() + 1);
  reservoir_ = std::vector<std::atomic<double>>(kReservoirSize);
}

void Histogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  // The pre-increment total doubles as this sample's reservoir slot, so the
  // first kReservoirSize samples are kept verbatim without extra state.
  const std::int64_t n = total_.fetch_add(1, std::memory_order_relaxed);
  if (n >= 0 && static_cast<std::size_t>(n) < kReservoirSize) {
    reservoir_[static_cast<std::size_t>(n)].store(value,
                                                  std::memory_order_relaxed);
  }
  sum_.add(value);
}

double Histogram::quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const std::int64_t n = total_count();
  if (n <= 0) return 0.0;
  if (static_cast<std::size_t>(n) <= kReservoirSize) {
    // Exact path: sort the verbatim samples and linearly interpolate.
    std::vector<double> samples(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < samples.size(); ++i) {
      samples[i] = reservoir_[i].load(std::memory_order_relaxed);
    }
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1) return samples.front();
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
  }
  // Large-sample path: find the bucket holding the q-th sample and
  // interpolate linearly inside it. The overflow bucket has no upper bound,
  // so it reports the last finite bound (a conservative floor).
  const double target = q * static_cast<double>(n);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::int64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(cum + c) < target) {
      cum += c;
      continue;
    }
    if (i >= bounds_.size()) return bounds_.back();
    const double upper = bounds_[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
    const double frac =
        (target - static_cast<double>(cum)) / static_cast<double>(c);
    return lower + frac * (upper - lower);
  }
  return bounds_.back();
}

std::int64_t Histogram::bucket_count(std::size_t i) const {
  A3CS_CHECK(i < counts_.size(), "Histogram: bucket index out of range");
  return counts_[i].load(std::memory_order_relaxed);
}

std::int64_t Histogram::total_count() const {
  return total_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.value(); }

double Histogram::mean() const {
  const std::int64_t n = total_count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.reset();
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked singleton: magic-static init is thread-safe, the pointer is never
  // reassigned, and all mutation goes through mu_. A3CS_LINT(conc-static-local)
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.bounds = h->bounds();
    hv.counts.reserve(hv.bounds.size() + 1);
    for (std::size_t i = 0; i <= hv.bounds.size(); ++i) {
      hv.counts.push_back(h->bucket_count(i));
    }
    hv.total = h->total_count();
    hv.sum = h->sum();
    hv.p50 = h->quantile(0.5);
    hv.p90 = h->quantile(0.9);
    snap.histograms[name] = std::move(hv);
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::print(std::ostream& out) const {
  const MetricsSnapshot snap = snapshot();
  util::TextTable table({"metric", "value"});
  for (const auto& [name, v] : snap.counters) {
    if (v != 0) table.add_row({name, std::to_string(v)});
  }
  for (const auto& [name, v] : snap.gauges) {
    if (v != 0.0) table.add_row({name, util::TextTable::num(v, 4)});
  }
  for (const auto& [name, hv] : snap.histograms) {
    if (hv.total == 0) continue;
    table.add_row({name + " (count)", std::to_string(hv.total)});
    table.add_row({name + " (mean)",
                   util::TextTable::num(
                       hv.total ? hv.sum / static_cast<double>(hv.total) : 0.0,
                       4)});
  }
  table.print(out);
}

}  // namespace a3cs::obs
