// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, safe to update from any thread. The registry hands out stable
// references, so hot paths pay one registry lookup (typically hidden behind a
// function-local static) and then a single relaxed atomic op per update.
//
//   static obs::Counter& evals =
//       obs::MetricsRegistry::global().counter("predictor.evals");
//   evals.inc();
//
// Snapshots are consistent-enough point-in-time copies (each value is read
// atomically; the set of metrics is read under the registry lock) intended
// for end-of-run reporting, not for lock-step invariants across metrics.
//
// Ordering invariant: the registry stores metrics in std::map (never an
// unordered container), so snapshot(), print() and every JSONL emission
// that iterates a snapshot walk keys in sorted order and produce
// byte-stable output across runs and thread counts. a3cs-lint's
// det-unordered-iter rule enforces this (docs/STATIC_ANALYSIS.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace a3cs::obs {

class Counter {
 public:
  void inc(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram. A sample lands in the first bucket whose upper
// bound satisfies `value <= bound`; values above the last bound go to the
// overflow bucket. Bounds are set at registration and never change.
//
// The first kReservoirSize samples are additionally kept verbatim, so
// quantile() is *exact* (sorted-sample linear interpolation) for short
// series — bench runs with a handful of repeats would otherwise see p50/p90
// quantized to bucket bounds. Past the reservoir, quantile() falls back to
// within-bucket linear interpolation over the counts.
class Histogram {
 public:
  // Samples kept verbatim for the exact quantile path.
  static constexpr std::size_t kReservoirSize = 1024;

  explicit Histogram(std::vector<double> bounds);

  void record(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // bucket_count(i) for i in [0, bounds().size()] — the last index is the
  // overflow bucket.
  std::int64_t bucket_count(std::size_t i) const;
  std::int64_t total_count() const;
  double sum() const;
  double mean() const;
  // q in [0,1]. Exact while total_count() <= kReservoirSize, bucket-
  // interpolated beyond that; 0 when empty.
  double quantile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;  // bounds.size() + 1
  std::vector<std::atomic<double>> reservoir_;     // kReservoirSize slots
  std::atomic<std::int64_t> total_{0};
  Gauge sum_;
};

struct MetricsSnapshot {
  struct HistogramValue {
    std::vector<double> bounds;
    std::vector<std::int64_t> counts;  // bounds.size() + 1 (overflow last)
    std::int64_t total = 0;
    double sum = 0.0;
    // Exact for small samples (reservoir), bucket-interpolated beyond.
    double p50 = 0.0;
    double p90 = 0.0;
  };
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramValue> histograms;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  // Creation is idempotent: the same name always returns the same object.
  // References stay valid for the registry's lifetime. Re-registering a
  // histogram with different bounds keeps the original bounds.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;
  // Zeroes every metric (keeps registrations). Tests and back-to-back bench
  // runs use this to isolate measurements.
  void reset();

  // Renders a sorted human-readable dump of all non-zero metrics.
  void print(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace a3cs::obs
