#include "obs/obs_config.h"

#include <algorithm>

#include "util/config.h"

namespace a3cs::obs {

ObsConfig ObsConfig::with_env_overrides() const {
  ObsConfig out = *this;
  const std::string path = util::env_string("A3CS_TRACE_PATH", "");
  if (!path.empty()) {
    out.trace_path = path;
    out.trace_enabled = true;
  }
  out.trace_enabled =
      util::env_int("A3CS_TRACE", out.trace_enabled ? 1 : 0) != 0;
  if (out.trace_enabled && out.trace_path.empty()) {
    out.trace_path = "a3cs_trace.jsonl";
  }
  out.trace_flush_every = static_cast<int>(std::max<std::int64_t>(
      1, util::env_int("A3CS_TRACE_FLUSH_EVERY", out.trace_flush_every)));
  out.trace_every = static_cast<int>(std::max<std::int64_t>(
      1, util::env_int("A3CS_TRACE_EVERY", out.trace_every)));
  out.profile_enabled =
      util::env_int("A3CS_PROFILE", out.profile_enabled ? 1 : 0) != 0;
  out.profile_summary =
      util::env_int("A3CS_PROFILE_SUMMARY", out.profile_summary ? 1 : 0) != 0;
  const std::string chrome =
      util::env_string("A3CS_PROFILE_CHROME", out.profile_chrome_path);
  out.profile_chrome_path = chrome;
  if (!out.profile_chrome_path.empty()) out.profile_enabled = true;
  return out;
}

}  // namespace a3cs::obs
