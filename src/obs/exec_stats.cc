#include "obs/exec_stats.h"

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace a3cs::obs {

void record_exec_stats(const util::ThreadPool* pool) {
  if (pool == nullptr) pool = &util::ThreadPool::global();
  auto& reg = MetricsRegistry::global();
  reg.gauge("exec.threads").set(pool->threads());
  reg.gauge("pool.tasks_executed")
      .set(static_cast<double>(pool->tasks_executed()));
  reg.gauge("pool.regions_parallel")
      .set(static_cast<double>(pool->regions_parallel()));
  reg.gauge("pool.regions_inline")
      .set(static_cast<double>(pool->regions_inline()));
  for (const auto& stat : pool->label_stats()) {
    reg.gauge(std::string("pool.tasks.") + stat.label)
        .set(static_cast<double>(stat.tasks));
    reg.gauge(std::string("pool.regions.") + stat.label)
        .set(static_cast<double>(stat.regions));
  }
  if (trace_active()) {
    auto ev = trace_event("exec");
    ev.kv("threads", pool->threads())
        .kv("tasks_executed", pool->tasks_executed())
        .kv("regions_parallel", pool->regions_parallel())
        .kv("regions_inline", pool->regions_inline());
    for (const auto& stat : pool->label_stats()) {
      ev.kv(std::string("tasks_") + stat.label, stat.tasks);
    }
  }
}

}  // namespace a3cs::obs
