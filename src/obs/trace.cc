#include "obs/trace.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/obs_config.h"
#include "util/logging.h"

namespace a3cs::obs {

void TraceWriter::append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void TraceWriter::append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

TraceWriter::TraceWriter(const std::string& path, int flush_every)
    : path_(path),
      flush_every_(flush_every < 1 ? 1 : flush_every),
      start_(std::chrono::steady_clock::now()),
      file_(path, std::ios::trunc) {
  if (!file_) throw std::runtime_error("TraceWriter: cannot open " + path);
  event("trace_start").kv("wall_time", util::iso8601_now());
}

TraceWriter::~TraceWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  file_.flush();
}

double TraceWriter::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void TraceWriter::commit(std::string&& line) {
  line += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  file_ << line;
  events_.fetch_add(1, std::memory_order_relaxed);
  if (++pending_ >= flush_every_) {
    file_.flush();
    pending_ = 0;
  }
}

void TraceWriter::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  file_.flush();
  pending_ = 0;
}

TraceWriter::EventBuilder::EventBuilder(TraceWriter* writer,
                                        std::string_view type)
    : writer_(writer) {
  if (writer_ == nullptr) return;
  line_ = "{\"ts_ms\":";
  append_json_number(line_, writer_->elapsed_ms());
  line_ += ",\"type\":";
  append_json_string(line_, type);
}

TraceWriter::EventBuilder::EventBuilder(EventBuilder&& other) noexcept
    : writer_(std::exchange(other.writer_, nullptr)),
      line_(std::move(other.line_)) {}

TraceWriter::EventBuilder::~EventBuilder() {
  if (writer_ != nullptr) writer_->commit(std::move(line_));
}

TraceWriter::EventBuilder& TraceWriter::EventBuilder::kv(std::string_view key,
                                                         double v) {
  if (writer_ == nullptr) return *this;
  line_ += ',';
  append_json_string(line_, key);
  line_ += ':';
  append_json_number(line_, v);
  return *this;
}

TraceWriter::EventBuilder& TraceWriter::EventBuilder::kv(std::string_view key,
                                                         std::int64_t v) {
  if (writer_ == nullptr) return *this;
  line_ += ',';
  append_json_string(line_, key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), ":%" PRId64, v);
  line_ += buf;
  return *this;
}

TraceWriter::EventBuilder& TraceWriter::EventBuilder::kv(std::string_view key,
                                                         bool v) {
  if (writer_ == nullptr) return *this;
  line_ += ',';
  append_json_string(line_, key);
  line_ += v ? ":true" : ":false";
  return *this;
}

TraceWriter::EventBuilder& TraceWriter::EventBuilder::kv(std::string_view key,
                                                         std::string_view v) {
  if (writer_ == nullptr) return *this;
  line_ += ',';
  append_json_string(line_, key);
  line_ += ':';
  append_json_string(line_, v);
  return *this;
}

// ---------------------------------------------------------------- global ----

namespace {
std::atomic<TraceWriter*> g_trace{nullptr};
}  // namespace

TraceWriter* global_trace() {
  return g_trace.load(std::memory_order_acquire);
}

TraceSession::TraceSession(const ObsConfig& cfg) {
  if (!cfg.trace_enabled || cfg.trace_path.empty()) return;
  if (global_trace() != nullptr) return;  // outer session owns the slot
  owned_ = new TraceWriter(cfg.trace_path, cfg.trace_flush_every);
  g_trace.store(owned_, std::memory_order_release);
  A3CS_LOG(INFO) << "tracing to " << cfg.trace_path;
}

TraceSession::~TraceSession() {
  if (owned_ == nullptr) return;
  g_trace.store(nullptr, std::memory_order_release);
  delete owned_;
}

TraceWriter::EventBuilder trace_event(std::string_view type) {
  return TraceWriter::EventBuilder(global_trace(), type);
}

}  // namespace a3cs::obs
