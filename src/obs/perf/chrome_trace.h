// Chrome/Perfetto `trace_events` export of the ProfScope hierarchy.
//
// When a ChromeTraceSession is active (A3CS_PROFILE_CHROME=out.json), every
// ProfScope additionally emits a Begin/End duration-event pair into a JSON
// file that chrome://tracing and https://ui.perfetto.dev open directly:
//
//   {"otherData":{...run meta...},"displayTimeUnit":"ms","traceEvents":[
//   {"name":"cosearch-iter","cat":"a3cs","ph":"B","pid":1,"tid":1,"ts":12.5},
//   {"name":"gemm","cat":"a3cs","ph":"B","pid":1,"tid":1,"ts":13.0},
//   {"name":"gemm","ph":"E",...,"args":{"flops":33554432,...}},
//   ...]}
//
// Timestamps are steady_clock microseconds from writer creation (monotonic —
// wall-clock appears only in the otherData metadata block). Kernels annotate
// the innermost open scope with work counts (WorkCounters::add), so GEMM and
// conv "E" events carry flops / bytes_read / bytes_written plus derived
// GFLOP/s and arithmetic intensity for roofline readouts.
//
// Thread safety: events are committed under a writer mutex; each thread gets
// a stable small tid in first-seen order. The per-thread scope stack lives in
// thread_local storage, so begin/end pairs are balanced per thread by ProfScope
// RAII even when the writer is installed or torn down mid-scope (frames opened
// under a different writer generation are skipped, never half-emitted).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace a3cs::obs {

struct ObsConfig;

namespace perf {

class ChromeTraceWriter {
 public:
  // Opens (truncates) `path` and writes the metadata header; throws on
  // failure. `max_events` caps the file (default ~1M events); once reached,
  // new Begin events are dropped (their matching Ends are dropped with them,
  // so the emitted stream stays balanced).
  explicit ChromeTraceWriter(const std::string& path,
                             std::int64_t max_events = 1'000'000);
  ~ChromeTraceWriter();

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  const std::string& path() const { return path_; }
  std::int64_t events_written() const {
    return events_.load(std::memory_order_relaxed);
  }
  // True while a further B/E pair fits under the event cap.
  bool has_budget() const {
    return events_.load(std::memory_order_relaxed) + 2 <= max_events_;
  }

  // Emits one event. `args_json` is a pre-rendered JSON object ("" = none).
  // Returns false when the event cap dropped it.
  bool emit(const char* name, char phase, const std::string& args_json);

 private:
  double elapsed_us() const;
  int tid_for_current_thread();  // caller holds mu_

  std::string path_;
  std::int64_t max_events_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
  std::ofstream file_;
  bool first_event_ = true;
  // Thread-id bookkeeping only, no thread creation. A3CS_LINT(conc-raw-thread)
  std::map<std::thread::id, int> tids_;
  std::atomic<std::int64_t> events_{0};
};

// ---------------------------------------------------------------- global ----

// The process-global Chrome trace slot (mirrors obs::global_trace()).
ChromeTraceWriter* global_chrome_trace();
inline bool chrome_trace_active() { return global_chrome_trace() != nullptr; }

// RAII owner of the global slot. Active iff cfg.profile_chrome_path is
// non-empty and no outer session owns the slot already. Closing the session
// finalizes the JSON file (closes the traceEvents array).
class ChromeTraceSession {
 public:
  explicit ChromeTraceSession(const ObsConfig& cfg);
  ~ChromeTraceSession();

  ChromeTraceSession(const ChromeTraceSession&) = delete;
  ChromeTraceSession& operator=(const ChromeTraceSession&) = delete;

  bool active() const { return owned_ != nullptr; }

 private:
  ChromeTraceWriter* owned_ = nullptr;
};

// --- ProfScope hooks (called by Profiler::enter/leave, not user code) -------

// Pushes a frame for `name` on the calling thread's scope stack and emits the
// "B" event when a writer is active.
void chrome_scope_begin(const char* name);
// Pops the innermost frame and emits the matching "E" event (with any work
// annotations accumulated by WorkCounters::add while the scope was open).
void chrome_scope_end();

// Adds work counts to the innermost open scope frame of the calling thread
// (no-op when profiling is off or no scope is open). Called by
// WorkCounters::add so kernels annotate traces for free.
void chrome_annotate_work(std::int64_t flops, std::int64_t bytes_read,
                          std::int64_t bytes_written);

}  // namespace perf
}  // namespace a3cs::obs
