#include "obs/perf/chrome_trace.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/obs_config.h"
#include "obs/perf/run_meta.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace a3cs::obs::perf {

namespace {

// Global writer slot. Only ChromeTraceSession writes it; hot-path readers use
// a relaxed load (a scope racing a session teardown is handled by the frame
// generation check below, not by ordering).
std::atomic<ChromeTraceWriter*> g_chrome_trace{nullptr};

// One open ProfScope on this thread. `writer` records which writer (if any)
// the Begin event went to, so End is emitted iff the same writer is still
// installed — a session torn down or swapped mid-scope never produces an
// unbalanced or cross-file event.
struct Frame {
  const char* name;
  ChromeTraceWriter* writer;  // nullptr => no B emitted, suppress the E
  std::int64_t flops = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
};

thread_local std::vector<Frame> t_frames;

void append_work_args(std::string& out, const Frame& f) {
  out += "{\"flops\":" + std::to_string(f.flops);
  out += ",\"bytes_read\":" + std::to_string(f.bytes_read);
  out += ",\"bytes_written\":" + std::to_string(f.bytes_written);
  out += "}";
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(const std::string& path,
                                     std::int64_t max_events)
    : path_(path),
      max_events_(max_events),
      start_(std::chrono::steady_clock::now()) {
  file_.open(path, std::ios::out | std::ios::trunc);
  if (!file_.is_open()) {
    throw std::runtime_error("ChromeTraceWriter: cannot open " + path);
  }
  file_ << "{\"otherData\":" << render_meta_json(collect_run_meta())
        << ",\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
}

ChromeTraceWriter::~ChromeTraceWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  file_ << "\n]}\n";
  file_.close();
}

double ChromeTraceWriter::elapsed_us() const {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
                 .count()) /
         1e3;
}

int ChromeTraceWriter::tid_for_current_thread() {
  const auto id = std::this_thread::get_id();
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(tids_.size()) + 1;
  tids_.emplace(id, tid);
  return tid;
}

bool ChromeTraceWriter::emit(const char* name, char phase,
                             const std::string& args_json) {
  const double ts = elapsed_us();
  std::string line;
  line.reserve(96 + args_json.size());
  line += "{\"name\":";
  TraceWriter::append_json_string(line, name);
  line += ",\"cat\":\"a3cs\",\"ph\":\"";
  line += phase;
  line += "\",\"pid\":1,\"tid\":";
  std::lock_guard<std::mutex> lock(mu_);
  line += std::to_string(tid_for_current_thread());
  line += ",\"ts\":";
  TraceWriter::append_json_number(line, ts);
  if (!args_json.empty()) {
    line += ",\"args\":";
    line += args_json;
  }
  line += "}";
  if (!first_event_) file_ << ",\n";
  first_event_ = false;
  file_ << line;
  events_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ChromeTraceWriter* global_chrome_trace() {
  return g_chrome_trace.load(std::memory_order_relaxed);
}

ChromeTraceSession::ChromeTraceSession(const ObsConfig& cfg) {
  if (cfg.profile_chrome_path.empty()) return;
  if (g_chrome_trace.load(std::memory_order_relaxed) != nullptr) {
    A3CS_LOG(WARN) << "Chrome trace session already active; ignoring nested "
                      "session for "
                   << cfg.profile_chrome_path;
    return;
  }
  try {
    owned_ = new ChromeTraceWriter(cfg.profile_chrome_path);
  } catch (const std::exception& e) {
    A3CS_LOG(WARN) << "Chrome trace disabled: " << e.what();
    return;
  }
  g_chrome_trace.store(owned_, std::memory_order_release);
}

ChromeTraceSession::~ChromeTraceSession() {
  if (owned_ == nullptr) return;
  g_chrome_trace.store(nullptr, std::memory_order_release);
  delete owned_;
}

void chrome_scope_begin(const char* name) {
  ChromeTraceWriter* writer = global_chrome_trace();
  Frame frame;
  frame.name = name;
  frame.writer = nullptr;
  // Cap check: once the event budget is spent, stop opening new pairs but
  // keep the stack balanced (frames record that no B was written).
  if (writer != nullptr && writer->has_budget()) {
    writer->emit(name, 'B', "");
    frame.writer = writer;
  }
  t_frames.push_back(frame);
}

void chrome_scope_end() {
  if (t_frames.empty()) return;  // writer installed mid-scope: nothing to pop
  Frame frame = t_frames.back();
  t_frames.pop_back();
  if (frame.writer == nullptr) return;
  if (global_chrome_trace() != frame.writer) return;  // torn down mid-scope
  std::string args;
  if (frame.flops > 0 || frame.bytes_read > 0 || frame.bytes_written > 0) {
    append_work_args(args, frame);
  }
  frame.writer->emit(frame.name, 'E', args);
}

void chrome_annotate_work(std::int64_t flops, std::int64_t bytes_read,
                          std::int64_t bytes_written) {
  if (t_frames.empty()) return;
  Frame& frame = t_frames.back();
  frame.flops += flops;
  frame.bytes_read += bytes_read;
  frame.bytes_written += bytes_written;
}

}  // namespace a3cs::obs::perf
