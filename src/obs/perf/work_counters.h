// Per-kernel work accounting: floating-point operations and bytes moved.
//
// Kernels bind a named counter once (function-local static reference — the
// registry entry is never destroyed) and add their analytic work model per
// call:
//
//   static WorkCounters& wc = WorkCounters::named("gemm");
//   wc.add(2 * m * k * n, /*bytes_read=*/..., /*bytes_written=*/...);
//
// add() is three relaxed fetch_adds plus a thread-local Chrome-trace frame
// annotation — cheap enough to leave always-on in the inner GEMM/conv/im2col
// kernels. Work totals feed three consumers:
//   * chrome trace "E" events (args.flops / bytes_*) for roofline readouts,
//   * MetricsRegistry gauges `work.<kernel>.flops` etc. via
//     record_work_metrics(),
//   * one "work" JSONL trace event per kernel at end of run.
//
// Counts are analytic (derived from shapes), not measured — they say how much
// work the algorithm did, independent of cache behaviour, which is exactly
// what arithmetic-intensity plots want.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace a3cs::obs::perf {

class WorkCounters {
 public:
  // Returns the process-global counter for `kernel`, creating it on first
  // use. The reference is stable for the process lifetime.
  static WorkCounters& named(const std::string& kernel);

  // Accumulates work and annotates the innermost open Chrome-trace scope of
  // the calling thread (if any).
  void add(std::int64_t flops, std::int64_t bytes_read,
           std::int64_t bytes_written);

  std::int64_t flops() const {
    return flops_.load(std::memory_order_relaxed);
  }
  std::int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  std::int64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  void reset() {
    flops_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
  }

 private:
  WorkCounters() = default;
  friend struct WorkRegistryAccess;

  std::atomic<std::int64_t> flops_{0};
  std::atomic<std::int64_t> bytes_read_{0};
  std::atomic<std::int64_t> bytes_written_{0};
};

struct WorkSnapshot {
  std::int64_t flops = 0;
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
};

// Ordered (byte-stable) snapshot of every registered kernel's totals.
std::map<std::string, WorkSnapshot> work_snapshot();

// Zeroes all registered counters (test isolation / back-to-back runs).
void reset_work_counters();

// Publishes `work.<kernel>.flops|bytes_read|bytes_written` gauges into the
// global MetricsRegistry and emits one "work" JSONL trace event per kernel
// with nonzero totals. Called at end of run next to record_exec_stats().
void record_work_metrics();

}  // namespace a3cs::obs::perf
