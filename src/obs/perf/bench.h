// Benchmark registry: the durable perf-measurement layer behind the repo's
// BENCH_*.json baselines (docs/BENCHMARKING.md).
//
// Harnesses register benchmarks with the BENCH macro and measure cases
// through the Bench handle's fluent API:
//
//   BENCH("gemm") {
//     for (const Shape& s : shapes(b.smoke())) {
//       b.config(s.label)
//           .work(2 * s.m * s.k * s.n, s.bytes)
//           .run([&] { tensor::gemm_raw(...); });
//     }
//   }
//
//   int main(int argc, char** argv) {
//     return a3cs::obs::perf::run_bench_main("kernels", argc, argv);
//   }
//
// Each run() takes adaptive repeats (warmup, then sample until the budget and
// steadiness criteria are met), computes exact median/p10/p90 by linear
// interpolation over the sorted samples, and records a steady-state flag:
// a case is steady when (p90 - p10) <= 0.25 * median. The timer is the
// registry's injectable monotonic clock — never std::chrono::system_clock
// (a3cs-lint rule det-bench-clock) — so tests can drive the whole pipeline
// with a fake clock and assert byte-stable output.
//
// Modes:
//   A3CS_BENCH_SMOKE=1   minimum-scale run: no warmup, one repeat, and
//                        benches should pick tiny shapes via b.smoke().
//   --json <path> / A3CS_BENCH_JSON=<path>   write the schema-versioned
//                        result document (see bench_json.h).
//   --filter <substr>    only run benchmarks whose name contains substr.
//   --list               print registered benchmark names and exit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace a3cs::obs::perf {

// One measured case (benchmark name x config x threads).
struct BenchResult {
  std::string name;
  std::string config;  // shape/variant label, "" for single-case benches
  int threads = 1;
  int repeats = 0;
  double median_ms = 0.0;
  double p10_ms = 0.0;
  double p90_ms = 0.0;
  double mean_ms = 0.0;
  bool steady = false;
  double throughput = 0.0;  // items()/median-second, 0 when no items set
  std::string throughput_unit;
  std::int64_t flops = 0;  // analytic per-iteration work, 0 = not annotated
  std::int64_t bytes = 0;
};

// Sampling policy for one run() call. Defaults are the full-mode protocol;
// smoke mode collapses to {warmup:0, min_repeats:1, max_repeats:1,
// min_total_ms:0}.
struct BenchBudget {
  int warmup = 1;
  int min_repeats = 5;
  int max_repeats = 50;
  double min_total_ms = 150.0;
};

class BenchSuite;

// Handle passed to each registered benchmark body. config()/threads()/work()/
// items() stage attributes for the next run() call; run() measures and
// appends one BenchResult to the suite.
class Bench {
 public:
  Bench& config(const std::string& label) {
    config_ = label;
    return *this;
  }
  Bench& threads(int n) {
    threads_ = n;
    return *this;
  }
  // Analytic per-iteration work for roofline context in the JSON artifact.
  Bench& work(std::int64_t flops, std::int64_t bytes) {
    flops_ = flops;
    bytes_ = bytes;
    return *this;
  }
  // Per-iteration item count for derived throughput (items / median second).
  Bench& items(double n, const std::string& unit) {
    items_ = n;
    items_unit_ = unit;
    return *this;
  }
  Bench& budget(const BenchBudget& b) {
    budget_ = b;
    return *this;
  }

  // True in A3CS_BENCH_SMOKE mode — bodies should pick tiny shapes.
  bool smoke() const;

  // Measures fn under the staged attributes, then clears them.
  void run(const std::function<void()>& fn);

 private:
  friend class BenchSuite;
  explicit Bench(BenchSuite* suite, std::string name)
      : suite_(suite), name_(std::move(name)) {}

  void clear_staged();

  BenchSuite* suite_;
  std::string name_;
  std::string config_;
  int threads_ = 0;  // 0 = current global pool size
  std::int64_t flops_ = 0;
  std::int64_t bytes_ = 0;
  double items_ = 0.0;
  std::string items_unit_;
  BenchBudget budget_;
};

using BenchFn = void (*)(Bench&);

// Process-global registry the BENCH macro populates. Runs execute in sorted
// name order regardless of registration (link) order, so output is stable.
class BenchSuite {
 public:
  static BenchSuite& global();

  void add(const std::string& name, BenchFn fn);
  std::vector<std::string> names() const;

  // Runs every registered benchmark whose name contains `filter` (empty =
  // all); returns results sorted by (name, config, threads).
  std::vector<BenchResult> run_all(const std::string& filter = "");

  // Monotonic nanosecond clock used for all measurements. Tests inject a
  // fake to make measured durations deterministic; nullptr restores the
  // steady_clock default.
  using ClockFn = std::int64_t (*)();
  static void set_clock_for_test(ClockFn clock);
  static std::int64_t now_ns();

 private:
  friend class Bench;
  void record(BenchResult result);

  std::vector<std::pair<std::string, BenchFn>> benches_;
  std::vector<BenchResult> results_;
};

// Exact quantile by linear interpolation over sorted `sorted_ms` (q in
// [0,1]). Exposed for the metrics reservoir and tests.
double exact_quantile(const std::vector<double>& sorted_ms, double q);

// Validates bench-relevant environment variables (A3CS_SCALE,
// A3CS_EVAL_EPISODES, A3CS_BENCH_SMOKE): set-but-malformed or out-of-range
// values produce one human-readable error each. Empty result = all valid.
std::vector<std::string> validate_bench_env();

// Standard bench-binary main: validates env (exit 2 with errors on stderr),
// parses --json/--filter/--list, installs trace/profile sessions from env
// (A3CS_TRACE*, A3CS_PROFILE, A3CS_PROFILE_CHROME), runs the suite, prints
// the result table, and writes the JSON artifact when requested.
int run_bench_main(const std::string& suite_name, int argc, char** argv);

}  // namespace a3cs::obs::perf

#define A3CS_BENCH_CONCAT_INNER(a, b) a##b
#define A3CS_BENCH_CONCAT(a, b) A3CS_BENCH_CONCAT_INNER(a, b)

namespace a3cs::obs::perf {
struct BenchRegistrar {
  BenchRegistrar(const char* name, BenchFn fn) {
    BenchSuite::global().add(name, fn);
  }
};
}  // namespace a3cs::obs::perf

// Registers a benchmark body: BENCH("gemm") { b.run([&]{ ... }); }
// The body receives `a3cs::obs::perf::Bench& b`.
#define BENCH(name)                                                       \
  static void A3CS_BENCH_CONCAT(a3cs_bench_fn_, __LINE__)(                \
      ::a3cs::obs::perf::Bench&);                                         \
  static ::a3cs::obs::perf::BenchRegistrar A3CS_BENCH_CONCAT(             \
      a3cs_bench_reg_, __LINE__)(name,                                    \
                                 &A3CS_BENCH_CONCAT(a3cs_bench_fn_,       \
                                                    __LINE__));           \
  static void A3CS_BENCH_CONCAT(a3cs_bench_fn_,                           \
                                __LINE__)(::a3cs::obs::perf::Bench & b)
