#include "obs/perf/bench_json.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/jsonl.h"
#include "obs/trace.h"

namespace a3cs::obs::perf {

namespace {

void append_result_json(std::string& out, const BenchResult& r) {
  out += "{\"name\":";
  TraceWriter::append_json_string(out, r.name);
  out += ",\"config\":";
  TraceWriter::append_json_string(out, r.config);
  out += ",\"threads\":" + std::to_string(r.threads);
  out += ",\"repeats\":" + std::to_string(r.repeats);
  out += ",\"median_ms\":";
  TraceWriter::append_json_number(out, r.median_ms);
  out += ",\"p10_ms\":";
  TraceWriter::append_json_number(out, r.p10_ms);
  out += ",\"p90_ms\":";
  TraceWriter::append_json_number(out, r.p90_ms);
  out += ",\"mean_ms\":";
  TraceWriter::append_json_number(out, r.mean_ms);
  out += r.steady ? ",\"steady\":true" : ",\"steady\":false";
  out += ",\"throughput\":";
  TraceWriter::append_json_number(out, r.throughput);
  out += ",\"throughput_unit\":";
  TraceWriter::append_json_string(out, r.throughput_unit);
  out += ",\"flops\":" + std::to_string(r.flops);
  out += ",\"bytes\":" + std::to_string(r.bytes);
  out += "}";
}

[[noreturn]] void schema_error(const std::string& what) {
  throw std::runtime_error("bench json schema: " + what);
}

double require_number(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    schema_error("missing or non-numeric \"" + key + "\"");
  }
  return v->as_number();
}

std::string require_string(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    schema_error("missing or non-string \"" + key + "\"");
  }
  return v->as_string();
}

bool require_bool(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind() != JsonValue::Kind::kBool) {
    schema_error("missing or non-boolean \"" + key + "\"");
  }
  return v->as_bool();
}

std::string row_key(const std::string& name, const std::string& config,
                    int threads) {
  return name + "/" + config + "/t" + std::to_string(threads);
}

}  // namespace

std::string render_bench_json(const BenchDoc& doc) {
  std::vector<BenchResult> results = doc.results;
  std::sort(results.begin(), results.end(),
            [](const BenchResult& a, const BenchResult& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.config != b.config) return a.config < b.config;
              return a.threads < b.threads;
            });
  std::string out = "{\"schema_version\":" +
                    std::to_string(doc.schema_version) + ",\"suite\":";
  TraceWriter::append_json_string(out, doc.suite);
  out += ",\n\"meta\":" + render_meta_json(doc.meta);
  out += ",\n\"results\":[";
  bool first = true;
  for (const BenchResult& r : results) {
    out += first ? "\n" : ",\n";
    first = false;
    append_result_json(out, r);
  }
  out += "\n]}\n";
  return out;
}

BenchDoc parse_bench_doc(const JsonValue& root) {
  if (!root.is_object()) schema_error("document is not an object");
  BenchDoc doc;
  doc.schema_version = static_cast<int>(require_number(root, "schema_version"));
  if (doc.schema_version != kBenchSchemaVersion) {
    schema_error("unsupported schema_version " +
                 std::to_string(doc.schema_version) + " (expected " +
                 std::to_string(kBenchSchemaVersion) + ")");
  }
  doc.suite = require_string(root, "suite");

  const JsonValue* meta = root.find("meta");
  if (meta == nullptr || !meta->is_object()) {
    schema_error("missing \"meta\" object");
  }
  doc.meta.git_sha = require_string(*meta, "git_sha");
  doc.meta.host = require_string(*meta, "host");
  doc.meta.threads = static_cast<int>(require_number(*meta, "threads"));
  doc.meta.scale = require_number(*meta, "scale");
  doc.meta.smoke = require_bool(*meta, "smoke");
  doc.meta.wall_time = require_string(*meta, "wall_time");

  const JsonValue* results = root.find("results");
  if (results == nullptr || results->kind() != JsonValue::Kind::kArray) {
    schema_error("missing \"results\" array");
  }
  for (const JsonValue& item : results->as_array()) {
    if (!item.is_object()) schema_error("results entry is not an object");
    BenchResult r;
    r.name = require_string(item, "name");
    r.config = require_string(item, "config");
    r.threads = static_cast<int>(require_number(item, "threads"));
    r.repeats = static_cast<int>(require_number(item, "repeats"));
    r.median_ms = require_number(item, "median_ms");
    r.p10_ms = require_number(item, "p10_ms");
    r.p90_ms = require_number(item, "p90_ms");
    r.mean_ms = require_number(item, "mean_ms");
    r.steady = require_bool(item, "steady");
    r.throughput = require_number(item, "throughput");
    r.throughput_unit = require_string(item, "throughput_unit");
    r.flops = static_cast<std::int64_t>(require_number(item, "flops"));
    r.bytes = static_cast<std::int64_t>(require_number(item, "bytes"));
    if (r.median_ms < 0.0 || r.repeats < 0) {
      schema_error("negative median_ms/repeats for \"" + r.name + "\"");
    }
    doc.results.push_back(std::move(r));
  }
  return doc;
}

BenchDoc parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw std::runtime_error("bench json: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_bench_doc(JsonValue::parse(buf.str()));
}

void write_bench_file(const std::string& path, const BenchDoc& doc) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    throw std::runtime_error("bench json: cannot write " + path);
  }
  out << render_bench_json(doc);
  if (!out.good()) {
    throw std::runtime_error("bench json: write failed for " + path);
  }
}

const char* verdict_name(DiffRow::Verdict v) {
  switch (v) {
    case DiffRow::Verdict::kOk:
      return "ok";
    case DiffRow::Verdict::kImproved:
      return "improved";
    case DiffRow::Verdict::kRegressed:
      return "REGRESSED";
    case DiffRow::Verdict::kNew:
      return "new";
    case DiffRow::Verdict::kMissing:
      return "MISSING";
  }
  return "?";
}

std::vector<DiffRow> diff_baselines(const BenchDoc& baseline,
                                    const BenchDoc& current,
                                    double max_regress_pct) {
  std::map<std::string, const BenchResult*> base_rows;
  for (const BenchResult& r : baseline.results) {
    base_rows[row_key(r.name, r.config, r.threads)] = &r;
  }
  std::map<std::string, const BenchResult*> cur_rows;
  for (const BenchResult& r : current.results) {
    cur_rows[row_key(r.name, r.config, r.threads)] = &r;
  }

  std::vector<DiffRow> rows;
  for (const auto& [key, base] : base_rows) {
    DiffRow row;
    row.key = key;
    row.baseline_median_ms = base->median_ms;
    row.baseline_throughput = base->throughput;
    row.throughput_unit = base->throughput_unit;
    const auto it = cur_rows.find(key);
    if (it == cur_rows.end()) {
      row.verdict = DiffRow::Verdict::kMissing;
      rows.push_back(std::move(row));
      continue;
    }
    row.current_median_ms = it->second->median_ms;
    row.current_throughput = it->second->throughput;
    if (!it->second->throughput_unit.empty()) {
      row.throughput_unit = it->second->throughput_unit;
    }
    if (base->median_ms > 0.0) {
      row.delta_pct = 100.0 * (row.current_median_ms - base->median_ms) /
                      base->median_ms;
    }
    if (row.delta_pct > max_regress_pct) {
      row.verdict = DiffRow::Verdict::kRegressed;
    } else if (row.delta_pct < -max_regress_pct) {
      row.verdict = DiffRow::Verdict::kImproved;
    } else {
      row.verdict = DiffRow::Verdict::kOk;
    }
    rows.push_back(std::move(row));
  }
  for (const auto& [key, cur] : cur_rows) {
    if (base_rows.find(key) != base_rows.end()) continue;
    DiffRow row;
    row.key = key;
    row.current_median_ms = cur->median_ms;
    row.current_throughput = cur->throughput;
    row.throughput_unit = cur->throughput_unit;
    row.verdict = DiffRow::Verdict::kNew;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const DiffRow& a, const DiffRow& b) { return a.key < b.key; });
  return rows;
}

bool diff_has_failure(const std::vector<DiffRow>& rows, bool missing_fails) {
  for (const DiffRow& row : rows) {
    if (row.verdict == DiffRow::Verdict::kRegressed) return true;
    if (missing_fails && row.verdict == DiffRow::Verdict::kMissing) {
      return true;
    }
  }
  return false;
}

}  // namespace a3cs::obs::perf
