#include "obs/perf/work_counters.h"

#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "obs/perf/chrome_trace.h"
#include "obs/trace.h"

namespace a3cs::obs::perf {

namespace {

struct WorkRegistry {
  std::mutex mu;
  // std::map keeps snapshot/emission order sorted (byte-stable output).
  std::map<std::string, std::unique_ptr<WorkCounters>> counters;
};

WorkRegistry& work_registry() {
  // Leaked singleton: magic-static init is thread-safe, the pointer is never
  // reassigned, and all mutation goes through mu. A3CS_LINT(conc-static-local)
  static WorkRegistry* registry = new WorkRegistry();
  return *registry;
}

}  // namespace

struct WorkRegistryAccess {
  static WorkCounters* make() { return new WorkCounters(); }
};

WorkCounters& WorkCounters::named(const std::string& kernel) {
  WorkRegistry& reg = work_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto& slot = reg.counters[kernel];
  if (!slot) slot.reset(WorkRegistryAccess::make());
  return *slot;
}

void WorkCounters::add(std::int64_t flops, std::int64_t bytes_read,
                       std::int64_t bytes_written) {
  flops_.fetch_add(flops, std::memory_order_relaxed);
  bytes_read_.fetch_add(bytes_read, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes_written, std::memory_order_relaxed);
  chrome_annotate_work(flops, bytes_read, bytes_written);
}

std::map<std::string, WorkSnapshot> work_snapshot() {
  WorkRegistry& reg = work_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::map<std::string, WorkSnapshot> out;
  for (const auto& [name, wc] : reg.counters) {
    out[name] = WorkSnapshot{wc->flops(), wc->bytes_read(),
                             wc->bytes_written()};
  }
  return out;
}

void reset_work_counters() {
  WorkRegistry& reg = work_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, wc] : reg.counters) wc->reset();
}

void record_work_metrics() {
  MetricsRegistry& metrics = MetricsRegistry::global();
  for (const auto& [name, snap] : work_snapshot()) {
    metrics.gauge("work." + name + ".flops")
        .set(static_cast<double>(snap.flops));
    metrics.gauge("work." + name + ".bytes_read")
        .set(static_cast<double>(snap.bytes_read));
    metrics.gauge("work." + name + ".bytes_written")
        .set(static_cast<double>(snap.bytes_written));
    if (snap.flops == 0 && snap.bytes_read == 0 && snap.bytes_written == 0) {
      continue;
    }
    trace_event("work")
        .kv("kernel", name)
        .kv("flops", snap.flops)
        .kv("bytes_read", snap.bytes_read)
        .kv("bytes_written", snap.bytes_written)
        .kv("intensity",
            snap.bytes_read + snap.bytes_written > 0
                ? static_cast<double>(snap.flops) /
                      static_cast<double>(snap.bytes_read + snap.bytes_written)
                : 0.0);
  }
}

}  // namespace a3cs::obs::perf
