// Schema-versioned BENCH_*.json artifacts and the regression-diff engine
// behind tools/bench_report.
//
// Document layout (schema_version 1):
//
//   {"schema_version":1,"suite":"kernels",
//    "meta":{"git_sha":...,"host":...,"threads":...,"scale":...,
//            "smoke":...,"wall_time":...},
//    "results":[{"name":"gemm","config":"m256_k256_n256","threads":1,
//                "repeats":12,"median_ms":...,"p10_ms":...,"p90_ms":...,
//                "mean_ms":...,"steady":true,"throughput":...,
//                "throughput_unit":"calls/s","flops":...,"bytes":...},...]}
//
// Rendering is byte-stable: fixed key order, results sorted by
// (name, config, threads), numbers via TraceWriter::append_json_number. Only
// meta.wall_time carries wall-clock data — every content field is
// deterministic given fixed inputs, so tests can compare rendered documents
// byte-for-byte.
//
// parse_bench_doc() is strict: missing required keys, a wrong schema_version,
// or mistyped fields throw std::runtime_error with the offending key, so a
// hand-edited baseline fails loudly instead of diffing garbage.
#pragma once

#include <string>
#include <vector>

#include "obs/perf/bench.h"
#include "obs/perf/run_meta.h"

namespace a3cs::obs {
class JsonValue;
}

namespace a3cs::obs::perf {

inline constexpr int kBenchSchemaVersion = 1;

struct BenchDoc {
  int schema_version = kBenchSchemaVersion;
  std::string suite;
  RunMeta meta;
  std::vector<BenchResult> results;  // sorted by (name, config, threads)
};

// Renders the full document (trailing newline included).
std::string render_bench_json(const BenchDoc& doc);

// Strict parse; throws std::runtime_error on any schema violation.
BenchDoc parse_bench_doc(const JsonValue& root);
// Reads + parses a file; throws std::runtime_error when unreadable/invalid.
BenchDoc parse_bench_file(const std::string& path);

// Renders `doc` to `path` (truncate); throws on I/O failure.
void write_bench_file(const std::string& path, const BenchDoc& doc);

// One row of a baseline-vs-current comparison, keyed by
// (name, config, threads).
struct DiffRow {
  enum class Verdict {
    kOk,         // |delta| within threshold
    kImproved,   // median dropped by more than the threshold
    kRegressed,  // median rose by more than the threshold
    kNew,        // present in current only
    kMissing,    // present in baseline only
  };

  std::string key;  // "name/config/t<threads>"
  double baseline_median_ms = 0.0;
  double current_median_ms = 0.0;
  double delta_pct = 0.0;  // 100 * (current - baseline) / baseline
  // Derived throughput (0 when the row carries none). The unit comes from
  // the current run, falling back to the baseline for kMissing rows.
  double baseline_throughput = 0.0;
  double current_throughput = 0.0;
  std::string throughput_unit;
  Verdict verdict = Verdict::kOk;
};

const char* verdict_name(DiffRow::Verdict v);

// Compares `current` against `baseline`. A row regresses when its median
// rises more than `max_regress_pct` percent; it improves when the median
// drops more than the same threshold. Rows come back sorted by key.
std::vector<DiffRow> diff_baselines(const BenchDoc& baseline,
                                    const BenchDoc& current,
                                    double max_regress_pct);

// True when any row is kRegressed (kMissing counts as a failure too when
// `missing_fails` — a silently dropped bench must not pass the gate).
bool diff_has_failure(const std::vector<DiffRow>& rows,
                      bool missing_fails = true);

}  // namespace a3cs::obs::perf
