#include "obs/perf/run_meta.h"

#include <sys/utsname.h>

#include <thread>

#include "obs/trace.h"
#include "util/config.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace a3cs::obs::perf {

namespace {

// Build-time git SHA injected by CMake (see src/obs/CMakeLists.txt); the
// A3CS_GIT_SHA environment variable overrides it so CI can stamp artifacts
// without reconfiguring.
#ifndef A3CS_GIT_SHA
#define A3CS_GIT_SHA "unknown"
#endif

std::string host_fingerprint() {
  struct utsname u {};
  std::string node = "unknown";
  std::string machine = "unknown";
  if (uname(&u) == 0) {
    node = u.nodename;
    machine = u.machine;
  }
  // Hardware query only, no thread creation. A3CS_LINT(conc-raw-thread)
  const unsigned hc = std::thread::hardware_concurrency();
  return node + "/" + machine + "/" + std::to_string(hc) + "c";
}

}  // namespace

RunMeta collect_run_meta() {
  RunMeta meta;
  meta.git_sha = util::env_string("A3CS_GIT_SHA", A3CS_GIT_SHA);
  meta.host = host_fingerprint();
  meta.threads = util::ThreadPool::global().threads();
  meta.scale = util::bench_scale();
  meta.smoke = util::env_int("A3CS_BENCH_SMOKE", 0) != 0;
  meta.wall_time = util::iso8601_now();
  return meta;
}

std::string render_meta_json(const RunMeta& meta) {
  std::string out = "{\"git_sha\":";
  TraceWriter::append_json_string(out, meta.git_sha);
  out += ",\"host\":";
  TraceWriter::append_json_string(out, meta.host);
  out += ",\"threads\":" + std::to_string(meta.threads);
  out += ",\"scale\":";
  TraceWriter::append_json_number(out, meta.scale);
  out += meta.smoke ? ",\"smoke\":true" : ",\"smoke\":false";
  out += ",\"wall_time\":";
  TraceWriter::append_json_string(out, meta.wall_time);
  out += "}";
  return out;
}

}  // namespace a3cs::obs::perf
