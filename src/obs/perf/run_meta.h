// Provenance metadata stamped into every perf artifact (BENCH_*.json, Chrome
// traces): git SHA, host fingerprint, thread count, A3CS_SCALE, wall-clock
// time. This is the ONE place wall-clock values are allowed to appear in perf
// output — every content field outside the metadata block must be
// deterministic (docs/BENCHMARKING.md).
#pragma once

#include <string>

namespace a3cs::obs::perf {

struct RunMeta {
  std::string git_sha;    // A3CS_GIT_SHA env > build-time stamp > "unknown"
  std::string host;       // "<nodename>/<machine>/<hw_concurrency>c"
  int threads = 1;        // resolved global ThreadPool size
  double scale = 1.0;     // util::bench_scale()
  bool smoke = false;     // A3CS_BENCH_SMOKE=1 minimum-scale run
  std::string wall_time;  // ISO-8601, stamped at collection time
};

// Collects the current process's metadata (reads env, pool, clock once).
RunMeta collect_run_meta();

// Renders the meta block as a JSON object value (no trailing newline), keys
// in fixed order so emission is byte-stable for fixed field values.
std::string render_meta_json(const RunMeta& meta);

}  // namespace a3cs::obs::perf
