#include "obs/perf/bench.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "obs/obs_config.h"
#include "obs/perf/bench_json.h"
#include "obs/perf/chrome_trace.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/config.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace a3cs::obs::perf {

namespace {

std::atomic<BenchSuite::ClockFn> g_clock{nullptr};

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool smoke_mode() { return util::env_int("A3CS_BENCH_SMOKE", 0) != 0; }

// Parses env var `name` strictly: returns an error string when it is set but
// not a full valid number (or violates the positivity requirement).
std::string strict_env_error(const char* name, bool integer,
                             bool require_positive) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return "";
  const std::string text(raw);
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    if (integer) {
      value = static_cast<double>(std::stoll(text, &consumed));
    } else {
      value = std::stod(text, &consumed);
    }
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != text.size()) {
    return std::string(name) + "=\"" + text + "\" is not a valid " +
           (integer ? "integer" : "number");
  }
  if (require_positive && value <= 0.0) {
    return std::string(name) + "=\"" + text + "\" must be > 0";
  }
  return "";
}

}  // namespace

// ------------------------------------------------------------------ Bench ---

bool Bench::smoke() const { return smoke_mode(); }

void Bench::clear_staged() {
  config_.clear();
  threads_ = 0;
  flops_ = 0;
  bytes_ = 0;
  items_ = 0.0;
  items_unit_.clear();
  budget_ = BenchBudget{};
}

void Bench::run(const std::function<void()>& fn) {
  BenchBudget budget = budget_;
  if (smoke_mode()) {
    budget = BenchBudget{/*warmup=*/0, /*min_repeats=*/1, /*max_repeats=*/1,
                         /*min_total_ms=*/0.0};
  }
  const int prev_threads = util::ThreadPool::global().threads();
  if (threads_ > 0 && threads_ != prev_threads) {
    util::ThreadPool::set_global_threads(threads_);
  }

  for (int i = 0; i < budget.warmup; ++i) fn();

  std::vector<double> samples_ms;
  samples_ms.reserve(static_cast<std::size_t>(budget.max_repeats));
  double total_ms = 0.0;
  while (true) {
    const std::int64_t t0 = BenchSuite::now_ns();
    fn();
    const std::int64_t t1 = BenchSuite::now_ns();
    const double ms = static_cast<double>(t1 - t0) / 1e6;
    samples_ms.push_back(ms);
    total_ms += ms;
    const int n = static_cast<int>(samples_ms.size());
    if (n >= budget.max_repeats) break;
    if (n < budget.min_repeats) continue;
    if (total_ms < budget.min_total_ms) continue;
    std::vector<double> sorted = samples_ms;
    std::sort(sorted.begin(), sorted.end());
    const double median = exact_quantile(sorted, 0.5);
    const double spread =
        exact_quantile(sorted, 0.9) - exact_quantile(sorted, 0.1);
    if (spread <= 0.25 * median) break;
  }

  std::vector<double> sorted = samples_ms;
  std::sort(sorted.begin(), sorted.end());

  BenchResult result;
  result.name = name_;
  result.config = config_;
  result.threads = threads_ > 0 ? threads_ : prev_threads;
  result.repeats = static_cast<int>(samples_ms.size());
  result.median_ms = exact_quantile(sorted, 0.5);
  result.p10_ms = exact_quantile(sorted, 0.1);
  result.p90_ms = exact_quantile(sorted, 0.9);
  result.mean_ms =
      total_ms / static_cast<double>(std::max<std::size_t>(1, sorted.size()));
  result.steady =
      result.p90_ms - result.p10_ms <= 0.25 * result.median_ms;
  if (items_ > 0.0 && result.median_ms > 0.0) {
    result.throughput = items_ / (result.median_ms / 1e3);
    result.throughput_unit = items_unit_;
  } else if (flops_ > 0 && result.median_ms > 0.0) {
    // No explicit items: derive GFLOP/s from the analytic flops annotation
    // (flops per iteration / median seconds / 1e9).
    result.throughput =
        static_cast<double>(flops_) / (result.median_ms * 1e6);
    result.throughput_unit = "GFLOP/s";
  }
  result.flops = flops_;
  result.bytes = bytes_;
  suite_->record(std::move(result));

  if (threads_ > 0 && threads_ != prev_threads) {
    util::ThreadPool::set_global_threads(prev_threads);
  }
  clear_staged();
}

// -------------------------------------------------------------- BenchSuite --

BenchSuite& BenchSuite::global() {
  // Leaked singleton: populated during static init (single-threaded), run
  // from main. A3CS_LINT(conc-static-local)
  static BenchSuite* suite = new BenchSuite();
  return *suite;
}

void BenchSuite::add(const std::string& name, BenchFn fn) {
  benches_.emplace_back(name, fn);
}

std::vector<std::string> BenchSuite::names() const {
  std::vector<std::string> out;
  out.reserve(benches_.size());
  for (const auto& [name, fn] : benches_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

void BenchSuite::set_clock_for_test(ClockFn clock) {
  g_clock.store(clock, std::memory_order_relaxed);
}

std::int64_t BenchSuite::now_ns() {
  const ClockFn clock = g_clock.load(std::memory_order_relaxed);
  return clock != nullptr ? clock() : steady_now_ns();
}

void BenchSuite::record(BenchResult result) {
  results_.push_back(std::move(result));
}

std::vector<BenchResult> BenchSuite::run_all(const std::string& filter) {
  std::vector<std::pair<std::string, BenchFn>> sorted = benches_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  results_.clear();
  for (const auto& [name, fn] : sorted) {
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    Bench bench(this, name);
    fn(bench);
  }
  std::vector<BenchResult> out = std::move(results_);
  results_.clear();
  std::sort(out.begin(), out.end(),
            [](const BenchResult& a, const BenchResult& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.config != b.config) return a.config < b.config;
              return a.threads < b.threads;
            });
  return out;
}

double exact_quantile(const std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  if (sorted_ms.size() == 1) return sorted_ms.front();
  q = std::min(1.0, std::max(0.0, q));
  const double pos = q * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_ms[lo] + frac * (sorted_ms[hi] - sorted_ms[lo]);
}

std::vector<std::string> validate_bench_env() {
  std::vector<std::string> errors;
  const char* const float_vars[] = {"A3CS_SCALE"};
  const char* const positive_int_vars[] = {"A3CS_EVAL_EPISODES"};
  const char* const int_vars[] = {"A3CS_BENCH_SMOKE", "A3CS_THREADS"};
  for (const char* name : float_vars) {
    const std::string err =
        strict_env_error(name, /*integer=*/false, /*require_positive=*/true);
    if (!err.empty()) errors.push_back(err);
  }
  for (const char* name : positive_int_vars) {
    const std::string err =
        strict_env_error(name, /*integer=*/true, /*require_positive=*/true);
    if (!err.empty()) errors.push_back(err);
  }
  for (const char* name : int_vars) {
    const std::string err =
        strict_env_error(name, /*integer=*/true, /*require_positive=*/false);
    if (!err.empty()) errors.push_back(err);
  }
  return errors;
}

// ------------------------------------------------------------------- main ---

int run_bench_main(const std::string& suite_name, int argc, char** argv) {
  const std::vector<std::string> env_errors = validate_bench_env();
  if (!env_errors.empty()) {
    for (const std::string& err : env_errors) {
      std::cerr << "bench env error: " << err << "\n";
    }
    return 2;
  }

  std::string json_path = util::env_string("A3CS_BENCH_JSON", "");
  std::string filter;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_" << suite_name
                << " [--json out.json] [--filter substr] [--list]\n";
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  BenchSuite& suite = BenchSuite::global();
  if (list_only) {
    for (const std::string& name : suite.names()) std::cout << name << "\n";
    return 0;
  }

  const ObsConfig obs_cfg = ObsConfig{}.with_env_overrides();
  Profiler::set_enabled(obs_cfg.profile_enabled);
  TraceSession trace_session(obs_cfg);
  ChromeTraceSession chrome_session(obs_cfg);

  std::cout << "== bench suite: " << suite_name
            << " (scale=" << util::bench_scale()
            << (smoke_mode() ? ", SMOKE" : "") << ") ==\n";
  const std::vector<BenchResult> results = suite.run_all(filter);

  util::TextTable table({"bench", "config", "thr", "reps", "median ms",
                         "p10 ms", "p90 ms", "steady", "throughput"});
  for (const BenchResult& r : results) {
    std::string tp;
    if (r.throughput > 0.0) {
      tp = util::TextTable::num(r.throughput, 1) + " " + r.throughput_unit;
    }
    table.add_row({r.name, r.config, std::to_string(r.threads),
                   std::to_string(r.repeats),
                   util::TextTable::num(r.median_ms, 3),
                   util::TextTable::num(r.p10_ms, 3),
                   util::TextTable::num(r.p90_ms, 3), r.steady ? "yes" : "NO",
                   tp});
  }
  table.print(std::cout);

  if (!json_path.empty()) {
    BenchDoc doc;
    doc.suite = suite_name;
    doc.meta = collect_run_meta();
    doc.results = results;
    write_bench_file(json_path, doc);
    std::cout << "wrote " << json_path << " (" << results.size()
              << " results)\n";
  }
  if (obs_cfg.profile_enabled && obs_cfg.profile_summary) {
    Profiler::global().print_summary(std::cout);
  }
  return 0;
}

}  // namespace a3cs::obs::perf
