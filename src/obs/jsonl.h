// Minimal JSON parser for reading back JSONL traces (trace_report, tests).
// Supports the subset TraceWriter emits — objects, arrays, strings, numbers,
// booleans, null — with strict syntax checking; parse errors throw
// std::runtime_error with position information.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace a3cs::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  // Object member access; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  // Convenience getters with fallbacks (also used by trace_report).
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  // Parses one complete JSON document; trailing non-whitespace is an error.
  static JsonValue parse(const std::string& text);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses a whole JSONL file: one JSON object per non-empty line.
std::vector<JsonValue> parse_jsonl_file(const std::string& path);

// Appends a JSON number at max_digits10 precision (%.17g), so
// parse(append(v)) reproduces v's exact bit pattern — for protocol replies
// whose numbers feed back into cache keys or comparisons (src/serve).
// TraceWriter::append_json_number stays at %.12g: trace files are for humans
// and plots, and the 5 extra digits would bloat every event line.
// Non-finite doubles become null (JSON has no Inf/NaN).
void append_json_number_exact(std::string& out, double v);

}  // namespace a3cs::obs
