#include "obs/profile.h"

#include <cstring>

#include "obs/perf/chrome_trace.h"
#include "obs/trace.h"
#include "util/table.h"

namespace a3cs::obs {
namespace {

// Per-thread position in the scope tree; nullptr means "at the root". Each
// thread walks its own path, so concurrent scopes under the same parent
// merge into shared nodes (totals and call counts just accumulate).
thread_local Profiler::Node* t_cursor = nullptr;

}  // namespace

Profiler::Profiler() : root_{"", nullptr, {}, {}, {}} {}

Profiler& Profiler::global() {
  // Leaked singleton: magic-static init is thread-safe, the pointer is never
  // reassigned, and all mutation goes through mu_. A3CS_LINT(conc-static-local)
  static Profiler* profiler = new Profiler();
  return *profiler;
}

Profiler::Node* Profiler::enter(const char* name) {
  // Chrome-trace Begin event (and the frame WorkCounters annotate) happens
  // before taking the profiler mutex so concurrent scopes don't serialize on
  // it; the chrome writer has its own lock.
  perf::chrome_scope_begin(name);
  Node* parent = t_cursor != nullptr ? t_cursor : &root_;
  std::lock_guard<std::mutex> lock(mu_);
  for (Node* child : parent->children) {
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      t_cursor = child;
      return child;
    }
  }
  Node* child = new Node{name, parent, {}, {}, {}};
  parent->children.push_back(child);
  t_cursor = child;
  return child;
}

void Profiler::leave(Node* node, std::int64_t elapsed_ns) {
  node->total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  node->calls.fetch_add(1, std::memory_order_relaxed);
  t_cursor = node->parent == &root_ ? nullptr : node->parent;
  perf::chrome_scope_end();
}

void Profiler::flatten_into(const Node* node, const std::string& prefix,
                            int depth, std::int64_t parent_ns,
                            std::vector<FlatNode>& out) const {
  for (const Node* child : node->children) {
    FlatNode flat;
    flat.path = prefix.empty() ? child->name : prefix + "/" + child->name;
    flat.depth = depth;
    flat.total_ns = child->total_ns.load(std::memory_order_relaxed);
    flat.calls = child->calls.load(std::memory_order_relaxed);
    flat.fraction_of_parent =
        parent_ns > 0
            ? static_cast<double>(flat.total_ns) /
                  static_cast<double>(parent_ns)
            : 1.0;
    const std::string child_prefix = flat.path;
    const std::int64_t child_ns = flat.total_ns;
    out.push_back(std::move(flat));
    flatten_into(child, child_prefix, depth + 1, child_ns, out);
  }
}

std::vector<Profiler::FlatNode> Profiler::flatten() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Top-level scopes are shown as fractions of their combined total, so the
  // first column of a single-root profile reads as 100%.
  std::int64_t top_total = 0;
  for (const Node* child : root_.children) {
    top_total += child->total_ns.load(std::memory_order_relaxed);
  }
  std::vector<FlatNode> out;
  flatten_into(&root_, "", 0, top_total, out);
  return out;
}

void Profiler::print_summary(std::ostream& out) const {
  const std::vector<FlatNode> nodes = flatten();
  if (nodes.empty()) return;
  util::TextTable table({"scope", "calls", "total ms", "mean us", "% parent"});
  for (const FlatNode& n : nodes) {
    const std::size_t cut = n.path.find_last_of('/');
    const std::string leaf =
        cut == std::string::npos ? n.path : n.path.substr(cut + 1);
    const double total_ms = static_cast<double>(n.total_ns) / 1e6;
    const double mean_us =
        n.calls > 0
            ? static_cast<double>(n.total_ns) / static_cast<double>(n.calls) /
                  1e3
            : 0.0;
    table.add_row({std::string(static_cast<std::size_t>(2 * n.depth), ' ') +
                       leaf,
                   std::to_string(n.calls), util::TextTable::num(total_ms, 2),
                   util::TextTable::num(mean_us, 2),
                   util::TextTable::num(100.0 * n.fraction_of_parent, 1)});
  }
  table.print(out);
}

void Profiler::emit_to_trace(TraceWriter& trace) const {
  for (const FlatNode& n : flatten()) {
    trace.event("profile")
        .kv("path", n.path)
        .kv("depth", n.depth)
        .kv("calls", n.calls)
        .kv("total_ms", static_cast<double>(n.total_ns) / 1e6)
        .kv("pct_of_parent", 100.0 * n.fraction_of_parent);
  }
}

namespace {
void delete_subtree(Profiler::Node* node) {
  for (Profiler::Node* child : node->children) delete_subtree(child);
  delete node;
}
}  // namespace

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Node* child : root_.children) delete_subtree(child);
  root_.children.clear();
  t_cursor = nullptr;
}

}  // namespace a3cs::obs
