// Hierarchical wall-time profiling scopes.
//
//   void one_iteration() {
//     A3CS_PROF_SCOPE("iter");
//     { A3CS_PROF_SCOPE("rollout"); ... }      // nests under "iter"
//     { A3CS_PROF_SCOPE("a2c-update"); ... }
//   }
//
// Scopes form a tree by lexical nesting (tracked with a thread-local cursor);
// the same name under the same parent accumulates total time and call count.
// Scope names must be string literals (or otherwise outlive the profiler) —
// nodes store the pointer, not a copy.
//
// Profiling is globally off by default. When disabled, a ProfScope costs one
// relaxed atomic load and a branch; no clock is read and no nodes are
// touched, so instrumented hot paths are essentially free. Enable with
// Profiler::set_enabled(true) (ObsConfig/A3CS_PROFILE=1 do this for runs).
//
// The end-of-run summary renders the tree as a util::TextTable with per-node
// total/mean/%-of-parent, and can be emitted into a TraceWriter as "profile"
// events for offline analysis by the trace_report tool.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace a3cs::obs {

class TraceWriter;

class Profiler {
 public:
  struct Node {
    const char* name;
    Node* parent;                  // nullptr for the root
    std::vector<Node*> children;   // append-only, guarded by Profiler mutex
    std::atomic<std::int64_t> total_ns{0};
    std::atomic<std::int64_t> calls{0};
  };

  struct FlatNode {
    std::string path;    // "/"-joined, e.g. "cosearch/iter/rollout"
    int depth = 0;
    std::int64_t total_ns = 0;
    std::int64_t calls = 0;
    double fraction_of_parent = 1.0;
  };

  static Profiler& global();

  static bool enabled() {
    return global().enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    global().enabled_.store(on, std::memory_order_relaxed);
  }

  // Enters/leaves a scope on the calling thread. Exposed for ProfScope; not
  // meant to be called directly.
  Node* enter(const char* name);
  void leave(Node* node, std::int64_t elapsed_ns);

  // Depth-first snapshot of the tree (root excluded). Safe to call while
  // scopes are running; in-flight scopes simply aren't counted yet.
  std::vector<FlatNode> flatten() const;

  // Renders the hierarchy as an aligned table: scope, calls, total ms,
  // mean us, % of parent.
  void print_summary(std::ostream& out) const;

  // Emits one "profile" event per node into `trace`.
  void emit_to_trace(TraceWriter& trace) const;

  // Drops all recorded nodes (for test isolation / back-to-back runs).
  void reset();

 private:
  Profiler();
  void flatten_into(const Node* node, const std::string& prefix, int depth,
                    std::int64_t parent_ns,
                    std::vector<FlatNode>& out) const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards tree structure (child creation/iteration)
  Node root_;
};

// RAII timer: enters the named scope on construction (when profiling is
// enabled), accumulates elapsed wall time on destruction.
class ProfScope {
 public:
  explicit ProfScope(const char* name) {
    if (Profiler::enabled()) {
      node_ = Profiler::global().enter(name);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfScope() {
    if (node_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      Profiler::global().leave(node_, ns);
    }
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler::Node* node_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace a3cs::obs

#define A3CS_PROF_CONCAT_INNER(a, b) a##b
#define A3CS_PROF_CONCAT(a, b) A3CS_PROF_CONCAT_INNER(a, b)
// Times the enclosing block under `name` (a string literal) in the global
// hierarchical profiler.
#define A3CS_PROF_SCOPE(name) \
  ::a3cs::obs::ProfScope A3CS_PROF_CONCAT(a3cs_prof_scope_, __LINE__)(name)
