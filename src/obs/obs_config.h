// Observability configuration, threaded through CoSearchConfig (and usable
// standalone by benches/tools). Environment variables mirror A3CS_LOG_LEVEL
// so a run can be instrumented without recompiling or touching configs:
//
//   A3CS_TRACE_PATH=search.jsonl   enable JSONL tracing to this file
//   A3CS_TRACE=0|1                 force tracing off/on (path defaults to
//                                  a3cs_trace.jsonl when enabled without one)
//   A3CS_TRACE_FLUSH_EVERY=N       flush the trace file every N events
//   A3CS_TRACE_EVERY=N             emit every Nth per-iteration event
//   A3CS_PROFILE=0|1               hierarchical wall-time profiling scopes
//   A3CS_PROFILE_SUMMARY=0|1       print the profile table at end of run
//   A3CS_PROFILE_CHROME=out.json   export ProfScopes as Chrome/Perfetto
//                                  trace_events JSON (implies A3CS_PROFILE=1)
#pragma once

#include <string>

namespace a3cs::obs {

struct ObsConfig {
  // JSONL run tracing (TraceWriter). Disabled by default; enabling without a
  // path writes to "a3cs_trace.jsonl".
  bool trace_enabled = false;
  std::string trace_path;
  int trace_flush_every = 64;
  // Emit every Nth per-iteration trace event (1 = every iteration). Phase
  // and summary events are never thinned.
  int trace_every = 1;

  // Hierarchical ProfScope wall-time profiling.
  bool profile_enabled = false;
  // Print the profile summary table (via util::TextTable) when a run that
  // enabled profiling finishes.
  bool profile_summary = true;
  // When non-empty, export scopes as Chrome trace_events JSON to this path
  // (openable in chrome://tracing / ui.perfetto.dev). Implies
  // profile_enabled.
  std::string profile_chrome_path;

  // Returns a copy with environment-variable overrides applied on top of
  // the programmatic values (env wins, matching A3CS_LOG_LEVEL semantics).
  ObsConfig with_env_overrides() const;
};

}  // namespace a3cs::obs
