// Structured JSONL run tracing.
//
// A TraceWriter appends one JSON object per line to a file:
//
//   {"ts_ms":12.345,"type":"cosearch_iter","frames":640,"loss_total":1.23,...}
//
// `ts_ms` is a monotonic (steady_clock) offset from writer creation, so event
// deltas are wall-time accurate even if the system clock steps; the opening
// "trace_start" event records the ISO-8601 wall-clock time for anchoring.
// Writers are thread-safe (one line is committed atomically under a mutex)
// and buffer lines, flushing every `flush_every` events.
//
// Most call sites go through the process-global trace slot:
//
//   obs::TraceSession session(cfg);   // RAII: installs a global writer
//   obs::trace_event("phase").kv("name", "rollout").kv("dur_ms", 3.2);
//
// When no session is active, trace_event() costs one atomic load and the
// builder's kv() calls are no-ops — tracing disabled is near-free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

namespace a3cs::obs {

struct ObsConfig;

class TraceWriter {
 public:
  // Opens (truncates) `path`; throws on failure. Emits a "trace_start"
  // header event.
  explicit TraceWriter(const std::string& path, int flush_every = 64);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  const std::string& path() const { return path_; }
  std::int64_t events_written() const {
    return events_.load(std::memory_order_relaxed);
  }
  void flush();

  // Builder for one event line. Committed (written to the file) when the
  // builder is destroyed, i.e. at the end of the full expression:
  //   writer.event("iter").kv("frames", n).kv("loss", l);
  class EventBuilder {
   public:
    EventBuilder(TraceWriter* writer, std::string_view type);
    ~EventBuilder();
    EventBuilder(EventBuilder&& other) noexcept;
    EventBuilder(const EventBuilder&) = delete;
    EventBuilder& operator=(const EventBuilder&) = delete;
    EventBuilder& operator=(EventBuilder&&) = delete;

    EventBuilder& kv(std::string_view key, double v);
    EventBuilder& kv(std::string_view key, std::int64_t v);
    EventBuilder& kv(std::string_view key, int v) {
      return kv(key, static_cast<std::int64_t>(v));
    }
    EventBuilder& kv(std::string_view key, bool v);
    EventBuilder& kv(std::string_view key, std::string_view v);
    EventBuilder& kv(std::string_view key, const char* v) {
      return kv(key, std::string_view(v));
    }

   private:
    TraceWriter* writer_;  // nullptr => inactive no-op builder
    std::string line_;
  };

  EventBuilder event(std::string_view type) { return EventBuilder(this, type); }

  // Appends a JSON-escaped string literal (quotes included) to `out`.
  static void append_json_string(std::string& out, std::string_view s);
  // Appends a JSON number; non-finite doubles become null.
  static void append_json_number(std::string& out, double v);

 private:
  friend class EventBuilder;
  void commit(std::string&& line);
  double elapsed_ms() const;

  std::string path_;
  int flush_every_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
  std::ofstream file_;
  int pending_ = 0;
  std::atomic<std::int64_t> events_{0};
};

// ---------------------------------------------------------------- global ----

// The process-global trace slot used by instrumented library code. At most
// one writer is active at a time; nested TraceSessions are no-ops.
TraceWriter* global_trace();

// RAII owner of the global trace slot. If `cfg.trace_enabled` and no session
// is already active, opens a writer at cfg.trace_path; otherwise inert.
class TraceSession {
 public:
  explicit TraceSession(const ObsConfig& cfg);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return owned_ != nullptr; }
  TraceWriter* writer() { return owned_; }

 private:
  TraceWriter* owned_ = nullptr;
};

// Event builder against the global slot; inert (near-free) when no session
// is active.
TraceWriter::EventBuilder trace_event(std::string_view type);
inline bool trace_active() { return global_trace() != nullptr; }

}  // namespace a3cs::obs
