#include "obs/jsonl.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace a3cs::obs {
namespace {

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw std::runtime_error("JSON parse error at byte " + std::to_string(pos) +
                           ": " + what);
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return JsonValue();
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    // Members land in a std::map, so re-serialized or iterated objects are
    // always key-sorted — byte-stable regardless of source order (the same
    // determinism contract a3cs-lint's det-unordered-iter rule enforces on
    // the writer side).
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.object_[key.string_] = parse_value();
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == '}') return v;
      if (sep != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == ']') return v;
      if (sep != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string_ += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string_ += '"'; break;
        case '\\': v.string_ += '\\'; break;
        case '/': v.string_ += '/'; break;
        case 'n': v.string_ += '\n'; break;
        case 'r': v.string_ += '\r'; break;
        case 't': v.string_ += '\t'; break;
        case 'b': v.string_ += '\b'; break;
        case 'f': v.string_ += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape", pos_);
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // TraceWriter only emits \u00XX control escapes; decode those and
          // pass anything else through as '?' rather than implementing UTF-16.
          v.string_ += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value", pos_);
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double num = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') fail("bad number: " + tok, start);
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = num;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("JSON: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("JSON: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("JSON: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("JSON: not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("JSON: not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

std::vector<JsonValue> parse_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("parse_jsonl_file: cannot open " + path);
  std::vector<JsonValue> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      out.push_back(JsonValue::parse(line));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  return out;
}

void append_json_number_exact(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace a3cs::obs
