#include "nn/layers.h"

#include <algorithm>

#include "nn/init.h"
#include "obs/perf/work_counters.h"
#include "obs/profile.h"
#include "tensor/backend/backend.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace a3cs::nn {

using tensor::ConvGeometry;
using tensor::gemm_raw;

// ---------------------------------------------------------------- Conv2d --

Conv2d::Conv2d(std::string name, int in_c, int out_c, int kernel, int stride,
               int pad, util::Rng& rng)
    : name_(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(name_ + ".weight", Shape::mat(out_c, in_c * kernel * kernel)),
      bias_(name_ + ".bias", Shape::vec(out_c)) {
  A3CS_CHECK(in_c > 0 && out_c > 0 && kernel > 0, "bad conv dims");
  he_normal(weight_.value, in_c * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& x) {
  A3CS_CHECK(x.shape().rank() == 4 && x.shape()[1] == in_c_,
             name_ + ": input shape mismatch " + x.shape().to_string());
  geom_ = ConvGeometry::make(x.shape(), kernel_, kernel_, stride_, pad_);
  const int ckk = in_c_ * kernel_ * kernel_;
  const int cols_per_sample = geom_.oh * geom_.ow;
  cached_cols_ = Tensor(Shape::mat(ckk, geom_.n * cols_per_sample));
  // im2col lays samples out contiguously along the column axis, so a single
  // whole-batch call produces per-sample (ckk x ohw) slices.
  tensor::im2col(x, geom_, cached_cols_);
  has_cache_ = true;

  Tensor out(Shape::nchw(geom_.n, out_c_, geom_.oh, geom_.ow));
  const int batch_cols = geom_.n * cols_per_sample;
  A3CS_PROF_SCOPE("conv-fwd");
  {
    // One FMA per (sample, out-channel, ckk, output-cell); weights and cols
    // read once each per use, output written once (float32). The zero-weight
    // skip below only reduces *measured* time, not the analytic model.
    static obs::perf::WorkCounters& wc =
        obs::perf::WorkCounters::named("conv-fwd");
    const std::int64_t out_cells =
        static_cast<std::int64_t>(geom_.n) * out_c_ * cols_per_sample;
    wc.add(2 * out_cells * ckk,
           4 * (static_cast<std::int64_t>(out_c_) * ckk +
                static_cast<std::int64_t>(ckk) * batch_cols),
           4 * out_cells);
  }
  // out_slice(OC x ohw) = W(OC x ckk) @ cols_slice(ckk x ohw) per sample.
  // cols_slice starts at column n*ohw of the (ckk x N*ohw) matrix, so we
  // cannot hand the whole batch to one GEMM; instead each (sample, out
  // channel) row is an independent unit of work — disjoint output rows, so
  // the fan-out over the pool is race-free and bit-exact at any thread count.
  // The per-task kernel comes from the active backend (see
  // tensor/backend/backend.h); shard boundaries are backend-independent.
  const tensor::backend::Backend& be = tensor::backend::active();
  const std::int64_t total = static_cast<std::int64_t>(geom_.n) * out_c_;
  const std::int64_t row_work =
      static_cast<std::int64_t>(ckk) * cols_per_sample;
  const std::int64_t grain =
      std::max<std::int64_t>(1, 65536 / std::max<std::int64_t>(1, row_work));
  util::parallel_for(
      0, total, grain,
      [&](std::int64_t t0, std::int64_t t1) {
        be.conv_forward_tasks(weight_.value.data(), bias_.value.data(),
                              cached_cols_.data(), out.data(), out_c_, ckk,
                              cols_per_sample, batch_cols, t0, t1);
      },
      "conv-fwd");
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  A3CS_CHECK(has_cache_, name_ + ": backward before forward");
  A3CS_CHECK(grad_out.shape() ==
                 Shape::nchw(geom_.n, out_c_, geom_.oh, geom_.ow),
             name_ + ": grad_out shape mismatch");
  const int ckk = in_c_ * kernel_ * kernel_;
  const int ohw = geom_.oh * geom_.ow;
  const int batch_cols = geom_.n * ohw;
  A3CS_PROF_SCOPE("conv-bwd");
  {
    // Weight-grad and input-grad passes are each a GEMM-shaped reduction of
    // the same (n, oc, ckk, ohw) volume — 2 FMAs per element in total.
    static obs::perf::WorkCounters& wc =
        obs::perf::WorkCounters::named("conv-bwd");
    const std::int64_t vol =
        static_cast<std::int64_t>(geom_.n) * out_c_ * ckk * ohw;
    const std::int64_t grad_cells = static_cast<std::int64_t>(ckk) * batch_cols;
    wc.add(4 * vol,
           4 * (static_cast<std::int64_t>(geom_.n) * out_c_ * ohw +
                grad_cells + static_cast<std::int64_t>(out_c_) * ckk),
           4 * (static_cast<std::int64_t>(out_c_) * ckk + grad_cells));
  }

  // Bias and weight gradients, fanned out over output channels: each oc owns
  // bias_.grad[oc] and its weight row, so shards write disjoint accumulators.
  // The batch loop stays innermost and ascending inside the backend kernel,
  // matching the serial accumulation order bit for bit (per backend).
  const tensor::backend::Backend& be = tensor::backend::active();
  util::parallel_for(
      0, out_c_, 4,
      [&](std::int64_t oc0, std::int64_t oc1) {
        be.conv_backward_wgrad(grad_out.data(), cached_cols_.data(),
                               weight_.grad.data(), bias_.grad.data(),
                               geom_.n, out_c_, ckk, ohw, batch_cols,
                               static_cast<int>(oc0), static_cast<int>(oc1));
      },
      "conv-bwd");

  // Column gradient, fanned out over samples (disjoint column slices):
  // grad_cols_slice(ckk x ohw) = W^T(ckk x OC) @ g(OC x ohw).
  Tensor grad_cols(Shape::mat(ckk, batch_cols));
  util::parallel_for(
      0, geom_.n, 1,
      [&](std::int64_t n0, std::int64_t n1) {
        be.conv_backward_colgrad(grad_out.data(), weight_.value.data(),
                                 grad_cols.data(), out_c_, ckk, ohw,
                                 batch_cols, static_cast<int>(n0),
                                 static_cast<int>(n1));
      },
      "conv-bwd");

  Tensor grad_input(Shape::nchw(geom_.n, in_c_, geom_.h, geom_.w));
  tensor::col2im(grad_cols, geom_, grad_input);
  has_cache_ = false;
  return grad_input;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

// ------------------------------------------------------- DepthwiseConv2d --

DepthwiseConv2d::DepthwiseConv2d(std::string name, int channels, int kernel,
                                 int stride, int pad, util::Rng& rng)
    : name_(std::move(name)),
      channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(name_ + ".weight", Shape::mat(channels, kernel * kernel)),
      bias_(name_ + ".bias", Shape::vec(channels)) {
  he_normal(weight_.value, kernel * kernel, rng);
}

Tensor DepthwiseConv2d::forward(const Tensor& x) {
  A3CS_CHECK(x.shape().rank() == 4 && x.shape()[1] == channels_,
             name_ + ": input shape mismatch");
  const auto g =
      ConvGeometry::make(x.shape(), kernel_, kernel_, stride_, pad_);
  cached_input_ = x;
  has_cache_ = true;
  Tensor out(Shape::nchw(g.n, channels_, g.oh, g.ow));
  for (int n = 0; n < g.n; ++n) {
    for (int c = 0; c < channels_; ++c) {
      const float* w =
          weight_.value.data() + static_cast<std::size_t>(c) * kernel_ * kernel_;
      const float b = bias_.value[c];
      for (int oy = 0; oy < g.oh; ++oy) {
        for (int ox = 0; ox < g.ow; ++ox) {
          float acc = b;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ - pad_ + ky;
            if (iy < 0 || iy >= g.h) continue;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ - pad_ + kx;
              if (ix < 0 || ix >= g.w) continue;
              acc += w[ky * kernel_ + kx] * x.at4(n, c, iy, ix);
            }
          }
          out.at4(n, c, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_out) {
  A3CS_CHECK(has_cache_, name_ + ": backward before forward");
  const Tensor& x = cached_input_;
  const auto g =
      ConvGeometry::make(x.shape(), kernel_, kernel_, stride_, pad_);
  A3CS_CHECK(grad_out.shape() == Shape::nchw(g.n, channels_, g.oh, g.ow),
             name_ + ": grad_out shape mismatch");
  Tensor grad_input(x.shape());
  for (int n = 0; n < g.n; ++n) {
    for (int c = 0; c < channels_; ++c) {
      const float* w =
          weight_.value.data() + static_cast<std::size_t>(c) * kernel_ * kernel_;
      float* wg =
          weight_.grad.data() + static_cast<std::size_t>(c) * kernel_ * kernel_;
      double bias_acc = 0.0;
      for (int oy = 0; oy < g.oh; ++oy) {
        for (int ox = 0; ox < g.ow; ++ox) {
          const float go = grad_out.at4(n, c, oy, ox);
          bias_acc += go;
          if (go == 0.0f) continue;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ - pad_ + ky;
            if (iy < 0 || iy >= g.h) continue;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ - pad_ + kx;
              if (ix < 0 || ix >= g.w) continue;
              wg[ky * kernel_ + kx] += go * x.at4(n, c, iy, ix);
              grad_input.at4(n, c, iy, ix) += go * w[ky * kernel_ + kx];
            }
          }
        }
      }
      bias_.grad[c] += static_cast<float>(bias_acc);
    }
  }
  has_cache_ = false;
  return grad_input;
}

void DepthwiseConv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

// ---------------------------------------------------------------- Linear --

Linear::Linear(std::string name, int in_features, int out_features,
               util::Rng& rng, float init_scale)
    : name_(std::move(name)),
      in_f_(in_features),
      out_f_(out_features),
      weight_(name_ + ".weight", Shape::mat(out_features, in_features)),
      bias_(name_ + ".bias", Shape::vec(out_features)) {
  he_normal(weight_.value, in_features, rng);
  if (init_scale != 1.0f) scale_init(weight_.value, init_scale);
}

Tensor Linear::forward(const Tensor& x) {
  A3CS_CHECK(x.shape().rank() == 2 && x.shape()[1] == in_f_,
             name_ + ": input shape mismatch " + x.shape().to_string());
  cached_input_ = x;
  has_cache_ = true;
  const int n = x.shape()[0];
  Tensor out(Shape::mat(n, out_f_));
  for (int i = 0; i < n; ++i) {
    float* orow = out.data() + static_cast<std::size_t>(i) * out_f_;
    for (int o = 0; o < out_f_; ++o) orow[o] = bias_.value[o];
  }
  // out(n x OUT) += x(n x IN) @ W^T(IN x OUT)
  gemm_raw(x.data(), false, weight_.value.data(), true, out.data(), n, in_f_,
           out_f_, 1.0f, 1.0f);
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  A3CS_CHECK(has_cache_, name_ + ": backward before forward");
  const int n = cached_input_.shape()[0];
  A3CS_CHECK(grad_out.shape() == Shape::mat(n, out_f_),
             name_ + ": grad_out shape mismatch");
  // grad_W(OUT x IN) += g^T(OUT x n) @ x(n x IN)
  gemm_raw(grad_out.data(), true, cached_input_.data(), false,
           weight_.grad.data(), out_f_, n, in_f_, 1.0f, 1.0f);
  // grad_b += column sums of g
  for (int i = 0; i < n; ++i) {
    const float* grow = grad_out.data() + static_cast<std::size_t>(i) * out_f_;
    for (int o = 0; o < out_f_; ++o) bias_.grad[o] += grow[o];
  }
  // grad_x(n x IN) = g(n x OUT) @ W(OUT x IN)
  Tensor grad_input(Shape::mat(n, in_f_));
  gemm_raw(grad_out.data(), false, weight_.value.data(), false,
           grad_input.data(), n, out_f_, in_f_, 1.0f, 0.0f);
  has_cache_ = false;
  return grad_input;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

// ------------------------------------------------------------------ ReLU --

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  has_cache_ = true;
  Tensor out = x;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  A3CS_CHECK(has_cache_, name_ + ": backward before forward");
  A3CS_CHECK(grad_out.same_shape(cached_input_),
             name_ + ": grad_out shape mismatch");
  Tensor grad_input = grad_out;
  for (std::int64_t i = 0; i < grad_input.numel(); ++i) {
    if (cached_input_[i] <= 0.0f) grad_input[i] = 0.0f;
  }
  has_cache_ = false;
  return grad_input;
}

// --------------------------------------------------------------- Flatten --

Tensor Flatten::forward(const Tensor& x) {
  A3CS_CHECK(x.shape().rank() == 4, name_ + ": expects NCHW input");
  cached_shape_ = x.shape();
  const int n = x.shape()[0];
  const int f = static_cast<int>(x.numel() / n);
  return x.reshaped(Shape::mat(n, f));
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_shape_);
}

// ------------------------------------------------------------ Sequential --

Sequential& Sequential::add(std::unique_ptr<Module> m) {
  children_.push_back(std::move(m));
  return *this;
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& child : children_) cur = child->forward(cur);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& child : children_) child->collect_parameters(out);
}

}  // namespace a3cs::nn
