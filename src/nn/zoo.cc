#include "nn/zoo.h"

#include "nn/blocks.h"
#include "util/logging.h"

namespace a3cs::nn {
namespace {

// Tracks the activation geometry while stacking layers so module construction
// and LayerSpec emission cannot drift apart.
struct BackboneBuilder {
  explicit BackboneBuilder(const ObsSpec& obs)
      : c(obs.channels), h(obs.height), w(obs.width) {
    seq = std::make_unique<Sequential>("backbone");
  }

  void conv_relu(const std::string& name, int out_c, int kernel, int stride,
                 util::Rng& rng) {
    seq->add(std::make_unique<Conv2d>(name, c, out_c, kernel, stride,
                                      kernel / 2, rng));
    seq->add(std::make_unique<ReLU>(name + ".relu"));
    specs.push_back(LayerSpec::conv(name, c, out_c, kernel, stride, h, w));
    c = out_c;
    h = specs.back().out_h;
    w = specs.back().out_w;
  }

  void residual(const std::string& name, int out_c, int stride,
                util::Rng& rng) {
    seq->add(std::make_unique<ResidualBlock>(name, c, out_c, 3, stride, rng));
    // A residual block contributes two 3x3 convs (+ projection if shapes
    // change); the accelerator sees them as distinct layers.
    specs.push_back(LayerSpec::conv(name + ".conv1", c, out_c, 3, stride, h, w));
    const int oh = specs.back().out_h, ow = specs.back().out_w;
    specs.push_back(LayerSpec::conv(name + ".conv2", out_c, out_c, 3, 1, oh, ow));
    if (c != out_c || stride != 1) {
      specs.push_back(LayerSpec::conv(name + ".proj", c, out_c, 1, stride, h, w));
    }
    c = out_c;
    h = oh;
    w = ow;
  }

  void flatten_fc_relu(const std::string& name, int out_f, util::Rng& rng) {
    seq->add(std::make_unique<Flatten>());
    const int in_f = c * h * w;
    seq->add(std::make_unique<Linear>(name, in_f, out_f, rng));
    seq->add(std::make_unique<ReLU>(name + ".relu"));
    specs.push_back(LayerSpec::linear(name, in_f, out_f));
    c = out_f;
    h = w = 1;
  }

  BackboneBuild finish() {
    BackboneBuild out;
    out.module = std::move(seq);
    assign_sequential_groups(specs);  // zoo nets: one pipeline unit per layer
    out.specs = std::move(specs);
    out.feature_dim = c;
    return out;
  }

  std::unique_ptr<Sequential> seq;
  std::vector<LayerSpec> specs;
  int c, h, w;
};

constexpr int kFeatureDim = 256;

int blocks_for_name(const std::string& name) {
  // Paper depths 14/20/38/74 -> (depth - 2) / 6 blocks per stage.
  if (name == "ResNet-14") return 2;
  if (name == "ResNet-20") return 3;
  if (name == "ResNet-38") return 6;
  if (name == "ResNet-74") return 12;
  return -1;
}

}  // namespace

BackboneBuild build_vanilla(const ObsSpec& obs, util::Rng& rng) {
  BackboneBuilder b(obs);
  // DQN's conv8x8s4 / conv4x4s2 scaled to MiniArcade frames.
  b.conv_relu("stem", 16, 3, 2, rng);
  b.conv_relu("conv2", 32, 3, 2, rng);
  b.flatten_fc_relu("fc", kFeatureDim, rng);
  return b.finish();
}

BackboneBuild build_resnet(const ObsSpec& obs, int blocks_per_stage,
                           int base_width, util::Rng& rng) {
  A3CS_CHECK(blocks_per_stage >= 1, "resnet needs at least one block");
  BackboneBuilder b(obs);
  b.conv_relu("stem", base_width, 3, 2, rng);  // paper: first conv stride 2
  const int widths[3] = {base_width, base_width * 2, base_width * 4};
  for (int stage = 0; stage < 3; ++stage) {
    for (int block = 0; block < blocks_per_stage; ++block) {
      const int stride = (stage > 0 && block == 0) ? 2 : 1;
      b.residual("s" + std::to_string(stage) + "b" + std::to_string(block),
                 widths[stage], stride, rng);
    }
  }
  b.flatten_fc_relu("fc", kFeatureDim, rng);
  return b.finish();
}

const std::vector<std::string>& zoo_model_names() {
  static const std::vector<std::string> names = {
      "Vanilla", "ResNet-14", "ResNet-20", "ResNet-38", "ResNet-74"};
  return names;
}

AgentBuild build_zoo_agent(const std::string& model_name, const ObsSpec& obs,
                           int num_actions, util::Rng& rng) {
  BackboneBuild bb;
  if (model_name == "Vanilla") {
    bb = build_vanilla(obs, rng);
  } else {
    const int blocks = blocks_for_name(model_name);
    A3CS_CHECK(blocks > 0, "unknown zoo model: " + model_name);
    bb = build_resnet(obs, blocks, /*base_width=*/8, rng);
  }
  AgentBuild out;
  out.specs = std::move(bb.specs);
  out.net = std::make_unique<ActorCriticNet>(std::move(bb.module),
                                             bb.feature_dim, num_actions, rng);
  return out;
}

std::vector<LayerSpec> zoo_model_specs(const std::string& model_name,
                                       const ObsSpec& obs, int num_actions) {
  util::Rng rng(1);  // weights are discarded; only geometry matters
  auto agent = build_zoo_agent(model_name, obs, num_actions, rng);
  return agent.specs;
}

}  // namespace a3cs::nn
