// The model zoo: the five baseline backbones the paper evaluates (the DQN
// "Vanilla" net and ResNet-14/20/38/74 proxies), built for MiniArcade-scale
// observations. Every builder returns both the runnable Module and the
// LayerSpec list the accelerator predictor consumes.
//
// Scaling note (see DESIGN.md): the paper's nets run on 84x84x4 Atari frames;
// ours run on small multi-plane MiniArcade frames with proportionally smaller
// channel widths, preserving the FLOPs ladder Vanilla < ResNet-14 < -20 <
// -38 < -74 and the structural choices the paper calls out (first conv
// stride 2, final FC-256 feature layer).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/actor_critic.h"
#include "nn/layer_spec.h"
#include "nn/module.h"
#include "nn/obs_spec.h"

namespace a3cs::nn {

struct BackboneBuild {
  std::unique_ptr<Module> module;
  std::vector<LayerSpec> specs;
  int feature_dim = 0;
};

// DQN-style small net: two strided convs + FC-256.
BackboneBuild build_vanilla(const ObsSpec& obs, util::Rng& rng);

// ResNet proxy with `blocks_per_stage` residual blocks in each of 3 stages
// (widths w, 2w, 4w), stem stride 2, final FC-256.
BackboneBuild build_resnet(const ObsSpec& obs, int blocks_per_stage,
                           int base_width, util::Rng& rng);

// The names the paper's tables use.
const std::vector<std::string>& zoo_model_names();

// Builds a full actor-critic agent for a named zoo model
// ("Vanilla", "ResNet-14", "ResNet-20", "ResNet-38", "ResNet-74").
struct AgentBuild {
  std::unique_ptr<ActorCriticNet> net;
  std::vector<LayerSpec> specs;
};
AgentBuild build_zoo_agent(const std::string& model_name, const ObsSpec& obs,
                           int num_actions, util::Rng& rng);

// LayerSpecs only (no weights), for hardware-side experiments that never run
// the network.
std::vector<LayerSpec> zoo_model_specs(const std::string& model_name,
                                       const ObsSpec& obs, int num_actions);

}  // namespace a3cs::nn
