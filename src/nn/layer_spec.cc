#include "nn/layer_spec.h"

#include <algorithm>

#include "util/logging.h"

namespace a3cs::nn {

std::int64_t LayerSpec::macs() const {
  const std::int64_t out_spatial =
      static_cast<std::int64_t>(out_h) * out_w;
  switch (kind) {
    case Kind::kConv:
      return out_spatial * out_c * in_c * kernel * kernel;
    case Kind::kDepthwiseConv:
      return out_spatial * out_c * kernel * kernel;
    case Kind::kLinear:
      return static_cast<std::int64_t>(in_c) * out_c;
  }
  return 0;
}

std::int64_t LayerSpec::params() const {
  switch (kind) {
    case Kind::kConv:
      return static_cast<std::int64_t>(out_c) * in_c * kernel * kernel + out_c;
    case Kind::kDepthwiseConv:
      return static_cast<std::int64_t>(out_c) * kernel * kernel + out_c;
    case Kind::kLinear:
      return static_cast<std::int64_t>(out_c) * in_c + out_c;
  }
  return 0;
}

std::int64_t LayerSpec::input_elems() const {
  return static_cast<std::int64_t>(in_c) * in_h * in_w;
}

std::int64_t LayerSpec::weight_elems() const { return params(); }

std::int64_t LayerSpec::output_elems() const {
  return static_cast<std::int64_t>(out_c) * out_h * out_w;
}

LayerSpec LayerSpec::conv(std::string name, int in_c, int out_c, int kernel,
                          int stride, int in_h, int in_w) {
  LayerSpec s;
  s.kind = Kind::kConv;
  s.name = std::move(name);
  s.in_c = in_c;
  s.out_c = out_c;
  s.kernel = kernel;
  s.stride = stride;
  s.in_h = in_h;
  s.in_w = in_w;
  const int pad = kernel / 2;
  s.out_h = (in_h + 2 * pad - kernel) / stride + 1;
  s.out_w = (in_w + 2 * pad - kernel) / stride + 1;
  A3CS_CHECK(s.out_h > 0 && s.out_w > 0, "LayerSpec::conv empty output");
  return s;
}

LayerSpec LayerSpec::depthwise(std::string name, int channels, int kernel,
                               int stride, int in_h, int in_w) {
  LayerSpec s = conv(std::move(name), channels, channels, kernel, stride,
                     in_h, in_w);
  s.kind = Kind::kDepthwiseConv;
  return s;
}

LayerSpec LayerSpec::linear(std::string name, int in_f, int out_f) {
  LayerSpec s;
  s.kind = Kind::kLinear;
  s.name = std::move(name);
  s.in_c = in_f;
  s.out_c = out_f;
  s.kernel = 1;
  s.stride = 1;
  s.in_h = s.in_w = s.out_h = s.out_w = 1;
  return s;
}

std::int64_t network_macs(const std::vector<LayerSpec>& specs) {
  std::int64_t total = 0;
  for (const auto& s : specs) total += s.macs();
  return total;
}

std::int64_t network_params(const std::vector<LayerSpec>& specs) {
  std::int64_t total = 0;
  for (const auto& s : specs) total += s.params();
  return total;
}

void assign_sequential_groups(std::vector<LayerSpec>& specs) {
  int next = 0;
  for (auto& s : specs) {
    if (s.group >= 0) next = std::max(next, s.group + 1);
  }
  for (auto& s : specs) {
    if (s.group < 0) s.group = next++;
  }
}

int num_groups(const std::vector<LayerSpec>& specs) {
  int mx = -1;
  for (const auto& s : specs) mx = std::max(mx, s.group);
  return mx + 1;
}

}  // namespace a3cs::nn
