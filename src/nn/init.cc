#include "nn/init.h"

#include <cmath>

namespace a3cs::nn {

void he_normal(Tensor& w, int fan_in, util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void xavier_uniform(Tensor& w, int fan_in, int fan_out, util::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
}

void scale_init(Tensor& w, float scale) { w *= scale; }

}  // namespace a3cs::nn
