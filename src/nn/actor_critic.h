// Actor-critic network: a shared convolutional backbone (producing a 256-d
// feature vector, as in the paper's setup) with a policy-logit head and a
// scalar value head. The RL losses have closed-form gradients at the two
// heads, which `backward` accepts directly.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace a3cs::nn {

struct AcOutput {
  Tensor logits;  // (N, num_actions)
  Tensor value;   // (N, 1)
};

class ActorCriticNet {
 public:
  // `backbone` must map NCHW observations to (N, feature_dim) features.
  ActorCriticNet(std::unique_ptr<Module> backbone, int feature_dim,
                 int num_actions, util::Rng& rng);

  AcOutput forward(const Tensor& obs);

  // dlogits: (N, num_actions); dvalue: (N, 1). Accumulates into grads.
  void backward(const Tensor& dlogits, const Tensor& dvalue);

  std::vector<Parameter*> parameters();
  void zero_grad();
  std::int64_t num_parameters();

  int num_actions() const { return num_actions_; }
  Module& backbone() { return *backbone_; }

  // Checkpointing: name-keyed parameter dump. Loading matches tensors to
  // parameters BY NAME, so a reordered (or differently-built) layer list
  // fails loudly — missing, extra, duplicate or shape-mismatched names all
  // throw — instead of silently loading wrong weights into right slots.
  void save(const std::string& path);
  void load(const std::string& path);
  // Stream variants, used by the checkpoint subsystem to embed the
  // parameters as one section payload.
  void save_params(std::ostream& out);
  void load_params(std::istream& in);

  // Copies all weights from another net of identical construction.
  void copy_from(ActorCriticNet& other);

 private:
  std::unique_ptr<Module> backbone_;
  Linear policy_head_;
  Linear value_head_;
  int num_actions_;
  Tensor cached_features_;
  bool has_cache_ = false;
};

}  // namespace a3cs::nn
