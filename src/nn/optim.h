// First-order optimizers. RMSProp is the paper's agent optimizer, Adam its
// architecture-parameter optimizer; SGD(+momentum) is kept for tests and
// ablations.
//
// Optimizers keep per-parameter state keyed by Parameter pointer, so a single
// optimizer instance can be reused across calls as long as the parameter set
// is stable (the usual case).
#pragma once

#include <istream>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "nn/module.h"

namespace a3cs::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update using the accumulated gradients. Does NOT zero grads.
  virtual void step(const std::vector<Parameter*>& params) = 0;

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

  // Checkpointing: (de)serializes the per-parameter moments for `params`,
  // keyed by position in the vector — stable for identically-built networks
  // (the same guarantee module parameter collection gives). Parameters that
  // were never stepped round-trip as "absent" so a restored optimizer is
  // indistinguishable from the original. load_state throws on shape or
  // count mismatch.
  virtual void save_state(std::ostream& out,
                          const std::vector<Parameter*>& params) const = 0;
  virtual void load_state(std::istream& in,
                          const std::vector<Parameter*>& params) = 0;

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0)
      : Optimizer(lr), momentum_(momentum) {}

  void step(const std::vector<Parameter*>& params) override;
  void save_state(std::ostream& out,
                  const std::vector<Parameter*>& params) const override;
  void load_state(std::istream& in,
                  const std::vector<Parameter*>& params) override;

 private:
  // Hyperparameter, reconstructed from config on resume; checkpoints carry
  // only the moment tensors. A3CS_LINT(ser-field-coverage)
  double momentum_;
  std::unordered_map<Parameter*, Tensor> velocity_;
};

// RMSProp as in the DQN/A3C papers: v <- a*v + (1-a)*g^2; w -= lr*g/sqrt(v+eps)
class RmsProp : public Optimizer {
 public:
  explicit RmsProp(double lr, double alpha = 0.99, double eps = 1e-5)
      : Optimizer(lr), alpha_(alpha), eps_(eps) {}

  void step(const std::vector<Parameter*>& params) override;
  void save_state(std::ostream& out,
                  const std::vector<Parameter*>& params) const override;
  void load_state(std::istream& in,
                  const std::vector<Parameter*>& params) override;

 private:
  // Hyperparameters, reconstructed from config on resume.
  double alpha_, eps_;  // A3CS_LINT(ser-field-coverage)
  std::unordered_map<Parameter*, Tensor> sq_avg_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void step(const std::vector<Parameter*>& params) override;
  void save_state(std::ostream& out,
                  const std::vector<Parameter*>& params) const override;
  void load_state(std::istream& in,
                  const std::vector<Parameter*>& params) override;

 private:
  struct State {
    Tensor m;
    Tensor v;
    std::int64_t t = 0;
  };
  // Hyperparameters, reconstructed from config on resume.
  double beta1_, beta2_, eps_;  // A3CS_LINT(ser-field-coverage)
  std::unordered_map<Parameter*, State> state_;
};

// Linear learning-rate schedule matching the paper's agent schedule:
// constant `lr_start` for the first `hold_steps`, then linear decay to
// `lr_end` at `total_steps` (clamped afterwards).
class LinearLrSchedule {
 public:
  LinearLrSchedule(double lr_start, double lr_end, std::int64_t hold_steps,
                   std::int64_t total_steps)
      : lr_start_(lr_start),
        lr_end_(lr_end),
        hold_steps_(hold_steps),
        total_steps_(total_steps) {}

  double at(std::int64_t step) const;

 private:
  double lr_start_, lr_end_;
  std::int64_t hold_steps_, total_steps_;
};

}  // namespace a3cs::nn
