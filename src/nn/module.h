// Module-graph neural network library with exact analytical backward passes.
//
// Every Module owns its parameters (value + gradient) and caches whatever it
// needs from the last forward() so that the matching backward() can compute
// gradients without an autograd tape. A training step is:
//
//   auto y = net.forward(x);
//   ... compute dL/dy analytically (the RL losses have closed forms) ...
//   net.backward(dLdy);           // accumulates into Parameter::grad
//   optimizer.step(net.parameters());
//   net.zero_grad();
//
// backward(g) must be called at most once per forward() and returns dL/dx.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace a3cs::nn {

using tensor::Shape;
using tensor::Tensor;

// A learnable tensor plus its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Shape shape)
      : name(std::move(n)), value(shape), grad(shape) {}

  std::int64_t numel() const { return value.numel(); }
};

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // Computes the output for `x` and caches activations for backward().
  virtual Tensor forward(const Tensor& x) = 0;

  // Given dL/d(output of last forward), accumulates parameter gradients and
  // returns dL/d(input of last forward).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  // Appends pointers to all owned parameters (depth-first, stable order).
  virtual void collect_parameters(std::vector<Parameter*>& out) = 0;

  virtual std::string name() const = 0;

  std::vector<Parameter*> parameters();
  void zero_grad();
  std::int64_t num_parameters();
};

// Copies parameter values from `src` to `dst` (shapes and count must match;
// matching is positional, which is stable for identically-built networks).
void copy_parameters(Module& src, Module& dst);

// Global L2 norm plus finiteness of a parameter set, computed in ONE fused
// pass over the raw buffers: a single NaN/Inf element makes the squared-sum
// accumulator non-finite (double cannot overflow on float squares at any
// realistic element count), so `finite` falls out of the same loop that
// computes the norm — no separate per-element isfinite sweep.
struct NormStats {
  double norm = 0.0;    // sqrt(sum of squares); NaN/Inf when !finite
  bool finite = true;   // every element finite
};
NormStats grad_norm_stats(const std::vector<Parameter*>& params);
NormStats param_norm_stats(const std::vector<Parameter*>& params);

// Zeroes every gradient buffer (the "skip-and-zero" primitive of the
// training-health guard).
void zero_gradients(const std::vector<Parameter*>& params);

// Global L2-norm gradient clipping; returns the pre-clip norm. A non-finite
// pre-clip norm (any NaN/Inf gradient element) ZEROES all gradients — the
// subsequent optimizer step becomes a no-op instead of poisoning every
// weight — and the raw non-finite norm is returned so callers can observe
// and report the event (see docs/ROBUSTNESS.md).
float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm);

}  // namespace a3cs::nn
