#include "nn/optim.h"

#include <cmath>

namespace a3cs::nn {

void Sgd::step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    if (momentum_ == 0.0) {
      p->value.axpy(static_cast<float>(-lr_), p->grad);
      continue;
    }
    auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
    Tensor& v = it->second;
    for (std::int64_t i = 0; i < v.numel(); ++i) {
      v[i] = static_cast<float>(momentum_ * v[i] + p->grad[i]);
      p->value[i] -= static_cast<float>(lr_) * v[i];
    }
  }
}

void RmsProp::step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    auto [it, inserted] = sq_avg_.try_emplace(p, p->value.shape());
    Tensor& v = it->second;
    for (std::int64_t i = 0; i < v.numel(); ++i) {
      const double g = p->grad[i];
      v[i] = static_cast<float>(alpha_ * v[i] + (1.0 - alpha_) * g * g);
      p->value[i] -=
          static_cast<float>(lr_ * g / (std::sqrt(static_cast<double>(v[i])) +
                                        eps_));
    }
  }
}

void Adam::step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    auto it = state_.find(p);
    if (it == state_.end()) {
      it = state_.emplace(p, State{Tensor(p->value.shape()),
                                   Tensor(p->value.shape()), 0}).first;
    }
    State& s = it->second;
    ++s.t;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(s.t));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(s.t));
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const double g = p->grad[i];
      s.m[i] = static_cast<float>(beta1_ * s.m[i] + (1.0 - beta1_) * g);
      s.v[i] = static_cast<float>(beta2_ * s.v[i] + (1.0 - beta2_) * g * g);
      const double mhat = s.m[i] / bc1;
      const double vhat = s.v[i] / bc2;
      p->value[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

double LinearLrSchedule::at(std::int64_t step) const {
  if (step <= hold_steps_) return lr_start_;
  if (step >= total_steps_) return lr_end_;
  const double frac = static_cast<double>(step - hold_steps_) /
                      static_cast<double>(total_steps_ - hold_steps_);
  return lr_start_ + frac * (lr_end_ - lr_start_);
}

}  // namespace a3cs::nn
