#include "nn/optim.h"

#include <cmath>

#include "tensor/serialize.h"
#include "util/logging.h"
#include "util/state_io.h"

namespace a3cs::nn {
namespace {

namespace sio = util::sio;

// Per-parameter moment maps serialize positionally: u32 count, then for each
// parameter a presence flag + the tensor (absent = never stepped).
void save_moment_map(std::ostream& out, const std::vector<Parameter*>& params,
                     const std::unordered_map<Parameter*, Tensor>& moments) {
  sio::put_u32(out, static_cast<std::uint32_t>(params.size()));
  for (Parameter* p : params) {
    const auto it = moments.find(p);
    sio::put_bool(out, it != moments.end());
    if (it != moments.end()) tensor::write_tensor(out, it->second);
  }
}

void load_moment_map(std::istream& in, const std::vector<Parameter*>& params,
                     std::unordered_map<Parameter*, Tensor>& moments) {
  const std::uint32_t count = sio::get_u32(in);
  A3CS_CHECK(count == params.size(),
             "optimizer load_state: parameter count mismatch");
  moments.clear();
  for (Parameter* p : params) {
    if (!sio::get_bool(in)) continue;
    Tensor t = tensor::read_tensor(in);
    A3CS_CHECK(t.same_shape(p->value),
               "optimizer load_state: moment shape mismatch at " + p->name);
    moments.emplace(p, std::move(t));
  }
}

}  // namespace

void Sgd::step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    if (momentum_ == 0.0) {
      p->value.axpy(static_cast<float>(-lr_), p->grad);
      continue;
    }
    auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
    Tensor& v = it->second;
    for (std::int64_t i = 0; i < v.numel(); ++i) {
      v[i] = static_cast<float>(momentum_ * v[i] + p->grad[i]);
      p->value[i] -= static_cast<float>(lr_) * v[i];
    }
  }
}

void RmsProp::step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    auto [it, inserted] = sq_avg_.try_emplace(p, p->value.shape());
    Tensor& v = it->second;
    for (std::int64_t i = 0; i < v.numel(); ++i) {
      const double g = p->grad[i];
      v[i] = static_cast<float>(alpha_ * v[i] + (1.0 - alpha_) * g * g);
      p->value[i] -=
          static_cast<float>(lr_ * g / (std::sqrt(static_cast<double>(v[i])) +
                                        eps_));
    }
  }
}

void Adam::step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    auto it = state_.find(p);
    if (it == state_.end()) {
      it = state_.emplace(p, State{Tensor(p->value.shape()),
                                   Tensor(p->value.shape()), 0}).first;
    }
    State& s = it->second;
    ++s.t;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(s.t));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(s.t));
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const double g = p->grad[i];
      s.m[i] = static_cast<float>(beta1_ * s.m[i] + (1.0 - beta1_) * g);
      s.v[i] = static_cast<float>(beta2_ * s.v[i] + (1.0 - beta2_) * g * g);
      const double mhat = s.m[i] / bc1;
      const double vhat = s.v[i] / bc2;
      p->value[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

void Sgd::save_state(std::ostream& out,
                     const std::vector<Parameter*>& params) const {
  save_moment_map(out, params, velocity_);
}

void Sgd::load_state(std::istream& in, const std::vector<Parameter*>& params) {
  load_moment_map(in, params, velocity_);
}

void RmsProp::save_state(std::ostream& out,
                         const std::vector<Parameter*>& params) const {
  save_moment_map(out, params, sq_avg_);
}

void RmsProp::load_state(std::istream& in,
                         const std::vector<Parameter*>& params) {
  load_moment_map(in, params, sq_avg_);
}

void Adam::save_state(std::ostream& out,
                      const std::vector<Parameter*>& params) const {
  namespace sio = util::sio;
  sio::put_u32(out, static_cast<std::uint32_t>(params.size()));
  for (Parameter* p : params) {
    const auto it = state_.find(p);
    sio::put_bool(out, it != state_.end());
    if (it == state_.end()) continue;
    sio::put_i64(out, it->second.t);
    tensor::write_tensor(out, it->second.m);
    tensor::write_tensor(out, it->second.v);
  }
}

void Adam::load_state(std::istream& in, const std::vector<Parameter*>& params) {
  namespace sio = util::sio;
  const std::uint32_t count = sio::get_u32(in);
  A3CS_CHECK(count == params.size(),
             "Adam load_state: parameter count mismatch");
  state_.clear();
  for (Parameter* p : params) {
    if (!sio::get_bool(in)) continue;
    State s;
    s.t = sio::get_i64(in);
    s.m = tensor::read_tensor(in);
    s.v = tensor::read_tensor(in);
    A3CS_CHECK(s.m.same_shape(p->value) && s.v.same_shape(p->value),
               "Adam load_state: moment shape mismatch at " + p->name);
    state_.emplace(p, std::move(s));
  }
}

double LinearLrSchedule::at(std::int64_t step) const {
  if (step <= hold_steps_) return lr_start_;
  if (step >= total_steps_) return lr_end_;
  const double frac = static_cast<double>(step - hold_steps_) /
                      static_cast<double>(total_steps_ - hold_steps_);
  return lr_start_ + frac * (lr_end_ - lr_start_);
}

}  // namespace a3cs::nn
