#include "nn/actor_critic.h"

#include <unordered_map>

#include "nn/init.h"
#include "tensor/serialize.h"
#include "util/logging.h"

namespace a3cs::nn {

ActorCriticNet::ActorCriticNet(std::unique_ptr<Module> backbone,
                               int feature_dim, int num_actions,
                               util::Rng& rng)
    : backbone_(std::move(backbone)),
      // Small-scale head init keeps the initial policy near uniform and the
      // initial value near zero, which stabilizes early A2C updates.
      policy_head_("policy_head", feature_dim, num_actions, rng, 0.01f),
      value_head_("value_head", feature_dim, 1, rng, 0.1f),
      num_actions_(num_actions) {
  A3CS_CHECK(backbone_ != nullptr, "null backbone");
  A3CS_CHECK(num_actions > 0, "bad action count");
}

AcOutput ActorCriticNet::forward(const Tensor& obs) {
  cached_features_ = backbone_->forward(obs);
  A3CS_CHECK(cached_features_.shape().rank() == 2,
             "backbone must emit (N, F) features");
  has_cache_ = true;
  AcOutput out;
  out.logits = policy_head_.forward(cached_features_);
  out.value = value_head_.forward(cached_features_);
  return out;
}

void ActorCriticNet::backward(const Tensor& dlogits, const Tensor& dvalue) {
  A3CS_CHECK(has_cache_, "ActorCriticNet: backward before forward");
  Tensor g_feat = policy_head_.backward(dlogits);
  g_feat += value_head_.backward(dvalue);
  backbone_->backward(g_feat);
  has_cache_ = false;
}

std::vector<Parameter*> ActorCriticNet::parameters() {
  std::vector<Parameter*> out;
  backbone_->collect_parameters(out);
  policy_head_.collect_parameters(out);
  value_head_.collect_parameters(out);
  return out;
}

void ActorCriticNet::zero_grad() {
  for (Parameter* p : parameters()) p->grad.zero();
}

std::int64_t ActorCriticNet::num_parameters() {
  std::int64_t n = 0;
  for (Parameter* p : parameters()) n += p->numel();
  return n;
}

namespace {

// Name-keyed restore shared by the file and stream load paths. Every
// parameter must find exactly one same-named, same-shaped tensor, and every
// tensor must be consumed — anything else is a structural mismatch between
// the checkpoint and this network, reported loudly.
void assign_named(const std::vector<std::pair<std::string, Tensor>>& named,
                  const std::vector<Parameter*>& params) {
  std::unordered_map<std::string, const Tensor*> by_name;
  by_name.reserve(named.size());
  for (const auto& [name, t] : named) {
    const bool inserted = by_name.emplace(name, &t).second;
    A3CS_CHECK(inserted, "checkpoint has duplicate parameter name '" + name +
                             "' — cannot match unambiguously");
  }
  A3CS_CHECK(named.size() == params.size(),
             "checkpoint parameter count mismatch: file has " +
                 std::to_string(named.size()) + ", network has " +
                 std::to_string(params.size()));
  for (Parameter* p : params) {
    const auto it = by_name.find(p->name);
    A3CS_CHECK(it != by_name.end(),
               "checkpoint is missing parameter '" + p->name + "'");
    A3CS_CHECK(it->second->same_shape(p->value),
               "checkpoint shape mismatch at " + p->name);
    p->value = *it->second;
  }
}

}  // namespace

void ActorCriticNet::save(const std::string& path) {
  std::vector<std::pair<std::string, Tensor>> named;
  for (Parameter* p : parameters()) named.emplace_back(p->name, p->value);
  tensor::write_tensors(path, named);
}

void ActorCriticNet::load(const std::string& path) {
  assign_named(tensor::read_tensors(path), parameters());
}

void ActorCriticNet::save_params(std::ostream& out) {
  std::vector<std::pair<std::string, Tensor>> named;
  for (Parameter* p : parameters()) named.emplace_back(p->name, p->value);
  tensor::write_tensors(out, named);
}

void ActorCriticNet::load_params(std::istream& in) {
  assign_named(tensor::read_tensors(in), parameters());
}

void ActorCriticNet::copy_from(ActorCriticNet& other) {
  auto src = other.parameters();
  auto dst = parameters();
  A3CS_CHECK(src.size() == dst.size(), "copy_from: parameter count mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    A3CS_CHECK(src[i]->value.same_shape(dst[i]->value),
               "copy_from: shape mismatch at " + src[i]->name);
    dst[i]->value = src[i]->value;
  }
}

}  // namespace a3cs::nn
