// Composite blocks: residual blocks (ResNet proxies) and inverted-residual
// blocks (MobileNetV2-style), the candidate operators of the A3C-S supernet.
#pragma once

#include <memory>

#include "nn/layers.h"

namespace a3cs::nn {

// conv(k,s) -> ReLU -> conv(k,1) [+ optional 1x1/s projection skip] -> ReLU
class ResidualBlock : public Module {
 public:
  ResidualBlock(std::string name, int in_c, int out_c, int kernel, int stride,
                util::Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Conv2d conv1_;
  ReLU relu1_;
  Conv2d conv2_;
  ReLU relu2_;
  std::unique_ptr<Conv2d> proj_;  // non-null when in_c != out_c or stride > 1
  Tensor cached_skip_input_;      // input to the skip path (for proj backward)
  bool identity_skip_ = false;
};

// 1x1 expand -> ReLU -> depthwise k x k (stride) -> ReLU -> 1x1 project,
// with an identity skip when stride == 1 and in_c == out_c.
class InvertedResidual : public Module {
 public:
  InvertedResidual(std::string name, int in_c, int out_c, int kernel,
                   int expansion, int stride, util::Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  int expansion() const { return expansion_; }

 private:
  std::string name_;
  int expansion_;
  Conv2d expand_;
  ReLU relu1_;
  DepthwiseConv2d dw_;
  ReLU relu2_;
  Conv2d project_;
  bool has_skip_;
};

// Identity / strided-average "skip connection" operator for the supernet.
// With stride 1 and matching channels it is the identity; otherwise it
// downsamples by striding and matches channels with a (fixed, non-learned)
// channel replication/truncation so the op stays parameter-free.
class SkipOp : public Module {
 public:
  SkipOp(std::string name, int in_c, int out_c, int stride);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>&) override {}
  std::string name() const override { return name_; }

 private:
  std::string name_;
  int in_c_, out_c_, stride_;
  Shape cached_in_shape_;
};

}  // namespace a3cs::nn
