// Primitive layers: Conv2d, DepthwiseConv2d, Linear, ReLU, Flatten,
// Sequential. Each implements Module with an exact backward pass.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace a3cs::nn {

// Standard 2D convolution over NCHW input; weight layout (OC, C*KH*KW),
// lowered to per-sample im2col + GEMM.
class Conv2d : public Module {
 public:
  Conv2d(std::string name, int in_c, int out_c, int kernel, int stride,
         int pad, util::Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  int in_channels() const { return in_c_; }
  int out_channels() const { return out_c_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::string name_;
  int in_c_, out_c_, kernel_, stride_, pad_;
  Parameter weight_;  // (OC, C*KH*KW)
  Parameter bias_;    // (OC)
  Tensor cached_cols_;          // (C*KH*KW, N*OH*OW): im2col of last input
  tensor::ConvGeometry geom_{};
  bool has_cache_ = false;
};

// Depthwise 2D convolution: one k x k filter per channel.
class DepthwiseConv2d : public Module {
 public:
  DepthwiseConv2d(std::string name, int channels, int kernel, int stride,
                  int pad, util::Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  int channels() const { return channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  std::string name_;
  int channels_, kernel_, stride_, pad_;
  Parameter weight_;  // (C, KH*KW)
  Parameter bias_;    // (C)
  Tensor cached_input_;
  bool has_cache_ = false;
};

// Fully connected layer on (N, IN) matrices: out = x @ W^T + b.
class Linear : public Module {
 public:
  Linear(std::string name, int in_features, int out_features, util::Rng& rng,
         float init_scale = 1.0f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  int in_features() const { return in_f_; }
  int out_features() const { return out_f_; }

 private:
  std::string name_;
  int in_f_, out_f_;
  Parameter weight_;  // (OUT, IN)
  Parameter bias_;    // (OUT)
  Tensor cached_input_;
  bool has_cache_ = false;
};

// Elementwise max(x, 0).
class ReLU : public Module {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>&) override {}
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_input_;
  bool has_cache_ = false;
};

// NCHW -> (N, C*H*W).
class Flatten : public Module {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>&) override {}
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape cached_shape_;
};

// Runs children in order.
class Sequential : public Module {
 public:
  explicit Sequential(std::string name = "seq") : name_(std::move(name)) {}

  Sequential& add(std::unique_ptr<Module> m);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  std::size_t size() const { return children_.size(); }
  Module& child(std::size_t i) { return *children_[i]; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace a3cs::nn
