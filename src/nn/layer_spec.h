// Hardware-facing description of a network: an ordered list of layer
// workloads (convolutions / depthwise convolutions / fully-connected layers)
// with full geometry. This is the contract between the NN/NAS side and the
// accelerator side: the performance predictor consumes LayerSpecs only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace a3cs::nn {

struct LayerSpec {
  enum class Kind { kConv, kDepthwiseConv, kLinear };

  Kind kind = Kind::kConv;
  std::string name;
  int in_c = 0, out_c = 0;
  int kernel = 1;
  int stride = 1;
  int in_h = 1, in_w = 1;
  int out_h = 1, out_w = 1;
  // Structural unit this layer belongs to (stem / NAS cell / fc). The
  // accelerator's layer->chunk allocation is per group, so it stays
  // meaningful while NAS resamples the ops inside a cell. -1 = unassigned
  // (assign_sequential_groups gives every layer its own group).
  int group = -1;

  // Multiply-accumulate operations for one inference.
  std::int64_t macs() const;
  // Learnable parameter count (weights + biases).
  std::int64_t params() const;
  // Input / weight / output footprints in elements.
  std::int64_t input_elems() const;
  std::int64_t weight_elems() const;
  std::int64_t output_elems() const;

  static LayerSpec conv(std::string name, int in_c, int out_c, int kernel,
                        int stride, int in_h, int in_w);
  static LayerSpec depthwise(std::string name, int channels, int kernel,
                             int stride, int in_h, int in_w);
  static LayerSpec linear(std::string name, int in_f, int out_f);
};

// Total MACs of a network (2*macs = FLOPs).
std::int64_t network_macs(const std::vector<LayerSpec>& specs);
std::int64_t network_params(const std::vector<LayerSpec>& specs);

// Gives every spec with group == -1 its own group id (sequential).
void assign_sequential_groups(std::vector<LayerSpec>& specs);
// 1 + max group id (0 for an empty list).
int num_groups(const std::vector<LayerSpec>& specs);

}  // namespace a3cs::nn
