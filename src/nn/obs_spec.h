// Shape of an image observation (channels-first), shared between the
// environment suite (which produces observations) and the model zoo / NAS
// supernet (which consume them).
#pragma once

namespace a3cs::nn {

struct ObsSpec {
  int channels = 0;
  int height = 0;
  int width = 0;

  bool operator==(const ObsSpec& o) const {
    return channels == o.channels && height == o.height && width == o.width;
  }
};

}  // namespace a3cs::nn
