// Weight initialization schemes.
#pragma once

#include "nn/module.h"
#include "util/rng.h"

namespace a3cs::nn {

// He (Kaiming) normal: stddev = sqrt(2 / fan_in). The default for all
// ReLU-activated layers.
void he_normal(Tensor& w, int fan_in, util::Rng& rng);

// Xavier/Glorot uniform: limit = sqrt(6 / (fan_in + fan_out)). Used for the
// policy/value heads where we want small initial logits.
void xavier_uniform(Tensor& w, int fan_in, int fan_out, util::Rng& rng);

// Scales an already-initialized tensor (e.g. 0.01x policy head init).
void scale_init(Tensor& w, float scale);

}  // namespace a3cs::nn
