#include "nn/blocks.h"

#include "util/logging.h"

namespace a3cs::nn {

// --------------------------------------------------------- ResidualBlock --

ResidualBlock::ResidualBlock(std::string name, int in_c, int out_c, int kernel,
                             int stride, util::Rng& rng)
    : name_(std::move(name)),
      conv1_(name_ + ".conv1", in_c, out_c, kernel, stride, kernel / 2, rng),
      relu1_(name_ + ".relu1"),
      conv2_(name_ + ".conv2", out_c, out_c, kernel, 1, kernel / 2, rng),
      relu2_(name_ + ".relu2") {
  identity_skip_ = (in_c == out_c && stride == 1);
  if (!identity_skip_) {
    proj_ = std::make_unique<Conv2d>(name_ + ".proj", in_c, out_c, 1, stride,
                                     0, rng);
  }
}

Tensor ResidualBlock::forward(const Tensor& x) {
  cached_skip_input_ = x;
  Tensor main = conv2_.forward(relu1_.forward(conv1_.forward(x)));
  Tensor skip = identity_skip_ ? x : proj_->forward(x);
  main += skip;
  return relu2_.forward(main);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = relu2_.backward(grad_out);
  // The add node fans the gradient out to both paths unchanged.
  Tensor g_main = conv1_.backward(relu1_.backward(conv2_.backward(g)));
  Tensor g_skip = identity_skip_ ? g : proj_->backward(g);
  g_main += g_skip;
  return g_main;
}

void ResidualBlock::collect_parameters(std::vector<Parameter*>& out) {
  conv1_.collect_parameters(out);
  conv2_.collect_parameters(out);
  if (proj_) proj_->collect_parameters(out);
}

// ------------------------------------------------------ InvertedResidual --

InvertedResidual::InvertedResidual(std::string name, int in_c, int out_c,
                                   int kernel, int expansion, int stride,
                                   util::Rng& rng)
    : name_(std::move(name)),
      expansion_(expansion),
      expand_(name_ + ".expand", in_c, in_c * expansion, 1, 1, 0, rng),
      relu1_(name_ + ".relu1"),
      dw_(name_ + ".dw", in_c * expansion, kernel, stride, kernel / 2, rng),
      relu2_(name_ + ".relu2"),
      project_(name_ + ".project", in_c * expansion, out_c, 1, 1, 0, rng),
      has_skip_(stride == 1 && in_c == out_c) {}

Tensor InvertedResidual::forward(const Tensor& x) {
  Tensor out = project_.forward(
      relu2_.forward(dw_.forward(relu1_.forward(expand_.forward(x)))));
  if (has_skip_) out += x;
  return out;
}

Tensor InvertedResidual::backward(const Tensor& grad_out) {
  Tensor g = expand_.backward(
      relu1_.backward(dw_.backward(relu2_.backward(project_.backward(grad_out)))));
  if (has_skip_) g += grad_out;
  return g;
}

void InvertedResidual::collect_parameters(std::vector<Parameter*>& out) {
  expand_.collect_parameters(out);
  dw_.collect_parameters(out);
  project_.collect_parameters(out);
}

// ---------------------------------------------------------------- SkipOp --

SkipOp::SkipOp(std::string name, int in_c, int out_c, int stride)
    : name_(std::move(name)), in_c_(in_c), out_c_(out_c), stride_(stride) {
  A3CS_CHECK(stride >= 1, "SkipOp: bad stride");
}

Tensor SkipOp::forward(const Tensor& x) {
  A3CS_CHECK(x.shape().rank() == 4 && x.shape()[1] == in_c_,
             name_ + ": input shape mismatch");
  cached_in_shape_ = x.shape();
  if (in_c_ == out_c_ && stride_ == 1) return x;
  const int n = x.shape()[0], h = x.shape()[2], w = x.shape()[3];
  const int oh = (h + stride_ - 1) / stride_;
  const int ow = (w + stride_ - 1) / stride_;
  Tensor out(Shape::nchw(n, out_c_, oh, ow));
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_c_; ++oc) {
      const int ic = oc % in_c_;  // replicate channels cyclically
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          out.at4(b, oc, oy, ox) = x.at4(b, ic, oy * stride_, ox * stride_);
        }
      }
    }
  }
  return out;
}

Tensor SkipOp::backward(const Tensor& grad_out) {
  if (in_c_ == out_c_ && stride_ == 1) return grad_out;
  const int n = cached_in_shape_[0], h = cached_in_shape_[2],
            w = cached_in_shape_[3];
  const int oh = (h + stride_ - 1) / stride_;
  const int ow = (w + stride_ - 1) / stride_;
  A3CS_CHECK(grad_out.shape() == Shape::nchw(n, out_c_, oh, ow),
             name_ + ": grad_out shape mismatch");
  Tensor grad_input(cached_in_shape_);
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_c_; ++oc) {
      const int ic = oc % in_c_;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          grad_input.at4(b, ic, oy * stride_, ox * stride_) +=
              grad_out.at4(b, oc, oy, ox);
        }
      }
    }
  }
  return grad_input;
}

}  // namespace a3cs::nn
