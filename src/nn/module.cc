#include "nn/module.h"

#include <cmath>

#include "util/logging.h"

namespace a3cs::nn {

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  collect_parameters(out);
  return out;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->grad.zero();
}

std::int64_t Module::num_parameters() {
  std::int64_t n = 0;
  for (Parameter* p : parameters()) n += p->numel();
  return n;
}

void copy_parameters(Module& src, Module& dst) {
  auto sp = src.parameters();
  auto dp = dst.parameters();
  A3CS_CHECK(sp.size() == dp.size(), "copy_parameters: count mismatch");
  for (std::size_t i = 0; i < sp.size(); ++i) {
    A3CS_CHECK(sp[i]->value.same_shape(dp[i]->value),
               "copy_parameters: shape mismatch at " + sp[i]->name);
    dp[i]->value = sp[i]->value;
  }
}

namespace {

NormStats tensor_set_norm_stats(const std::vector<Parameter*>& params,
                                bool grads) {
  double total = 0.0;
  for (const Parameter* p : params) {
    const tensor::Tensor& t = grads ? p->grad : p->value;
    const float* data = t.data();
    const std::int64_t n = t.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const double v = static_cast<double>(data[i]);
      total += v * v;
    }
  }
  NormStats out;
  out.norm = std::sqrt(total);
  // NaN propagates through the sum and Inf saturates it, so the finiteness
  // of the accumulator IS the finiteness of the whole set.
  out.finite = std::isfinite(out.norm);
  return out;
}

}  // namespace

NormStats grad_norm_stats(const std::vector<Parameter*>& params) {
  return tensor_set_norm_stats(params, /*grads=*/true);
}

NormStats param_norm_stats(const std::vector<Parameter*>& params) {
  return tensor_set_norm_stats(params, /*grads=*/false);
}

void zero_gradients(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->grad.zero();
}

float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  const NormStats stats = grad_norm_stats(params);
  const float norm = static_cast<float>(stats.norm);
  if (!stats.finite) {
    // A non-finite norm means at least one gradient element is NaN/Inf;
    // scaling by max_norm/norm would spread the poison to EVERY element and
    // the optimizer would then corrupt every weight. Zero the batch instead
    // and surface the raw norm to the caller.
    zero_gradients(params);
    return norm;
  }
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) p->grad *= scale;
  }
  return norm;
}

}  // namespace a3cs::nn
