#include "nn/module.h"

#include <cmath>

#include "util/logging.h"

namespace a3cs::nn {

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  collect_parameters(out);
  return out;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->grad.zero();
}

std::int64_t Module::num_parameters() {
  std::int64_t n = 0;
  for (Parameter* p : parameters()) n += p->numel();
  return n;
}

void copy_parameters(Module& src, Module& dst) {
  auto sp = src.parameters();
  auto dp = dst.parameters();
  A3CS_CHECK(sp.size() == dp.size(), "copy_parameters: count mismatch");
  for (std::size_t i = 0; i < sp.size(); ++i) {
    A3CS_CHECK(sp[i]->value.same_shape(dp[i]->value),
               "copy_parameters: shape mismatch at " + sp[i]->name);
    dp[i]->value = sp[i]->value;
  }
}

float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  double total = 0.0;
  for (const Parameter* p : params) {
    const float n = p->grad.norm();
    total += static_cast<double>(n) * n;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) p->grad *= scale;
  }
  return norm;
}

}  // namespace a3cs::nn
