#include "core/result_io.h"

#include <fstream>

#include "accel/config_io.h"
#include "util/logging.h"

namespace a3cs::core {

void save_result(const std::string& path, const SavedResult& result) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_result: cannot open " + path);
  out << "game=" << result.game << "\n"
      << "arch=" << result.arch.to_string() << "\n"
      << "accel=" << accel::encode_config(result.accelerator) << "\n"
      << "test_score=" << result.test_score << "\n"
      << "fps=" << result.fps << "\n"
      << "dsp=" << result.dsp << "\n";
  if (!out) throw std::runtime_error("save_result: write failed " + path);
}

SavedResult load_result(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_result: cannot open " + path);
  SavedResult result;
  bool have_arch = false, have_accel = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    A3CS_CHECK(eq != std::string::npos,
               "load_result: malformed line '" + line + "'");
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "game") {
      result.game = value;
    } else if (key == "arch") {
      result.arch = nas::DerivedArch::from_string(value);
      have_arch = true;
    } else if (key == "accel") {
      result.accelerator = accel::decode_config(value);
      have_accel = true;
    } else if (key == "test_score") {
      result.test_score = std::stod(value);
    } else if (key == "fps") {
      result.fps = std::stod(value);
    } else if (key == "dsp") {
      result.dsp = std::stoi(value);
    } else {
      throw std::runtime_error("load_result: unknown key '" + key + "'");
    }
  }
  A3CS_CHECK(have_arch && have_accel,
             "load_result: missing arch or accel in " + path);
  return result;
}

}  // namespace a3cs::core
