// End-to-end A3C-S pipeline (what Fig. 3 / Table III measure):
//   1. co-search agent + accelerator on the target game,
//   2. train the derived agent from scratch with AC-distillation,
//   3. run the full DAS on the final network for the deployment accelerator,
//   4. report (test score, FPS).
// Plus the shared helpers the benchmark harnesses use to train/evaluate zoo
// and derived agents under identical settings.
#pragma once

#include <memory>
#include <string>

#include "core/cosearch.h"
#include "rl/eval.h"
#include "rl/teacher.h"

namespace a3cs::core {

struct PipelineConfig {
  CoSearchConfig cosearch;
  std::int64_t search_frames = 20000;
  std::int64_t train_frames = 30000;   // derived-agent training budget
  das::DasConfig final_das;            // deployment accelerator search
  rl::EvalConfig eval;
};

struct PipelineResult {
  nas::DerivedArch arch;
  double test_score = 0.0;
  accel::AcceleratorConfig accelerator;
  accel::HwEval hw;
  std::vector<nn::LayerSpec> specs;
  std::unique_ptr<nn::ActorCriticNet> trained_net;
};

PipelineResult run_a3cs_pipeline(const std::string& game_title,
                                 const PipelineConfig& cfg,
                                 nn::ActorCriticNet* teacher);

// Trains a fresh agent realizing `arch` on `game_title` (AC-distillation if
// `teacher` != null) and returns the net + its specs.
struct TrainedAgent {
  std::unique_ptr<nn::ActorCriticNet> net;
  std::vector<nn::LayerSpec> specs;
};
TrainedAgent train_derived_agent(const std::string& game_title,
                                 const nas::DerivedArch& arch,
                                 const nas::SearchSpaceConfig& space,
                                 std::int64_t frames,
                                 const rl::A2cConfig& a2c,
                                 nn::ActorCriticNet* teacher,
                                 std::uint64_t seed_value);

// Trains a zoo model ("Vanilla", "ResNet-14", ...) under the same protocol.
TrainedAgent train_zoo_agent_on_game(const std::string& game_title,
                                     const std::string& model_name,
                                     std::int64_t frames,
                                     const rl::A2cConfig& a2c,
                                     nn::ActorCriticNet* teacher,
                                     std::uint64_t seed_value);

// Full DAS accelerator search for a fixed network.
accel::HwEval search_accelerator(const std::vector<nn::LayerSpec>& specs,
                                 int num_chunks, const das::DasConfig& cfg,
                                 accel::AcceleratorConfig* out_config = nullptr);

}  // namespace a3cs::core
