// The A3C-S co-search engine (paper Alg. 1): joint differentiable search over
// DRL agent architectures (alpha, via the supernet) and accelerator designs
// (phi, via the DAS engine), trained with the AC-distillation-stabilized A2C
// objective. Each iteration:
//
//   1. roll out `rollout_len` steps with the single-path-sampled supernet
//      policy (Eq. 6),
//   2. update phi on the currently sampled network (Eq. 9, the "chicken-and-
//      egg" approximation of Sec. IV-A),
//   3. one A2C update of the supernet weights theta_pi/theta_v and the
//      architecture parameters alpha on L_task (Eq. 12, multi-path backward
//      Eq. 7), plus the layer-wise hardware-cost penalty on alpha (Eq. 8)
//      evaluated on hw(phi*),
//
// using one-level optimization by default; the bi-level ablation (Sec. V-D)
// alternates theta updates on one rollout and alpha updates on the next.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "accel/hw_types.h"
#include "arcade/vec_env.h"
#include "ckpt/manager.h"
#include "das/das.h"
#include "guard/policy.h"
#include "nas/supernet.h"
#include "nn/actor_critic.h"
#include "obs/obs_config.h"
#include "rl/a2c.h"
#include "util/thread_pool.h"

namespace a3cs::core {

enum class Optimization { kOneLevel, kBiLevel };

struct CoSearchConfig {
  nas::SupernetConfig supernet;
  rl::A2cConfig a2c;            // distillation coefficients included
  das::DasConfig das;
  int num_chunks = 4;
  // Weight of L_cost in the alpha update (lambda of Eq. 4) applied to the
  // per-cell cycle count normalized by `cost_norm_cycles`.
  double lambda = 0.05;
  double cost_norm_cycles = 1e5;
  // Per-run FPGA resource envelope handed to the predictor (and through it
  // to the DAS engine's feasibility barrier). Fleet shards search under
  // different DSP budgets by varying this field (the paper's Table 2/3
  // multi-budget sweep); checkpoints pin it, so resuming a shard with the
  // wrong budget fails loudly instead of silently diverging.
  accel::FpgaBudget budget;
  int das_steps_per_iter = 1;
  double alpha_lr = 1e-3;       // paper: Adam, lr 1e-3
  // Temperature decay cadence in env frames (paper: x0.98 every 1e5 steps,
  // scaled to our shorter runs).
  std::int64_t tau_decay_every_frames = 2000;
  Optimization optimization = Optimization::kOneLevel;
  bool hardware_aware = true;   // false = pure NAS (Fig. 2's search schemes)
  std::uint64_t seed = 21;
  // Observability: JSONL run tracing + hierarchical profiling. Environment
  // variables (A3CS_TRACE_PATH, A3CS_PROFILE, ...) override these at run().
  obs::ObsConfig obs;
  // Execution: thread count of the global pool used by the kernels, the
  // vectorized envs, the top-K NAS backward and the DAS sweeps. A3CS_THREADS
  // overrides at run(); results are bit-exact at any value (see
  // docs/PERFORMANCE.md).
  util::ExecConfig exec;
  // Crash-safe checkpoint/resume. Environment variables (A3CS_CKPT_DIR,
  // A3CS_CKPT_EVERY_ITERS, ...) override these at run(); see
  // docs/CHECKPOINTING.md. A resumed run continues bit-exactly.
  ckpt::CkptConfig ckpt;
  // Training-health watchdog: per-iteration divergence detection plus the
  // skip -> soften -> rollback -> abort escalation ladder. A3CS_GUARD*
  // environment variables override these at run(); see docs/ROBUSTNESS.md.
  // The default mode (kWarn) observes, counts and traces but never acts, so
  // healthy runs are bit-identical with the guard on or off. The rollback
  // rung needs checkpointing enabled; without it the ladder degrades
  // straight to abort once the skip/soften budgets are spent.
  guard::GuardConfig guard;
};

// Everything one co-search iteration produced, for tracing/diagnostics.
struct IterStats {
  rl::LossStats loss;           // task-loss decomposition (Eq. 12 terms)
  double mean_reward = 0.0;     // mean per-step env reward over the rollout
  double cost_penalty = 0.0;    // total lambda-weighted alpha cost (Eq. 8)
  double das_cost = 0.0;        // last sampled L_cost of the DAS step
  bool hw_valid = false;        // hw filled (hardware-aware alpha turns only)
  accel::HwEval hw;             // predictor eval of hw(phi*) on sampled net
  // Health signals of this iteration (inputs to guard::HealthMonitor).
  double grad_norm = 0.0;       // fused pre-clip global gradient norm
  bool grad_finite = true;      // every gradient element finite
  double param_norm = 0.0;      // fused post-update global parameter norm
  bool param_finite = true;     // every parameter element finite
  double value_abs_max = 0.0;   // max |V(s)| over the rollout batch
  double rollout_ms = 0.0;      // rollout wall time (env-stall watchdog)
  bool update_skipped = false;  // heal mode dropped this batch's update
};

struct CoSearchResult {
  nas::DerivedArch arch;
  accel::AcceleratorConfig accelerator;
  accel::HwEval hw_eval;
  std::int64_t frames = 0;
};

class CoSearchEngine {
 public:
  // `teacher` may be null => no distillation (the Direct-NAS baseline).
  CoSearchEngine(const std::string& game_title, CoSearchConfig cfg,
                 nn::ActorCriticNet* teacher);

  // Runs the search for `total_frames` env frames. The callback (if set)
  // fires every `callback_every` frames — benches evaluate the supernet
  // inside it to record Fig. 2's score-evolution curves.
  using Callback = std::function<void(std::int64_t frames)>;
  CoSearchResult run(std::int64_t total_frames, Callback callback = nullptr,
                     std::int64_t callback_every = 0);

  nas::Supernet& supernet() { return *supernet_; }
  nn::ActorCriticNet& net() { return *net_; }
  das::DasEngine& das_engine() { return *das_; }
  const CoSearchConfig& config() const { return cfg_; }

  // Checkpointing: serializes the COMPLETE co-search state (supernet theta
  // and alpha, both optimizers' moments, the DAS engine, the Gumbel
  // temperature schedule position, every RNG stream, every env's episode
  // state and the iteration/frame counters) into `writer`; restore() makes
  // a freshly constructed engine continue a run bit-exactly. restore()
  // throws ckpt::CkptError / std::runtime_error on any mismatch between the
  // checkpoint and this engine's configuration.
  void save_checkpoint(ckpt::SectionWriter& writer);
  void restore_checkpoint(const ckpt::SectionReader& reader);

  // Iterations completed so far (survives checkpoint/restore).
  std::int64_t iterations() const { return iter_; }

  // Env frames consumed so far (survives checkpoint/restore).
  std::int64_t frames() const;

  // Exponentially weighted moving average of the per-iteration mean rollout
  // reward (decay 0.9), the cheap deterministic "score" axis of the fleet's
  // Pareto frontier. Checkpointed, so a resumed run re-reports the exact
  // value it had at the restored boundary.
  double reward_ewma() const { return reward_ewma_; }

 private:
  // Returns the total lambda-weighted penalty added to the alpha gradients;
  // `eval_out` (if non-null) receives the hw(phi*) evaluation it was
  // computed from.
  double apply_cost_penalty_to_alpha(accel::HwEval* eval_out);
  // `heal` = guard mode kHeal: a non-finite loss or gradient zeroes ALL
  // gradients (theta and alpha) and skips both optimizer steps, so one
  // poisoned batch cannot write NaNs into the weights.
  IterStats one_iteration(bool update_theta, bool update_alpha, bool heal);

  CoSearchConfig cfg_;
  std::string game_title_;
  arcade::VecEnv envs_;
  nas::Supernet* supernet_;  // owned by net_'s backbone
  std::unique_ptr<nn::ActorCriticNet> net_;
  nn::ActorCriticNet* teacher_;
  rl::RolloutCollector collector_;
  accel::AcceleratorSpace space_;
  accel::Predictor predictor_;
  std::unique_ptr<das::DasEngine> das_;
  std::int64_t next_tau_decay_;

  // Loop state that checkpoints must capture (members, not run()-locals, so
  // save/restore can reach them).
  nn::RmsProp theta_opt_;
  nn::Adam alpha_opt_;
  std::int64_t iter_ = 0;
  bool alpha_turn_ = false;  // bi-level: alternate theta / alpha rollouts
  std::int64_t next_callback_ = 0;
  double reward_ewma_ = 0.0;
  bool reward_ewma_init_ = false;
};

}  // namespace a3cs::core
