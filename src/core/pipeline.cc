#include "core/pipeline.h"

#include <chrono>
#include <sstream>

#include "arcade/games.h"
#include "obs/perf/chrome_trace.h"
#include "obs/perf/work_counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace a3cs::core {

TrainedAgent train_derived_agent(const std::string& game_title,
                                 const nas::DerivedArch& arch,
                                 const nas::SearchSpaceConfig& space,
                                 std::int64_t frames,
                                 const rl::A2cConfig& a2c,
                                 nn::ActorCriticNet* teacher,
                                 std::uint64_t seed_value) {
  auto probe = arcade::make_game(game_title, 1);
  util::Rng rng(seed_value);
  auto bb = nas::build_derived_backbone(arch, probe->obs_spec(), space, rng);

  TrainedAgent out;
  out.specs = bb.specs;
  out.net = std::make_unique<nn::ActorCriticNet>(
      std::move(bb.module), bb.feature_dim, probe->num_actions(), rng);

  arcade::VecEnv envs(game_title, a2c.num_envs, seed_value + 10);
  rl::A2cConfig cfg = a2c;
  cfg.seed = seed_value + 20;
  rl::A2cTrainer trainer(*out.net, envs, cfg, teacher);
  trainer.train(frames);
  return out;
}

TrainedAgent train_zoo_agent_on_game(const std::string& game_title,
                                     const std::string& model_name,
                                     std::int64_t frames,
                                     const rl::A2cConfig& a2c,
                                     nn::ActorCriticNet* teacher,
                                     std::uint64_t seed_value) {
  auto probe = arcade::make_game(game_title, 1);
  util::Rng rng(seed_value);
  auto agent = nn::build_zoo_agent(model_name, probe->obs_spec(),
                                   probe->num_actions(), rng);
  TrainedAgent out;
  out.specs = std::move(agent.specs);
  out.net = std::move(agent.net);

  arcade::VecEnv envs(game_title, a2c.num_envs, seed_value + 10);
  rl::A2cConfig cfg = a2c;
  cfg.seed = seed_value + 20;
  rl::A2cTrainer trainer(*out.net, envs, cfg, teacher);
  trainer.train(frames);
  return out;
}

accel::HwEval search_accelerator(const std::vector<nn::LayerSpec>& specs,
                                 int num_chunks, const das::DasConfig& cfg,
                                 accel::AcceleratorConfig* out_config) {
  A3CS_PROF_SCOPE("search-accelerator");
  accel::AcceleratorSpace space(num_chunks, nn::num_groups(specs));
  accel::Predictor predictor;
  das::DasEngine engine(space, predictor, cfg);
  das::DasResult result = engine.search(specs);
  if (out_config != nullptr) *out_config = result.config;
  return result.eval;
}

namespace {

// RAII phase marker: profiles the block and brackets it with a JSONL "phase"
// event carrying the measured duration.
class PipelinePhase {
 public:
  explicit PipelinePhase(const char* name)
      : name_(name), prof_(name), start_(std::chrono::steady_clock::now()) {}
  ~PipelinePhase() {
    obs::trace_event("phase").kv("name", name_).kv(
        "dur_ms", std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }

 private:
  const char* name_;
  obs::ProfScope prof_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

PipelineResult run_a3cs_pipeline(const std::string& game_title,
                                 const PipelineConfig& cfg,
                                 nn::ActorCriticNet* teacher) {
  // Open the trace once for the whole pipeline so the co-search phase and
  // the later train/DAS/eval phases land in one file; the engine's own
  // TraceSession then attaches to this outer one.
  const obs::ObsConfig obs_cfg = cfg.cosearch.obs.with_env_overrides();
  if (obs_cfg.profile_enabled) obs::Profiler::set_enabled(true);
  obs::TraceSession trace_session(obs_cfg);
  obs::perf::ChromeTraceSession chrome_session(obs_cfg);
  obs::trace_event("pipeline_start")
      .kv("game", game_title)
      .kv("search_frames", cfg.search_frames)
      .kv("train_frames", cfg.train_frames);

  // 1) Co-search.
  CoSearchEngine engine(game_title, cfg.cosearch, teacher);
  CoSearchResult searched;
  {
    PipelinePhase phase("pipeline-cosearch");
    searched = engine.run(cfg.search_frames);
  }
  A3CS_LOG(INFO) << game_title
                 << ": derived arch = " << searched.arch.to_string();

  // 2) Train the derived agent from scratch with AC-distillation.
  TrainedAgent trained;
  {
    PipelinePhase phase("pipeline-train-derived");
    trained = train_derived_agent(game_title, searched.arch,
                                  cfg.cosearch.supernet.space,
                                  cfg.train_frames, cfg.cosearch.a2c, teacher,
                                  cfg.cosearch.seed + 1000);
  }

  // 3) Deployment accelerator: full DAS on the final network.
  PipelineResult result;
  {
    PipelinePhase phase("pipeline-final-das");
    result.hw = search_accelerator(trained.specs, cfg.cosearch.num_chunks,
                                   cfg.final_das, &result.accelerator);
  }

  // 4) Score.
  rl::EvalResult eval;
  {
    PipelinePhase phase("pipeline-eval");
    eval = rl::evaluate_agent(*trained.net, game_title, cfg.eval);
  }
  result.arch = searched.arch;
  result.test_score = eval.mean_score;
  result.specs = std::move(trained.specs);
  result.trained_net = std::move(trained.net);
  obs::perf::record_work_metrics();
  obs::trace_event("pipeline_end")
      .kv("game", game_title)
      .kv("arch", result.arch.to_string())
      .kv("test_score", result.test_score)
      .kv("fps", result.hw.fps)
      .kv("dsp", static_cast<std::int64_t>(result.hw.dsp_used))
      .kv("feasible", result.hw.feasible);
  if (obs_cfg.profile_enabled && trace_session.active()) {
    obs::Profiler::global().emit_to_trace(*trace_session.writer());
    if (obs_cfg.profile_summary) {
      std::ostringstream oss;
      obs::Profiler::global().print_summary(oss);
      A3CS_LOG(INFO) << "pipeline wall-time profile:\n" << oss.str();
    }
  }
  return result;
}

}  // namespace a3cs::core
