#include "core/cosearch.h"

#include "arcade/games.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace a3cs::core {

using tensor::Tensor;

namespace {

std::unique_ptr<nas::Supernet> build_supernet(const std::string& game_title,
                                              const CoSearchConfig& cfg,
                                              nas::Supernet** raw) {
  auto probe = arcade::make_game(game_title, 1);
  util::Rng rng(cfg.seed);
  auto supernet =
      std::make_unique<nas::Supernet>(probe->obs_spec(), cfg.supernet, rng);
  *raw = supernet.get();
  return supernet;
}

}  // namespace

CoSearchEngine::CoSearchEngine(const std::string& game_title,
                               CoSearchConfig cfg, nn::ActorCriticNet* teacher)
    : cfg_(cfg),
      game_title_(game_title),
      envs_(game_title, cfg.a2c.num_envs, cfg.seed + 1),
      supernet_(nullptr),
      teacher_(teacher),
      collector_(envs_, util::Rng(cfg.seed + 2)),
      space_(cfg.num_chunks,
             /*num_groups=*/cfg.supernet.space.num_cells + 2),
      predictor_(),
      next_tau_decay_(cfg.tau_decay_every_frames) {
  auto supernet = build_supernet(game_title, cfg_, &supernet_);
  const int feature_dim = supernet_->feature_dim();
  auto probe = arcade::make_game(game_title, 1);
  util::Rng rng(cfg_.seed + 3);
  net_ = std::make_unique<nn::ActorCriticNet>(std::move(supernet), feature_dim,
                                              probe->num_actions(), rng);
  das_ = std::make_unique<das::DasEngine>(space_, predictor_, cfg_.das);
  if (teacher_ == nullptr) {
    // Without a teacher the distillation terms must be off regardless of the
    // configured coefficients.
    cfg_.a2c.loss.distill_actor = 0.0;
    cfg_.a2c.loss.distill_critic = 0.0;
  }
}

void CoSearchEngine::apply_cost_penalty_to_alpha() {
  // Eq. 8: the activated operator of each cell is charged the layer-wise
  // cycle count it incurs on the current optimal accelerator hw(phi*). The
  // single-path sample of the most recent (training) forward stands in for
  // the final network (Sec. IV-A's chicken-and-egg approximation).
  const std::vector<int> choices = supernet_->last_choices();
  const auto specs = supernet_->specs_for(choices);
  const accel::HwEval eval = das_->derive_eval(specs);
  for (int cell = 0; cell < supernet_->num_cells(); ++cell) {
    const double cycles = eval.group_cycles(specs, cell + 1);
    const double penalty = cfg_.lambda * cycles / cfg_.cost_norm_cycles;
    supernet_->cell(cell).alpha().add_grad(
        choices[static_cast<std::size_t>(cell)], static_cast<float>(penalty));
  }
}

void CoSearchEngine::one_iteration(nn::Optimizer& theta_opt,
                                   nn::Optimizer& alpha_opt, bool update_theta,
                                   bool update_alpha) {
  // (1) Rollout with the sampled single-path policy.
  const rl::Rollout rollout = collector_.collect(*net_, cfg_.a2c.rollout_len);

  // (2) Accelerator step phi -> phi' on the network sampled during the
  // rollout (Alg. 1 line "Update phi in Eq. 9").
  if (cfg_.hardware_aware) {
    const auto specs = supernet_->specs_for(supernet_->last_choices());
    das_->step(specs, cfg_.das_steps_per_iter);
  }

  // (3) Task loss: forward the stacked rollout batch, compute head grads,
  // backprop through the supernet. This accumulates BOTH theta and alpha
  // gradients in one pass; which of them are applied is decided in step (5)
  // (both for one-level, alternating for bi-level).
  const auto boot = net_->forward(rollout.last_obs);
  const Tensor batch_obs = rollout.stacked_obs();
  const auto ac = net_->forward(batch_obs);
  const rl::Targets targets =
      rl::compute_targets(rollout.rewards, rollout.dones, ac.value,
                          boot.value, cfg_.a2c.gamma, cfg_.a2c.advantage);

  std::vector<int> actions;
  for (const auto& step_actions : rollout.actions) {
    actions.insert(actions.end(), step_actions.begin(), step_actions.end());
  }

  Tensor teacher_probs, teacher_values;
  rl::LossCoefficients coef = cfg_.a2c.loss;
  if (teacher_ != nullptr &&
      (coef.distill_actor != 0.0 || coef.distill_critic != 0.0)) {
    const auto tea = teacher_->forward(batch_obs);
    teacher_probs = Tensor(tea.logits.shape());
    tensor::softmax_rows(tea.logits, teacher_probs);
    teacher_values = tea.value;
  } else {
    coef.distill_actor = 0.0;
    coef.distill_critic = 0.0;
  }

  rl::LossInputs in;
  in.logits = &ac.logits;
  in.values = &ac.value;
  in.actions = &actions;
  in.advantages = &targets.advantages;
  in.returns = &targets.returns;
  if (coef.distill_actor != 0.0 || coef.distill_critic != 0.0) {
    in.teacher_probs = &teacher_probs;
    in.teacher_values = &teacher_values;
  }
  const rl::HeadGradients grads = rl::task_loss(in, coef, nullptr);

  net_->zero_grad();
  supernet_->zero_alpha_grads();
  net_->backward(grads.dlogits, grads.dvalue);

  // (4) Hardware-cost penalty on alpha (Eq. 8), using the choices of the
  // training forward.
  if (cfg_.hardware_aware && update_alpha) {
    apply_cost_penalty_to_alpha();
  }

  // (5) Parameter updates.
  if (update_theta) {
    auto params = net_->parameters();
    nn::clip_grad_norm(params, static_cast<float>(cfg_.a2c.grad_clip));
    theta_opt.step(params);
  }
  if (update_alpha) {
    auto alphas = supernet_->alpha_params();
    alpha_opt.step(alphas);
  }
}

CoSearchResult CoSearchEngine::run(std::int64_t total_frames,
                                   Callback callback,
                                   std::int64_t callback_every) {
  nn::RmsProp theta_opt(cfg_.a2c.lr_start);
  nn::Adam alpha_opt(cfg_.alpha_lr);
  const nn::LinearLrSchedule schedule(
      cfg_.a2c.lr_start, cfg_.a2c.lr_end,
      static_cast<std::int64_t>(cfg_.a2c.lr_hold_frac *
                                static_cast<double>(total_frames)),
      total_frames);

  std::int64_t next_callback = callback_every;
  bool alpha_turn = false;  // bi-level: alternate theta / alpha rollouts
  while (collector_.frames() < total_frames) {
    theta_opt.set_learning_rate(schedule.at(collector_.frames()));
    if (cfg_.optimization == Optimization::kOneLevel) {
      one_iteration(theta_opt, alpha_opt, /*update_theta=*/true,
                    /*update_alpha=*/true);
    } else {
      // Bi-level (one-step approximation, as in DARTS-style NACoS): theta on
      // this rollout, alpha on the next, never both — the alpha gradient is
      // then taken at stale weights, which is exactly the bias the paper's
      // Sec. V-D ablation exposes.
      one_iteration(theta_opt, alpha_opt, /*update_theta=*/!alpha_turn,
                    /*update_alpha=*/alpha_turn);
      alpha_turn = !alpha_turn;
    }

    while (collector_.frames() >= next_tau_decay_) {
      supernet_->decay_temperature();
      next_tau_decay_ += cfg_.tau_decay_every_frames;
    }
    if (callback && callback_every > 0 && collector_.frames() >= next_callback) {
      callback(collector_.frames());
      next_callback += callback_every;
    }
  }

  CoSearchResult result;
  result.arch = supernet_->derive();
  result.frames = collector_.frames();
  const auto final_specs = supernet_->specs_for(result.arch.choices);
  if (cfg_.hardware_aware) {
    result.accelerator = das_->derive();
    result.hw_eval = predictor_.evaluate(final_specs, result.accelerator);
  }
  return result;
}

}  // namespace a3cs::core
