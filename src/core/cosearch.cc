#include "core/cosearch.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>

#include "arcade/games.h"
#include "ckpt/section_file.h"
#include "ckpt/signal.h"
#include "guard/fault.h"
#include "nn/module.h"
#include "obs/exec_stats.h"
#include "obs/metrics.h"
#include "obs/perf/chrome_trace.h"
#include "obs/perf/work_counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/state_io.h"

namespace a3cs::core {

using tensor::Tensor;

namespace {

std::unique_ptr<nas::Supernet> build_supernet(const std::string& game_title,
                                              const CoSearchConfig& cfg,
                                              nas::Supernet** raw) {
  auto probe = arcade::make_game(game_title, 1);
  util::Rng rng(cfg.seed);
  auto supernet =
      std::make_unique<nas::Supernet>(probe->obs_spec(), cfg.supernet, rng);
  *raw = supernet.get();
  return supernet;
}

}  // namespace

CoSearchEngine::CoSearchEngine(const std::string& game_title,
                               CoSearchConfig cfg, nn::ActorCriticNet* teacher)
    : cfg_(cfg),
      game_title_(game_title),
      envs_(game_title, cfg.a2c.num_envs, cfg.seed + 1),
      supernet_(nullptr),
      teacher_(teacher),
      collector_(envs_, util::Rng(cfg.seed + 2)),
      space_(cfg.num_chunks,
             /*num_groups=*/cfg.supernet.space.num_cells + 2),
      predictor_(cfg.budget),
      next_tau_decay_(cfg.tau_decay_every_frames),
      theta_opt_(cfg.a2c.lr_start),
      alpha_opt_(cfg.alpha_lr) {
  auto supernet = build_supernet(game_title, cfg_, &supernet_);
  const int feature_dim = supernet_->feature_dim();
  auto probe = arcade::make_game(game_title, 1);
  util::Rng rng(cfg_.seed + 3);
  net_ = std::make_unique<nn::ActorCriticNet>(std::move(supernet), feature_dim,
                                              probe->num_actions(), rng);
  das_ = std::make_unique<das::DasEngine>(space_, predictor_, cfg_.das);
  if (teacher_ == nullptr) {
    // Without a teacher the distillation terms must be off regardless of the
    // configured coefficients.
    cfg_.a2c.loss.distill_actor = 0.0;
    cfg_.a2c.loss.distill_critic = 0.0;
  }
}

double CoSearchEngine::apply_cost_penalty_to_alpha(accel::HwEval* eval_out) {
  A3CS_PROF_SCOPE("cost-penalty");
  // Eq. 8: the activated operator of each cell is charged the layer-wise
  // cycle count it incurs on the current optimal accelerator hw(phi*). The
  // single-path sample of the most recent (training) forward stands in for
  // the final network (Sec. IV-A's chicken-and-egg approximation).
  const std::vector<int> choices = supernet_->last_choices();
  const auto specs = supernet_->specs_for(choices);
  const accel::HwEval eval = das_->derive_eval(specs);
  double total_penalty = 0.0;
  for (int cell = 0; cell < supernet_->num_cells(); ++cell) {
    const double cycles = eval.group_cycles(specs, cell + 1);
    const double penalty = cfg_.lambda * cycles / cfg_.cost_norm_cycles;
    total_penalty += penalty;
    supernet_->cell(cell).alpha().add_grad(
        choices[static_cast<std::size_t>(cell)], static_cast<float>(penalty));
  }
  if (eval_out != nullptr) *eval_out = eval;
  return total_penalty;
}

IterStats CoSearchEngine::one_iteration(bool update_theta, bool update_alpha,
                                        bool heal) {
  A3CS_PROF_SCOPE("cosearch-iter");
  IterStats stats;
  guard::FaultInjector& faults = guard::FaultInjector::global();

  // (1) Rollout with the sampled single-path policy.
  rl::Rollout rollout;
  {
    A3CS_PROF_SCOPE("rollout");
    const auto t0 = std::chrono::steady_clock::now();
    if (faults.should_fire(guard::FaultKind::kStallEnv, iter_)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(faults.stall_ms()));
    }
    rollout = collector_.collect(*net_, cfg_.a2c.rollout_len);
    stats.rollout_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  }
  double reward_sum = 0.0;
  std::int64_t reward_n = 0;
  for (const auto& step_rewards : rollout.rewards) {
    for (const double r : step_rewards) reward_sum += r;
    reward_n += static_cast<std::int64_t>(step_rewards.size());
  }
  stats.mean_reward = reward_n > 0 ? reward_sum / static_cast<double>(reward_n)
                                   : 0.0;

  // (2) Accelerator step phi -> phi' on the network sampled during the
  // rollout (Alg. 1 line "Update phi in Eq. 9").
  if (cfg_.hardware_aware) {
    A3CS_PROF_SCOPE("das-update");
    const auto specs = supernet_->specs_for(supernet_->last_choices());
    stats.das_cost = das_->step(specs, cfg_.das_steps_per_iter);
  }

  // (3) Task loss: forward the stacked rollout batch, compute head grads,
  // backprop through the supernet. This accumulates BOTH theta and alpha
  // gradients in one pass; which of them are applied is decided in step (5)
  // (both for one-level, alternating for bi-level).
  A3CS_PROF_SCOPE("a2c-update");
  const auto boot = net_->forward(rollout.last_obs);
  const Tensor batch_obs = rollout.stacked_obs();
  const auto ac = net_->forward(batch_obs);
  const rl::Targets targets =
      rl::compute_targets(rollout.rewards, rollout.dones, ac.value,
                          boot.value, cfg_.a2c.gamma, cfg_.a2c.advantage);

  std::vector<int> actions;
  for (const auto& step_actions : rollout.actions) {
    actions.insert(actions.end(), step_actions.begin(), step_actions.end());
  }

  Tensor teacher_probs, teacher_values;
  rl::LossCoefficients coef = cfg_.a2c.loss;
  if (teacher_ != nullptr &&
      (coef.distill_actor != 0.0 || coef.distill_critic != 0.0)) {
    const auto tea = teacher_->forward(batch_obs);
    teacher_probs = Tensor(tea.logits.shape());
    tensor::softmax_rows(tea.logits, teacher_probs);
    teacher_values = tea.value;
  } else {
    coef.distill_actor = 0.0;
    coef.distill_critic = 0.0;
  }

  rl::LossInputs in;
  in.logits = &ac.logits;
  in.values = &ac.value;
  in.actions = &actions;
  in.advantages = &targets.advantages;
  in.returns = &targets.returns;
  if (coef.distill_actor != 0.0 || coef.distill_critic != 0.0) {
    in.teacher_probs = &teacher_probs;
    in.teacher_values = &teacher_values;
  }
  rl::HeadGradients grads = rl::task_loss(in, coef, &stats.loss);
  stats.value_abs_max = static_cast<double>(ac.value.abs_max());
  if (faults.should_fire(guard::FaultKind::kInfLoss, iter_)) {
    // Poison both the scalar stats and the head gradients — exactly what a
    // real overflow inside the loss would hand the rest of the iteration.
    stats.loss.total = std::numeric_limits<double>::infinity();
    grads.dlogits.at(0) = std::numeric_limits<float>::infinity();
  }

  net_->zero_grad();
  supernet_->zero_alpha_grads();
  {
    A3CS_PROF_SCOPE("backward");
    net_->backward(grads.dlogits, grads.dvalue);
  }

  // (4) Hardware-cost penalty on alpha (Eq. 8), using the choices of the
  // training forward.
  if (cfg_.hardware_aware && update_alpha) {
    stats.cost_penalty = apply_cost_penalty_to_alpha(&stats.hw);
    stats.hw_valid = true;
  }

  // (5) Parameter updates, guarded: the fused norm pass both feeds the
  // health monitor and (in heal mode) vetoes an update that would commit
  // non-finite values into the weights.
  auto params = net_->parameters();
  if (faults.should_fire(guard::FaultKind::kNanGrad, iter_) &&
      !params.empty() && params.front()->grad.numel() > 0) {
    params.front()->grad.at(0) = std::numeric_limits<float>::quiet_NaN();
  }
  const nn::NormStats grad_stats = nn::grad_norm_stats(params);
  stats.grad_norm = grad_stats.norm;
  stats.grad_finite = grad_stats.finite;

  const bool unsafe = !std::isfinite(stats.loss.total) || !grad_stats.finite;
  if (heal && unsafe) {
    nn::zero_gradients(params);
    auto alphas = supernet_->alpha_params();
    nn::zero_gradients(alphas);  // the poison backpropagated into alpha too
    stats.update_skipped = true;
  } else {
    if (update_theta) {
      nn::clip_grad_norm(params, static_cast<float>(cfg_.a2c.grad_clip));
      theta_opt_.step(params);
    }
    if (update_alpha) {
      auto alphas = supernet_->alpha_params();
      alpha_opt_.step(alphas);
    }
  }

  if (faults.should_fire(guard::FaultKind::kNanParam, iter_) &&
      !params.empty() && params.front()->value.numel() > 0) {
    // Persistent corruption: unlike a poisoned batch, a NaN WEIGHT survives
    // any number of skipped updates — only a rollback heals it. Injected
    // before the parameter-norm pass so the monitor flags it this iteration.
    params.front()->value.at(0) = std::numeric_limits<float>::quiet_NaN();
  }
  const nn::NormStats param_stats = nn::param_norm_stats(params);
  stats.param_norm = param_stats.norm;
  stats.param_finite = param_stats.finite;
  return stats;
}

namespace {

// CRC over a network's serialized parameters: pins the teacher a checkpoint
// was taken against, so resuming with a different (e.g. retrained) teacher
// fails loudly instead of silently diverging.
std::uint32_t params_crc(nn::ActorCriticNet& net) {
  std::ostringstream oss;
  net.save_params(oss);
  const std::string bytes = oss.str();
  return util::crc32(bytes.data(), bytes.size());
}

}  // namespace

void CoSearchEngine::save_checkpoint(ckpt::SectionWriter& writer) {
  namespace sio = util::sio;
  {
    std::ostream& out = writer.begin_section("meta");
    sio::put_string(out, game_title_);
    sio::put_u64(out, cfg_.seed);
    sio::put_i32(out, envs_.num_envs());
    sio::put_i32(out, supernet_->num_cells());
    sio::put_bool(out, cfg_.hardware_aware);
    sio::put_bool(out, cfg_.optimization == Optimization::kBiLevel);
    sio::put_bool(out, teacher_ != nullptr);
    sio::put_u32(out, teacher_ != nullptr ? params_crc(*teacher_) : 0);
    sio::put_i64(out, iter_);
    sio::put_bool(out, alpha_turn_);
    sio::put_i64(out, next_tau_decay_);
    sio::put_i64(out, next_callback_);
    sio::put_i64(out, collector_.frames());
    sio::put_f64(out, cfg_.lambda);
    sio::put_i32(out, cfg_.budget.dsp);
    sio::put_f64(out, reward_ewma_);
    sio::put_bool(out, reward_ewma_init_);
    writer.end_section();
  }
  {
    std::ostream& out = writer.begin_section("theta");
    net_->save_params(out);
    writer.end_section();
  }
  {
    std::ostream& out = writer.begin_section("theta_opt");
    theta_opt_.save_state(out, net_->parameters());
    writer.end_section();
  }
  {
    std::ostream& out = writer.begin_section("alpha");
    std::vector<std::pair<std::string, Tensor>> named;
    for (nn::Parameter* p : supernet_->alpha_params()) {
      named.emplace_back(p->name, p->value);
    }
    tensor::write_tensors(out, named);
    writer.end_section();
  }
  {
    std::ostream& out = writer.begin_section("alpha_opt");
    alpha_opt_.save_state(out, supernet_->alpha_params());
    writer.end_section();
  }
  {
    std::ostream& out = writer.begin_section("nas");
    supernet_->save_search_state(out);
    writer.end_section();
  }
  if (cfg_.hardware_aware) {
    std::ostream& out = writer.begin_section("das");
    das_->save_state(out);
    writer.end_section();
  }
  {
    std::ostream& out = writer.begin_section("rollout");
    collector_.save_state(out);
    writer.end_section();
  }
}

void CoSearchEngine::restore_checkpoint(const ckpt::SectionReader& reader) {
  namespace sio = util::sio;
  // Meta first: reject checkpoints from a differently configured run before
  // touching any live state.
  auto meta = reader.stream("meta");
  A3CS_CHECK(sio::get_string(meta) == game_title_,
             "checkpoint restore: game title mismatch");
  A3CS_CHECK(sio::get_u64(meta) == cfg_.seed,
             "checkpoint restore: seed mismatch");
  A3CS_CHECK(sio::get_i32(meta) == envs_.num_envs(),
             "checkpoint restore: num_envs mismatch");
  A3CS_CHECK(sio::get_i32(meta) == supernet_->num_cells(),
             "checkpoint restore: num_cells mismatch");
  A3CS_CHECK(sio::get_bool(meta) == cfg_.hardware_aware,
             "checkpoint restore: hardware_aware mismatch");
  A3CS_CHECK(sio::get_bool(meta) ==
                 (cfg_.optimization == Optimization::kBiLevel),
             "checkpoint restore: optimization mode mismatch");
  const bool had_teacher = sio::get_bool(meta);
  const std::uint32_t teacher_crc = sio::get_u32(meta);
  A3CS_CHECK(had_teacher == (teacher_ != nullptr),
             "checkpoint restore: teacher presence mismatch");
  if (teacher_ != nullptr) {
    A3CS_CHECK(teacher_crc == params_crc(*teacher_),
               "checkpoint restore: teacher parameters differ from the ones "
               "the checkpoint was taken against");
  }
  const std::int64_t iter = sio::get_i64(meta);
  const bool alpha_turn = sio::get_bool(meta);
  const std::int64_t next_tau_decay = sio::get_i64(meta);
  const std::int64_t next_callback = sio::get_i64(meta);
  sio::get_i64(meta);  // frames (restored below via the rollout section)
  // Shard-identity fields: a fleet worker resuming under the wrong cost
  // weight or resource budget would silently walk a different trajectory.
  const double lambda = sio::get_f64(meta);
  A3CS_CHECK(lambda == cfg_.lambda, "checkpoint restore: lambda mismatch");
  A3CS_CHECK(sio::get_i32(meta) == cfg_.budget.dsp,
             "checkpoint restore: DSP budget mismatch");
  const double reward_ewma = sio::get_f64(meta);
  const bool reward_ewma_init = sio::get_bool(meta);

  {
    auto in = reader.stream("theta");
    net_->load_params(in);
  }
  {
    auto in = reader.stream("theta_opt");
    theta_opt_.load_state(in, net_->parameters());
  }
  {
    auto in = reader.stream("alpha");
    const auto named = tensor::read_tensors(in);
    auto alphas = supernet_->alpha_params();
    A3CS_CHECK(named.size() == alphas.size(),
               "checkpoint restore: alpha count mismatch");
    for (nn::Parameter* p : alphas) {
      bool found = false;
      for (const auto& [name, t] : named) {
        if (name != p->name) continue;
        A3CS_CHECK(t.numel() == p->value.numel(),
                   "checkpoint restore: alpha '" + name + "' shape mismatch");
        p->value = t;
        found = true;
        break;
      }
      A3CS_CHECK(found, "checkpoint restore: alpha '" + p->name + "' missing");
    }
  }
  {
    auto in = reader.stream("alpha_opt");
    alpha_opt_.load_state(in, supernet_->alpha_params());
  }
  {
    auto in = reader.stream("nas");
    supernet_->load_search_state(in);
  }
  if (cfg_.hardware_aware) {
    auto in = reader.stream("das");
    das_->load_state(in);
  }
  {
    auto in = reader.stream("rollout");
    collector_.load_state(in);
  }

  iter_ = iter;
  alpha_turn_ = alpha_turn;
  next_tau_decay_ = next_tau_decay;
  next_callback_ = next_callback;
  reward_ewma_ = reward_ewma;
  reward_ewma_init_ = reward_ewma_init;
}

std::int64_t CoSearchEngine::frames() const { return collector_.frames(); }

namespace {

// One per-iteration JSONL event: the per-term loss decomposition, rollout
// return, alpha/tau state, and the hardware-cost trajectory — everything the
// DNAS literature plots to diagnose co-search (in)stability.
void emit_iter_event(std::int64_t iter, std::int64_t frames, double tau,
                     double das_tau, const IterStats& stats,
                     const std::vector<double>& alpha_entropies) {
  auto ev = obs::trace_event("cosearch_iter");
  ev.kv("iter", iter)
      .kv("frames", frames)
      .kv("mean_reward", stats.mean_reward)
      .kv("loss_total", stats.loss.total)
      .kv("loss_policy", stats.loss.policy)
      .kv("loss_value", stats.loss.value)
      .kv("entropy", stats.loss.entropy)
      .kv("loss_distill_actor", stats.loss.distill_actor)
      .kv("loss_distill_critic", stats.loss.distill_critic)
      .kv("tau", tau)
      .kv("das_tau", das_tau)
      .kv("das_cost", stats.das_cost)
      .kv("cost_penalty", stats.cost_penalty)
      .kv("grad_norm", stats.grad_norm)
      .kv("param_norm", stats.param_norm)
      .kv("value_abs_max", stats.value_abs_max);
  if (stats.update_skipped) ev.kv("update_skipped", true);
  double alpha_h_sum = 0.0;
  for (std::size_t cell = 0; cell < alpha_entropies.size(); ++cell) {
    alpha_h_sum += alpha_entropies[cell];
    ev.kv("alpha_H" + std::to_string(cell), alpha_entropies[cell]);
  }
  if (!alpha_entropies.empty()) {
    ev.kv("alpha_H_mean",
          alpha_h_sum / static_cast<double>(alpha_entropies.size()));
  }
  if (stats.hw_valid) {
    ev.kv("hw_cycles", stats.hw.ii_cycles)
        .kv("hw_fps", stats.hw.fps)
        .kv("hw_dsp", static_cast<std::int64_t>(stats.hw.dsp_used))
        .kv("hw_bram", stats.hw.bram_used)
        .kv("hw_feasible", stats.hw.feasible);
  }
}

}  // namespace

CoSearchResult CoSearchEngine::run(std::int64_t total_frames,
                                   Callback callback,
                                   std::int64_t callback_every) {
  const obs::ObsConfig obs_cfg = cfg_.obs.with_env_overrides();
  if (obs_cfg.profile_enabled) obs::Profiler::set_enabled(true);
  const util::ExecConfig exec_cfg = cfg_.exec.with_env_overrides();
  util::ThreadPool::set_global_threads(exec_cfg.resolved_threads());
  obs::MetricsRegistry::global().gauge("exec.threads")
      .set(util::ThreadPool::global().threads());

  // Training-health watchdog (docs/ROBUSTNESS.md). Monitor and ladder state
  // are deliberately per-run and NOT checkpointed: a healthy run takes no
  // guard actions, so bit-exact kill-and-resume is preserved, and a run
  // restored after a crash starts with a clean escalation ladder.
  const guard::GuardConfig guard_cfg = cfg_.guard.with_env_overrides();
  guard::FaultInjector::global().arm_from_env();
  guard::HealthMonitor monitor(guard_cfg.health);
  guard::GuardPolicy guard_policy(guard_cfg);
  const bool guard_on = guard_cfg.mode != guard::GuardMode::kOff;
  const bool heal = guard_cfg.mode == guard::GuardMode::kHeal;

  obs::TraceSession trace_session(obs_cfg);
  obs::perf::ChromeTraceSession chrome_session(obs_cfg);
  obs::trace_event("cosearch_start")
      .kv("game", game_title_)
      .kv("threads", util::ThreadPool::global().threads())
      .kv("total_frames", total_frames)
      .kv("num_cells", supernet_->num_cells())
      .kv("hardware_aware", cfg_.hardware_aware)
      .kv("bi_level", cfg_.optimization == Optimization::kBiLevel)
      .kv("lambda", cfg_.lambda)
      .kv("seed", static_cast<std::int64_t>(cfg_.seed))
      .kv("guard", guard::guard_mode_name(guard_cfg.mode));
  static obs::Counter& iters_counter =
      obs::MetricsRegistry::global().counter("cosearch.iterations");
  static obs::Counter& frames_counter =
      obs::MetricsRegistry::global().counter("cosearch.frames");
  obs::Histogram& iter_ms_hist = obs::MetricsRegistry::global().histogram(
      "cosearch.iter_ms", {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
  static obs::Counter& guard_warns =
      obs::MetricsRegistry::global().counter("guard.verdicts.warn");
  static obs::Counter& guard_errors =
      obs::MetricsRegistry::global().counter("guard.verdicts.error");
  static obs::Counter& guard_skips =
      obs::MetricsRegistry::global().counter("guard.skips");
  static obs::Counter& guard_softens =
      obs::MetricsRegistry::global().counter("guard.softens");
  static obs::Counter& guard_rollbacks =
      obs::MetricsRegistry::global().counter("guard.rollbacks");
  static obs::Counter& guard_aborts =
      obs::MetricsRegistry::global().counter("guard.aborts");
  static obs::Gauge& grad_norm_gauge =
      obs::MetricsRegistry::global().gauge("train.grad_norm");
  static obs::Gauge& param_norm_gauge =
      obs::MetricsRegistry::global().gauge("train.param_norm");

  const nn::LinearLrSchedule schedule(
      cfg_.a2c.lr_start, cfg_.a2c.lr_end,
      static_cast<std::int64_t>(cfg_.a2c.lr_hold_frac *
                                static_cast<double>(total_frames)),
      total_frames);

  // Checkpointing: periodic (iteration and/or wall-clock cadence) plus a
  // final write on SIGINT/SIGTERM. The write happens BEFORE the user
  // callback fires at the same boundary, so a crash inside the callback
  // resumes from a state that has not advanced past it.
  const ckpt::CkptConfig ckpt_cfg = cfg_.ckpt.with_env_overrides();
  std::unique_ptr<ckpt::CheckpointManager> ckpt_mgr;
  std::unique_ptr<ckpt::StopSignalGuard> stop_guard;
  static obs::Counter& ckpt_writes =
      obs::MetricsRegistry::global().counter("ckpt.writes");
  static obs::Counter& ckpt_bytes =
      obs::MetricsRegistry::global().counter("ckpt.bytes");
  static obs::Counter& ckpt_restores =
      obs::MetricsRegistry::global().counter("ckpt.restores");
  obs::Histogram& ckpt_write_ms = obs::MetricsRegistry::global().histogram(
      "ckpt.write_ms", {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});

  // iter_ / alpha_turn_ are cumulative engine state (restore_checkpoint may
  // already have positioned them); only the callback cadence is per-run.
  next_callback_ = callback_every;
  auto last_ckpt = std::chrono::steady_clock::now();

  // Soften state: a multiplicative LR scale (theta and alpha) plus a Gumbel
  // temperature boost, in force until the cooldown window expires.
  double soften_scale = 1.0;
  std::int64_t soften_until = -1;
  // Health of the most recently evaluated iteration; stamps the trailer tag
  // of any checkpoint written at that boundary (guard off/warn and the
  // pre-first-iteration state count as healthy).
  bool last_iter_healthy = true;

  const auto write_ckpt = [&](const char* reason) {
    const auto t0 = std::chrono::steady_clock::now();
    ckpt::SectionWriter writer;
    save_checkpoint(writer);
    writer.set_healthy(last_iter_healthy);
    const std::size_t bytes = ckpt_mgr->commit(iter_, writer);
    if (guard::FaultInjector::global().should_fire(
            guard::FaultKind::kTruncCkpt, iter_)) {
      // Torn-tip fault: halve the file AFTER the atomic commit, simulating
      // the disk filling up / the machine dying mid-write in a world without
      // the tmp+rename protocol. load_newest_valid must fall back past it.
      const std::string path = ckpt_mgr->path_for(iter_);
      std::error_code ec;
      const auto size = std::filesystem::file_size(path, ec);
      if (!ec && size > 0) {
        std::filesystem::resize_file(path, size / 2, ec);
        A3CS_LOG(WARN) << "fault injection: truncated checkpoint " << path
                       << " to " << size / 2 << " bytes";
      }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    ckpt_writes.inc();
    ckpt_bytes.inc(static_cast<std::int64_t>(bytes));
    ckpt_write_ms.record(ms);
    last_ckpt = std::chrono::steady_clock::now();
    if (obs::trace_active()) {
      obs::trace_event("ckpt_write")
          .kv("iter", iter_)
          .kv("frames", collector_.frames())
          .kv("bytes", static_cast<std::int64_t>(bytes))
          .kv("write_ms", ms)
          .kv("reason", reason)
          .kv("healthy", last_iter_healthy);
    }
  };

  // Abort rung: dump the complete (diverged) engine state for post-mortem
  // debugging, then surface the failure as a typed exception. The dump is
  // tagged unhealthy so no resume path will ever restore from it.
  const auto abort_run = [&](const std::string& why) {
    guard_aborts.inc();
    std::string dump_path;
    if (ckpt_mgr) {
      ckpt::SectionWriter dump;
      save_checkpoint(dump);
      dump.set_healthy(false);
      dump_path = ckpt_cfg.dir + "/abort-dump.a3ck";
      dump.write(dump_path);
    }
    if (obs::trace_active()) {
      obs::trace_event("guard_event")
          .kv("kind", "abort_dump")
          .kv("iter", iter_)
          .kv("detail", why)
          .kv("dump", dump_path);
    }
    A3CS_LOG(ERROR) << "guard: aborting co-search at iteration " << iter_
                    << ": " << why
                    << (dump_path.empty() ? std::string()
                                          : "; diagnostic dump at " +
                                                dump_path);
    throw guard::GuardAbort("co-search aborted at iteration " +
                                std::to_string(iter_) + ": " + why,
                            iter_);
  };

  if (ckpt_cfg.enabled()) {
    ckpt_mgr = std::make_unique<ckpt::CheckpointManager>(ckpt_cfg);
    stop_guard = std::make_unique<ckpt::StopSignalGuard>();
    if (ckpt_cfg.resume) {
      ckpt::SectionReader reader;
      int fallbacks = 0;
      const std::int64_t at = ckpt_mgr->load_newest_valid(&reader, &fallbacks);
      if (at >= 0) {
        restore_checkpoint(reader);
        ckpt_restores.inc();
        A3CS_LOG(INFO) << "resumed co-search from " << ckpt_mgr->path_for(at)
                       << " (iteration " << iter_ << ", "
                       << collector_.frames() << " frames)";
        if (obs::trace_active()) {
          obs::trace_event("ckpt_restore")
              .kv("iter", iter_)
              .kv("frames", collector_.frames())
              .kv("bytes", static_cast<std::int64_t>(reader.total_bytes()))
              .kv("fallbacks", static_cast<std::int64_t>(fallbacks));
        }
      } else {
        A3CS_LOG(WARN) << "checkpoint resume requested but no valid "
                       << "checkpoint in " << ckpt_cfg.dir
                       << "; starting fresh";
      }
    }
  }

  bool stopped = false;
  while (collector_.frames() < total_frames) {
    const std::int64_t frames_before = collector_.frames();
    const auto iter_start = std::chrono::steady_clock::now();
    if (soften_until >= 0 && iter_ >= soften_until) {
      soften_scale = 1.0;
      soften_until = -1;
      alpha_opt_.set_learning_rate(cfg_.alpha_lr);
      A3CS_LOG(INFO) << "guard: soften cooldown expired at iteration "
                     << iter_ << "; learning rates restored";
    }
    theta_opt_.set_learning_rate(schedule.at(collector_.frames()) *
                                 soften_scale);
    IterStats stats;
    if (cfg_.optimization == Optimization::kOneLevel) {
      stats = one_iteration(/*update_theta=*/true, /*update_alpha=*/true,
                            heal);
    } else {
      // Bi-level (one-step approximation, as in DARTS-style NACoS): theta on
      // this rollout, alpha on the next, never both — the alpha gradient is
      // then taken at stale weights, which is exactly the bias the paper's
      // Sec. V-D ablation exposes.
      stats = one_iteration(/*update_theta=*/!alpha_turn_,
                            /*update_alpha=*/alpha_turn_, heal);
      alpha_turn_ = !alpha_turn_;
    }
    ++iter_;
    if (reward_ewma_init_) {
      reward_ewma_ = 0.9 * reward_ewma_ + 0.1 * stats.mean_reward;
    } else {
      reward_ewma_ = stats.mean_reward;
      reward_ewma_init_ = true;
    }
    iters_counter.inc();
    frames_counter.inc(collector_.frames() - frames_before);
    iter_ms_hist.record(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - iter_start)
                            .count());
    grad_norm_gauge.set(stats.grad_norm);
    param_norm_gauge.set(stats.param_norm);
    if (obs::trace_active() && iter_ % obs_cfg.trace_every == 0) {
      emit_iter_event(iter_, collector_.frames(), supernet_->temperature(),
                      das_->temperature(), stats,
                      supernet_->alpha_entropies());
    }

    if (guard_on) {
      guard::HealthSignals sig;
      sig.iter = iter_;
      sig.loss_total = stats.loss.total;
      sig.loss_policy = stats.loss.policy;
      sig.loss_value = stats.loss.value;
      sig.entropy = stats.loss.entropy;
      sig.grad_norm = stats.grad_norm;
      sig.grad_finite = stats.grad_finite;
      sig.param_norm = stats.param_norm;
      sig.param_finite = stats.param_finite;
      sig.value_abs_max = stats.value_abs_max;
      sig.mean_reward = stats.mean_reward;
      sig.rollout_ms = stats.rollout_ms;
      const std::vector<double> alpha_h = supernet_->alpha_entropies();
      if (!alpha_h.empty()) {
        double sum = 0.0;
        for (const double h : alpha_h) sum += h;
        sig.alpha_entropy_mean = sum / static_cast<double>(alpha_h.size());
      }
      const guard::HealthReport report = monitor.evaluate(sig);
      last_iter_healthy = !report.has_error();
      if (!report.ok()) {
        for (const guard::HealthVerdict& v : report.verdicts) {
          (v.severity == guard::Severity::kError ? guard_errors : guard_warns)
              .inc();
          if (obs::trace_active()) {
            obs::trace_event("guard_event")
                .kv("kind", "verdict")
                .kv("iter", iter_)
                .kv("check", guard::check_name(v.check))
                .kv("severity", guard::severity_name(v.severity))
                .kv("value", v.value)
                .kv("threshold", v.threshold)
                .kv("detail", v.detail);
          }
        }
        A3CS_LOG(WARN) << "guard: iteration " << iter_
                       << " unhealthy: " << report.summary();
      }
      const guard::GuardAction action = guard_policy.decide(report);
      if (action != guard::GuardAction::kNone && obs::trace_active()) {
        obs::trace_event("guard_event")
            .kv("kind", guard::guard_action_name(action))
            .kv("iter", iter_)
            .kv("streak",
                static_cast<std::int64_t>(guard_policy.error_streak()))
            .kv("rollbacks",
                static_cast<std::int64_t>(guard_policy.rollbacks()))
            .kv("detail", report.summary());
      }
      if (action == guard::GuardAction::kSkip) {
        // The actual veto already happened inside one_iteration (heal mode
        // zeroes a non-finite batch before the optimizer steps); the skip
        // rung only accounts for it here.
        guard_skips.inc();
      } else if (action == guard::GuardAction::kSoften) {
        guard_softens.inc();
        soften_scale *= guard_cfg.soften_lr_scale;
        soften_until = iter_ + guard_cfg.soften_cooldown_iters;
        alpha_opt_.set_learning_rate(cfg_.alpha_lr * soften_scale);
        const double tau =
            std::min(cfg_.supernet.tau_init,
                     supernet_->temperature() * guard_cfg.soften_tau_boost);
        supernet_->set_temperature(tau);
        A3CS_LOG(WARN) << "guard: soften at iteration " << iter_
                       << " (lr scale " << soften_scale << ", tau " << tau
                       << ", cooldown until iteration " << soften_until
                       << ")";
      } else if (action == guard::GuardAction::kRollback) {
        bool rolled = false;
        if (ckpt_mgr) {
          ckpt::SectionReader reader;
          int fallbacks = 0;
          const std::int64_t at = ckpt_mgr->load_newest_valid(
              &reader, &fallbacks, /*require_healthy=*/true);
          if (at >= 0) {
            const std::int64_t from_iter = iter_;
            restore_checkpoint(reader);
            // Stale tips newer than the restore point are by construction
            // unhealthy (or about to be shadowed); drop them so they can
            // never win a later newest-first scan.
            ckpt_mgr->remove_newer_than(at);
            guard_policy.on_rollback();
            monitor.reset();
            // Distinct reseed per rollback: replaying the restored state
            // with its restored RNG streams would deterministically walk
            // into the same divergence again.
            const std::uint64_t salt =
                0x9E3779B97F4A7C15ULL *
                static_cast<std::uint64_t>(guard_policy.rollbacks());
            collector_.reseed((cfg_.seed + 2) ^ salt);
            supernet_->reseed_sampler(cfg_.supernet.sample_seed ^ salt);
            if (cfg_.hardware_aware) das_->reseed(cfg_.das.seed ^ salt);
            soften_scale = 1.0;
            soften_until = -1;
            alpha_opt_.set_learning_rate(cfg_.alpha_lr);
            last_iter_healthy = true;
            guard_rollbacks.inc();
            ckpt_restores.inc();
            rolled = true;
            A3CS_LOG(WARN) << "guard: rolled back from iteration "
                           << from_iter << " to healthy checkpoint "
                           << ckpt_mgr->path_for(at) << " (rollback "
                           << guard_policy.rollbacks() << " of "
                           << guard_cfg.max_rollbacks << ", reseeded)";
            if (obs::trace_active()) {
              obs::trace_event("guard_event")
                  .kv("kind", "rollback_done")
                  .kv("from_iter", from_iter)
                  .kv("iter", iter_)
                  .kv("fallbacks", static_cast<std::int64_t>(fallbacks))
                  .kv("rollbacks",
                      static_cast<std::int64_t>(guard_policy.rollbacks()));
            }
          }
        }
        if (!rolled) {
          abort_run("no healthy checkpoint to roll back to: " +
                    report.summary());
        }
        continue;
      } else if (action == guard::GuardAction::kAbort) {
        abort_run(report.summary());
      }
    }

    while (collector_.frames() >= next_tau_decay_) {
      supernet_->decay_temperature();
      next_tau_decay_ += cfg_.tau_decay_every_frames;
    }

    if (ckpt_mgr) {
      stopped = ckpt::stop_requested();
      const bool iter_due =
          ckpt_cfg.every_iters > 0 && iter_ % ckpt_cfg.every_iters == 0;
      const bool time_due =
          ckpt_cfg.every_seconds > 0.0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        last_ckpt)
                  .count() >= ckpt_cfg.every_seconds;
      if (stopped || iter_due || time_due) {
        write_ckpt(stopped ? "signal" : (iter_due ? "iters" : "seconds"));
      }
    }
    if (callback && callback_every > 0 &&
        collector_.frames() >= next_callback_) {
      callback(collector_.frames());
      next_callback_ += callback_every;
    }
    if (stopped) {
      A3CS_LOG(INFO) << "stop signal received; checkpointed at iteration "
                     << iter_ << " and exiting the search loop";
      break;
    }
  }

  CoSearchResult result;
  result.arch = supernet_->derive();
  result.frames = collector_.frames();
  const auto final_specs = supernet_->specs_for(result.arch.choices);
  if (cfg_.hardware_aware) {
    result.accelerator = das_->derive();
    result.hw_eval = predictor_.evaluate(final_specs, result.accelerator);
  }

  obs::record_exec_stats();
  obs::perf::record_work_metrics();
  obs::trace_event("cosearch_end")
      .kv("iters", iter_)
      .kv("frames", result.frames)
      .kv("arch", result.arch.to_string())
      .kv("hw_fps", result.hw_eval.fps)
      .kv("hw_dsp", static_cast<std::int64_t>(result.hw_eval.dsp_used))
      .kv("hw_feasible", result.hw_eval.feasible);
  // When an outer scope (run_a3cs_pipeline) owns the trace session, it also
  // owns the end-of-run profile report — reporting here would snapshot the
  // tree mid-pipeline with the enclosing phase scopes still open.
  const bool owns_reporting = trace_session.active() || !obs::trace_active();
  if (obs_cfg.profile_enabled && owns_reporting) {
    if (obs::trace_active()) {
      obs::Profiler::global().emit_to_trace(*obs::global_trace());
    }
    if (obs_cfg.profile_summary) {
      std::ostringstream oss;
      obs::Profiler::global().print_summary(oss);
      A3CS_LOG(INFO) << "co-search wall-time profile:\n" << oss.str();
    }
  }
  return result;
}

}  // namespace a3cs::core
