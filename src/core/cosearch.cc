#include "core/cosearch.h"

#include <chrono>
#include <sstream>

#include "arcade/games.h"
#include "obs/exec_stats.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace a3cs::core {

using tensor::Tensor;

namespace {

std::unique_ptr<nas::Supernet> build_supernet(const std::string& game_title,
                                              const CoSearchConfig& cfg,
                                              nas::Supernet** raw) {
  auto probe = arcade::make_game(game_title, 1);
  util::Rng rng(cfg.seed);
  auto supernet =
      std::make_unique<nas::Supernet>(probe->obs_spec(), cfg.supernet, rng);
  *raw = supernet.get();
  return supernet;
}

}  // namespace

CoSearchEngine::CoSearchEngine(const std::string& game_title,
                               CoSearchConfig cfg, nn::ActorCriticNet* teacher)
    : cfg_(cfg),
      game_title_(game_title),
      envs_(game_title, cfg.a2c.num_envs, cfg.seed + 1),
      supernet_(nullptr),
      teacher_(teacher),
      collector_(envs_, util::Rng(cfg.seed + 2)),
      space_(cfg.num_chunks,
             /*num_groups=*/cfg.supernet.space.num_cells + 2),
      predictor_(),
      next_tau_decay_(cfg.tau_decay_every_frames) {
  auto supernet = build_supernet(game_title, cfg_, &supernet_);
  const int feature_dim = supernet_->feature_dim();
  auto probe = arcade::make_game(game_title, 1);
  util::Rng rng(cfg_.seed + 3);
  net_ = std::make_unique<nn::ActorCriticNet>(std::move(supernet), feature_dim,
                                              probe->num_actions(), rng);
  das_ = std::make_unique<das::DasEngine>(space_, predictor_, cfg_.das);
  if (teacher_ == nullptr) {
    // Without a teacher the distillation terms must be off regardless of the
    // configured coefficients.
    cfg_.a2c.loss.distill_actor = 0.0;
    cfg_.a2c.loss.distill_critic = 0.0;
  }
}

double CoSearchEngine::apply_cost_penalty_to_alpha(accel::HwEval* eval_out) {
  A3CS_PROF_SCOPE("cost-penalty");
  // Eq. 8: the activated operator of each cell is charged the layer-wise
  // cycle count it incurs on the current optimal accelerator hw(phi*). The
  // single-path sample of the most recent (training) forward stands in for
  // the final network (Sec. IV-A's chicken-and-egg approximation).
  const std::vector<int> choices = supernet_->last_choices();
  const auto specs = supernet_->specs_for(choices);
  const accel::HwEval eval = das_->derive_eval(specs);
  double total_penalty = 0.0;
  for (int cell = 0; cell < supernet_->num_cells(); ++cell) {
    const double cycles = eval.group_cycles(specs, cell + 1);
    const double penalty = cfg_.lambda * cycles / cfg_.cost_norm_cycles;
    total_penalty += penalty;
    supernet_->cell(cell).alpha().add_grad(
        choices[static_cast<std::size_t>(cell)], static_cast<float>(penalty));
  }
  if (eval_out != nullptr) *eval_out = eval;
  return total_penalty;
}

IterStats CoSearchEngine::one_iteration(nn::Optimizer& theta_opt,
                                        nn::Optimizer& alpha_opt,
                                        bool update_theta, bool update_alpha) {
  A3CS_PROF_SCOPE("cosearch-iter");
  IterStats stats;

  // (1) Rollout with the sampled single-path policy.
  rl::Rollout rollout;
  {
    A3CS_PROF_SCOPE("rollout");
    rollout = collector_.collect(*net_, cfg_.a2c.rollout_len);
  }
  double reward_sum = 0.0;
  std::int64_t reward_n = 0;
  for (const auto& step_rewards : rollout.rewards) {
    for (const double r : step_rewards) reward_sum += r;
    reward_n += static_cast<std::int64_t>(step_rewards.size());
  }
  stats.mean_reward = reward_n > 0 ? reward_sum / static_cast<double>(reward_n)
                                   : 0.0;

  // (2) Accelerator step phi -> phi' on the network sampled during the
  // rollout (Alg. 1 line "Update phi in Eq. 9").
  if (cfg_.hardware_aware) {
    A3CS_PROF_SCOPE("das-update");
    const auto specs = supernet_->specs_for(supernet_->last_choices());
    stats.das_cost = das_->step(specs, cfg_.das_steps_per_iter);
  }

  // (3) Task loss: forward the stacked rollout batch, compute head grads,
  // backprop through the supernet. This accumulates BOTH theta and alpha
  // gradients in one pass; which of them are applied is decided in step (5)
  // (both for one-level, alternating for bi-level).
  A3CS_PROF_SCOPE("a2c-update");
  const auto boot = net_->forward(rollout.last_obs);
  const Tensor batch_obs = rollout.stacked_obs();
  const auto ac = net_->forward(batch_obs);
  const rl::Targets targets =
      rl::compute_targets(rollout.rewards, rollout.dones, ac.value,
                          boot.value, cfg_.a2c.gamma, cfg_.a2c.advantage);

  std::vector<int> actions;
  for (const auto& step_actions : rollout.actions) {
    actions.insert(actions.end(), step_actions.begin(), step_actions.end());
  }

  Tensor teacher_probs, teacher_values;
  rl::LossCoefficients coef = cfg_.a2c.loss;
  if (teacher_ != nullptr &&
      (coef.distill_actor != 0.0 || coef.distill_critic != 0.0)) {
    const auto tea = teacher_->forward(batch_obs);
    teacher_probs = Tensor(tea.logits.shape());
    tensor::softmax_rows(tea.logits, teacher_probs);
    teacher_values = tea.value;
  } else {
    coef.distill_actor = 0.0;
    coef.distill_critic = 0.0;
  }

  rl::LossInputs in;
  in.logits = &ac.logits;
  in.values = &ac.value;
  in.actions = &actions;
  in.advantages = &targets.advantages;
  in.returns = &targets.returns;
  if (coef.distill_actor != 0.0 || coef.distill_critic != 0.0) {
    in.teacher_probs = &teacher_probs;
    in.teacher_values = &teacher_values;
  }
  const rl::HeadGradients grads = rl::task_loss(in, coef, &stats.loss);

  net_->zero_grad();
  supernet_->zero_alpha_grads();
  {
    A3CS_PROF_SCOPE("backward");
    net_->backward(grads.dlogits, grads.dvalue);
  }

  // (4) Hardware-cost penalty on alpha (Eq. 8), using the choices of the
  // training forward.
  if (cfg_.hardware_aware && update_alpha) {
    stats.cost_penalty = apply_cost_penalty_to_alpha(&stats.hw);
    stats.hw_valid = true;
  }

  // (5) Parameter updates.
  if (update_theta) {
    auto params = net_->parameters();
    nn::clip_grad_norm(params, static_cast<float>(cfg_.a2c.grad_clip));
    theta_opt.step(params);
  }
  if (update_alpha) {
    auto alphas = supernet_->alpha_params();
    alpha_opt.step(alphas);
  }
  return stats;
}

namespace {

// One per-iteration JSONL event: the per-term loss decomposition, rollout
// return, alpha/tau state, and the hardware-cost trajectory — everything the
// DNAS literature plots to diagnose co-search (in)stability.
void emit_iter_event(std::int64_t iter, std::int64_t frames, double tau,
                     double das_tau, const IterStats& stats,
                     const std::vector<double>& alpha_entropies) {
  auto ev = obs::trace_event("cosearch_iter");
  ev.kv("iter", iter)
      .kv("frames", frames)
      .kv("mean_reward", stats.mean_reward)
      .kv("loss_total", stats.loss.total)
      .kv("loss_policy", stats.loss.policy)
      .kv("loss_value", stats.loss.value)
      .kv("entropy", stats.loss.entropy)
      .kv("loss_distill_actor", stats.loss.distill_actor)
      .kv("loss_distill_critic", stats.loss.distill_critic)
      .kv("tau", tau)
      .kv("das_tau", das_tau)
      .kv("das_cost", stats.das_cost)
      .kv("cost_penalty", stats.cost_penalty);
  double alpha_h_sum = 0.0;
  for (std::size_t cell = 0; cell < alpha_entropies.size(); ++cell) {
    alpha_h_sum += alpha_entropies[cell];
    ev.kv("alpha_H" + std::to_string(cell), alpha_entropies[cell]);
  }
  if (!alpha_entropies.empty()) {
    ev.kv("alpha_H_mean",
          alpha_h_sum / static_cast<double>(alpha_entropies.size()));
  }
  if (stats.hw_valid) {
    ev.kv("hw_cycles", stats.hw.ii_cycles)
        .kv("hw_fps", stats.hw.fps)
        .kv("hw_dsp", static_cast<std::int64_t>(stats.hw.dsp_used))
        .kv("hw_bram", stats.hw.bram_used)
        .kv("hw_feasible", stats.hw.feasible);
  }
}

}  // namespace

CoSearchResult CoSearchEngine::run(std::int64_t total_frames,
                                   Callback callback,
                                   std::int64_t callback_every) {
  const obs::ObsConfig obs_cfg = cfg_.obs.with_env_overrides();
  if (obs_cfg.profile_enabled) obs::Profiler::set_enabled(true);
  const util::ExecConfig exec_cfg = cfg_.exec.with_env_overrides();
  util::ThreadPool::set_global_threads(exec_cfg.resolved_threads());
  obs::MetricsRegistry::global().gauge("exec.threads")
      .set(util::ThreadPool::global().threads());
  obs::TraceSession trace_session(obs_cfg);
  obs::trace_event("cosearch_start")
      .kv("game", game_title_)
      .kv("threads", util::ThreadPool::global().threads())
      .kv("total_frames", total_frames)
      .kv("num_cells", supernet_->num_cells())
      .kv("hardware_aware", cfg_.hardware_aware)
      .kv("bi_level", cfg_.optimization == Optimization::kBiLevel)
      .kv("lambda", cfg_.lambda)
      .kv("seed", static_cast<std::int64_t>(cfg_.seed));
  static obs::Counter& iters_counter =
      obs::MetricsRegistry::global().counter("cosearch.iterations");
  static obs::Counter& frames_counter =
      obs::MetricsRegistry::global().counter("cosearch.frames");
  obs::Histogram& iter_ms_hist = obs::MetricsRegistry::global().histogram(
      "cosearch.iter_ms", {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});

  nn::RmsProp theta_opt(cfg_.a2c.lr_start);
  nn::Adam alpha_opt(cfg_.alpha_lr);
  const nn::LinearLrSchedule schedule(
      cfg_.a2c.lr_start, cfg_.a2c.lr_end,
      static_cast<std::int64_t>(cfg_.a2c.lr_hold_frac *
                                static_cast<double>(total_frames)),
      total_frames);

  std::int64_t next_callback = callback_every;
  std::int64_t iter = 0;
  bool alpha_turn = false;  // bi-level: alternate theta / alpha rollouts
  while (collector_.frames() < total_frames) {
    const std::int64_t frames_before = collector_.frames();
    const auto iter_start = std::chrono::steady_clock::now();
    theta_opt.set_learning_rate(schedule.at(collector_.frames()));
    IterStats stats;
    if (cfg_.optimization == Optimization::kOneLevel) {
      stats = one_iteration(theta_opt, alpha_opt, /*update_theta=*/true,
                            /*update_alpha=*/true);
    } else {
      // Bi-level (one-step approximation, as in DARTS-style NACoS): theta on
      // this rollout, alpha on the next, never both — the alpha gradient is
      // then taken at stale weights, which is exactly the bias the paper's
      // Sec. V-D ablation exposes.
      stats = one_iteration(theta_opt, alpha_opt, /*update_theta=*/!alpha_turn,
                            /*update_alpha=*/alpha_turn);
      alpha_turn = !alpha_turn;
    }
    ++iter;
    iters_counter.inc();
    frames_counter.inc(collector_.frames() - frames_before);
    iter_ms_hist.record(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - iter_start)
                            .count());
    if (obs::trace_active() && iter % obs_cfg.trace_every == 0) {
      emit_iter_event(iter, collector_.frames(), supernet_->temperature(),
                      das_->temperature(), stats,
                      supernet_->alpha_entropies());
    }

    while (collector_.frames() >= next_tau_decay_) {
      supernet_->decay_temperature();
      next_tau_decay_ += cfg_.tau_decay_every_frames;
    }
    if (callback && callback_every > 0 && collector_.frames() >= next_callback) {
      callback(collector_.frames());
      next_callback += callback_every;
    }
  }

  CoSearchResult result;
  result.arch = supernet_->derive();
  result.frames = collector_.frames();
  const auto final_specs = supernet_->specs_for(result.arch.choices);
  if (cfg_.hardware_aware) {
    result.accelerator = das_->derive();
    result.hw_eval = predictor_.evaluate(final_specs, result.accelerator);
  }

  obs::record_exec_stats();
  obs::trace_event("cosearch_end")
      .kv("iters", iter)
      .kv("frames", result.frames)
      .kv("arch", result.arch.to_string())
      .kv("hw_fps", result.hw_eval.fps)
      .kv("hw_dsp", static_cast<std::int64_t>(result.hw_eval.dsp_used))
      .kv("hw_feasible", result.hw_eval.feasible);
  // When an outer scope (run_a3cs_pipeline) owns the trace session, it also
  // owns the end-of-run profile report — reporting here would snapshot the
  // tree mid-pipeline with the enclosing phase scopes still open.
  const bool owns_reporting = trace_session.active() || !obs::trace_active();
  if (obs_cfg.profile_enabled && owns_reporting) {
    if (obs::trace_active()) {
      obs::Profiler::global().emit_to_trace(*obs::global_trace());
    }
    if (obs_cfg.profile_summary) {
      std::ostringstream oss;
      obs::Profiler::global().print_summary(oss);
      A3CS_LOG(INFO) << "co-search wall-time profile:\n" << oss.str();
    }
  }
  return result;
}

}  // namespace a3cs::core
