// Persistence of co-search outcomes: the (architecture, accelerator) pair a
// search produced, plus its headline metrics. Lets deployment tooling (or a
// later session) re-evaluate and retrain searched designs without rerunning
// the search.
#pragma once

#include <string>

#include "accel/hw_types.h"
#include "nas/arch.h"

namespace a3cs::core {

struct SavedResult {
  nas::DerivedArch arch;
  accel::AcceleratorConfig accelerator;
  double test_score = 0.0;
  double fps = 0.0;
  int dsp = 0;  // DSPs the accelerator maps onto (0 when not recorded)
  std::string game;
};

// Plain-text key=value file, one key per line.
void save_result(const std::string& path, const SavedResult& result);
SavedResult load_result(const std::string& path);

}  // namespace a3cs::core
