#include "fleet/frontier.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "fleet/protocol.h"

namespace a3cs::fleet {

bool point_less(const ParetoPoint& a, const ParetoPoint& b) {
  // score and fps descend (best first); everything else ascends.
  if (a.score != b.score) return a.score > b.score;
  if (a.fps != b.fps) return a.fps > b.fps;
  return std::tie(a.dsp, a.shard, a.iter, a.frames, a.arch, a.accel) <
         std::tie(b.dsp, b.shard, b.iter, b.frames, b.arch, b.accel);
}

bool dominates(const ParetoPoint& q, const ParetoPoint& p) {
  if (q.score < p.score || q.fps < p.fps || q.dsp > p.dsp) return false;
  return q.score > p.score || q.fps > p.fps || q.dsp < p.dsp;
}

bool FrontierSet::insert(const ParetoPoint& p) {
  return points_.emplace(format_point(p), p).second;
}

int FrontierSet::erase_shard(int shard) {
  int erased = 0;
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second.shard == shard) {
      it = points_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

int FrontierSet::count_for_shard(int shard) const {
  int n = 0;
  for (const auto& [key, p] : points_) {
    if (p.shard == shard) ++n;
  }
  return n;
}

std::vector<ParetoPoint> FrontierSet::frontier() const {
  std::vector<ParetoPoint> all;
  all.reserve(points_.size());
  for (const auto& [key, p] : points_) all.push_back(p);

  std::vector<ParetoPoint> keep;
  for (const ParetoPoint& p : all) {
    bool dominated = false;
    for (const ParetoPoint& q : all) {
      if (dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) keep.push_back(p);
  }
  std::sort(keep.begin(), keep.end(), point_less);
  return keep;
}

std::string render_frontier(const std::vector<ParetoPoint>& frontier) {
  std::ostringstream out;
  out << "# a3cs-fleet-frontier v1\n";
  out << "points " << frontier.size() << "\n";
  for (const ParetoPoint& p : frontier) out << format_point(p);
  return out.str();
}

std::vector<ParetoPoint> parse_frontier(const std::string& text) {
  std::istringstream in(text);
  std::vector<ParetoPoint> out;
  std::string line;
  std::int64_t declared = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("points ", 0) == 0) {
      declared = std::stoll(line.substr(7));
      continue;
    }
    const Msg msg = parse_message(line);
    if (msg.kind != MsgKind::kPoint) {
      throw std::runtime_error("parse_frontier: bad line '" + line + "'");
    }
    out.push_back(msg.point);
  }
  if (declared >= 0 && declared != static_cast<std::int64_t>(out.size())) {
    throw std::runtime_error("parse_frontier: truncated frontier (declared " +
                             std::to_string(declared) + ", found " +
                             std::to_string(out.size()) + ")");
  }
  return out;
}

}  // namespace a3cs::fleet
