#include "fleet/fault.h"

#include <stdexcept>

#include "util/config.h"

namespace a3cs::fleet {

namespace {

// "k@i[,k@i...]" -> {k: i}. Throws on anything malformed.
std::map<int, std::int64_t> parse_at_list(const std::string& name,
                                          const std::string& spec) {
  std::map<int, std::int64_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t at = entry.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= entry.size()) {
      throw std::runtime_error(name + ": expected 'shard@iter', got '" +
                               entry + "'");
    }
    try {
      const int shard = std::stoi(entry.substr(0, at));
      const std::int64_t iter = std::stoll(entry.substr(at + 1));
      if (shard < 0 || iter <= 0) {
        throw std::runtime_error("negative");
      }
      out[shard] = iter;
    } catch (const std::exception&) {
      throw std::runtime_error(name + ": expected 'shard@iter' with shard "
                               ">= 0 and iter >= 1, got '" + entry + "'");
    }
  }
  return out;
}

// "k[,k...]" -> {k}.
std::set<int> parse_shard_list(const std::string& name,
                               const std::string& spec) {
  std::set<int> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    try {
      const int shard = std::stoi(entry);
      if (shard < 0) throw std::runtime_error("negative");
      out.insert(shard);
    } catch (const std::exception&) {
      throw std::runtime_error(name + ": expected a shard index, got '" +
                               entry + "'");
    }
  }
  return out;
}

}  // namespace

FleetFaultInjector FleetFaultInjector::from_env() {
  return parse(util::env_string("A3CS_FLEET_KILL", ""),
               util::env_string("A3CS_FLEET_HANG", ""),
               util::env_string("A3CS_FLEET_DIVERGE", ""),
               util::env_string("A3CS_FLEET_CORRUPT_TIP", ""));
}

FleetFaultInjector FleetFaultInjector::parse(const std::string& kill,
                                             const std::string& hang,
                                             const std::string& diverge,
                                             const std::string& corrupt_tip) {
  FleetFaultInjector f;
  f.kill_ = parse_at_list("A3CS_FLEET_KILL", kill);
  f.hang_ = parse_at_list("A3CS_FLEET_HANG", hang);
  f.diverge_ = parse_at_list("A3CS_FLEET_DIVERGE", diverge);
  f.corrupt_ = parse_shard_list("A3CS_FLEET_CORRUPT_TIP", corrupt_tip);
  return f;
}

std::int64_t FleetFaultInjector::kill_at(int shard) const {
  const auto it = kill_.find(shard);
  return it == kill_.end() ? 0 : it->second;
}

std::int64_t FleetFaultInjector::hang_at(int shard) const {
  const auto it = hang_.find(shard);
  return it == hang_.end() ? 0 : it->second;
}

std::int64_t FleetFaultInjector::diverge_at(int shard) const {
  const auto it = diverge_.find(shard);
  return it == diverge_.end() ? 0 : it->second;
}

bool FleetFaultInjector::corrupt_tip(int shard) const {
  return corrupt_.count(shard) != 0;
}

bool FleetFaultInjector::any() const {
  return !kill_.empty() || !hang_.empty() || !diverge_.empty() ||
         !corrupt_.empty();
}

}  // namespace a3cs::fleet
