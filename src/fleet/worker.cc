#include "fleet/worker.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include <unistd.h>

#include "accel/config_io.h"
#include "ckpt/manager.h"
#include "ckpt/signal.h"
#include "core/cosearch.h"
#include "core/result_io.h"
#include "fleet/protocol.h"
#include "guard/policy.h"
#include "rl/a2c.h"
#include "util/logging.h"

namespace a3cs::fleet {

namespace {

// Blocking full-line writer onto the supervisor pipe. Lines are shorter
// than PIPE_BUF, so each write is atomic; EINTR is retried. A failed write
// means the supervisor is gone — the shard hard-exits rather than search
// into the void (its checkpoint ring preserves the progress).
class PipeWriter {
 public:
  explicit PipeWriter(int fd) : fd_(fd) {}

  void line(const std::string& s) {
    const char* p = s.data();
    std::size_t left = s.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        std::_Exit(12);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_;
};

core::CoSearchConfig make_config(const WorkerOptions& o) {
  core::CoSearchConfig cfg;
  cfg.supernet.space.num_cells = o.num_cells;
  cfg.a2c.num_envs = o.num_envs;
  cfg.a2c.rollout_len = o.rollout_len;
  cfg.a2c.loss = rl::no_distill_coefficients();
  cfg.das.samples_per_iter = o.das_samples;
  cfg.tau_decay_every_frames = o.tau_decay_frames;
  cfg.seed = o.seed;
  cfg.lambda = o.lambda;
  cfg.budget.dsp = o.dsp_budget;
  cfg.ckpt.dir = o.ckpt_dir;
  cfg.ckpt.every_iters = o.ckpt_every;
  cfg.ckpt.keep = o.ckpt_keep;
  cfg.ckpt.resume = true;  // empty ring == fresh start; see file comment
  return cfg;
}

// The point describing the engine's CURRENT state: derived arch + derived
// accelerator + their predictor eval + the reward EWMA. Pure read of
// checkpointed state (derive/derive_eval do not perturb the search), so a
// resumed engine reproduces the dead incarnation's point byte-for-byte.
ParetoPoint make_point(const WorkerOptions& o, core::CoSearchEngine& engine) {
  ParetoPoint p;
  p.shard = o.shard;
  p.iter = engine.iterations();
  p.frames = engine.frames();
  p.score = engine.reward_ewma();
  const nas::DerivedArch arch = engine.supernet().derive();
  const auto specs = engine.supernet().specs_for(arch.choices);
  const accel::HwEval ev = engine.das_engine().derive_eval(specs);
  p.fps = ev.fps;
  p.dsp = ev.dsp_used;
  p.arch = arch.to_string();
  p.accel = accel::encode_config(engine.das_engine().derive());
  return p;
}

[[noreturn]] void hang_forever() {
  for (;;) {
    std::this_thread::sleep_for(std::chrono::hours(1));
  }
}

bool parse_flag(const std::string& arg, const std::string& value,
                WorkerOptions* o, bool* used_value) {
  *used_value = true;
  if (arg == "--shard") o->shard = std::atoi(value.c_str());
  else if (arg == "--pipe-fd") o->pipe_fd = std::atoi(value.c_str());
  else if (arg == "--game") o->game = value;
  else if (arg == "--cells") o->num_cells = std::atoi(value.c_str());
  else if (arg == "--envs") o->num_envs = std::atoi(value.c_str());
  else if (arg == "--rollout") o->rollout_len = std::atoi(value.c_str());
  else if (arg == "--das-samples") o->das_samples = std::atoi(value.c_str());
  else if (arg == "--tau-decay") o->tau_decay_frames = std::atoll(value.c_str());
  else if (arg == "--frames") o->total_frames = std::atoll(value.c_str());
  else if (arg == "--seed") {
    o->seed = static_cast<std::uint64_t>(std::strtoull(value.c_str(),
                                                       nullptr, 10));
  }
  else if (arg == "--lambda") o->lambda = std::atof(value.c_str());
  else if (arg == "--dsp") o->dsp_budget = std::atoi(value.c_str());
  else if (arg == "--ckpt-dir") o->ckpt_dir = value;
  else if (arg == "--ckpt-every") o->ckpt_every = std::atoi(value.c_str());
  else if (arg == "--ckpt-keep") o->ckpt_keep = std::atoi(value.c_str());
  else if (arg == "--point-every") o->point_every = std::atoll(value.c_str());
  else if (arg == "--result") o->result_path = value;
  else if (arg == "--kill-at") o->kill_at = std::atoll(value.c_str());
  else if (arg == "--hang-at") o->hang_at = std::atoll(value.c_str());
  else if (arg == "--diverge-at") o->diverge_at = std::atoll(value.c_str());
  else {
    *used_value = false;
    return false;
  }
  return true;
}

}  // namespace

bool is_worker_invocation(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--fleet-worker") return true;
  }
  return false;
}

std::vector<std::string> worker_argv(const WorkerOptions& o) {
  std::vector<std::string> out = {"--fleet-worker"};
  const auto add = [&out](const char* flag, const std::string& v) {
    out.push_back(flag);
    out.push_back(v);
  };
  add("--shard", std::to_string(o.shard));
  add("--pipe-fd", std::to_string(o.pipe_fd));
  add("--game", o.game);
  add("--cells", std::to_string(o.num_cells));
  add("--envs", std::to_string(o.num_envs));
  add("--rollout", std::to_string(o.rollout_len));
  add("--das-samples", std::to_string(o.das_samples));
  add("--tau-decay", std::to_string(o.tau_decay_frames));
  add("--frames", std::to_string(o.total_frames));
  add("--seed", std::to_string(o.seed));
  add("--lambda", format_double(o.lambda));
  add("--dsp", std::to_string(o.dsp_budget));
  add("--ckpt-dir", o.ckpt_dir);
  add("--ckpt-every", std::to_string(o.ckpt_every));
  add("--ckpt-keep", std::to_string(o.ckpt_keep));
  add("--point-every", std::to_string(o.point_every));
  if (!o.result_path.empty()) add("--result", o.result_path);
  if (o.kill_at > 0) add("--kill-at", std::to_string(o.kill_at));
  if (o.hang_at > 0) add("--hang-at", std::to_string(o.hang_at));
  if (o.diverge_at > 0) add("--diverge-at", std::to_string(o.diverge_at));
  return out;
}

int worker_main(int argc, char** argv) {
  WorkerOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fleet-worker") continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "fleet worker: flag %s needs a value\n",
                   arg.c_str());
      return 2;
    }
    bool used_value = false;
    if (!parse_flag(arg, argv[i + 1], &o, &used_value)) {
      std::fprintf(stderr, "fleet worker: unknown flag %s\n", arg.c_str());
      return 2;
    }
    if (used_value) ++i;
  }
  if (o.total_frames <= 0 || o.ckpt_dir.empty()) {
    std::fprintf(stderr,
                 "fleet worker: --frames and --ckpt-dir are required\n");
    return 2;
  }
  return run_fleet_worker(o);
}

int run_fleet_worker(const WorkerOptions& o) {
  // The supervisor owns the other pipe end; if it dies, writes fail and the
  // worker exits instead of taking a SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  ckpt::clear_stop();

  PipeWriter out(o.pipe_fd);
  out.line(format_heartbeat(o.shard, 0, 0));

  const core::CoSearchConfig cfg = make_config(o);
  core::CoSearchEngine engine(o.game, cfg, nullptr);
  const std::int64_t fpi =
      static_cast<std::int64_t>(cfg.a2c.num_envs) * cfg.a2c.rollout_len;

  // Probe the ring up front (run() will restore identically again): when the
  // shard is a restart, re-emit the restored boundary's point so nothing the
  // dead incarnation may have failed to deliver is lost (see file comment).
  {
    ckpt::CheckpointManager mgr(cfg.ckpt);
    ckpt::SectionReader reader;
    if (mgr.load_newest_valid(&reader) >= 0) {
      engine.restore_checkpoint(reader);
      if (engine.iterations() > 0) {
        out.line(format_point(make_point(o, engine)));
        out.line(format_heartbeat(o.shard, engine.iterations(),
                                  engine.frames()));
      }
    }
  }

  try {
    engine.run(
        o.total_frames,
        [&](std::int64_t frames) {
          const std::int64_t iter = frames / fpi;
          if (o.kill_at > 0 && iter >= o.kill_at) {
            std::_Exit(kExitKilled);  // simulated crash: no unwinding
          }
          if (o.hang_at > 0 && iter >= o.hang_at) {
            hang_forever();  // heartbeat stops; supervisor must SIGKILL
          }
          if (o.diverge_at > 0 && iter >= o.diverge_at) {
            throw guard::GuardAbort(
                "fleet fault injection: forced divergence", iter);
          }
          out.line(format_heartbeat(o.shard, engine.iterations(),
                                    engine.frames()));
          if (o.point_every > 0 && iter % o.point_every == 0) {
            out.line(format_point(make_point(o, engine)));
          }
        },
        fpi);
  } catch (const guard::GuardAbort& e) {
    const std::int64_t at =
        e.iter() >= 0 ? e.iter() : engine.iterations();
    out.line(format_diverged(o.shard, at, e.what()));
    A3CS_LOG(ERROR) << "fleet worker " << o.shard << " diverged: "
                    << e.what();
    return kExitDiverged;
  }

  if (!o.result_path.empty()) {
    const ParetoPoint p = make_point(o, engine);
    core::SavedResult result;
    result.game = o.game;
    result.arch = nas::DerivedArch::from_string(p.arch);
    result.accelerator = accel::decode_config(p.accel);
    result.test_score = p.score;
    result.fps = p.fps;
    result.dsp = p.dsp;
    core::save_result(o.result_path, result);
  }
  out.line(format_done(o.shard, engine.iterations(), engine.frames()));
  return 0;
}

}  // namespace a3cs::fleet
