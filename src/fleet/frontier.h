// The fleet's merged Pareto frontier over (score up, FPS up, DSP down) —
// the paper's Table 2/3 multi-budget sweep as one deterministic artifact.
//
// Determinism contract (docs/FLEET.md): the rendered frontier depends only
// on the SET of points contributed by surviving shards, never on arrival
// order, restart timing, or how often a resumed worker re-emitted a point.
// That holds because (a) insertion dedupes on exact content, (b) dominance
// is a pure function of the set, and (c) render() sorts on a total order of
// the point fields with round-trip-exact double formatting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace a3cs::fleet {

struct ParetoPoint {
  int shard = 0;
  std::int64_t iter = 0;
  std::int64_t frames = 0;
  double score = 0.0;  // reward EWMA of the shard at this boundary (up)
  double fps = 0.0;    // predictor FPS of the derived design (up)
  int dsp = 0;         // DSPs the derived design uses (down)
  std::string arch;    // nas::DerivedArch::to_string()
  std::string accel;   // accel::encode_config()
};

// Total order used everywhere points are sorted: best score first, then
// best FPS, then fewest DSPs, then (shard, iter, arch, accel) as an
// unambiguous tie-break.
bool point_less(const ParetoPoint& a, const ParetoPoint& b);

// q dominates p: no worse on all three objectives, strictly better on one.
bool dominates(const ParetoPoint& q, const ParetoPoint& p);

// Content-deduplicating accumulator of candidate points.
class FrontierSet {
 public:
  // Inserts unless an identical point (every field equal) is already
  // present. Returns true when the point was new.
  bool insert(const ParetoPoint& p);

  // Drops every point a shard contributed (shard dropped from the fleet: a
  // partial contribution would make the merged result depend on where the
  // shard happened to die).
  int erase_shard(int shard);

  std::size_t size() const { return points_.size(); }

  // Points a given shard currently contributes (diagnostics / grant choice).
  int count_for_shard(int shard) const;

  // The non-dominated subset, sorted by point_less.
  std::vector<ParetoPoint> frontier() const;

 private:
  // Keyed by the canonical point line (fleet::format_point) so equality is
  // exactly byte-equality of the wire encoding.
  std::map<std::string, ParetoPoint> points_;
};

// Renders a frontier file: a "# a3cs-fleet-frontier v1" header, a "points N"
// count, then one canonical point line per entry (already sorted by the
// caller via FrontierSet::frontier()). Byte-stable across runs — the
// artifact fleet_resume_test compares bit-exactly.
std::string render_frontier(const std::vector<ParetoPoint>& frontier);

// Parses render_frontier output (tools/tests); throws std::runtime_error on
// malformed input.
std::vector<ParetoPoint> parse_frontier(const std::string& text);

}  // namespace a3cs::fleet
