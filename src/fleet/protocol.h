// Line-framed worker -> supervisor protocol of the co-search fleet
// (docs/FLEET.md). Each worker owns the write end of one pipe; every message
// is a single '\n'-terminated ASCII line, always shorter than PIPE_BUF, so
// POSIX guarantees the write is atomic — the supervisor never sees an
// interleaved or torn line from a live worker (a worker killed before its
// write() returns simply never sent the line; the resume re-emission rule in
// docs/FLEET.md covers that case).
//
//   hb <shard> iter=<i> frames=<f>
//   point <shard> iter=<i> frames=<f> score=<g17> fps=<g17> dsp=<d>
//         arch=<DerivedArch::to_string> accel=<accel::encode_config>
//   diverged <shard> iter=<i> <free-text reason>
//   done <shard> iter=<i> frames=<f>
//
// Doubles are rendered with "%.17g" (round-trip exact), so a point re-emitted
// after a kill/resume is byte-identical to the original and content-level
// dedupe in the supervisor makes re-delivery idempotent — the mechanism
// behind the fleet's bit-exact frontier guarantee.
#pragma once

#include <cstdint>
#include <string>

#include "fleet/frontier.h"

namespace a3cs::fleet {

// Round-trip-exact decimal rendering of a double ("%.17g").
std::string format_double(double v);

enum class MsgKind { kHeartbeat, kPoint, kDiverged, kDone, kUnknown };

struct Msg {
  MsgKind kind = MsgKind::kUnknown;
  int shard = -1;
  std::int64_t iter = 0;
  std::int64_t frames = 0;
  std::string reason;  // kDiverged only
  ParetoPoint point;   // kPoint only (shard/iter/frames duplicated into it)
};

// Renderers. Every returned string includes the trailing '\n'.
std::string format_heartbeat(int shard, std::int64_t iter,
                             std::int64_t frames);
std::string format_point(const ParetoPoint& p);
std::string format_diverged(int shard, std::int64_t iter,
                            const std::string& reason);
std::string format_done(int shard, std::int64_t iter, std::int64_t frames);

// Parses one line (without the trailing '\n'). Never throws: anything that
// does not parse — including a truncated line from a worker killed mid-write
// in a non-atomic-pipe world — comes back as MsgKind::kUnknown and is
// counted + dropped by the supervisor.
Msg parse_message(const std::string& line);

}  // namespace a3cs::fleet
