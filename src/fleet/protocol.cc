#include "fleet/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace a3cs::fleet {

namespace {

// Splits on single spaces. Wire fields never contain spaces (arch/accel
// encodings are dash/semicolon-separated), except the free-text diverged
// reason, which is always last and re-joined by the caller.
std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

// "key=value" -> value, or empty when the field is not that key.
std::string field_value(const std::string& tok, const char* key) {
  const std::string prefix = std::string(key) + "=";
  if (tok.rfind(prefix, 0) != 0) return std::string();
  return tok.substr(prefix.size());
}

bool parse_i64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool parse_f64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

std::string format_heartbeat(int shard, std::int64_t iter,
                             std::int64_t frames) {
  std::ostringstream out;
  out << "hb " << shard << " iter=" << iter << " frames=" << frames << "\n";
  return out.str();
}

std::string format_point(const ParetoPoint& p) {
  std::ostringstream out;
  out << "point " << p.shard << " iter=" << p.iter << " frames=" << p.frames
      << " score=" << format_double(p.score) << " fps=" << format_double(p.fps)
      << " dsp=" << p.dsp << " arch=" << p.arch << " accel=" << p.accel
      << "\n";
  return out.str();
}

std::string format_diverged(int shard, std::int64_t iter,
                            const std::string& reason) {
  std::ostringstream out;
  out << "diverged " << shard << " iter=" << iter << " " << reason << "\n";
  return out.str();
}

std::string format_done(int shard, std::int64_t iter, std::int64_t frames) {
  std::ostringstream out;
  out << "done " << shard << " iter=" << iter << " frames=" << frames << "\n";
  return out.str();
}

Msg parse_message(const std::string& line) {
  Msg msg;
  const std::vector<std::string> fields = split_fields(line);
  if (fields.size() < 2) return msg;

  std::int64_t shard64 = -1;
  if (!parse_i64(fields[1], &shard64) || shard64 < 0) return msg;
  const int shard = static_cast<int>(shard64);

  // Common iter=/frames= fields (position-independent past the shard).
  std::int64_t iter = 0, frames = 0;
  bool have_iter = false, have_frames = false;
  for (std::size_t i = 2; i < fields.size(); ++i) {
    std::string v = field_value(fields[i], "iter");
    if (!v.empty()) have_iter = parse_i64(v, &iter);
    v = field_value(fields[i], "frames");
    if (!v.empty()) have_frames = parse_i64(v, &frames);
  }

  if (fields[0] == "hb") {
    if (!have_iter || !have_frames) return msg;
    msg.kind = MsgKind::kHeartbeat;
  } else if (fields[0] == "done") {
    if (!have_iter || !have_frames) return msg;
    msg.kind = MsgKind::kDone;
  } else if (fields[0] == "diverged") {
    if (!have_iter) return msg;
    msg.kind = MsgKind::kDiverged;
    // Reason = everything after the iter= field, re-joined.
    std::string reason;
    bool past_iter = false;
    for (std::size_t i = 2; i < fields.size(); ++i) {
      if (!past_iter) {
        if (!field_value(fields[i], "iter").empty()) past_iter = true;
        continue;
      }
      if (!reason.empty()) reason += ' ';
      reason += fields[i];
    }
    msg.reason = reason;
  } else if (fields[0] == "point") {
    ParetoPoint p;
    p.shard = shard;
    bool have_score = false, have_fps = false, have_dsp = false;
    bool have_arch = false, have_accel = false;
    for (std::size_t i = 2; i < fields.size(); ++i) {
      std::string v;
      if (!(v = field_value(fields[i], "score")).empty()) {
        have_score = parse_f64(v, &p.score);
      } else if (!(v = field_value(fields[i], "fps")).empty()) {
        have_fps = parse_f64(v, &p.fps);
      } else if (!(v = field_value(fields[i], "dsp")).empty()) {
        std::int64_t dsp = 0;
        have_dsp = parse_i64(v, &dsp);
        p.dsp = static_cast<int>(dsp);
      } else if (!(v = field_value(fields[i], "arch")).empty()) {
        p.arch = v;
        have_arch = true;
      } else if (!(v = field_value(fields[i], "accel")).empty()) {
        p.accel = v;
        have_accel = true;
      }
    }
    if (!have_iter || !have_frames || !have_score || !have_fps || !have_dsp ||
        !have_arch || !have_accel) {
      return msg;
    }
    p.iter = iter;
    p.frames = frames;
    msg.kind = MsgKind::kPoint;
    msg.point = p;
  } else {
    return msg;
  }

  msg.shard = shard;
  msg.iter = iter;
  msg.frames = frames;
  return msg;
}

}  // namespace a3cs::fleet
