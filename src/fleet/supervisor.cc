#include "fleet/supervisor.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ckpt/signal.h"
#include "fleet/protocol.h"
#include "fleet/worker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/config.h"
#include "util/logging.h"

namespace a3cs::fleet {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

// SIGCHLD self-pipe: the handler only writes one byte to wake poll(); all
// reaping happens on the main thread via waitpid(WNOHANG). The fd lives in
// an atomic so the handler never races handler (re)installation.
std::atomic<int> g_sigchld_wfd{-1};

extern "C" void sigchld_handler(int) {
  const int fd = g_sigchld_wfd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 'c';
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }
}

enum class WState { kPending, kRunning, kBackoff, kDone, kDropped, kDiverged };

struct WorkerSlot {
  ShardSpec spec;
  WState state = WState::kPending;
  pid_t pid = -1;
  int rfd = -1;
  std::string rbuf;
  int restarts = 0;
  bool launched_once = false;
  bool corrupt_applied = false;
  bool diverged_line = false;
  std::int64_t frames_target = 0;
  std::int64_t last_iter = 0;
  std::int64_t last_frames = 0;
  Clock::time_point last_hb;
  Clock::time_point backoff_until;
  std::string detail;
};

void trace_fleet(const char* kind, int shard, std::int64_t iter,
                 const std::string& detail) {
  if (!obs::trace_active()) return;
  obs::trace_event("fleet_event")
      .kv("kind", kind)
      .kv("shard", static_cast<std::int64_t>(shard))
      .kv("iter", iter)
      .kv("detail", detail);
}

// Truncates the newest ring checkpoint to half its size (the
// A3CS_FLEET_CORRUPT_TIP fault): resume must CRC-reject it and fall back
// down the ring.
void corrupt_tip_checkpoint(const std::string& ckpt_dir) {
  std::string newest;
  for (const auto& entry : fs::directory_iterator(ckpt_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0) continue;
    if (name.size() < 5 || name.substr(name.size() - 5) != ".a3ck") continue;
    if (name > newest) newest = name;  // 9-digit iters: lexical == numeric
  }
  if (newest.empty()) return;
  const fs::path path = fs::path(ckpt_dir) / newest;
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  A3CS_LOG(WARN) << "fleet fault: truncated tip checkpoint " << path.string()
                 << " to " << (size / 2) << " bytes";
}

class SupervisorImpl {
 public:
  SupervisorImpl(const FleetConfig& cfg, const FleetFaultInjector& faults)
      : cfg_(cfg), faults_(faults) {}

  FleetResult run();

 private:
  WorkerSlot* slot_by_pid(pid_t pid);
  std::string shard_dir(int shard) const;
  void spawn(WorkerSlot& w);
  void handle_line(WorkerSlot& w, const std::string& line);
  void drain_fd(WorkerSlot& w, bool to_eof);
  void reap_children();
  void on_exit(WorkerSlot& w, int status);
  void drop(WorkerSlot& w, WState state, const std::string& why);
  void check_heartbeats();
  void relaunch_due_backoffs();
  void handle_stop_request();
  bool try_grant();
  int active_count() const;

  const FleetConfig& cfg_;
  const FleetFaultInjector& faults_;
  std::vector<WorkerSlot> slots_;
  FrontierSet frontier_;
  FleetResult result_;
  std::int64_t budget_pool_ = 0;  // unspent frames from dropped shards
  bool granted_ = false;
  bool stop_sent_ = false;
};

WorkerSlot* SupervisorImpl::slot_by_pid(pid_t pid) {
  for (WorkerSlot& w : slots_) {
    if (w.pid == pid) return &w;
  }
  return nullptr;
}

std::string SupervisorImpl::shard_dir(int shard) const {
  return cfg_.out_dir + "/shard-" + std::to_string(shard);
}

int SupervisorImpl::active_count() const {
  int n = 0;
  for (const WorkerSlot& w : slots_) {
    if (w.state == WState::kPending || w.state == WState::kRunning ||
        w.state == WState::kBackoff) {
      ++n;
    }
  }
  return n;
}

void SupervisorImpl::spawn(WorkerSlot& w) {
  const std::string dir = shard_dir(w.spec.shard);
  fs::create_directories(dir + "/ckpt");

  int fds[2];
  A3CS_CHECK(::pipe2(fds, O_CLOEXEC) == 0, "fleet: pipe2 failed");

  WorkerOptions opts;
  opts.shard = w.spec.shard;
  opts.pipe_fd = fds[1];
  opts.game = cfg_.game;
  opts.num_cells = cfg_.num_cells;
  opts.num_envs = cfg_.num_envs;
  opts.rollout_len = cfg_.rollout_len;
  opts.das_samples = cfg_.das_samples;
  opts.tau_decay_frames = cfg_.tau_decay_frames;
  opts.total_frames = w.frames_target;
  opts.seed = w.spec.seed;
  opts.lambda = w.spec.lambda;
  opts.dsp_budget = w.spec.dsp_budget;
  opts.ckpt_dir = dir + "/ckpt";
  opts.ckpt_every = cfg_.ckpt_every_iters;
  opts.ckpt_keep = cfg_.ckpt_keep;
  opts.point_every = cfg_.point_every;
  opts.result_path = dir + "/result.txt";
  if (!w.launched_once) {  // faults fire on the first incarnation only
    opts.kill_at = faults_.kill_at(w.spec.shard);
    opts.hang_at = faults_.hang_at(w.spec.shard);
    opts.diverge_at = faults_.diverge_at(w.spec.shard);
  }
  const std::vector<std::string> args = worker_argv(opts);

  const bool tracing = obs::trace_active();
  const std::string trace_path =
      cfg_.out_dir + "/shard-" + std::to_string(w.spec.shard) +
      ".trace.jsonl";

  const pid_t pid = ::fork();
  A3CS_CHECK(pid >= 0, "fleet: fork failed");
  if (pid == 0) {
    // Child. Keep only the pipe's write end across exec.
    ::fcntl(fds[1], F_SETFD, 0);
    // Scrub inherited knobs that would make every shard behave identically
    // (or re-inject the fleet fault plan into restarted workers).
    for (const char* name :
         {"A3CS_CKPT_DIR", "A3CS_CKPT_EVERY_ITERS", "A3CS_CKPT_EVERY_SECONDS",
          "A3CS_CKPT_KEEP", "A3CS_CKPT_RESUME", "A3CS_FLEET_KILL",
          "A3CS_FLEET_HANG", "A3CS_FLEET_DIVERGE", "A3CS_FLEET_CORRUPT_TIP",
          "A3CS_FLEET_HB_S", "A3CS_FLEET_RESTARTS", "A3CS_FLEET_BACKOFF_S",
          "A3CS_FLEET_BACKOFF_MAX_S", "A3CS_FLEET_REALLOC",
          "A3CS_FLEET_POLL_MS", "A3CS_TRACE_PATH"}) {
      ::unsetenv(name);
    }
    if (tracing) {
      ::setenv("A3CS_TRACE_PATH", trace_path.c_str(), 1);
    }
    std::vector<std::string> full;
    full.reserve(args.size() + 1);
    full.push_back(cfg_.worker_binary);
    full.insert(full.end(), args.begin(), args.end());
    std::vector<char*> argv;
    argv.reserve(full.size() + 1);
    for (std::string& a : full) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(cfg_.worker_binary.c_str(), argv.data());
    std::_Exit(127);
  }

  // Parent.
  ::close(fds[1]);
  w.pid = pid;
  w.rfd = fds[0];
  w.rbuf.clear();
  w.diverged_line = false;
  w.last_hb = Clock::now();
  const bool restart = w.launched_once;
  w.launched_once = true;
  w.state = WState::kRunning;
  ++result_.spawns;
  static obs::Counter& spawns =
      obs::MetricsRegistry::global().counter("fleet.spawns");
  spawns.inc();
  trace_fleet(restart ? "restart" : "spawn", w.spec.shard, w.last_iter,
              "pid=" + std::to_string(pid));
  A3CS_LOG(INFO) << "fleet: " << (restart ? "restarted" : "spawned")
                 << " shard " << w.spec.shard << " pid " << pid;
}

void SupervisorImpl::handle_line(WorkerSlot& w, const std::string& line) {
  const Msg msg = parse_message(line);
  w.last_hb = Clock::now();
  switch (msg.kind) {
    case MsgKind::kHeartbeat: {
      w.last_iter = msg.iter;
      w.last_frames = msg.frames;
      static obs::Counter& hbs =
          obs::MetricsRegistry::global().counter("fleet.heartbeats");
      hbs.inc();
      break;
    }
    case MsgKind::kPoint: {
      if (frontier_.insert(msg.point)) {
        static obs::Counter& points =
            obs::MetricsRegistry::global().counter("fleet.points");
        points.inc();
      }
      w.last_iter = msg.iter;
      w.last_frames = msg.frames;
      break;
    }
    case MsgKind::kDiverged: {
      w.diverged_line = true;
      w.detail = msg.reason;
      w.last_iter = msg.iter;
      break;
    }
    case MsgKind::kDone: {
      w.last_iter = msg.iter;
      w.last_frames = msg.frames;
      break;
    }
    case MsgKind::kUnknown:
      A3CS_LOG(WARN) << "fleet: unparseable line from shard " << w.spec.shard
                     << ": " << line;
      break;
  }
}

void SupervisorImpl::drain_fd(WorkerSlot& w, bool to_eof) {
  if (w.rfd < 0) return;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(w.rfd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a real error: nothing more to read now
    }
    if (n == 0) {
      ::close(w.rfd);
      w.rfd = -1;
      break;
    }
    w.rbuf.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = w.rbuf.find('\n', start);
      if (nl == std::string::npos) break;
      handle_line(w, w.rbuf.substr(start, nl - start));
      start = nl + 1;
    }
    w.rbuf.erase(0, start);
    if (!to_eof) break;
  }
}

void SupervisorImpl::drop(WorkerSlot& w, WState state,
                          const std::string& why) {
  w.state = state;
  w.detail = why;
  const int purged = frontier_.erase_shard(w.spec.shard);
  if (cfg_.reallocate_budget) {
    budget_pool_ += std::max<std::int64_t>(0, w.frames_target - w.last_frames);
  }
  ++result_.drops;
  static obs::Counter& drops =
      obs::MetricsRegistry::global().counter("fleet.drops");
  drops.inc();
  trace_fleet("drop", w.spec.shard, w.last_iter,
              why + " (purged " + std::to_string(purged) + " points)");
  A3CS_LOG(WARN) << "fleet: dropped shard " << w.spec.shard << ": " << why
                 << " (purged " << purged << " points)";
}

void SupervisorImpl::on_exit(WorkerSlot& w, int status) {
  drain_fd(w, /*to_eof=*/true);
  w.pid = -1;

  const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  const bool diverged =
      w.diverged_line ||
      (WIFEXITED(status) && WEXITSTATUS(status) == kExitDiverged);
  if (clean) {
    w.state = WState::kDone;
    trace_fleet("done", w.spec.shard, w.last_iter,
                "frames=" + std::to_string(w.last_frames));
    A3CS_LOG(INFO) << "fleet: shard " << w.spec.shard << " done at iter "
                   << w.last_iter;
    return;
  }
  if (diverged) {
    ++result_.diverged;
    drop(w, WState::kDiverged,
         w.detail.empty() ? "diverged (watchdog abort)" : w.detail);
    return;
  }

  // Crash (injected kill, SIGKILL after a hung heartbeat, OOM, ...):
  // restart from the shard's checkpoint ring with exponential backoff.
  ++w.restarts;
  if (w.restarts > cfg_.restart_budget) {
    drop(w, WState::kDropped,
         "restart budget exhausted (" + std::to_string(cfg_.restart_budget) +
             ")");
    return;
  }
  if (faults_.corrupt_tip(w.spec.shard) && !w.corrupt_applied) {
    corrupt_tip_checkpoint(shard_dir(w.spec.shard) + "/ckpt");
    w.corrupt_applied = true;
  }
  const double delay = std::min(
      cfg_.backoff_max_s, cfg_.backoff_base_s * (1 << (w.restarts - 1)));
  w.state = WState::kBackoff;
  w.backoff_until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(delay));
  ++result_.restarts;
  static obs::Counter& restarts =
      obs::MetricsRegistry::global().counter("fleet.restarts");
  restarts.inc();
  trace_fleet("exit", w.spec.shard, w.last_iter,
              "status=" + std::to_string(status) + " restart " +
                  std::to_string(w.restarts) + "/" +
                  std::to_string(cfg_.restart_budget) + " backoff=" +
                  std::to_string(delay) + "s");
  A3CS_LOG(WARN) << "fleet: shard " << w.spec.shard << " exited (status "
                 << status << "), restart " << w.restarts << "/"
                 << cfg_.restart_budget << " after " << delay << "s";
}

void SupervisorImpl::reap_children() {
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) break;
    WorkerSlot* w = slot_by_pid(pid);
    if (w != nullptr) on_exit(*w, status);
  }
}

void SupervisorImpl::check_heartbeats() {
  const auto now = Clock::now();
  for (WorkerSlot& w : slots_) {
    if (w.state != WState::kRunning) continue;
    const double silent =
        std::chrono::duration<double>(now - w.last_hb).count();
    if (silent < cfg_.heartbeat_timeout_s) continue;
    ++result_.hb_timeouts;
    static obs::Counter& timeouts =
        obs::MetricsRegistry::global().counter("fleet.hb_timeouts");
    timeouts.inc();
    trace_fleet("hb_timeout", w.spec.shard, w.last_iter,
                "silent " + std::to_string(silent) + "s, SIGKILL");
    A3CS_LOG(WARN) << "fleet: shard " << w.spec.shard << " heartbeat silent "
                   << silent << "s, killing pid " << w.pid;
    ::kill(w.pid, SIGKILL);
    // The exit flows through SIGCHLD -> on_exit like any other crash.
  }
}

void SupervisorImpl::relaunch_due_backoffs() {
  const auto now = Clock::now();
  for (WorkerSlot& w : slots_) {
    if (w.state == WState::kBackoff && now >= w.backoff_until) spawn(w);
  }
}

void SupervisorImpl::handle_stop_request() {
  if (stop_sent_ || !ckpt::stop_requested()) return;
  stop_sent_ = true;
  result_.stopped = true;
  A3CS_LOG(WARN) << "fleet: stop requested, draining workers";
  for (WorkerSlot& w : slots_) {
    if (w.state == WState::kRunning && w.pid > 0) {
      ::kill(w.pid, SIGTERM);  // worker checkpoints and exits 0
    } else if (w.state == WState::kBackoff || w.state == WState::kPending) {
      drop(w, WState::kDropped, "stop requested before (re)launch");
    }
  }
}

bool SupervisorImpl::try_grant() {
  if (!cfg_.reallocate_budget || granted_ || stop_sent_ ||
      budget_pool_ <= 0) {
    return false;
  }
  // Successive-halving style: the surviving shard with the most points on
  // the merged frontier inherits the dropped shards' unspent frames.
  const std::vector<ParetoPoint> frontier = frontier_.frontier();
  WorkerSlot* best = nullptr;
  int best_points = -1;
  for (WorkerSlot& w : slots_) {
    if (w.state != WState::kDone) continue;
    int points = 0;
    for (const ParetoPoint& p : frontier) {
      if (p.shard == w.spec.shard) ++points;
    }
    if (points > best_points) {  // ties: lowest shard id (iteration order)
      best = &w;
      best_points = points;
    }
  }
  if (best == nullptr) return false;
  granted_ = true;
  best->frames_target += budget_pool_;
  trace_fleet("grant", best->spec.shard, best->last_iter,
              "+" + std::to_string(budget_pool_) + " frames");
  A3CS_LOG(INFO) << "fleet: granting " << budget_pool_
                 << " reclaimed frames to shard " << best->spec.shard;
  budget_pool_ = 0;
  spawn(*best);
  return true;
}

FleetResult SupervisorImpl::run() {
  A3CS_CHECK(!cfg_.worker_binary.empty(), "fleet: worker_binary required");
  A3CS_CHECK(!cfg_.out_dir.empty(), "fleet: out_dir required");
  A3CS_CHECK(!cfg_.shards.empty(), "fleet: at least one shard required");
  fs::create_directories(cfg_.out_dir);

  slots_.clear();
  for (const ShardSpec& spec : cfg_.shards) {
    WorkerSlot w;
    w.spec = spec;
    w.frames_target = spec.total_frames;
    slots_.push_back(std::move(w));
  }

  // SIGCHLD self-pipe + handler, restored on every exit path.
  int sig_fds[2];
  A3CS_CHECK(::pipe2(sig_fds, O_CLOEXEC | O_NONBLOCK) == 0,
             "fleet: self-pipe failed");
  g_sigchld_wfd.store(sig_fds[1], std::memory_order_relaxed);
  struct sigaction sa = {};
  sa.sa_handler = sigchld_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART | SA_NOCLDSTOP;
  struct sigaction old_sa = {};
  ::sigaction(SIGCHLD, &sa, &old_sa);
  ckpt::StopSignalGuard stop_guard;

  static obs::Gauge& workers_gauge =
      obs::MetricsRegistry::global().gauge("fleet.workers");

  for (WorkerSlot& w : slots_) {
    if (w.state == WState::kPending) spawn(w);
  }

  while (true) {
    if (active_count() == 0) {
      if (!try_grant()) break;
    }

    std::vector<pollfd> pfds;
    pfds.push_back({sig_fds[0], POLLIN, 0});
    std::vector<WorkerSlot*> pollees;
    int running = 0;
    for (WorkerSlot& w : slots_) {
      if (w.state == WState::kRunning) ++running;
      if (w.rfd >= 0) {
        pfds.push_back({w.rfd, POLLIN, 0});
        pollees.push_back(&w);
      }
    }
    workers_gauge.set(running);

    const int rc = ::poll(pfds.data(), pfds.size(), cfg_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) {
      A3CS_LOG(ERROR) << "fleet: poll failed, errno " << errno;
      break;
    }
    if (rc > 0) {
      if ((pfds[0].revents & POLLIN) != 0) {
        char buf[64];
        while (::read(sig_fds[0], buf, sizeof(buf)) > 0) {
        }
      }
      for (std::size_t i = 0; i < pollees.size(); ++i) {
        if ((pfds[i + 1].revents & (POLLIN | POLLHUP)) != 0) {
          drain_fd(*pollees[i], /*to_eof=*/false);
        }
      }
    }

    handle_stop_request();
    reap_children();
    check_heartbeats();
    if (!stop_sent_) relaunch_due_backoffs();
  }

  workers_gauge.set(0);
  ::sigaction(SIGCHLD, &old_sa, nullptr);
  g_sigchld_wfd.store(-1, std::memory_order_relaxed);
  ::close(sig_fds[0]);
  ::close(sig_fds[1]);

  result_.frontier = frontier_.frontier();
  result_.frontier_text = render_frontier(result_.frontier);
  for (const WorkerSlot& w : slots_) {
    ShardReport r;
    r.shard = w.spec.shard;
    r.outcome = w.state == WState::kDone        ? ShardOutcome::kDone
                : w.state == WState::kDiverged  ? ShardOutcome::kDiverged
                                                : ShardOutcome::kDropped;
    r.restarts = w.restarts;
    r.last_iter = w.last_iter;
    r.last_frames = w.last_frames;
    r.detail = w.detail;
    result_.shards.push_back(std::move(r));
  }
  std::sort(result_.shards.begin(), result_.shards.end(),
            [](const ShardReport& a, const ShardReport& b) {
              return a.shard < b.shard;
            });
  return result_;
}

}  // namespace

FleetConfig FleetConfig::with_env_overrides() const {
  FleetConfig out = *this;
  out.heartbeat_timeout_s =
      util::env_double("A3CS_FLEET_HB_S", out.heartbeat_timeout_s);
  out.restart_budget = static_cast<int>(
      util::env_int("A3CS_FLEET_RESTARTS", out.restart_budget));
  out.backoff_base_s =
      util::env_double("A3CS_FLEET_BACKOFF_S", out.backoff_base_s);
  out.backoff_max_s =
      util::env_double("A3CS_FLEET_BACKOFF_MAX_S", out.backoff_max_s);
  out.reallocate_budget =
      util::env_int("A3CS_FLEET_REALLOC", out.reallocate_budget ? 1 : 0) != 0;
  out.poll_interval_ms = static_cast<int>(
      util::env_int("A3CS_FLEET_POLL_MS", out.poll_interval_ms));
  return out;
}

const char* to_string(ShardOutcome outcome) {
  switch (outcome) {
    case ShardOutcome::kDone:
      return "done";
    case ShardOutcome::kDropped:
      return "dropped";
    case ShardOutcome::kDiverged:
      return "diverged";
  }
  return "unknown";
}

int FleetResult::done_count() const {
  int n = 0;
  for (const ShardReport& r : shards) {
    if (r.outcome == ShardOutcome::kDone) ++n;
  }
  return n;
}

FleetSupervisor::FleetSupervisor(FleetConfig cfg, FleetFaultInjector faults)
    : cfg_(std::move(cfg)), faults_(std::move(faults)) {}

FleetResult FleetSupervisor::run() {
  SupervisorImpl impl(cfg_, faults_);
  return impl.run();
}

}  // namespace a3cs::fleet
