// FleetSupervisor: fork/execs N co-search worker shards (fleet/worker.h),
// listens on per-worker pipes for the line protocol (fleet/protocol.h), and
// merges every delivered Pareto point into one deterministic global
// score/FPS/DSP frontier (fleet/frontier.h).
//
// Robustness ladder (docs/FLEET.md):
//   * SIGCHLD (self-pipe) reaps crashed workers; a heartbeat deadline
//     SIGKILLs hung ones, which then flow through the same crash path.
//   * A crashed shard restarts after per-worker exponential backoff and
//     resumes from its A3CK checkpoint ring, re-emitting the restored
//     boundary's point so the merged frontier stays bit-exact vs an
//     unkilled run (supervisor-side dedupe absorbs re-deliveries).
//   * A shard that exhausts its restart budget — or that the PR 4 watchdog
//     flags diverged (GuardAbort -> `diverged` line / exit kExitDiverged) —
//     is dropped: its points are purged from the frontier and, when budget
//     reallocation is on, its unspent frame budget is granted to the done
//     shard holding the most frontier points (successive-halving style).
//   * The fleet degrades gracefully: it completes with exit-worthy results
//     as long as any subset of shards survives, and a SIGINT/SIGTERM stop
//     request drains workers gracefully (they checkpoint and exit clean).
//
// This is the ONLY translation unit in the tree allowed to call
// fork/exec*/waitpid directly (a3cs-lint rule conc-raw-process).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fault.h"
#include "fleet/frontier.h"

namespace a3cs::fleet {

// One worker shard's search assignment: seed, trade-off lambda, DSP budget
// and frame budget. Shard ids must be unique and are stamped on every
// emitted point.
struct ShardSpec {
  int shard = 0;
  std::uint64_t seed = 21;
  double lambda = 0.05;
  int dsp_budget = 900;
  std::int64_t total_frames = 0;
};

struct FleetConfig {
  // Binary to exec for workers; must route --fleet-worker argv through
  // fleet::worker_main (examples/cosearch_fleet.cpp does).
  std::string worker_binary;
  std::string game = "Catch";
  int num_cells = 3;
  int num_envs = 2;
  int rollout_len = 4;
  int das_samples = 2;
  std::int64_t tau_decay_frames = 64;
  // Fleet scratch root: out_dir/shard-K/ckpt rings, shard-K.trace.jsonl.
  std::string out_dir;
  std::vector<ShardSpec> shards;

  double heartbeat_timeout_s = 30.0;  // no hb for this long => SIGKILL
  int poll_interval_ms = 50;
  int restart_budget = 3;      // restarts per shard before it is dropped
  double backoff_base_s = 0.25;
  double backoff_max_s = 8.0;
  bool reallocate_budget = true;
  int ckpt_every_iters = 1;  // per-iteration by default: bit-exact resume
  int ckpt_keep = 4;
  std::int64_t point_every = 1;

  // A3CS_FLEET_HB_S / RESTARTS / BACKOFF_S / BACKOFF_MAX_S / REALLOC /
  // POLL_MS override the corresponding fields (docs/FLEET.md).
  FleetConfig with_env_overrides() const;
};

enum class ShardOutcome {
  kDone,      // worker exited 0 (including graceful stop-drain)
  kDropped,   // restart budget exhausted; points purged
  kDiverged,  // guard watchdog abort; points purged
};

const char* to_string(ShardOutcome outcome);

struct ShardReport {
  int shard = 0;
  ShardOutcome outcome = ShardOutcome::kDone;
  int restarts = 0;
  std::int64_t last_iter = 0;
  std::int64_t last_frames = 0;
  std::string detail;  // divergence reason / drop cause, empty when done
};

struct FleetResult {
  std::vector<ShardReport> shards;  // ordered by shard id
  std::vector<ParetoPoint> frontier;
  std::string frontier_text;  // render_frontier(frontier), byte-stable
  int spawns = 0;
  int restarts = 0;
  int drops = 0;
  int hb_timeouts = 0;
  int diverged = 0;
  bool stopped = false;  // SIGINT/SIGTERM drained the fleet early

  int done_count() const;
};

class FleetSupervisor {
 public:
  explicit FleetSupervisor(FleetConfig cfg,
                           FleetFaultInjector faults = FleetFaultInjector());

  // Runs the fleet to completion (every shard done, dropped or diverged;
  // one budget-grant round when reallocation applies). Blocking; installs
  // SIGCHLD and stop handlers for its duration.
  FleetResult run();

 private:
  FleetConfig cfg_;
  FleetFaultInjector faults_;
};

}  // namespace a3cs::fleet
