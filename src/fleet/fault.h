// Deterministic fleet-level fault injection (docs/FLEET.md), the
// process-granular sibling of guard::FaultInjector. The supervisor parses a
// fault plan from the environment and arms each fault exactly once:
//
//   A3CS_FLEET_KILL="k@i[,k@i...]"   worker k hard-exits (_Exit) at iter i
//   A3CS_FLEET_HANG="k@i[,...]"      worker k stops heartbeating at iter i
//                                    (sleeps forever; the supervisor's
//                                    heartbeat timeout must SIGKILL it)
//   A3CS_FLEET_DIVERGE="k@i[,...]"   worker k raises guard::GuardAbort at
//                                    iter i (the watchdog's abort path)
//   A3CS_FLEET_CORRUPT_TIP="k[,...]" before worker k's first restart, its
//                                    newest checkpoint is truncated to half
//                                    size — resume must fall back down the
//                                    A3CK ring
//
// kill/hang/diverge are delivered as --kill-at/--hang-at/--diverge-at worker
// flags on the FIRST launch only, so a restarted worker runs clean and the
// fault fires exactly once per plan entry. Corruption is applied by the
// supervisor itself (the worker is dead at that point).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace a3cs::fleet {

class FleetFaultInjector {
 public:
  // Parses the A3CS_FLEET_* plan from the environment. Malformed entries
  // throw std::runtime_error — a typo'd fault plan must never pass silently
  // as "no faults".
  static FleetFaultInjector from_env();

  // Parses explicit strings (tests). Empty strings mean "no faults".
  static FleetFaultInjector parse(const std::string& kill,
                                  const std::string& hang,
                                  const std::string& diverge,
                                  const std::string& corrupt_tip);

  // 0 when no fault is planned for this shard.
  std::int64_t kill_at(int shard) const;
  std::int64_t hang_at(int shard) const;
  std::int64_t diverge_at(int shard) const;
  bool corrupt_tip(int shard) const;

  bool any() const;

 private:
  std::map<int, std::int64_t> kill_, hang_, diverge_;
  std::set<int> corrupt_;
};

}  // namespace a3cs::fleet
