// The fleet worker: one seeded CoSearchEngine shard running inside a child
// process, reporting heartbeats / Pareto points / completion over the pipe
// fd the supervisor handed it (fleet/protocol.h).
//
// Workers always run with checkpoint resume ON: a fresh shard finds an empty
// ring and starts from scratch; a restarted shard restores its newest valid
// checkpoint and continues bit-exactly (PR 3 guarantee). On startup after a
// restore, the worker RE-EMITS the point of the restored boundary — any
// point the dead incarnation produced after its last received line is thereby
// re-delivered byte-identically, which (with supervisor-side content dedupe)
// closes the only gap in the bit-exact frontier guarantee.
//
// A guard::GuardAbort escaping run() (the PR 4 watchdog's abort rung, or the
// injected --diverge-at fault) is reported as a `diverged` line and exit
// code kExitDiverged, turning divergence into an early kill the supervisor
// can account against the fleet instead of a mystery crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace a3cs::fleet {

// Exit code of a worker whose engine aborted via guard::GuardAbort.
inline constexpr int kExitDiverged = 3;
// Exit code of the injected --kill-at hard crash (std::_Exit, no unwinding).
inline constexpr int kExitKilled = 9;

struct WorkerOptions {
  int shard = 0;
  int pipe_fd = 1;  // write end of the supervisor pipe (stdout by default)
  std::string game = "Catch";
  int num_cells = 3;
  int num_envs = 2;
  int rollout_len = 4;
  int das_samples = 2;
  std::int64_t tau_decay_frames = 64;
  std::int64_t total_frames = 0;
  std::uint64_t seed = 21;
  double lambda = 0.05;
  int dsp_budget = 900;
  std::string ckpt_dir;
  int ckpt_every = 1;
  int ckpt_keep = 4;
  std::int64_t point_every = 1;  // emit a Pareto point every N iterations
  std::string result_path;       // optional core::save_result export
  // Fault injection (first launch only; see fleet/fault.h).
  std::int64_t kill_at = 0;
  std::int64_t hang_at = 0;
  std::int64_t diverge_at = 0;
};

// True when argv carries the --fleet-worker sentinel: the binary was exec'd
// by a FleetSupervisor and must run worker_main instead of its own main.
bool is_worker_invocation(int argc, char** argv);

// Parses worker argv (the flags built by FleetSupervisor) and runs the
// shard. Returns the process exit code (0 done, kExitDiverged, 2 usage).
int worker_main(int argc, char** argv);

// The worker body, callable directly from tests.
int run_fleet_worker(const WorkerOptions& opts);

// Serializes the options back into the argv tail worker_main parses
// (supervisor side; excludes the binary path, includes --fleet-worker).
std::vector<std::string> worker_argv(const WorkerOptions& opts);

}  // namespace a3cs::fleet
