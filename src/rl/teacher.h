// Teacher agents for AC-distillation (paper Sec. V-A: "we train a ResNet-20
// model as the teacher agent"). Teachers are trained once per game and
// cached on disk so the many distillation experiments don't retrain them.
#pragma once

#include <memory>
#include <string>

#include "nn/actor_critic.h"
#include "nn/zoo.h"

namespace a3cs::rl {

struct TeacherConfig {
  std::string model_name = "ResNet-20";  // paper's teacher backbone
  std::int64_t train_frames = 30000;
  std::string cache_dir = ".a3cs_cache/teachers";
  std::uint64_t seed = 7;
};

// Returns a trained teacher for `game_title`, loading from the cache when a
// checkpoint exists and training + saving one otherwise.
std::unique_ptr<nn::ActorCriticNet> get_or_train_teacher(
    const std::string& game_title, const TeacherConfig& cfg = TeacherConfig{});

// Trains a fresh teacher (no cache interaction); exposed for tests.
std::unique_ptr<nn::ActorCriticNet> train_teacher(
    const std::string& game_title, const TeacherConfig& cfg);

}  // namespace a3cs::rl
