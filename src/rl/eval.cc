#include "rl/eval.h"

#include "arcade/games.h"
#include "rl/rollout.h"
#include "tensor/ops.h"
#include "util/stats.h"

namespace a3cs::rl {

EvalResult evaluate_agent(nn::ActorCriticNet& net,
                          const std::string& game_title,
                          const EvalConfig& cfg) {
  util::Rng rng(cfg.seed);
  util::RunningStats stats;
  for (int ep = 0; ep < cfg.episodes; ++ep) {
    auto env = arcade::make_game(game_title, cfg.seed + 1000 +
                                                  static_cast<std::uint64_t>(ep));
    Tensor obs = env->reset();
    double score = 0.0;
    bool done = false;

    // Null-op starts: up to `max_noop_starts` no-ops before the agent acts.
    const int noops = rng.uniform_int(cfg.max_noop_starts + 1);
    for (int i = 0; i < noops && !done; ++i) {
      auto r = env->step(0);
      score += r.reward;
      done = r.done;
      obs = r.obs;
    }

    while (!done) {
      const auto ac = net.forward(obs);
      int action;
      if (cfg.sample_actions) {
        action = sample_actions(ac.logits, rng).front();
      } else {
        action = static_cast<int>(tensor::argmax(ac.logits));
      }
      auto r = env->step(action);
      score += r.reward;
      done = r.done;
      obs = r.obs;
    }
    stats.add(score);
  }
  EvalResult out;
  out.mean_score = stats.mean();
  out.stddev = stats.stddev();
  out.min_score = stats.min();
  out.max_score = stats.max();
  out.episodes = static_cast<int>(stats.count());
  return out;
}

}  // namespace a3cs::rl
