// Synchronous advantage actor-critic (A2C) trainer with the paper's
// AC-distillation mechanism (Sec. IV-B). This is the training loop used both
// to train standalone agents (Tables I/II, Fig. 1) and — via the exposed
// single-update entry point — inside the A3C-S co-search loop (Alg. 1),
// which interleaves accelerator-parameter updates between rollouts.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "arcade/vec_env.h"
#include "nn/actor_critic.h"
#include "nn/optim.h"
#include "rl/losses.h"
#include "rl/rollout.h"
#include "util/stats.h"

namespace a3cs::rl {

struct A2cConfig {
  int num_envs = 8;
  int rollout_len = 5;          // paper Sec. V-A
  double gamma = 0.99;          // paper Sec. V-A
  double lr_start = 1e-3;       // paper: constant then linear decay
  double lr_end = 1e-4;
  // Fractions of the run spent at lr_start / decaying (paper: first third).
  double lr_hold_frac = 1.0 / 3.0;
  double grad_clip = 5.0;
  AdvantageConfig advantage;    // n-step (default) / td-error / GAE
  LossCoefficients loss;        // entropy/distillation coefficients
  std::uint64_t seed = 1;
};

// The paper's distillation coefficients (Sec. V-A): b1=1e-2, b2=1e-1, b3=1e-3.
LossCoefficients paper_distill_coefficients();
// Policy-only distillation baseline (Table II middle column): b3 = 0.
LossCoefficients policy_only_distill_coefficients();
// No distillation baseline: b2 = b3 = 0.
LossCoefficients no_distill_coefficients();

struct UpdateStats {
  LossStats loss;
  float grad_norm = 0.0f;   // pre-clip fused global norm (NaN when skipped)
  float param_norm = 0.0f;  // post-step fused global parameter norm
  // The guarded update dropped this batch: a loss term or the gradient norm
  // was non-finite, the gradients were zeroed and the optimizer not stepped.
  bool skipped = false;
};

// One A2C update from a collected rollout: forwards the stacked batch,
// computes targets and head gradients (with optional teacher), backprops and
// steps `opt`. Exposed separately so the co-search loop can wrap it.
//
// The update is GUARDED: a non-finite loss term or gradient norm zeroes the
// gradients and skips the optimizer step (stats.skipped), so one poisoned
// batch costs one update instead of the whole run; the pre-clip gradient
// norm and post-step parameter norm land in the train.grad_norm /
// train.param_norm gauges either way (see docs/ROBUSTNESS.md).
UpdateStats a2c_update(nn::ActorCriticNet& net, const Rollout& rollout,
                       const A2cConfig& cfg, nn::Optimizer& opt,
                       nn::ActorCriticNet* teacher);

class A2cTrainer {
 public:
  // `teacher` may be null (no distillation regardless of coefficients).
  A2cTrainer(nn::ActorCriticNet& net, arcade::VecEnv& envs, A2cConfig cfg,
             nn::ActorCriticNet* teacher = nullptr);

  // Runs until `total_frames` env frames have been consumed. The callback
  // (if given) fires roughly every `callback_every` frames with the frame
  // count — benches use it to record score curves.
  using Callback = std::function<void(std::int64_t frames)>;
  void train(std::int64_t total_frames, Callback callback = nullptr,
             std::int64_t callback_every = 0);

  // Mean score over episodes completed during training (all, most recent
  // window handled by the caller via drain).
  std::vector<double> drain_episode_scores() {
    return envs_.drain_episode_scores();
  }

  std::int64_t frames() const { return collector_.frames(); }
  const UpdateStats& last_update() const { return last_update_; }

 private:
  nn::ActorCriticNet& net_;
  arcade::VecEnv& envs_;
  A2cConfig cfg_;
  nn::ActorCriticNet* teacher_;
  RolloutCollector collector_;
  nn::RmsProp opt_;
  UpdateStats last_update_;
};

}  // namespace a3cs::rl
