// Rollout collection: runs the current stochastic policy for a fixed number
// of steps on a vectorized environment and records everything the A2C update
// needs (paper Alg. 1's inner "repeat ... until rollout length L" loop).
#pragma once

#include <vector>

#include "arcade/vec_env.h"
#include "nn/actor_critic.h"
#include "util/rng.h"

namespace a3cs::rl {

using arcade::VecEnv;
using nn::ActorCriticNet;
using tensor::Tensor;

struct Rollout {
  // Per-step records; each obs is (N, C, H, W) with N = num_envs.
  std::vector<Tensor> obs;
  std::vector<std::vector<int>> actions;
  std::vector<std::vector<double>> rewards;
  std::vector<std::vector<bool>> dones;
  Tensor last_obs;  // observation after the final step (for bootstrapping)

  int length() const { return static_cast<int>(obs.size()); }
  int num_envs() const { return obs.empty() ? 0 : obs.front().shape()[0]; }

  // Stacks all per-step observation batches into one (L*N, C, H, W) tensor,
  // ordered step-major (step 0's N samples first).
  Tensor stacked_obs() const;
};

class RolloutCollector {
 public:
  RolloutCollector(VecEnv& envs, util::Rng rng);

  // Collects `length` steps with actions sampled from net's policy.
  Rollout collect(ActorCriticNet& net, int length);

  // Total env frames stepped so far (num_envs per step).
  std::int64_t frames() const { return frames_; }

  // Checkpointing: action-sampling RNG, frame counter and the pending
  // observation batch (plus the full state of the underlying VecEnv), so a
  // restored collector resumes its trajectory stream bit-exactly.
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

  // Replaces the action-sampling RNG stream (guard rollback: a healed replay
  // samples a different trajectory than the one that diverged).
  void reseed(std::uint64_t seed_value) { rng_.reseed(seed_value); }

 private:
  VecEnv& envs_;
  util::Rng rng_;
  Tensor current_obs_;
  bool started_ = false;
  std::int64_t frames_ = 0;
};

// Samples one action per row from a (N, A) logits matrix.
std::vector<int> sample_actions(const Tensor& logits, util::Rng& rng);

}  // namespace a3cs::rl
