// Agent evaluation following the paper's protocol: the test score is the
// average over 30 episodes with random null-op starts (Sec. V-A, following
// Mnih et al.).
#pragma once

#include <string>

#include "nn/actor_critic.h"
#include "util/rng.h"

namespace a3cs::rl {

struct EvalConfig {
  int episodes = 30;        // paper: averaged over 30 episodes
  int max_noop_starts = 30; // up to 30 random no-ops at episode start
  bool sample_actions = true;  // stochastic policy (A3C convention)
  std::uint64_t seed = 12345;
};

struct EvalResult {
  double mean_score = 0.0;
  double stddev = 0.0;
  double min_score = 0.0;
  double max_score = 0.0;
  int episodes = 0;
};

// Plays `cfg.episodes` episodes of `game_title` and reports score stats.
EvalResult evaluate_agent(nn::ActorCriticNet& net,
                          const std::string& game_title,
                          const EvalConfig& cfg = EvalConfig{});

}  // namespace a3cs::rl
