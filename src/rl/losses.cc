#include "rl/losses.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace a3cs::rl {

namespace {

// Log-probability floor: log(1e-8). Degenerate logits (one-hot rows with a
// spread beyond float's exp range) drive individual probabilities to exact 0
// and their log-softmax towards -inf; every term that multiplies or sums a
// log-probability clamps to this floor so the loss and its gradients stay
// finite instead of propagating -inf/NaN into the update (the entropy term's
// 0 * -inf is the classic silent NaN source). Probabilities >= 1e-8 are
// untouched, so healthy batches are numerically unaffected.
constexpr float kMinLogProb = -18.420681f;

inline float safe_log_prob(float lp) {
  return lp < kMinLogProb ? kMinLogProb : lp;
}

}  // namespace

HeadGradients task_loss(const LossInputs& in, const LossCoefficients& coef,
                        LossStats* stats) {
  A3CS_CHECK(in.logits && in.values && in.actions && in.advantages &&
                 in.returns,
             "task_loss: missing inputs");
  const Tensor& logits = *in.logits;
  const Tensor& values = *in.values;
  A3CS_CHECK(logits.shape().rank() == 2, "task_loss: logits must be (B, A)");
  const int b = logits.shape()[0], a = logits.shape()[1];
  A3CS_CHECK(values.shape() == tensor::Shape::mat(b, 1),
             "task_loss: values must be (B, 1)");
  A3CS_CHECK(static_cast<int>(in.actions->size()) == b &&
                 static_cast<int>(in.advantages->size()) == b &&
                 static_cast<int>(in.returns->size()) == b,
             "task_loss: batch size mismatch");

  const bool distill = coef.distill_actor != 0.0 || coef.distill_critic != 0.0;
  if (distill) {
    A3CS_CHECK(in.teacher_probs != nullptr && in.teacher_values != nullptr,
               "task_loss: distillation enabled but teacher signals missing");
    A3CS_CHECK(in.teacher_probs->shape() == logits.shape(),
               "task_loss: teacher_probs shape mismatch");
    A3CS_CHECK(in.teacher_values->shape() == values.shape(),
               "task_loss: teacher_values shape mismatch");
  }

  Tensor probs(logits.shape());
  Tensor log_probs(logits.shape());
  tensor::softmax_rows(logits, probs);
  tensor::log_softmax_rows(logits, log_probs);

  HeadGradients out;
  out.dlogits = Tensor(logits.shape());
  out.dvalue = Tensor(values.shape());

  LossStats s;
  const float inv_b = 1.0f / static_cast<float>(b);

  for (int i = 0; i < b; ++i) {
    const int act = (*in.actions)[static_cast<std::size_t>(i)];
    A3CS_CHECK(act >= 0 && act < a, "task_loss: action out of range");
    const float adv = (*in.advantages)[static_cast<std::size_t>(i)];
    const float ret = (*in.returns)[static_cast<std::size_t>(i)];
    const float v = values.at2(i, 0);

    // Negative entropy sum_j pi log pi of this row (paper's L_entropy).
    double neg_ent = 0.0;
    for (int j = 0; j < a; ++j) {
      neg_ent += static_cast<double>(probs.at2(i, j)) *
                 safe_log_prob(log_probs.at2(i, j));
    }

    for (int j = 0; j < a; ++j) {
      const float p = probs.at2(i, j);
      const float lp = safe_log_prob(log_probs.at2(i, j));
      float g = 0.0f;
      // Policy gradient: L_policy = -adv * log pi(a|s).
      g += adv * (p - (j == act ? 1.0f : 0.0f));
      // Entropy term: d(sum pi log pi)/dlogit_j = pi_j (log pi_j - sum).
      g += static_cast<float>(coef.entropy_beta) * p *
           (lp - static_cast<float>(neg_ent));
      // Actor distillation: KL(teacher || student).
      if (coef.distill_actor != 0.0) {
        g += static_cast<float>(coef.distill_actor) *
             (p - in.teacher_probs->at2(i, j));
      }
      out.dlogits.at2(i, j) = g * inv_b;
    }

    // Value head.
    float gv = static_cast<float>(coef.value_coef) * (v - ret);
    if (coef.distill_critic != 0.0) {
      gv += static_cast<float>(coef.distill_critic) *
            (v - in.teacher_values->at2(i, 0));
    }
    out.dvalue.at2(i, 0) = gv * inv_b;

    // Scalar losses (per-sample averages accumulated below).
    s.policy += -static_cast<double>(adv) * safe_log_prob(log_probs.at2(i, act));
    s.value += 0.5 * static_cast<double>(v - ret) * (v - ret);
    s.entropy += -neg_ent;
    if (coef.distill_actor != 0.0) {
      double kl = 0.0;
      for (int j = 0; j < a; ++j) {
        const double q = in.teacher_probs->at2(i, j);
        if (q > 1e-8) {
          kl += q * (std::log(q) -
                     static_cast<double>(safe_log_prob(log_probs.at2(i, j))));
        }
      }
      s.distill_actor += kl;
    }
    if (coef.distill_critic != 0.0) {
      const double dv = v - in.teacher_values->at2(i, 0);
      s.distill_critic += 0.5 * dv * dv;
    }
  }

  if (stats != nullptr) {
    const double ib = 1.0 / b;
    stats->policy = s.policy * ib;
    stats->value = s.value * ib;
    stats->entropy = s.entropy * ib;
    stats->distill_actor = s.distill_actor * ib;
    stats->distill_critic = s.distill_critic * ib;
    stats->total = stats->policy + coef.value_coef * stats->value -
                   coef.entropy_beta * stats->entropy +
                   coef.distill_actor * stats->distill_actor +
                   coef.distill_critic * stats->distill_critic;
  }
  return out;
}

Targets compute_targets(const std::vector<std::vector<double>>& rewards,
                        const std::vector<std::vector<bool>>& dones,
                        const Tensor& values, const Tensor& bootstrap,
                        double gamma, const AdvantageConfig& adv) {
  const int steps = static_cast<int>(rewards.size());
  A3CS_CHECK(steps > 0, "compute_targets: empty rollout");
  const int n = static_cast<int>(rewards.front().size());
  A3CS_CHECK(values.shape() == tensor::Shape::mat(steps * n, 1),
             "compute_targets: values shape mismatch");
  A3CS_CHECK(bootstrap.shape() == tensor::Shape::mat(n, 1),
             "compute_targets: bootstrap shape mismatch");

  Targets out;
  out.returns.assign(static_cast<std::size_t>(steps) * n, 0.0f);
  out.advantages.assign(static_cast<std::size_t>(steps) * n, 0.0f);

  // All three estimators are the GAE recursion with different lambda:
  //   delta_t = r_t + gamma * V(s_{t+1}) - V(s_t)
  //   A_t     = delta_t + gamma * lambda * A_{t+1}
  // lambda = 1 recovers the n-step estimator, lambda = 0 the pure td-error.
  double lambda = adv.gae_lambda;
  if (adv.mode == AdvantageConfig::Mode::kNStep) lambda = 1.0;
  if (adv.mode == AdvantageConfig::Mode::kTdError) lambda = 0.0;

  for (int e = 0; e < n; ++e) {
    double a_next = 0.0;
    double v_next = bootstrap.at2(e, 0);
    for (int t = steps - 1; t >= 0; --t) {
      const std::size_t idx = static_cast<std::size_t>(t) * n + e;
      if (dones[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)]) {
        // Episode ended at step t: nothing propagates across the reset.
        a_next = 0.0;
        v_next = 0.0;
      }
      const double r =
          rewards[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)];
      const double v = values.at2(static_cast<int>(idx), 0);
      const double delta = r + gamma * v_next - v;
      const double a = delta + gamma * lambda * a_next;
      out.advantages[idx] = static_cast<float>(a);
      // The value target matching the estimator: A_t + V(s_t). For
      // lambda = 1 this is exactly the n-step bootstrapped return.
      out.returns[idx] = static_cast<float>(a + v);
      a_next = a;
      v_next = v;
    }
  }
  return out;
}

}  // namespace a3cs::rl
