#include "rl/rollout.h"

#include <cstring>

#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "util/logging.h"
#include "util/state_io.h"

namespace a3cs::rl {

Tensor Rollout::stacked_obs() const {
  A3CS_CHECK(!obs.empty(), "stacked_obs on empty rollout");
  const auto& s = obs.front().shape();
  const int n = s[0];
  Tensor out(tensor::Shape::nchw(length() * n, s[1], s[2], s[3]));
  const std::int64_t step_elems = obs.front().numel();
  for (int t = 0; t < length(); ++t) {
    std::memcpy(out.data() + static_cast<std::size_t>(t) * step_elems,
                obs[static_cast<std::size_t>(t)].data(),
                static_cast<std::size_t>(step_elems) * sizeof(float));
  }
  return out;
}

RolloutCollector::RolloutCollector(VecEnv& envs, util::Rng rng)
    : envs_(envs), rng_(rng) {}

std::vector<int> sample_actions(const Tensor& logits, util::Rng& rng) {
  A3CS_CHECK(logits.shape().rank() == 2, "sample_actions expects (N, A)");
  const int n = logits.shape()[0], a = logits.shape()[1];
  Tensor probs(logits.shape());
  tensor::softmax_rows(logits, probs);
  std::vector<int> actions(static_cast<std::size_t>(n));
  std::vector<double> w(static_cast<std::size_t>(a));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < a; ++j) {
      w[static_cast<std::size_t>(j)] = probs.at2(i, j);
    }
    actions[static_cast<std::size_t>(i)] = rng.categorical(w);
  }
  return actions;
}

Rollout RolloutCollector::collect(ActorCriticNet& net, int length) {
  if (!started_) {
    current_obs_ = envs_.reset();
    started_ = true;
  }
  Rollout out;
  out.obs.reserve(static_cast<std::size_t>(length));
  for (int t = 0; t < length; ++t) {
    out.obs.push_back(current_obs_);
    const auto ac = net.forward(current_obs_);
    auto actions = sample_actions(ac.logits, rng_);
    const auto& step = envs_.step(actions);
    out.actions.push_back(std::move(actions));
    out.rewards.push_back(step.rewards);
    std::vector<bool> dones(step.dones.begin(), step.dones.end());
    out.dones.push_back(std::move(dones));
    current_obs_ = step.obs;
    frames_ += envs_.num_envs();
  }
  out.last_obs = current_obs_;
  return out;
}

void RolloutCollector::save_state(std::ostream& out) const {
  namespace sio = util::sio;
  sio::put_rng(out, rng_);
  sio::put_i64(out, frames_);
  sio::put_bool(out, started_);
  if (started_) tensor::write_tensor(out, current_obs_);
  envs_.save_state(out);
}

void RolloutCollector::load_state(std::istream& in) {
  namespace sio = util::sio;
  sio::get_rng(in, rng_);
  frames_ = sio::get_i64(in);
  started_ = sio::get_bool(in);
  if (started_) {
    current_obs_ = tensor::read_tensor(in);
  } else {
    current_obs_ = Tensor();
  }
  envs_.load_state(in);
}

}  // namespace a3cs::rl
