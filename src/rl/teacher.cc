#include "rl/teacher.h"

#include <filesystem>

#include "arcade/env.h"
#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "rl/a2c.h"
#include "util/config.h"
#include "util/logging.h"

namespace a3cs::rl {
namespace {

std::string cache_path(const std::string& game_title,
                       const TeacherConfig& cfg) {
  return cfg.cache_dir + "/" + game_title + "_" + cfg.model_name + "_" +
         std::to_string(cfg.train_frames) + ".bin";
}

std::unique_ptr<nn::ActorCriticNet> build_teacher_net(
    const std::string& game_title, const TeacherConfig& cfg) {
  auto probe = arcade::make_game(game_title, 1);
  util::Rng rng(cfg.seed);
  auto agent = nn::build_zoo_agent(cfg.model_name, probe->obs_spec(),
                                   probe->num_actions(), rng);
  return std::move(agent.net);
}

}  // namespace

std::unique_ptr<nn::ActorCriticNet> train_teacher(const std::string& game_title,
                                                  const TeacherConfig& cfg) {
  auto net = build_teacher_net(game_title, cfg);
  arcade::VecEnv envs(game_title, 8, cfg.seed + 100);
  A2cConfig a2c;
  a2c.seed = cfg.seed + 200;
  a2c.loss = no_distill_coefficients();
  A2cTrainer trainer(*net, envs, a2c);
  trainer.train(cfg.train_frames);
  return net;
}

std::unique_ptr<nn::ActorCriticNet> get_or_train_teacher(
    const std::string& game_title, const TeacherConfig& cfg) {
  const std::string path = cache_path(game_title, cfg);
  if (std::filesystem::exists(path)) {
    // A cache entry from an older serialization format (or a torn write)
    // fails loudly on load; fall through to retraining instead of dying.
    try {
      auto net = build_teacher_net(game_title, cfg);
      net->load(path);
      A3CS_LOG(INFO) << "teacher for " << game_title << " loaded from "
                     << path;
      return net;
    } catch (const std::exception& e) {
      A3CS_LOG(WARN) << "stale teacher cache " << path << " (" << e.what()
                     << "); retraining";
    }
  }
  A3CS_LOG(INFO) << "training teacher for " << game_title << " ("
                 << cfg.train_frames << " frames)";
  auto net = train_teacher(game_title, cfg);
  std::filesystem::create_directories(cfg.cache_dir);
  net->save(path);
  return net;
}

}  // namespace a3cs::rl
