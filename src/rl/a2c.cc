#include "rl/a2c.h"

#include <limits>

// Deliberate upward edge in the layer DAG: the trainer feeds per-update
// vitals to the guard-layer health monitor (PR 4); inverting it would need
// a callback interface for one call site. A3CS_LINT(arch-layering)
#include "guard/health.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace a3cs::rl {

LossCoefficients paper_distill_coefficients() {
  LossCoefficients c;
  c.entropy_beta = 1e-2;    // beta_1
  c.distill_actor = 1e-1;   // beta_2
  c.distill_critic = 1e-3;  // beta_3
  return c;
}

LossCoefficients policy_only_distill_coefficients() {
  LossCoefficients c = paper_distill_coefficients();
  c.distill_critic = 0.0;
  return c;
}

LossCoefficients no_distill_coefficients() {
  LossCoefficients c = paper_distill_coefficients();
  c.distill_actor = 0.0;
  c.distill_critic = 0.0;
  return c;
}

UpdateStats a2c_update(nn::ActorCriticNet& net, const Rollout& rollout,
                       const A2cConfig& cfg, nn::Optimizer& opt,
                       nn::ActorCriticNet* teacher) {
  A3CS_PROF_SCOPE("a2c-update");
  static obs::Counter& updates =
      obs::MetricsRegistry::global().counter("a2c.updates");
  updates.inc();
  // Bootstrap values for the post-rollout states (V(s_L) per env). This
  // forward's caches are overwritten by the batch forward below, which is
  // fine: we only need the values.
  const auto boot = net.forward(rollout.last_obs);

  // Batch forward over every rollout entry (step-major stacking).
  const Tensor batch_obs = rollout.stacked_obs();
  const auto ac = net.forward(batch_obs);

  const Targets targets =
      compute_targets(rollout.rewards, rollout.dones, ac.value, boot.value,
                      cfg.gamma, cfg.advantage);

  // Flatten actions step-major to match the stacked batch.
  std::vector<int> actions;
  actions.reserve(static_cast<std::size_t>(rollout.length()) *
                  rollout.num_envs());
  for (const auto& step_actions : rollout.actions) {
    actions.insert(actions.end(), step_actions.begin(), step_actions.end());
  }

  // Teacher signals on the same batch.
  Tensor teacher_probs, teacher_values;
  LossCoefficients coef = cfg.loss;
  if (teacher != nullptr &&
      (coef.distill_actor != 0.0 || coef.distill_critic != 0.0)) {
    const auto tea = teacher->forward(batch_obs);
    teacher_probs = Tensor(tea.logits.shape());
    tensor::softmax_rows(tea.logits, teacher_probs);
    teacher_values = tea.value;
  } else {
    coef.distill_actor = 0.0;
    coef.distill_critic = 0.0;
  }

  LossInputs in;
  in.logits = &ac.logits;
  in.values = &ac.value;
  in.actions = &actions;
  in.advantages = &targets.advantages;
  in.returns = &targets.returns;
  if (coef.distill_actor != 0.0 || coef.distill_critic != 0.0) {
    in.teacher_probs = &teacher_probs;
    in.teacher_values = &teacher_values;
  }

  UpdateStats stats;
  const HeadGradients grads = task_loss(in, coef, &stats.loss);

  static obs::Counter& skips =
      obs::MetricsRegistry::global().counter("guard.a2c_skips");
  static obs::Gauge& grad_norm_gauge =
      obs::MetricsRegistry::global().gauge("train.grad_norm");
  static obs::Gauge& param_norm_gauge =
      obs::MetricsRegistry::global().gauge("train.param_norm");

  auto params = net.parameters();
  const guard::HealthVerdict loss_verdict = guard::check_finite(
      guard::Check::kLossFinite, stats.loss.total, "a2c loss");
  if (loss_verdict.severity == guard::Severity::kError) {
    // The head gradients are built from the same poisoned terms; dropping
    // the batch before backward keeps the accumulated grads clean.
    net.zero_grad();
    stats.skipped = true;
    stats.grad_norm = std::numeric_limits<float>::quiet_NaN();
  } else {
    net.zero_grad();
    net.backward(grads.dlogits, grads.dvalue);
    const nn::NormStats grad_stats = nn::grad_norm_stats(params);
    stats.grad_norm = static_cast<float>(grad_stats.norm);
    if (!grad_stats.finite) {
      nn::zero_gradients(params);
      stats.skipped = true;
    } else {
      nn::clip_grad_norm(params, static_cast<float>(cfg.grad_clip));
      opt.step(params);
    }
  }
  if (stats.skipped) {
    skips.inc();
    if (obs::trace_active()) {
      obs::trace_event("guard_event")
          .kv("kind", "a2c_skip")
          .kv("loss_total", stats.loss.total)
          .kv("grad_norm", static_cast<double>(stats.grad_norm));
    }
  }
  stats.param_norm = static_cast<float>(nn::param_norm_stats(params).norm);
  grad_norm_gauge.set(stats.grad_norm);
  param_norm_gauge.set(stats.param_norm);
  return stats;
}

A2cTrainer::A2cTrainer(nn::ActorCriticNet& net, arcade::VecEnv& envs,
                       A2cConfig cfg, nn::ActorCriticNet* teacher)
    : net_(net),
      envs_(envs),
      cfg_(cfg),
      teacher_(teacher),
      collector_(envs, util::Rng(cfg.seed)),
      opt_(cfg.lr_start) {
  A3CS_CHECK(envs.num_envs() >= 1, "A2cTrainer: needs at least one env");
}

void A2cTrainer::train(std::int64_t total_frames, Callback callback,
                       std::int64_t callback_every) {
  const nn::LinearLrSchedule schedule(
      cfg_.lr_start, cfg_.lr_end,
      static_cast<std::int64_t>(cfg_.lr_hold_frac *
                                static_cast<double>(total_frames)),
      total_frames);
  std::int64_t next_callback = callback_every;
  while (collector_.frames() < total_frames) {
    opt_.set_learning_rate(schedule.at(collector_.frames()));
    Rollout rollout;
    {
      A3CS_PROF_SCOPE("a2c-rollout");
      rollout = collector_.collect(net_, cfg_.rollout_len);
    }
    last_update_ = a2c_update(net_, rollout, cfg_, opt_, teacher_);
    if (callback && callback_every > 0 &&
        collector_.frames() >= next_callback) {
      callback(collector_.frames());
      next_callback += callback_every;
    }
  }
}

}  // namespace a3cs::rl
