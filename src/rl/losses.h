// Closed-form gradients of the A3C-S task loss (paper Eq. 12):
//
//   L_task = L_policy + L_value + b1*L_entropy + b2*L_actor^distill
//          + b3*L_critic^distill
//
// All five terms have exact analytical gradients at the policy logits and the
// value output, which is where this module computes them; the network then
// backpropagates those head gradients (see nn::ActorCriticNet::backward).
//
//   dL_policy/dlogit_j  = adv * (pi_j - 1[j = a])        (Eq. 2 with td-error)
//   dL_value/dV         = (V - R)                        (Eq. 3)
//   dL_entropy/dlogit_j = pi_j * (log pi_j - sum_k pi_k log pi_k)   (Eq. 13)
//   dL_actor/dlogit_j   = pi_j - pi_j^teacher            (Eq. 10, KL(tea||stu))
//   dL_critic/dV        = (V - V_teacher)                (Eq. 11)
#pragma once

#include "tensor/tensor.h"

namespace a3cs::rl {

using tensor::Tensor;

struct LossCoefficients {
  double value_coef = 1.0;       // weight on L_value (paper uses a plain sum)
  double entropy_beta = 1e-2;    // beta_1 (paper Sec. V-A)
  double distill_actor = 0.0;    // beta_2; 0 disables actor distillation
  double distill_critic = 0.0;   // beta_3; 0 disables critic distillation
};

struct LossInputs {
  const Tensor* logits = nullptr;         // (B, A) student policy logits
  const Tensor* values = nullptr;         // (B, 1) student value estimates
  const std::vector<int>* actions = nullptr;   // B chosen actions
  const std::vector<float>* advantages = nullptr;  // B advantage estimates
  const std::vector<float>* returns = nullptr;     // B value targets
  // Optional teacher signals (required when the distill coefficients are
  // non-zero):
  const Tensor* teacher_probs = nullptr;  // (B, A)
  const Tensor* teacher_values = nullptr; // (B, 1)
};

struct HeadGradients {
  Tensor dlogits;  // (B, A)
  Tensor dvalue;   // (B, 1)
};

struct LossStats {
  double policy = 0.0;
  double value = 0.0;
  double entropy = 0.0;          // true entropy (positive), for logging
  double distill_actor = 0.0;    // KL(teacher || student)
  double distill_critic = 0.0;   // MSE between critics
  double total = 0.0;
};

// Computes head gradients and scalar loss values. Gradients are averaged
// over the batch (1/B), matching an expectation over the rollout.
HeadGradients task_loss(const LossInputs& in, const LossCoefficients& coef,
                        LossStats* stats = nullptr);

// Advantage/return estimators over a rollout laid out step-major
// ((t0 e0..eN-1), (t1 e0..eN-1), ...), as produced by
// Rollout::stacked_obs(). `values` are the student's V(s_t) for every rollout
// entry, `bootstrap` the V(s_L) for each env after the final step. Episode
// boundaries (dones) cut all accumulation.
//
//   kNStep   — full-rollout bootstrapped returns (A3C's estimator; default):
//              A_t = (r_t + g r_{t+1} + ... + g^{L-t} V(s_L)) - V(s_t)
//   kTdError — the paper's Eq. 2 one-step td-error:
//              A_t = r_t + g V(s_{t+1}) - V(s_t)
//   kGae     — generalized advantage estimation (lambda interpolates the
//              two: lambda=0 -> kTdError, lambda=1 -> kNStep)
struct AdvantageConfig {
  enum class Mode { kNStep, kTdError, kGae } mode = Mode::kNStep;
  double gae_lambda = 0.95;
};

struct Targets {
  std::vector<float> returns;     // length L*N (value-head regression target)
  std::vector<float> advantages;  // length L*N (policy-gradient scale)
};
Targets compute_targets(const std::vector<std::vector<double>>& rewards,
                        const std::vector<std::vector<bool>>& dones,
                        const Tensor& values, const Tensor& bootstrap,
                        double gamma,
                        const AdvantageConfig& adv = AdvantageConfig{});

}  // namespace a3cs::rl
