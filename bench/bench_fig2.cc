// Fig. 2 reproduction: test-score evolution during the architecture search
// under three schemes on four games:
//   Direct-NAS      — DNAS without distillation (one-level)
//   A3C-S:Bi-level  — AC-distillation + bi-level (DARTS-style) optimization
//   A3C-S:One-level — AC-distillation + one-level optimization (the paper's)
//
// The curve point is the test score of the supernet evaluated in argmax-
// alpha (derived) mode with the current supernet weights. Paper shape to
// verify: one-level + distillation improves steadily; bi-level stays low;
// Direct-NAS is unstable/lower.
#include "arcade/games.h"
#include "bench_common.h"
#include "core/cosearch.h"
#include "rl/eval.h"

using namespace a3cs;

namespace {

double eval_derived_through_supernet(core::CoSearchEngine& engine,
                                     const std::string& game) {
  engine.supernet().set_argmax_mode(true);
  const double score =
      rl::evaluate_agent(engine.net(), game, bench::curve_eval(777))
          .mean_score;
  engine.supernet().set_argmax_mode(false);
  return score;
}

}  // namespace

int main() {
  bench::banner("Fig. 2",
                "search-score evolution: Direct-NAS vs bi-level vs one-level");
  const std::int64_t frames = util::scaled_steps(8000);
  const int curve_points = 5;

  struct Scheme {
    std::string name;
    bool distill;
    core::Optimization opt;
  };
  const std::vector<Scheme> schemes = {
      {"Direct-NAS", false, core::Optimization::kOneLevel},
      {"A3C-S:Bi-level", true, core::Optimization::kBiLevel},
      {"A3C-S:One-level", true, core::Optimization::kOneLevel},
  };

  util::CsvWriter csv(std::cout, {"game", "scheme", "frames", "test_score"});
  util::TextTable summary(
      {"Game", "Direct-NAS", "A3C-S:Bi-level", "A3C-S:One-level"});

  int onelevel_beats_bilevel = 0;
  for (const auto& game : arcade::figure_games()) {
    auto teacher = bench::bench_teacher(game);
    std::vector<std::string> row = {game};
    std::vector<double> finals;
    for (const auto& scheme : schemes) {
      auto cfg = bench::bench_cosearch(game, 51);
      cfg.hardware_aware = false;  // Fig. 2 isolates the agent search
      cfg.optimization = scheme.opt;
      if (!scheme.distill) cfg.a2c.loss = rl::no_distill_coefficients();
      core::CoSearchEngine engine(game, cfg,
                                  scheme.distill ? teacher.get() : nullptr);
      engine.run(frames, [&](std::int64_t f) {
        const double score = eval_derived_through_supernet(engine, game);
        csv.row({game, scheme.name, std::to_string(f),
                 util::TextTable::num(score)});
      }, frames / curve_points);
      const double final_score = eval_derived_through_supernet(engine, game);
      finals.push_back(final_score);
      row.push_back(util::TextTable::num(final_score));
    }
    if (finals[2] > finals[1]) ++onelevel_beats_bilevel;
    summary.add_row(row);
  }

  std::cout << "\nFinal derived-network scores (through supernet weights):\n";
  summary.print(std::cout);
  std::cout << "\nShape summary: one-level beats bi-level on "
            << onelevel_beats_bilevel << "/" << arcade::figure_games().size()
            << " games (paper: bi-level stays low on all).\n";
  return 0;
}
