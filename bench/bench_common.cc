#include "bench_common.h"

#include <cstdlib>

#include "obs/perf/bench.h"

namespace a3cs::bench {

rl::A2cConfig bench_a2c(const rl::LossCoefficients& coef,
                        std::uint64_t seed_value) {
  rl::A2cConfig cfg;
  cfg.num_envs = 16;
  cfg.rollout_len = 5;   // paper
  cfg.gamma = 0.99;      // paper
  cfg.lr_start = 2e-3;   // scaled-down runs need a hotter start than 1e-3
  cfg.lr_end = 2e-4;
  cfg.loss = coef;
  cfg.seed = seed_value;
  return cfg;
}

rl::EvalConfig bench_eval(std::uint64_t seed_value) {
  rl::EvalConfig cfg;
  cfg.episodes = static_cast<int>(util::env_int("A3CS_EVAL_EPISODES", 10));
  cfg.max_noop_starts = 30;  // paper protocol
  cfg.seed = seed_value;
  return cfg;
}

rl::EvalConfig curve_eval(std::uint64_t seed_value) {
  rl::EvalConfig cfg;
  cfg.episodes = 3;
  cfg.max_noop_starts = 30;
  cfg.seed = seed_value;
  return cfg;
}

std::unique_ptr<nn::ActorCriticNet> bench_teacher(const std::string& game) {
  rl::TeacherConfig cfg;
  cfg.model_name = "ResNet-20";  // paper's teacher backbone
  cfg.train_frames = util::scaled_steps(12000);
  cfg.cache_dir = ".a3cs_cache/teachers";
  return rl::get_or_train_teacher(game, cfg);
}

core::CoSearchConfig bench_cosearch(const std::string& game,
                                    std::uint64_t seed_value) {
  (void)game;
  core::CoSearchConfig cfg;
  cfg.supernet.space.num_cells =
      static_cast<int>(util::env_int("A3CS_CELLS", 6));
  cfg.a2c = bench_a2c(rl::paper_distill_coefficients(), seed_value);
  cfg.a2c.num_envs = 16;
  cfg.alpha_lr = 1e-3;  // paper: Adam at 1e-3
  cfg.das.samples_per_iter = 2;
  cfg.tau_decay_every_frames = 1000;
  cfg.seed = seed_value;
  return cfg;
}

void banner(const std::string& experiment, const std::string& description) {
  // Strict env validation: a typo'd A3CS_SCALE=0 or A3CS_EVAL_EPISODES=ten
  // must abort loudly before hours of benching, not silently fall back to
  // the defaults.
  const std::vector<std::string> env_errors = obs::perf::validate_bench_env();
  if (!env_errors.empty()) {
    for (const std::string& err : env_errors) {
      std::cerr << "bench env error: " << err << "\n";
    }
    std::exit(2);
  }
  std::cout << "\n==================================================\n"
            << experiment << ": " << description << "\n"
            << "A3CS_SCALE=" << util::bench_scale()
            << " (all step budgets multiplied by this)\n"
            << "==================================================\n";
}

}  // namespace a3cs::bench
