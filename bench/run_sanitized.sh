#!/usr/bin/env sh
# Build a slice of the test binaries under a sanitizer and run them.
#
#   bench/run_sanitized.sh              # address+undefined (default)
#   A3CS_SANITIZE=thread bench/run_sanitized.sh
#
# The default ASan/UBSan pass covers the util + obs layers (atomic metrics,
# the shared trace writer, the profiler's thread-local cursors) plus the
# checkpoint subsystem (sectioned container parsing of adversarial bytes,
# the full save/restore round-trip). The TSan pass instead targets the
# parallel execution layer: the thread pool itself plus every kernel and
# subsystem that dispatches onto it (GEMM/im2col, VecEnv stepping, the
# top-K NAS backward), run with A3CS_THREADS=4 so the pool actually fans
# out.
set -eu

SAN="${A3CS_SANITIZE:-address}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-san-$SAN"

if [ "$SAN" = "thread" ]; then
  TESTS="thread_pool_test tensor_test arcade_test determinism_test"
  export A3CS_THREADS="${A3CS_THREADS:-4}"
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
else
  TESTS="util_test obs_test thread_pool_test ckpt_test io_test"
fi

# shellcheck disable=SC2086
cmake -B "$BUILD" -S "$ROOT" -DA3CS_SANITIZE="$SAN" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target $TESTS

export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

status=0
for t in $TESTS; do
  echo "== $t ($SAN${A3CS_THREADS:+, A3CS_THREADS=$A3CS_THREADS}) =="
  "$BUILD/tests/$t" || status=$?
done
exit "$status"
