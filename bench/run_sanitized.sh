#!/usr/bin/env sh
# Build a slice of the test binaries under a sanitizer and run them.
#
#   bench/run_sanitized.sh              # address+undefined (default)
#   A3CS_SANITIZE=thread bench/run_sanitized.sh
#   A3CS_SANITIZE=undefined bench/run_sanitized.sh   # UBSan-only, numeric slice
#
# Every pass starts with the a3cs-lint stage (see docs/STATIC_ANALYSIS.md) so
# invariant violations fail fast before any sanitizer compile, and builds with
# -DA3CS_WERROR=ON so warnings fail too.
#
# The default ASan/UBSan pass covers the util + obs layers (atomic metrics,
# the shared trace writer, the profiler's thread-local cursors), the
# checkpoint subsystem (sectioned container parsing of adversarial bytes,
# the full save/restore round-trip) and the training-health guard (fault
# injection, rollback recovery), the perf observability layer (bench
# registry, BENCH_*.json diffing, Chrome trace export — perf_test), the
# fleet supervisor (protocol/frontier units plus the kill/hang/corrupt
# resume e2e suite — fleet_test, fleet_resume_test), and finishes with an
# end-to-end fault-injection smoke of cosearch_full --guard=heal, a fleet
# kill-one smoke (cosearch_fleet under A3CS_FLEET_KILL), plus a perf smoke
# (bench_kernels in smoke mode, self-diffed through bench_report --check
# and --chrome-check). The TSan pass
# instead targets the parallel execution layer: the thread pool itself plus
# every kernel and subsystem that dispatches onto it (GEMM/im2col, VecEnv
# stepping, the top-K NAS backward) and the guard's cross-thread pieces
# (the global FaultInjector, the metrics it bumps), run with A3CS_THREADS=4
# so the pool actually fans out. The standalone UBSan pass sweeps the
# numeric layers — tensor kernels, nn layers/optimizers, the NAS/DAS/accel
# math — where signed overflow and bad float casts would hide.
#
# Every pass finishes with a kernel-backend stage: when the host supports
# the avx2 backend (probed via `bench_kernels --backends`), the numeric
# tier-1 slice reruns under A3CS_BACKEND=avx2 so the SIMD kernels get the
# same sanitizer coverage as the scalar defaults; hosts without AVX2/FMA
# print a SKIP and stay green.
set -eu

SAN="${A3CS_SANITIZE:-address}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-san-$SAN"
SMOKE=""

if [ "$SAN" = "thread" ]; then
  TESTS="thread_pool_test tensor_test arcade_test determinism_test guard_test serve_test"
  # Skip the (wall-clock) stall-watchdog cases: TSan's slowdown makes any
  # timing threshold meaningless.
  GUARD_FILTER="-*Stall*"
  export A3CS_THREADS="${A3CS_THREADS:-4}"
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
elif [ "$SAN" = "undefined" ]; then
  TESTS="tensor_test nn_layers_test nn_optim_test nn_zoo_test rl_test nas_test accel_test das_test core_test"
  GUARD_FILTER=""
else
  TESTS="util_test obs_test thread_pool_test ckpt_test io_test guard_test guard_recovery_test perf_test serve_test fleet_test fleet_resume_test"
  GUARD_FILTER=""
  SMOKE="cosearch_full cosearch_fleet bench_kernels bench_report predictor_server"
fi

cmake -B "$BUILD" -S "$ROOT" -DA3CS_SANITIZE="$SAN" -DA3CS_WERROR=ON >/dev/null

# Lint first: a determinism/serialization/concurrency violation fails the
# run before we spend minutes on instrumented compiles. The cross-TU graph
# families (layering, lock order, serialization coverage — the `lint_graph`
# ctest) run on their own first: they skip the per-file rule engine, so an
# architectural violation fails in milliseconds.
cmake --build "$BUILD" -j "$(nproc)" --target a3cs_lint >/dev/null
echo "== a3cs_lint --graph-only =="
"$BUILD/tools/a3cs_lint/a3cs_lint" --repo-root "$ROOT" --graph-only
echo "== a3cs_lint =="
"$BUILD/tools/a3cs_lint/a3cs_lint" --repo-root "$ROOT"

# shellcheck disable=SC2086
cmake --build "$BUILD" -j "$(nproc)" --target $TESTS $SMOKE

export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

status=0
for t in $TESTS; do
  echo "== $t ($SAN${A3CS_THREADS:+, A3CS_THREADS=$A3CS_THREADS}) =="
  if [ -n "$GUARD_FILTER" ] && [ "$t" = "guard_test" ]; then
    "$BUILD/tests/$t" --gtest_filter="$GUARD_FILTER" || status=$?
  else
    "$BUILD/tests/$t" || status=$?
  fi
done

# End-to-end guard smoke (ASan pass only): inject a persistent NaN weight
# into a tiny real pipeline run and require the heal-mode guard to finish it
# via checkpoint rollback (an abort would crash out non-zero). See
# docs/ROBUSTNESS.md.
if [ -n "$SMOKE" ] && [ "$status" -eq 0 ]; then
  echo "== guard fault-injection smoke ($SAN) =="
  CKPT_DIR="$(mktemp -d "${TMPDIR:-/tmp}/a3cs_guard_smoke.XXXXXX")"
  A3CS_SCALE="${A3CS_SCALE:-0.05}" \
  A3CS_GUARD=heal A3CS_GUARD_SKIPS=1 A3CS_GUARD_SOFTENS=1 \
  A3CS_FAULT_NAN_PARAM=5 \
  A3CS_CKPT_DIR="$CKPT_DIR" A3CS_CKPT_EVERY_ITERS=2 A3CS_CKPT_KEEP=8 \
    "$BUILD/examples/cosearch_full" Catch || status=$?
  rm -rf "$CKPT_DIR"
fi

# Perf observability smoke (ASan pass only): run the kernel bench suite in
# smoke mode with a Chrome trace, self-diff its JSON artifact through
# bench_report --check (must be all-ok) and validate the trace with
# --chrome-check. See docs/BENCHMARKING.md.
if [ -n "$SMOKE" ] && [ "$status" -eq 0 ]; then
  echo "== perf observability smoke ($SAN) =="
  PERF_DIR="$(mktemp -d "${TMPDIR:-/tmp}/a3cs_perf_smoke.XXXXXX")"
  A3CS_BENCH_SMOKE=1 A3CS_PROFILE_CHROME="$PERF_DIR/trace.json" \
    "$BUILD/bench/bench_kernels" --json "$PERF_DIR/kernels.json" || status=$?
  if [ "$status" -eq 0 ]; then
    "$BUILD/tools/bench_report/bench_report" --check \
      --baseline "$PERF_DIR/kernels.json" \
      --current "$PERF_DIR/kernels.json" || status=$?
    "$BUILD/tools/bench_report/bench_report" \
      --chrome-check "$PERF_DIR/trace.json" || status=$?
  fi
  rm -rf "$PERF_DIR"
fi

# Predictor-server smoke (ASan pass only): pipe an NDJSON script — ping,
# network info, a real eval, a repeat eval that must come back from the
# memo-cache, and two malformed lines that must produce error replies rather
# than a crash — through the stdin transport and require one reply per
# request plus a clean EOF shutdown (docs/SERVING.md).
if [ -n "$SMOKE" ] && [ "$status" -eq 0 ]; then
  echo "== predictor_server stdin smoke ($SAN) =="
  SRV_OUT="$(mktemp "${TMPDIR:-/tmp}/a3cs_serve_smoke.XXXXXX")"
  CFG='chunks=1;alloc=0,0,0;chunk=6x6,noc=0,df=1,toc=4,tic=8,split=0.34000000000000002:0.33000000000000002:0.33000000000000002'
  {
    printf '%s\n' '{"op":"ping","id":1}'
    printf '%s\n' '{"op":"info","id":2,"network":"Vanilla"}'
    printf '{"op":"eval","id":3,"network":"Vanilla","configs":["%s"]}\n' "$CFG"
    printf '{"op":"eval","id":4,"network":"Vanilla","configs":["%s"]}\n' "$CFG"
    printf '%s\n' 'this is not json'
    printf '%s\n' '{"op":"frobnicate","id":5}'
    printf '%s\n' '{"op":"stats","id":6}'
  } | "$BUILD/examples/predictor_server" --quiet > "$SRV_OUT" || status=$?
  if [ "$status" -eq 0 ]; then
    [ "$(wc -l < "$SRV_OUT")" -eq 7 ] || { echo "smoke: expected 7 replies"; status=1; }
    grep -q '"id":3,"op":"eval"' "$SRV_OUT" || { echo "smoke: eval reply missing"; status=1; }
    grep -q '"cached":true' "$SRV_OUT" || { echo "smoke: repeat eval missed the cache"; status=1; }
    [ "$(grep -c '"ok":false' "$SRV_OUT")" -eq 2 ] || { echo "smoke: expected 2 error replies"; status=1; }
  fi
  rm -f "$SRV_OUT"
fi

# Fleet kill-one smoke (ASan pass only): run a 2-worker fleet, kill worker 0
# at iteration 3 via the deterministic fault injector, and require the
# supervisor to restart it from its checkpoint ring and finish the whole run
# with exit 0 and a non-empty merged frontier (docs/FLEET.md).
if [ -n "$SMOKE" ] && [ "$status" -eq 0 ]; then
  echo "== fleet kill-one smoke ($SAN) =="
  FLEET_DIR="$(mktemp -d "${TMPDIR:-/tmp}/a3cs_fleet_smoke.XXXXXX")"
  A3CS_FLEET_KILL=0@3 \
    "$BUILD/examples/cosearch_fleet" Catch --workers 2 --frames 64 \
    --backoff 0.05 --out "$FLEET_DIR" >/dev/null || status=$?
  if [ "$status" -eq 0 ]; then
    [ -s "$FLEET_DIR/frontier.txt" ] || { echo "smoke: frontier.txt missing"; status=1; }
    grep -q '^point ' "$FLEET_DIR/frontier.txt" || { echo "smoke: frontier has no points"; status=1; }
  fi
  rm -rf "$FLEET_DIR"
fi

# Kernel-backend stage: rerun the numeric tier-1 slice under the avx2
# backend so the per-TU SIMD kernels (src/tensor/backend/kernels_avx2.cc)
# see the same sanitizer as the scalar path. Probe the host first —
# bench_kernels --backends prints one usable backend per line.
if [ "$status" -eq 0 ]; then
  cmake --build "$BUILD" -j "$(nproc)" --target bench_kernels \
    tensor_test nn_layers_test determinism_test backend_check_test >/dev/null
  if "$BUILD/bench/bench_kernels" --backends | grep -qx avx2; then
    for t in tensor_test nn_layers_test determinism_test backend_check_test; do
      echo "== $t ($SAN, A3CS_BACKEND=avx2) =="
      A3CS_BACKEND=avx2 "$BUILD/tests/$t" || status=$?
    done
  else
    echo "== backend stage: SKIP (avx2 backend unavailable on this host) =="
  fi
fi
exit "$status"
