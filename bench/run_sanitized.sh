#!/usr/bin/env sh
# Build the util + obs test binaries under ASan/UBSan (or another sanitizer)
# and run them. The obs layer is the most concurrency-heavy part of the tree
# (atomic metrics, the shared trace writer, the profiler's thread-local
# cursors), so it gets sanitized coverage on every change.
#
#   bench/run_sanitized.sh              # address+undefined (default)
#   A3CS_SANITIZE=thread bench/run_sanitized.sh
set -eu

SAN="${A3CS_SANITIZE:-address}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-san-$SAN"

cmake -B "$BUILD" -S "$ROOT" -DA3CS_SANITIZE="$SAN" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target util_test obs_test

export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

status=0
for t in util_test obs_test; do
  echo "== $t ($SAN) =="
  "$BUILD/tests/$t" || status=$?
done
exit "$status"
