// Predictor-layer benchmarks on the perf registry (BENCH_PREDICTOR.json):
// analytic HW evaluation, accelerator-space decode, one DAS step, and the
// DNNBuilder greedy config — the paper's pitch that differentiable
// accelerator search is cheap rests on these staying orders of magnitude
// faster than RL-based search.
//
// bench_predictor_micro keeps the google-benchmark variants for ns-level
// inspection; this binary produces the committed baseline the perf gate
// diffs against (docs/BENCHMARKING.md).
#include <string>
#include <vector>

#include "accel/dnnbuilder.h"
#include "accel/predictor.h"
#include "accel/space.h"
#include "bench_common.h"
#include "das/das.h"
#include "nn/zoo.h"
#include "obs/perf/bench.h"

using namespace a3cs;
using obs::perf::Bench;

namespace {

const std::vector<nn::LayerSpec>& r14_specs() {
  static const auto specs =
      nn::zoo_model_specs("ResNet-14", nn::ObsSpec{3, 12, 12}, 4);
  return specs;
}

// One registry iteration = `kBatch` evaluations, so a single sample is long
// enough for the monotonic clock to resolve.
constexpr int kBatch = 256;

}  // namespace

BENCH("predictor_eval") {
  const std::vector<int> chunk_counts =
      b.smoke() ? std::vector<int>{1} : std::vector<int>{1, 2, 4, 8};
  const int batch = b.smoke() ? 4 : kBatch;
  for (int chunks : chunk_counts) {
    accel::Predictor pred;
    accel::AcceleratorSpace space(chunks, nn::num_groups(r14_specs()));
    util::Rng rng(1);
    const auto cfg = space.decode(space.random_choices(rng));
    b.config("chunks" + std::to_string(chunks))
        .items(batch, "evals/s")
        .run([&] {
          for (int i = 0; i < batch; ++i) {
            volatile double sink = pred.evaluate(r14_specs(), cfg).fps;
            (void)sink;
          }
        });
  }
}

BENCH("space_decode") {
  accel::AcceleratorSpace space(4, nn::num_groups(r14_specs()));
  util::Rng rng(2);
  const auto choices = space.random_choices(rng);
  const int batch = b.smoke() ? 4 : kBatch;
  b.config("chunks4").items(batch, "decodes/s").run([&] {
    for (int i = 0; i < batch; ++i) {
      volatile int sink = space.decode(choices).num_chunks();
      (void)sink;
    }
  });
}

BENCH("das_step") {
  const std::vector<int> sample_counts =
      b.smoke() ? std::vector<int>{1} : std::vector<int>{1, 4};
  const int batch = b.smoke() ? 2 : 32;
  for (int samples : sample_counts) {
    accel::Predictor pred;
    accel::AcceleratorSpace space(4, nn::num_groups(r14_specs()));
    das::DasConfig cfg;
    cfg.samples_per_iter = samples;
    das::DasEngine engine(space, pred, cfg);
    b.config("samples" + std::to_string(samples))
        .items(batch, "steps/s")
        .run([&] {
          for (int i = 0; i < batch; ++i) engine.step(r14_specs(), 1);
        });
  }
}

BENCH("dnnbuilder_config") {
  accel::Predictor pred;
  const int batch = b.smoke() ? 2 : 32;
  b.config("r14").items(batch, "configs/s").run([&] {
    for (int i = 0; i < batch; ++i) {
      volatile int sink =
          accel::dnnbuilder_config(r14_specs(), pred.budget()).num_chunks();
      (void)sink;
    }
  });
}

int main(int argc, char** argv) {
  bench::banner("predictor",
                "analytic predictor / space decode / DAS step throughput");
  return obs::perf::run_bench_main("predictor", argc, argv);
}
