// Predictor-layer benchmarks on the perf registry (BENCH_PREDICTOR.json):
// analytic HW evaluation, accelerator-space decode, one DAS step, and the
// DNNBuilder greedy config — the paper's pitch that differentiable
// accelerator search is cheap rests on these staying orders of magnitude
// faster than RL-based search.
//
// bench_predictor_micro keeps the google-benchmark variants for ns-level
// inspection; this binary produces the committed baseline the perf gate
// diffs against (docs/BENCHMARKING.md).
#include <algorithm>
#include <string>
#include <vector>

#include "accel/dnnbuilder.h"
#include "accel/predictor.h"
#include "accel/space.h"
#include "bench_common.h"
#include "das/das.h"
#include "nn/zoo.h"
#include "obs/perf/bench.h"
#include "serve/service.h"

using namespace a3cs;
using obs::perf::Bench;

namespace {

const std::vector<nn::LayerSpec>& r14_specs() {
  static const auto specs =
      nn::zoo_model_specs("ResNet-14", nn::ObsSpec{3, 12, 12}, 4);
  return specs;
}

// One registry iteration = `kBatch` evaluations, so a single sample is long
// enough for the monotonic clock to resolve.
constexpr int kBatch = 256;

// Sub-millisecond rows are hostage to the multi-hundred-ms frequency/steal
// windows of the shared 1-core CI host: the default budget's 50 x ~0.1ms
// samples all land inside one window, biasing the whole row by +-40%. Spend
// 200-600ms of samples per row instead so the median spans several windows:
// min_total_ms drives fast rows to a few thousand repeats, and max_repeats
// (scaled by the row's rough per-iteration cost) keeps unsteady rows from
// sampling forever. (Smoke mode ignores this and takes a single repeat.)
obs::perf::BenchBudget steady_budget(double expected_ms) {
  obs::perf::BenchBudget budget;
  budget.min_total_ms = 200.0;
  budget.max_repeats =
      std::max(50, static_cast<int>(600.0 / std::max(0.001, expected_ms)));
  return budget;
}

}  // namespace

BENCH("predictor_eval") {
  const std::vector<int> chunk_counts =
      b.smoke() ? std::vector<int>{1} : std::vector<int>{1, 2, 4, 8};
  const int batch = b.smoke() ? 4 : kBatch;
  for (int chunks : chunk_counts) {
    accel::Predictor pred;
    accel::AcceleratorSpace space(chunks, nn::num_groups(r14_specs()));
    util::Rng rng(1);
    const auto cfg = space.decode(space.random_choices(rng));
    b.config("chunks" + std::to_string(chunks))
        .items(batch, "evals/s")
        .budget(steady_budget(0.1))
        .run([&] {
          for (int i = 0; i < batch; ++i) {
            volatile double sink = pred.evaluate(r14_specs(), cfg).fps;
            (void)sink;
          }
        });
  }
}

BENCH("space_decode") {
  accel::AcceleratorSpace space(4, nn::num_groups(r14_specs()));
  util::Rng rng(2);
  const auto choices = space.random_choices(rng);
  const int batch = b.smoke() ? 4 : kBatch;
  b.config("chunks4")
      .items(batch, "decodes/s")
      .budget(steady_budget(0.025))
      .run([&] {
    for (int i = 0; i < batch; ++i) {
      volatile int sink = space.decode(choices).num_chunks();
      (void)sink;
    }
  });
}

BENCH("das_step") {
  const std::vector<int> sample_counts =
      b.smoke() ? std::vector<int>{1} : std::vector<int>{1, 4};
  const int batch = b.smoke() ? 2 : 32;
  for (int samples : sample_counts) {
    accel::Predictor pred;
    accel::AcceleratorSpace space(4, nn::num_groups(r14_specs()));
    das::DasConfig cfg;
    cfg.samples_per_iter = samples;
    das::DasEngine engine(space, pred, cfg);
    b.config("samples" + std::to_string(samples))
        .items(batch, "steps/s")
        .budget(steady_budget(0.5 * samples))
        .run([&] {
          for (int i = 0; i < batch; ++i) engine.step(r14_specs(), 1);
        });
  }
}

// Serving-layer throughput (docs/SERVING.md): one PredictorService fed
// batches of candidate configs for the deepest zoo net. "cold" clears the
// memo-cache before every batch (every config evaluated); "warm" pre-fills
// it (every config a digest + shard-lock + refcount bump). The ISSUE-8
// acceptance gate compares warm batched at 8 threads against cold serial:
// the hit path must win on the predictor's own turf, a ~μs analytic model.
BENCH("serve_batch") {
  const auto specs = nn::zoo_model_specs("ResNet-74", nn::ObsSpec{3, 12, 12},
                                         4);
  accel::AcceleratorSpace space(4, nn::num_groups(specs));
  const int n = b.smoke() ? 8 : 512;
  util::Rng rng(5);
  std::vector<accel::AcceleratorConfig> configs;
  configs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    configs.push_back(space.decode(space.random_choices(rng)));
  }
  accel::Predictor pred;
  const std::vector<int> thread_counts =
      b.smoke() ? std::vector<int>{1} : std::vector<int>{1, 8, 16};
  for (int threads : thread_counts) {
    serve::PredictorService service(pred);
    const serve::PreparedNet net = service.prepare(specs);
    b.config("cold")
        .threads(threads)
        .items(n, "configs/s")
        .budget(steady_budget(2.0))
        .run([&] {
      service.cache().clear();
      volatile bool sink =
          service.evaluate_batch(net, configs).back().eval().feasible;
      (void)sink;
    });
    service.evaluate_batch(net, configs);  // pre-fill for the warm rows
    b.config("warm")
        .threads(threads)
        .items(n, "configs/s")
        .budget(steady_budget(0.3))
        .run([&] {
      volatile bool sink =
          service.evaluate_batch(net, configs).back().eval().feasible;
      (void)sink;
    });
  }
}

BENCH("dnnbuilder_config") {
  accel::Predictor pred;
  const int batch = b.smoke() ? 2 : 32;
  b.config("r14")
      .items(batch, "configs/s")
      .budget(steady_budget(0.12))
      .run([&] {
    for (int i = 0; i < batch; ++i) {
      volatile int sink =
          accel::dnnbuilder_config(r14_specs(), pred.budget()).num_chunks();
      (void)sink;
    }
  });
}

int main(int argc, char** argv) {
  bench::banner("predictor",
                "analytic predictor / space decode / DAS step throughput");
  return obs::perf::run_bench_main("predictor", argc, argv);
}
