// Table II reproduction: the AC-distillation ablation. For Vanilla and
// ResNet-14 on the paper's 12-game subset, compare (1) no distillation,
// (2) policy-only distillation [Rusu et al.], and (3) the proposed
// AC-distillation (actor KL + critic MSE), all distilling from a trained
// ResNet-20 teacher with the paper's coefficients (b1=1e-2, b2=1e-1,
// b3=1e-3).
//
// Paper shape to verify: distillation > no distillation on most games, and
// AC-distillation >= policy-only on most games.
#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "bench_common.h"
#include "nn/zoo.h"

using namespace a3cs;

namespace {

double run(const std::string& game, const std::string& model,
           const rl::LossCoefficients& coef, nn::ActorCriticNet* teacher,
           std::int64_t frames, std::uint64_t seed_value) {
  auto probe = arcade::make_game(game, 1);
  util::Rng rng(seed_value);
  auto agent = nn::build_zoo_agent(model, probe->obs_spec(),
                                   probe->num_actions(), rng);
  arcade::VecEnv envs(game, 16, seed_value + 100);
  const auto cfg = bench::bench_a2c(coef, seed_value + 7);
  rl::A2cTrainer trainer(*agent.net, envs, cfg, teacher);
  trainer.train(frames);
  return rl::evaluate_agent(*agent.net, game, bench::bench_eval()).mean_score;
}

}  // namespace

int main() {
  bench::banner("Table II",
                "no distillation vs policy-only vs AC-distillation");
  const std::int64_t frames = util::scaled_steps(6000);

  const std::vector<std::pair<std::string, rl::LossCoefficients>> schemes = {
      {"No distillation", rl::no_distill_coefficients()},
      {"Policy distillation only", rl::policy_only_distill_coefficients()},
      {"AC-distillation", rl::paper_distill_coefficients()},
  };

  util::TextTable table({"Atari Games", "V:none", "V:policy", "V:AC",
                         "R14:none", "R14:policy", "R14:AC"});
  util::CsvWriter csv(std::cout, {"game", "model", "scheme", "test_score"});

  int ac_best_count = 0, distill_helps = 0, cases = 0;
  for (const auto& game : arcade::table2_games()) {
    auto teacher = bench::bench_teacher(game);
    std::vector<std::string> row = {game};
    for (const auto& model : {std::string("Vanilla"), std::string("ResNet-14")}) {
      std::vector<double> scores;
      for (const auto& [scheme_name, coef] : schemes) {
        const bool uses_teacher = coef.distill_actor != 0.0;
        const double score = run(game, model, coef,
                                 uses_teacher ? teacher.get() : nullptr,
                                 frames, 31);
        scores.push_back(score);
        row.push_back(util::TextTable::num(score));
        csv.row({game, model, scheme_name, util::TextTable::num(score)});
      }
      ++cases;
      if (std::max(scores[1], scores[2]) > scores[0]) ++distill_helps;
      if (scores[2] >= scores[1]) ++ac_best_count;
    }
    table.add_row(row);
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nShape summary: distillation beats no-distillation in "
            << distill_helps << "/" << cases
            << " cases; AC-distillation >= policy-only in " << ac_best_count
            << "/" << cases << " cases (paper: both should hold on most).\n";
  return 0;
}
