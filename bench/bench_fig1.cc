// Fig. 1 reproduction: test-score evolution during training for five
// backbones (Vanilla, ResNet-14/20/38/74) on four games.
//
// Output: one CSV block per game with columns (frames, model, test_score),
// plus a final-score summary table. Paper shape to verify: larger models
// generally reach higher scores, but the largest (ResNet-74) lags within the
// fixed training budget.
#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "bench_common.h"
#include "nn/zoo.h"

using namespace a3cs;

int main() {
  bench::banner("Fig. 1",
                "test-score evolution of 5 backbones during DRL training");
  const std::int64_t frames = util::scaled_steps(12000);
  const int curve_points = 4;

  util::TextTable summary({"Game", "Vanilla", "ResNet-14", "ResNet-20",
                           "ResNet-38", "ResNet-74"});

  util::CsvWriter csv(std::cout, {"game", "model", "frames", "test_score"});
  for (const auto& game : arcade::figure_games()) {
    std::vector<std::string> row = {game};
    for (const auto& model : nn::zoo_model_names()) {
      auto probe = arcade::make_game(game, 1);
      util::Rng rng(17);
      auto agent = nn::build_zoo_agent(model, probe->obs_spec(),
                                       probe->num_actions(), rng);
      arcade::VecEnv envs(game, 16, 1000);
      const auto cfg = bench::bench_a2c(rl::no_distill_coefficients(), 3);
      rl::A2cTrainer trainer(*agent.net, envs, cfg, nullptr);
      trainer.train(frames, [&](std::int64_t f) {
        const auto eval =
            rl::evaluate_agent(*agent.net, game, bench::curve_eval(99));
        csv.row({game, model, std::to_string(f),
                 util::TextTable::num(eval.mean_score)});
      }, frames / curve_points);
      const auto final_eval =
          rl::evaluate_agent(*agent.net, game, bench::bench_eval());
      row.push_back(util::TextTable::num(final_eval.mean_score));
    }
    summary.add_row(row);
  }

  std::cout << "\nFinal test scores (Fig. 1 endpoints):\n";
  summary.print(std::cout);
  std::cout << "\nPaper shape check: mid-sized ResNets should lead; "
               "ResNet-74 should lag within this budget.\n";
  return 0;
}
