// Co-search loop benchmarks on the perf registry (BENCH_COSEARCH.json):
// supernet forward/backward on a batch, rollout collection, and one A2C
// update — the inner-loop costs that dominate a co-search run's wall time.
//
// Shapes are deliberately tiny (Catch observations, few cells) so the bench
// measures the loop mechanics rather than raw GEMM throughput, which
// BENCH_KERNELS.json already covers. A3CS_BENCH_SMOKE=1 shrinks further to
// one repeat for the bench_smoke ctest (docs/BENCHMARKING.md).
#include <memory>
#include <string>
#include <vector>

#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "bench_common.h"
#include "nas/supernet.h"
#include "nn/actor_critic.h"
#include "obs/perf/bench.h"
#include "rl/a2c.h"
#include "rl/rollout.h"
#include "util/rng.h"

using namespace a3cs;
using obs::perf::Bench;
using tensor::Shape;
using tensor::Tensor;

namespace {

struct SupernetFixture {
  std::unique_ptr<arcade::VecEnv> envs;
  nas::Supernet* supernet = nullptr;  // owned by net's backbone
  std::unique_ptr<nn::ActorCriticNet> net;
};

SupernetFixture make_fixture(int num_envs, int num_cells) {
  SupernetFixture fx;
  fx.envs = std::make_unique<arcade::VecEnv>("Catch", num_envs, 4242);
  nas::SupernetConfig cfg;
  cfg.space.num_cells = num_cells;
  util::Rng rng(7);
  auto supernet =
      std::make_unique<nas::Supernet>(fx.envs->obs_spec(), cfg, rng);
  fx.supernet = supernet.get();
  const int feature_dim = supernet->feature_dim();
  fx.net = std::make_unique<nn::ActorCriticNet>(
      std::move(supernet), feature_dim, fx.envs->num_actions(), rng);
  return fx;
}

Tensor random_batch(const nn::ObsSpec& obs, int n, std::uint64_t seed_value) {
  util::Rng rng(seed_value);
  Tensor t(Shape::nchw(n, obs.channels, obs.height, obs.width));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(0, 1));
  }
  return t;
}

}  // namespace

BENCH("supernet_forward") {
  const int cells = b.smoke() ? 3 : 6;
  const int batch = b.smoke() ? 2 : 16;
  SupernetFixture fx = make_fixture(1, cells);
  const Tensor x = random_batch(fx.envs->obs_spec(), batch, 11);
  b.config("cells" + std::to_string(cells) + "_n" + std::to_string(batch))
      .items(batch, "obs/s")
      .run([&] {
        volatile float sink = fx.supernet->forward(x)[0];
        (void)sink;
      });
}

BENCH("supernet_backward") {
  const int cells = b.smoke() ? 3 : 6;
  const int batch = b.smoke() ? 2 : 16;
  SupernetFixture fx = make_fixture(1, cells);
  const Tensor x = random_batch(fx.envs->obs_spec(), batch, 12);
  const Tensor out = fx.supernet->forward(x);
  Tensor grad(out.shape());
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    grad[i] = 1.0f / static_cast<float>(grad.numel());
  }
  b.config("cells" + std::to_string(cells) + "_n" + std::to_string(batch))
      .items(batch, "obs/s")
      .run([&] {
        // Forward inside the loop: the supernet caches per-op activations,
        // so backward is only valid right after a forward.
        fx.supernet->forward(x);
        volatile float sink = fx.supernet->backward(grad)[0];
        (void)sink;
      });
}

BENCH("rollout_collect") {
  const int num_envs = b.smoke() ? 2 : 16;
  const int length = b.smoke() ? 2 : 5;
  SupernetFixture fx = make_fixture(num_envs, b.smoke() ? 3 : 6);
  fx.envs->reset();
  rl::RolloutCollector collector(*fx.envs, util::Rng(21));
  b.config(std::to_string(num_envs) + "env_len" + std::to_string(length))
      .items(static_cast<double>(num_envs) * length, "frames/s")
      .run([&] { collector.collect(*fx.net, length); });
}

BENCH("a2c_update") {
  const int num_envs = b.smoke() ? 2 : 16;
  SupernetFixture fx = make_fixture(num_envs, b.smoke() ? 3 : 6);
  fx.envs->reset();
  rl::A2cConfig cfg = bench::bench_a2c(rl::LossCoefficients{}, 31);
  cfg.num_envs = num_envs;
  rl::RolloutCollector collector(*fx.envs, util::Rng(22));
  const rl::Rollout rollout = collector.collect(*fx.net, cfg.rollout_len);
  nn::RmsProp opt(cfg.lr_start);
  b.config(std::to_string(num_envs) + "env")
      .items(static_cast<double>(num_envs) * cfg.rollout_len, "frames/s")
      .run([&] {
        volatile double sink =
            rl::a2c_update(*fx.net, rollout, cfg, opt, nullptr).loss.total;
        (void)sink;
      });
}

int main(int argc, char** argv) {
  bench::banner("cosearch",
                "supernet fwd/bwd, rollout collection and A2C update costs");
  return obs::perf::run_bench_main("cosearch", argc, argv);
}
