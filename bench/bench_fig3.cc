// Fig. 3 reproduction: score-vs-FPS trade-off on four games for
//   (1) ResNet-14 on a DAS-searched accelerator          (SOTA agent + DAS)
//   (2) A3C-S searched agent on a DAS-searched accelerator (full A3C-S)
//   (3) A3C-S searched agent on the DNNBuilder accelerator (SOTA accel)
// all trained with AC-distillation, all under the same 900-DSP budget.
//
// Paper shape to verify: (2) dominates (1) on FPS at comparable score, and
// (2) beats (3) on FPS for the same network — i.e. both the searched agent
// and the searched accelerator contribute.
#include "accel/dnnbuilder.h"
#include "arcade/games.h"
#include "bench_common.h"
#include "core/pipeline.h"

using namespace a3cs;

int main() {
  bench::banner("Fig. 3", "score/FPS: A3C-S vs ResNet-14+DAS vs DNNBuilder");
  const std::int64_t search_frames = util::scaled_steps(10000);
  const std::int64_t train_frames = util::scaled_steps(10000);

  util::CsvWriter csv(std::cout, {"game", "setup", "test_score", "fps"});
  util::TextTable table({"Game", "R14+DAS score", "R14+DAS FPS",
                         "A3C-S score", "A3C-S FPS", "A3C-S+DNNB FPS"});

  accel::Predictor predictor;
  int a3cs_fps_wins = 0, das_beats_dnnb = 0;
  for (const auto& game : arcade::figure_games()) {
    auto teacher = bench::bench_teacher(game);

    // --- (1) ResNet-14 trained with AC-distillation + DAS accelerator ----
    const auto a2c = bench::bench_a2c(rl::paper_distill_coefficients(), 61);
    auto r14 = core::train_zoo_agent_on_game(game, "ResNet-14", train_frames,
                                             a2c, teacher.get(), 611);
    const double r14_score =
        rl::evaluate_agent(*r14.net, game, bench::bench_eval()).mean_score;
    das::DasConfig das_cfg;
    const auto r14_hw = core::search_accelerator(r14.specs, 4, das_cfg);

    // --- (2) full A3C-S: co-search, retrain, DAS ------------------------
    core::PipelineConfig pipe;
    pipe.cosearch = bench::bench_cosearch(game, 62);
    pipe.search_frames = search_frames;
    pipe.train_frames = train_frames;
    pipe.eval = bench::bench_eval();
    const auto a3cs = core::run_a3cs_pipeline(game, pipe, teacher.get());

    // --- (3) the A3C-S agent on the DNNBuilder baseline accelerator ------
    const auto dnnb = accel::dnnbuilder_eval(a3cs.specs, predictor);

    csv.row({game, "ResNet-14+DAS", util::TextTable::num(r14_score),
             util::TextTable::num(r14_hw.fps)});
    csv.row({game, "A3C-S+DAS", util::TextTable::num(a3cs.test_score),
             util::TextTable::num(a3cs.hw.fps)});
    csv.row({game, "A3C-S+DNNBuilder", util::TextTable::num(a3cs.test_score),
             util::TextTable::num(dnnb.fps)});

    table.add_row({game, util::TextTable::num(r14_score),
                   util::TextTable::num(r14_hw.fps),
                   util::TextTable::num(a3cs.test_score),
                   util::TextTable::num(a3cs.hw.fps),
                   util::TextTable::num(dnnb.fps)});
    if (a3cs.hw.fps > r14_hw.fps) ++a3cs_fps_wins;
    if (a3cs.hw.fps > dnnb.fps) ++das_beats_dnnb;
    std::cout << "  [" << game << "] A3C-S arch: " << a3cs.arch.to_string()
              << " (" << nn::network_macs(a3cs.specs) << " MACs vs ResNet-14 "
              << nn::network_macs(r14.specs) << ")\n";
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nShape summary: A3C-S FPS > ResNet-14+DAS FPS on "
            << a3cs_fps_wins << "/" << arcade::figure_games().size()
            << " games; DAS accel > DNNBuilder accel on " << das_beats_dnnb
            << "/" << arcade::figure_games().size()
            << " games (paper: both on all games).\n";
  return 0;
}
