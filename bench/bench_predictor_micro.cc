// Micro-benchmarks (google-benchmark) for the analytical predictor and the
// DAS sampling step — the paper's pitch that differentiable search is cheap
// rests on these being orders of magnitude faster than RL-based search.
#include <benchmark/benchmark.h>

#include "accel/dnnbuilder.h"
#include "accel/predictor.h"
#include "accel/space.h"
#include "das/das.h"
#include "nn/zoo.h"

using namespace a3cs;

namespace {

const std::vector<nn::LayerSpec>& r14_specs() {
  static const auto specs =
      nn::zoo_model_specs("ResNet-14", nn::ObsSpec{3, 12, 12}, 4);
  return specs;
}

void BM_PredictorEvaluate(benchmark::State& state) {
  accel::Predictor pred;
  accel::AcceleratorSpace space(static_cast<int>(state.range(0)),
                                nn::num_groups(r14_specs()));
  util::Rng rng(1);
  const auto cfg = space.decode(space.random_choices(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.evaluate(r14_specs(), cfg));
  }
}
BENCHMARK(BM_PredictorEvaluate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SpaceDecode(benchmark::State& state) {
  accel::AcceleratorSpace space(4, nn::num_groups(r14_specs()));
  util::Rng rng(2);
  const auto choices = space.random_choices(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.decode(choices));
  }
}
BENCHMARK(BM_SpaceDecode);

void BM_DasStep(benchmark::State& state) {
  accel::Predictor pred;
  accel::AcceleratorSpace space(4, nn::num_groups(r14_specs()));
  das::DasConfig cfg;
  cfg.samples_per_iter = static_cast<int>(state.range(0));
  das::DasEngine engine(space, pred, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step(r14_specs(), 1));
  }
}
BENCHMARK(BM_DasStep)->Arg(1)->Arg(4);

void BM_DnnBuilderConfig(benchmark::State& state) {
  accel::Predictor pred;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        accel::dnnbuilder_config(r14_specs(), pred.budget()));
  }
}
BENCHMARK(BM_DnnBuilderConfig);

}  // namespace

BENCHMARK_MAIN();
