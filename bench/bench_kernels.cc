// Execution-layer microbenchmarks: GEMM (paper conv shapes + 256^3), im2col
// and VecEnv::step at 1/2/4/8 threads, against the pre-threading naive i-k-j
// GEMM as the seed baseline.
//
// Output: one CSV block (bench, config, threads, ms, throughput, speedup
// vs. the 1-thread run of the same kernel) plus one JSONL line per
// measurement (type "bench_kernel") for machine consumption. Numbers to
// verify: blocked serial GEMM beats gemm_naive at every shape, and parallel
// runs scale with the machine's cores while staying bit-exact (the
// determinism_test suite checks exactness; this bench only times).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "arcade/vec_env.h"
#include "bench_common.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace a3cs;
using tensor::Shape;
using tensor::Tensor;

namespace {

// The seed's serial GEMM (i-k-j saxpy over C rows), kept verbatim as the
// baseline the blocked kernel is measured against.
void gemm_naive(const float* a, const float* b, float* c, int m, int k,
                int n) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * n;
    std::fill(crow, crow + n, 0.0f);
    for (int kk = 0; kk < k; ++kk) {
      const float av = a[static_cast<std::size_t>(i) * k + kk];
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Median-of-runs wall time of `fn`, adaptively repeated to fill ~0.15 s.
double time_ms(const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up
  std::vector<double> samples;
  double total = 0.0;
  while (total < 150.0 && samples.size() < 50) {
    const auto t0 = clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    samples.push_back(ms);
    total += ms;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

Tensor random_tensor(const Shape& shape, std::uint64_t seed_value) {
  util::Rng rng(seed_value);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  return t;
}

struct Row {
  std::string bench;
  std::string config;
  int threads;
  double ms;
  double throughput;  // GFLOP/s for gemm, Melem/s for im2col, steps/s for env
  double speedup;     // vs the 1-thread row of the same (bench, config)
};

void emit(util::CsvWriter& csv, const Row& r) {
  csv.row({r.bench, r.config, std::to_string(r.threads),
           util::TextTable::num(r.ms), util::TextTable::num(r.throughput),
           util::TextTable::num(r.speedup)});
  std::ostringstream json;
  json << "{\"type\":\"bench_kernel\",\"bench\":\"" << r.bench
       << "\",\"config\":\"" << r.config << "\",\"threads\":" << r.threads
       << ",\"ms\":" << r.ms << ",\"throughput\":" << r.throughput
       << ",\"speedup\":" << r.speedup << "}";
  std::cout << json.str() << "\n";
}

const std::vector<int> kThreadCounts = {1, 2, 4, 8};

}  // namespace

int main() {
  bench::banner("kernels",
                "GEMM / im2col / VecEnv::step timing across thread counts");
  util::CsvWriter csv(std::cout, {"bench", "config", "threads", "ms",
                                  "throughput", "speedup"});

  // ------------------------------------------------------------- GEMM ----
  struct GemmShape {
    int m, k, n;
  };
  // 256^3 is the acceptance shape; the other two are the paper's conv
  // layers lowered to GEMM (OC x C*KH*KW times C*KH*KW x N*OH*OW).
  const std::vector<GemmShape> shapes = {
      {256, 256, 256}, {64, 576, 2304}, {32, 288, 3136}};
  for (const auto& s : shapes) {
    const Tensor a = random_tensor(Shape::mat(s.m, s.k), 1);
    const Tensor b = random_tensor(Shape::mat(s.k, s.n), 2);
    Tensor c(Shape::mat(s.m, s.n));
    const double gflop = 2.0 * s.m * s.k * s.n * 1e-9;
    std::ostringstream cfg;
    cfg << s.m << "x" << s.k << "x" << s.n;

    // Seed baseline: the naive serial kernel, reported as threads = 0.
    const double naive_ms =
        time_ms([&] { gemm_naive(a.data(), b.data(), c.data(), s.m, s.k, s.n); });
    emit(csv, {"gemm_naive", cfg.str(), 0, naive_ms, gflop / (naive_ms * 1e-3),
               1.0});

    double serial_ms = 0.0;
    for (int threads : kThreadCounts) {
      util::ThreadPool::set_global_threads(threads);
      const double ms = time_ms([&] {
        tensor::gemm_raw(a.data(), false, b.data(), false, c.data(), s.m, s.k,
                         s.n);
      });
      if (threads == 1) serial_ms = ms;
      emit(csv, {"gemm", cfg.str(), threads, ms, gflop / (ms * 1e-3),
                 serial_ms / ms});
    }
    std::cout << "  blocked serial speedup vs seed kernel at " << cfg.str()
              << ": " << util::TextTable::num(naive_ms / serial_ms) << "x\n";
  }

  // ----------------------------------------------------------- im2col ----
  {
    const Tensor x = random_tensor(Shape::nchw(16, 32, 28, 28), 3);
    const auto g = tensor::ConvGeometry::make(x.shape(), 3, 3, 1, 1);
    Tensor cols(Shape::mat(32 * 3 * 3, g.n * g.oh * g.ow));
    const double melem = cols.numel() * 1e-6;
    double serial_ms = 0.0;
    for (int threads : kThreadCounts) {
      util::ThreadPool::set_global_threads(threads);
      const double ms = time_ms([&] { tensor::im2col(x, g, cols); });
      if (threads == 1) serial_ms = ms;
      emit(csv, {"im2col", "16x32x28x28_k3", threads, ms, melem / (ms * 1e-3),
                 serial_ms / ms});
    }
  }

  // ------------------------------------------------------ VecEnv step ----
  {
    const int num_envs = 32, horizon = 64;
    double serial_ms = 0.0;
    for (int threads : kThreadCounts) {
      util::ThreadPool::set_global_threads(threads);
      arcade::VecEnv envs("Catch", num_envs, 4242);
      envs.reset();
      util::Rng rng(7);
      const double ms = time_ms([&] {
        for (int t = 0; t < horizon; ++t) {
          std::vector<int> actions(num_envs);
          for (auto& a : actions) a = rng.uniform_int(envs.num_actions());
          envs.step(actions);
        }
      });
      if (threads == 1) serial_ms = ms;
      emit(csv, {"vecenv_step", "Catch_32env", threads, ms,
                 num_envs * horizon / (ms * 1e-3), serial_ms / ms});
    }
  }

  util::ThreadPool::set_global_threads(1);
  std::cout << "\nNote: parallel speedups require physical cores; on a "
               "1-core host every thread count times the same work.\n";
  return 0;
}
