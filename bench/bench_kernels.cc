// Execution-layer microbenchmarks on the perf registry (BENCH_KERNELS.json):
// GEMM (paper conv shapes + 256^3) against the pre-threading naive i-k-j
// seed kernel, Conv2d forward, im2col, and VecEnv::step across thread
// counts. GEMM and conv sweep the kernel-backend dimension too: each
// available backend (scalar, and avx2 where the host supports it) gets its
// own config row, e.g. "256x256x256_scalar" vs "256x256x256_avx2".
//
// Run `bench_kernels --json BENCH_KERNELS.json` to refresh the committed
// baseline and `bench_report --check` to diff against it
// (docs/BENCHMARKING.md). `bench_kernels --backends` prints the backends
// usable on this host, one per line (bench/run_sanitized.sh probes it before
// running the A3CS_BACKEND=avx2 test stage). A3CS_BENCH_SMOKE=1 shrinks
// every case to a tiny shape with one repeat so ctest's bench_smoke can
// exercise the code path in milliseconds.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "arcade/vec_env.h"
#include "bench_common.h"
#include "nn/layers.h"
#include "obs/perf/bench.h"
#include "tensor/backend/backend.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace a3cs;
using obs::perf::Bench;
using tensor::Shape;
using tensor::Tensor;

namespace {

// The seed's serial GEMM (i-k-j saxpy over C rows), kept verbatim as the
// baseline the blocked kernel is measured against.
void gemm_naive(const float* a, const float* b, float* c, int m, int k,
                int n) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * n;
    std::fill(crow, crow + n, 0.0f);
    for (int kk = 0; kk < k; ++kk) {
      const float av = a[static_cast<std::size_t>(i) * k + kk];
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor random_tensor(const Shape& shape, std::uint64_t seed_value) {
  util::Rng rng(seed_value);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  return t;
}

struct GemmShape {
  int m, k, n;
};

// 256^3 is the acceptance shape; the other two are the paper's conv layers
// lowered to GEMM (OC x C*KH*KW times C*KH*KW x N*OH*OW).
std::vector<GemmShape> gemm_shapes(bool smoke) {
  if (smoke) return {{16, 16, 16}};
  return {{256, 256, 256}, {64, 576, 2304}, {32, 288, 3136}};
}

std::vector<int> thread_counts(bool smoke) {
  if (smoke) return {1};
  return {1, 2, 4, 8};
}

std::string shape_label(const GemmShape& s) {
  return std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
         std::to_string(s.n);
}

std::int64_t gemm_flops(const GemmShape& s) {
  return 2ll * s.m * s.k * s.n;
}

std::int64_t gemm_bytes(const GemmShape& s) {
  return 4ll * (static_cast<std::int64_t>(s.m) * s.k +
                static_cast<std::int64_t>(s.k) * s.n +
                static_cast<std::int64_t>(s.m) * s.n);
}

const tensor::backend::Backend* backend_by_name(const std::string& name) {
  if (name == "scalar") return &tensor::backend::scalar_backend();
  if (name == "avx2") return tensor::backend::avx2_backend();
  return nullptr;
}

}  // namespace

BENCH("gemm_naive") {
  for (const GemmShape& s : gemm_shapes(b.smoke())) {
    const Tensor a = random_tensor(Shape::mat(s.m, s.k), 1);
    const Tensor bm = random_tensor(Shape::mat(s.k, s.n), 2);
    Tensor c(Shape::mat(s.m, s.n));
    b.config(shape_label(s))
        .threads(1)
        .work(gemm_flops(s), gemm_bytes(s))
        .run([&] { gemm_naive(a.data(), bm.data(), c.data(), s.m, s.k, s.n); });
  }
}

BENCH("gemm") {
  for (const std::string& backend : tensor::backend::available_names()) {
    tensor::backend::ScopedBackend scoped(*backend_by_name(backend));
    for (const GemmShape& s : gemm_shapes(b.smoke())) {
      const Tensor a = random_tensor(Shape::mat(s.m, s.k), 1);
      const Tensor bm = random_tensor(Shape::mat(s.k, s.n), 2);
      Tensor c(Shape::mat(s.m, s.n));
      for (int threads : thread_counts(b.smoke())) {
        b.config(shape_label(s) + "_" + backend)
            .threads(threads)
            .work(gemm_flops(s), gemm_bytes(s))
            .run([&] {
              tensor::gemm_raw(a.data(), false, bm.data(), false, c.data(),
                               s.m, s.k, s.n);
            });
      }
    }
  }
}

BENCH("conv2d_fwd") {
  // The paper's 3x3 conv stage lowered through im2col + the backend conv
  // forward kernels; sweeps the backend dimension like "gemm" above.
  const int n = b.smoke() ? 2 : 8;
  const int ch = b.smoke() ? 4 : 32;
  const int oc = b.smoke() ? 4 : 32;
  const int hw = b.smoke() ? 8 : 28;
  util::Rng rng(11);
  nn::Conv2d conv("bench_conv", ch, oc, 3, 1, 1, rng);
  const Tensor x = random_tensor(Shape::nchw(n, ch, hw, hw), 5);
  // flops: im2col is data movement; the matmul is 2 * OC * C*KH*KW per
  // output element, OH == H and OW == W at stride 1 pad 1.
  const std::int64_t flops = 2ll * oc * (ch * 9ll) * (n * hw * hw);
  const std::string shape = std::to_string(n) + "x" + std::to_string(ch) +
                            "x" + std::to_string(hw) + "x" +
                            std::to_string(hw) + "_k3";
  for (const std::string& backend : tensor::backend::available_names()) {
    tensor::backend::ScopedBackend scoped(*backend_by_name(backend));
    for (int threads : thread_counts(b.smoke())) {
      b.config(shape + "_" + backend)
          .threads(threads)
          .work(flops, 0)
          .run([&] { conv.forward(x); });
    }
  }
}

BENCH("im2col") {
  const int n = b.smoke() ? 2 : 16;
  const int ch = b.smoke() ? 4 : 32;
  const int hw = b.smoke() ? 8 : 28;
  const Tensor x = random_tensor(Shape::nchw(n, ch, hw, hw), 3);
  const auto g = tensor::ConvGeometry::make(x.shape(), 3, 3, 1, 1);
  Tensor cols(Shape::mat(ch * 3 * 3, g.n * g.oh * g.ow));
  const std::string cfg = std::to_string(n) + "x" + std::to_string(ch) + "x" +
                          std::to_string(hw) + "x" + std::to_string(hw) +
                          "_k3";
  for (int threads : thread_counts(b.smoke())) {
    b.config(cfg)
        .threads(threads)
        .work(0, 8 * cols.numel())
        .items(static_cast<double>(cols.numel()), "elem/s")
        .run([&] { tensor::im2col(x, g, cols); });
  }
}

BENCH("vecenv_step") {
  const int num_envs = b.smoke() ? 4 : 32;
  const int horizon = b.smoke() ? 4 : 64;
  const std::string cfg =
      "Catch_" + std::to_string(num_envs) + "env";
  for (int threads : thread_counts(b.smoke())) {
    arcade::VecEnv envs("Catch", num_envs, 4242);
    envs.reset();
    util::Rng rng(7);
    b.config(cfg)
        .threads(threads)
        .items(static_cast<double>(num_envs) * horizon, "steps/s")
        .run([&] {
          for (int t = 0; t < horizon; ++t) {
            std::vector<int> actions(num_envs);
            for (auto& a : actions) a = rng.uniform_int(envs.num_actions());
            envs.step(actions);
          }
        });
  }
}

int main(int argc, char** argv) {
  // Machine-readable host-capability probe (used by bench/run_sanitized.sh
  // to decide whether the A3CS_BACKEND=avx2 stage can run). Handled here —
  // not in run_bench_main — because the backend registry lives in the tensor
  // layer, below the obs bench driver.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--backends") {
      for (const std::string& name : tensor::backend::available_names()) {
        std::cout << name << "\n";
      }
      return 0;
    }
  }
  bench::banner("kernels",
                "GEMM / conv / im2col / VecEnv::step timing across thread "
                "counts and kernel backends");
  return obs::perf::run_bench_main("kernels", argc, argv);
}
