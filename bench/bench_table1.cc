// Table I reproduction: final test scores of the five backbones (Vanilla,
// ResNet-14/20/38/74) on the paper's 16-game subset.
//
// Paper shape to verify: (1) ResNets beat Vanilla on most games; (2) there
// is a task-specific optimal size — ResNet-74 rarely wins and often loses to
// ResNet-20/38 within the fixed budget.
#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "bench_common.h"
#include "nn/zoo.h"

using namespace a3cs;

int main() {
  bench::banner("Table I", "test scores of 5 backbones on 16 Atari-like games");
  const std::int64_t frames = util::scaled_steps(7000);

  util::TextTable table({"Atari Games", "Vanilla", "ResNet-14", "ResNet-20",
                         "ResNet-38", "ResNet-74"});
  util::CsvWriter csv(std::cout, {"game", "model", "test_score"});

  int resnet_beats_vanilla = 0, r74_wins = 0, games_count = 0;
  for (const auto& game : arcade::table1_games()) {
    std::vector<std::string> row = {game};
    std::vector<double> scores;
    for (const auto& model : nn::zoo_model_names()) {
      auto probe = arcade::make_game(game, 1);
      util::Rng rng(23);
      auto agent = nn::build_zoo_agent(model, probe->obs_spec(),
                                       probe->num_actions(), rng);
      arcade::VecEnv envs(game, 16, 2000);
      const auto cfg = bench::bench_a2c(rl::no_distill_coefficients(), 7);
      rl::A2cTrainer trainer(*agent.net, envs, cfg, nullptr);
      trainer.train(frames);
      const double score =
          rl::evaluate_agent(*agent.net, game, bench::bench_eval()).mean_score;
      scores.push_back(score);
      row.push_back(util::TextTable::num(score));
      csv.row({game, model, util::TextTable::num(score)});
    }
    table.add_row(row);
    ++games_count;
    const double best_resnet =
        std::max({scores[1], scores[2], scores[3], scores[4]});
    if (best_resnet > scores[0]) ++resnet_beats_vanilla;
    if (scores[4] >= *std::max_element(scores.begin(), scores.end()) - 1e-9) {
      ++r74_wins;
    }
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nShape summary: a ResNet beats Vanilla on "
            << resnet_beats_vanilla << "/" << games_count
            << " games; ResNet-74 is the single best on " << r74_wins << "/"
            << games_count
            << " (paper: larger helps, but the largest rarely wins).\n";
  return 0;
}
