// DAS validation bench (supports Sec. IV-A's DAS engine claims): compares
// the differentiable accelerator search against best-of-N random sampling
// (same evaluation budget), the DNNBuilder heuristic, the FA3C fixed engine
// and — on a reduced single-chunk space — exhaustive enumeration.
#include "accel/dnnbuilder.h"
#include "accel/fa3c.h"
#include "bench_common.h"
#include "das/das.h"
#include "nn/zoo.h"

using namespace a3cs;

int main() {
  bench::banner("DAS quality", "DAS vs random / DNNBuilder / FA3C / exhaustive");
  accel::Predictor predictor;
  util::TextTable table({"Network", "DAS FPS", "Random FPS", "DNNBuilder FPS",
                         "FA3C FPS", "DAS DSP"});
  util::CsvWriter csv(std::cout, {"network", "method", "fps", "dsp"});

  for (const auto& model : nn::zoo_model_names()) {
    const auto specs = nn::zoo_model_specs(model, nn::ObsSpec{3, 12, 12}, 6);
    accel::AcceleratorSpace space(4, nn::num_groups(specs));

    das::DasConfig cfg;
    cfg.iterations = static_cast<int>(util::env_int("A3CS_DAS_ITERS", 1500));
    das::DasEngine engine(space, predictor, cfg);
    const auto das_result = engine.search(specs);
    const auto rnd = das::random_search(
        space, predictor, specs, cfg.iterations * cfg.samples_per_iter, 5);
    const auto dnnb = accel::dnnbuilder_eval(specs, predictor);
    const auto fa3c = accel::fa3c_eval(specs, predictor);

    table.add_row({model, util::TextTable::num(das_result.eval.fps),
                   util::TextTable::num(rnd.eval.fps),
                   util::TextTable::num(dnnb.fps),
                   util::TextTable::num(fa3c.fps),
                   std::to_string(das_result.eval.dsp_used)});
    csv.row({model, "das", util::TextTable::num(das_result.eval.fps),
             std::to_string(das_result.eval.dsp_used)});
    csv.row({model, "random", util::TextTable::num(rnd.eval.fps),
             std::to_string(rnd.eval.dsp_used)});
    csv.row({model, "dnnbuilder", util::TextTable::num(dnnb.fps),
             std::to_string(dnnb.dsp_used)});
    csv.row({model, "fa3c", util::TextTable::num(fa3c.fps),
             std::to_string(fa3c.dsp_used)});
  }

  std::cout << "\n";
  table.print(std::cout);

  // Optimality gap on an exhaustively-enumerable space.
  std::vector<nn::LayerSpec> tiny = {
      nn::LayerSpec::conv("c", 8, 16, 3, 1, 12, 12)};
  nn::assign_sequential_groups(tiny);
  accel::AcceleratorSpace small_space(1, 1);
  const auto optimum =
      das::exhaustive_search(small_space, predictor, tiny, 1e6);
  das::DasConfig cfg;
  cfg.iterations = 800;
  das::DasEngine engine(small_space, predictor, cfg);
  const auto das_small = engine.search(tiny);
  std::cout << "\nReduced-space optimality: exhaustive optimum "
            << util::TextTable::num(optimum.eval.fps) << " FPS ("
            << small_space.size() << " configs), DAS found "
            << util::TextTable::num(das_small.eval.fps) << " FPS ("
            << util::TextTable::num(
                   100.0 * das_small.eval.fps / optimum.eval.fps, 1)
            << "% of optimum).\n";
  return 0;
}
