// Table III reproduction: full A3C-S (co-searched agent + DAS accelerator)
// vs an FA3C-style baseline on the six games FA3C reports.
//
// The baseline mirrors FA3C (ASPLOS'19): the stock Vanilla/A3C agent
// (trained without distillation) running on a fixed single-engine
// accelerator, evaluated with the same predictor. The paper compares against
// FA3C's reported numbers (flat ~260 FPS); we keep both systems inside one
// cost model instead — see DESIGN.md.
//
// Paper shape to verify: A3C-S wins BOTH score and FPS on every game, with
// an FPS ratio in the few-x range.
#include "accel/fa3c.h"
#include "arcade/games.h"
#include "bench_common.h"
#include "core/pipeline.h"

using namespace a3cs;

int main() {
  bench::banner("Table III", "A3C-S (score/FPS) vs FA3C-style baseline");
  const std::int64_t search_frames = util::scaled_steps(10000);
  const std::int64_t train_frames = util::scaled_steps(10000);

  util::CsvWriter csv(std::cout,
                      {"game", "system", "test_score", "fps", "fps_ratio"});
  util::TextTable table(
      {"Atari Games", "FA3C-style (score/FPS)", "A3C-S (score/FPS)", "FPS x"});

  accel::Predictor predictor;
  int both_wins = 0;
  double min_ratio = 1e30, max_ratio = 0.0;
  for (const auto& game : arcade::table3_games()) {
    // FA3C-style baseline: undistilled Vanilla agent + fixed engine.
    const auto base_a2c = bench::bench_a2c(rl::no_distill_coefficients(), 71);
    auto vanilla = core::train_zoo_agent_on_game(game, "Vanilla", train_frames,
                                                 base_a2c, nullptr, 711);
    const double fa3c_score =
        rl::evaluate_agent(*vanilla.net, game, bench::bench_eval()).mean_score;
    const auto fa3c_hw = accel::fa3c_eval(vanilla.specs, predictor);

    // Full A3C-S.
    auto teacher = bench::bench_teacher(game);
    core::PipelineConfig pipe;
    pipe.cosearch = bench::bench_cosearch(game, 72);
    pipe.search_frames = search_frames;
    pipe.train_frames = train_frames;
    pipe.eval = bench::bench_eval();
    const auto a3cs = core::run_a3cs_pipeline(game, pipe, teacher.get());

    const double ratio = fa3c_hw.fps > 0 ? a3cs.hw.fps / fa3c_hw.fps : 0.0;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    if (a3cs.test_score >= fa3c_score && a3cs.hw.fps > fa3c_hw.fps) {
      ++both_wins;
    }

    csv.row({game, "FA3C-style", util::TextTable::num(fa3c_score),
             util::TextTable::num(fa3c_hw.fps), "1.0"});
    csv.row({game, "A3C-S", util::TextTable::num(a3cs.test_score),
             util::TextTable::num(a3cs.hw.fps),
             util::TextTable::num(ratio, 2)});

    table.add_row({game,
                   util::TextTable::num(fa3c_score) + " / " +
                       util::TextTable::num(fa3c_hw.fps),
                   util::TextTable::num(a3cs.test_score) + " / " +
                       util::TextTable::num(a3cs.hw.fps),
                   util::TextTable::num(ratio, 2) + "x"});
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nShape summary: A3C-S wins score AND FPS on " << both_wins
            << "/" << arcade::table3_games().size()
            << " games; FPS ratio range " << util::TextTable::num(min_ratio, 2)
            << "x - " << util::TextTable::num(max_ratio, 2)
            << "x (paper: 2.1x - 6.1x over FA3C's reported 260 FPS).\n";
  return 0;
}
