// Ablation of the multi-path backward (paper Eq. 7, "K in (1, N) to control
// the computational cost"): runs the distilled one-level agent search with
// K = 1, 2, 4, 8 activated backward paths and reports the derived-network
// score and the search wall-time.
//
// Expected shape: K = 1 (pure single-path gradient) is noisier/weaker;
// moderate K recovers most of the quality at a fraction of K = N's cost.
#include <chrono>

#include "arcade/games.h"
#include "bench_common.h"
#include "core/cosearch.h"
#include "rl/eval.h"

using namespace a3cs;

int main() {
  bench::banner("Ablation", "multi-path backward width K (Eq. 7)");
  const std::string game = "Catch";
  const std::int64_t frames = util::scaled_steps(8000);

  auto teacher = bench::bench_teacher(game);
  util::TextTable table({"K", "derived score", "search seconds"});
  util::CsvWriter csv(std::cout, {"k", "derived_score", "seconds"});

  for (const int k : {1, 2, 4, 8}) {
    auto cfg = bench::bench_cosearch(game, 81);
    cfg.hardware_aware = false;
    cfg.supernet.backward_paths = k;
    core::CoSearchEngine engine(game, cfg, teacher.get());
    const auto start = std::chrono::steady_clock::now();
    engine.run(frames);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    engine.supernet().set_argmax_mode(true);
    const double score =
        rl::evaluate_agent(engine.net(), game, bench::bench_eval()).mean_score;
    engine.supernet().set_argmax_mode(false);

    table.add_row({std::to_string(k), util::TextTable::num(score),
                   util::TextTable::num(seconds, 1)});
    csv.row({std::to_string(k), util::TextTable::num(score),
             util::TextTable::num(seconds, 1)});
  }

  std::cout << "\n";
  table.print(std::cout);
  return 0;
}
