// Shared infrastructure for the paper-reproduction benchmark harnesses.
//
// Every bench binary regenerates one table or figure of the paper. Budgets
// are scaled-down (MiniArcade + proxy models, see DESIGN.md) and multiplied
// by A3CS_SCALE; evaluation defaults to 10 episodes with null-op starts
// (paper: 30) and can be raised with A3CS_EVAL_EPISODES.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "rl/a2c.h"
#include "rl/eval.h"
#include "rl/teacher.h"
#include "util/config.h"
#include "util/csv.h"
#include "util/table.h"

namespace a3cs::bench {

// The bench-standard A2C settings: the paper's rollout length (5), discount
// (0.99) and loss coefficients, with the learning rate and env count adapted
// to the scaled-down runs (16 envs, 2e-3 -> 2e-4).
rl::A2cConfig bench_a2c(const rl::LossCoefficients& coef,
                        std::uint64_t seed_value);

// Evaluation protocol for final scores.
rl::EvalConfig bench_eval(std::uint64_t seed_value = 4242);

// Quick evaluation for learning-curve points (fewer episodes).
rl::EvalConfig curve_eval(std::uint64_t seed_value);

// Teacher with bench-standard budget, cached under .a3cs_cache/teachers.
std::unique_ptr<nn::ActorCriticNet> bench_teacher(const std::string& game);

// Bench-standard co-search configuration (6-cell supernet space at bench
// scale; the full 12-cell space is available via A3CS_CELLS).
core::CoSearchConfig bench_cosearch(const std::string& game,
                                    std::uint64_t seed_value);

// Pretty banner with the experiment id and scaled budgets.
void banner(const std::string& experiment, const std::string& description);

}  // namespace a3cs::bench
