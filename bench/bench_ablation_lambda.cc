// Ablation of lambda (Eq. 4): the weight of the hardware-cost loss in the
// alpha update controls the score-vs-efficiency trade-off of the co-search.
// Sweeps lambda and reports the derived architecture's MACs, predicted FPS
// and test score after a short retrain — the knob downstream users tune.
//
// Expected shape: larger lambda -> cheaper architectures (fewer MACs, higher
// FPS) at gradually lower scores; extreme lambda collapses to skips.
#include "arcade/games.h"
#include "bench_common.h"
#include "core/pipeline.h"

using namespace a3cs;

int main() {
  bench::banner("Ablation", "lambda sweep: score vs hardware-cost trade-off");
  const std::string game = "Catch";
  const std::int64_t search_frames = util::scaled_steps(8000);
  const std::int64_t train_frames = util::scaled_steps(8000);

  auto teacher = bench::bench_teacher(game);
  util::TextTable table(
      {"lambda", "architecture", "MACs", "FPS", "test score"});
  util::CsvWriter csv(std::cout,
                      {"lambda", "arch", "macs", "fps", "test_score"});

  for (const double lambda : {0.0, 0.02, 0.1, 0.5, 5.0}) {
    auto cfg = bench::bench_cosearch(game, 91);
    cfg.lambda = lambda;
    core::CoSearchEngine engine(game, cfg, teacher.get());
    const auto searched = engine.run(search_frames);

    auto trained = core::train_derived_agent(game, searched.arch,
                                             cfg.supernet.space, train_frames,
                                             cfg.a2c, teacher.get(), 910);
    const double score =
        rl::evaluate_agent(*trained.net, game, bench::bench_eval()).mean_score;
    das::DasConfig das_cfg;
    const auto hw = core::search_accelerator(trained.specs, 4, das_cfg);

    table.add_row({util::TextTable::num(lambda, 2),
                   searched.arch.to_string(),
                   std::to_string(nn::network_macs(trained.specs)),
                   util::TextTable::num(hw.fps),
                   util::TextTable::num(score)});
    csv.row({util::TextTable::num(lambda, 2), searched.arch.to_string(),
             std::to_string(nn::network_macs(trained.specs)),
             util::TextTable::num(hw.fps), util::TextTable::num(score)});
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: MACs fall / FPS rises as lambda grows.\n";
  return 0;
}
