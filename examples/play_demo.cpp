// Watch a trained agent play in ASCII: trains a small agent briefly, then
// renders one greedy episode frame by frame.
//
//   ./examples/play_demo [game] [train_frames] [--stacked]
#include <iostream>
#include <string>

#include "arcade/games.h"
#include "arcade/render.h"
#include "arcade/vec_env.h"
#include "arcade/wrappers.h"
#include "nn/zoo.h"
#include "rl/a2c.h"
#include "rl/rollout.h"
#include "tensor/ops.h"
#include "util/config.h"

using namespace a3cs;

int main(int argc, char** argv) {
  const std::string game = argc > 1 ? argv[1] : "Breakout";
  const std::int64_t frames =
      util::scaled_steps(argc > 2 ? std::stoll(argv[2]) : 15000);
  const bool stacked =
      argc > 3 && std::string(argv[3]) == "--stacked";

  auto probe = stacked ? arcade::make_stacked_game(game, 1, 2)
                       : arcade::make_game(game, 1);
  util::Rng rng(4);
  auto agent = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                   probe->num_actions(), rng);

  std::cout << "training on " << game << " for " << frames << " frames"
            << (stacked ? " (2-frame stack)" : "") << "...\n";
  std::vector<std::unique_ptr<arcade::Env>> envs;
  for (int i = 0; i < 16; ++i) {
    envs.push_back(stacked
                       ? arcade::make_stacked_game(game, 100 + static_cast<std::uint64_t>(i), 2)
                       : arcade::make_game(game, 100 + static_cast<std::uint64_t>(i)));
  }
  arcade::VecEnv vec(std::move(envs));
  rl::A2cConfig cfg;
  cfg.num_envs = 16;
  cfg.lr_start = 2e-3;
  cfg.lr_end = 2e-4;
  cfg.loss = rl::no_distill_coefficients();
  rl::A2cTrainer trainer(*agent.net, vec, cfg);
  trainer.train(frames);

  // Play one greedy episode, printing every 4th frame.
  auto env = stacked ? arcade::make_stacked_game(game, 777, 2)
                     : arcade::make_game(game, 777);
  auto raw_view = arcade::make_game(game, 777);  // unstacked twin for display
  tensor::Tensor obs = env->reset();
  tensor::Tensor view = raw_view->reset();
  double score = 0.0;
  int t = 0;
  bool done = false;
  while (!done && t < 200) {
    const auto ac = agent.net->forward(obs);
    const int action = static_cast<int>(tensor::argmax(ac.logits));
    const auto r = env->step(action);
    const auto rv = raw_view->step(action);
    score += r.reward;
    done = r.done;
    obs = r.obs;
    view = rv.obs;
    if (t % 4 == 0) {
      std::cout << "t=" << t << " action=" << action << " score=" << score
                << "\n"
                << arcade::render_ascii(view);
    }
    ++t;
  }
  std::cout << "episode finished after " << t << " steps, score " << score
            << "\n";
  return 0;
}
