// Quickstart: train a small actor-critic DRL agent on a MiniArcade game with
// the A2C trainer, evaluate it with the paper's 30-episode null-op-start
// protocol, and print the learning progress.
//
//   ./examples/quickstart [game] [frames]
//
// Defaults: Catch, 12000 frames (scaled by A3CS_SCALE).
#include <iostream>
#include <string>

#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "nn/zoo.h"
#include "rl/a2c.h"
#include "rl/eval.h"
#include "util/config.h"

using namespace a3cs;

int main(int argc, char** argv) {
  const std::string game = argc > 1 ? argv[1] : "Catch";
  const std::int64_t frames =
      util::scaled_steps(argc > 2 ? std::stoll(argv[2]) : 12000);
  if (!arcade::is_known_game(game)) {
    std::cerr << "unknown game: " << game << "\navailable:";
    for (const auto& t : arcade::all_game_titles()) std::cerr << " " << t;
    std::cerr << "\n";
    return 1;
  }

  // Build the agent: a Vanilla (DQN-style) backbone + actor/critic heads.
  auto probe = arcade::make_game(game, 1);
  util::Rng rng(42);
  auto agent =
      nn::build_zoo_agent("Vanilla", probe->obs_spec(), probe->num_actions(),
                          rng);
  std::cout << "game: " << game << " | actions: " << probe->num_actions()
            << " | parameters: " << agent.net->num_parameters() << "\n";

  // Train with A2C (rollout length 5, gamma 0.99 — the paper's settings).
  arcade::VecEnv envs(game, 8, 7);
  rl::A2cConfig cfg;
  cfg.loss = rl::no_distill_coefficients();
  rl::A2cTrainer trainer(*agent.net, envs, cfg);

  std::cout << "training for " << frames << " frames...\n";
  trainer.train(frames, [&](std::int64_t f) {
    const auto scores = trainer.drain_episode_scores();
    double mean = 0.0;
    for (double s : scores) mean += s;
    if (!scores.empty()) mean /= static_cast<double>(scores.size());
    std::cout << "  frames " << f << ": " << scores.size()
              << " episodes, mean train score " << mean << "\n";
  }, frames / 5);

  // Evaluate with the paper's protocol.
  rl::EvalConfig eval_cfg;
  const auto result = rl::evaluate_agent(*agent.net, game, eval_cfg);
  std::cout << "test score over " << result.episodes
            << " episodes (null-op starts): " << result.mean_score << " +/- "
            << result.stddev << " [" << result.min_score << ", "
            << result.max_score << "]\n";
  return 0;
}
