// Supervised multi-shard co-search: a FleetSupervisor fork/execs N seeded
// CoSearchEngine shards (this same binary re-exec'd with --fleet-worker),
// assigns each a lambda / DSP-budget / seed, survives worker crashes and
// hangs via checkpoint-resume restarts, and merges every shard's Pareto
// points into one deterministic score/FPS/DSP frontier.
//
//   ./examples/cosearch_fleet [game] [--workers N] [--frames F] [--out DIR]
//       [--cells N] [--envs N] [--rollout N] [--seed S]
//       [--lambdas a,b,...] [--dsps a,b,...]
//       [--restarts N] [--backoff S] [--hb S] [--no-realloc]
//
// Lambda / DSP lists are cycled across shards; shard k searches with seed
// S + k*9973. A3CS_FLEET_* environment variables override supervision knobs
// and inject deterministic faults (docs/FLEET.md). A3CS_TRACE_PATH enables
// a supervisor trace plus per-shard traces at <out>/shard-K.trace.jsonl.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "accel/config_io.h"
#include "core/result_io.h"
#include "fleet/supervisor.h"
#include "fleet/worker.h"
#include "obs/obs_config.h"
#include "obs/trace.h"
#include "util/atomic_file.h"

using namespace a3cs;

namespace {

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string self_binary(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
  return argv0;  // fallback: argv[0] works while cwd is unchanged
}

}  // namespace

int main(int argc, char** argv) {
  if (fleet::is_worker_invocation(argc, argv)) {
    return fleet::worker_main(argc, argv);
  }

  std::string game = "Catch";
  std::string out_dir = "a3cs_fleet_out";
  int workers = 2;
  std::int64_t frames = 320;
  std::uint64_t seed = 21;
  std::vector<std::string> lambdas = {"0.05"};
  std::vector<std::string> dsps = {"900"};
  fleet::FleetConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--workers" && has_value) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--frames" && has_value) {
      frames = std::atoll(argv[++i]);
    } else if (arg == "--out" && has_value) {
      out_dir = argv[++i];
    } else if (arg == "--cells" && has_value) {
      cfg.num_cells = std::atoi(argv[++i]);
    } else if (arg == "--envs" && has_value) {
      cfg.num_envs = std::atoi(argv[++i]);
    } else if (arg == "--rollout" && has_value) {
      cfg.rollout_len = std::atoi(argv[++i]);
    } else if (arg == "--seed" && has_value) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--lambdas" && has_value) {
      lambdas = split_list(argv[++i]);
    } else if (arg == "--dsps" && has_value) {
      dsps = split_list(argv[++i]);
    } else if (arg == "--restarts" && has_value) {
      cfg.restart_budget = std::atoi(argv[++i]);
    } else if (arg == "--backoff" && has_value) {
      cfg.backoff_base_s = std::atof(argv[++i]);
    } else if (arg == "--hb" && has_value) {
      cfg.heartbeat_timeout_s = std::atof(argv[++i]);
    } else if (arg == "--no-realloc") {
      cfg.reallocate_budget = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n"
                << "usage: cosearch_fleet [game] [--workers N] [--frames F] "
                << "[--out DIR] [--cells N] [--envs N] [--rollout N] "
                << "[--seed S] [--lambdas a,b,...] [--dsps a,b,...] "
                << "[--restarts N] [--backoff S] [--hb S] [--no-realloc]\n";
      return 2;
    } else {
      game = arg;
    }
  }
  if (workers < 1 || frames <= 0 || lambdas.empty() || dsps.empty()) {
    std::cerr << "cosearch_fleet: need --workers >= 1, --frames > 0 and "
              << "non-empty --lambdas/--dsps\n";
    return 2;
  }

  obs::TraceSession trace(obs::ObsConfig{}.with_env_overrides());

  cfg.worker_binary = self_binary(argv[0]);
  cfg.game = game;
  cfg.out_dir = out_dir;
  for (int k = 0; k < workers; ++k) {
    fleet::ShardSpec spec;
    spec.shard = k;
    spec.seed = seed + static_cast<std::uint64_t>(k) * 9973;
    spec.lambda = std::atof(lambdas[k % lambdas.size()].c_str());
    spec.dsp_budget = std::atoi(dsps[k % dsps.size()].c_str());
    spec.total_frames = frames;
    cfg.shards.push_back(spec);
  }
  cfg = cfg.with_env_overrides();

  fleet::FleetSupervisor supervisor(cfg, fleet::FleetFaultInjector::from_env());
  const fleet::FleetResult result = supervisor.run();

  const std::string frontier_path = out_dir + "/frontier.txt";
  util::atomic_write_file(frontier_path, result.frontier_text);

  std::cout << "=== fleet result (" << game << ", " << workers
            << " workers) ===\n";
  for (const fleet::ShardReport& r : result.shards) {
    std::cout << "shard " << r.shard << ": " << fleet::to_string(r.outcome)
              << " iter=" << r.last_iter << " restarts=" << r.restarts;
    if (!r.detail.empty()) std::cout << " (" << r.detail << ")";
    std::cout << "\n";
  }
  std::cout << "spawns=" << result.spawns << " restarts=" << result.restarts
            << " hb_timeouts=" << result.hb_timeouts
            << " drops=" << result.drops << " diverged=" << result.diverged
            << (result.stopped ? " (stopped early)" : "") << "\n";
  std::cout << "frontier: " << result.frontier.size() << " points -> "
            << frontier_path << "\n";
  for (const fleet::ParetoPoint& p : result.frontier) {
    std::cout << "  shard " << p.shard << " score=" << p.score
              << " fps=" << p.fps << " dsp=" << p.dsp << "\n";
  }

  if (!result.frontier.empty()) {
    const fleet::ParetoPoint& best = result.frontier.front();
    core::SavedResult saved;
    saved.game = game;
    saved.arch = nas::DerivedArch::from_string(best.arch);
    saved.accelerator = accel::decode_config(best.accel);
    saved.test_score = best.score;
    saved.fps = best.fps;
    saved.dsp = best.dsp;
    core::save_result(out_dir + "/best_result.txt", saved);
    std::cout << "saved best design to " << out_dir << "/best_result.txt\n";
  }

  return (result.done_count() > 0 || result.stopped) ? 0 : 1;
}
