// predictor_server: the accelerator predictor as a long-lived service.
//
// Speaks newline-delimited JSON (one request per line, one reply line per
// request; see docs/SERVING.md for the op reference) over stdin/stdout and,
// with --port, over TCP to any number of concurrent clients:
//
//   echo '{"op":"eval","network":"ResNet-14","configs":["..."]}' |
//     ./examples/predictor_server
//   ./examples/predictor_server --port 7878   # nc localhost 7878
//
// Single-threaded poll() event loop: client connections multiplex onto one
// thread, and all evaluation parallelism lives inside
// serve::PredictorService (util::ThreadPool — the repo's only sanctioned
// threading layer). Malformed requests get an {"ok":false,...} reply, never
// a crash. SIGINT/SIGTERM drain gracefully: pending replies are flushed,
// then a cache summary goes to stderr.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "accel/predictor.h"
#include "ckpt/signal.h"
#include "obs/obs_config.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/service.h"

using namespace a3cs;

namespace {

// A misbehaving client gets disconnected rather than buffering unbounded
// replies: one request line is capped by serve::LineBuffer, and a reader
// that never drains its replies is cut off at this many pending bytes.
constexpr std::size_t kMaxPendingOut = 4u << 20;  // 4 MiB

struct Connection {
  int fd = -1;
  bool is_stdin = false;
  serve::LineBuffer in;  // bounded line assembly (oversized lines dropped)
  std::string out;       // reply bytes not yet written
  bool closed = false;
};

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Writes as much pending output as the fd accepts right now.
void flush_pending(Connection& c) {
  while (!c.out.empty()) {
    const ssize_t n =
        c.is_stdin
            ? write(STDOUT_FILENO, c.out.data(), c.out.size())
            : send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;  // a signal is not a dead peer
    // EPIPE/ECONNRESET (SIGPIPE is ignored process-wide) or EOF: the peer
    // went away; drop the rest.
    c.closed = true;
    return;
  }
}

struct Server {
  serve::PredictorService& service;
  serve::NetworkRegistry& registry;
  bool quiet = false;
  std::int64_t requests = 0;

  void handle_lines(Connection& c) {
    std::string line;
    while (c.in.next_line(&line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      const auto t0 = std::chrono::steady_clock::now();
      c.out += serve::handle_request_line(service, registry, line);
      c.out += '\n';
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      ++requests;
      if (!quiet) {
        std::fprintf(stderr, "[predictor_server] request %lld: %.3f ms\n",
                     static_cast<long long>(requests), ms);
      }
    }
    if (c.in.take_overflow()) {
      c.out +=
          "{\"ok\":false,\"error\":\"request line exceeded " +
          std::to_string(c.in.max_line_bytes()) + " bytes and was dropped\"}\n";
      if (!quiet) {
        std::fprintf(stderr, "[predictor_server] oversized request line "
                             "dropped\n");
      }
    }
    if (!c.is_stdin && c.out.size() > kMaxPendingOut) {
      // Slow reader: it is not draining replies; cut it off instead of
      // growing the output buffer without bound.
      if (!quiet) {
        std::fprintf(stderr, "[predictor_server] client too slow (%zu "
                             "pending bytes), disconnecting\n", c.out.size());
      }
      c.closed = true;
    }
  }
};

void print_cache_summary(const serve::PredictorService& service) {
  const serve::ShardedCache::Stats s = service.cache().stats();
  std::fprintf(stderr,
               "[predictor_server] cache: hits=%lld misses=%lld "
               "(hit rate %.1f%%) inserts=%lld evictions=%lld "
               "occupancy=%lld/%lld over %d shards\n",
               static_cast<long long>(s.hits),
               static_cast<long long>(s.misses), 100.0 * s.hit_rate(),
               static_cast<long long>(s.inserts),
               static_cast<long long>(s.evictions),
               static_cast<long long>(s.size),
               static_cast<long long>(s.capacity), s.shards);
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "usage: %s [--port N] [--quiet]\n", argv[0]);
      return 2;
    }
  }

  // Replies to stdout (and racing TCP peers) must surface as EPIPE on the
  // write, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);

  // A3CS_TRACE=1 / A3CS_TRACE_PATH=... record one "serve_batch" JSONL event
  // per eval request, summarized by examples/trace_report.
  const obs::ObsConfig obs_cfg = obs::ObsConfig{}.with_env_overrides();
  obs::TraceSession trace_session(obs_cfg);

  accel::Predictor predictor;
  serve::PredictorService service(predictor);
  serve::NetworkRegistry registry(service);
  Server server{service, registry, quiet};

  int listen_fd = -1;
  if (port >= 0) {
    listen_fd = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      std::perror("[predictor_server] socket");
      return 1;
    }
    const int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        listen(listen_fd, 16) < 0) {
      std::perror("[predictor_server] bind/listen");
      return 1;
    }
    set_nonblocking(listen_fd);
    if (!quiet) {
      std::fprintf(stderr, "[predictor_server] listening on 127.0.0.1:%d\n",
                   port);
    }
  }

  std::vector<Connection> conns;
  {
    Connection c;
    c.fd = STDIN_FILENO;
    c.is_stdin = true;
    conns.push_back(std::move(c));
  }
  set_nonblocking(STDIN_FILENO);

  ckpt::StopSignalGuard guard;
  bool stdin_open = true;
  while (!ckpt::stop_requested()) {
    // Exit once every input source is gone and every reply is flushed.
    bool pending_out = false;
    for (const Connection& c : conns) {
      if (!c.closed && !c.out.empty()) pending_out = true;
    }
    const bool any_client =
        conns.size() > 1 &&
        std::any_of(conns.begin() + 1, conns.end(),
                    [](const Connection& c) { return !c.closed; });
    if (!stdin_open && listen_fd < 0 && !any_client && !pending_out) break;

    std::vector<pollfd> fds;
    std::vector<std::size_t> conn_of;  // pollfd index -> conns index
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& c = conns[i];
      if (c.closed || (c.is_stdin && !stdin_open && c.out.empty())) continue;
      pollfd p{};
      p.fd = c.fd;
      if (!(c.is_stdin && !stdin_open)) p.events |= POLLIN;
      if (!c.out.empty()) p.events |= POLLOUT;
      if (c.is_stdin && !c.out.empty()) {
        // Replies for the stdin client go to stdout, a different fd; poll
        // stdout for writability instead.
        p.fd = STDOUT_FILENO;
        p.events = POLLOUT;
      }
      fds.push_back(p);
      conn_of.push_back(i);
    }
    if (listen_fd >= 0) {
      pollfd p{};
      p.fd = listen_fd;
      p.events = POLLIN;
      fds.push_back(p);
    }
    if (fds.empty()) break;

    // 200 ms timeout so SIGINT/SIGTERM are noticed promptly even when idle.
    const int rc = poll(fds.data(), fds.size(), 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      std::perror("[predictor_server] poll");
      break;
    }

    for (std::size_t pi = 0; pi < conn_of.size(); ++pi) {
      Connection& c = conns[conn_of[pi]];
      const short revents = fds[pi].revents;
      if (revents & (POLLOUT)) flush_pending(c);
      // Read on POLLHUP/POLLERR too: a pipe whose writer closed after we
      // drained it reports POLLHUP *without* POLLIN, and only the read()
      // returning 0 tells us it is EOF.
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        char buf[4096];
        for (;;) {
          const ssize_t n = read(c.fd, buf, sizeof(buf));
          if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          if (c.is_stdin) {
            stdin_open = false;
          } else {
            c.closed = true;
          }
          break;
        }
        server.handle_lines(c);
        flush_pending(c);
      }
      if (!c.is_stdin && (revents & (POLLERR | POLLHUP)) && c.out.empty()) {
        c.closed = true;
      }
      if (c.closed && c.fd >= 0 && !c.is_stdin) {
        close(c.fd);
        c.fd = -1;
      }
    }

    if (listen_fd >= 0 && fds.back().revents & POLLIN) {
      for (;;) {
        const int client = accept(listen_fd, nullptr, nullptr);
        if (client < 0) break;
        set_nonblocking(client);
        Connection c;
        c.fd = client;
        conns.push_back(std::move(c));
        if (!quiet) {
          std::fprintf(stderr, "[predictor_server] client connected\n");
        }
      }
    }
  }

  // Graceful drain: give every live connection one last chance to take its
  // buffered replies, then summarize and exit 0.
  for (Connection& c : conns) {
    if (!c.closed) flush_pending(c);
    if (c.fd >= 0 && !c.is_stdin) close(c.fd);
  }
  if (listen_fd >= 0) close(listen_fd);
  if (ckpt::stop_requested() && !quiet) {
    std::fprintf(stderr, "[predictor_server] stop requested, draining\n");
  }
  if (!quiet) {
    std::fprintf(stderr, "[predictor_server] served %lld request(s)\n",
                 static_cast<long long>(server.requests));
    print_cache_summary(service);
  }
  return 0;
}
