// DNAS-for-DRL walk-through (the paper's core algorithmic contribution):
// search an agent architecture on one game with the AC-distillation-
// stabilized supernet, then report the derived architecture and its test
// score after training from scratch.
//
//   ./examples/search_agent [game] [search_frames] [train_frames]
#include <iostream>
#include <string>

#include "core/pipeline.h"
#include "util/config.h"

using namespace a3cs;

int main(int argc, char** argv) {
  const std::string game = argc > 1 ? argv[1] : "Catch";
  const std::int64_t search_frames =
      util::scaled_steps(argc > 2 ? std::stoll(argv[2]) : 12000);
  const std::int64_t train_frames =
      util::scaled_steps(argc > 3 ? std::stoll(argv[3]) : 12000);

  // Teacher for AC-distillation (cached across runs).
  rl::TeacherConfig teacher_cfg;
  teacher_cfg.train_frames = util::scaled_steps(20000);
  auto teacher = rl::get_or_train_teacher(game, teacher_cfg);

  core::CoSearchConfig cfg;
  cfg.supernet.space.num_cells = 6;  // laptop-scale search space (9^6)
  cfg.a2c.loss = rl::paper_distill_coefficients();
  cfg.hardware_aware = false;  // pure agent search in this example
  core::CoSearchEngine engine(game, cfg, teacher.get());

  std::cout << "searching on " << game << " for " << search_frames
            << " frames over a 9^" << cfg.supernet.space.num_cells
            << " architecture space...\n";
  const auto result = engine.run(search_frames, [&](std::int64_t f) {
    std::cout << "  search frames " << f
              << " (tau = " << engine.supernet().temperature() << ")\n";
  }, search_frames / 4);

  std::cout << "derived architecture: " << result.arch.to_string() << "\n";

  auto trained = core::train_derived_agent(game, result.arch,
                                           cfg.supernet.space, train_frames,
                                           cfg.a2c, teacher.get(), 77);
  std::cout << "derived net: " << nn::network_macs(trained.specs)
            << " MACs, " << nn::network_params(trained.specs) << " params\n";

  const auto eval = rl::evaluate_agent(*trained.net, game);
  std::cout << "test score: " << eval.mean_score << " +/- " << eval.stddev
            << "\n";
  return 0;
}
