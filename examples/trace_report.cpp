// Offline summary of a JSONL run trace produced with A3CS_TRACE_PATH=... (or
// ObsConfig::trace_enabled): per-phase wall-time breakdown, the hierarchical
// profile (when the run had A3CS_PROFILE=1), and the co-search trajectory —
// how the loss terms, alpha entropy and the predicted hardware cost evolved
// from the first to the last iteration.
//
//   ./examples/trace_report search.jsonl
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/jsonl.h"
#include "util/table.h"

using namespace a3cs;

namespace {

struct Series {
  std::vector<double> values;

  double head_mean(double frac) const { return slice_mean(0.0, frac); }
  double tail_mean(double frac) const { return slice_mean(1.0 - frac, 1.0); }
  double slice_mean(double from, double to) const {
    if (values.empty()) return 0.0;
    const auto n = static_cast<double>(values.size());
    std::size_t lo = static_cast<std::size_t>(from * n);
    std::size_t hi = static_cast<std::size_t>(to * n);
    if (hi > values.size()) hi = values.size();
    if (lo >= hi) lo = hi - 1;
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += values[i];
    return sum / static_cast<double>(hi - lo);
  }
  double min() const {
    double m = values.empty() ? 0.0 : values.front();
    for (double v : values) m = std::min(m, v);
    return m;
  }
  double max() const {
    double m = values.empty() ? 0.0 : values.front();
    for (double v : values) m = std::max(m, v);
    return m;
  }
};

std::string fmt(double v) { return util::TextTable::num(v, 4); }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_report <trace.jsonl>\n";
    return 1;
  }
  const std::string path = argv[1];
  std::vector<obs::JsonValue> events;
  try {
    events = obs::parse_jsonl_file(path);
  } catch (const std::exception& e) {
    std::cerr << "trace_report: " << e.what() << "\n";
    return 1;
  }
  if (events.empty()) {
    std::cerr << "trace_report: " << path << " holds no events\n";
    return 1;
  }

  // Bucket events by type; collect every numeric key of the iteration
  // events into a named series.
  std::map<std::string, int> type_counts;
  std::map<std::string, Series> iter_series;
  std::vector<const obs::JsonValue*> phases;
  std::vector<const obs::JsonValue*> profile_nodes;
  std::vector<const obs::JsonValue*> guard_events;
  std::vector<const obs::JsonValue*> serve_batches;
  std::vector<const obs::JsonValue*> fleet_events;
  std::int64_t iters = 0;
  double span_ms = 0.0;
  for (const obs::JsonValue& ev : events) {
    const std::string type = ev.string_or("type", "?");
    ++type_counts[type];
    span_ms = std::max(span_ms, ev.number_or("ts_ms", 0.0));
    if (type == "phase") phases.push_back(&ev);
    if (type == "profile") profile_nodes.push_back(&ev);
    if (type == "guard_event") guard_events.push_back(&ev);
    if (type == "serve_batch") serve_batches.push_back(&ev);
    if (type == "fleet_event") fleet_events.push_back(&ev);
    if (type == "cosearch_iter") {
      ++iters;
      for (const auto& [key, value] : ev.as_object()) {
        if (key == "ts_ms" || key == "iter" || !value.is_number()) continue;
        iter_series[key].values.push_back(value.as_number());
      }
    }
  }

  std::cout << "=== " << path << " ===\n";
  std::cout << events.size() << " events over " << fmt(span_ms / 1e3)
            << " s";
  std::cout << " (";
  bool first = true;
  for (const auto& [type, count] : type_counts) {
    if (!first) std::cout << ", ";
    std::cout << count << " " << type;
    first = false;
  }
  std::cout << ")\n";

  // ---- per-phase wall-time breakdown ------------------------------------
  if (!phases.empty()) {
    std::cout << "\nPer-phase wall time:\n";
    double total = 0.0;
    for (const auto* p : phases) total += p->number_or("dur_ms", 0.0);
    util::TextTable table({"phase", "ms", "%"});
    for (const auto* p : phases) {
      const double ms = p->number_or("dur_ms", 0.0);
      table.add_row({p->string_or("name", "?"), fmt(ms),
                     fmt(total > 0 ? 100.0 * ms / total : 0.0)});
    }
    table.add_row({"total", fmt(total), "100"});
    table.print(std::cout);
  }

  // ---- hierarchical profile (from A3CS_PROFILE=1 runs) ------------------
  if (!profile_nodes.empty()) {
    // A trace may carry several profile snapshots (e.g. one at co-search end
    // and one at pipeline end); keep only each path's final — most complete —
    // emission, preserving the file (DFS) order of that last block.
    std::map<std::string, std::size_t> last_pos;
    for (std::size_t i = 0; i < profile_nodes.size(); ++i) {
      last_pos[profile_nodes[i]->string_or("path", "?")] = i;
    }
    std::vector<const obs::JsonValue*> deduped;
    for (std::size_t i = 0; i < profile_nodes.size(); ++i) {
      if (last_pos[profile_nodes[i]->string_or("path", "?")] == i) {
        deduped.push_back(profile_nodes[i]);
      }
    }
    std::cout << "\nHierarchical profile:\n";
    util::TextTable table({"scope", "calls", "total ms", "% parent"});
    for (const auto* n : deduped) {
      const std::string prof_path = n->string_or("path", "?");
      const auto depth = static_cast<std::size_t>(n->number_or("depth", 0.0));
      const std::size_t cut = prof_path.find_last_of('/');
      const std::string leaf =
          cut == std::string::npos ? prof_path : prof_path.substr(cut + 1);
      table.add_row({std::string(2 * depth, ' ') + leaf,
                     fmt(n->number_or("calls", 0.0)),
                     fmt(n->number_or("total_ms", 0.0)),
                     fmt(n->number_or("pct_of_parent", 0.0))});
    }
    table.print(std::cout);
  }

  // ---- guard activity (docs/ROBUSTNESS.md) ------------------------------
  if (!guard_events.empty()) {
    std::cout << "\nGuard activity (" << guard_events.size() << " events):\n";
    util::TextTable table({"iter", "kind", "check", "severity", "detail"});
    for (const auto* g : guard_events) {
      table.add_row({std::to_string(static_cast<std::int64_t>(
                         g->number_or("iter", -1.0))),
                     g->string_or("kind", "?"), g->string_or("check", ""),
                     g->string_or("severity", ""),
                     g->string_or("detail", "")});
    }
    table.print(std::cout);
  }

  // ---- fleet supervision (docs/FLEET.md) --------------------------------
  if (!fleet_events.empty()) {
    std::cout << "\nFleet activity (" << fleet_events.size() << " events):\n";
    util::TextTable table({"iter", "kind", "shard", "detail"});
    for (const auto* f : fleet_events) {
      table.add_row({std::to_string(static_cast<std::int64_t>(
                         f->number_or("iter", -1.0))),
                     f->string_or("kind", "?"),
                     std::to_string(static_cast<std::int64_t>(
                         f->number_or("shard", -1.0))),
                     f->string_or("detail", "")});
    }
    table.print(std::cout);
  }

  // ---- predictor serving / memo-cache (docs/SERVING.md) -----------------
  if (!serve_batches.empty()) {
    double requests = 0.0, unique = 0.0, hits = 0.0, computed = 0.0;
    double total_ms = 0.0;
    for (const auto* b : serve_batches) {
      requests += b->number_or("batch", 0.0);
      unique += b->number_or("unique", 0.0);
      hits += b->number_or("hits", 0.0);
      computed += b->number_or("computed", 0.0);
      total_ms += b->number_or("dur_ms", 0.0);
    }
    const double deduped = requests - unique;
    std::cout << "\nPredictor serving (" << serve_batches.size()
              << " batches):\n";
    util::TextTable table({"quantity", "count", "% of requests"});
    const auto pct = [&](double v) {
      return fmt(requests > 0 ? 100.0 * v / requests : 0.0);
    };
    table.add_row({"requests", fmt(requests), "100"});
    table.add_row({"deduped in-flight", fmt(deduped), pct(deduped)});
    table.add_row({"cache hits", fmt(hits), pct(hits)});
    table.add_row({"evaluated", fmt(computed), pct(computed)});
    table.print(std::cout);
    std::cout << "serving time " << fmt(total_ms) << " ms ("
              << fmt(total_ms > 0 ? requests / (total_ms / 1e3) : 0.0)
              << " configs/s); served-from-memo rate "
              << pct(requests - computed) << "%\n";
  }

  // ---- search trajectory ------------------------------------------------
  if (iters > 0) {
    std::cout << "\nCo-search trajectory (" << iters
              << " iterations; first vs last 10%):\n";
    util::TextTable table({"signal", "first 10%", "last 10%", "min", "max"});
    for (const auto& [key, series] : iter_series) {
      table.add_row({key, fmt(series.head_mean(0.1)),
                     fmt(series.tail_mean(0.1)), fmt(series.min()),
                     fmt(series.max())});
    }
    table.print(std::cout);
  } else {
    std::cout << "\n(no cosearch_iter events — was tracing enabled during a "
                 "co-search run?)\n";
  }
  return 0;
}
