// Accelerator design walk-through: take a fixed DRL backbone (ResNet-14 by
// default), run the DAS engine under the ZC706-like 900-DSP budget, and
// compare the result against the DNNBuilder-style baseline and best-of-N
// random sampling — all on the same analytical predictor.
//
//   ./examples/design_accelerator [model] [das_iterations]
#include <iostream>
#include <string>

#include "accel/dnnbuilder.h"
#include "arcade/env.h"
#include "core/pipeline.h"
#include "das/das.h"
#include "nn/zoo.h"
#include "util/config.h"

using namespace a3cs;

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "ResNet-14";
  const int iterations = argc > 2 ? std::stoi(argv[2]) : 400;

  const nn::ObsSpec obs = arcade::standard_obs_spec();
  auto specs = nn::zoo_model_specs(model, obs, 4);
  std::cout << model << ": " << specs.size() << " layers, "
            << nn::network_macs(specs) << " MACs, "
            << nn::network_params(specs) << " params\n";

  accel::AcceleratorSpace space(4, nn::num_groups(specs));
  std::cout << "accelerator space: 10^" << space.log10_size()
            << " configurations (" << space.num_knobs() << " knobs)\n";

  accel::Predictor predictor;

  das::DasConfig cfg;
  cfg.iterations = iterations;
  das::DasEngine engine(space, predictor, cfg);
  const das::DasResult das_result = engine.search(specs);
  std::cout << "\nDAS result: FPS = " << das_result.eval.fps
            << ", DSP = " << das_result.eval.dsp_used << "/900"
            << ", BRAM = " << das_result.eval.bram_used << "/1090"
            << (das_result.eval.feasible ? "" : " (INFEASIBLE)") << "\n";
  std::cout << "config: " << das_result.config.to_string() << "\n";

  const auto dnnb = accel::dnnbuilder_eval(specs, predictor);
  std::cout << "\nDNNBuilder baseline: FPS = " << dnnb.fps
            << ", DSP = " << dnnb.dsp_used << "\n";

  const auto rnd = das::random_search(space, predictor, specs, iterations, 5);
  std::cout << "random search (same budget): FPS = " << rnd.eval.fps << "\n";

  std::cout << "\nDAS speedup over DNNBuilder: "
            << (dnnb.fps > 0 ? das_result.eval.fps / dnnb.fps : 0.0) << "x\n";
  return 0;
}
