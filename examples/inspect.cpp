// Inspection CLI: poke at the library's building blocks from the shell.
//
//   inspect games                     list registered games
//   inspect model <zoo-name>          layer table with MACs/params
//   inspect arch <op-op-...>          specs of a derived architecture
//   inspect accel <zoo-name> [chunks] run DAS and print the design report
//   inspect play <game> [steps]       random-play ASCII rollout
#include <iostream>
#include <string>

#include "arcade/games.h"
#include "arcade/render.h"
#include "core/pipeline.h"
#include "das/das.h"
#include "nas/arch.h"
#include "nn/zoo.h"
#include "util/table.h"

using namespace a3cs;

namespace {

int usage() {
  std::cerr << "usage: inspect games | model <name> | arch <string> | "
               "accel <name> [chunks] | play <game> [steps]\n";
  return 1;
}

void print_specs(const std::vector<nn::LayerSpec>& specs) {
  util::TextTable t({"layer", "kind", "in", "out", "k", "s", "geometry",
                     "MACs", "params", "group"});
  for (const auto& s : specs) {
    const char* kind = s.kind == nn::LayerSpec::Kind::kConv
                           ? "conv"
                           : (s.kind == nn::LayerSpec::Kind::kDepthwiseConv
                                  ? "dwconv"
                                  : "linear");
    t.add_row({s.name, kind, std::to_string(s.in_c), std::to_string(s.out_c),
               std::to_string(s.kernel), std::to_string(s.stride),
               std::to_string(s.in_h) + "x" + std::to_string(s.in_w) + "->" +
                   std::to_string(s.out_h) + "x" + std::to_string(s.out_w),
               std::to_string(s.macs()), std::to_string(s.params()),
               std::to_string(s.group)});
  }
  t.print(std::cout);
  std::cout << "total: " << nn::network_macs(specs) << " MACs, "
            << nn::network_params(specs) << " params\n";
}

int cmd_games() {
  util::TextTable t({"title", "actions"});
  for (const auto& title : arcade::all_game_titles()) {
    auto env = arcade::make_game(title, 1);
    t.add_row({title, std::to_string(env->num_actions())});
  }
  t.print(std::cout);
  return 0;
}

int cmd_model(const std::string& name) {
  print_specs(nn::zoo_model_specs(name, arcade::standard_obs_spec(), 6));
  return 0;
}

int cmd_arch(const std::string& arch_str) {
  const auto arch = nas::DerivedArch::from_string(arch_str);
  nas::SearchSpaceConfig cfg;
  cfg.num_cells = static_cast<int>(arch.choices.size());
  print_specs(nas::derived_specs(arch, arcade::standard_obs_spec(), cfg));
  return 0;
}

int cmd_accel(const std::string& model, int chunks) {
  const auto specs = nn::zoo_model_specs(model, arcade::standard_obs_spec(), 6);
  accel::AcceleratorSpace space(chunks, nn::num_groups(specs));
  accel::Predictor predictor;
  das::DasEngine engine(space, predictor, das::DasConfig{});
  const auto result = engine.search(specs);
  std::cout << "searched 10^" << space.log10_size() << " configurations\n"
            << result.config.to_string() << "\n"
            << result.eval.report();
  return 0;
}

int cmd_play(const std::string& game, int steps) {
  auto env = arcade::make_game(game, 42);
  util::Rng rng(1);
  auto obs = env->reset();
  double score = 0.0;
  for (int t = 0; t < steps; ++t) {
    std::cout << arcade::render_ascii(obs) << "score=" << score << "\n";
    const auto r = env->step(rng.uniform_int(env->num_actions()));
    score += r.reward;
    obs = r.obs;
    if (r.done) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "games") return cmd_games();
    if (cmd == "model" && argc > 2) return cmd_model(argv[2]);
    if (cmd == "arch" && argc > 2) return cmd_arch(argv[2]);
    if (cmd == "accel" && argc > 2) {
      return cmd_accel(argv[2], argc > 3 ? std::stoi(argv[3]) : 4);
    }
    if (cmd == "play" && argc > 2) {
      return cmd_play(argv[2], argc > 3 ? std::stoi(argv[3]) : 12);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
