// The full A3C-S pipeline on one game: co-search agent + accelerator, train
// the derived agent with AC-distillation, search the deployment accelerator
// with DAS, and report (test score, FPS) against the FA3C-style baseline.
//
//   ./examples/cosearch_full [game] [--ckpt-dir <dir>] [--resume <dir>]
//                            [--guard=off|warn|heal]
//
// --ckpt-dir enables periodic + signal-triggered checkpointing of the
// co-search phase into <dir>; --resume additionally restores the newest
// valid checkpoint there before searching (see docs/CHECKPOINTING.md).
// A3CS_CKPT_* environment variables override both. --guard selects the
// training-health watchdog mode (default warn: observe and trace, never
// act; heal runs the skip/soften/rollback ladder — see docs/ROBUSTNESS.md);
// A3CS_GUARD* environment variables override it.
#include <iostream>
#include <string>

#include "accel/fa3c.h"
#include "core/pipeline.h"
#include "core/result_io.h"
#include "guard/policy.h"
#include "util/config.h"

using namespace a3cs;

int main(int argc, char** argv) {
  std::string game = "Pong";
  ckpt::CkptConfig ckpt_cfg;
  guard::GuardConfig guard_cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ckpt-dir" && i + 1 < argc) {
      ckpt_cfg.dir = argv[++i];
    } else if (arg == "--resume" && i + 1 < argc) {
      ckpt_cfg.dir = argv[++i];
      ckpt_cfg.resume = true;
    } else if (arg.rfind("--guard=", 0) == 0) {
      try {
        guard_cfg.mode = guard::parse_guard_mode(arg.substr(8));
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n"
                << "usage: cosearch_full [game] [--ckpt-dir <dir>] "
                << "[--resume <dir>] [--guard=off|warn|heal]\n";
      return 2;
    } else {
      game = arg;
    }
  }

  rl::TeacherConfig teacher_cfg;
  teacher_cfg.train_frames = util::scaled_steps(20000);
  auto teacher = rl::get_or_train_teacher(game, teacher_cfg);

  core::PipelineConfig cfg;
  cfg.cosearch.supernet.space.num_cells = 6;
  cfg.cosearch.a2c.loss = rl::paper_distill_coefficients();
  cfg.search_frames = util::scaled_steps(15000);
  cfg.train_frames = util::scaled_steps(15000);
  cfg.final_das.iterations = 400;
  cfg.cosearch.ckpt = ckpt_cfg;
  cfg.cosearch.guard = guard_cfg;

  std::cout << "running the full A3C-S pipeline on " << game << "...\n";
  const auto result = run_a3cs_pipeline(game, cfg, teacher.get());

  std::cout << "\n=== A3C-S result on " << game << " ===\n";
  std::cout << "architecture : " << result.arch.to_string() << "\n";
  std::cout << "MACs         : " << nn::network_macs(result.specs) << "\n";
  std::cout << "test score   : " << result.test_score << "\n";
  std::cout << "FPS          : " << result.hw.fps << " (DSP "
            << result.hw.dsp_used << "/900, BRAM " << result.hw.bram_used
            << "/1090)\n";
  // FA3C-style baseline on the same predictor: Vanilla agent on a fixed
  // single-engine accelerator.
  const auto vanilla_specs =
      nn::zoo_model_specs("Vanilla", arcade::standard_obs_spec(), 4);
  accel::Predictor predictor;
  const auto fa3c = accel::fa3c_eval(vanilla_specs, predictor);
  std::cout << "FA3C-style baseline (Vanilla on fixed engine): " << fa3c.fps
            << " FPS -> A3C-S is " << result.hw.fps / fa3c.fps << "x\n";

  // Persist the searched design for later re-evaluation / retraining.
  core::SavedResult saved;
  saved.game = game;
  saved.arch = result.arch;
  saved.accelerator = result.accelerator;
  saved.test_score = result.test_score;
  saved.fps = result.hw.fps;
  const std::string out_path = "a3cs_result_" + game + ".txt";
  core::save_result(out_path, saved);
  std::cout << "saved searched design to " << out_path << "\n";
  return 0;
}
