// Unit coverage for the fleet subsystem's deterministic core: the line
// protocol (round-trip exactness + malformed-input hardening), the merged
// Pareto frontier (dominance, content dedupe, shard purge, byte-stable
// rendering), the env-driven fault-plan parser, and the supervision config
// env overrides. Process-level kill/hang/drop behaviour lives in
// fleet_resume_test.cc.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/fault.h"
#include "fleet/frontier.h"
#include "fleet/protocol.h"
#include "fleet/supervisor.h"

namespace a3cs::fleet {
namespace {

ParetoPoint make_point(int shard, std::int64_t iter, double score, double fps,
                       int dsp) {
  ParetoPoint p;
  p.shard = shard;
  p.iter = iter;
  p.frames = iter * 8;
  p.score = score;
  p.fps = fps;
  p.dsp = dsp;
  p.arch = "conv3-conv5";
  p.accel = "pe=8x8;noc=1";
  return p;
}

// ------------------------------------------------------------- protocol ----

TEST(FleetProtocol, HeartbeatRoundTrip) {
  const std::string line = format_heartbeat(3, 41, 328);
  EXPECT_EQ(line, "hb 3 iter=41 frames=328\n");
  const Msg msg = parse_message("hb 3 iter=41 frames=328");
  EXPECT_EQ(msg.kind, MsgKind::kHeartbeat);
  EXPECT_EQ(msg.shard, 3);
  EXPECT_EQ(msg.iter, 41);
  EXPECT_EQ(msg.frames, 328);
}

TEST(FleetProtocol, PointRoundTripIsByteExact) {
  // 0.1 has no finite binary expansion: %.17g must round-trip it exactly,
  // the property the bit-exact frontier contract leans on.
  const ParetoPoint p = make_point(1, 7, 0.1, 12345.678901234567, 448);
  const std::string line = format_point(p);
  const Msg msg = parse_message(line.substr(0, line.size() - 1));
  ASSERT_EQ(msg.kind, MsgKind::kPoint);
  EXPECT_EQ(msg.point.score, p.score);
  EXPECT_EQ(msg.point.fps, p.fps);
  EXPECT_EQ(msg.point.dsp, p.dsp);
  EXPECT_EQ(msg.point.arch, p.arch);
  EXPECT_EQ(msg.point.accel, p.accel);
  // Re-rendering the parsed point reproduces the original line byte-for-byte.
  EXPECT_EQ(format_point(msg.point), line);
}

TEST(FleetProtocol, DivergedCarriesReason) {
  const std::string line = format_diverged(2, 9, "loss spiked to nan");
  const Msg msg = parse_message(line.substr(0, line.size() - 1));
  ASSERT_EQ(msg.kind, MsgKind::kDiverged);
  EXPECT_EQ(msg.shard, 2);
  EXPECT_EQ(msg.iter, 9);
  EXPECT_EQ(msg.reason, "loss spiked to nan");
}

TEST(FleetProtocol, MalformedLinesNeverThrow) {
  const std::vector<std::string> bad = {
      "",
      "bogus 1 iter=2 frames=3",
      "hb",
      "hb x iter=2 frames=3",
      "hb 1 iter=abc frames=3",
      "hb 1 frames=3",
      "point 1 iter=2 frames=3",  // missing score/fps/dsp/arch/accel
      "point 1 iter=2 frames=3 score=nope fps=1 dsp=2 arch=a accel=b",
      "done 1 iter=",
      "diverged 5",  // no iter
  };
  for (const std::string& line : bad) {
    EXPECT_EQ(parse_message(line).kind, MsgKind::kUnknown) << line;
  }
}

// ------------------------------------------------------------- frontier ----

TEST(FleetFrontier, DominatedPointsAreFiltered) {
  FrontierSet set;
  EXPECT_TRUE(set.insert(make_point(0, 1, 1.0, 100.0, 500)));
  // Dominated: worse on every axis.
  EXPECT_TRUE(set.insert(make_point(0, 2, 0.5, 50.0, 600)));
  // Incomparable: worse score, better fps.
  EXPECT_TRUE(set.insert(make_point(1, 1, 0.8, 200.0, 500)));
  const auto frontier = set.frontier();
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].score, 1.0);  // sorted best-score-first
  EXPECT_EQ(frontier[1].score, 0.8);
}

TEST(FleetFrontier, EqualAxesAreMutuallyNonDominating) {
  const ParetoPoint a = make_point(0, 1, 1.0, 100.0, 500);
  const ParetoPoint b = make_point(1, 1, 1.0, 100.0, 500);
  EXPECT_FALSE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
}

TEST(FleetFrontier, ContentDedupeAbsorbsRedeliveredPoints) {
  // A worker restarted from its checkpoint ring re-emits the restored
  // boundary's point byte-identically; inserting it again must be a no-op.
  FrontierSet set;
  const ParetoPoint p = make_point(0, 5, 0.25, 1000.0, 448);
  EXPECT_TRUE(set.insert(p));
  EXPECT_FALSE(set.insert(p));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FleetFrontier, EraseShardPurgesAllItsPoints) {
  FrontierSet set;
  set.insert(make_point(0, 1, 1.0, 100.0, 500));
  set.insert(make_point(0, 2, 0.9, 300.0, 500));
  set.insert(make_point(1, 1, 0.5, 400.0, 200));
  EXPECT_EQ(set.count_for_shard(0), 2);
  EXPECT_EQ(set.erase_shard(0), 2);
  EXPECT_EQ(set.count_for_shard(0), 0);
  const auto frontier = set.frontier();
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0].shard, 1);
}

TEST(FleetFrontier, RenderParseRoundTrip) {
  FrontierSet set;
  set.insert(make_point(1, 3, 0.1, 5000.0, 296));
  set.insert(make_point(0, 2, 0.7, 2000.0, 448));
  const auto frontier = set.frontier();
  const std::string text = render_frontier(frontier);
  const auto parsed = parse_frontier(text);
  ASSERT_EQ(parsed.size(), frontier.size());
  EXPECT_EQ(render_frontier(parsed), text);
}

TEST(FleetFrontier, ParseRejectsTruncatedFrontier) {
  FrontierSet set;
  set.insert(make_point(0, 1, 1.0, 100.0, 500));
  set.insert(make_point(1, 1, 0.5, 400.0, 200));
  std::string text = render_frontier(set.frontier());
  text.resize(text.rfind("point "));  // drop the final point line
  EXPECT_THROW(parse_frontier(text), std::runtime_error);
  EXPECT_THROW(parse_frontier("points 1\nnot a point line\n"),
               std::runtime_error);
}

// ---------------------------------------------------------------- fault ----

TEST(FleetFault, ParsesFullPlan) {
  const auto f =
      FleetFaultInjector::parse("0@3,2@7", "1@4", "3@2", "0,2");
  EXPECT_EQ(f.kill_at(0), 3);
  EXPECT_EQ(f.kill_at(2), 7);
  EXPECT_EQ(f.kill_at(1), 0);
  EXPECT_EQ(f.hang_at(1), 4);
  EXPECT_EQ(f.diverge_at(3), 2);
  EXPECT_TRUE(f.corrupt_tip(0));
  EXPECT_FALSE(f.corrupt_tip(1));
  EXPECT_TRUE(f.any());
}

TEST(FleetFault, EmptyPlanHasNoFaults) {
  const auto f = FleetFaultInjector::parse("", "", "", "");
  EXPECT_FALSE(f.any());
  EXPECT_EQ(f.kill_at(0), 0);
}

TEST(FleetFault, MalformedPlanThrows) {
  EXPECT_THROW(FleetFaultInjector::parse("0", "", "", ""),
               std::runtime_error);
  EXPECT_THROW(FleetFaultInjector::parse("a@3", "", "", ""),
               std::runtime_error);
  EXPECT_THROW(FleetFaultInjector::parse("0@0", "", "", ""),
               std::runtime_error);
  EXPECT_THROW(FleetFaultInjector::parse("-1@3", "", "", ""),
               std::runtime_error);
  EXPECT_THROW(FleetFaultInjector::parse("", "", "", "x"),
               std::runtime_error);
}

// --------------------------------------------------------------- config ----

TEST(FleetConfig, EnvOverridesWin) {
  ::setenv("A3CS_FLEET_HB_S", "1.5", 1);
  ::setenv("A3CS_FLEET_RESTARTS", "7", 1);
  ::setenv("A3CS_FLEET_BACKOFF_S", "0.125", 1);
  ::setenv("A3CS_FLEET_REALLOC", "0", 1);
  ::setenv("A3CS_FLEET_POLL_MS", "10", 1);
  FleetConfig cfg;
  const FleetConfig out = cfg.with_env_overrides();
  EXPECT_DOUBLE_EQ(out.heartbeat_timeout_s, 1.5);
  EXPECT_EQ(out.restart_budget, 7);
  EXPECT_DOUBLE_EQ(out.backoff_base_s, 0.125);
  EXPECT_FALSE(out.reallocate_budget);
  EXPECT_EQ(out.poll_interval_ms, 10);
  ::unsetenv("A3CS_FLEET_HB_S");
  ::unsetenv("A3CS_FLEET_RESTARTS");
  ::unsetenv("A3CS_FLEET_BACKOFF_S");
  ::unsetenv("A3CS_FLEET_REALLOC");
  ::unsetenv("A3CS_FLEET_POLL_MS");
}

TEST(FleetConfig, OutcomeNames) {
  EXPECT_STREQ(to_string(ShardOutcome::kDone), "done");
  EXPECT_STREQ(to_string(ShardOutcome::kDropped), "dropped");
  EXPECT_STREQ(to_string(ShardOutcome::kDiverged), "diverged");
}

}  // namespace
}  // namespace a3cs::fleet
