// Tests for the a3cs-lint rule engine (tools/a3cs_lint). Fixtures under
// tools/a3cs_lint/fixtures/ are linted through lint_source() with *virtual*
// paths, so one fixture exercises both sides of a path-scoped rule (e.g.
// det-wall-clock fires under src/nn/ but not bench/). The baseline
// suppression path goes through the real a3cs_lint binary (A3CS_LINT_BIN)
// against a throwaway tree, mirroring how ckpt_resume_test drives ckpt_run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph.h"
#include "lexer.h"
#include "model.h"
#include "report.h"
#include "rules.h"

namespace fs = std::filesystem;

namespace {

using a3cs_lint::build_file_model;
using a3cs_lint::FileModel;
using a3cs_lint::Finding;
using a3cs_lint::lint_source;
using a3cs_lint::TokKind;

std::string read_fixture(const std::string& name) {
  const fs::path p = fs::path(A3CS_LINT_FIXTURES) / name;
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lints fixture `name` as if it lived at repo-relative `virtual_path`.
std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& virtual_path) {
  return lint_source(virtual_path, read_fixture(name));
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  int n = 0;
  for (const auto& f : fs) n += (f.rule == rule) ? 1 : 0;
  return n;
}

std::string dump(const std::vector<Finding>& fs) {
  std::ostringstream out;
  for (const auto& f : fs) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "missing " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Builds a virtual tree of FileModels for the cross-TU graph families.
std::vector<FileModel> tree(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<FileModel> models;
  for (const auto& [path, src] : files) {
    models.push_back(build_file_model(path, src));
  }
  return models;
}

// Mirrors the committed tools/a3cs_lint/layers.txt DAG.
constexpr const char* kTestLayers =
    "layer util tensor\n"
    "layer nn\n"
    "layer rl nas das accel arcade\n"
    "layer obs ckpt guard\n"
    "layer core\n"
    "layer serve fleet\n"
    "pervasive util obs\n";

constexpr const char* kServeHeader = "#pragma once\nint s();\n";

// ------------------------------------------------------- determinism ----

TEST(Lint, DetRandFiresOutsideUtil) {
  const auto fs = lint_fixture("det_rand.cc", "src/rl/sampler.cc");
  EXPECT_GE(count_rule(fs, "det-rand"), 3) << dump(fs);
  for (const auto& f : fs) {
    EXPECT_EQ(f.path, "src/rl/sampler.cc");
    EXPECT_GT(f.line, 0);
  }
}

TEST(Lint, DetRandExemptUnderUtil) {
  const auto fs = lint_fixture("det_rand.cc", "src/util/rng_extra.cc");
  EXPECT_EQ(count_rule(fs, "det-rand"), 0) << dump(fs);
}

TEST(Lint, DetTimeSeedFires) {
  const auto fs = lint_fixture("det_time_seed.cc", "src/rl/rollout.cc");
  EXPECT_GE(count_rule(fs, "det-time-seed"), 1) << dump(fs);
}

TEST(Lint, DetWallClockScopedToNumericDirs) {
  const auto in_nn = lint_fixture("det_wall_clock.cc", "src/nn/fused.cc");
  ASSERT_EQ(count_rule(in_nn, "det-wall-clock"), 1) << dump(in_nn);
  for (const auto& f : in_nn) {
    if (f.rule == "det-wall-clock") EXPECT_EQ(f.line, 6);
  }
  // Timing code in bench/ (and src/obs/) is the sanctioned home for clocks.
  const auto in_bench = lint_fixture("det_wall_clock.cc", "bench/fused.cc");
  EXPECT_EQ(count_rule(in_bench, "det-wall-clock"), 0) << dump(in_bench);
}

TEST(Lint, DetBenchClockFiresOnlyInBench) {
  const auto in_bench =
      lint_fixture("det_bench_clock.cc", "bench/bench_custom.cc");
  // system_clock and std::time() fire; steady_clock in the same file must
  // stay silent — it is the sanctioned monotonic source.
  EXPECT_EQ(count_rule(in_bench, "det-bench-clock"), 2) << dump(in_bench);
  const auto in_obs =
      lint_fixture("det_bench_clock.cc", "src/obs/perf/run_meta.cc");
  EXPECT_EQ(count_rule(in_obs, "det-bench-clock"), 0) << dump(in_obs);
}

TEST(Lint, DetUnorderedIterOnlyInSerializationBodies) {
  const auto fs = lint_fixture("det_unordered_iter.cc", "src/rl/registry.cc");
  // One hit in save_state; the keyed lookup and the non-serialized
  // iteration in the same file must stay silent.
  EXPECT_EQ(count_rule(fs, "det-unordered-iter"), 1) << dump(fs);
}

// ----------------------------------------------------- serialization ----

TEST(Lint, SerPairFlagsOneSidedClasses) {
  const auto fs = lint_fixture("ser_pair.cc", "src/nas/snapshot.cc");
  ASSERT_EQ(count_rule(fs, "ser-pair"), 2) << dump(fs);
  bool saw_save_only = false;
  bool saw_load_only = false;
  for (const auto& f : fs) {
    if (f.rule != "ser-pair") continue;
    saw_save_only |= f.message.find("SaveOnly") != std::string::npos;
    saw_load_only |= f.message.find("LoadOnly") != std::string::npos;
    // Paired and CallerOnly must not be named.
    EXPECT_EQ(f.message.find("Paired"), std::string::npos) << f.message;
    EXPECT_EQ(f.message.find("CallerOnly"), std::string::npos) << f.message;
  }
  EXPECT_TRUE(saw_save_only) << dump(fs);
  EXPECT_TRUE(saw_load_only) << dump(fs);
}

TEST(Lint, SerRawIoScopedToSerializationLayers) {
  const auto in_ckpt = lint_fixture("ser_raw_io.cc", "src/ckpt/header.cc");
  EXPECT_GE(count_rule(in_ckpt, "ser-raw-io"), 3) << dump(in_ckpt);
  // Outside src/ckpt/ and src/util/ raw byte IO is someone else's problem.
  const auto in_rl = lint_fixture("ser_raw_io.cc", "src/rl/header.cc");
  EXPECT_EQ(count_rule(in_rl, "ser-raw-io"), 0) << dump(in_rl);
  // The explicit-LE helpers are the one sanctioned home for raw IO.
  const auto in_sio = lint_fixture("ser_raw_io.cc", "src/util/state_io.cc");
  EXPECT_EQ(count_rule(in_sio, "ser-raw-io"), 0) << dump(in_sio);
}

// ------------------------------------------------------- concurrency ----

TEST(Lint, ConcRawThreadFiresOutsideThreadPool) {
  const auto fs = lint_fixture("conc_thread.cc", "src/das/worker.cc");
  EXPECT_GE(count_rule(fs, "conc-raw-thread"), 2) << dump(fs);
  const auto pool =
      lint_fixture("conc_thread.cc", "src/util/thread_pool.cc");
  EXPECT_EQ(count_rule(pool, "conc-raw-thread"), 0) << dump(pool);
}

TEST(Lint, ConcRawProcessConfinedToFleet) {
  // fork / execv / waitpid fire anywhere outside src/fleet/...
  const auto fs = lint_fixture("conc_process.cc", "src/core/runner.cc");
  EXPECT_EQ(count_rule(fs, "conc-raw-process"), 3) << dump(fs);
  // ...but the supervisor implementation itself is the sanctioned home...
  const auto fleet =
      lint_fixture("conc_process.cc", "src/fleet/supervisor.cc");
  EXPECT_EQ(count_rule(fleet, "conc-raw-process"), 0) << dump(fleet);
  // ...and member calls that happen to share a POSIX name never fire
  // (asserted via the exact count above: the fixture's sup.fork() /
  // sup->waitpid() lines are not among the three findings).
  for (const auto& f : fs) {
    if (f.rule == "conc-raw-process") EXPECT_LE(f.line, 19) << dump(fs);
  }
}

TEST(Lint, ConcStaticLocalAndMutableGlobal) {
  const auto fs = lint_fixture("conc_static.cc", "src/obs/stats.cc");
  ASSERT_EQ(count_rule(fs, "conc-mutable-global"), 1) << dump(fs);
  ASSERT_EQ(count_rule(fs, "conc-static-local"), 1) << dump(fs);
  for (const auto& f : fs) {
    if (f.rule == "conc-mutable-global") EXPECT_EQ(f.line, 10);
    if (f.rule == "conc-static-local") EXPECT_EQ(f.line, 16);
  }
}

// ---------------------------------------------------- architecture ----

TEST(Lint, ArchIntrinsicsScopedToBackendDir) {
  // Outside src/tensor/backend/ the include and every intrinsic fire; the
  // prose mention of immintrin.h in a comment must stay silent.
  const auto in_nn = lint_fixture("arch_intrinsics.cc", "src/nn/fast_math.cc");
  EXPECT_GE(count_rule(in_nn, "arch-intrinsics-scoped"), 5) << dump(in_nn);
  bool saw_include = false;
  for (const auto& f : in_nn) {
    if (f.rule != "arch-intrinsics-scoped") continue;
    EXPECT_NE(f.line, 6) << "comment mention fired: " << dump(in_nn);
    saw_include |= f.line == 4;
  }
  EXPECT_TRUE(saw_include) << dump(in_nn);

  // The backend directory is the sanctioned home for SIMD.
  const auto in_backend = lint_fixture(
      "arch_intrinsics.cc", "src/tensor/backend/kernels_avx2.cc");
  EXPECT_EQ(count_rule(in_backend, "arch-intrinsics-scoped"), 0)
      << dump(in_backend);
}

// ----------------------------------------------------------- hygiene ----

TEST(Lint, HygPragmaOnceRequiredInHeaders) {
  const auto fs = lint_fixture("hyg_missing_pragma.h", "src/util/value.h");
  EXPECT_EQ(count_rule(fs, "hyg-pragma-once"), 1) << dump(fs);
  // Non-headers are exempt.
  const auto cc = lint_source("src/util/value.cc",
                              read_fixture("hyg_missing_pragma.h"));
  EXPECT_EQ(count_rule(cc, "hyg-pragma-once"), 0) << dump(cc);
}

TEST(Lint, HygUsingNamespaceInHeader) {
  const auto fs = lint_fixture("hyg_using_namespace.h", "src/util/names.h");
  EXPECT_EQ(count_rule(fs, "hyg-using-namespace"), 1) << dump(fs);
  // A leading comment before #pragma once is fine.
  EXPECT_EQ(count_rule(fs, "hyg-pragma-once"), 0) << dump(fs);
}

// ------------------------------------------------------- suppression ----

TEST(Lint, InlineSuppressionSilencesSameLineAndLineAbove) {
  const auto fs = lint_fixture("suppressed.cc", "src/rl/sampler.cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Lint, SuppressionIsPerRule) {
  // A marker for the wrong rule must not silence the finding.
  const auto fs = lint_source(
      "src/rl/x.cc",
      "int f() { return rand(); }  // A3CS_LINT(conc-raw-thread)\n");
  EXPECT_EQ(count_rule(fs, "det-rand"), 1) << dump(fs);
}

TEST(Lint, CleanFixturePassesEverywhere) {
  for (const char* vpath : {"src/nn/clean.cc", "src/ckpt/clean.cc",
                            "src/obs/clean.cc", "tests/clean.cc"}) {
    const auto fs = lint_fixture("clean.cc", vpath);
    EXPECT_TRUE(fs.empty()) << vpath << "\n" << dump(fs);
  }
}

// -------------------------------------------------------------- lexer ----

TEST(Lex, DigitSeparatorsAreOneNumber) {
  const auto lexed = a3cs_lint::lex("int x = 1'000'000;\n");
  int numbers = 0;
  for (const auto& t : lexed.tokens) {
    numbers += (t.kind == TokKind::kNumber) ? 1 : 0;
    // The separators must not be mislexed as char literals.
    EXPECT_NE(t.kind, TokKind::kChar) << t.text;
  }
  EXPECT_EQ(numbers, 1);
}

TEST(Lex, EncodingPrefixedLiterals) {
  const auto lexed = a3cs_lint::lex(
      "auto a = u8\"x\"; auto b = L\"y\"; auto c = u\"z\"; auto d = U\"w\";\n"
      "auto e = L'q'; auto f = u'r';\n");
  int strings = 0;
  int chars = 0;
  for (const auto& t : lexed.tokens) {
    strings += (t.kind == TokKind::kString) ? 1 : 0;
    chars += (t.kind == TokKind::kChar) ? 1 : 0;
    if (t.kind == TokKind::kIdent) {
      // The prefix must fuse into the literal, not lex as an identifier.
      EXPECT_NE(t.text, "u8");
      EXPECT_NE(t.text, "L");
    }
  }
  EXPECT_EQ(strings, 4);
  EXPECT_EQ(chars, 2);
}

TEST(Lex, LineSplicedCommentSwallowsNextLine) {
  const auto lexed = a3cs_lint::lex(
      "// hidden \\\n"
      "rand();\n"
      "int after = 1;\n");
  bool saw_after = false;
  for (const auto& t : lexed.tokens) {
    if (t.kind == TokKind::kIdent) EXPECT_NE(t.text, "rand");
    if (t.text == "after") {
      saw_after = true;
      // Line numbering must survive the splice.
      EXPECT_EQ(t.line, 3);
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(Lex, RawStringCustomDelimiterDoesNotCloseEarly) {
  const auto lexed = a3cs_lint::lex(
      "const char* s = R\"x(body )\" still)x\"; int tail = 1;\n"
      "const char* w = LR\"y(wide )\" body)y\"; int tail2 = 2;\n");
  int strings = 0;
  bool saw_tail = false;
  bool saw_tail2 = false;
  for (const auto& t : lexed.tokens) {
    strings += (t.kind == TokKind::kString) ? 1 : 0;
    saw_tail |= t.text == "tail";
    saw_tail2 |= t.text == "tail2";
  }
  EXPECT_EQ(strings, 2);
  EXPECT_TRUE(saw_tail);
  EXPECT_TRUE(saw_tail2);
}

TEST(Lex, EdgeCaseFixtureLintsClean) {
  // The fixture hides rand()/detach() inside a spliced comment and raw
  // strings; a mislex would leak them into the token stream and fire
  // det-rand / conc-raw-thread.
  const auto fs = lint_fixture("lex_edge.cc", "src/rl/edge.cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ----------------------------------------------------- arch-layering ----

TEST(GraphLayering, ParseLayersSpec) {
  const auto spec = a3cs_lint::parse_layers(
      "# comment\nlayer a b\nlayer c\npervasive p\n");
  ASSERT_TRUE(spec.valid);
  EXPECT_EQ(spec.rank.at("a"), 0);
  EXPECT_EQ(spec.rank.at("b"), 0);
  EXPECT_EQ(spec.rank.at("c"), 1);
  EXPECT_EQ(spec.pervasive.count("p"), 1u);
  EXPECT_FALSE(a3cs_lint::parse_layers("strata a b\n").valid);
}

TEST(GraphLayering, UpwardIncludeFires) {
  const auto models = tree({
      {"src/nn/bad.cc", read_fixture("layering_up.cc")},
      {"src/serve/service.h", kServeHeader},
  });
  const auto fs = a3cs_lint::check_layering(models, kTestLayers);
  ASSERT_EQ(count_rule(fs, "arch-layering"), 1) << dump(fs);
  EXPECT_EQ(fs[0].path, "src/nn/bad.cc");
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_NE(fs[0].message.find("upward include"), std::string::npos);
}

TEST(GraphLayering, SameRankIncludeIsSilent) {
  // fleet and serve share the top rank, and the util include is pervasive.
  const auto models = tree({
      {"src/fleet/ok.cc", read_fixture("layering_up.cc")},
      {"src/serve/service.h", kServeHeader},
  });
  const auto fs = a3cs_lint::check_layering(models, kTestLayers);
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(GraphLayering, ModuleCycleFires) {
  // nas <-> das are same-rank (no upward finding) but still a cycle.
  const auto models = tree({
      {"src/das/b.h", "#pragma once\n#include \"nas/a.h\"\n"},
      {"src/nas/a.h", "#pragma once\n#include \"das/b.h\"\n"},
  });
  const auto fs = a3cs_lint::check_layering(models, kTestLayers);
  ASSERT_EQ(count_rule(fs, "arch-layering"), 1) << dump(fs);
  EXPECT_NE(fs[0].message.find("module cycle"), std::string::npos);
  EXPECT_NE(fs[0].message.find("das"), std::string::npos);
  EXPECT_NE(fs[0].message.find("nas"), std::string::npos);
}

TEST(GraphLayering, MissingLayersFileIsAFinding) {
  const auto models = tree({{"src/nn/x.cc", "int f();\n"}});
  const auto fs = a3cs_lint::check_layering(models, "");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].path, "tools/a3cs_lint/layers.txt");
  EXPECT_EQ(fs[0].rule, "arch-layering");
}

TEST(GraphLayering, InlineSuppressionSilencesUpwardInclude) {
  const auto models = tree({
      {"src/nn/bad.cc", read_fixture("layering_up_suppressed.cc")},
      {"src/serve/service.h", kServeHeader},
  });
  const auto fs = a3cs_lint::lint_tree(models, kTestLayers);
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ---------------------------------------------------- conc-lock-order ----

TEST(GraphLockOrder, CrossTuCycleFires) {
  const auto models = tree({
      {"src/core/ab.cc", read_fixture("lock_order_ab.cc")},
      {"src/core/ba.cc", read_fixture("lock_order_ba.cc")},
  });
  const auto fs = a3cs_lint::check_lock_order(models);
  // One finding per edge of the cycle, each at its own acquisition site.
  ASSERT_EQ(count_rule(fs, "conc-lock-order"), 2) << dump(fs);
  for (const auto& f : fs) {
    EXPECT_NE(f.message.find("lock-order cycle"), std::string::npos);
    EXPECT_NE(f.message.find("PoolA::mu_a"), std::string::npos);
    EXPECT_NE(f.message.find("PoolB::mu_b"), std::string::npos);
  }
}

TEST(GraphLockOrder, ConsistentOrderIsSilent) {
  const auto one_sided =
      tree({{"src/core/ab.cc", read_fixture("lock_order_ab.cc")}});
  EXPECT_TRUE(a3cs_lint::check_lock_order(one_sided).empty());
}

TEST(GraphLockOrder, ForkUnderLockFiresOnlyInFleet) {
  const auto fleet =
      tree({{"src/fleet/spawn.cc", read_fixture("lock_fork.cc")}});
  const auto fs = a3cs_lint::check_lock_order(fleet);
  // spawn_locked's fork fires; spawn_clean's fork (guard scope closed) not.
  ASSERT_EQ(count_rule(fs, "conc-lock-order"), 1) << dump(fs);
  EXPECT_EQ(fs[0].line, 15);
  EXPECT_NE(fs[0].message.find("fork()"), std::string::npos);

  const auto core = tree({{"src/core/spawn.cc", read_fixture("lock_fork.cc")}});
  EXPECT_TRUE(a3cs_lint::check_lock_order(core).empty());
}

TEST(GraphLockOrder, InlineSuppressionSilencesFork) {
  const auto models =
      tree({{"src/fleet/spawn.cc", read_fixture("lock_fork_suppressed.cc")}});
  const auto fs = a3cs_lint::lint_tree(models, kTestLayers);
  EXPECT_EQ(count_rule(fs, "conc-lock-order"), 0) << dump(fs);
}

// ------------------------------------------------- ser-field-coverage ----

TEST(GraphSerCoverage, MissingFieldAndAggregateFieldFire) {
  const auto models = tree({{"src/rl/grid.cc", read_fixture("ser_cov.cc")}});
  const auto fs = a3cs_lint::check_ser_coverage(models);
  ASSERT_EQ(count_rule(fs, "ser-field-coverage"), 2) << dump(fs);
  bool saw_decay = false;
  bool saw_cols = false;
  for (const auto& f : fs) {
    saw_decay |= f.message.find("Grid::decay_") != std::string::npos;
    saw_cols |= f.message.find("Extent::cols") != std::string::npos;
  }
  EXPECT_TRUE(saw_decay) << dump(fs);
  EXPECT_TRUE(saw_cols) << dump(fs);
}

TEST(GraphSerCoverage, FullCoverageIsSilent) {
  const auto models =
      tree({{"src/rl/grid.cc", read_fixture("ser_cov_ok.cc")}});
  const auto fs = a3cs_lint::check_ser_coverage(models);
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(GraphSerCoverage, InlineSuppressionSilencesFields) {
  const auto models =
      tree({{"src/rl/grid.cc", read_fixture("ser_cov_suppressed.cc")}});
  const auto fs = a3cs_lint::lint_tree(models, kTestLayers);
  EXPECT_EQ(count_rule(fs, "ser-field-coverage"), 0) << dump(fs);
}

// ------------------------------------------------------- json report ----

TEST(Report, JsonRoundTripsFindings) {
  const std::vector<Finding> in = {
      {"src/a.cc", 3, "det-rand", "call to \"rand\" — use util\\rng\n\ttab"},
      {"src/b.h", 7, "arch-layering", "ünïcode and / slashes"},
  };
  const std::string text = a3cs_lint::render_json(in, 214);
  EXPECT_EQ(text.rfind("{\"schema\":\"a3cs-lint/1\",", 0), 0u) << text;
  EXPECT_EQ(text.back(), '\n');

  std::vector<Finding> out;
  std::size_t files = 0;
  ASSERT_TRUE(a3cs_lint::parse_json(text, &out, &files)) << text;
  EXPECT_EQ(files, 214u);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].path, in[i].path);
    EXPECT_EQ(out[i].line, in[i].line);
    EXPECT_EQ(out[i].rule, in[i].rule);
    EXPECT_EQ(out[i].message, in[i].message);
  }
  // Byte-stable: re-rendering the parsed findings reproduces the bytes.
  EXPECT_EQ(a3cs_lint::render_json(out, files), text);
}

TEST(Report, JsonParserIsStrict) {
  const std::string empty = a3cs_lint::render_json({}, 0);
  std::vector<Finding> out;
  std::size_t files = 99;
  EXPECT_TRUE(a3cs_lint::parse_json(empty, &out, &files));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(files, 0u);
  // files_scanned may be null.
  EXPECT_TRUE(a3cs_lint::parse_json(empty, &out, nullptr));

  EXPECT_FALSE(a3cs_lint::parse_json("", &out, nullptr));
  EXPECT_FALSE(a3cs_lint::parse_json("{}", &out, nullptr));
  EXPECT_FALSE(a3cs_lint::parse_json(empty + "x", &out, nullptr));
  std::string wrong_schema = empty;
  wrong_schema.replace(wrong_schema.find("a3cs-lint/1"), 11, "a3cs-lint/9");
  EXPECT_FALSE(a3cs_lint::parse_json(wrong_schema, &out, nullptr));
}

// ----------------------------------- parallel determinism (via binary) ----

// The whole-tree report must be byte-identical at any A3CS_THREADS value —
// the same determinism contract as the numeric kernels.
TEST(Lint, ParallelLintIsByteIdentical) {
  const fs::path out_dir = fs::path(::testing::TempDir()) / "a3cs_lint_par";
  fs::remove_all(out_dir);
  fs::create_directories(out_dir);
  const std::string bin = A3CS_LINT_BIN;
  const std::string root = A3CS_LINT_REPO_ROOT;

  auto run = [&](int threads, const std::string& extra, const fs::path& out) {
    const std::string cmd = "cd / && A3CS_THREADS=" + std::to_string(threads) +
                            " \"" + bin + "\" --repo-root \"" + root + "\"" +
                            extra + " > \"" + out.string() + "\" 2>/dev/null";
    const int rc = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(rc));
    EXPECT_EQ(WEXITSTATUS(rc), 0) << "tree must lint clean: " << cmd;
  };

  run(1, "", out_dir / "t1.txt");
  run(4, "", out_dir / "t4.txt");
  run(8, "", out_dir / "t8.txt");
  const std::string t1 = slurp(out_dir / "t1.txt");
  EXPECT_NE(t1.find("a3cs_lint: clean"), std::string::npos) << t1;
  EXPECT_EQ(t1, slurp(out_dir / "t4.txt"));
  EXPECT_EQ(t1, slurp(out_dir / "t8.txt"));

  run(1, " --json", out_dir / "j1.json");
  run(8, " --json", out_dir / "j8.json");
  const std::string j1 = slurp(out_dir / "j1.json");
  EXPECT_EQ(j1, slurp(out_dir / "j8.json"));
  std::vector<Finding> parsed;
  std::size_t files = 0;
  EXPECT_TRUE(a3cs_lint::parse_json(j1, &parsed, &files)) << j1;
  EXPECT_TRUE(parsed.empty());
  EXPECT_GT(files, 0u);
  fs::remove_all(out_dir);
}

// ---------------------------------- arch-layering e2e (via binary) ----

// End-to-end through the driver: a throwaway tree with an upward include
// fails, first on the missing layers.txt, then on the include itself, and a
// baseline entry restores exit 0.
TEST(Lint, LayeringBaselineThroughDriver) {
  const fs::path root =
      fs::path(::testing::TempDir()) / "a3cs_lint_layer_tree";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "nn");
  fs::create_directories(root / "src" / "serve");
  {
    std::ofstream bad(root / "src" / "nn" / "bad.cc");
    bad << "#include \"serve/x.h\"\nint f() { return 1; }\n";
  }
  {
    std::ofstream hdr(root / "src" / "serve" / "x.h");
    hdr << "#pragma once\nint g();\n";
  }
  const std::string bin = A3CS_LINT_BIN;
  auto run = [&](const std::string& extra) {
    const std::string cmd = "cd / && \"" + bin + "\" --repo-root \"" +
                            root.string() + "\"" + extra +
                            " > /dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    EXPECT_TRUE(WIFEXITED(rc));
    return WEXITSTATUS(rc);
  };

  // No layers.txt: the missing spec is itself a finding.
  EXPECT_EQ(run(""), 1);

  fs::create_directories(root / "tools" / "a3cs_lint");
  {
    std::ofstream layers(root / "tools" / "a3cs_lint" / "layers.txt");
    layers << "layer nn\nlayer serve\n";
  }
  EXPECT_EQ(run(""), 1);           // the upward include still fails
  EXPECT_EQ(run(" --graph-only"), 1);  // also through the fail-fast stage

  {
    std::ofstream base(root / "baseline.txt");
    base << "src/nn/bad.cc arch-layering\n";
  }
  EXPECT_EQ(
      run(" --baseline \"" + (root / "baseline.txt").string() + "\""), 0);
  fs::remove_all(root);
}

// ---------------------------------------------------------- catalog ----

TEST(Lint, RuleCatalogSortedAndComplete) {
  const auto catalog = a3cs_lint::rule_catalog();
  ASSERT_EQ(catalog.size(), 18u);
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].first, catalog[i].first);
  }
}

// ----------------------------------------- A3CK layout fingerprint ----

constexpr const char* kHeaderV3 =
    "#pragma once\n"
    "constexpr int kCkptFormatVersion = 3;\n"
    "struct SectionHeader { int kind; long payload_len; };\n";

TEST(Lint, FingerprintIgnoresCommentsAndWhitespace) {
  const std::string doc_edit =
      "#pragma once\n"
      "// A3CK on-disk layout. Bump kCkptFormatVersion when it changes.\n"
      "constexpr int kCkptFormatVersion = 3;\n\n"
      "struct SectionHeader {\n  int kind;\n  long payload_len;\n};\n";
  EXPECT_EQ(a3cs_lint::layout_fingerprint(kHeaderV3),
            a3cs_lint::layout_fingerprint(doc_edit));
  const std::string layout_edit =
      "#pragma once\n"
      "constexpr int kCkptFormatVersion = 3;\n"
      "struct SectionHeader { int kind; long payload_len; int crc; };\n";
  EXPECT_NE(a3cs_lint::layout_fingerprint(kHeaderV3),
            a3cs_lint::layout_fingerprint(layout_edit));
}

TEST(Lint, FingerprintParsesFormatVersion) {
  EXPECT_EQ(a3cs_lint::parse_format_version(kHeaderV3), 3);
  EXPECT_EQ(a3cs_lint::parse_format_version("struct S {};\n"), -1);
}

TEST(Lint, FingerprintMatchIsClean) {
  const std::string record = a3cs_lint::render_fingerprint_file(kHeaderV3);
  const auto fs = a3cs_lint::check_layout_fingerprint("src/ckpt/section_file.h",
                                                      kHeaderV3, record);
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Lint, FingerprintLayoutChangeWithoutBumpFires) {
  const std::string record = a3cs_lint::render_fingerprint_file(kHeaderV3);
  const std::string changed =
      "#pragma once\n"
      "constexpr int kCkptFormatVersion = 3;\n"
      "struct SectionHeader { int kind; long payload_len; int crc; };\n";
  const auto fs = a3cs_lint::check_layout_fingerprint("src/ckpt/section_file.h",
                                                      changed, record);
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].rule, "ser-layout-fingerprint");
}

TEST(Lint, FingerprintBumpWithoutRefreshFires) {
  const std::string record = a3cs_lint::render_fingerprint_file(kHeaderV3);
  const std::string bumped =
      "#pragma once\n"
      "constexpr int kCkptFormatVersion = 4;\n"
      "struct SectionHeader { int kind; long payload_len; int crc; };\n";
  const auto fs = a3cs_lint::check_layout_fingerprint("src/ckpt/section_file.h",
                                                      bumped, record);
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].rule, "ser-layout-fingerprint");
}

TEST(Lint, FingerprintMissingRecordFires) {
  const auto fs = a3cs_lint::check_layout_fingerprint("src/ckpt/section_file.h",
                                                      kHeaderV3, "");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].rule, "ser-layout-fingerprint");
}

// ------------------------------------------- baseline (via binary) ----

// End-to-end: seed a throwaway tree with a violation, confirm the binary
// fails on it, then confirm a baseline entry restores exit 0.
TEST(Lint, BaselineFileSilencesThroughDriver) {
  const fs::path root =
      fs::path(::testing::TempDir()) / "a3cs_lint_baseline_tree";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "rl");
  {
    std::ofstream out(root / "src" / "rl" / "bad.cc");
    out << "int f() { return rand(); }\n";
  }
  const std::string bin = A3CS_LINT_BIN;
  const std::string base = "\"" + bin + "\" --repo-root \"" + root.string() +
                           "\" src/rl/bad.cc > /dev/null 2>&1";

  const int without = std::system(("cd / && " + base).c_str());
  ASSERT_TRUE(WIFEXITED(without));
  EXPECT_EQ(WEXITSTATUS(without), 1);

  {
    std::ofstream out(root / "baseline.txt");
    out << "# temporary debt, tracked\n"
        << "src/rl/bad.cc det-rand\n";
  }
  const std::string with_baseline =
      "\"" + bin + "\" --repo-root \"" + root.string() + "\" --baseline \"" +
      (root / "baseline.txt").string() + "\" src/rl/bad.cc > /dev/null 2>&1";
  const int with = std::system(("cd / && " + with_baseline).c_str());
  ASSERT_TRUE(WIFEXITED(with));
  EXPECT_EQ(WEXITSTATUS(with), 0);
  fs::remove_all(root);
}

}  // namespace
