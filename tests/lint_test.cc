// Tests for the a3cs-lint rule engine (tools/a3cs_lint). Fixtures under
// tools/a3cs_lint/fixtures/ are linted through lint_source() with *virtual*
// paths, so one fixture exercises both sides of a path-scoped rule (e.g.
// det-wall-clock fires under src/nn/ but not bench/). The baseline
// suppression path goes through the real a3cs_lint binary (A3CS_LINT_BIN)
// against a throwaway tree, mirroring how ckpt_resume_test drives ckpt_run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.h"

namespace fs = std::filesystem;

namespace {

using a3cs_lint::Finding;
using a3cs_lint::lint_source;

std::string read_fixture(const std::string& name) {
  const fs::path p = fs::path(A3CS_LINT_FIXTURES) / name;
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lints fixture `name` as if it lived at repo-relative `virtual_path`.
std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& virtual_path) {
  return lint_source(virtual_path, read_fixture(name));
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  int n = 0;
  for (const auto& f : fs) n += (f.rule == rule) ? 1 : 0;
  return n;
}

std::string dump(const std::vector<Finding>& fs) {
  std::ostringstream out;
  for (const auto& f : fs) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

// ------------------------------------------------------- determinism ----

TEST(Lint, DetRandFiresOutsideUtil) {
  const auto fs = lint_fixture("det_rand.cc", "src/rl/sampler.cc");
  EXPECT_GE(count_rule(fs, "det-rand"), 3) << dump(fs);
  for (const auto& f : fs) {
    EXPECT_EQ(f.path, "src/rl/sampler.cc");
    EXPECT_GT(f.line, 0);
  }
}

TEST(Lint, DetRandExemptUnderUtil) {
  const auto fs = lint_fixture("det_rand.cc", "src/util/rng_extra.cc");
  EXPECT_EQ(count_rule(fs, "det-rand"), 0) << dump(fs);
}

TEST(Lint, DetTimeSeedFires) {
  const auto fs = lint_fixture("det_time_seed.cc", "src/rl/rollout.cc");
  EXPECT_GE(count_rule(fs, "det-time-seed"), 1) << dump(fs);
}

TEST(Lint, DetWallClockScopedToNumericDirs) {
  const auto in_nn = lint_fixture("det_wall_clock.cc", "src/nn/fused.cc");
  ASSERT_EQ(count_rule(in_nn, "det-wall-clock"), 1) << dump(in_nn);
  for (const auto& f : in_nn) {
    if (f.rule == "det-wall-clock") EXPECT_EQ(f.line, 6);
  }
  // Timing code in bench/ (and src/obs/) is the sanctioned home for clocks.
  const auto in_bench = lint_fixture("det_wall_clock.cc", "bench/fused.cc");
  EXPECT_EQ(count_rule(in_bench, "det-wall-clock"), 0) << dump(in_bench);
}

TEST(Lint, DetBenchClockFiresOnlyInBench) {
  const auto in_bench =
      lint_fixture("det_bench_clock.cc", "bench/bench_custom.cc");
  // system_clock and std::time() fire; steady_clock in the same file must
  // stay silent — it is the sanctioned monotonic source.
  EXPECT_EQ(count_rule(in_bench, "det-bench-clock"), 2) << dump(in_bench);
  const auto in_obs =
      lint_fixture("det_bench_clock.cc", "src/obs/perf/run_meta.cc");
  EXPECT_EQ(count_rule(in_obs, "det-bench-clock"), 0) << dump(in_obs);
}

TEST(Lint, DetUnorderedIterOnlyInSerializationBodies) {
  const auto fs = lint_fixture("det_unordered_iter.cc", "src/rl/registry.cc");
  // One hit in save_state; the keyed lookup and the non-serialized
  // iteration in the same file must stay silent.
  EXPECT_EQ(count_rule(fs, "det-unordered-iter"), 1) << dump(fs);
}

// ----------------------------------------------------- serialization ----

TEST(Lint, SerPairFlagsOneSidedClasses) {
  const auto fs = lint_fixture("ser_pair.cc", "src/nas/snapshot.cc");
  ASSERT_EQ(count_rule(fs, "ser-pair"), 2) << dump(fs);
  bool saw_save_only = false;
  bool saw_load_only = false;
  for (const auto& f : fs) {
    if (f.rule != "ser-pair") continue;
    saw_save_only |= f.message.find("SaveOnly") != std::string::npos;
    saw_load_only |= f.message.find("LoadOnly") != std::string::npos;
    // Paired and CallerOnly must not be named.
    EXPECT_EQ(f.message.find("Paired"), std::string::npos) << f.message;
    EXPECT_EQ(f.message.find("CallerOnly"), std::string::npos) << f.message;
  }
  EXPECT_TRUE(saw_save_only) << dump(fs);
  EXPECT_TRUE(saw_load_only) << dump(fs);
}

TEST(Lint, SerRawIoScopedToSerializationLayers) {
  const auto in_ckpt = lint_fixture("ser_raw_io.cc", "src/ckpt/header.cc");
  EXPECT_GE(count_rule(in_ckpt, "ser-raw-io"), 3) << dump(in_ckpt);
  // Outside src/ckpt/ and src/util/ raw byte IO is someone else's problem.
  const auto in_rl = lint_fixture("ser_raw_io.cc", "src/rl/header.cc");
  EXPECT_EQ(count_rule(in_rl, "ser-raw-io"), 0) << dump(in_rl);
  // The explicit-LE helpers are the one sanctioned home for raw IO.
  const auto in_sio = lint_fixture("ser_raw_io.cc", "src/util/state_io.cc");
  EXPECT_EQ(count_rule(in_sio, "ser-raw-io"), 0) << dump(in_sio);
}

// ------------------------------------------------------- concurrency ----

TEST(Lint, ConcRawThreadFiresOutsideThreadPool) {
  const auto fs = lint_fixture("conc_thread.cc", "src/das/worker.cc");
  EXPECT_GE(count_rule(fs, "conc-raw-thread"), 2) << dump(fs);
  const auto pool =
      lint_fixture("conc_thread.cc", "src/util/thread_pool.cc");
  EXPECT_EQ(count_rule(pool, "conc-raw-thread"), 0) << dump(pool);
}

TEST(Lint, ConcRawProcessConfinedToFleet) {
  // fork / execv / waitpid fire anywhere outside src/fleet/...
  const auto fs = lint_fixture("conc_process.cc", "src/core/runner.cc");
  EXPECT_EQ(count_rule(fs, "conc-raw-process"), 3) << dump(fs);
  // ...but the supervisor implementation itself is the sanctioned home...
  const auto fleet =
      lint_fixture("conc_process.cc", "src/fleet/supervisor.cc");
  EXPECT_EQ(count_rule(fleet, "conc-raw-process"), 0) << dump(fleet);
  // ...and member calls that happen to share a POSIX name never fire
  // (asserted via the exact count above: the fixture's sup.fork() /
  // sup->waitpid() lines are not among the three findings).
  for (const auto& f : fs) {
    if (f.rule == "conc-raw-process") EXPECT_LE(f.line, 19) << dump(fs);
  }
}

TEST(Lint, ConcStaticLocalAndMutableGlobal) {
  const auto fs = lint_fixture("conc_static.cc", "src/obs/stats.cc");
  ASSERT_EQ(count_rule(fs, "conc-mutable-global"), 1) << dump(fs);
  ASSERT_EQ(count_rule(fs, "conc-static-local"), 1) << dump(fs);
  for (const auto& f : fs) {
    if (f.rule == "conc-mutable-global") EXPECT_EQ(f.line, 10);
    if (f.rule == "conc-static-local") EXPECT_EQ(f.line, 16);
  }
}

// ---------------------------------------------------- architecture ----

TEST(Lint, ArchIntrinsicsScopedToBackendDir) {
  // Outside src/tensor/backend/ the include and every intrinsic fire; the
  // prose mention of immintrin.h in a comment must stay silent.
  const auto in_nn = lint_fixture("arch_intrinsics.cc", "src/nn/fast_math.cc");
  EXPECT_GE(count_rule(in_nn, "arch-intrinsics-scoped"), 5) << dump(in_nn);
  bool saw_include = false;
  for (const auto& f : in_nn) {
    if (f.rule != "arch-intrinsics-scoped") continue;
    EXPECT_NE(f.line, 6) << "comment mention fired: " << dump(in_nn);
    saw_include |= f.line == 4;
  }
  EXPECT_TRUE(saw_include) << dump(in_nn);

  // The backend directory is the sanctioned home for SIMD.
  const auto in_backend = lint_fixture(
      "arch_intrinsics.cc", "src/tensor/backend/kernels_avx2.cc");
  EXPECT_EQ(count_rule(in_backend, "arch-intrinsics-scoped"), 0)
      << dump(in_backend);
}

// ----------------------------------------------------------- hygiene ----

TEST(Lint, HygPragmaOnceRequiredInHeaders) {
  const auto fs = lint_fixture("hyg_missing_pragma.h", "src/util/value.h");
  EXPECT_EQ(count_rule(fs, "hyg-pragma-once"), 1) << dump(fs);
  // Non-headers are exempt.
  const auto cc = lint_source("src/util/value.cc",
                              read_fixture("hyg_missing_pragma.h"));
  EXPECT_EQ(count_rule(cc, "hyg-pragma-once"), 0) << dump(cc);
}

TEST(Lint, HygUsingNamespaceInHeader) {
  const auto fs = lint_fixture("hyg_using_namespace.h", "src/util/names.h");
  EXPECT_EQ(count_rule(fs, "hyg-using-namespace"), 1) << dump(fs);
  // A leading comment before #pragma once is fine.
  EXPECT_EQ(count_rule(fs, "hyg-pragma-once"), 0) << dump(fs);
}

// ------------------------------------------------------- suppression ----

TEST(Lint, InlineSuppressionSilencesSameLineAndLineAbove) {
  const auto fs = lint_fixture("suppressed.cc", "src/rl/sampler.cc");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Lint, SuppressionIsPerRule) {
  // A marker for the wrong rule must not silence the finding.
  const auto fs = lint_source(
      "src/rl/x.cc",
      "int f() { return rand(); }  // A3CS_LINT(conc-raw-thread)\n");
  EXPECT_EQ(count_rule(fs, "det-rand"), 1) << dump(fs);
}

TEST(Lint, CleanFixturePassesEverywhere) {
  for (const char* vpath : {"src/nn/clean.cc", "src/ckpt/clean.cc",
                            "src/obs/clean.cc", "tests/clean.cc"}) {
    const auto fs = lint_fixture("clean.cc", vpath);
    EXPECT_TRUE(fs.empty()) << vpath << "\n" << dump(fs);
  }
}

// ---------------------------------------------------------- catalog ----

TEST(Lint, RuleCatalogSortedAndComplete) {
  const auto catalog = a3cs_lint::rule_catalog();
  ASSERT_EQ(catalog.size(), 15u);
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].first, catalog[i].first);
  }
}

// ----------------------------------------- A3CK layout fingerprint ----

constexpr const char* kHeaderV3 =
    "#pragma once\n"
    "constexpr int kCkptFormatVersion = 3;\n"
    "struct SectionHeader { int kind; long payload_len; };\n";

TEST(Lint, FingerprintIgnoresCommentsAndWhitespace) {
  const std::string doc_edit =
      "#pragma once\n"
      "// A3CK on-disk layout. Bump kCkptFormatVersion when it changes.\n"
      "constexpr int kCkptFormatVersion = 3;\n\n"
      "struct SectionHeader {\n  int kind;\n  long payload_len;\n};\n";
  EXPECT_EQ(a3cs_lint::layout_fingerprint(kHeaderV3),
            a3cs_lint::layout_fingerprint(doc_edit));
  const std::string layout_edit =
      "#pragma once\n"
      "constexpr int kCkptFormatVersion = 3;\n"
      "struct SectionHeader { int kind; long payload_len; int crc; };\n";
  EXPECT_NE(a3cs_lint::layout_fingerprint(kHeaderV3),
            a3cs_lint::layout_fingerprint(layout_edit));
}

TEST(Lint, FingerprintParsesFormatVersion) {
  EXPECT_EQ(a3cs_lint::parse_format_version(kHeaderV3), 3);
  EXPECT_EQ(a3cs_lint::parse_format_version("struct S {};\n"), -1);
}

TEST(Lint, FingerprintMatchIsClean) {
  const std::string record = a3cs_lint::render_fingerprint_file(kHeaderV3);
  const auto fs = a3cs_lint::check_layout_fingerprint("src/ckpt/section_file.h",
                                                      kHeaderV3, record);
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Lint, FingerprintLayoutChangeWithoutBumpFires) {
  const std::string record = a3cs_lint::render_fingerprint_file(kHeaderV3);
  const std::string changed =
      "#pragma once\n"
      "constexpr int kCkptFormatVersion = 3;\n"
      "struct SectionHeader { int kind; long payload_len; int crc; };\n";
  const auto fs = a3cs_lint::check_layout_fingerprint("src/ckpt/section_file.h",
                                                      changed, record);
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].rule, "ser-layout-fingerprint");
}

TEST(Lint, FingerprintBumpWithoutRefreshFires) {
  const std::string record = a3cs_lint::render_fingerprint_file(kHeaderV3);
  const std::string bumped =
      "#pragma once\n"
      "constexpr int kCkptFormatVersion = 4;\n"
      "struct SectionHeader { int kind; long payload_len; int crc; };\n";
  const auto fs = a3cs_lint::check_layout_fingerprint("src/ckpt/section_file.h",
                                                      bumped, record);
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].rule, "ser-layout-fingerprint");
}

TEST(Lint, FingerprintMissingRecordFires) {
  const auto fs = a3cs_lint::check_layout_fingerprint("src/ckpt/section_file.h",
                                                      kHeaderV3, "");
  ASSERT_EQ(fs.size(), 1u) << dump(fs);
  EXPECT_EQ(fs[0].rule, "ser-layout-fingerprint");
}

// ------------------------------------------- baseline (via binary) ----

// End-to-end: seed a throwaway tree with a violation, confirm the binary
// fails on it, then confirm a baseline entry restores exit 0.
TEST(Lint, BaselineFileSilencesThroughDriver) {
  const fs::path root =
      fs::path(::testing::TempDir()) / "a3cs_lint_baseline_tree";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "rl");
  {
    std::ofstream out(root / "src" / "rl" / "bad.cc");
    out << "int f() { return rand(); }\n";
  }
  const std::string bin = A3CS_LINT_BIN;
  const std::string base = "\"" + bin + "\" --repo-root \"" + root.string() +
                           "\" src/rl/bad.cc > /dev/null 2>&1";

  const int without = std::system(("cd / && " + base).c_str());
  ASSERT_TRUE(WIFEXITED(without));
  EXPECT_EQ(WEXITSTATUS(without), 1);

  {
    std::ofstream out(root / "baseline.txt");
    out << "# temporary debt, tracked\n"
        << "src/rl/bad.cc det-rand\n";
  }
  const std::string with_baseline =
      "\"" + bin + "\" --repo-root \"" + root.string() + "\" --baseline \"" +
      (root / "baseline.txt").string() + "\" src/rl/bad.cc > /dev/null 2>&1";
  const int with = std::system(("cd / && " + with_baseline).c_str());
  ASSERT_TRUE(WIFEXITED(with));
  EXPECT_EQ(WEXITSTATUS(with), 0);
  fs::remove_all(root);
}

}  // namespace
