#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "grad_check.h"
#include "nas/arch.h"
#include "nas/gumbel.h"
#include "nas/mixed_op.h"
#include "nas/ops.h"
#include "nas/supernet.h"
#include "nn/obs_spec.h"

namespace a3cs {
namespace {

using nn::Shape;
using nn::Tensor;

const nn::ObsSpec kObs{3, 12, 12};

// ------------------------------------------------------ GumbelCategorical --

TEST(Gumbel, SampleIsValidDistribution) {
  nas::GumbelCategorical cat("c", 5);
  util::Rng rng(1);
  const auto s = cat.sample(rng, 1.0);
  EXPECT_GE(s.index, 0);
  EXPECT_LT(s.index, 5);
  double sum = 0.0;
  for (float y : s.relaxed) {
    EXPECT_GE(y, 0.0f);
    sum += y;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(Gumbel, HardIndexIsRelaxedArgmax) {
  nas::GumbelCategorical cat("c", 7);
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = cat.sample(rng, 0.7);
    int best = 0;
    for (int i = 1; i < 7; ++i) {
      if (s.relaxed[static_cast<std::size_t>(i)] >
          s.relaxed[static_cast<std::size_t>(best)]) {
        best = i;
      }
    }
    EXPECT_EQ(s.index, best);
  }
}

TEST(Gumbel, SamplingFrequenciesFollowLogits) {
  nas::GumbelCategorical cat("c", 3);
  cat.param().value[0] = 0.0f;
  cat.param().value[1] = 1.0f;
  cat.param().value[2] = 2.0f;
  util::Rng rng(3);
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(cat.sample(rng, 1.0).index)];
  // Gumbel-max sampling is exactly softmax(logits) sampling.
  const double z = 1.0 + std::exp(1.0) + std::exp(2.0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / z, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), std::exp(2.0) / z, 0.015);
}

TEST(Gumbel, LowTemperatureSharpens) {
  nas::GumbelCategorical cat("c", 4);
  cat.param().value[2] = 3.0f;
  util::Rng rng1(4), rng2(4);
  const auto hot = cat.sample(rng1, 10.0);
  const auto cold = cat.sample(rng2, 0.1);
  // Same Gumbel noise; the colder sample concentrates more mass on argmax.
  EXPECT_GT(cold.relaxed[static_cast<std::size_t>(cold.index)],
            hot.relaxed[static_cast<std::size_t>(hot.index)]);
}

TEST(Gumbel, ProbabilitiesAreSoftmax) {
  nas::GumbelCategorical cat("c", 3);
  cat.param().value[0] = 1.0f;
  cat.param().value[1] = 2.0f;
  cat.param().value[2] = 0.5f;
  const auto p = cat.probabilities(1.0);
  const double z = std::exp(1.0) + std::exp(2.0) + std::exp(0.5);
  EXPECT_NEAR(p[0], std::exp(1.0) / z, 1e-5);
  EXPECT_NEAR(p[1], std::exp(2.0) / z, 1e-5);
  EXPECT_EQ(cat.argmax(), 1);
}

TEST(Gumbel, AccumulateGradMatchesRelaxedJacobian) {
  // dL/dl_i = (1/tau) * sum_k s_k y_k (delta_ki - y_i): verify against a
  // direct finite-difference of f(l) = sum_k s_k softmax((l+g)/tau)_k with
  // frozen Gumbel noise (we emulate by treating the relaxed probs as the
  // softmax and recomputing the Jacobian analytically).
  nas::GumbelCategorical cat("c", 4);
  util::Rng rng(5);
  const double tau = 1.3;
  const auto s = cat.sample(rng, tau);
  const std::vector<float> sens = {0.5f, -1.0f, 2.0f, 0.25f};
  cat.accumulate_grad(s, sens, tau);
  for (int i = 0; i < 4; ++i) {
    double expected = 0.0;
    for (int k = 0; k < 4; ++k) {
      const double dyk =
          s.relaxed[static_cast<std::size_t>(k)] *
          ((k == i ? 1.0 : 0.0) - s.relaxed[static_cast<std::size_t>(i)]) /
          tau;
      expected += sens[static_cast<std::size_t>(k)] * dyk;
    }
    EXPECT_NEAR(cat.param().grad[i], expected, 1e-5);
  }
}

TEST(Gumbel, GradSumsToZero) {
  // Softmax Jacobian rows sum to zero: so must the accumulated gradient.
  nas::GumbelCategorical cat("c", 6);
  util::Rng rng(6);
  const auto s = cat.sample(rng, 0.9);
  std::vector<float> sens(6, 0.0f);
  sens[static_cast<std::size_t>(s.index)] = 3.0f;
  cat.accumulate_grad(s, sens, 0.9);
  double sum = 0.0;
  for (int i = 0; i < 6; ++i) sum += cat.param().grad[i];
  EXPECT_NEAR(sum, 0.0, 1e-5);
}

// ------------------------------------------------------- candidate ops ----

TEST(CandidateOps, NineOperatorsAsInPaper) {
  const auto& ops = nas::candidate_ops();
  ASSERT_EQ(ops.size(), 9u);  // conv3/5, ir{3,5}x{1,3,5}, skip
  int convs = 0, irs = 0, skips = 0;
  for (const auto& op : ops) {
    if (op.is_skip) ++skips;
    else if (op.expansion == 0) ++convs;
    else ++irs;
  }
  EXPECT_EQ(convs, 2);
  EXPECT_EQ(irs, 6);
  EXPECT_EQ(skips, 1);
}

class CandidateOpTest : public ::testing::TestWithParam<int> {};

TEST_P(CandidateOpTest, AllOpsProduceSameOutputShape) {
  util::Rng rng(7);
  const int op = GetParam();
  for (const int stride : {1, 2}) {
    auto m = nas::make_candidate(op, "op", 4, 8, stride, rng);
    Tensor x(Shape::nchw(2, 4, 6, 6), 0.5f);
    const Tensor y = m->forward(x);
    EXPECT_EQ(y.shape(), Shape::nchw(2, 8, stride == 1 ? 6 : 3,
                                     stride == 1 ? 6 : 3))
        << "op " << op << " stride " << stride;
  }
}

TEST_P(CandidateOpTest, SpecsMatchModuleParameterCount) {
  util::Rng rng(8);
  const int op = GetParam();
  auto m = nas::make_candidate(op, "op", 4, 8, 2, rng);
  const auto specs = nas::candidate_specs(op, "op", 4, 8, 2, 6, 6);
  std::int64_t module_params = 0;
  std::vector<nn::Parameter*> params;
  m->collect_parameters(params);
  for (auto* p : params) module_params += p->numel();
  EXPECT_EQ(nn::network_params(specs), module_params);
}

TEST_P(CandidateOpTest, GradCheck) {
  util::Rng rng(9);
  auto m = nas::make_candidate(GetParam(), "op", 3, 5, 2, rng);
  testing::GradCheckOptions opt;
  opt.rel_tol = 0.15f;
  opt.abs_tol = 5e-2f;
  testing::check_module_gradients(*m, Shape::nchw(2, 3, 6, 6), 999, opt);
}

INSTANTIATE_TEST_SUITE_P(AllNine, CandidateOpTest, ::testing::Range(0, 9));

TEST(CandidateOps, SkipHasNoParametersOrMacs) {
  const auto specs = nas::candidate_specs(8, "op", 4, 8, 2, 6, 6);
  EXPECT_TRUE(specs.empty());
  util::Rng rng(10);
  auto m = nas::make_candidate(8, "op", 4, 8, 2, rng);
  std::vector<nn::Parameter*> params;
  m->collect_parameters(params);
  EXPECT_TRUE(params.empty());
}

// -------------------------------------------------------------- MixedOp ---

TEST(MixedOp, ForwardActivatesExactlyOneSampledPath) {
  util::Rng rng(11), sampler(12);
  double tau = 5.0;
  nas::MixedOp mixed("cell", 3, 6, 1, rng, &sampler, &tau, 2);
  Tensor x(Shape::nchw(1, 3, 6, 6), 0.3f);
  std::set<int> seen;
  for (int i = 0; i < 40; ++i) {
    mixed.forward(x);
    const int c = mixed.last_choice();
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 9);
    seen.insert(c);
    // complete the fwd/bwd pair so caches stay consistent
    Tensor g(Shape::nchw(1, 6, 6, 6), 0.01f);
    mixed.backward(g);
  }
  // With uniform alpha and tau=5, sampling must explore several ops.
  EXPECT_GE(seen.size(), 4u);
}

TEST(MixedOp, ArgmaxModeIsDeterministic) {
  util::Rng rng(13), sampler(14);
  double tau = 5.0;
  nas::MixedOp mixed("cell", 3, 6, 1, rng, &sampler, &tau, 2);
  mixed.alpha().param().value[4] = 5.0f;
  mixed.set_argmax_mode(true);
  Tensor x(Shape::nchw(1, 3, 6, 6), 0.3f);
  for (int i = 0; i < 5; ++i) {
    mixed.forward(x);
    EXPECT_EQ(mixed.last_choice(), 4);
  }
  EXPECT_EQ(mixed.best_choice(), 4);
}

TEST(MixedOp, BackwardAccumulatesAlphaGradient) {
  util::Rng rng(15), sampler(16);
  double tau = 2.0;
  nas::MixedOp mixed("cell", 3, 6, 1, rng, &sampler, &tau, 3);
  Tensor x(Shape::nchw(2, 3, 6, 6), 0.4f);
  mixed.forward(x);
  Tensor g(Shape::nchw(2, 6, 6, 6), 0.05f);
  mixed.backward(g);
  EXPECT_GT(mixed.alpha().param().grad.abs_max(), 0.0f);
  // Gradient must sum to ~0 (softmax Jacobian property).
  double sum = 0.0;
  for (int i = 0; i < 9; ++i) sum += mixed.alpha().param().grad[i];
  EXPECT_NEAR(sum, 0.0, 1e-4);
}

TEST(MixedOp, ArgmaxModeProducesNoAlphaGradient) {
  util::Rng rng(17), sampler(18);
  double tau = 2.0;
  nas::MixedOp mixed("cell", 3, 6, 1, rng, &sampler, &tau, 2);
  mixed.set_argmax_mode(true);
  Tensor x(Shape::nchw(1, 3, 6, 6), 0.4f);
  mixed.forward(x);
  mixed.backward(Tensor(Shape::nchw(1, 6, 6, 6), 0.05f));
  EXPECT_FLOAT_EQ(mixed.alpha().param().grad.abs_max(), 0.0f);
}

TEST(MixedOp, WeightParamsExcludeAlpha) {
  util::Rng rng(19), sampler(20);
  double tau = 1.0;
  nas::MixedOp mixed("cell", 3, 6, 1, rng, &sampler, &tau, 2);
  std::vector<nn::Parameter*> params;
  mixed.collect_parameters(params);
  for (const auto* p : params) {
    EXPECT_EQ(p->name.find("alpha"), std::string::npos);
  }
}

// ---------------------------------------------------------- search space --

TEST(SearchSpace, PaperSizeIsNineToTheTwelve) {
  nas::SearchSpaceConfig cfg;
  EXPECT_EQ(cfg.num_cells, 12);
  EXPECT_DOUBLE_EQ(nas::search_space_size(cfg), std::pow(9.0, 12.0));
}

TEST(SearchSpace, GeometryFollowsResNetStaging) {
  nas::SearchSpaceConfig cfg;
  cfg.num_cells = 12;
  cfg.base_width = 8;
  const auto g = nas::space_geometry(kObs, cfg);
  ASSERT_EQ(g.cells.size(), 12u);
  EXPECT_EQ(g.stem.stride, 2);
  // Stage widths 8, 16, 32 with stride-2 transitions at cells 4 and 8.
  EXPECT_EQ(g.cells[0].out_c, 8);
  EXPECT_EQ(g.cells[4].out_c, 16);
  EXPECT_EQ(g.cells[4].stride, 2);
  EXPECT_EQ(g.cells[8].out_c, 32);
  EXPECT_EQ(g.cells[8].stride, 2);
  EXPECT_EQ(g.feature_dim, 256);
  // Geometry chains: each cell's input is the previous cell's output.
  for (std::size_t i = 1; i < g.cells.size(); ++i) {
    EXPECT_EQ(g.cells[i].in_c, g.cells[i - 1].out_c);
    EXPECT_EQ(g.cells[i].in_h, g.cells[i - 1].out_h);
  }
}

TEST(DerivedArch, ToStringAndRandom) {
  nas::SearchSpaceConfig cfg;
  cfg.num_cells = 3;
  util::Rng rng(21);
  const auto arch = nas::DerivedArch::random(cfg, rng);
  EXPECT_EQ(arch.choices.size(), 3u);
  const std::string s = arch.to_string();
  EXPECT_EQ(std::count(s.begin(), s.end(), '-'), 2);
}

TEST(DerivedArch, FromStringRoundTrips) {
  nas::SearchSpaceConfig cfg;
  cfg.num_cells = 5;
  util::Rng rng(77);
  const auto arch = nas::DerivedArch::random(cfg, rng);
  const auto parsed = nas::DerivedArch::from_string(arch.to_string());
  EXPECT_EQ(parsed.choices, arch.choices);
}

TEST(DerivedArch, FromStringRejectsUnknownOp) {
  EXPECT_THROW(nas::DerivedArch::from_string("conv3-warpdrive"),
               std::runtime_error);
}

TEST(DerivedArch, BuildMatchesSpecs) {
  nas::SearchSpaceConfig cfg;
  cfg.num_cells = 6;
  util::Rng rng(22);
  const auto arch = nas::DerivedArch::random(cfg, rng);
  auto bb = nas::build_derived_backbone(arch, kObs, cfg, rng);
  const auto specs = nas::derived_specs(arch, kObs, cfg);
  ASSERT_EQ(bb.specs.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(bb.specs[i].macs(), specs[i].macs());
    EXPECT_EQ(bb.specs[i].group, specs[i].group);
  }
  // Runnable end to end.
  Tensor x(Shape::nchw(2, 3, 12, 12), 0.2f);
  const Tensor y = bb.module->forward(x);
  EXPECT_EQ(y.shape(), Shape::mat(2, 256));
}

TEST(DerivedArch, SpecGroupsMapCells) {
  nas::SearchSpaceConfig cfg;
  cfg.num_cells = 6;
  nas::DerivedArch arch;
  arch.choices = {0, 1, 2, 3, 4, 5};  // mixed ops, no skip
  const auto specs = nas::derived_specs(arch, kObs, cfg);
  EXPECT_EQ(specs.front().group, 0);                    // stem
  EXPECT_EQ(specs.back().group, 7);                     // fc
  EXPECT_EQ(nn::num_groups(specs), 8);
}

// ------------------------------------------------------------- Supernet ---

TEST(Supernet, ForwardBackwardShapes) {
  nas::SupernetConfig cfg;
  cfg.space.num_cells = 6;
  util::Rng rng(23);
  nas::Supernet net(kObs, cfg, rng);
  EXPECT_EQ(net.num_cells(), 6);
  EXPECT_EQ(net.feature_dim(), 256);
  Tensor x(Shape::nchw(3, 3, 12, 12), 0.25f);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), Shape::mat(3, 256));
  const Tensor dx = net.backward(Tensor(y.shape(), 0.01f));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Supernet, AlphaParamsSeparateFromWeights) {
  nas::SupernetConfig cfg;
  cfg.space.num_cells = 6;
  util::Rng rng(24);
  nas::Supernet net(kObs, cfg, rng);
  const auto alphas = net.alpha_params();
  EXPECT_EQ(alphas.size(), 6u);
  std::vector<nn::Parameter*> weights;
  net.collect_parameters(weights);
  for (auto* a : alphas) {
    EXPECT_EQ(std::find(weights.begin(), weights.end(), a), weights.end());
  }
}

TEST(Supernet, BackwardFillsAlphaAndWeightGrads) {
  nas::SupernetConfig cfg;
  cfg.space.num_cells = 6;
  util::Rng rng(25);
  nas::Supernet net(kObs, cfg, rng);
  Tensor x(Shape::nchw(2, 3, 12, 12), 0.25f);
  const Tensor y = net.forward(x);
  net.backward(Tensor(y.shape(), 0.02f));
  float alpha_grad = 0.0f;
  for (auto* a : net.alpha_params()) alpha_grad += a->grad.abs_max();
  EXPECT_GT(alpha_grad, 0.0f);
  net.zero_alpha_grads();
  for (auto* a : net.alpha_params()) EXPECT_FLOAT_EQ(a->grad.abs_max(), 0.0f);
}

TEST(Supernet, TemperatureDecay) {
  nas::SupernetConfig cfg;
  cfg.space.num_cells = 6;
  cfg.tau_init = 5.0;   // paper
  cfg.tau_decay = 0.98; // paper
  util::Rng rng(26);
  nas::Supernet net(kObs, cfg, rng);
  EXPECT_DOUBLE_EQ(net.temperature(), 5.0);
  net.decay_temperature();
  EXPECT_DOUBLE_EQ(net.temperature(), 4.9);
}

TEST(Supernet, DeriveUsesArgmaxAlpha) {
  nas::SupernetConfig cfg;
  cfg.space.num_cells = 6;
  util::Rng rng(27);
  nas::Supernet net(kObs, cfg, rng);
  for (int c = 0; c < 6; ++c) {
    net.cell(c).alpha().param().value[c % 9] = 4.0f;
  }
  const auto arch = net.derive();
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(arch.choices[static_cast<std::size_t>(c)], c % 9);
  }
}

TEST(Supernet, SpecsForChoicesConsistentWithDerived) {
  nas::SupernetConfig cfg;
  cfg.space.num_cells = 6;
  util::Rng rng(28);
  nas::Supernet net(kObs, cfg, rng);
  std::vector<int> choices = {0, 3, 8, 1, 5, 2};
  const auto specs = net.specs_for(choices);
  nas::DerivedArch arch;
  arch.choices = choices;
  const auto ref = nas::derived_specs(arch, kObs, cfg.space);
  ASSERT_EQ(specs.size(), ref.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].macs(), ref[i].macs());
    EXPECT_EQ(specs[i].group, ref[i].group);
  }
}

TEST(Supernet, CellSpecsReflectOpCost) {
  nas::SupernetConfig cfg;
  cfg.space.num_cells = 6;
  util::Rng rng(29);
  nas::Supernet net(kObs, cfg, rng);
  // conv5 (op 1) must cost more MACs than conv3 (op 0); skip (op 8) zero.
  const auto conv3 = net.cell_specs(0, 0);
  const auto conv5 = net.cell_specs(0, 1);
  const auto skip = net.cell_specs(0, 8);
  EXPECT_GT(nn::network_macs(conv5), nn::network_macs(conv3));
  EXPECT_EQ(nn::network_macs(skip), 0);
}

TEST(Supernet, PaperScaleTwelveCellSpace) {
  // The paper's full 12-cell space (9^12 architectures) must build and run.
  nas::SupernetConfig cfg;
  cfg.space.num_cells = 12;
  util::Rng rng(31);
  nas::Supernet net(kObs, cfg, rng);
  EXPECT_EQ(net.num_cells(), 12);
  EXPECT_NEAR(nas::search_space_size(cfg.space), std::pow(9.0, 12.0), 1.0);
  Tensor x(Shape::nchw(1, 3, 12, 12), 0.2f);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), Shape::mat(1, 256));
  net.backward(Tensor(y.shape(), 0.01f));
  float alpha_grad = 0.0f;
  for (auto* a : net.alpha_params()) alpha_grad += a->grad.abs_max();
  EXPECT_GT(alpha_grad, 0.0f);
  // Derived 12-cell nets build and match their specs.
  const auto arch = net.derive();
  const auto specs = net.specs_for(arch.choices);
  util::Rng rng2(32);
  auto bb = nas::build_derived_backbone(arch, kObs, cfg.space, rng2);
  EXPECT_EQ(nn::network_macs(bb.specs), nn::network_macs(specs));
}

TEST(Supernet, SampledChoicesVaryAcrossForwards) {
  nas::SupernetConfig cfg;
  cfg.space.num_cells = 6;
  util::Rng rng(30);
  nas::Supernet net(kObs, cfg, rng);
  Tensor x(Shape::nchw(1, 3, 12, 12), 0.2f);
  std::set<std::vector<int>> seen;
  for (int i = 0; i < 10; ++i) {
    net.forward(x);
    seen.insert(net.last_choices());
  }
  EXPECT_GE(seen.size(), 3u);
}

}  // namespace
}  // namespace a3cs
