// Fault-injection helper for the kill-and-resume checkpoint test
// (ckpt_resume_test.cc). Runs a tiny co-search with per-iteration
// checkpointing and can simulate
//   - a hard crash: _Exit(17) mid-callback at a given iteration (no
//     destructors, no flushes — exactly what a kill -9 leaves behind), or
//   - a graceful signal: raise(SIGTERM) at a given iteration, exercising the
//     StopSignalGuard -> final-checkpoint -> clean-return path.
// On normal completion it writes a canonical dump of the final search state
// (theta, alpha, full DAS state, counters) to <out_file>; the driver compares
// dumps byte-for-byte between an uninterrupted run and a crash+resume run.
//
// Usage:
//   ckpt_run <total_iters> <ckpt_dir|-> <out_file|-> <resume 0|1>
//            <die_at_iter|0> <sigterm_at_iter|0>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ckpt/signal.h"
#include "core/cosearch.h"
#include "rl/a2c.h"
#include "tensor/serialize.h"
#include "util/atomic_file.h"
#include "util/state_io.h"

using namespace a3cs;

int main(int argc, char** argv) {
  if (argc != 7) {
    std::cerr << "usage: ckpt_run <total_iters> <ckpt_dir|-> <out_file|-> "
                 "<resume 0|1> <die_at_iter|0> <sigterm_at_iter|0>\n";
    return 2;
  }
  const long long total_iters = std::atoll(argv[1]);
  const std::string ckpt_dir = argv[2];
  const std::string out_file = argv[3];
  const bool resume = std::atoi(argv[4]) != 0;
  const long long die_at = std::atoll(argv[5]);
  const long long sigterm_at = std::atoll(argv[6]);

  core::CoSearchConfig cfg;
  cfg.supernet.space.num_cells = 3;
  cfg.a2c.num_envs = 2;
  cfg.a2c.rollout_len = 4;
  cfg.a2c.loss = rl::no_distill_coefficients();
  cfg.das.samples_per_iter = 2;
  cfg.tau_decay_every_frames = 64;
  if (ckpt_dir != "-") {
    cfg.ckpt.dir = ckpt_dir;
    cfg.ckpt.every_iters = 1;
    cfg.ckpt.keep = 3;
    cfg.ckpt.resume = resume;
  }
  const long long frames_per_iter =
      static_cast<long long>(cfg.a2c.num_envs) * cfg.a2c.rollout_len;

  ckpt::clear_stop();
  core::CoSearchEngine engine("Catch", cfg, nullptr);
  engine.run(
      total_iters * frames_per_iter,
      [&](std::int64_t frames) {
        const long long iter = frames / frames_per_iter;
        if (die_at > 0 && iter >= die_at) {
          std::_Exit(17);  // simulated crash: no unwinding, no flushing
        }
        if (sigterm_at > 0 && iter >= sigterm_at) {
          std::raise(SIGTERM);
        }
      },
      frames_per_iter);

  if (out_file != "-") {
    std::ostringstream oss;
    engine.net().save_params(oss);
    for (auto* p : engine.supernet().alpha_params()) {
      tensor::write_tensor(oss, p->value);
    }
    engine.das_engine().save_state(oss);
    util::sio::put_i64(oss, engine.iterations());
    util::sio::put_f64(oss, engine.supernet().temperature());
    util::atomic_write_file(out_file, oss.str());
  }
  return 0;
}
