#include <gtest/gtest.h>

#include <cmath>

#include "nn/module.h"
#include "nn/optim.h"

namespace a3cs {
namespace {

using nn::Parameter;
using nn::Shape;
using nn::Tensor;

Parameter make_param(std::vector<float> value, std::vector<float> grad) {
  Parameter p("p", Shape::vec(static_cast<int>(value.size())));
  p.value = Tensor(p.value.shape(), std::move(value));
  p.grad = Tensor(p.grad.shape(), std::move(grad));
  return p;
}

// ------------------------------------------------------------------ SGD ---

TEST(Sgd, PlainStep) {
  Parameter p = make_param({1.0f, 2.0f}, {0.5f, -0.5f});
  nn::Sgd opt(0.1);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], 2.0f + 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p = make_param({0.0f}, {1.0f});
  nn::Sgd opt(0.1, 0.9);
  opt.step({&p});  // v = 1, w = -0.1
  EXPECT_FLOAT_EQ(p.value[0], -0.1f);
  opt.step({&p});  // v = 0.9 + 1 = 1.9, w = -0.1 - 0.19 = -0.29
  EXPECT_NEAR(p.value[0], -0.29f, 1e-6);
}

TEST(Sgd, LearningRateSettable) {
  nn::Sgd opt(0.1);
  opt.set_learning_rate(0.01);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.01);
}

// -------------------------------------------------------------- RMSProp ---

TEST(RmsProp, FirstStepMatchesFormula) {
  Parameter p = make_param({1.0f}, {2.0f});
  const double alpha = 0.99, eps = 1e-5, lr = 0.1;
  nn::RmsProp opt(lr, alpha, eps);
  opt.step({&p});
  const double v = (1 - alpha) * 4.0;
  const double expected = 1.0 - lr * 2.0 / (std::sqrt(v) + eps);
  EXPECT_NEAR(p.value[0], expected, 1e-6);
}

TEST(RmsProp, StateIsPerParameter) {
  Parameter p1 = make_param({0.0f}, {1.0f});
  Parameter p2 = make_param({0.0f}, {100.0f});
  nn::RmsProp opt(0.1);
  opt.step({&p1, &p2});
  // RMS normalization: both should move by roughly lr / sqrt(1-alpha).
  EXPECT_NEAR(p1.value[0] / p2.value[0], 1.0, 1e-2);
}

// ----------------------------------------------------------------- Adam ---

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the very first Adam step is ~lr * sign(g).
  Parameter p = make_param({0.0f}, {3.0f});
  nn::Adam opt(0.01);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], -0.01, 1e-4);
}

TEST(Adam, MatchesReferenceImplementation) {
  Parameter p = make_param({1.0f}, {0.5f});
  const double lr = 0.1, b1 = 0.9, b2 = 0.999, eps = 1e-8;
  nn::Adam opt(lr, b1, b2, eps);

  double m = 0, v = 0, w = 1.0;
  std::vector<double> grads = {0.5, -0.2, 0.7};
  for (std::size_t t = 0; t < grads.size(); ++t) {
    p.grad[0] = static_cast<float>(grads[t]);
    opt.step({&p});
    m = b1 * m + (1 - b1) * grads[t];
    v = b2 * v + (1 - b2) * grads[t] * grads[t];
    const double mh = m / (1 - std::pow(b1, static_cast<double>(t + 1)));
    const double vh = v / (1 - std::pow(b2, static_cast<double>(t + 1)));
    w -= lr * mh / (std::sqrt(vh) + eps);
    EXPECT_NEAR(p.value[0], w, 1e-5) << "step " << t;
  }
}

// ------------------------------------------------- convergence checks -----

class QuadraticConvergence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(QuadraticConvergence, MinimizesQuadratic) {
  // f(w) = 0.5 * ||w - target||^2, grad = w - target.
  Parameter p = make_param({5.0f, -3.0f, 2.0f}, {0, 0, 0});
  const std::vector<float> target = {1.0f, 1.0f, -1.0f};
  std::unique_ptr<nn::Optimizer> opt;
  const std::string name = GetParam();
  if (name == "sgd") opt = std::make_unique<nn::Sgd>(0.2);
  else if (name == "sgdm") opt = std::make_unique<nn::Sgd>(0.05, 0.9);
  else if (name == "rmsprop") opt = std::make_unique<nn::RmsProp>(0.05);
  else opt = std::make_unique<nn::Adam>(0.2);

  for (int it = 0; it < 400; ++it) {
    for (int i = 0; i < 3; ++i) {
      p.grad[i] = p.value[i] - target[static_cast<std::size_t>(i)];
    }
    opt->step({&p});
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(p.value[i], target[static_cast<std::size_t>(i)], 0.05)
        << name << " dim " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, QuadraticConvergence,
                         ::testing::Values("sgd", "sgdm", "rmsprop", "adam"));

// ------------------------------------------------------------ schedule ----

TEST(LinearLrSchedule, HoldsThenDecays) {
  nn::LinearLrSchedule s(1e-3, 1e-4, 100, 1000);
  EXPECT_DOUBLE_EQ(s.at(0), 1e-3);
  EXPECT_DOUBLE_EQ(s.at(100), 1e-3);
  EXPECT_DOUBLE_EQ(s.at(1000), 1e-4);
  EXPECT_DOUBLE_EQ(s.at(5000), 1e-4);
  const double mid = s.at(550);  // halfway through the decay
  EXPECT_NEAR(mid, (1e-3 + 1e-4) / 2, 1e-9);
  EXPECT_LT(s.at(700), s.at(300));
}

}  // namespace
}  // namespace a3cs
