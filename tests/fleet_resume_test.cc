// End-to-end fleet fault injection (the supervisor's correctness bar): a
// fleet whose workers are hard-killed, hung, or handed a corrupted tip
// checkpoint mid-run must converge to a frontier BYTE-IDENTICAL to an
// unkilled run over the same seed set — at 1 and at 4 workers. Divergence
// and restart-budget exhaustion drop the shard (points purged) while the
// fleet still completes with exit 0 on the surviving subset.
//
// Drives the real examples/cosearch_fleet binary (COSEARCH_FLEET_BIN
// compile definition), same re-exec idiom as ckpt_resume_test.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace a3cs {
namespace {

namespace fs = std::filesystem;

constexpr long long kFrames = 64;  // 8 iters of 2 envs x 4-step rollouts

std::string temp_dir(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("a3cs_fleet_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Runs the fleet binary with env assignments prepended; returns exit code.
int run_fleet(const std::string& env, int workers, const std::string& out_dir,
              const std::string& extra_args = "") {
  std::ostringstream cmd;
  cmd << "env " << env << " " << COSEARCH_FLEET_BIN << " Catch --workers "
      << workers << " --frames " << kFrames << " --seed 21 --backoff 0.05 "
      << "--out " << out_dir << " " << extra_args << " >/dev/null 2>&1";
  const int status = std::system(cmd.str().c_str());
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string frontier_of(const std::string& out_dir) {
  const std::string text = read_file(out_dir + "/frontier.txt");
  EXPECT_FALSE(text.empty()) << "no frontier written under " << out_dir;
  return text;
}

TEST(FleetResume, KilledWorkerFrontierBitExactOneWorker) {
  const std::string ref = temp_dir("ref1");
  const std::string killed = temp_dir("kill1");
  ASSERT_EQ(run_fleet("", 1, ref), 0);
  ASSERT_EQ(run_fleet("A3CS_FLEET_KILL=0@3", 1, killed), 0);
  EXPECT_EQ(frontier_of(killed), frontier_of(ref));
}

TEST(FleetResume, KilledWorkersFrontierBitExactFourWorkers) {
  const std::string ref = temp_dir("ref4");
  const std::string killed = temp_dir("kill4");
  ASSERT_EQ(run_fleet("", 4, ref), 0);
  // Every worker dies once, each at a different boundary.
  ASSERT_EQ(run_fleet("A3CS_FLEET_KILL=0@2,1@4,2@3,3@6", 4, killed), 0);
  EXPECT_EQ(frontier_of(killed), frontier_of(ref));
}

TEST(FleetResume, HungWorkerIsKilledByHeartbeatTimeoutAndResumed) {
  const std::string ref = temp_dir("refh");
  const std::string hung = temp_dir("hang");
  ASSERT_EQ(run_fleet("", 1, ref), 0);
  // Worker 0 stops heartbeating at iter 3; a 1s deadline must SIGKILL it
  // and the restart must resume to the same frontier.
  ASSERT_EQ(run_fleet("A3CS_FLEET_HANG=0@3 A3CS_FLEET_HB_S=1", 1, hung), 0);
  EXPECT_EQ(frontier_of(hung), frontier_of(ref));
}

TEST(FleetResume, CorruptTipCheckpointFallsBackDownRing) {
  const std::string ref = temp_dir("refc");
  const std::string corrupt = temp_dir("corrupt");
  ASSERT_EQ(run_fleet("", 1, ref), 0);
  // The tip checkpoint (iter 4) is truncated before the restart: resume must
  // CRC-reject it, restore iter 3 from the ring, and recompute iter 4
  // deterministically — the re-emitted points dedupe to the same frontier.
  ASSERT_EQ(run_fleet("A3CS_FLEET_KILL=0@4 A3CS_FLEET_CORRUPT_TIP=0", 1,
                      corrupt),
            0);
  EXPECT_EQ(frontier_of(corrupt), frontier_of(ref));
}

TEST(FleetResume, DivergedShardIsDroppedAndPurged) {
  const std::string ref = temp_dir("refd");
  const std::string diverged = temp_dir("diverge");
  ASSERT_EQ(run_fleet("", 1, ref, "--no-realloc"), 0);
  // Shard 1 raises GuardAbort at iter 3 -> dropped, its points purged. The
  // surviving shard 0 runs the same seed as the 1-worker reference, so with
  // reallocation off the degraded fleet's frontier equals the reference.
  ASSERT_EQ(run_fleet("A3CS_FLEET_DIVERGE=1@3", 2, diverged, "--no-realloc"),
            0);
  const std::string text = frontier_of(diverged);
  EXPECT_EQ(text, frontier_of(ref));
  EXPECT_EQ(text.find("point 1 "), std::string::npos)
      << "dropped shard's points leaked into the frontier";
}

// Negative control for the restart ladder: with a restart budget of zero a
// killed shard is dropped outright — and the fleet still completes (exit 0)
// on the surviving shard.
TEST(FleetResume, RestartBudgetZeroDropsShardFleetStillCompletes) {
  const std::string ref = temp_dir("refz");
  const std::string dropped = temp_dir("drop");
  ASSERT_EQ(run_fleet("", 1, ref, "--no-realloc"), 0);
  ASSERT_EQ(run_fleet("A3CS_FLEET_KILL=1@3 A3CS_FLEET_RESTARTS=0", 2, dropped,
                      "--no-realloc"),
            0);
  const std::string text = frontier_of(dropped);
  EXPECT_EQ(text, frontier_of(ref));
  EXPECT_EQ(text.find("point 1 "), std::string::npos);
}

// All shards dropped: the fleet degrades to an empty frontier and reports
// failure (exit 1) instead of hanging or crashing.
TEST(FleetResume, AllShardsDroppedExitsNonZeroWithEmptyFrontier) {
  const std::string out = temp_dir("alldrop");
  ASSERT_EQ(run_fleet("A3CS_FLEET_KILL=0@2 A3CS_FLEET_RESTARTS=0", 1, out), 1);
  EXPECT_NE(read_file(out + "/frontier.txt").find("points 0"),
            std::string::npos);
}

}  // namespace
}  // namespace a3cs
