#include <gtest/gtest.h>

#include "core/cosearch.h"
#include "core/pipeline.h"
#include "rl/eval.h"

namespace a3cs {
namespace {

core::CoSearchConfig small_config() {
  core::CoSearchConfig cfg;
  cfg.supernet.space.num_cells = 3;  // smallest legal space (1 per stage)
  cfg.a2c.num_envs = 4;
  cfg.a2c.loss = rl::no_distill_coefficients();
  cfg.das.samples_per_iter = 2;
  cfg.tau_decay_every_frames = 500;
  return cfg;
}

TEST(CoSearch, OneLevelSmokeRunsAndDerives) {
  core::CoSearchEngine engine("Catch", small_config(), nullptr);
  const auto result = engine.run(600);
  EXPECT_EQ(result.arch.choices.size(), 3u);
  EXPECT_GE(result.frames, 600);
  EXPECT_FALSE(result.accelerator.chunks.empty());
  EXPECT_GT(result.hw_eval.ii_cycles, 0.0);
}

TEST(CoSearch, BiLevelSmokeRuns) {
  auto cfg = small_config();
  cfg.optimization = core::Optimization::kBiLevel;
  core::CoSearchEngine engine("Catch", cfg, nullptr);
  const auto result = engine.run(600);
  EXPECT_EQ(result.arch.choices.size(), 3u);
}

TEST(CoSearch, PureNasModeSkipsAccelerator) {
  auto cfg = small_config();
  cfg.hardware_aware = false;
  core::CoSearchEngine engine("Catch", cfg, nullptr);
  const auto result = engine.run(400);
  EXPECT_TRUE(result.accelerator.chunks.empty());
}

TEST(CoSearch, TemperatureDecaysOnSchedule) {
  auto cfg = small_config();
  cfg.tau_decay_every_frames = 100;
  core::CoSearchEngine engine("Catch", cfg, nullptr);
  const double tau0 = engine.supernet().temperature();
  engine.run(500);
  EXPECT_LT(engine.supernet().temperature(), tau0);
}

TEST(CoSearch, CallbackFiresAtRequestedCadence) {
  auto cfg = small_config();
  core::CoSearchEngine engine("Catch", cfg, nullptr);
  int calls = 0;
  engine.run(400, [&](std::int64_t) { ++calls; }, 100);
  EXPECT_GE(calls, 3);
}

TEST(CoSearch, HugeLambdaDrivesArchitectureToSkips) {
  // With an overwhelming hardware-cost penalty, the cheapest (skip) operator
  // must dominate the derived architecture — the cost path works end-to-end.
  auto cfg = small_config();
  cfg.lambda = 1e4;
  core::CoSearchEngine engine("Catch", cfg, nullptr);
  const auto result = engine.run(1500);
  int skips = 0;
  for (int c : result.arch.choices) {
    if (c == 8) ++skips;  // op index 8 = skip
  }
  EXPECT_GE(skips, 2) << "arch: " << result.arch.to_string();
}

TEST(CoSearch, AlphaLogitsMoveDuringSearch) {
  auto cfg = small_config();
  core::CoSearchEngine engine("Catch", cfg, nullptr);
  std::vector<float> before;
  for (auto* a : engine.supernet().alpha_params()) {
    for (std::int64_t i = 0; i < a->value.numel(); ++i) {
      before.push_back(a->value[i]);
    }
  }
  engine.run(600);
  double delta = 0.0;
  std::size_t k = 0;
  for (auto* a : engine.supernet().alpha_params()) {
    for (std::int64_t i = 0; i < a->value.numel(); ++i) {
      delta += std::abs(a->value[i] - before[k++]);
    }
  }
  EXPECT_GT(delta, 0.0);
}

TEST(Pipeline, TrainDerivedAgentProducesUsableNet) {
  nas::SearchSpaceConfig space;
  space.num_cells = 3;
  nas::DerivedArch arch;
  arch.choices = {0, 8, 0};
  rl::A2cConfig a2c;
  a2c.num_envs = 4;
  a2c.loss = rl::no_distill_coefficients();
  auto trained =
      core::train_derived_agent("Catch", arch, space, 400, a2c, nullptr, 5);
  ASSERT_NE(trained.net, nullptr);
  EXPECT_FALSE(trained.specs.empty());
  rl::EvalConfig ecfg;
  ecfg.episodes = 2;
  const auto eval = rl::evaluate_agent(*trained.net, "Catch", ecfg);
  EXPECT_EQ(eval.episodes, 2);
}

TEST(Pipeline, SearchAcceleratorRespectsBudget) {
  const auto specs = nn::zoo_model_specs("Vanilla", nn::ObsSpec{3, 12, 12}, 3);
  das::DasConfig cfg;
  cfg.iterations = 200;
  accel::AcceleratorConfig out;
  const auto eval = core::search_accelerator(specs, 2, cfg, &out);
  EXPECT_TRUE(eval.feasible);
  EXPECT_EQ(out.num_chunks(), 2);
  EXPECT_LE(eval.dsp_used, 900);
}

TEST(Pipeline, EndToEndTiny) {
  core::PipelineConfig cfg;
  cfg.cosearch = small_config();
  cfg.search_frames = 400;
  cfg.train_frames = 400;
  cfg.final_das.iterations = 100;
  cfg.eval.episodes = 2;
  const auto result = core::run_a3cs_pipeline("Catch", cfg, nullptr);
  EXPECT_EQ(result.arch.choices.size(), 3u);
  EXPECT_GT(result.hw.fps, 0.0);
  EXPECT_FALSE(result.specs.empty());
  ASSERT_NE(result.trained_net, nullptr);
}

}  // namespace
}  // namespace a3cs
