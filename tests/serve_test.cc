// Tests for the predictor-as-a-service layer (src/serve): canonical cache
// keys, the sharded LRU memo-cache, batched evaluation bit-exactness across
// thread counts, and the NDJSON request protocol. docs/SERVING.md documents
// the contracts asserted here.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "accel/config_io.h"
#include "accel/predictor.h"
#include "accel/space.h"
#include "nn/zoo.h"
#include "obs/jsonl.h"
#include "obs/trace.h"
#include "serve/cache.h"
#include "serve/key.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "util/thread_pool.h"

namespace a3cs {
namespace {

using accel::AcceleratorConfig;
using accel::AcceleratorSpace;
using accel::HwEval;

std::vector<nn::LayerSpec> test_specs(const std::string& name = "ResNet-14") {
  return nn::zoo_model_specs(name, nn::ObsSpec{3, 12, 12}, 4);
}

std::vector<AcceleratorConfig> sample_configs(const AcceleratorSpace& space,
                                              int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<AcceleratorConfig> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(space.decode(space.random_choices(rng)));
  }
  return out;
}

// Strict bitwise equality on every HwEval field (EXPECT_EQ on doubles is
// exact comparison — the whole point of the determinism contract).
void expect_eval_identical(const HwEval& a, const HwEval& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.ii_cycles, b.ii_cycles);
  EXPECT_EQ(a.latency_cycles, b.latency_cycles);
  EXPECT_EQ(a.fps, b.fps);
  EXPECT_EQ(a.energy_nj, b.energy_nj);
  EXPECT_EQ(a.dsp_used, b.dsp_used);
  EXPECT_EQ(a.bram_used, b.bram_used);
  EXPECT_EQ(a.resource_overflow, b.resource_overflow);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].compute_cycles, b.layers[i].compute_cycles);
    EXPECT_EQ(a.layers[i].memory_cycles, b.layers[i].memory_cycles);
    EXPECT_EQ(a.layers[i].cycles, b.layers[i].cycles);
    EXPECT_EQ(a.layers[i].sram_bytes, b.layers[i].sram_bytes);
    EXPECT_EQ(a.layers[i].dram_bytes, b.layers[i].dram_bytes);
    EXPECT_EQ(a.layers[i].energy_nj, b.layers[i].energy_nj);
    EXPECT_EQ(a.layers[i].chunk, b.layers[i].chunk);
  }
  EXPECT_EQ(a.chunk_cycles, b.chunk_cycles);
}

// ------------------------------------------------------------------ keys ---

TEST(ServeKey, DeterministicAndSensitiveToEveryField) {
  const auto specs = test_specs();
  const auto sig = serve::network_signature(specs);
  AcceleratorSpace space(2, nn::num_groups(specs));
  const AcceleratorConfig cfg = sample_configs(space, 1, 7).front();

  const auto base = serve::cache_key(sig, cfg, 5);
  EXPECT_EQ(base.digest, serve::cache_key(sig, cfg, 5).digest);

  EXPECT_NE(base.digest, serve::cache_key(sig, cfg, 6).digest);  // salt

  AcceleratorConfig m = cfg;
  m.chunks[0].pe_rows += 1;
  EXPECT_NE(base.digest, serve::cache_key(sig, m, 5).digest);
  m = cfg;
  m.chunks[0].tile_oc *= 2;
  EXPECT_NE(base.digest, serve::cache_key(sig, m, 5).digest);
  m = cfg;
  m.chunks[0].split.input += 1e-15;  // one ULP-ish nudge must change the key
  EXPECT_NE(base.digest, serve::cache_key(sig, m, 5).digest);
  m = cfg;
  m.group_to_chunk[0] = (m.group_to_chunk[0] + 1) % m.num_chunks();
  EXPECT_NE(base.digest, serve::cache_key(sig, m, 5).digest);

  auto specs2 = specs;
  specs2[0].out_c += 1;
  EXPECT_NE(base.digest,
            serve::cache_key(serve::network_signature(specs2), cfg, 5).digest);
}

TEST(ServeKey, NetworkSignatureIgnoresLayerNames) {
  const auto specs = test_specs();
  auto renamed = specs;
  for (auto& s : renamed) s.name = "x_" + s.name;
  EXPECT_EQ(serve::network_signature(specs).digest,
            serve::network_signature(renamed).digest);
  EXPECT_EQ(serve::network_signature(specs).num_groups,
            nn::num_groups(specs));
}

TEST(ServeKey, TextFormEmbedsCanonicalEncoding) {
  const auto specs = test_specs("Vanilla");
  const auto sig = serve::network_signature(specs);
  AcceleratorSpace space(1, nn::num_groups(specs));
  const AcceleratorConfig cfg = sample_configs(space, 1, 3).front();
  const std::string text = serve::cache_key_text(sig, cfg, 9);
  EXPECT_NE(text.find(accel::encode_config(cfg)), std::string::npos);
  EXPECT_NE(text.find("salt=9"), std::string::npos);
}

// --------------------------------------------- config_io canonicalization ---

// decode(encode(cfg)) must reproduce the exact bytes of every field: the
// encoded text is the wire form of the serving protocol, and a ULP of drift
// would make the "same" config key differently after a round trip.
TEST(ServeCanonical, ConfigIoRoundTripIsByteIdentical) {
  for (int chunks : {1, 2, 4}) {
    util::Rng rng(static_cast<std::uint64_t>(chunks) * 1237 + 5);
    AcceleratorSpace space(chunks, 6);
    for (int i = 0; i < 32; ++i) {
      const AcceleratorConfig cfg = space.decode(space.random_choices(rng));
      const std::string text = accel::encode_config(cfg);
      const AcceleratorConfig back = accel::decode_config(text);
      ASSERT_EQ(back.group_to_chunk, cfg.group_to_chunk);
      for (int c = 0; c < cfg.num_chunks(); ++c) {
        const auto& a = cfg.chunks[static_cast<std::size_t>(c)];
        const auto& b = back.chunks[static_cast<std::size_t>(c)];
        EXPECT_EQ(a.split.input, b.split.input);    // exact, not NEAR
        EXPECT_EQ(a.split.weight, b.split.weight);
        EXPECT_EQ(a.split.output, b.split.output);
      }
      // Fixed point: re-encoding the decoded config reproduces the text.
      EXPECT_EQ(accel::encode_config(back), text);
      // And the digests agree, which is what the cache actually keys on.
      const auto sig = serve::NetworkSignature{};
      EXPECT_EQ(serve::cache_key(sig, cfg).digest,
                serve::cache_key(sig, back).digest);
    }
  }
}

// Regression for the %.6g era: splits like 1/3 are not representable in 6
// significant digits, so the default-constructed chunk used to come back
// ~1e-7 off and key differently after one wire round trip.
TEST(ServeCanonical, OneThirdSplitSurvivesRoundTrip) {
  AcceleratorConfig cfg;
  cfg.chunks.push_back(accel::ChunkConfig{});  // BufferSplit defaults to 1/3
  cfg.group_to_chunk = {0, 0};
  const AcceleratorConfig back =
      accel::decode_config(accel::encode_config(cfg));
  EXPECT_EQ(back.chunks[0].split.input, 1.0 / 3);
  EXPECT_EQ(back.chunks[0].split.weight, 1.0 / 3);
  EXPECT_EQ(back.chunks[0].split.output, 1.0 / 3);
}

// ----------------------------------------------------------------- cache ---

serve::CacheKey key_of(std::uint64_t n) {
  // Distinct synthetic digests; lo drives the in-shard hash, hi the stripe.
  return serve::CacheKey{serve::Digest128{n * 2654435761ull, n}};
}

serve::CachedEvalPtr value_of(double cost) {
  auto v = std::make_shared<serve::CachedEval>();
  v->cost = cost;
  return v;
}

TEST(ServeCache, LruEvictionOrderWithinOneShard) {
  serve::CacheConfig cfg;
  cfg.shards = 1;
  cfg.capacity = 3;
  serve::ShardedCache cache(cfg);
  cache.insert(key_of(1), value_of(1));
  cache.insert(key_of(2), value_of(2));
  cache.insert(key_of(3), value_of(3));
  ASSERT_EQ(cache.size(), 3);

  // Promote 1 → LRU order (old..new) is 2, 3, 1; inserting 4 evicts 2.
  ASSERT_NE(cache.lookup(key_of(1)), nullptr);
  cache.insert(key_of(4), value_of(4));
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.peek(key_of(2)), nullptr);
  EXPECT_NE(cache.peek(key_of(3)), nullptr);
  EXPECT_NE(cache.peek(key_of(1)), nullptr);
  EXPECT_NE(cache.peek(key_of(4)), nullptr);

  // touch() replays recency without counting a hit: touch 3, insert 5 → 1
  // (now oldest) is evicted, 3 survives.
  const auto before = cache.stats();
  cache.touch(key_of(3));
  EXPECT_EQ(cache.stats().hits, before.hits);
  cache.insert(key_of(5), value_of(5));
  EXPECT_EQ(cache.peek(key_of(1)), nullptr);
  EXPECT_NE(cache.peek(key_of(3)), nullptr);

  const auto s = cache.stats();
  EXPECT_EQ(s.inserts, 5);
  EXPECT_EQ(s.evictions, 2);
  EXPECT_EQ(s.size, 3);
  EXPECT_EQ(s.shards, 1);
}

TEST(ServeCache, EvictedEntryStaysAliveForHolders) {
  serve::CacheConfig cfg;
  cfg.shards = 1;
  cfg.capacity = 1;
  serve::ShardedCache cache(cfg);
  cache.insert(key_of(1), value_of(41));
  const serve::CachedEvalPtr held = cache.lookup(key_of(1));
  ASSERT_NE(held, nullptr);
  cache.insert(key_of(2), value_of(42));  // evicts key 1
  EXPECT_EQ(cache.peek(key_of(1)), nullptr);
  EXPECT_EQ(held->cost, 41.0);  // the shared_ptr keeps the value alive
}

TEST(ServeCache, DisabledCacheIsInert) {
  serve::CacheConfig cfg;
  cfg.enabled = false;
  serve::ShardedCache cache(cfg);
  cache.insert(key_of(1), value_of(1));
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);  // disabled lookups count nothing
}

TEST(ServeCache, EnvOverridesApply) {
  ASSERT_EQ(setenv("A3CS_CACHE_SHARDS", "3", 1), 0);
  ASSERT_EQ(setenv("A3CS_CACHE_CAPACITY", "30", 1), 0);
  ASSERT_EQ(setenv("A3CS_CACHE", "1", 1), 0);
  const serve::CacheConfig cfg = serve::CacheConfig{}.with_env_overrides();
  unsetenv("A3CS_CACHE_SHARDS");
  unsetenv("A3CS_CACHE_CAPACITY");
  unsetenv("A3CS_CACHE");
  EXPECT_EQ(cfg.shards, 3);
  EXPECT_EQ(cfg.capacity, 30);
  EXPECT_TRUE(cfg.enabled);
  serve::ShardedCache cache(cfg);
  EXPECT_EQ(cache.shards(), 3);
  EXPECT_EQ(cache.capacity(), 30);  // ceil(30/3)*3
}

// --------------------------------------------------------------- service ---

TEST(ServeService, BatchedMatchesSerialBitExactAtEveryThreadCount) {
  const auto specs = test_specs();
  accel::Predictor predictor;
  AcceleratorSpace space(3, nn::num_groups(specs));
  const auto configs = sample_configs(space, 48, 21);

  // Serial ground truth straight through the predictor, no serving layer.
  std::vector<HwEval> ref;
  std::vector<double> ref_cost;
  for (const auto& cfg : configs) {
    ref.push_back(predictor.evaluate(specs, cfg));
    ref_cost.push_back(predictor.scalar_cost(ref.back()));
  }

  for (int threads : {1, 4, 8}) {
    util::ThreadPool::set_global_threads(threads);
    serve::PredictorService service(predictor);
    const serve::PreparedNet net = service.prepare(specs);
    // Cold pass: every result computed, bit-exact with the serial loop.
    const auto cold = service.evaluate_batch(net, configs);
    ASSERT_EQ(cold.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      expect_eval_identical(cold[i].eval(), ref[i]);
      EXPECT_EQ(cold[i].cost(), ref_cost[i]);
    }
    // Warm pass: served from the memo-cache, same bits, all flagged cached.
    const auto warm = service.evaluate_batch(net, configs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      expect_eval_identical(warm[i].eval(), ref[i]);
      EXPECT_TRUE(warm[i].cached);
    }
  }
  util::ThreadPool::set_global_threads(1);
}

TEST(ServeService, InFlightDuplicatesCollapseOntoOneEvaluation) {
  const auto specs = test_specs("Vanilla");
  accel::Predictor predictor;
  serve::PredictorService service(predictor);
  const serve::PreparedNet net = service.prepare(specs);
  AcceleratorSpace space(1, nn::num_groups(specs));
  const std::vector<AcceleratorConfig> batch(
      32, sample_configs(space, 1, 2).front());

  const auto results = service.evaluate_batch(net, batch);
  EXPECT_EQ(service.cache().stats().misses, 1);
  EXPECT_EQ(service.cache().stats().inserts, 1);
  int computed = 0;
  for (const auto& r : results) {
    if (!r.cached) ++computed;
    EXPECT_EQ(r.value, results.front().value);  // literally shared
  }
  EXPECT_EQ(computed, 1);  // only the first occurrence paid
}

TEST(ServeService, EvaluateOneHitsAfterMiss) {
  const auto specs = test_specs("Vanilla");
  accel::Predictor predictor;
  serve::PredictorService service(predictor);
  const serve::PreparedNet net = service.prepare(specs);
  AcceleratorSpace space(2, nn::num_groups(specs));
  const AcceleratorConfig cfg = sample_configs(space, 1, 11).front();

  const auto first = service.evaluate_one(net, cfg);
  EXPECT_FALSE(first.cached);
  const auto second = service.evaluate_one(net, cfg);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(first.value, second.value);
  expect_eval_identical(first.eval(), predictor.evaluate(specs, cfg));
}

TEST(ServeService, SaltSeparatesPredictors) {
  accel::FpgaBudget small;
  small.dsp = 100;
  accel::Predictor a;  // default budget
  accel::Predictor b(small);
  serve::PredictorService sa(a), sb(b);
  EXPECT_NE(sa.predictor_salt(), sb.predictor_salt());
}

// Concurrent hammering: many threads doing independent evaluate_one calls
// against one service — the shard mutexes and counters must hold up under
// TSan, and every result must stay correct.
TEST(ServeService, ConcurrentLookupsAndInsertsAreSafe) {
  const auto specs = test_specs("Vanilla");
  accel::Predictor predictor;
  serve::CacheConfig cache_cfg;
  cache_cfg.shards = 4;
  cache_cfg.capacity = 16;  // small: forces concurrent evictions too
  serve::PredictorService service(predictor, cache_cfg);
  const serve::PreparedNet net = service.prepare(specs);
  AcceleratorSpace space(2, nn::num_groups(specs));
  const auto configs = sample_configs(space, 24, 31);

  std::vector<double> ref(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ref[i] = predictor.scalar_cost(predictor.evaluate(specs, configs[i]));
  }

  util::ThreadPool::set_global_threads(4);
  std::vector<double> got(512);
  util::parallel_for(0, 512, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const std::size_t c = static_cast<std::size_t>(i) % configs.size();
      got[static_cast<std::size_t>(i)] =
          service.evaluate_one(net, configs[c]).cost();
    }
  });
  util::ThreadPool::set_global_threads(1);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], ref[i % configs.size()]);
  }
}

// -------------------------------------------------------------- protocol ---

class ServeProtocolTest : public ::testing::Test {
 protected:
  ServeProtocolTest() : service_(predictor_), registry_(service_) {}

  std::string handle(const std::string& line) {
    return serve::handle_request_line(service_, registry_, line);
  }
  obs::JsonValue reply(const std::string& line) {
    return obs::JsonValue::parse(handle(line));
  }

  accel::Predictor predictor_;
  serve::PredictorService service_;
  serve::NetworkRegistry registry_;
};

TEST_F(ServeProtocolTest, PingAndStats) {
  const auto pong = reply("{\"op\":\"ping\",\"id\":7}");
  EXPECT_TRUE(pong.find("ok")->as_bool());
  EXPECT_EQ(pong.number_or("id", -1), 7.0);

  const auto stats = reply("{\"op\":\"stats\"}");
  EXPECT_TRUE(stats.find("ok")->as_bool());
  EXPECT_EQ(stats.number_or("misses", -1), 0.0);
  EXPECT_TRUE(stats.find("cache_enabled")->as_bool());
}

TEST_F(ServeProtocolTest, InfoReportsNetworkShape) {
  const auto info = reply("{\"op\":\"info\",\"network\":\"ResNet-14\"}");
  ASSERT_TRUE(info.find("ok")->as_bool());
  const auto specs = test_specs();
  EXPECT_EQ(info.number_or("num_layers", -1),
            static_cast<double>(specs.size()));
  EXPECT_EQ(info.number_or("num_groups", -1),
            static_cast<double>(nn::num_groups(specs)));
  EXPECT_EQ(info.number_or("macs", -1),
            static_cast<double>(nn::network_macs(specs)));
}

TEST_F(ServeProtocolTest, EvalEndToEndMatchesPredictorExactly) {
  const auto specs = test_specs("Vanilla");
  AcceleratorSpace space(1, nn::num_groups(specs));
  const AcceleratorConfig cfg = sample_configs(space, 1, 13).front();
  const std::string req =
      "{\"op\":\"eval\",\"network\":\"Vanilla\",\"configs\":[";
  std::string line = req;
  obs::TraceWriter::append_json_string(line, accel::encode_config(cfg));
  line += "]}";

  const auto resp = reply(line);
  ASSERT_TRUE(resp.find("ok")->as_bool());
  const auto& results = resp.find("results")->as_array();
  ASSERT_EQ(results.size(), 1u);
  const HwEval ref = predictor_.evaluate(specs, cfg);
  // Replies serialize at max_digits10, so the parsed doubles are the
  // predictor's exact bits — not approximately equal, equal.
  EXPECT_EQ(results[0].number_or("fps", -1), ref.fps);
  EXPECT_EQ(results[0].number_or("ii_cycles", -1), ref.ii_cycles);
  EXPECT_EQ(results[0].number_or("energy_nj", -1), ref.energy_nj);
  EXPECT_EQ(results[0].number_or("cost", -1), predictor_.scalar_cost(ref));
  EXPECT_FALSE(results[0].find("cached")->as_bool());

  // Same request again: the reply must be byte-identical except for flipping
  // cached/timing — assert the value fields, and that the hit was counted.
  const auto warm = reply(line);
  EXPECT_TRUE(
      warm.find("results")->as_array()[0].find("cached")->as_bool());
  EXPECT_EQ(service_.cache().stats().hits, 1);
}

TEST_F(ServeProtocolTest, MalformedRequestsNeverThrow) {
  const std::vector<std::string> bad = {
      "",                                          // empty
      "not json at all",                           // parse error
      "42",                                        // not an object
      "{\"no_op\":1}",                             // missing op
      "{\"op\":\"warp\"}",                         // unknown op
      "{\"op\":\"info\"}",                         // missing network
      "{\"op\":\"info\",\"network\":\"NopeNet\"}", // unknown zoo name
      "{\"op\":\"eval\",\"network\":\"Vanilla\"}", // missing configs
      "{\"op\":\"eval\",\"network\":\"Vanilla\",\"configs\":[\"bogus=1\"]}",
      "{\"op\":\"info\",\"network\":\"Vanilla\",\"obs\":[1,2]}",  // bad obs
  };
  for (const std::string& line : bad) {
    std::string out;
    ASSERT_NO_THROW(out = handle(line)) << line;
    const auto resp = obs::JsonValue::parse(out);
    EXPECT_FALSE(resp.find("ok")->as_bool()) << line;
    EXPECT_NE(resp.find("error"), nullptr) << line;
  }
}

TEST_F(ServeProtocolTest, ErrorRepliesEchoTheRequestId) {
  const auto resp = reply("{\"op\":\"warp\",\"id\":\"req-9\"}");
  EXPECT_FALSE(resp.find("ok")->as_bool());
  EXPECT_EQ(resp.string_or("id", ""), "req-9");
}

// Adversarial transport input: predictor_server's bounded line assembly.
// An oversized or never-terminated NDJSON line must not grow memory past
// the cap, must be reported exactly once, and must not poison later
// well-formed requests on the same connection.

TEST(ServeLineBuffer, SplitsChunksIntoLines) {
  serve::LineBuffer buf;
  const std::string bytes = "{\"op\":\"ping\"}\n{\"op\":\"sta";
  buf.append(bytes.data(), bytes.size());
  std::string line;
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "{\"op\":\"ping\"}");
  EXPECT_FALSE(buf.next_line(&line));  // second request still unterminated
  buf.append("ts\"}\n", 5);
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "{\"op\":\"stats\"}");
  EXPECT_FALSE(buf.take_overflow());
}

TEST(ServeLineBuffer, UnterminatedLineIsCappedAndDiscarded) {
  serve::LineBuffer buf(64);
  const std::string flood(1000, 'x');  // no newline, ever
  for (int i = 0; i < 50; ++i) buf.append(flood.data(), flood.size());
  EXPECT_LE(buf.buffered_bytes(), 64u);  // memory stays bounded
  std::string line;
  EXPECT_FALSE(buf.next_line(&line));
  EXPECT_TRUE(buf.take_overflow());
  EXPECT_FALSE(buf.take_overflow());  // reported once

  // Once the doomed line finally terminates, the stream recovers.
  buf.append("tail\n{\"op\":\"ping\"}\n", 19);
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "{\"op\":\"ping\"}");
  EXPECT_FALSE(buf.next_line(&line));
}

TEST(ServeLineBuffer, OversizedCompleteLineIsDroppedNeighborsSurvive) {
  serve::LineBuffer buf(32);
  const std::string bytes =
      "{\"op\":\"ping\"}\n" + std::string(100, 'y') + "\n{\"op\":\"stats\"}\n";
  buf.append(bytes.data(), bytes.size());
  std::string line;
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "{\"op\":\"ping\"}");
  ASSERT_TRUE(buf.next_line(&line));  // the 100-byte line was skipped
  EXPECT_EQ(line, "{\"op\":\"stats\"}");
  EXPECT_FALSE(buf.next_line(&line));
  EXPECT_TRUE(buf.take_overflow());
}

TEST(ServeLineBuffer, ExactCapLineStillFits) {
  serve::LineBuffer buf(8);
  buf.append("12345678\nok\n", 12);
  std::string line;
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "12345678");
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "ok");
  EXPECT_FALSE(buf.take_overflow());
}

}  // namespace
}  // namespace a3cs
