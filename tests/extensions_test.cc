#include <gtest/gtest.h>

#include "accel/predictor.h"
#include "arcade/games.h"
#include "arcade/render.h"
#include "arcade/wrappers.h"
#include "das/das.h"
#include "nn/zoo.h"

namespace a3cs {
namespace {

using tensor::Shape;
using tensor::Tensor;

// ----------------------------------------------------------- FrameStack ---

TEST(FrameStack, ObsSpecMultipliesChannels) {
  auto env = arcade::make_stacked_game("Breakout", 1, 4);
  EXPECT_EQ(env->obs_spec().channels, 12);
  EXPECT_EQ(env->obs_spec().height, 12);
  EXPECT_EQ(env->num_actions(), 3);
}

TEST(FrameStack, ResetRepeatsInitialFrame) {
  auto env = arcade::make_stacked_game("Breakout", 7, 3);
  const Tensor obs = env->reset();
  ASSERT_EQ(obs.shape(), Shape::nchw(1, 9, 12, 12));
  const std::int64_t frame = 3 * 12 * 12;
  for (std::int64_t i = 0; i < frame; ++i) {
    EXPECT_FLOAT_EQ(obs[i], obs[frame + i]);
    EXPECT_FLOAT_EQ(obs[i], obs[2 * frame + i]);
  }
}

TEST(FrameStack, HistoryShiftsOnStep) {
  auto env = arcade::make_stacked_game("Breakout", 7, 2);
  Tensor obs = env->reset();
  const std::int64_t frame = 3 * 12 * 12;
  // After one step, the old newest frame becomes the oldest slot.
  std::vector<float> prev_newest(static_cast<std::size_t>(frame));
  for (std::int64_t i = 0; i < frame; ++i) {
    prev_newest[static_cast<std::size_t>(i)] = obs[frame + i];
  }
  const auto r = env->step(0);
  for (std::int64_t i = 0; i < frame; ++i) {
    ASSERT_FLOAT_EQ(r.obs[i], prev_newest[static_cast<std::size_t>(i)]);
  }
}

TEST(FrameStack, VelocityIsObservableWithStacking) {
  // Two consecutive Breakout frames differ in the ball position, so the
  // stacked observation is not just a channel copy after a few steps.
  auto env = arcade::make_stacked_game("Breakout", 3, 2);
  Tensor obs = env->reset();
  const std::int64_t frame = 3 * 12 * 12;
  bool differs = false;
  for (int t = 0; t < 10 && !differs; ++t) {
    obs = env->step(0).obs;
    for (std::int64_t i = 0; i < frame; ++i) {
      if (obs[i] != obs[frame + i]) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FrameStack, AgentBuildsAgainstStackedSpec) {
  auto env = arcade::make_stacked_game("Catch", 1, 2);
  util::Rng rng(5);
  auto agent = nn::build_zoo_agent("Vanilla", env->obs_spec(),
                                   env->num_actions(), rng);
  const Tensor obs = env->reset();
  const auto out = agent.net->forward(obs);
  EXPECT_EQ(out.logits.shape(), Shape::mat(1, 3));
}

TEST(FrameStack, RejectsDegenerateDepth) {
  EXPECT_THROW(arcade::make_stacked_game("Catch", 1, 1), std::runtime_error);
}

// ---------------------------------------------------------------- render --

TEST(Render, ShowsPlayerAndBorders) {
  auto env = arcade::make_game("Breakout", 1);
  const Tensor obs = env->reset();
  const std::string s = arcade::render_ascii(obs);
  EXPECT_NE(s.find('A'), std::string::npos);   // paddle
  EXPECT_NE(s.find('o'), std::string::npos);   // ball
  EXPECT_NE(s.find('#'), std::string::npos);   // bricks
  EXPECT_NE(s.find('|'), std::string::npos);
  // 12 rows + 2 borders.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 14);
}

TEST(Render, RejectsBatchedObservations) {
  Tensor batch(Shape::nchw(2, 3, 12, 12));
  EXPECT_THROW(arcade::render_ascii(batch), std::runtime_error);
}

// ---------------------------------------------------------------- energy --

TEST(Energy, EvaluationReportsPositiveEnergy) {
  accel::Predictor pred;
  const auto specs = nn::zoo_model_specs("Vanilla", nn::ObsSpec{3, 12, 12}, 4);
  accel::AcceleratorConfig cfg;
  cfg.chunks.push_back(accel::ChunkConfig{});
  cfg.group_to_chunk.assign(static_cast<std::size_t>(nn::num_groups(specs)), 0);
  const auto eval = pred.evaluate(specs, cfg);
  EXPECT_GT(eval.energy_nj, 0.0);
  double layer_sum = 0.0;
  for (const auto& l : eval.layers) layer_sum += l.energy_nj;
  EXPECT_NEAR(eval.energy_nj, layer_sum, 1e-6);
}

TEST(Energy, BiggerNetworksCostMoreEnergy) {
  accel::Predictor pred;
  accel::ChunkConfig chunk;
  auto eval_of = [&](const std::string& model) {
    const auto specs = nn::zoo_model_specs(model, nn::ObsSpec{3, 12, 12}, 4);
    accel::AcceleratorConfig cfg;
    cfg.chunks.push_back(chunk);
    cfg.group_to_chunk.assign(static_cast<std::size_t>(nn::num_groups(specs)),
                              0);
    return pred.evaluate(specs, cfg).energy_nj;
  };
  EXPECT_GT(eval_of("ResNet-74"), eval_of("ResNet-14"));
  EXPECT_GT(eval_of("ResNet-14"), eval_of("Vanilla"));
}

TEST(Energy, RefetchTrafficRaisesEnergy) {
  accel::Predictor pred;
  std::vector<nn::LayerSpec> specs = {
      nn::LayerSpec::conv("c", 64, 64, 3, 1, 12, 12)};
  nn::assign_sequential_groups(specs);
  accel::AcceleratorConfig generous;
  accel::ChunkConfig chunk;
  chunk.tile_oc = chunk.tile_ic = 8;
  generous.chunks.push_back(chunk);
  generous.group_to_chunk = {0};

  accel::AcceleratorConfig starved = generous;
  starved.chunks[0].pe_rows = starved.chunks[0].pe_cols = 2;
  accel::ChunkConfig fat;
  fat.pe_rows = fat.pe_cols = 24;
  starved.chunks.push_back(fat);

  const double e_generous = pred.evaluate(specs, generous).energy_nj;
  const double e_starved = pred.evaluate(specs, starved).energy_nj;
  EXPECT_GT(e_starved, e_generous);
}

TEST(CostWeights, EnergyTermChangesScalarCost) {
  accel::CostWeights latency_only;
  accel::CostWeights with_energy;
  with_energy.energy = 1.0;
  accel::Predictor p_lat(accel::FpgaBudget{}, accel::EnergyModel{},
                         latency_only);
  accel::Predictor p_en(accel::FpgaBudget{}, accel::EnergyModel{},
                        with_energy);
  accel::HwEval eval;
  eval.feasible = true;
  eval.ii_cycles = 1000;
  eval.energy_nj = 5000.0;
  EXPECT_GT(p_en.scalar_cost(eval), p_lat.scalar_cost(eval));
}

TEST(CostWeights, EnergyAwareDasPrefersLowerEnergy) {
  // Search the same network twice: once latency-only, once strongly
  // energy-weighted; the energy-weighted result must not consume more
  // energy.
  const auto specs =
      nn::zoo_model_specs("ResNet-14", nn::ObsSpec{3, 12, 12}, 4);
  accel::AcceleratorSpace space(4, nn::num_groups(specs));

  accel::Predictor p_lat;
  accel::CostWeights w;
  w.latency = 0.0;
  w.energy = 1.0;
  accel::Predictor p_en(accel::FpgaBudget{}, accel::EnergyModel{}, w);

  das::DasConfig cfg;
  cfg.iterations = 400;
  das::DasEngine lat_engine(space, p_lat, cfg);
  das::DasEngine en_engine(space, p_en, cfg);
  const auto lat = lat_engine.search(specs);
  const auto en = en_engine.search(specs);
  EXPECT_LE(en.eval.energy_nj, lat.eval.energy_nj * 1.05);
}

}  // namespace
}  // namespace a3cs
