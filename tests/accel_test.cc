#include <gtest/gtest.h>

#include <cmath>

#include "accel/dnnbuilder.h"
#include "accel/fa3c.h"
#include "accel/predictor.h"
#include "accel/space.h"
#include "das/das.h"
#include "nn/zoo.h"

namespace a3cs {
namespace {

using accel::AcceleratorConfig;
using accel::AcceleratorSpace;
using accel::BufferSplit;
using accel::ChunkConfig;
using accel::Dataflow;
using accel::FpgaBudget;
using accel::HwEval;
using accel::Noc;
using accel::Predictor;
using nn::LayerSpec;

std::vector<LayerSpec> small_net() {
  std::vector<LayerSpec> specs;
  specs.push_back(LayerSpec::conv("c1", 3, 8, 3, 2, 12, 12));
  specs.push_back(LayerSpec::conv("c2", 8, 16, 3, 2, 6, 6));
  specs.push_back(LayerSpec::depthwise("d1", 16, 3, 1, 3, 3));
  specs.push_back(LayerSpec::linear("fc", 144, 256));
  nn::assign_sequential_groups(specs);
  return specs;
}

AcceleratorConfig single_chunk(ChunkConfig chunk, int groups) {
  AcceleratorConfig cfg;
  cfg.chunks.push_back(chunk);
  cfg.group_to_chunk.assign(static_cast<std::size_t>(groups), 0);
  return cfg;
}

// ------------------------------------------------------------ predictor ---

TEST(Predictor, ProducesPositiveFeasibleEvaluation) {
  Predictor pred;
  const auto specs = small_net();
  ChunkConfig chunk;
  const auto eval = pred.evaluate(specs, single_chunk(chunk, 4));
  EXPECT_TRUE(eval.feasible);
  EXPECT_GT(eval.fps, 0.0);
  EXPECT_GT(eval.ii_cycles, 0.0);
  EXPECT_EQ(eval.layers.size(), specs.size());
  EXPECT_EQ(eval.dsp_used, chunk.num_pes());
}

TEST(Predictor, MorePesNeverSlowerCompute) {
  // On a fill/drain-free NoC (multicast), growing the PE array can never
  // increase compute cycles. (Systolic arrays CAN get slower on tiny tiles
  // because fill/drain grows with rows+cols — that is intended behaviour.)
  Predictor pred;
  const auto specs = small_net();
  double prev_compute = 1e18;
  for (const int dim : {2, 4, 8, 16}) {
    ChunkConfig chunk;
    chunk.noc = Noc::kMulticast;
    chunk.pe_rows = chunk.pe_cols = dim;
    chunk.tile_oc = chunk.tile_ic = 32;
    const auto eval = pred.evaluate(specs, single_chunk(chunk, 4));
    double compute = 0.0;
    for (const auto& l : eval.layers) compute += l.compute_cycles;
    EXPECT_LE(compute, prev_compute + 1e-6) << "dim " << dim;
    prev_compute = compute;
  }
}

TEST(Predictor, LatencyIsSumIiIsMax) {
  Predictor pred;
  const auto specs = small_net();
  AcceleratorConfig cfg;
  cfg.chunks.push_back(ChunkConfig{});
  cfg.chunks.push_back(ChunkConfig{});
  cfg.group_to_chunk = {0, 0, 1, 1};
  const auto eval = pred.evaluate(specs, cfg);
  ASSERT_EQ(eval.chunk_cycles.size(), 2u);
  EXPECT_NEAR(eval.latency_cycles,
              eval.chunk_cycles[0] + eval.chunk_cycles[1], 1e-6);
  EXPECT_NEAR(eval.ii_cycles,
              std::max(eval.chunk_cycles[0], eval.chunk_cycles[1]), 1e-6);
  EXPECT_GE(eval.latency_cycles, eval.ii_cycles);
}

TEST(Predictor, DspBudgetViolationFlagged) {
  Predictor pred;
  const auto specs = small_net();
  AcceleratorConfig cfg;
  for (int i = 0; i < 4; ++i) {
    ChunkConfig chunk;
    chunk.pe_rows = chunk.pe_cols = 32;  // 4 x 1024 PEs >> 900 DSP
    cfg.chunks.push_back(chunk);
  }
  cfg.group_to_chunk = {0, 1, 2, 3};
  const auto eval = pred.evaluate(specs, cfg);
  EXPECT_FALSE(eval.feasible);
  EXPECT_GT(eval.resource_overflow, 0.0);
  EXPECT_EQ(eval.fps, 0.0);
  EXPECT_GT(pred.scalar_cost(eval), 10.0 * 0.9);  // barrier dominates
}

TEST(Predictor, GroupCyclesPartitionTotal) {
  Predictor pred;
  const auto specs = small_net();
  const auto eval = pred.evaluate(specs, single_chunk(ChunkConfig{}, 4));
  double sum = 0.0;
  for (int g = 0; g < 4; ++g) sum += eval.group_cycles(specs, g);
  EXPECT_NEAR(sum, eval.latency_cycles, 1e-6);
}

TEST(Predictor, HeavierLayersCostMoreCycles) {
  Predictor pred;
  std::vector<LayerSpec> specs;
  specs.push_back(LayerSpec::conv("small", 4, 4, 3, 1, 6, 6));
  specs.push_back(LayerSpec::conv("big", 16, 32, 5, 1, 12, 12));
  nn::assign_sequential_groups(specs);
  const auto eval = pred.evaluate(specs, single_chunk(ChunkConfig{}, 2));
  EXPECT_GT(eval.layers[1].cycles, eval.layers[0].cycles);
}

TEST(Predictor, SystolicPaysFillDrain) {
  Predictor pred;
  const auto specs = small_net();
  ChunkConfig sys;
  sys.noc = Noc::kSystolic;
  ChunkConfig multi = sys;
  multi.noc = Noc::kMulticast;
  const auto es = pred.evaluate(specs, single_chunk(sys, 4));
  const auto em = pred.evaluate(specs, single_chunk(multi, 4));
  double cs = 0.0, cm = 0.0;
  for (const auto& l : es.layers) cs += l.compute_cycles;
  for (const auto& l : em.layers) cm += l.compute_cycles;
  // Multicast has no fill/drain but 3% clock inefficiency; for these small
  // tiles the fill/drain dominates.
  EXPECT_NE(cs, cm);
}

TEST(Predictor, DepthwiseLayerPrefersNonWeightStationary) {
  // A depthwise layer has no input-channel parallelism, so an
  // output-stationary mapping (spatial parallelism) must beat a
  // weight-stationary one on compute cycles.
  Predictor pred;
  std::vector<LayerSpec> specs = {LayerSpec::depthwise("d", 32, 3, 1, 12, 12)};
  nn::assign_sequential_groups(specs);
  ChunkConfig ws;
  ws.dataflow = Dataflow::kWeightStationary;
  ws.noc = Noc::kMulticast;
  ChunkConfig os = ws;
  os.dataflow = Dataflow::kOutputStationary;
  const auto ews = pred.evaluate(specs, single_chunk(ws, 1));
  const auto eos = pred.evaluate(specs, single_chunk(os, 1));
  EXPECT_LT(eos.layers[0].compute_cycles, ews.layers[0].compute_cycles);
}

TEST(Predictor, SmallBuffersCauseRefetchTraffic) {
  Predictor pred;
  // One large conv; compare generous vs starved buffer splits by shrinking
  // the SRAM share via a tiny chunk in a 2-chunk config (SRAM is allocated
  // proportionally to PEs).
  std::vector<LayerSpec> specs = {LayerSpec::conv("c", 64, 64, 3, 1, 12, 12)};
  nn::assign_sequential_groups(specs);

  AcceleratorConfig big;
  ChunkConfig chunk;
  chunk.tile_oc = 8;
  chunk.tile_ic = 8;
  big.chunks.push_back(chunk);
  big.group_to_chunk = {0};
  const auto ebig = pred.evaluate(specs, big);

  AcceleratorConfig starved;
  ChunkConfig tiny = chunk;
  tiny.pe_rows = tiny.pe_cols = 2;  // tiny PE share -> tiny SRAM share
  ChunkConfig fat;
  fat.pe_rows = fat.pe_cols = 24;
  starved.chunks.push_back(tiny);
  starved.chunks.push_back(fat);  // unused by the single layer
  starved.group_to_chunk = {0};
  const auto estarved = pred.evaluate(specs, starved);

  EXPECT_GT(estarved.layers[0].memory_cycles, ebig.layers[0].memory_cycles);
}

TEST(Predictor, ScalarCostMonotoneInIi) {
  Predictor pred;
  HwEval a, b;
  a.feasible = b.feasible = true;
  a.ii_cycles = 1000;
  b.ii_cycles = 2000;
  EXPECT_LT(pred.scalar_cost(a), pred.scalar_cost(b));
}

TEST(Predictor, ReportIsInformative) {
  Predictor pred;
  const auto specs = small_net();
  const auto eval = pred.evaluate(specs, single_chunk(ChunkConfig{}, 4));
  const std::string r = eval.report();
  EXPECT_NE(r.find("FEASIBLE"), std::string::npos);
  EXPECT_NE(r.find("FPS"), std::string::npos);
  EXPECT_NE(r.find("chunk0"), std::string::npos);
}

TEST(Predictor, ConfigToStringIsInformative) {
  const auto specs = small_net();
  const auto cfg = single_chunk(ChunkConfig{}, 4);
  const std::string s = cfg.to_string();
  EXPECT_NE(s.find("chunk0"), std::string::npos);
  EXPECT_NE(s.find("alloc="), std::string::npos);
}

// ----------------------------------------------------------------- space --

TEST(Space, KnobLayout) {
  AcceleratorSpace space(4, 14);
  // 7 knobs per chunk + one allocation knob per group.
  EXPECT_EQ(space.num_knobs(), 4 * 7 + 14);
  EXPECT_EQ(space.num_chunks(), 4);
  EXPECT_EQ(space.num_groups(), 14);
}

TEST(Space, PaperScaleExceedsTenToTwentySeven) {
  // The paper claims > 10^27 accelerator configurations; our space at the
  // co-search scale (4 chunks, 14 layer groups) must exceed that.
  AcceleratorSpace space(4, 14);
  EXPECT_GT(space.log10_size(), 27.0);
}

TEST(Space, DecodeRoundTripsKnobValues) {
  AcceleratorSpace space(2, 3);
  std::vector<int> choices(static_cast<std::size_t>(space.num_knobs()), 0);
  choices[0] = 3;  // chunk0 pe_rows -> pe_dim_choices[3] == 8
  choices[7 + 2] = 1;  // chunk1 noc -> broadcast
  choices[14] = 1;     // group0 -> chunk 1
  const auto cfg = space.decode(choices);
  EXPECT_EQ(cfg.chunks[0].pe_rows, AcceleratorSpace::pe_dim_choices()[3]);
  EXPECT_EQ(cfg.chunks[1].noc, Noc::kBroadcast);
  EXPECT_EQ(cfg.group_to_chunk[0], 1);
  EXPECT_EQ(cfg.group_to_chunk[1], 0);
}

TEST(Space, DecodeRejectsWrongArity) {
  AcceleratorSpace space(2, 3);
  EXPECT_THROW(space.decode({0, 1, 2}), std::runtime_error);
}

TEST(Space, RandomChoicesInRange) {
  AcceleratorSpace space(3, 5);
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto choices = space.random_choices(rng);
    ASSERT_EQ(static_cast<int>(choices.size()), space.num_knobs());
    for (int k = 0; k < space.num_knobs(); ++k) {
      EXPECT_GE(choices[static_cast<std::size_t>(k)], 0);
      EXPECT_LT(choices[static_cast<std::size_t>(k)],
                space.knobs()[static_cast<std::size_t>(k)].num_choices);
    }
    // And decodable + evaluable.
    const auto cfg = space.decode(choices);
    EXPECT_EQ(cfg.num_chunks(), 3);
  }
}

TEST(Space, SplitPresetsSumToOne) {
  for (const auto& split : AcceleratorSpace::split_choices()) {
    EXPECT_NEAR(split.input + split.weight + split.output, 1.0, 1e-6);
  }
}

// ------------------------------------------------------------ DNNBuilder --

TEST(DnnBuilder, OneStagePerLayerWithinBudget) {
  Predictor pred;
  const auto specs = small_net();
  const auto cfg = accel::dnnbuilder_config(specs, pred.budget());
  EXPECT_EQ(cfg.num_chunks(), 4);  // one per group (under max_stages)
  const auto eval = pred.evaluate(specs, cfg);
  EXPECT_TRUE(eval.feasible);
  EXPECT_LE(eval.dsp_used, pred.budget().dsp);
  EXPECT_GT(eval.fps, 0.0);
}

TEST(DnnBuilder, AllocatesMorePesToHeavierStages) {
  Predictor pred;
  std::vector<LayerSpec> specs;
  specs.push_back(LayerSpec::conv("light", 2, 2, 1, 1, 4, 4));
  specs.push_back(LayerSpec::conv("heavy", 32, 64, 5, 1, 12, 12));
  nn::assign_sequential_groups(specs);
  const auto cfg = accel::dnnbuilder_config(specs, pred.budget());
  ASSERT_EQ(cfg.num_chunks(), 2);
  EXPECT_GT(cfg.chunks[1].num_pes(), cfg.chunks[0].num_pes());
}

TEST(DnnBuilder, FoldsDeepNetworksToMaxStages) {
  Predictor pred;
  const auto specs =
      nn::zoo_model_specs("ResNet-74", nn::ObsSpec{3, 12, 12}, 4);
  accel::DnnBuilderOptions opts;
  opts.max_stages = 8;
  const auto cfg = accel::dnnbuilder_config(specs, pred.budget(), opts);
  EXPECT_EQ(cfg.num_chunks(), 8);
  // Every group must still be mapped to a valid stage.
  for (int c : cfg.group_to_chunk) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 8);
  }
  EXPECT_TRUE(pred.evaluate(specs, cfg).feasible);
}

// ----------------------------------------------------------------- FA3C ---

TEST(Fa3c, SingleEngineConfigEvaluates) {
  Predictor pred;
  const auto specs = nn::zoo_model_specs("Vanilla", nn::ObsSpec{3, 12, 12}, 4);
  const auto eval = accel::fa3c_eval(specs, pred);
  EXPECT_TRUE(eval.feasible);
  EXPECT_GT(eval.fps, 0.0);
  const auto cfg = accel::fa3c_config(specs);
  EXPECT_EQ(cfg.num_chunks(), 1);
  EXPECT_EQ(cfg.chunks[0].num_pes(), 256);
}

TEST(Fa3c, SearchedAcceleratorBeatsFixedEngine) {
  // The paper's Table III premise: a searched, network-matched accelerator
  // outperforms the one-size-fits-all FA3C engine (by 2.1x-6.1x there).
  Predictor pred;
  const auto specs =
      nn::zoo_model_specs("ResNet-14", nn::ObsSpec{3, 12, 12}, 4);
  const auto fa3c = accel::fa3c_eval(specs, pred);
  accel::AcceleratorSpace space(4, nn::num_groups(specs));
  das::DasConfig cfg;
  cfg.iterations = 600;
  das::DasEngine engine(space, pred, cfg);
  const auto searched = engine.search(specs);
  EXPECT_GT(searched.eval.fps, fa3c.fps);
}

}  // namespace
}  // namespace a3cs
