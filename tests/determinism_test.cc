// Bit-exactness of the parallel execution layer: every kernel and subsystem
// routed through util::ThreadPool must produce byte-identical results at any
// thread count (the determinism contract of src/util/thread_pool.h). Each
// test computes a reference at 1 thread and compares exactly — not within a
// tolerance — against runs at several other thread counts.
#include <gtest/gtest.h>

#include <vector>

#include "arcade/games.h"
#include "arcade/vec_env.h"
#include "nas/mixed_op.h"
#include "nn/layers.h"
#include "nn/zoo.h"
#include "rl/a2c.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace a3cs {
namespace {

using nn::Shape;
using nn::Tensor;

constexpr int kThreadCounts[] = {2, 3, 8};

// Runs `fn` with the global pool resized to `threads`, restoring serial mode
// afterwards so tests stay independent.
template <typename Fn>
auto at_threads(int threads, Fn&& fn) {
  util::ThreadPool::set_global_threads(threads);
  auto out = fn();
  util::ThreadPool::set_global_threads(1);
  return out;
}

void expect_bits_equal(const std::vector<float>& ref,
                       const std::vector<float>& got, int threads,
                       const char* what) {
  ASSERT_EQ(ref.size(), got.size()) << what << " at " << threads << " threads";
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i], got[i]) << what << " diverges at index " << i << " with "
                              << threads << " threads";
  }
}

Tensor random_tensor(const Shape& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  return t;
}

// -------------------------------------------------------------- kernels ---

TEST(Determinism, GemmBitExactAcrossThreadCounts) {
  struct Case {
    int m, k, n;
    bool ta, tb;
    float alpha, beta;
  };
  const Case cases[] = {
      {256, 256, 256, false, false, 1.0f, 0.0f},
      {64, 576, 96, false, true, 1.0f, 0.0f},
      {33, 17, 29, true, false, 0.5f, 1.5f},
      {7, 130, 5, true, true, -1.0f, 0.25f},
  };
  for (const auto& p : cases) {
    Tensor a = random_tensor(p.ta ? Shape::mat(p.k, p.m) : Shape::mat(p.m, p.k), 1);
    Tensor b = random_tensor(p.tb ? Shape::mat(p.n, p.k) : Shape::mat(p.k, p.n), 2);
    const Tensor c0 = random_tensor(Shape::mat(p.m, p.n), 3);
    auto run = [&]() {
      Tensor c = c0;
      tensor::gemm(a, p.ta, b, p.tb, c, p.alpha, p.beta);
      return c.vec();
    };
    const auto ref = at_threads(1, run);
    for (int threads : kThreadCounts) {
      expect_bits_equal(ref, at_threads(threads, run), threads, "gemm");
    }
  }
}

TEST(Determinism, Im2ColAndCol2ImBitExact) {
  const Tensor x = random_tensor(Shape::nchw(3, 5, 13, 11), 4);
  const auto g = tensor::ConvGeometry::make(x.shape(), 3, 3, 2, 1);
  auto run = [&]() {
    Tensor cols(Shape::mat(5 * 3 * 3, g.n * g.oh * g.ow));
    tensor::im2col(x, g, cols);
    Tensor back(x.shape());
    tensor::col2im(cols, g, back);
    auto out = cols.vec();
    out.insert(out.end(), back.vec().begin(), back.vec().end());
    return out;
  };
  const auto ref = at_threads(1, run);
  for (int threads : kThreadCounts) {
    expect_bits_equal(ref, at_threads(threads, run), threads, "im2col/col2im");
  }
}

TEST(Determinism, Conv2dForwardBackwardBitExact) {
  const Tensor x = random_tensor(Shape::nchw(4, 3, 12, 12), 5);
  auto run = [&]() {
    util::Rng rng(21);
    nn::Conv2d conv("conv", 3, 8, 3, 1, 1, rng);
    Tensor y = conv.forward(x);
    const Tensor grad_out = random_tensor(y.shape(), 6);
    Tensor grad_in = conv.backward(grad_out);
    auto out = y.vec();
    out.insert(out.end(), grad_in.vec().begin(), grad_in.vec().end());
    out.insert(out.end(), conv.weight().grad.vec().begin(),
               conv.weight().grad.vec().end());
    out.insert(out.end(), conv.bias().grad.vec().begin(),
               conv.bias().grad.vec().end());
    return out;
  };
  const auto ref = at_threads(1, run);
  for (int threads : kThreadCounts) {
    expect_bits_equal(ref, at_threads(threads, run), threads, "conv2d");
  }
}

// ------------------------------------------------------------ NAS / DAS ---

TEST(Determinism, MixedOpTopKBackwardBitExact) {
  const Tensor x = random_tensor(Shape::nchw(2, 4, 8, 8), 7);
  auto run = [&]() {
    util::Rng rng(31);
    util::Rng sampler(32);
    const double tau = 2.0;
    nas::MixedOp op("cell", 4, 8, 1, rng, &sampler, &tau,
                    /*backward_paths=*/4);
    Tensor y = op.forward(x);
    const Tensor grad_out = random_tensor(y.shape(), 8);
    Tensor grad_in = op.backward(grad_out);
    auto out = op.alpha().param().grad.vec();
    out.insert(out.end(), grad_in.vec().begin(), grad_in.vec().end());
    return out;
  };
  const auto ref = at_threads(1, run);
  for (int threads : kThreadCounts) {
    expect_bits_equal(ref, at_threads(threads, run), threads,
                      "mixed-op backward");
  }
}

// ------------------------------------------------------------------ env ---

TEST(Determinism, VecEnvStepSequenceBitExact) {
  auto run = [&]() {
    arcade::VecEnv envs("Catch", 6, 77);
    util::Rng action_rng(9);
    std::vector<float> out(envs.reset().vec());
    for (int t = 0; t < 40; ++t) {
      std::vector<int> actions;
      for (int i = 0; i < envs.num_envs(); ++i) {
        actions.push_back(action_rng.uniform_int(envs.num_actions()));
      }
      const auto& step = envs.step(actions);
      out.insert(out.end(), step.obs.vec().begin(), step.obs.vec().end());
      for (double r : step.rewards) out.push_back(static_cast<float>(r));
      for (std::uint8_t d : step.dones) out.push_back(static_cast<float>(d));
    }
    for (double s : envs.drain_episode_scores()) {
      out.push_back(static_cast<float>(s));
    }
    out.push_back(static_cast<float>(envs.episodes_completed()));
    return out;
  };
  const auto ref = at_threads(1, run);
  for (int threads : kThreadCounts) {
    expect_bits_equal(ref, at_threads(threads, run), threads, "vec-env");
  }
}

// ------------------------------------------------------------------- rl ---

TEST(Determinism, ShortA2cRunBitExact) {
  auto run = [&]() {
    auto probe = arcade::make_game("Catch", 1);
    util::Rng rng(13);
    auto agent = nn::build_zoo_agent("Vanilla", probe->obs_spec(),
                                     probe->num_actions(), rng);
    arcade::VecEnv envs("Catch", 4, 55);
    rl::A2cConfig cfg;
    cfg.loss = rl::no_distill_coefficients();
    cfg.num_envs = 4;
    rl::A2cTrainer trainer(*agent.net, envs, cfg);
    trainer.train(1200);
    std::vector<float> out;
    for (const auto* p : agent.net->parameters()) {
      out.insert(out.end(), p->value.vec().begin(), p->value.vec().end());
    }
    return out;
  };
  const auto ref = at_threads(1, run);
  for (int threads : kThreadCounts) {
    expect_bits_equal(ref, at_threads(threads, run), threads, "a2c run");
  }
}

}  // namespace
}  // namespace a3cs
