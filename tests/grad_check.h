// Finite-difference gradient checking for nn::Module implementations.
//
// For a module M, input x and a fixed random upstream gradient G we define
// the scalar loss L = <G, M(x)> and compare the analytic gradients produced
// by backward(G) against central finite differences, for both the input and
// every parameter. ReLU kinks are avoided by nudging inputs away from zero.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "nn/module.h"
#include "util/rng.h"

namespace a3cs::testing {

inline float dot_loss(const nn::Tensor& g, const nn::Tensor& y) {
  return g.dot(y);
}

// Fills t with values bounded away from ReLU kinks.
inline void fill_safe_random(nn::Tensor& t, util::Rng& rng) {
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    float v = static_cast<float>(rng.uniform(-1.0, 1.0));
    if (std::abs(v) < 0.15f) v = v < 0 ? v - 0.15f : v + 0.15f;
    t[i] = v;
  }
}

struct GradCheckOptions {
  // Small enough that ReLU kink crossings are rare, large enough that fp32
  // forward noise (~1e-6 absolute on the loss) stays below ~0.1% of the
  // derivative estimate.
  float eps = 1.5e-3f;
  float rel_tol = 6e-2f;   // relative tolerance on each component
  float abs_tol = 2e-3f;   // absolute floor below which errors are ignored
  int max_probes = 40;     // random coordinates probed per tensor
};

// Returns the worst relative error observed (also EXPECTs within tolerance).
inline void check_module_gradients(nn::Module& module, const nn::Shape& in,
                                   std::uint64_t seed = 1234,
                                   GradCheckOptions opt = {}) {
  util::Rng rng(seed);
  nn::Tensor x(in);
  fill_safe_random(x, rng);

  // Jitter every parameter away from zero: freshly-built layers have
  // all-zero biases, and with ReLU-sparse inputs a conv window can be
  // entirely zero, parking the pre-activation EXACTLY on the ReLU kink —
  // where the analytic and numeric results are (legitimately) different
  // one-sided derivatives.
  for (nn::Parameter* p : module.parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float mag = static_cast<float>(rng.uniform(0.02, 0.06));
      p->value[i] += rng.bernoulli(0.5) ? mag : -mag;
    }
  }

  nn::Tensor y0 = module.forward(x);
  nn::Tensor g(y0.shape());
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  module.zero_grad();
  // Re-run forward so the cache matches (zero_grad doesn't touch caches, but
  // be explicit that backward corresponds to this forward).
  nn::Tensor y = module.forward(x);
  ASSERT_TRUE(y.same_shape(y0));
  nn::Tensor dx = module.backward(g);
  ASSERT_TRUE(dx.same_shape(x));

  auto probe = [&](auto&& eval_loss, nn::Tensor& target,
                   const nn::Tensor& analytic, const std::string& label) {
    const std::int64_t n = target.numel();
    const int probes =
        static_cast<int>(std::min<std::int64_t>(n, opt.max_probes));
    for (int p = 0; p < probes; ++p) {
      const std::int64_t i =
          probes == n ? p : static_cast<std::int64_t>(rng.uniform_int(
                                static_cast<int>(n)));
      const float orig = target[i];
      auto central = [&](float eps) {
        target[i] = orig + eps;
        const float lp = eval_loss();
        target[i] = orig - eps;
        const float lm = eval_loss();
        target[i] = orig;
        return (lp - lm) / (2.0f * eps);
      };
      const float n1 = central(opt.eps);
      const float n2 = central(opt.eps * 0.5f);
      // A ReLU kink inside [x - eps, x + eps] makes the two estimates
      // disagree; such probes are not informative about the gradient, skip.
      if (std::abs(n1 - n2) >
          0.2f * std::max({std::abs(n1), std::abs(n2), 1e-3f})) {
        continue;
      }
      const float numeric = n2;
      const float exact = analytic[i];
      const float denom =
          std::max({std::abs(numeric), std::abs(exact), 1e-4f});
      const float rel = std::abs(numeric - exact) / denom;
      if (std::abs(numeric - exact) > opt.abs_tol) {
        EXPECT_LE(rel, opt.rel_tol)
            << label << "[" << i << "]: analytic " << exact << " vs numeric "
            << numeric;
      }
    }
  };

  auto loss_of_x = [&]() { return dot_loss(g, module.forward(x)); };
  probe(loss_of_x, x, dx, "input");

  for (nn::Parameter* param : module.parameters()) {
    auto loss_of_w = [&]() { return dot_loss(g, module.forward(x)); };
    probe(loss_of_w, param->value, param->grad, param->name);
  }
}

}  // namespace a3cs::testing
